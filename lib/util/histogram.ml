type t = {
  lo : float;
  mutable hi : float;
  mutable width : float;
  auto_expand : bool;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable max_seen : float;
  mutable min_seen : float;
}

let create ?(auto_expand = false) ~lo ~hi ~buckets () =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    auto_expand;
    counts = Array.make buckets 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    max_seen = Float.neg_infinity;
    min_seen = Float.infinity;
  }

(* Double the range in place: bucket pairs merge downwards, the top half
   empties.  Each expansion is O(buckets) and the range grows
   geometrically, so the amortized cost per observation stays O(1)
   however far past the initial bound the tail reaches. *)
let expand t =
  let n = Array.length t.counts in
  let merged = Array.make n 0 in
  Array.iteri (fun i c -> merged.(i / 2) <- merged.(i / 2) + c) t.counts;
  Array.blit merged 0 t.counts 0 n;
  t.width <- t.width *. 2.0;
  t.hi <- t.lo +. (t.width *. float_of_int n)

let add t x =
  t.total <- t.total + 1;
  if x > t.max_seen then t.max_seen <- x;
  if x < t.min_seen then t.min_seen <- x;
  if x < t.lo then t.underflow <- t.underflow + 1
  else begin
    if t.auto_expand && Float.is_finite x then
      while x >= t.hi do
        expand t
      done;
    if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. t.width) in
      let i = min i (Array.length t.counts - 1) in
      t.counts.(i) <- t.counts.(i) + 1
    end
  end

let count t = t.total

let bucket_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bucket_count: index out of range";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let max_observed t = if t.total = 0 then Float.nan else t.max_seen
let min_observed t = if t.total = 0 then Float.nan else t.min_seen

let bucket_range t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bucket_range: index out of range";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let mean t =
  if t.total = 0 then Float.nan
  else begin
    (* Bucket-midpoint approximation; under/overflow observations are
       pinned to the histogram's edges. *)
    let sum = ref (float_of_int t.underflow *. t.lo) in
    sum := !sum +. (float_of_int t.overflow *. t.hi);
    Array.iteri
      (fun i c ->
        let lo, hi = bucket_range t i in
        sum := !sum +. (float_of_int c *. ((lo +. hi) /. 2.0)))
      t.counts;
    !sum /. float_of_int t.total
  end

let fraction_below t x =
  if t.total = 0 then 0.0
  else begin
    let below = ref t.underflow in
    Array.iteri
      (fun i c ->
        let _, hi = bucket_range t i in
        if hi <= x then below := !below + c)
      t.counts;
    float_of_int !below /. float_of_int t.total
  end

let pp fmt t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left max 1 t.counts in
  let cells =
    Array.map
      (fun c ->
        let level = c * (Array.length glyphs - 1) / peak in
        glyphs.(level))
      t.counts
  in
  Format.fprintf fmt "[%s] n=%d under=%d over=%d"
    (String.init (Array.length cells) (Array.get cells))
    t.total t.underflow t.overflow
