type t = {
  lo : float;
  mutable hi : float;
  mutable width : float;
  auto_expand : bool;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable nans : int;
  mutable max_seen : float;
  mutable min_seen : float;
}

let create ?(auto_expand = false) ~lo ~hi ~buckets () =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    auto_expand;
    counts = Array.make buckets 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    nans = 0;
    max_seen = Float.neg_infinity;
    min_seen = Float.infinity;
  }

(* Double the range in place: bucket pairs merge downwards, the top half
   empties.  Each expansion is O(buckets) and the range grows
   geometrically, so the amortized cost per observation stays O(1)
   however far past the initial bound the tail reaches. *)
let expand t =
  let n = Array.length t.counts in
  let merged = Array.make n 0 in
  Array.iteri (fun i c -> merged.(i / 2) <- merged.(i / 2) + c) t.counts;
  Array.blit merged 0 t.counts 0 n;
  t.width <- t.width *. 2.0;
  t.hi <- t.lo +. (t.width *. float_of_int n)

let add t x =
  t.total <- t.total + 1;
  (* nan compares false against every bound below, which used to drop it
     into bucket 0 via [int_of_float nan = 0]; quarantine it instead so
     the buckets and extrema describe only real observations. *)
  if Float.is_nan x then t.nans <- t.nans + 1
  else begin
    if x > t.max_seen then t.max_seen <- x;
    if x < t.min_seen then t.min_seen <- x;
    if x < t.lo then t.underflow <- t.underflow + 1
    else begin
      if t.auto_expand && Float.is_finite x then
        while x >= t.hi do
          expand t
        done;
      if x >= t.hi then t.overflow <- t.overflow + 1
      else begin
        let i = int_of_float ((x -. t.lo) /. t.width) in
        let i = min i (Array.length t.counts - 1) in
        t.counts.(i) <- t.counts.(i) + 1
      end
    end
  end

let count t = t.total
let nan_count t = t.nans

(* Observations that landed somewhere on the real line: the denominator
   for every distributional summary. *)
let real_count t = t.total - t.nans

let bucket_count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bucket_count: index out of range";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let max_observed t = if real_count t = 0 then Float.nan else t.max_seen
let min_observed t = if real_count t = 0 then Float.nan else t.min_seen

let bucket_range t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bucket_range: index out of range";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let mean t =
  if real_count t = 0 then Float.nan
  else begin
    (* Bucket-midpoint approximation; under/overflow observations are
       pinned to the histogram's edges.  nan observations are excluded. *)
    let sum = ref (float_of_int t.underflow *. t.lo) in
    sum := !sum +. (float_of_int t.overflow *. t.hi);
    Array.iteri
      (fun i c ->
        let lo, hi = bucket_range t i in
        sum := !sum +. (float_of_int c *. ((lo +. hi) /. 2.0)))
      t.counts;
    !sum /. float_of_int (real_count t)
  end

let fraction_below t x =
  if real_count t = 0 then 0.0
  else begin
    let below = ref t.underflow in
    Array.iteri
      (fun i c ->
        let _, hi = bucket_range t i in
        if hi <= x then below := !below + c)
      t.counts;
    (* Overflow observations live in [hi, ∞); once the threshold has
       cleared the histogram's upper bound they are all below it under
       the whole-bucket approximation, so fraction_below t infinity is
       1.0 even with a nonzero overflow count. *)
    if x > t.hi then below := !below + t.overflow;
    float_of_int !below /. float_of_int (real_count t)
  end

let quantile t q =
  if Float.is_nan q then invalid_arg "Histogram.quantile: nan quantile";
  let q = Float.max 0.0 (Float.min 1.0 q) in
  let n = real_count t in
  if n = 0 then Float.nan
  else if q = 0.0 then t.min_seen
  else if q = 1.0 then t.max_seen
  else begin
    (* Find the bucket holding the ceil(q*n)-th smallest observation and
       interpolate linearly inside it; the result is exact to within one
       bucket width.  Clamping to the observed extrema keeps the edges
       honest when the target falls in under/overflow (whose true spread
       the buckets do not record). *)
    let target = q *. float_of_int n in
    let clamp v = Float.max t.min_seen (Float.min t.max_seen v) in
    if target <= float_of_int t.underflow then t.min_seen
    else begin
      let cum = ref (float_of_int t.underflow) in
      let result = ref Float.nan in
      (try
         Array.iteri
           (fun i c ->
             let fc = float_of_int c in
             if c > 0 && target <= !cum +. fc then begin
               let lo, _ = bucket_range t i in
               let frac = (target -. !cum) /. fc in
               result := clamp (lo +. (frac *. t.width));
               raise Exit
             end;
             cum := !cum +. fc)
           t.counts
       with Exit -> ());
      if Float.is_nan !result then t.max_seen else !result
    end
  end

let pp fmt t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left max 1 t.counts in
  let cells =
    Array.map
      (fun c ->
        let level = c * (Array.length glyphs - 1) / peak in
        glyphs.(level))
      t.counts
  in
  Format.fprintf fmt "[%s] n=%d under=%d over=%d"
    (String.init (Array.length cells) (Array.get cells))
    t.total t.underflow t.overflow;
  if t.nans > 0 then Format.fprintf fmt " nan=%d" t.nans
