type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = Float.nan; max = Float.nan }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_many t xs = List.iter (add t) xs

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      total = a.total +. b.total;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if Float.is_nan p then invalid_arg "Stats.percentile: nan percentile";
  (* A nan observation would poison the interpolation silently (and sort
     to an arbitrary position); reject it loudly instead. *)
  if Array.exists Float.is_nan xs then
    invalid_arg "Stats.percentile: nan observation";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean: empty list"
  | _ ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value"
          else acc +. Float.log x)
        0.0 xs
    in
    Float.exp (log_sum /. float_of_int (List.length xs))
