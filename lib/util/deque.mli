(** Growable ring-buffer deque: O(1) [push_back]/[pop_front], O(n) scans.

    This is the index structure behind the load channel's pending-preload
    FIFO: entries are appended at the tail, started from the head, and
    logically deleted in place (the channel layers lazy deletion on top,
    so removals never shift elements).

    [dummy] is a throwaway element used to fill unused slots (a plain
    ['a array] backs the deque); it is never returned. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh empty deque.  [capacity] (default 8) is the initial allocation;
    the buffer doubles as needed. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Append at the tail; amortized O(1). *)

val peek_front : 'a t -> 'a option
val pop_front : 'a t -> 'a option

val front : 'a t -> 'a
(** Head element without the option box — the allocation-free
    {!peek_front} for hot paths.  Returns [dummy] when empty, so callers
    must check {!is_empty} first or use a recognizable dummy. *)

val clear : 'a t -> unit
(** Drop every element (slots are reset to [dummy]). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
(** Front-to-back. *)
