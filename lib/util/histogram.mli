(** Fixed-bucket histograms, used to characterise page-access locality and
    fault inter-arrival distributions in reports and tests. *)

type t

val create : ?auto_expand:bool -> lo:float -> hi:float -> buckets:int -> unit -> t
(** [create ~lo ~hi ~buckets ()] covers [\[lo, hi)] with equal-width buckets.
    Observations below [lo] land in an underflow bucket, at or above [hi]
    in an overflow bucket.

    With [~auto_expand:true] (default false) a finite observation at or
    above [hi] instead doubles the range — adjacent bucket pairs merge,
    the bucket count stays fixed — until the observation fits, so the
    overflow bucket stays empty and {!mean} is never biased by a
    mis-sized upper bound.  [lo] and the bucket count never change;
    resolution halves per doubling.  Non-finite observations still land
    in overflow rather than expanding forever.

    @raise Invalid_argument if [buckets <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation.  [nan] is quarantined in a dedicated counter
    ({!nan_count}) rather than bucketed — it neither perturbs the
    buckets nor poisons {!min_observed}/{!max_observed}. *)

val count : t -> int
(** Total observations, including under/overflow and nan. *)

val nan_count : t -> int
(** Observations that were [nan].  They count in {!count} but are
    excluded from every bucket, extremum and distributional summary. *)

val bucket_count : t -> int -> int
(** [bucket_count t i] is the number of observations in bucket [i]
    ([0 <= i < buckets]). *)

val underflow : t -> int
val overflow : t -> int
(** Observations at or above [hi].  They are counted, not clamped into
    the top bucket; pair with {!max_observed} to see how far past the
    range the distribution's tail reaches. *)

val max_observed : t -> float
val min_observed : t -> float
(** Exact extrema of every non-nan observation ever added, including
    under/overflow (the buckets only bound them).  [nan] when no real
    observation has been recorded. *)

val bucket_range : t -> int -> float * float
(** Inclusive-exclusive bounds of bucket [i]. *)

val mean : t -> float
(** Bucket-midpoint approximation of the sample mean; under/overflow
    observations count at [lo] / [hi], nan observations are excluded.
    [nan] when there is no real observation. *)

val fraction_below : t -> float -> float
(** [fraction_below t x] approximates P(obs < x) from bucket boundaries
    (whole buckets only; [x] is rounded down to a boundary).  Underflow
    observations always count as below; overflow observations (which
    live in [\[hi, ∞)]) count as below exactly when [x > hi], so
    [fraction_below t infinity = 1.0] even with nonzero overflow.  nan
    observations are excluded from the denominator. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]; values
    outside are clamped) by linear interpolation inside the bucket
    holding the [q*n]-th smallest real observation — exact to within one
    bucket width.  [quantile t 0.0] is {!min_observed} and
    [quantile t 1.0] is {!max_observed}, both exact; estimates are
    clamped to that observed range, which also anchors targets that fall
    in under/overflow.  [nan] when there is no real observation.

    @raise Invalid_argument if [q] is nan. *)

val pp : Format.formatter -> t -> unit
(** Render a compact ASCII sparkline of the distribution. *)
