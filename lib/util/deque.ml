type 'a t = {
  dummy : 'a;
  mutable buf : 'a array;
  mutable head : int;
  mutable len : int;
}

let create ?(capacity = 8) ~dummy () =
  let capacity = max 1 capacity in
  { dummy; buf = Array.make capacity dummy; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1

let peek_front t = if t.len = 0 then None else Some t.buf.(t.head)

let front t = if t.len = 0 then t.dummy else t.buf.(t.head)

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    (* Release the slot so popped elements are not retained. *)
    t.buf.(t.head) <- t.dummy;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    Some x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) t.dummy;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
