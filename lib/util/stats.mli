(** Streaming and batch summary statistics used by metrics and reports. *)

type t
(** Mutable accumulator of a stream of floats (Welford's algorithm, so a
    single pass yields numerically stable mean/variance). *)

val create : unit -> t

val add : t -> float -> unit

val add_many : t -> float list -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having observed both
    streams (parallel Welford merge). *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile of [xs] by linear
    interpolation; [p] outside [0., 100.] is clamped.  Sorts a copy; [xs]
    is unchanged.
    @raise Invalid_argument on an empty array, a nan [p], or a nan
    observation. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values, the aggregation SPEC-style suites
    use for normalized times.  @raise Invalid_argument on an empty list or
    non-positive member. *)
