(** The paper's evaluation, experiment by experiment.

    One entry per table and figure of §5 (plus the §1 motivation numbers
    and the Fig. 2/Fig. 4 timelines), each with a data function usable
    from tests and a printer that emits the same rows/series the paper
    reports, side by side with the paper's values where the paper states
    them.  A handful of ablations beyond the paper close the list. *)

type settings = {
  epc_pages : int;  (** Simulated usable EPC size. *)
  ref_input : Workload.Input.t;  (** Input for measurement runs. *)
  quick : bool;  (** Trim sweeps (used by tests). *)
  jobs : int;
      (** Worker processes per table ({!Job_pool}).  Every experiment's
          cells fan out across this many forked workers; results merge in
          submission order, so output is byte-identical at any value. *)
  cell_timeout : float option;
      (** Wall-clock seconds per cell attempt; a hung cell is SIGKILLed
          and retried/failed.  [None] (default) disables the watchdog
          and keeps the serial in-process fast path at [jobs = 1]. *)
  retries : int;  (** Extra attempts for a failing cell (default 0). *)
  keep_going : bool;
      (** Collect failing experiments instead of aborting the matrix:
          {!run_many} reports them on stderr and returns them, the other
          experiments still print. *)
  journal_dir : string option;
      (** Directory for per-table cell journals ({!Job_pool.run_hardened});
          enables [resume]. *)
  resume : bool;  (** Reuse journaled cells from an interrupted run. *)
  fused : bool;
      (** Collapse each trace's scheme cells into one fused
          {!Runner.run_fused} job (the default): the trace is replayed
          once per (workload, config) group instead of once per cell,
          and {!Job_pool} parallelism applies across groups.  [false]
          restores one job per cell — the reference path; both print
          identical bytes (the fused/per-cell contract, diffed in CI). *)
}

val default : settings
(** 2048 EPC pages, ref input 0, full sweeps, serial, fused replay, no
    hardening. *)

val quick : settings
(** Smaller EPC and trimmed sweeps for fast integration tests. *)

exception Cells_failed of Job_pool.failure list
(** Raised by a table whose cells exhausted their retry budget when any
    hardening option is active (with none active, the first failure
    raises {!Job_pool.Job_failed} as before).  Carries {e every} failed
    cell of the table, not just the first. *)

(** {1 Workload catalog} *)

val find_model : string -> Workload.Spec.model option
(** Resolve a workload name across every family (SPEC models, SD-VBS
    vision kernels, multi-threaded extensions, synthetic boundary
    cases). *)

val workload_families : (string * string) list
(** Every name {!find_model} resolves, paired with its family/category
    label, in family order — the catalog behind the CLI's [list]. *)

val workload_names : unit -> string list
(** [List.map fst workload_families]. *)

val trace_of : settings -> string -> input:Workload.Input.t -> Workload.Trace.t
(** Build the named workload's trace at the settings' EPC size.
    @raise Invalid_argument on an unknown name. *)

val plan_for :
  ?threshold:float -> settings -> string -> Preload.Sip_instrumenter.plan
(** Profile the workload on the train input and derive its SIP plan —
    the PGO step every SIP/hybrid experiment (and the chaos matrix)
    shares. *)

val settings_key : settings -> string
(** The settings' contribution to a cell-journal key: journals written
    under one EPC size / input / sweep shape never satisfy another. *)

(** {1 Data access} *)

type improvement_row = {
  workload : string;
  scheme : string;
  normalized : float;  (** Execution time / baseline execution time. *)
  improvement : float;  (** [1. - normalized]. *)
  fault_reduction : float option;
      (** [None] when the baseline run had no faults (rendered "n/a"). *)
  stopped : bool;  (** DFP-stop fired during the run. *)
}

val intro_slowdown : settings -> float
(** §1: enclave-baseline time over native time for the sequential-scan
    microbenchmark (paper observed ~46x; the cost model alone yields
    tens-of-x). *)

val fig2_timelines : settings -> Sgxsim.Event.t list * Sgxsim.Event.t list
(** Baseline and DFP event logs of the didactic 4-page sequence. *)

val fig3_series : settings -> (string * (int * int) list) list
(** Per benchmark (bwaves, deepsjeng, lbm): downsampled
    (access index, page) points. *)

val fig4_costs : settings -> int * int
(** Didactic per-fault cost: (baseline fault path, SIP notify path). *)

val table1_rows : settings -> (string * string * int * float * float) list
(** Per benchmark: (name, paper category, footprint pages,
    footprint/EPC ratio, irregular access share from profiling). *)

val table1_miss_ratios : settings -> (string * float) list
(** LRU miss ratio of each benchmark at the configured EPC size (the
    baseline fault-rate estimate shown alongside Table 1). *)

val fig6_sweep : settings -> (int * (string * float) list) list
(** Stream-list-length sweep: for each length, (benchmark, normalized
    DFP time) for lbm and bwaves. *)

val fig7_sweep : settings -> (string * (int * float) list) list
(** LOADLENGTH sweep per large-working-set benchmark: (benchmark,
    [(loadlength, normalized time)]). *)

val fig8_rows : settings -> improvement_row list
(** DFP and DFP-stop improvement for every large-working-set benchmark. *)

val fig9_sweep : settings -> (float * float) list
(** SIP threshold sweep on deepsjeng (train input, as in the paper):
    [(threshold, normalized time vs un-instrumented)]. *)

val fig10_rows : settings -> (improvement_row * int) list
(** SIP improvement + instrumentation points for the SIP-supported set. *)

val fig11_rows : settings -> improvement_row list
(** SIFT and MSER under DFP and SIP. *)

val fig12_rows : settings -> improvement_row list
(** SIP vs DFP vs hybrid for the C/C++ set. *)

val fig13_rows : settings -> improvement_row list
(** mixed-blood under SIP, DFP, and SIP+DFP. *)

val table2_rows : settings -> (string * int * int) list
(** (benchmark, measured instrumentation points, paper's count). *)

(** {1 Ablations beyond the paper} *)

val ablation_predictor_rows : settings -> improvement_row list
(** Multiple-stream vs next-line vs stride preloading. *)

val ablation_backward_rows : settings -> improvement_row list
(** Backward-stream detection on/off over a descending sweep. *)

val ablation_epc_rows : settings -> (int * float) list
(** Microbenchmark DFP improvement vs EPC size. *)

val ablation_scan_rows : settings -> (int * float * bool) list
(** roms DFP-stop normalized time and stop status vs CLOCK scan period. *)

val ablation_threads_rows : settings -> improvement_row list
(** Multi-threaded scan: DFP with per-thread stream lists (Algorithm 1's
    [find_stream_list(ID)]) vs one shared list. *)

val ablation_share_rows : settings -> (int * float * float) list
(** §5.6 EPC sharing: a fixed-footprint workload on a full, half and
    quarter EPC partition; per row (epc pages, baseline slowdown vs full
    EPC, DFP improvement within the partition). *)

val ablation_sip_all_rows : settings -> improvement_row list
(** Profile-guided SIP vs instrumenting every site (an Eleos-like
    check-everything runtime, security trade-offs aside). *)

val ablation_oram_rows : settings -> improvement_row list
(** DFP / DFP-stop on the boundary workloads: ORAM-style randomness
    (§3.1), an adversarial pair-walk, and an ideal endless stream. *)

val online_rows : settings -> improvement_row list
(** E-online: the online adaptive controller (zero training input,
    scheme [Baseline] plus {!Preload.Online.default_config} in the
    spec) against the PGO rows — SIP, DFP-stop and the hybrid — on
    phased and single-behaviour workloads.  The online rows' scheme
    label carries the ["+online"] suffix. *)

val online_epc_rows :
  settings -> (string * float * float * Preload.Online.summary) list
(** E-online's variable-EPC axis: mixed-blood under a fault-free plan
    and a co-tenant frame-stealing plan ({!Fault_plan.noisy_neighbor}'s
    [epc_budget] squeeze).  Per row (plan name, PGO-SIP normalized time,
    online normalized time, the online controller's summary). *)

(** {1 Driver} *)

val all : (string * string) list
(** [(experiment id, description)] in paper order. *)

val run : string -> settings -> unit
(** Run one experiment by id and print its report.
    @raise Invalid_argument on an unknown id. *)

val run_all : settings -> unit

val run_many : string list -> settings -> (string * string) list
(** Run the listed experiments in order.  With [settings.keep_going], an
    experiment whose cells fail is reported on stderr and recorded in
    the returned [(id, reason)] list while the rest continue; without
    it, the first failure propagates (empty return = all passed).  The
    CLI exits nonzero when the list is non-empty. *)
