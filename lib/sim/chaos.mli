(** The chaos matrix: scheme grid × named fault plans, with
    graceful-degradation measurement and invariant enforcement.

    Each cell replays one (workload, scheme, fault plan) simulation,
    runs the full {!Validate} battery on it in the worker, and returns a
    slim record; the report prints, per workload, a degradation table
    against the same cell's fault-free run (overhead, fault increase,
    preload-abort and mispreload rates) plus every invariant violation.

    Cells are pure and the fault draws are position-keyed
    ({!Fault_plan}), so the whole matrix is byte-identical across [-j]
    values and across repeated runs with the same seed.  The matrix
    always runs on the hardened pool: a hung or dead cell is reported
    (and, with [keep_going], tolerated) without discarding its
    neighbours. *)

type settings = {
  epc_pages : int;
  input : Workload.Input.t;
  quick : bool;
  jobs : int;
  seed : int;  (** Re-seeds every plan in [plans]. *)
  plans : Fault_plan.t list;
  workloads : string list;
  cell_timeout : float option;
  retries : int;
  keep_going : bool;  (** Report failed cells instead of raising. *)
  journal_dir : string option;
  resume : bool;
  fused : bool;
      (** Collapse the four scheme cells of each (workload, plan) pair
          into one fused single-pass replay ({!Runner.run_fused}; the
          default) — the trace is decoded once per pair instead of once
          per cell, and [Job_pool] parallelism moves up to the pair
          level.  Off, the matrix degrades to one job per cell, the
          cross-check reference the fused output is contractually
          byte-identical to (CI diffs the two).  Part of the journal
          key, so fused and per-cell runs never satisfy each other's
          journals. *)
  breaker : Preload.Breaker.config option;
      (** Attach a preload circuit breaker to every non-Native cell
          ([--breaker] on the CLI): hostile plans show the trip and its
          cost, clean plans show it staying Closed for free.  Part of
          the journal key. *)
  online : Preload.Online.config option;
      (** Attach the online adaptive controller to every non-Native cell
          ([--online] on the CLI): the matrix then doubles as the
          adversarial test of adaptation — the {!Validate} battery keeps
          checking controller legality while the fault plans perturb the
          signal it learns from.  Part of the journal key. *)
}

val default : settings
(** Full workload set, the whole {!Fault_plan.bank}, seed 42, serial. *)

val quick : settings
(** Two workloads; same plans.  For tests and CI smoke. *)

type cell = {
  workload : string;
  scheme : string;
  plan : string;
  cycles : int;
  faults : int;
  preloads_issued : int;
  preloads_aborted : int;
  preloads_completed : int;
  preload_evicted_unused : int;
  violations : string list;  (** Rendered {!Validate} violations; [[]] = ok. *)
}

type outcome = {
  cells : cell list;
      (** Grid order — workload-major, scheme, plan-minor — whether the
          cells were computed per-cell or reassembled from fused jobs. *)
  failed : Job_pool.failure list;
  violation_count : int;
}

val run : settings -> outcome
(** Execute the matrix.  @raise Experiments.Cells_failed if cells failed
    and [keep_going] is off. *)

val print_report : settings -> outcome -> unit
(** Degradation tables and the one-line summary to stdout; failed-cell
    details to stderr (stdout stays byte-identical across [-j]). *)

val ok : outcome -> bool
(** No failed cells and no invariant violations — the CLI's exit code. *)
