(** Seeded, fully deterministic fault injection.

    The paper evaluates SIP/DFP under clean single-tenant conditions;
    production SGX faces contended paging channels (Stress-SGX builds
    purpose-made stressors for exactly this), co-resident enclaves
    fighting over EPC, damaged profiling input, and profiles that no
    longer match the running binary.  A fault plan is a reproducible
    schedule of such perturbations, applied at four well-defined
    simulator points:

    - {b channel}: ELDU latency multipliers in seeded jitter windows —
      a load (and the write-back it triggered) takes up to
      [max_multiplier] times longer while the window is stalled;
    - {b co_tenant}: a background enclave steals a time-varying slice
      of EPC frames, shrinking this enclave's budget (the CLOCK evictor
      squeezes residency at each service scan, and loads evict down to
      the budget);
    - {b trace}: corrupted access addresses and/or a truncated stream;
    - {b stale_sip_plan}: the SIP plan's site ids are permuted, as if
      the profile came from a mismatched build;
    - {b crash}: whole-instance crashes — in each crash window, with a
      seeded per-instance chance, an enclave dies (losing every resident
      page and all pending speculation) and restarts after a fixed
      delay.  Consumed by [Runner] through {!crash_fires}.

    {b Determinism.}  Every perturbation is a pure function of
    [(seed, position, salt)] — position being a time window or event
    index — with no PRNG state threaded between draws.  Replaying the
    same (plan, workload, scheme) cell reproduces the same faults bit
    for bit, in any process and any cell order; the [chaos] matrix is
    therefore byte-identical across [-j] values and across runs. *)

type channel_fault = {
  jitter_period : int;  (** Cycles per jitter window. *)
  stall_chance : float;  (** Probability a window is stalled, [0,1]. *)
  max_multiplier : float;  (** Load-duration multiplier cap, >= 1. *)
}

type co_tenant = {
  steal_period : int;  (** Cycles per re-draw of the stolen slice. *)
  max_steal : float;  (** Largest EPC fraction stolen, [0,1). *)
}

type trace_fault = {
  corrupt_chance : float;  (** Per-access probability of a wild vpage. *)
  truncate_after : int option;  (** Drop events past this index. *)
}

type crash_fault = {
  crash_period : int;  (** Cycles per crash window. *)
  crash_chance : float;  (** Per-window, per-instance crash chance, [0,1]. *)
  restart_delay : int;  (** Cycles a crashed instance sits dead, >= 0. *)
}

type t = {
  name : string;
  seed : int;
  channel : channel_fault option;
  co_tenant : co_tenant option;
  trace : trace_fault option;
  stale_sip_plan : bool;
  crash : crash_fault option;
}

val none : t
(** The fault-free plan (name ["fault-free"]); all hooks are identity. *)

val is_fault_free : t -> bool

val with_seed : t -> int -> t

val validate : t -> t
(** Returns the plan; raises [Invalid_argument] on out-of-range
    parameters (negative periods, chances outside [0,1], ...). *)

(** {1 Perturbation points} *)

val perturb_load_duration : t -> at:int -> int -> int
(** [perturb_load_duration t ~at base] is the faulted duration of a load
    starting at cycle [at] whose clean duration is [base].  Always
    [>= base]; identity without a channel fault. *)

val epc_budget : t -> at:int -> capacity:int -> int
(** Frames available to this enclave at cycle [at]; in [[1, capacity]],
    and [capacity] without a co-tenant. *)

val perturb_trace :
  t -> elrange_pages:int -> Workload.Access.t Seq.t -> Workload.Access.t Seq.t
(** Corrupt/truncate an access stream.  Draws are keyed by event index,
    so the result is re-entrant exactly like [Trace.events]. *)

val scramble_plan : t -> Preload.Sip_instrumenter.plan -> Preload.Sip_instrumenter.plan
(** Permute which sites carry the plan's decisions when
    [stale_sip_plan]; identity otherwise. *)

val crash_fires : t -> instance:int -> window:int -> bool
(** Whether instance [instance] crashes in crash window [window]
    ([at / crash_period]).  A pure function of (seed, instance, window):
    the schedule is identical across processes, [-j] values and replay
    order.  Always [false] without a crash fault. *)

(** {1 The named bank} *)

val jittery_channel : t
val noisy_neighbor : t
val garbled_trace : t
val stale_profile : t
val perfect_storm : t
(** All channel + co-tenant + trace + stale-plan faults at once. *)

val crashy_fleet : t
(** Frequent instance crashes (8% per 5M-cycle window, 1M restart),
    no other faults — the fleet-replay crash stressor. *)

val flaky_service : t
(** Rare crashes (4% per 20M-cycle window, 2M restart) plus channel
    jitter — the degraded-but-alive service regime where retries,
    hedging and the breaker earn their keep. *)

val bank_seed : int
(** The bank's default seed (42). *)

val bank : t list
(** The seven plans above, in a fixed order (seed {!bank_seed}). *)

val find : string -> t option
(** Look up a plan by name; ["fault-free"] resolves to {!none}. *)

val names : unit -> string list
(** Names in {!bank}, in bank order. *)

val describe : t -> string
(** One-line human summary of the active faults. *)
