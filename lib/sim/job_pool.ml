type 'a job = { label : string; run : unit -> 'a }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0

(* Test plumbing for the driver-level failure-path tests: with
   SGX_PRELOAD_FAIL_CELL (resp. SGX_PRELOAD_HANG_CELL) set to a substring
   of a cell label, that cell raises (resp. sleeps forever) instead of
   running.  The check happens at execution time, in the worker, so
   shelled-out tests can exercise crash containment, timeouts, retry and
   keep-going through the real CLI. *)
let injected label =
  let matches var = function
    | Some pat when pat <> "" && contains_sub label pat -> Some var
    | _ -> None
  in
  match matches `Fail (Sys.getenv_opt "SGX_PRELOAD_FAIL_CELL") with
  | Some v -> Some v
  | None -> matches `Hang (Sys.getenv_opt "SGX_PRELOAD_HANG_CELL")

let job ~label run =
  {
    label;
    run =
      (fun () ->
        (match injected label with
        | Some `Fail -> failwith ("injected failure in cell " ^ label)
        | Some `Hang ->
          while true do
            Unix.sleepf 3600.0
          done
        | None -> ());
        run ());
  }

exception Job_failed of { label : string; reason : string }

type failure = { label : string; reason : string; attempts : int }

let () =
  Printexc.register_printer (function
    | Job_failed { label; reason } ->
      Some (Printf.sprintf "Job_pool.Job_failed(%s): %s" label reason)
    | _ -> None)

let default_jobs () =
  (* getconf is POSIX; on the odd machine without it, serial is the only
     safe answer. *)
  try
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
    | Unix.WEXITED 0, Some n when n >= 1 -> n
    | _ -> 1
  with Unix.Unix_error _ | Sys_error _ -> 1

(* What a cell process sends back: the payload on success, the printed
   exception otherwise.  Travels through [Marshal], so [Done] payloads
   must be closure-free — enforced at the send site, where a marshal
   failure is downgraded to [Failed]. *)
type 'a outcome = Done of 'a | Failed of string

let run_serial js = List.map (fun j -> j.run ()) js

let note fmt = Printf.ksprintf (fun s -> Printf.eprintf "job-pool: %s\n%!" s) fmt

let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" n

let status_reason = function
  | Unix.WEXITED 0 -> "cell process exited without reporting a result"
  | Unix.WEXITED n -> Printf.sprintf "cell process exited with status %d" n
  | Unix.WSIGNALED n ->
    Printf.sprintf "cell process killed by %s" (signal_name n)
  | Unix.WSTOPPED n ->
    Printf.sprintf "cell process stopped by %s" (signal_name n)

(* ------------------------------------------------------------------ *)
(* Cell journal                                                        *)
(* ------------------------------------------------------------------ *)

(* On-disk checkpoint of completed cells so an interrupted matrix can be
   resumed.  Binary format: one marshaled [string] key record (matrix
   identity), then marshaled [(label, value)] pairs appended as cells
   complete.  A torn final record (the run died mid-write) is tolerated:
   reading stops at the first undecodable record. *)

let journal_magic = "sgx-preload cell-journal v1\x00"

let effective_key ~journal_key labels =
  (* The caller's key names the matrix configuration; the digest of the
     label list pins the exact cell set, so a journal can never be
     replayed against a different matrix (whose cell values would not
     even have the right type). *)
  Printf.sprintf "%s%s|%s" journal_magic journal_key
    (Digest.to_hex (Digest.string (String.concat "\n" labels)))

let read_journal (type a) path ~key : (string, a) Hashtbl.t option =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match (try Some (Marshal.from_channel ic : string) with _ -> None) with
        | Some k when k = key ->
          let tbl : (string, a) Hashtbl.t = Hashtbl.create 64 in
          (try
             while true do
               let label, v = (Marshal.from_channel ic : string * a) in
               Hashtbl.replace tbl label v
             done
           with _ -> ());
          Some tbl
        | Some _ ->
          note "journal %s is for a different matrix; starting fresh" path;
          None
        | None -> None)

(* ------------------------------------------------------------------ *)
(* Hardened pool: one forked process per cell                          *)
(* ------------------------------------------------------------------ *)

type running = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  attempts : int; (* 1-based attempt number of this execution *)
}

type 'a state =
  | Pending of { attempts : int; not_before : float }
      (* [attempts] = executions already made (0 before the first). *)
  | Running of running
  | Finished of ('a, failure) result

let spawn (j : _ job) ~attempts =
  (* Anything buffered before the fork would be flushed once per cell. *)
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let outcome = try Done (j.run ()) with e -> Failed (Printexc.to_string e) in
    let payload =
      (* Serialize before writing so a non-marshalable result produces a
         clean [Failed] record instead of torn bytes on the pipe. *)
      try Marshal.to_bytes outcome []
      with e ->
        Marshal.to_bytes
          (Failed
             (Printf.sprintf "result not marshalable: %s" (Printexc.to_string e)))
          []
    in
    let rec write_all pos =
      if pos < Bytes.length payload then
        let n = Unix.write w payload pos (Bytes.length payload - pos) in
        write_all (pos + n)
    in
    (try write_all 0 with _ -> ());
    (* [_exit]: the child must not run the parent's [at_exit] handlers or
       flush its copies of the parent's buffers. *)
    Unix._exit 0
  | pid ->
    Unix.close w;
    Running { pid; fd = r; buf = Buffer.create 4096; started = Unix.gettimeofday (); attempts }

let reap_kill (r : running) =
  (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ());
  try Unix.close r.fd with Unix.Unix_error _ -> ()

let run_hardened (type a) ?(jobs = 1) ?timeout ?(retries = 0) ?(backoff = 0.5)
    ?journal ?(resume = false) ?(journal_key = "") (js : a job list) :
    (a, failure) result list =
  if jobs > 1024 then invalid_arg "Job_pool.run_hardened: jobs > 1024";
  if retries < 0 then invalid_arg "Job_pool.run_hardened: retries < 0";
  let arr = Array.of_list js in
  let total = Array.length arr in
  let key =
    effective_key ~journal_key (List.map (fun (j : a job) -> j.label) js)
  in
  (* Resume: completed cells recorded by a previous (interrupted) run are
     final before anything forks. *)
  let resumed : (string, a) Hashtbl.t =
    match journal with
    | Some path when resume -> (
      match read_journal path ~key with
      | Some tbl ->
        if Hashtbl.length tbl > 0 then
          note "journal %s: reused %d of %d cells" path (Hashtbl.length tbl) total;
        tbl
      | None -> Hashtbl.create 1)
    | Some _ | None -> Hashtbl.create 1
  in
  let states : a state array =
    Array.map
      (fun (j : a job) ->
        match Hashtbl.find_opt resumed j.label with
        | Some v ->
          (* A label can repeat; each journal entry satisfies every
             occurrence (cells are pure, so equal labels mean equal
             values). *)
          Finished (Ok v)
        | None -> Pending { attempts = 0; not_before = 0.0 })
      arr
  in
  let jc =
    match journal with
    | None -> None
    | Some path -> (
      match (resume, Hashtbl.length resumed > 0) with
      | true, true ->
        (* Append to the journal we resumed from. *)
        Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path)
      | _ ->
        let oc = open_out_bin path in
        Marshal.to_channel oc key [];
        flush oc;
        Some oc)
  in
  let journal_append label (v : a) =
    match jc with
    | None -> ()
    | Some oc ->
      Marshal.to_channel oc (label, v) [];
      flush oc
  in
  let slots = max 1 (min jobs (max 1 total)) in
  let finished = ref 0 in
  Array.iter (function Finished _ -> incr finished | _ -> ()) states;
  let running_count () =
    Array.fold_left
      (fun n -> function Running _ -> n + 1 | _ -> n)
      0 states
  in
  let finish i (r : (a, failure) result) =
    states.(i) <- Finished r;
    incr finished
  in
  let retry_or_fail i ~attempts reason =
    let label = arr.(i).label in
    if attempts <= retries then begin
      let delay = backoff *. (2.0 ** float_of_int (attempts - 1)) in
      note "cell %s failed (attempt %d of %d): %s; retrying in %.1fs" label
        attempts (retries + 1) reason delay;
      states.(i) <- Pending { attempts; not_before = Unix.gettimeofday () +. delay }
    end
    else finish i (Error { label; reason; attempts })
  in
  let finalize_eof i (r : running) =
    let _, status = Unix.waitpid [] r.pid in
    (try Unix.close r.fd with Unix.Unix_error _ -> ());
    let bytes = Buffer.to_bytes r.buf in
    let parsed : a outcome option =
      if
        Bytes.length bytes >= Marshal.header_size
        && Bytes.length bytes >= Marshal.total_size bytes 0
      then try Some (Marshal.from_bytes bytes 0) with _ -> None
      else None
    in
    match parsed with
    | Some (Done v) ->
      journal_append arr.(i).label v;
      finish i (Ok v)
    | Some (Failed reason) -> retry_or_fail i ~attempts:r.attempts reason
    | None -> retry_or_fail i ~attempts:r.attempts (status_reason status)
  in
  let chunk = Bytes.create 65536 in
  let step () =
    let now = Unix.gettimeofday () in
    (* Kill cells past their wall-clock budget before launching more. *)
    (match timeout with
    | None -> ()
    | Some t ->
      Array.iteri
        (fun i st ->
          match st with
          | Running r when now -. r.started > t ->
            reap_kill r;
            retry_or_fail i ~attempts:r.attempts
              (Printf.sprintf "timed out after %.1fs (worker SIGKILLed)" t)
          | _ -> ())
        states);
    (* Launch pending cells, submission order first, into free slots. *)
    let free = ref (slots - running_count ()) in
    Array.iteri
      (fun i st ->
        match st with
        | Pending { attempts; not_before } when !free > 0 && not_before <= now ->
          states.(i) <- spawn arr.(i) ~attempts:(attempts + 1);
          decr free
        | _ -> ())
      states;
    (* Wait for output, a timeout deadline, or a backoff expiry. *)
    let fds =
      Array.fold_left
        (fun acc -> function Running r -> r.fd :: acc | _ -> acc)
        [] states
    in
    let deadline =
      Array.fold_left
        (fun acc st ->
          let candidate =
            match st with
            | Running r -> Option.map (fun t -> r.started +. t) timeout
            | Pending { not_before; _ } when not_before > now -> Some not_before
            | _ -> None
          in
          match (acc, candidate) with
          | None, c -> c
          | Some a, Some c -> Some (Float.min a c)
          | Some _, None -> acc)
        None states
    in
    let wait =
      match deadline with
      | None -> -1.0 (* block until a cell writes or EOFs *)
      | Some d -> Float.max 0.0 (d -. now)
    in
    let readable =
      if fds = [] then begin
        if wait > 0.0 then ignore (Unix.select [] [] [] wait);
        []
      end
      else
        match Unix.select fds [] [] wait with
        | readable, _, _ -> readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        (* Find the cell owning this fd; it is necessarily Running. *)
        Array.iteri
          (fun i st ->
            match st with
            | Running r when r.fd == fd -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> finalize_eof i r
              | n -> Buffer.add_subbytes r.buf chunk 0 n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
            | _ -> ())
          states)
      readable
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (function Running r -> reap_kill r | _ -> ()) states;
      match jc with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      while !finished < total do
        step ()
      done);
  Array.to_list
    (Array.map
       (function
         | Finished r -> r
         | Pending _ | Running _ -> assert false (* loop ran to completion *))
       states)

let run ?(jobs = 1) js =
  if jobs > 1024 then invalid_arg "Job_pool.run: jobs > 1024";
  let n = min jobs (List.length js) in
  if n <= 1 then run_serial js
  else
    List.map2
      (fun (j : _ job) r ->
        match r with
        | Ok v -> v
        | Error (f : failure) ->
          (* List.map2 evaluates left to right, so the first failing cell
             in submission order raises — whatever the slot count. *)
          raise (Job_failed { label = j.label; reason = f.reason }))
      js
      (run_hardened ~jobs:n js)
