type 'a job = { label : string; run : unit -> 'a }

let job ~label run = { label; run }

exception Job_failed of { label : string; reason : string }

let () =
  Printexc.register_printer (function
    | Job_failed { label; reason } ->
      Some (Printf.sprintf "Job_pool.Job_failed(%s): %s" label reason)
    | _ -> None)

let default_jobs () =
  (* getconf is POSIX; on the odd machine without it, serial is the only
     safe answer. *)
  try
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
    | Unix.WEXITED 0, Some n when n >= 1 -> n
    | _ -> 1
  with Unix.Unix_error _ | Sys_error _ -> 1

(* What a worker sends back for one job: the payload on success, the
   printed exception otherwise.  Travels through [Marshal], so [Ok]
   payloads must be closure-free — enforced at the send site, where a
   marshal failure is downgraded to [Failed]. *)
type 'a outcome = Done of 'a | Failed of string

let run_serial js = List.map (fun j -> j.run ()) js

(* One worker process: run the round-robin share [w, w+n, ...] of the
   job array, streaming [(index, outcome)] records to the parent.  Any
   exception is captured per job so one bad cell does not take the
   worker's remaining share down with it. *)
let worker_loop ~oc ~jobs_arr ~w ~n =
  let send i (outcome : _ outcome) =
    (try Marshal.to_channel oc (i, outcome) []
     with e ->
       (* The result itself would not marshal (e.g. it captured a
          closure): report that as the job's failure. *)
       Marshal.to_channel oc
         (i, Failed (Printf.sprintf "result not marshalable: %s" (Printexc.to_string e)))
         []);
    flush oc
  in
  let i = ref w in
  while !i < Array.length jobs_arr do
    let outcome =
      try Done (jobs_arr.(!i).run ()) with e -> Failed (Printexc.to_string e)
    in
    send !i outcome;
    i := !i + n
  done

let status_reason = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with status %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

let run_forked ~n js =
  let jobs_arr = Array.of_list js in
  let total = Array.length jobs_arr in
  (* Anything buffered before the fork would be flushed once per worker. *)
  flush stdout;
  flush stderr;
  let pipes = Array.init n (fun _ -> Unix.pipe ~cloexec:false ()) in
  let pids =
    Array.init n (fun w ->
        match Unix.fork () with
        | 0 ->
          (* Child: keep only this worker's write end; the read ends and
             sibling write ends must close or the parent never sees EOF. *)
          Array.iteri
            (fun w' (r, wr) ->
              Unix.close r;
              if w' <> w then Unix.close wr)
            pipes;
          let oc = Unix.out_channel_of_descr (snd pipes.(w)) in
          let code =
            try
              worker_loop ~oc ~jobs_arr ~w ~n;
              close_out oc;
              0
            with _ -> 1
          in
          (* [_exit]: the child must not run the parent's [at_exit]
             handlers or flush its copies of the parent's buffers. *)
          Unix._exit code
        | pid -> pid)
  in
  Array.iter (fun (_, w) -> Unix.close w) pipes;
  let results : _ outcome option array = Array.make total None in
  Array.iter
    (fun (r, _) ->
      let ic = Unix.in_channel_of_descr r in
      (try
         while true do
           let i, (outcome : _ outcome) = Marshal.from_channel ic in
           results.(i) <- Some outcome
         done
       with
      | End_of_file -> ()
      | Failure _ ->
        (* Truncated record: the worker died mid-write.  Its exit status
           (below) reports the crash; the partial record is dropped. *)
        ());
      close_in ic)
    pipes;
  let statuses = Array.map (fun pid -> snd (Unix.waitpid [] pid)) pids in
  (* Surface problems in submission order so a run fails on the same job
     whatever the worker count. *)
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Some (Done _) -> ()
      | Some (Failed reason) ->
        raise (Job_failed { label = jobs_arr.(i).label; reason })
      | None ->
        let status = statuses.(i mod n) in
        let reason =
          match status with
          | Unix.WEXITED 0 -> "worker exited without reporting this job"
          | s -> status_reason s
        in
        raise (Job_failed { label = jobs_arr.(i).label; reason }))
    results;
  Array.to_list
    (Array.map
       (function
         | Some (Done v) -> v
         | Some (Failed _) | None -> assert false (* raised above *))
       results)

let run ?(jobs = 1) js =
  if jobs > 1024 then invalid_arg "Job_pool.run: jobs > 1024";
  let n = min jobs (List.length js) in
  if n <= 1 then run_serial js else run_forked ~n js
