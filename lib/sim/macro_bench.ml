(* End-to-end runtime macro-benchmark: how fast does the simulator
   itself run?

   The paper's experiments care about simulated cycles; this harness
   cares about wall-clock seconds per simulated cycle, because the
   per-access cost of the speculative-load path bounds how large a trace
   the repository can afford to replay.  The workload is deliberately the
   queue-heavy worst case: many threads, each advancing many concurrent
   sequential streams, with compute gaps too small to drain the load
   channel — so the pending-preload queue stays hundreds of entries deep
   and any O(queue) work per access shows up as wall-clock time. *)

module Pattern = Workload.Pattern
module Trace = Workload.Trace
module Scheme = Preload.Scheme

type settings = {
  label : string;
  events : int;
  epc_pages : int;
  threads : int;
  streams_per_thread : int;
  compute : int;  (** Mean compute cycles between accesses. *)
  seed : int;
}

let full =
  {
    label = "full";
    events = 1_000_000;
    epc_pages = 2048;
    threads = 32;
    streams_per_thread = 30;
    compute = 2_000;
    seed = 4242;
  }

let smoke =
  {
    label = "smoke";
    events = 50_000;
    epc_pages = 1024;
    threads = 4;
    streams_per_thread = 16;
    compute = 2_000;
    seed = 4242;
  }

(* Pages each stream sweeps so the whole trace covers [events] accesses
   with every access touching a fresh page (events_per_page = 1): the
   streams never revisit, so the predictor keeps every stream alive and
   the preload windows of threads * streams_per_thread streams compete
   for the channel simultaneously. *)
let stream_pages s = (s.events / (s.threads * s.streams_per_thread)) + 1

let footprint_pages s = s.threads * s.streams_per_thread * stream_pages s

let queue_stress s =
  let pages = stream_pages s in
  let thread_pattern t =
    let streams =
      List.init s.streams_per_thread (fun i ->
          (((t * s.streams_per_thread) + i) * pages, pages))
    in
    Pattern.multi_stream ~site:t ~streams ~events_per_page:1 ~compute:s.compute
      ~jitter:0.1
  in
  let pattern =
    Pattern.take s.events
      (Pattern.parallel (List.init s.threads (fun t -> (t, thread_pattern t))))
  in
  Trace.make
    ~name:(Printf.sprintf "queue-stress-%s" s.label)
    ~elrange_pages:(footprint_pages s) ~footprint_pages:(footprint_pages s)
    ~seed:s.seed
    ~sites:(List.init s.threads (fun t -> (t, Printf.sprintf "thread%d" t)))
    pattern

let schemes =
  [
    Scheme.Baseline;
    Scheme.dfp_default;
    Scheme.dfp_stop;
    Scheme.next_line ~degree:4;
    Scheme.stride ~degree:4;
  ]

type row = {
  scheme : string;
  sim_cycles : int;
  wall_seconds : float;
  cycles_per_second : float;
  events_per_second : float;
  faults : int;
  preloads_issued : int;
  pending_at_end : int;
}

type trace_timings = {
  compile_seconds : float;
  arena_events_per_second : float;
  seq_events_per_second : float;
  replay_speedup : float;
}

type matrix_timings = {
  matrix_schemes : int;
  per_cell_wall_seconds : float;
  fused_wall_seconds : float;
  fused_speedup : float;
}

type report = {
  settings : settings;
  elrange_pages : int;
  trace : trace_timings;
  rows : row list;
  matrix : matrix_timings;
}

let run ?(clock = Sys.time) ?(jobs = 1) s =
  let trace = queue_stress s in
  let timed f =
    let t0 = clock () in
    let v = f () in
    (v, Float.max (clock () -. t0) 1e-9)
  in
  (* Compile the arena once, in the parent, before any replay: the per-
     scheme jobs below inherit the memo (in-process or copy-on-write
     across the pool's forks), so the timed regions measure replay, not
     trace generation.  The compile/replay series pits the packed-column
     iteration against the pre-arena path — regenerating the stream from
     the pattern via [Trace.events] — over the same events. *)
  let arena, compile_seconds =
    timed (fun () -> Workload.Trace_arena.compile trace)
  in
  let sink = ref 0 in
  let (), arena_wall =
    timed (fun () ->
        Workload.Trace_arena.iter arena
          ~f:(fun ~site:_ ~vpage ~compute:_ ~thread:_ -> sink := !sink + vpage))
  in
  let (), seq_wall =
    timed (fun () ->
        Seq.iter
          (fun (a : Workload.Access.t) -> sink := !sink + a.vpage)
          (Trace.events trace))
  in
  ignore !sink;
  let n = float_of_int (Workload.Trace_arena.length arena) in
  let trace_timings =
    {
      compile_seconds;
      arena_events_per_second = n /. arena_wall;
      seq_events_per_second = n /. seq_wall;
      replay_speedup = seq_wall /. arena_wall;
    }
  in
  let spec =
    Runner.Spec.make
      ~config:
        { Runner.default_config with epc_pages = s.epc_pages; log_capacity = 0 }
      ()
  in
  let measure scheme =
    let t0 = clock () in
    let r = Runner.run ~spec ~scheme trace in
    let t1 = clock () in
    (* The timed region is the replay alone; validation is unpaid but
       keeps the timing honest — a broken run must not post a time. *)
    (match Validate.check r with
    | [] -> ()
    | vs -> failwith (Validate.report vs));
    let wall = Float.max (t1 -. t0) 1e-9 in
    {
      scheme = r.Runner.scheme;
      sim_cycles = r.Runner.cycles;
      wall_seconds = wall;
      cycles_per_second = float_of_int r.Runner.cycles /. wall;
      events_per_second = float_of_int s.events /. wall;
      faults = r.Runner.metrics.Sgxsim.Metrics.faults;
      preloads_issued = r.Runner.metrics.Sgxsim.Metrics.preloads_issued;
      pending_at_end = r.Runner.diagnostics.Runner.pending_preloads;
    }
  in
  (* One job per scheme: the simulated columns are deterministic at any
     [jobs]; only the wall-clock columns reflect contention when the
     five replays share cores. *)
  let rows =
    Job_pool.run ~jobs
      (List.map
         (fun scheme ->
           Job_pool.job
             ~label:("runtime/" ^ Scheme.name scheme)
             (fun () -> measure scheme))
         schemes)
  in
  (* The fused-matrix series: one [Runner.run_fused] pass driving every
     scheme off a single trace replay, against the per-cell total (the
     sum of the row walls — exact at [jobs = 1], where the rows ran
     serially).  The fused results must agree with the per-cell rows on
     every simulated column; a divergence here is a broken fusion, not a
     slow one, and fails the benchmark. *)
  let fused_results, fused_wall =
    timed (fun () -> Runner.run_fused ~spec ~schemes trace)
  in
  List.iter
    (fun (r : Runner.result) ->
      match Validate.check r with
      | [] -> ()
      | vs -> failwith (Validate.report vs))
    fused_results;
  List.iter2
    (fun row (r : Runner.result) ->
      if
        row.sim_cycles <> r.Runner.cycles
        || row.faults <> r.Runner.metrics.Sgxsim.Metrics.faults
        || row.preloads_issued
           <> r.Runner.metrics.Sgxsim.Metrics.preloads_issued
        || row.pending_at_end <> r.Runner.diagnostics.Runner.pending_preloads
      then
        failwith
          (Printf.sprintf
             "Macro_bench: fused replay diverges from per-cell run for %s"
             row.scheme))
    rows fused_results;
  let per_cell_wall =
    List.fold_left (fun acc row -> acc +. row.wall_seconds) 0.0 rows
  in
  let matrix =
    {
      matrix_schemes = List.length schemes;
      per_cell_wall_seconds = per_cell_wall;
      fused_wall_seconds = fused_wall;
      fused_speedup = per_cell_wall /. fused_wall;
    }
  in
  {
    settings = s;
    elrange_pages = footprint_pages s;
    trace = trace_timings;
    rows;
    matrix;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let num f =
  (* %.17g round-trips every float and stays valid JSON (no nan/inf can
     occur here: wall is clamped positive, counters are finite). *)
  Printf.sprintf "%.17g" f

let to_json r =
  let s = r.settings in
  let str v = Printf.sprintf "\"%s\"" v in
  let obj fields =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields)
    ^ "}"
  in
  let settings_json =
    obj
      [
        ("label", str s.label); ("events", string_of_int s.events);
        ("epc_pages", string_of_int s.epc_pages);
        ("threads", string_of_int s.threads);
        ("streams_per_thread", string_of_int s.streams_per_thread);
        ("compute_cycles", string_of_int s.compute);
        ("seed", string_of_int s.seed);
        ("elrange_pages", string_of_int r.elrange_pages);
      ]
  in
  let row_json row =
    obj
      [
        ("scheme", str row.scheme);
        ("sim_cycles", string_of_int row.sim_cycles);
        ("wall_seconds", num row.wall_seconds);
        ("sim_cycles_per_wall_second", num row.cycles_per_second);
        ("events_per_wall_second", num row.events_per_second);
        ("faults", string_of_int row.faults);
        ("preloads_issued", string_of_int row.preloads_issued);
        ("pending_preloads_at_end", string_of_int row.pending_at_end);
      ]
  in
  let trace_json =
    obj
      [
        ("compile_wall_seconds", num r.trace.compile_seconds);
        ("arena_events_per_second", num r.trace.arena_events_per_second);
        ("seq_events_per_second", num r.trace.seq_events_per_second);
        ("replay_speedup", num r.trace.replay_speedup);
      ]
  in
  let matrix_json =
    obj
      [
        ("schemes", string_of_int r.matrix.matrix_schemes);
        ("per_cell_wall_seconds", num r.matrix.per_cell_wall_seconds);
        ("fused_wall_seconds", num r.matrix.fused_wall_seconds);
        ("fused_speedup", num r.matrix.fused_speedup);
      ]
  in
  obj
    [
      ("schema", str "sgx-preload/bench-runtime/v3");
      ("settings", settings_json);
      ("trace", trace_json);
      ("rows", "[" ^ String.concat ", " (List.map row_json r.rows) ^ "]");
      ("matrix", matrix_json);
    ]
  ^ "\n"

let print r =
  Printf.printf
    "## E-runtime — simulator throughput on queue-stress (%s: %d events, %d \
     threads x %d streams)\n\n"
    r.settings.label r.settings.events r.settings.threads
    r.settings.streams_per_thread;
  Printf.printf
    "  trace: compile %.3fs; replay %.0f ev/s (arena) vs %.0f ev/s (seq) = \
     %.1fx\n\n"
    r.trace.compile_seconds r.trace.arena_events_per_second
    r.trace.seq_events_per_second r.trace.replay_speedup;
  Printf.printf "  %-14s %14s %9s %16s %12s %9s\n" "scheme" "sim Mcyc"
    "wall s" "sim cyc/wall s" "events/s" "faults";
  List.iter
    (fun row ->
      Printf.printf "  %-14s %14.1f %9.3f %16.3e %12.0f %9d\n" row.scheme
        (float_of_int row.sim_cycles /. 1e6)
        row.wall_seconds row.cycles_per_second row.events_per_second row.faults)
    r.rows;
  Printf.printf
    "\n  matrix (%d schemes): per-cell %.3fs vs fused %.3fs = %.2fx\n"
    r.matrix.matrix_schemes r.matrix.per_cell_wall_seconds
    r.matrix.fused_wall_seconds r.matrix.fused_speedup;
  print_newline ()
