(** End-to-end runtime macro-benchmark (wall-clock, not simulated time).

    Times one full simulation per scheme on a synthetic {e queue-stress}
    trace — many threads each advancing many concurrent sequential
    streams with compute gaps too small to drain the load channel, so the
    pending-preload queue stays hundreds of entries deep.  Any O(queue)
    work on the per-access path dominates wall-clock here, which is what
    makes the numbers a regression tripwire for the speculative-load
    path's complexity.

    Results are informational (they measure the build machine, not the
    paper); CI uploads the JSON as an artifact rather than asserting on
    it.  The JSON schema is documented in README.md
    ("sgx-preload/bench-runtime/v3"). *)

type settings = {
  label : string;  (** Tag recorded in the report ("full" / "smoke"). *)
  events : int;  (** Total accesses replayed per scheme. *)
  epc_pages : int;
  threads : int;
  streams_per_thread : int;
  compute : int;  (** Mean compute cycles between accesses. *)
  seed : int;
}

val full : settings
(** 1M accesses, 8 threads x 30 streams — the reference configuration;
    the acceptance numbers in BENCH_runtime.json use this. *)

val smoke : settings
(** 50k accesses — CI-sized. *)

val queue_stress : settings -> Workload.Trace.t
(** The deterministic stress trace for these settings (exposed for
    tests). *)

val footprint_pages : settings -> int
(** Distinct pages the stress trace touches (= its ELRANGE). *)

type row = {
  scheme : string;
  sim_cycles : int;  (** Simulated cycles of the run (deterministic). *)
  wall_seconds : float;
  cycles_per_second : float;  (** sim_cycles / wall_seconds. *)
  events_per_second : float;
  faults : int;
  preloads_issued : int;
  pending_at_end : int;
}

type trace_timings = {
  compile_seconds : float;
      (** One {!Workload.Trace_arena.compile} of the stress trace (the
          full stream materialisation, or a cache decode when
          [SGX_PRELOAD_ARENA_CACHE] is warm). *)
  arena_events_per_second : float;
      (** Allocation-free {!Workload.Trace_arena.iter} throughput. *)
  seq_events_per_second : float;
      (** The pre-arena path: regenerating the stream from the pattern
          via [Trace.events], same events. *)
  replay_speedup : float;  (** [arena / seq] events-per-second ratio. *)
}

type matrix_timings = {
  matrix_schemes : int;  (** Schemes driven off the one fused pass. *)
  per_cell_wall_seconds : float;
      (** Sum of the per-scheme row walls — the cost of replaying the
          trace once per cell (exact at [jobs = 1]). *)
  fused_wall_seconds : float;
      (** One {!Runner.run_fused} pass over all schemes. *)
  fused_speedup : float;  (** [per_cell / fused]. *)
}
(** The scheme-matrix series: fused single-pass replay vs one replay
    per cell, on the same trace and schemes.  The fused pass's simulated
    columns are asserted equal to the per-cell rows before any timing is
    reported. *)

type report = {
  settings : settings;
  elrange_pages : int;
  trace : trace_timings;
  rows : row list;
  matrix : matrix_timings;
}

val run : ?clock:(unit -> float) -> ?jobs:int -> settings -> report
(** Replay the stress trace once per scheme (Baseline, DFP, DFP-stop,
    next-line, stride), timing each replay with [clock] (default
    [Sys.time]; pass a wall clock for real measurements).  Every run is
    passed through {!Validate.check} after its timed region; a violation
    raises [Failure] rather than reporting a time for a broken run.

    [jobs] (default 1) forks the five replays across a {!Job_pool}.  The
    simulated columns are deterministic at any [jobs]; the wall-clock
    columns measure whatever contention the fan-out creates, so use
    [jobs > 1] for throughput, [jobs = 1] for clean per-scheme timing. *)

val to_json : report -> string
(** The report as one JSON document (schema
    ["sgx-preload/bench-runtime/v3"]), newline-terminated. *)

val print : report -> unit
(** Human-readable table on stdout. *)
