(** Open-loop request serving: preloading as a tail-latency story.

    The paper scores schemes by whole-trace cycle totals, but a
    production enclave serves {e requests}; what a serving stack buys
    from preloading is fewer faults on the critical path of each call,
    i.e. a shorter latency tail.  This harness dispatches short slices
    of a workload's trace as requests into a pool of warm enclave
    instances (the {!Runner} single-instance machinery, exactly as the
    fleet uses it), charges the enclave call boundary
    ({!Sgxsim.Cost_model.transition_cost}: EENTER+EEXIT, or the
    switchless mailbox handoff) per request at the service layer, and
    reports per-scheme latency percentiles, throughput and
    SLO-violation counts.

    {b Determinism.}  Arrivals are a pure function of the config's seed
    ({!arrival_times}); the per-instance schedule breaks ties by index;
    and {!matrix} fans cells through {!Job_pool}, so output is
    byte-identical at any [-j] and across reruns with the same seed.
    Transition cycles are charged on the service timeline only — never
    to the instance clock — so every finalized instance run still
    satisfies {!Validate.check}'s cycle identity. *)

type arrival_process =
  | Poisson  (** Exponential inter-arrival gaps with mean [mean_gap]. *)
  | Bursty of { burst : int }
      (** Whole bursts of [burst] requests arrive at one instant;
          inter-burst gaps scale by [burst] to hold offered load. *)
  | Diurnal of { period : int; swing : float }
      (** Sinusoidally modulated rate: local mean gap swings by
          [±swing] around [mean_gap] over one [period] (cycles). *)

type resilience = {
  deadline : int option;
      (** Per-attempt latency bound in cycles; an attempt finishing
          later than [dispatch + deadline] has failed its round.
          [None] = attempts never fail. *)
  retries : int;
      (** Retry rounds after the first attempt; round [r+1] dispatches
          at [dispatch_r + deadline + retry_backoff * 2^r] on a
          different instance (pool permitting).  Requires a deadline. *)
  retry_backoff : int;  (** Base backoff in cycles, doubling per round. *)
  hedge_after : int option;
      (** Launch a duplicate attempt on another instance once the
          primary has been outstanding this many cycles; the first
          completion wins (ties to the primary), the loser is cancelled
          and counted — it can never double-complete the request.
          Needs [pool > 1]; [None] disables hedging. *)
  restart : Runner.restart_policy;
      (** Post-crash policy for every pool instance. *)
  breaker : Preload.Breaker.config option;
      (** Attach a preload circuit breaker to every pool instance. *)
  online : Preload.Online.config option;
      (** Attach the online adaptive controller to every pool instance
          (each learns from its own request stream; never on Native).
          The outcome's [scheme] label gains the ["+online"] suffix the
          per-instance results carry. *)
}

val no_resilience : resilience
(** The inert knobs: no deadline, no retries, no hedging, cold restarts,
    no breaker, no online controller.  With a crash-free plan, {!run}
    under [no_resilience] is field-for-field the pre-resilience service
    loop. *)

type config = {
  epc_pages : int;  (** EPC frames per warm instance. *)
  costs : Sgxsim.Cost_model.t;
  pool : int;  (** Warm enclave instances serving in parallel. *)
  requests : int;  (** Requests dispatched (the open-loop total). *)
  request_events : int;  (** Trace events replayed per request. *)
  mean_gap : int;  (** Mean inter-arrival gap in cycles. *)
  arrivals : arrival_process;
  seed : int;  (** Seeds the arrival generator. *)
  slo : int;  (** Latency objective in cycles; above it is a violation. *)
  switchless : bool;
      (** Charge the switchless mailbox handoff instead of EENTER+EEXIT. *)
  horizon : int option;
      (** Requests completing past this cycle count as in-flight
          (latency unrecorded); [None] completes everything.  Must be
          positive when given ({!arrival_times} validates). *)
  resilience : resilience;
}

val default_config : config
(** Poisson arrivals at ~50% pool utilisation for paper-cost traces:
    pool 4, 400 requests of 400 events, mean gap 2.5M cycles, SLO 30M
    cycles, seed 1, synchronous calls, no horizon, {!no_resilience}. *)

val arrival_name : arrival_process -> string
(** ["poisson"], ["bursty:<burst>"], ["diurnal:<period>,<swing>"] —
    always re-parseable by {!arrival_of_string} (total round-trip). *)

val arrival_of_string : string -> (arrival_process, string) result
(** Parse ["poisson"] / ["bursty"] / ["diurnal"] (stock parameters), or
    parameterized ["bursty:16"] / ["diurnal:200000000,0.8"] (the [(...)]
    spelling also works, mirroring [Scheme.of_string]). *)

val arrival_times : config -> int array
(** The full deterministic arrival schedule (absolute cycles,
    non-decreasing), exactly as {!run} consumes it: same seed, same
    arrivals.  Exposed for tests and the CI determinism contract.

    @raise Invalid_argument on a non-positive pool/gap/SLO or
    out-of-range arrival parameters. *)

type outcome = {
  scheme : string;
  fault_plan : string;
  switchless : bool;
  arrivals : string;  (** {!arrival_name} of the generator used. *)
  dispatched : int;
  completed : int;
  failed : int;  (** Requests that blew the deadline in every round. *)
  in_flight : int;  (** Requests unfinished at the horizon. *)
  attempts : int;
      (** Total attempts = dispatched + retried + hedged
          ({!Validate.check_resilience} enforces). *)
  retried : int;  (** Retry re-dispatches after a blown round. *)
  hedged : int;  (** Hedged duplicates launched. *)
  hedge_wins : int;  (** Hedge races the duplicate won. *)
  hedge_cancelled : int;
      (** Losing attempts cancelled (one per hedge race; the loser never
          double-completes a request). *)
  crashes : int;  (** Instance crashes across the pool. *)
  restarts : int;  (** Crash–restart cycles completed across the pool. *)
  down_at_end : int;  (** [crashes - restarts]. *)
  crash_pages_lost : int;  (** Resident pages wiped across all crashes. *)
  latencies : float array;
      (** Per-completed-request latency (cycles), dispatch order. *)
  latency_h : Repro_util.Histogram.t;
      (** Auto-expanding latency histogram (overflow stays empty;
          {!Validate.check_service} enforces). *)
  slo : int;
  slo_violations : int;
  makespan : int;  (** Cycle the last request finished. *)
  results : Runner.result list;  (** One finalized run per instance. *)
}

val run :
  ?config:config ->
  ?fault_plan:Fault_plan.t ->
  ?input_label:string ->
  scheme:Preload.Scheme.t ->
  Workload.Trace.t ->
  outcome
(** Serve [requests] trace slices through a pool of warm instances of
    [scheme].  Request [k] replays [request_events] events starting at
    index [k * request_events mod length], wrapping; its latency is
    queueing + transition + the instance-clock delta of its steps.
    Under a trace-corrupting [fault_plan] all schemes consume the same
    perturbed stream (draws keyed by event index); channel/EPC faults
    apply inside each instance as in any chaos run, surfacing as
    degraded-mode tails.

    A crash fault in the plan kills instances on their own clocks
    (schedules keyed by pool index, so members crash independently);
    downtime is charged to [cyc_restart] and therefore to every request
    queued behind the dead instance.  [config.resilience] adds the
    service-side responses: per-round deadlines, retry re-dispatch with
    exponential backoff onto a different instance, hedged duplicates
    (first completion wins, the loser is cancelled and counted — never
    double-completed), and an optional preload circuit breaker per
    instance.  Under {!no_resilience} and a crash-free plan the loop is
    field-for-field the pre-resilience dispatch. *)

val quantile : outcome -> float -> float
(** [quantile o q] ([0 <= q <= 1]): exact {!Repro_util.Stats.percentile}
    over the sorted latencies for small runs, {!Repro_util.Histogram.quantile}
    past 4096 completed requests.  [nan] when nothing completed. *)

val throughput : outcome -> float
(** Completed requests per million cycles of makespan (0 when idle). *)

val check : outcome -> Validate.violation list
(** {!Validate.check_resilience} over this outcome's packaged arguments
    (the superset of the old service battery: conservation with the
    failure disposition, attempt conservation, crash bookkeeping,
    breaker-transition legality, latency sanity, per-instance runs). *)

val assert_valid : outcome -> unit
(** @raise Validate.Invalid when {!check} reports anything. *)

exception Cells_failed of Job_pool.failure list
(** A hardened {!matrix} cell exhausted its retry budget (and
    [keep_going] was off). *)

val matrix :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?keep_going:bool ->
  ?config:config ->
  ?fault_plan:Fault_plan.t ->
  ?input_label:string ->
  scheme_for:(string -> Preload.Scheme.t) ->
  tags:string list ->
  Workload.Trace.t ->
  (string * outcome) list
(** One {!run} per tag, fanned through {!Job_pool} ([jobs] workers,
    submission-order merge) with each outcome {!assert_valid}ed in its
    worker.  Results pair each tag with its outcome, in [tags] order.

    With any of [timeout] (seconds per attempt), [retries] or
    [keep_going] set, cells run through {!Job_pool.run_hardened}: hung
    cells are killed at the timeout, failing cells re-run up to
    [retries] times, and — without [keep_going] — an exhausted cell
    raises {!Cells_failed}.  With [keep_going:true] the surviving cells
    are returned (failures reported on stderr only, keeping stdout
    byte-identical across [-j]). *)

val summary_table : (string * outcome) list -> Repro_util.Table.t
(** The per-scheme p50/p95/p99/p999 + SLO table — the stable surface
    the CI determinism diff compares. *)

val print_cells : (string * outcome) list -> unit
