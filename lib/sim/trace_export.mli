(** Render finished runs for external tools.

    Two consumers:

    - {b trace viewers}: {!chrome_trace} emits the Chrome trace-event JSON
      format, loadable in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev})
      or [chrome://tracing].  One process per run, four tracks: the app
      thread (fault AEX→ERESUME spans, SIP check/notify spans), the
      exclusive load channel (one span per page load, labelled demand /
      dfp / sip), the service scan (CLOCK scans and evictions), and the
      preload queue (enqueue / abort instants).  Timestamps are raw
      simulated cycles in the [ts]/[dur] fields.
    - {b data analysis}: {!jsonl_row} / {!csv_row} flatten one
      {!Runner.result} into a record of every cycle category and counter,
      suitable for appending to a JSONL log or a CSV table.

    Everything is emitted with a hand-rolled JSON writer; the repository
    deliberately has no JSON dependency. *)

val chrome_trace : Runner.result -> string
(** The whole run as one Chrome trace-event JSON object.  Runs that
    logged no events still produce a valid (metadata-only) trace. *)

val jsonl_row : Runner.result -> string
(** One JSON object (single line) of summary metrics for the run. *)

val csv_header : string
(** Column names matching {!csv_row}, comma-separated. *)

val csv_row : Runner.result -> string
(** The same fields as {!jsonl_row}, as one CSV line. *)
