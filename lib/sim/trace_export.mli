(** Render finished runs for external tools.

    One entry point, {!render}, over a closed {!format} variant:

    - [Chrome_trace]: the Chrome trace-event JSON format, loadable in
      Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
      [chrome://tracing].  One process per run, four tracks: the app
      thread (fault AEX→ERESUME spans, SIP check/notify spans), the
      exclusive load channel (one span per page load, labelled demand /
      dfp / sip), the service scan (CLOCK scans and evictions), and the
      preload queue (enqueue / abort instants).  Timestamps are raw
      simulated cycles in the [ts]/[dur] fields.
    - [Jsonl]: one JSON object (single line) flattening every cycle
      category, counter and end-of-run diagnostic of a {!Runner.result}.
    - [Csv]: the same fields as [Jsonl], as a header line plus one row.

    Adding a format means extending the variant; the compiler then walks
    every match site.  Everything is emitted with a hand-rolled JSON
    writer; the repository deliberately has no JSON dependency. *)

type format = Chrome_trace | Jsonl | Csv

val formats : (string * format) list
(** Stable CLI spellings, e.g. for a [Cmdliner] enum:
    [("chrome-trace", Chrome_trace); ("jsonl", Jsonl); ("csv", Csv)]. *)

val needs_events : format -> bool
(** Whether the format reads the event log (so callers know to run with
    logging enabled). *)

val render : format:format -> Runner.result -> string
(** The complete payload for one run, newline-terminated.  Runs that
    logged no events still produce a valid (metadata-only) Chrome
    trace. *)
