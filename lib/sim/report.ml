module Table = Repro_util.Table
module Metrics = Sgxsim.Metrics

let summary (r : Runner.result) =
  let m = r.metrics in
  Printf.sprintf
    "%s/%s: %s cycles, %s faults (%s in-flight, %s resolved-by-preload), %s \
     preloads (%s used, %s aborted)"
    r.workload r.scheme (Table.cell_int r.cycles)
    (Table.cell_int (Metrics.total_faults m))
    (Table.cell_int m.faults_in_flight)
    (Table.cell_int m.faults_already_present)
    (Table.cell_int m.preloads_completed)
    (Table.cell_int m.preload_hits)
    (Table.cell_int m.preloads_aborted)

let breakdown_table (r : Runner.result) =
  let m = r.metrics in
  let t =
    Table.create
      ~headers:[ ("category", Table.Left); ("cycles", Table.Right); ("share", Table.Right) ]
  in
  (* A zero-cycle run has no meaningful shares; say so rather than
     masking the division with a fake 1-cycle total (which silently
     rendered every share as 0.0%). *)
  let row name cycles =
    let share =
      if r.cycles = 0 then "n/a"
      else Table.cell_pct (float_of_int cycles /. float_of_int r.cycles)
    in
    Table.add_row t [ name; Table.cell_int cycles; share ]
  in
  row "compute" m.cyc_compute;
  row "in-EPC access" m.cyc_access;
  row "AEX" m.cyc_aex;
  row "ERESUME" m.cyc_eresume;
  row "OS handler" m.cyc_os_handler;
  row "load wait (demand)" m.cyc_load_wait;
  row "bitmap checks" m.cyc_bitmap_check;
  row "notifications" m.cyc_notify;
  row "SIP load wait" m.cyc_sip_wait;
  row "restart downtime" m.cyc_restart;
  Table.add_separator t;
  row "total" r.cycles;
  t

let diagnostics_table (r : Runner.result) =
  let d = r.Runner.diagnostics in
  let t =
    Table.create ~headers:[ ("diagnostic", Table.Left); ("value", Table.Right) ]
  in
  let row name v = Table.add_row t [ name; v ] in
  row "pending preloads" (Table.cell_int d.Runner.pending_preloads);
  row "in-flight preloads" (Table.cell_int d.Runner.in_flight_preloads);
  row "in-flight kind"
    (match d.Runner.in_flight_kind with
    | None -> "-"
    | Some Sgxsim.Load_channel.Demand -> "demand"
    | Some Sgxsim.Load_channel.Preload_dfp -> "dfp"
    | Some Sgxsim.Load_channel.Preload_sip -> "sip");
  row "resident pages" (Table.cell_int d.Runner.resident_at_end);
  row "EPC capacity" (Table.cell_int r.Runner.epc_capacity);
  row "events truncated" (if d.Runner.events_truncated then "yes" else "no");
  row "crashes" (Table.cell_int r.Runner.metrics.Metrics.crashes);
  row "restarts" (Table.cell_int d.Runner.restarts);
  row "crash pages lost"
    (Table.cell_int r.Runner.metrics.Metrics.crash_pages_lost);
  (match d.Runner.breaker_state with
  | None -> ()
  | Some s ->
    row "breaker state" (Preload.Breaker.state_name s);
    row "breaker trips" (Table.cell_int d.Runner.breaker_trips);
    row "breaker rejections"
      (Table.cell_int r.Runner.metrics.Metrics.preloads_rejected_breaker));
  (match d.Runner.online with
  | None -> ()
  | Some s ->
    let module Online = Preload.Online in
    row "online mode" (Online.mode_name s.Online.final_mode);
    row "online mode switches"
      (Table.cell_int (List.length s.Online.s_transitions));
    row "online phase shifts" (Table.cell_int s.Online.s_phase_shifts);
    row "online sites instrumented" (Table.cell_int s.Online.s_instrumented);
    row "online label flips"
      (Table.cell_int (List.length s.Online.s_label_changes)));
  t

let fault_latency_table (r : Runner.result) =
  let t =
    Table.create
      ~headers:
        [
          ("resolution", Table.Left); ("faults", Table.Right);
          ("mean cyc", Table.Right); ("overflow", Table.Right);
          ("max cyc", Table.Right); ("latency histogram", Table.Left);
        ]
  in
  List.iter
    (fun (kind, hist) ->
      let n = Repro_util.Histogram.count hist in
      Table.add_row t
        [
          Runner.resolution_name kind;
          Table.cell_int n;
          (if n = 0 then "-"
           else Table.cell_int (int_of_float (Repro_util.Histogram.mean hist)));
          (* Latencies past the histogram's range land in the explicit
             overflow bucket; the exact maximum shows how far past. *)
          Table.cell_int (Repro_util.Histogram.overflow hist);
          (if n = 0 then "-"
           else
             Table.cell_int
               (int_of_float (Repro_util.Histogram.max_observed hist)));
          Format.asprintf "%a" Repro_util.Histogram.pp hist;
        ])
    r.fault_latency;
  t

let comparison_row ~baseline r =
  ( r.Runner.scheme,
    Runner.normalized_time ~baseline r,
    Runner.improvement ~baseline r )

let geomean_normalized pairs =
  match pairs with
  | [] -> invalid_arg "Report.geomean_normalized: no runs"
  | _ ->
    Repro_util.Stats.geometric_mean
      (List.map (fun (b, r) -> Runner.normalized_time ~baseline:b r) pairs)

let ascii_scatter ~width ~height points ~max_x ~max_y =
  if width <= 0 || height <= 0 then invalid_arg "Report.ascii_scatter: bad size";
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (x, y) ->
      if x >= 0 && x <= max_x && y >= 0 && y <= max_y then begin
        let cx = x * (width - 1) / max 1 max_x in
        let cy = y * (height - 1) / max 1 max_y in
        (* Row 0 renders at the top; flip so y grows upward. *)
        grid.(height - 1 - cy).(cx) <- '*'
      end)
    points;
  let buf = Buffer.create (height * (width + 4)) in
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init width (Array.get row));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let fault_reduction ~baseline r =
  let bf = Metrics.total_faults baseline.Runner.metrics in
  if bf = 0 then None
  else
    Some
      (1.0
      -. float_of_int (Metrics.total_faults r.Runner.metrics)
         /. float_of_int bf)

(* ------------------------------------------------------------------ *)
(* Graceful degradation under fault plans                              *)
(* ------------------------------------------------------------------ *)

type degradation = {
  overhead : float;
  fault_increase : float option;
  preload_abort_rate : float option;
  mispreload_rate : float option;
}

(* [None] on a zero denominator: "0 aborted of 0 issued" is not a 0%
   abort rate, it is an undefined one, and conflating the two hid
   preloader-never-ran cells behind a clean-looking 0.0%. *)
let ratio num den =
  if den = 0 then None else Some (float_of_int num /. float_of_int den)

let cell_opt_pct = function None -> "n/a" | Some v -> Table.cell_pct v

let degradation ~fault_free (r : Runner.result) =
  if fault_free.Runner.cycles = 0 then
    invalid_arg "Report.degradation: empty fault-free baseline";
  let m = r.Runner.metrics in
  {
    overhead =
      (float_of_int r.Runner.cycles /. float_of_int fault_free.Runner.cycles)
      -. 1.0;
    fault_increase =
      Option.map
        (fun x -> x -. 1.0)
        (ratio (Metrics.total_faults m)
           (Metrics.total_faults fault_free.Runner.metrics));
    preload_abort_rate = ratio m.preloads_aborted m.preloads_issued;
    mispreload_rate = ratio m.preload_evicted_unused m.preloads_completed;
  }

let degradation_headers =
  [
    ("fault plan", Table.Left); ("cycles", Table.Right);
    ("overhead", Table.Right); ("faults", Table.Right);
    ("fault incr", Table.Right); ("abort rate", Table.Right);
    ("mispreload", Table.Right);
  ]

let degradation_row ~fault_free (r : Runner.result) =
  let d = degradation ~fault_free r in
  [
    r.Runner.fault_plan;
    Table.cell_int r.Runner.cycles;
    Table.cell_pct d.overhead;
    Table.cell_int (Metrics.total_faults r.Runner.metrics);
    cell_opt_pct d.fault_increase;
    cell_opt_pct d.preload_abort_rate;
    cell_opt_pct d.mispreload_rate;
  ]

let degradation_table ~fault_free faulted =
  let t = Table.create ~headers:degradation_headers in
  Table.add_row t (degradation_row ~fault_free fault_free);
  List.iter (fun r -> Table.add_row t (degradation_row ~fault_free r)) faulted;
  t
