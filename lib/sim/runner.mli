(** Execute a workload trace against a simulated enclave under a scheme.

    This is the reproduction's measurement harness: one [run] call is one
    "execution" of the paper's methodology (they run each binary under
    Graphene-SGX and read wall-clock time; we replay the trace and read
    the cycle counter). *)

type config = {
  epc_pages : int;
      (** Usable EPC frames.  The default, 2048 (8 MB), keeps the full
          experiment matrix fast; workload footprints scale with it. *)
  costs : Sgxsim.Cost_model.t;
  log_capacity : int;  (** Event-log ring size; 0 disables logging. *)
}

val default_config : config

val resolution_name : Sgxsim.Enclave.fault_resolution -> string
(** Stable label ("already-present" / "waited-in-flight" /
    "demand-load") used by reports and exports. *)

type restart_policy =
  | Cold  (** Restart with an empty EPC: every page faults back in. *)
  | Rewarm
      (** Restart and immediately re-request the pre-crash resident set
          through the ordinary preload path (subject to the breaker gate
          and the usual disposition accounting). *)

val restart_policy_name : restart_policy -> string
(** ["cold"] / ["rewarm"]. *)

val restart_policy_of_string : string -> (restart_policy, string) result
(** Inverse of {!restart_policy_name}; [Error reason] on anything else. *)

(** The run specification: every cross-cutting knob of a replay in one
    validated record.  This replaces the
    [?config ?fault_plan ?input_label ?restart ?breaker] optional-arg
    sprawl the run entry points (and each driver above them) used to
    mirror — the online controller arrives as a field here, not as a
    sixth argument.  Build with {!Spec.make} (validating) or start from
    {!Spec.default} and override fields. *)
module Spec : sig
  type t = {
    config : config;
    fault_plan : Fault_plan.t;
        (** Default {!Fault_plan.none}: the unperturbed simulation. *)
    input_label : string;  (** Reported as [result.input]. *)
    restart : restart_policy;  (** Post-crash policy (default [Cold]). *)
    breaker : Preload.Breaker.config option;
        (** Attach the preload circuit breaker (never on Native). *)
    online : Preload.Online.config option;
        (** Attach the online adaptive controller (never on Native).
            The controller takes whatever actuation slots the base
            scheme left free: on [Baseline] it owns both the mode-gated
            DFP and the dynamic SIP predicate; a scheme with its own
            fault-hook preloader keeps it, and a static plan keeps its
            predicate.  Results carry a ["+online"] scheme-name
            suffix. *)
  }

  val default : t
  (** All defaults: paper config, no fault plan, no breaker, no
      controller, cold restarts, empty input label. *)

  val make :
    ?config:config ->
    ?fault_plan:Fault_plan.t ->
    ?input_label:string ->
    ?restart:restart_policy ->
    ?breaker:Preload.Breaker.config ->
    ?online:Preload.Online.config ->
    unit ->
    t
  (** Validating constructor: raises [Invalid_argument] on a
      non-positive EPC, a negative log capacity, or an invalid
      breaker/online config (via their own [validate]).  Omitted fields
      take the {!default} values. *)
end

type diagnostics = {
  pending_preloads : int;  (** Preloads still queued at end of run. *)
  in_flight_preloads : int;
      (** Speculative loads (DFP {e or} SIP kind) mid-load at end of run
          (0/1).  A demand load in flight does not count. *)
  in_flight_kind : Sgxsim.Load_channel.kind option;
      (** Kind of the load occupying the channel at end of run, if any;
          lets {!Validate} attribute the dangling load to the right
          disposition identity. *)
  events_truncated : bool;
      (** The event ring overflowed: [events] is only the tail, so event
          counts cannot be cross-checked against metric counters. *)
  resident_at_end : int;
      (** Pages resident in EPC when the replay finished; {!Validate}
          checks page conservation against the event log and
          [epc_capacity]. *)
  restarts : int;
      (** Crash–restart cycles completed.  In a trace replay restart is
          charged atomically with the crash, so this equals
          [Metrics.crashes]; {!Validate.check_resilience} enforces it. *)
  breaker_state : Preload.Breaker.state option;
      (** Final breaker state; [None] when no breaker was attached. *)
  breaker_trips : int;  (** Transitions into Open. *)
  breaker_transitions : Preload.Breaker.transition list;
      (** Full chronological state-change log, checked for legality by
          {!Validate.check_resilience}. *)
  online : Preload.Online.summary option;
      (** End-of-run controller snapshot (final mode, transition and
          label-change logs, per-site classification totals); [None]
          when no controller was attached.  Checked by
          {!Validate.check_online}. *)
}
(** End-of-run diagnostic state.  One typed value consumed by
    {!Validate}, {!Report} and {!Trace_export}; grows here rather than
    as loose fields on {!result}. *)

type result = {
  workload : string;
  input : string;
  scheme : string;
  fault_plan : string;
      (** Name of the {!Fault_plan} the run executed under
          (["fault-free"] when none was given). *)
  cycles : int;  (** Total simulated execution time ([Metrics.total_cycles]). *)
  final_now : int;
      (** The simulated clock when the replay finished.  Must equal
          [cycles]; [Validate] enforces the identity. *)
  costs : Sgxsim.Cost_model.t;  (** Cost model the run actually used. *)
  metrics : Sgxsim.Metrics.t;
  events : Sgxsim.Event.t list;  (** Empty unless logging was enabled. *)
  diagnostics : diagnostics;
  fault_latency : (Sgxsim.Enclave.fault_resolution * Repro_util.Histogram.t) list;
      (** Raise-to-handled latency histogram per fault resolution kind.
          The histograms auto-expand, so the overflow bucket is empty on
          a healthy run ({!Validate} checks). *)
  dfp_stopped : bool;  (** Whether the §4.2 safety valve fired. *)
  instrumentation_points : int;  (** 0 for non-SIP schemes. *)
  epc_capacity : int;  (** EPC frames the run was configured with. *)
}

val run : ?spec:Spec.t -> scheme:Preload.Scheme.t -> Workload.Trace.t -> result
(** Replay the trace once, from its compiled {!Workload.Trace_arena}
    (compiling it on first use; see the arena's memo/cache), under
    [spec] (default {!Spec.default}).  [Native] schemes run with the
    native cost model and an effectively unbounded EPC (the machine's
    RAM); fault-plan EPC-budget and channel-jitter hooks do not apply to
    it (there is no enclave to perturb), so Native cycles are invariant
    across fault plans up to trace corruption.  The spec's fault plan
    perturbs the run at the plan's injection points; a stale plan
    scrambles the SIP plan before attachment, and corrupted traces are
    corrupted identically on every replay (the draws are seeded by event
    index). *)

val run_fused :
  ?spec:Spec.t -> schemes:Preload.Scheme.t list -> Workload.Trace.t ->
  result list
(** Replay the trace {e once}, driving one independent simulation
    instance per scheme off the single pass.  Results come back in
    [schemes] order and are field-for-field identical to
    [List.map (fun s -> run ~scheme:s trace) schemes]: instances share
    nothing mutable, each advances its own clock, and under a
    trace-corrupting plan all instances consume the same perturbed
    stream each solo run would have drawn (draws are keyed by event
    index).  The win is wall-clock: the arena is decoded and iterated
    once per trace instead of once per cell.  [run] is the singleton
    case. *)

(** {1 Single-instance machinery}

    The pieces [run_fused] is built from, exposed so {!Fleet} can drive
    several enclaves against {e different} traces under one shared EPC —
    a shape the scheme-fan-out of [run_fused] (one trace, many schemes)
    cannot express.  The contract: [make_instance] + per-event [step]s
    + [finalize] is exactly one [run]. *)

type instance = {
  i_scheme : Preload.Scheme.t;  (** Post stale-plan scramble. *)
  enclave : Sgxsim.Enclave.t;
  log : Sgxsim.Event.log;
  dfp : Preload.Dfp.t option;
  fault_latency_h :
    (Sgxsim.Enclave.fault_resolution * Repro_util.Histogram.t) list;
  sip_site : int -> bool;
  i_costs : Sgxsim.Cost_model.t;
  mutable now : int;  (** The instance's private simulated clock. *)
  i_fault_plan : Fault_plan.t;
  i_crash : Fault_plan.crash_fault option;
      (** [None] for Native or a crash-free plan — crash handling inert. *)
  i_crash_key : int;
      (** Instance index in the crash draw chain (the [owner] tag, 0 for
          a solo run), so fleet members crash independently. *)
  i_restart : restart_policy;
  i_breaker : Preload.Breaker.t option;
  i_online : Preload.Online.t option;
  mutable crash_window : int;
      (** Highest crash window already evaluated (-1 initially). *)
  mutable restarts : int;
}
(** One scheme's complete simulation state within a (possibly fused or
    fleet) replay.  Instances never share mutable state beyond an
    explicitly shared EPC pool. *)

val make_instance :
  ?epc:Sgxsim.Clock_evictor.t ->
  ?owner:int ->
  spec:Spec.t ->
  trace:Workload.Trace.t ->
  Preload.Scheme.t ->
  instance
(** Build a ready-to-step instance under [spec]: scrambles a stale SIP
    plan, creates the enclave, installs fault-plan hooks (non-Native
    only), attaches the preloader, the optional online controller (on
    the actuation slots the scheme left free), the optional circuit
    breaker (chained after everything; never on Native) and the latency
    histograms.  A fleet passes the shared [epc] pool and per-tenant
    [owner] tag; both are ignored for Native (which models
    unconstrained RAM and must not contend for EPC). *)

val check_crash : instance -> unit
(** Evaluate the crash schedule up to the instance's current clock:
    every not-yet-judged crash window gets its seeded draw; the first
    that fires crashes the enclave at [now], charges the restart delay
    to [cyc_restart] {e and} the clock (preserving the cycle identity),
    then rewarns under [Rewarm].  Called by {!step} before each event;
    exposed for drivers (e.g. [Service]) that advance clocks outside
    [step]. *)

val step :
  instance -> site:int -> vpage:int -> compute:int -> thread:int -> unit
(** Replay one trace event: crash-schedule check, compute span, then the
    (SIP-checked or plain) access, advancing the instance's private
    clock. *)

val finalize : spec:Spec.t -> trace:Workload.Trace.t -> instance -> result
(** Drain background work at the instance's final clock and package the
    {!result}.  Pass the same spec the instance was built with. *)

val improvement : baseline:result -> result -> float
(** Fractional improvement of a result over the baseline run
    ([0.114] = 11.4% faster; negative = overhead). *)

val normalized_time : baseline:result -> result -> float
(** Execution time normalized to the baseline ([< 1.] is faster). *)
