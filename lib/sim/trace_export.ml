module Event = Sgxsim.Event
module Metrics = Sgxsim.Metrics
module Load_channel = Sgxsim.Load_channel

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission                                               *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)

let obj fields =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, value) -> Printf.sprintf "%s:%s" (str k) value) fields))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (Perfetto / chrome://tracing loadable)       *)
(* ------------------------------------------------------------------ *)

(* Track (thread) ids within the single simulated-enclave process. *)
let tid_app = 1
let tid_channel = 2
let tid_scan = 3
let tid_queue = 4

let span ~name ~cat ~tid ~ts ~dur args =
  ( ts,
    obj
      ([
         ("name", str name); ("cat", str cat); ("ph", str "X");
         ("ts", string_of_int ts); ("dur", string_of_int dur);
         ("pid", "1"); ("tid", string_of_int tid);
       ]
      @ if args = [] then [] else [ ("args", obj args) ]) )

let instant ~name ~cat ~tid ~ts args =
  ( ts,
    obj
      ([
         ("name", str name); ("cat", str cat); ("ph", str "i");
         ("s", str "t"); ("ts", string_of_int ts);
         ("pid", "1"); ("tid", string_of_int tid);
       ]
      @ if args = [] then [] else [ ("args", obj args) ]) )

let metadata ~name ~tid args =
  obj
    [
      ("name", str name); ("ph", str "M"); ("pid", "1");
      ("tid", string_of_int tid); ("args", obj args);
    ]

let kind_str = function
  | Load_channel.Demand -> "demand"
  | Load_channel.Preload_dfp -> "dfp"
  | Load_channel.Preload_sip -> "sip"

(* Walk the chronological event list pairing span endpoints:
   Fault -> Eresume on the app track, Load_start -> Load_done on the
   channel track, absent Sip_check -> Sip_notify on the app track.
   Unpaired endpoints (a truncated log, a load still in flight) degrade
   to instants rather than being dropped. *)
let trace_events events =
  let out = ref [] in
  let emit e = out := e :: !out in
  let fault : (int * int) option ref = ref None in
  let load : (int * int * Load_channel.kind) option ref = ref None in
  let sip_checks : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Event.Fault { at; vpage } -> fault := Some (vpage, at)
      | Event.Aex_done { at; vpage } ->
        emit
          (instant ~name:"aex-done" ~cat:"fault" ~tid:tid_app ~ts:at
             [ ("vpage", string_of_int vpage) ])
      | Event.Eresume { at; vpage } -> (
        match !fault with
        | Some (v0, t0) when v0 = vpage ->
          fault := None;
          emit
            (span
               ~name:(Printf.sprintf "fault p%d" vpage)
               ~cat:"fault" ~tid:tid_app ~ts:t0 ~dur:(at - t0)
               [ ("vpage", string_of_int vpage) ])
        | Some _ | None ->
          emit
            (instant ~name:"eresume" ~cat:"fault" ~tid:tid_app ~ts:at
               [ ("vpage", string_of_int vpage) ]))
      | Event.Load_start { at; vpage; kind } -> load := Some (vpage, at, kind)
      | Event.Load_done { at; vpage; kind } -> (
        match !load with
        | Some (v0, t0, k0) when v0 = vpage && k0 = kind ->
          load := None;
          emit
            (span
               ~name:(Printf.sprintf "load p%d (%s)" vpage (kind_str kind))
               ~cat:"load" ~tid:tid_channel ~ts:t0 ~dur:(at - t0)
               [ ("vpage", string_of_int vpage); ("kind", str (kind_str kind)) ])
        | Some _ | None ->
          emit
            (instant ~name:"load-done" ~cat:"load" ~tid:tid_channel ~ts:at
               [ ("vpage", string_of_int vpage) ]))
      | Event.Sip_check { at; vpage; present } ->
        if present then
          emit
            (instant ~name:"sip-check hit" ~cat:"sip" ~tid:tid_app ~ts:at
               [ ("vpage", string_of_int vpage) ])
        else Hashtbl.replace sip_checks vpage at
      | Event.Sip_notify { at; vpage } -> (
        match Hashtbl.find_opt sip_checks vpage with
        | Some t0 ->
          Hashtbl.remove sip_checks vpage;
          emit
            (span
               ~name:(Printf.sprintf "sip-notify p%d" vpage)
               ~cat:"sip" ~tid:tid_app ~ts:t0 ~dur:(at - t0)
               [ ("vpage", string_of_int vpage) ])
        | None ->
          emit
            (instant ~name:"sip-notify" ~cat:"sip" ~tid:tid_app ~ts:at
               [ ("vpage", string_of_int vpage) ]))
      | Event.Evict { at; vpage } ->
        emit
          (instant ~name:"evict" ~cat:"epc" ~tid:tid_scan ~ts:at
             [ ("vpage", string_of_int vpage) ])
      | Event.Scan { at } ->
        emit (instant ~name:"clock-scan" ~cat:"epc" ~tid:tid_scan ~ts:at [])
      | Event.Preload_queued { at; vpage } ->
        emit
          (instant ~name:"preload-queued" ~cat:"preload" ~tid:tid_queue ~ts:at
             [ ("vpage", string_of_int vpage) ])
      | Event.Preload_aborted { at; count } ->
        emit
          (instant ~name:"preload-aborted" ~cat:"preload" ~tid:tid_queue ~ts:at
             [ ("count", string_of_int count) ])
      | Event.Crash { at; pages_lost } ->
        (* A crash orphans any open fault/load span; drop the pending
           starts so they degrade to instants rather than pairing with
           post-restart endpoints. *)
        fault := None;
        load := None;
        emit
          (instant ~name:"crash" ~cat:"fault" ~tid:tid_app ~ts:at
             [ ("pages_lost", string_of_int pages_lost) ])
      | Event.Access { at; vpage } ->
        emit
          (instant ~name:"access" ~cat:"app" ~tid:tid_app ~ts:at
             [ ("vpage", string_of_int vpage) ]))
    events;
  (* Spans are emitted when their end event is seen but stamped with
     their start time, so re-sort: viewers and the export test expect
     timestamp order. *)
  List.map snd
    (List.stable_sort
       (fun (ts_a, _) (ts_b, _) -> compare ts_a ts_b)
       (List.rev !out))

let chrome_trace (r : Runner.result) =
  let process_label =
    Printf.sprintf "%s/%s%s" r.workload r.scheme
      (if r.input = "" then "" else " (" ^ r.input ^ ")")
  in
  let header =
    metadata ~name:"process_name" ~tid:tid_app [ ("name", str process_label) ]
    :: List.map
         (fun (tid, name) ->
           metadata ~name:"thread_name" ~tid [ ("name", str name) ])
         [
           (tid_app, "app thread"); (tid_channel, "load channel");
           (tid_scan, "service scan"); (tid_queue, "preload queue");
         ]
  in
  Printf.sprintf "{%s:%s,%s:[\n%s\n]}" (str "displayTimeUnit") (str "ns")
    (str "traceEvents")
    (String.concat ",\n" (header @ trace_events r.events))

(* ------------------------------------------------------------------ *)
(* Result rows: JSONL / CSV                                            *)
(* ------------------------------------------------------------------ *)

let row_fields (r : Runner.result) =
  let m = r.metrics in
  let d = r.diagnostics in
  [
    ("workload", str r.workload);
    ("input", str r.input);
    ("scheme", str r.scheme);
    ("cycles", string_of_int r.cycles);
    ("final_now", string_of_int r.final_now);
    ("cyc_compute", string_of_int m.cyc_compute);
    ("cyc_access", string_of_int m.cyc_access);
    ("cyc_aex", string_of_int m.cyc_aex);
    ("cyc_eresume", string_of_int m.cyc_eresume);
    ("cyc_os_handler", string_of_int m.cyc_os_handler);
    ("cyc_load_wait", string_of_int m.cyc_load_wait);
    ("cyc_bitmap_check", string_of_int m.cyc_bitmap_check);
    ("cyc_notify", string_of_int m.cyc_notify);
    ("cyc_sip_wait", string_of_int m.cyc_sip_wait);
    ("cyc_restart", string_of_int m.cyc_restart);
    ("accesses", string_of_int m.accesses);
    ("faults", string_of_int m.faults);
    ("faults_in_flight", string_of_int m.faults_in_flight);
    ("faults_already_present", string_of_int m.faults_already_present);
    ("total_faults", string_of_int (Metrics.total_faults m));
    ("preloads_issued", string_of_int m.preloads_issued);
    ("preloads_rejected_breaker", string_of_int m.preloads_rejected_breaker);
    ("preloads_completed", string_of_int m.preloads_completed);
    ("preloads_aborted", string_of_int m.preloads_aborted);
    ("preloads_taken_over", string_of_int m.preloads_taken_over);
    ("preloads_skipped", string_of_int m.preloads_skipped);
    ("preload_hits", string_of_int m.preload_hits);
    ("preload_evicted_unused", string_of_int m.preload_evicted_unused);
    ("evictions", string_of_int m.evictions);
    ("sip_checks", string_of_int m.sip_checks);
    ("sip_notifies", string_of_int m.sip_notifies);
    ("scans", string_of_int m.scans);
    ("crashes", string_of_int m.crashes);
    ("crash_pages_lost", string_of_int m.crash_pages_lost);
    ("dfp_stopped", if r.dfp_stopped then "true" else "false");
    ("instrumentation_points", string_of_int r.instrumentation_points);
    ("pending_preloads", string_of_int d.Runner.pending_preloads);
    ("in_flight_preloads", string_of_int d.Runner.in_flight_preloads);
    ( "in_flight_kind",
      str
        (match d.Runner.in_flight_kind with
        | None -> "none"
        | Some k -> kind_str k) );
    ("resident_at_end", string_of_int d.Runner.resident_at_end);
    ("events_truncated", if d.Runner.events_truncated then "true" else "false");
    ( "online_mode",
      str
        (match d.Runner.online with
        | None -> "none"
        | Some s -> Preload.Online.mode_name s.Preload.Online.final_mode) );
    ( "online_transitions",
      string_of_int
        (match d.Runner.online with
        | None -> 0
        | Some s -> List.length s.Preload.Online.s_transitions) );
    ( "online_phase_shifts",
      string_of_int
        (match d.Runner.online with
        | None -> 0
        | Some s -> s.Preload.Online.s_phase_shifts) );
    ( "online_instrumented",
      string_of_int
        (match d.Runner.online with
        | None -> 0
        | Some s -> s.Preload.Online.s_instrumented) );
  ]

let jsonl_row r = obj (row_fields r)

let csv_header =
  (* Field order is fixed by [row_fields]; building the header from a
     dummy evaluation would need a result, so keep the literal in sync
     via the test that zips header and row widths. *)
  String.concat ","
    [
      "workload"; "input"; "scheme"; "cycles"; "final_now"; "cyc_compute";
      "cyc_access"; "cyc_aex"; "cyc_eresume"; "cyc_os_handler"; "cyc_load_wait";
      "cyc_bitmap_check"; "cyc_notify"; "cyc_sip_wait"; "cyc_restart";
      "accesses"; "faults";
      "faults_in_flight"; "faults_already_present"; "total_faults";
      "preloads_issued"; "preloads_rejected_breaker"; "preloads_completed";
      "preloads_aborted";
      "preloads_taken_over"; "preloads_skipped"; "preload_hits";
      "preload_evicted_unused"; "evictions"; "sip_checks"; "sip_notifies";
      "scans"; "crashes"; "crash_pages_lost"; "dfp_stopped";
      "instrumentation_points"; "pending_preloads";
      "in_flight_preloads"; "in_flight_kind"; "resident_at_end";
      "events_truncated"; "online_mode"; "online_transitions";
      "online_phase_shifts"; "online_instrumented";
    ]

let csv_cell value =
  (* JSON string values arrive quoted; CSV wants them bare (workload and
     scheme names contain no commas or quotes). *)
  let n = String.length value in
  if n >= 2 && value.[0] = '"' && value.[n - 1] = '"' then String.sub value 1 (n - 2)
  else value

let csv_row r = String.concat "," (List.map (fun (_, x) -> csv_cell x) (row_fields r))

(* ------------------------------------------------------------------ *)
(* The one rendering entry point                                       *)
(* ------------------------------------------------------------------ *)

type format = Chrome_trace | Jsonl | Csv

let formats =
  [ ("chrome-trace", Chrome_trace); ("jsonl", Jsonl); ("csv", Csv) ]

let needs_events = function Chrome_trace -> true | Jsonl | Csv -> false

(* The single exhaustiveness-checked dispatch: adding a format extends
   the variant, and the compiler walks every consumer here. *)
let render ~format r =
  match format with
  | Chrome_trace -> chrome_trace r ^ "\n"
  | Jsonl -> jsonl_row r ^ "\n"
  | Csv -> csv_header ^ "\n" ^ csv_row r ^ "\n"
