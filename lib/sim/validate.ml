module Event = Sgxsim.Event
module Metrics = Sgxsim.Metrics
module Cost_model = Sgxsim.Cost_model
module Load_channel = Sgxsim.Load_channel
module Histogram = Repro_util.Histogram

type violation = { check : string; detail : string }

let v check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

let report violations =
  String.concat "\n"
    (List.map (fun x -> Printf.sprintf "[%s] %s" x.check x.detail) violations)

(* ------------------------------------------------------------------ *)
(* Event-log invariants                                                *)
(* ------------------------------------------------------------------ *)

(* The log presents one global chronological sequence; per-track
   discipline (channel, fault spans, SIP spans) is checked by walking it
   with a small state machine per track. *)

let check_monotone events =
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if Event.at a > Event.at b then
          v "monotone-timestamps" "event at t=%d precedes event at t=%d"
            (Event.at a) (Event.at b)
          :: acc
        else acc
      in
      walk acc rest
    | _ -> List.rev acc
  in
  walk [] events

(* The load channel is exclusive and non-preemptible: Load_start and
   Load_done must alternate, agree on page and kind, and a done can never
   precede its start. *)
let check_channel events =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let in_flight = ref None in
  List.iter
    (fun e ->
      match e with
      | Event.Load_start { at; vpage; kind } -> (
        match !in_flight with
        | Some (v0, _, at0) ->
          add
            (v "channel-exclusive"
               "load of p%d started at t=%d while p%d (started t=%d) had no \
                load-done"
               vpage at v0 at0)
        | None -> in_flight := Some (vpage, kind, at))
      | Event.Load_done { at; vpage; kind } -> (
        match !in_flight with
        | None ->
          add (v "channel-exclusive" "load-done of p%d at t=%d without a load-start" vpage at)
        | Some (v0, k0, at0) ->
          if v0 <> vpage || k0 <> kind then
            add
              (v "channel-exclusive"
                 "load-done of p%d at t=%d does not match in-flight p%d" vpage
                 at v0)
          else if at < at0 then
            add
              (v "channel-exclusive" "load of p%d completed at t=%d before it started at t=%d"
                 vpage at at0);
          in_flight := None)
      (* A crash cancels the in-flight load: its Load_done never arrives,
         and the next Load_start is legal.  The only place a start may go
         unmatched mid-log. *)
      | Event.Crash _ -> in_flight := None
      | _ -> ())
    events;
  (* A load still in flight when the log ends is legal (the run stopped
     mid-span); only ordering violations count. *)
  List.rev !violations

(* Faults are serviced synchronously in a single-threaded replay, so the
   Fault / Aex_done / Eresume triple of one fault never interleaves with
   another's.  AEX has a fixed architectural cost, so Aex_done is exactly
   t_aex after the fault trapped. *)
let check_fault_spans ~costs events =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let state = ref `Idle in
  List.iter
    (fun e ->
      match (e, !state) with
      | Event.Fault { at; vpage }, `Idle -> state := `Faulted (vpage, at)
      | Event.Fault { at; vpage }, (`Faulted (v0, _) | `Handled (v0, _)) ->
        add (v "fault-span" "fault on p%d at t=%d inside the span of p%d's fault" vpage at v0);
        state := `Faulted (vpage, at)
      | Event.Aex_done { at; vpage }, `Faulted (v0, at0) ->
        if vpage <> v0 then
          add (v "fault-span" "aex-done for p%d at t=%d but p%d faulted" vpage at v0);
        if at <> at0 + costs.Cost_model.t_aex then
          add
            (v "fault-span"
               "aex-done for p%d at t=%d, expected fault time %d + t_aex %d"
               vpage at at0 costs.Cost_model.t_aex);
        state := `Handled (v0, at0)
      | Event.Aex_done { at; vpage }, _ ->
        add (v "fault-span" "aex-done for p%d at t=%d without a pending fault" vpage at)
      | Event.Eresume { at; vpage }, `Handled (v0, at0) ->
        if vpage <> v0 then
          add (v "fault-span" "eresume for p%d at t=%d but p%d faulted" vpage at v0);
        if at < at0 then
          add (v "fault-span" "eresume for p%d at t=%d before its fault at t=%d" vpage at at0);
        state := `Idle
      | Event.Eresume { at; vpage }, _ ->
        add (v "fault-span" "eresume for p%d at t=%d without a handled fault" vpage at)
      | _ -> ())
    events;
  (match !state with
  | `Idle -> ()
  | `Faulted (v0, at0) | `Handled (v0, at0) ->
    add (v "fault-span" "fault on p%d at t=%d has no eresume" v0 at0));
  List.rev !violations

(* A SIP notification is stamped when the kernel thread receives it —
   exactly t_notify after the absent bitmap check that triggered it.
   (This is the invariant the pre-fix [Sip_notify] stamp violated: it
   carried the check time instead.) *)
let check_sip_spans ~costs events =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let pending : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Event.Sip_check { at; vpage; present } ->
        if present then Hashtbl.remove pending vpage
        else Hashtbl.replace pending vpage at
      | Event.Sip_notify { at; vpage } -> (
        match Hashtbl.find_opt pending vpage with
        | None ->
          add
            (v "sip-notify-span"
               "sip-notify for p%d at t=%d without a preceding absent check"
               vpage at)
        | Some checked_at ->
          if at <> checked_at + costs.Cost_model.t_notify then
            add
              (v "sip-notify-span"
                 "sip-notify for p%d stamped t=%d; the notify span of the \
                  check at t=%d ends at t=%d"
                 vpage at checked_at
                 (checked_at + costs.Cost_model.t_notify));
          Hashtbl.remove pending vpage)
      | _ -> ())
    events;
  List.rev !violations

let check_events ~costs events =
  check_monotone events
  @ check_channel events
  @ check_fault_spans ~costs events
  @ check_sip_spans ~costs events

(* ------------------------------------------------------------------ *)
(* Whole-run invariants                                                *)
(* ------------------------------------------------------------------ *)

let count pred events = List.length (List.filter pred events)

let check_accounting (r : Runner.result) =
  let m = r.metrics in
  let d = r.diagnostics in
  let sum_categories =
    m.cyc_compute + m.cyc_access + m.cyc_aex + m.cyc_eresume + m.cyc_os_handler
    + m.cyc_load_wait + m.cyc_bitmap_check + m.cyc_notify + m.cyc_sip_wait
    + m.cyc_restart
  in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  if Metrics.total_cycles m <> sum_categories then
    add
      (v "cycle-identity" "total_cycles %d <> sum of the ten categories %d"
         (Metrics.total_cycles m) sum_categories);
  if r.final_now <> Metrics.total_cycles m then
    add
      (v "cycle-identity" "final simulated now %d <> total accounted cycles %d"
         r.final_now (Metrics.total_cycles m));
  if r.cycles <> Metrics.total_cycles m then
    add (v "cycle-identity" "result.cycles %d <> total_cycles %d" r.cycles
           (Metrics.total_cycles m));
  if
    Metrics.total_faults m
    <> m.faults + m.faults_in_flight + m.faults_already_present
  then
    add
      (v "counter-identity"
         "total_faults %d <> demand %d + in-flight %d + already-present %d"
         (Metrics.total_faults m) m.faults m.faults_in_flight
         m.faults_already_present);
  (* Every preload request is either rejected (out of ELRANGE, refused by
     an Open circuit breaker, or a duplicate of a
     present/in-flight/queued page) or issued... *)
  if
    m.preloads_requested
    <> m.preloads_issued + m.preloads_rejected_range
       + m.preloads_rejected_breaker + m.preloads_rejected_dup
  then
    add
      (v "preload-identity"
         "requested %d <> issued %d + rejected-range %d + rejected-breaker %d \
          + rejected-dup %d"
         m.preloads_requested m.preloads_issued m.preloads_rejected_range
         m.preloads_rejected_breaker m.preloads_rejected_dup);
  (* ...and every issued preload ends in exactly one disposition.  Only
     a DFP-kind load closes this identity: [preloads_issued] counts the
     speculative queue, which SIP's synchronous loads never enter. *)
  let in_flight_dfp =
    match d.Runner.in_flight_kind with
    | Some Load_channel.Preload_dfp -> 1
    | Some (Load_channel.Preload_sip | Load_channel.Demand) | None -> 0
  in
  let accounted =
    m.preloads_completed + m.preloads_aborted + m.preloads_taken_over
    + m.preloads_skipped + d.Runner.pending_preloads + in_flight_dfp
  in
  if m.preloads_issued <> accounted then
    add
      (v "preload-identity"
         "issued %d <> completed %d + aborted %d + taken-over %d + skipped %d \
          + queued %d + in-flight %d"
         m.preloads_issued m.preloads_completed m.preloads_aborted
         m.preloads_taken_over m.preloads_skipped d.Runner.pending_preloads
         in_flight_dfp);
  (* [in_flight_preloads] is the kind-resolved view of the same channel:
     either speculative kind counts, a demand load does not.  (The old
     runner counted only [Preload_dfp], silently dropping an in-flight
     SIP preload from the report.) *)
  let in_flight_expected =
    match d.Runner.in_flight_kind with
    | Some (Load_channel.Preload_dfp | Load_channel.Preload_sip) -> 1
    | Some Load_channel.Demand | None -> 0
  in
  if d.Runner.in_flight_preloads <> in_flight_expected then
    add
      (v "preload-identity"
         "in_flight_preloads %d disagrees with the channel (kind %s expects %d)"
         d.Runner.in_flight_preloads
         (match d.Runner.in_flight_kind with
         | None -> "none"
         | Some Load_channel.Demand -> "demand"
         | Some Load_channel.Preload_dfp -> "preload-dfp"
         | Some Load_channel.Preload_sip -> "preload-sip")
         in_flight_expected);
  if m.accesses < Metrics.total_faults m then
    add
      (v "counter-identity" "accesses %d < total faults %d" m.accesses
         (Metrics.total_faults m));
  List.rev !violations

(* The latency histograms auto-expand, so every observation must land in
   a real bucket: a non-empty overflow bucket means a fixed bound crept
   back in and the reported mean is biased low. *)
let check_fault_latency (r : Runner.result) =
  List.filter_map
    (fun (kind, hist) ->
      let o = Repro_util.Histogram.overflow hist in
      if o = 0 then None
      else
        Some
          (v "fault-latency-overflow"
             "%s histogram overflowed %d observation(s) (max seen %.0f): the \
              range must expand to cover the tail"
             (Runner.resolution_name kind)
             o
             (Repro_util.Histogram.max_observed hist)))
    r.fault_latency

(* Page conservation: pages cannot be minted or leaked, whatever a fault
   plan does to budgets and latencies.  Residency never exceeds the EPC,
   and (given a complete log) every resident page is the net of loads
   completed minus evictions. *)
let check_conservation (r : Runner.result) =
  let d = r.diagnostics in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  if d.Runner.resident_at_end < 0 then
    add
      (v "page-conservation" "resident_at_end %d is negative"
         d.Runner.resident_at_end);
  if d.Runner.resident_at_end > r.epc_capacity then
    add
      (v "page-conservation" "resident_at_end %d exceeds EPC capacity %d"
         d.Runner.resident_at_end r.epc_capacity);
  if r.events <> [] && not d.Runner.events_truncated then begin
    let dones = count (function Event.Load_done _ -> true | _ -> false) r.events in
    let evicts = count (function Event.Evict _ -> true | _ -> false) r.events in
    (* Crash losses drop residency without Evict events: the dead
       enclave's pages simply vanish (no write-back), counted per crash
       in the log and in [crash_pages_lost]. *)
    let crash_losses =
      List.fold_left
        (fun acc e ->
          match e with
          | Event.Crash { pages_lost; _ } -> acc + pages_lost
          | _ -> acc)
        0 r.events
    in
    if dones - evicts - crash_losses <> d.Runner.resident_at_end then
      add
        (v "page-conservation"
           "load-dones %d - evictions %d - crash losses %d = %d, but %d pages \
            are resident"
           dones evicts crash_losses
           (dones - evicts - crash_losses)
           d.Runner.resident_at_end)
  end;
  List.rev !violations

(* Cycle categories and event counters are sums of non-negative charges;
   a negative value means an accounting path went backwards (e.g. a
   perturbed load duration shorter than the span already charged). *)
let check_non_negative (r : Runner.result) =
  let m = r.metrics in
  let counters =
    [
      ("cyc_compute", m.Metrics.cyc_compute); ("cyc_access", m.cyc_access);
      ("cyc_aex", m.cyc_aex); ("cyc_eresume", m.cyc_eresume);
      ("cyc_os_handler", m.cyc_os_handler); ("cyc_load_wait", m.cyc_load_wait);
      ("cyc_bitmap_check", m.cyc_bitmap_check); ("cyc_notify", m.cyc_notify);
      ("cyc_sip_wait", m.cyc_sip_wait); ("accesses", m.accesses);
      ("faults", m.faults); ("faults_in_flight", m.faults_in_flight);
      ("faults_already_present", m.faults_already_present);
      ("preloads_requested", m.preloads_requested);
      ("preloads_rejected_range", m.preloads_rejected_range);
      ("preloads_rejected_dup", m.preloads_rejected_dup);
      ("preloads_issued", m.preloads_issued);
      ("preloads_completed", m.preloads_completed);
      ("preloads_aborted", m.preloads_aborted);
      ("preloads_taken_over", m.preloads_taken_over);
      ("preloads_skipped", m.preloads_skipped);
      ("preload_hits", m.preload_hits);
      ("preload_evicted_unused", m.preload_evicted_unused);
      ("evictions", m.evictions); ("sip_checks", m.sip_checks);
      ("sip_notifies", m.sip_notifies); ("scans", m.scans);
      ("cyc_restart", m.cyc_restart);
      ("preloads_rejected_breaker", m.preloads_rejected_breaker);
      ("crashes", m.crashes); ("crash_pages_lost", m.crash_pages_lost);
      ("cycles", r.cycles); ("final_now", r.final_now);
      ("pending_preloads", r.diagnostics.Runner.pending_preloads);
      ("in_flight_preloads", r.diagnostics.Runner.in_flight_preloads);
      ("restarts", r.diagnostics.Runner.restarts);
      ("breaker_trips", r.diagnostics.Runner.breaker_trips);
    ]
  in
  List.filter_map
    (fun (name, value) ->
      if value < 0 then Some (v "non-negative" "%s is %d" name value) else None)
    counters

let check_event_counters (r : Runner.result) =
  let m = r.metrics in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let expect name expected actual =
    if expected <> actual then
      add (v "event-counter" "%s: metrics say %d, log has %d" name expected actual)
  in
  let events = r.events in
  expect "faults" (Metrics.total_faults m)
    (count (function Event.Fault _ -> true | _ -> false) events);
  expect "eresumes" (Metrics.total_faults m)
    (count (function Event.Eresume _ -> true | _ -> false) events);
  expect "preloads issued" m.preloads_issued
    (count (function Event.Preload_queued _ -> true | _ -> false) events);
  expect "preloads aborted" m.preloads_aborted
    (List.fold_left
       (fun acc e ->
         match e with Event.Preload_aborted { count; _ } -> acc + count | _ -> acc)
       0 events);
  expect "sip checks" m.sip_checks
    (count (function Event.Sip_check _ -> true | _ -> false) events);
  expect "sip notifies" m.sip_notifies
    (count (function Event.Sip_notify _ -> true | _ -> false) events);
  expect "evictions" m.evictions
    (count (function Event.Evict _ -> true | _ -> false) events);
  expect "scans" m.scans
    (count (function Event.Scan _ -> true | _ -> false) events);
  expect "crashes" m.crashes
    (count (function Event.Crash _ -> true | _ -> false) events);
  expect "crash pages lost" m.crash_pages_lost
    (List.fold_left
       (fun acc e ->
         match e with Event.Crash { pages_lost; _ } -> acc + pages_lost | _ -> acc)
       0 events);
  let starts = count (function Event.Load_start _ -> true | _ -> false) events in
  let dones = count (function Event.Load_done _ -> true | _ -> false) events in
  (* Each crash may cancel one in-flight load (a start whose done never
     arrives), plus at most one span legitimately open at end of log. *)
  if starts - dones < 0 || starts - dones > m.crashes + 1 then
    add
      (v "event-counter"
         "load-starts %d vs load-dones %d: at most one span open plus one \
          cancelled per crash (%d crashes)"
         starts dones m.crashes);
  List.rev !violations

(* Online-controller invariants: label conservation (every observed
   access carries exactly one lifetime class label), transition-log
   legality against the mode machine, and decision alignment — with a
   complete event log, every mode switch and label flip must sit on a
   service-scan timestamp, the only place the controller is allowed to
   act. *)
let check_online (r : Runner.result) =
  match r.diagnostics.Runner.online with
  | None -> []
  | Some s ->
    let module Online = Preload.Online in
    let violations = ref [] in
    let add x = violations := x :: !violations in
    if s.Online.s_observed <> r.metrics.Metrics.accesses then
      add
        (v "online-conservation"
           "controller observed %d access(es), metrics counted %d"
           s.Online.s_observed r.metrics.Metrics.accesses);
    let labelled =
      List.fold_left
        (fun acc (_, (c1, c2, c3)) -> acc + c1 + c2 + c3)
        0 s.Online.per_site
    in
    if labelled <> s.Online.s_observed then
      add
        (v "online-conservation"
           "per-site lifetime labels sum to %d, controller observed %d"
           labelled s.Online.s_observed);
    (match
       Online.check_transitions ?pin:s.Online.s_config.Online.pin
         s.Online.s_transitions
     with
    | None -> ()
    | Some reason -> add (v "online-legal" "%s" reason));
    let initial =
      Option.value s.Online.s_config.Online.pin ~default:Online.Baseline
    in
    let expected_final =
      List.fold_left
        (fun _ (x : Online.transition) -> x.Online.to_mode)
        initial s.Online.s_transitions
    in
    if s.Online.final_mode <> expected_final then
      add
        (v "online-legal" "final mode %s but transition log ends %s"
           (Online.mode_name s.Online.final_mode)
           (Online.mode_name expected_final));
    if r.events <> [] && not r.diagnostics.Runner.events_truncated then begin
      let scan_times = Hashtbl.create 64 in
      List.iter
        (fun e ->
          match e with
          | Event.Scan _ -> Hashtbl.replace scan_times (Event.at e) ()
          | _ -> ())
        r.events;
      let at_scan t = Hashtbl.mem scan_times t in
      List.iter
        (fun (x : Online.transition) ->
          if not (at_scan x.Online.at) then
            add
              (v "online-scan-aligned"
                 "mode switch %s -> %s at t=%d is not a scan timestamp"
                 (Online.mode_name x.Online.from_mode)
                 (Online.mode_name x.Online.to_mode)
                 x.Online.at))
        s.Online.s_transitions;
      List.iter
        (fun (x : Online.label_change) ->
          if not (at_scan x.Online.lc_at) then
            add
              (v "online-scan-aligned"
                 "label flip of site %d at t=%d is not a scan timestamp"
                 x.Online.lc_site x.Online.lc_at))
        s.Online.s_label_changes
    end;
    List.rev !violations

(* The oracle identity: a controller pinned to a static scheme's mode
   must reproduce that scheme's run field for field.  The only legal
   differences are the "+online" scheme label and the controller summary
   in the diagnostics; everything measurable — cycles, every metric
   counter, the event log, the end-of-run channel state — must agree. *)
let check_online_oracle ~(pinned : Runner.result) ~(static : Runner.result) =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  let expect_int name a b =
    if a <> b then add (v "online-oracle" "%s: pinned %d <> static %d" name a b)
  in
  let expect_str name a b =
    if a <> b then
      add (v "online-oracle" "%s: pinned %S <> static %S" name a b)
  in
  expect_str "workload" pinned.Runner.workload static.Runner.workload;
  expect_str "input" pinned.Runner.input static.Runner.input;
  expect_str "fault_plan" pinned.Runner.fault_plan static.Runner.fault_plan;
  expect_int "cycles" pinned.Runner.cycles static.Runner.cycles;
  expect_int "final_now" pinned.Runner.final_now static.Runner.final_now;
  expect_int "epc_capacity" pinned.Runner.epc_capacity
    static.Runner.epc_capacity;
  expect_int "instrumentation_points" pinned.Runner.instrumentation_points
    static.Runner.instrumentation_points;
  if pinned.Runner.dfp_stopped <> static.Runner.dfp_stopped then
    add
      (v "online-oracle" "dfp_stopped: pinned %b <> static %b"
         pinned.Runner.dfp_stopped static.Runner.dfp_stopped);
  if pinned.Runner.metrics <> static.Runner.metrics then
    add (v "online-oracle" "metric counters diverge");
  if pinned.Runner.events <> static.Runner.events then
    add
      (v "online-oracle" "event logs diverge (%d vs %d events)"
         (List.length pinned.Runner.events)
         (List.length static.Runner.events));
  if pinned.Runner.fault_latency <> static.Runner.fault_latency then
    add (v "online-oracle" "fault-latency histograms diverge");
  let dp = pinned.Runner.diagnostics and ds = static.Runner.diagnostics in
  expect_int "pending_preloads" dp.Runner.pending_preloads
    ds.Runner.pending_preloads;
  expect_int "in_flight_preloads" dp.Runner.in_flight_preloads
    ds.Runner.in_flight_preloads;
  expect_int "resident_at_end" dp.Runner.resident_at_end
    ds.Runner.resident_at_end;
  expect_int "restarts" dp.Runner.restarts ds.Runner.restarts;
  expect_int "breaker_trips" dp.Runner.breaker_trips ds.Runner.breaker_trips;
  if dp.Runner.in_flight_kind <> ds.Runner.in_flight_kind then
    add (v "online-oracle" "in-flight load kind diverges");
  if dp.Runner.events_truncated <> ds.Runner.events_truncated then
    add (v "online-oracle" "events_truncated diverges");
  List.rev !violations

let check (r : Runner.result) =
  check_accounting r
  @ check_non_negative r
  @ check_conservation r
  @ check_fault_latency r
  @ check_online r
  @
  (* Event-derived checks need the whole history: skip them when logging
     was off or the ring dropped its oldest events. *)
  if r.events = [] || r.diagnostics.Runner.events_truncated then []
  else check_event_counters r @ check_events ~costs:r.costs r.events

(* Fleet invariants take unpacked arrays rather than a [Fleet] record so
   [Fleet] can depend on this module (and not the other way round). *)
let check_fleet ~epc_pages ~shared ~interference ~triggered results =
  let n = List.length results in
  let violations = ref [] in
  let add x = violations := x :: !violations in
  if
    Array.length shared <> n
    || Array.length triggered <> n
    || Array.length interference <> n
    || Array.exists (fun row -> Array.length row <> n) interference
  then
    add
      (v "fleet-shape" "ownership/interference arrays do not match %d tenant(s)"
         n)
  else begin
    (* Every tenant's run must stand on its own first. *)
    List.iteri
      (fun i r ->
        List.iter
          (fun x ->
            add { x with check = Printf.sprintf "tenant%d:%s" i x.check })
          (check r))
      results;
    (* Frame conservation across the shared pool: co-tenants can squeeze
       each other but can never mint frames. *)
    let total =
      List.fold_left ( + ) 0
        (List.mapi
           (fun i (r : Runner.result) ->
             if shared.(i) then r.diagnostics.Runner.resident_at_end else 0)
           results)
    in
    if total > epc_pages then
      add
        (v "fleet-conservation"
           "shared tenants hold %d frames together, pool has %d" total
           epc_pages);
    Array.iteri
      (fun vi row ->
        Array.iteri
          (fun ai x ->
            if x < 0 then
              add
                (v "fleet-interference"
                   "negative entry at victim %d, aggressor %d" vi ai))
          row)
      interference;
    (* The interference table is double-entry bookkeeping over the same
       evictions the per-tenant counters record: each row must sum to its
       victim's eviction counter, each column to its aggressor's trigger
       counter. *)
    List.iteri
      (fun vi (r : Runner.result) ->
        let row_sum = Array.fold_left ( + ) 0 interference.(vi) in
        let evictions = r.metrics.Metrics.evictions in
        if row_sum <> evictions then
          add
            (v "fleet-interference"
               "victim %d: row sum %d <> evictions counter %d" vi row_sum
               evictions))
      results;
    for ai = 0 to n - 1 do
      let col = ref 0 in
      for vi = 0 to n - 1 do
        col := !col + interference.(vi).(ai)
      done;
      if !col <> triggered.(ai) then
        add
          (v "fleet-interference"
             "aggressor %d: column sum %d <> triggered counter %d" ai !col
             triggered.(ai))
    done
  end;
  List.rev !violations

(* Service invariants take unpacked scalars/histograms rather than a
   [Service] record so [Service] can depend on this module (the same
   inversion as [check_fleet]). *)

(* Shared by [check_service] and [check_resilience]: latency-histogram
   sanity plus the per-instance battery. *)
let service_core ~completed ~latency results add =
  let n = Histogram.count latency in
  if n <> completed then
    add
      (v "service-latency"
         "latency histogram holds %d observation(s), %d request(s) completed"
         n completed);
  if Histogram.nan_count latency <> 0 then
    add
      (v "service-latency" "%d nan latency observation(s)"
         (Histogram.nan_count latency));
  if Histogram.overflow latency <> 0 then
    add
      (v "service-latency"
         "latency histogram overflowed %d observation(s) despite auto-expand"
         (Histogram.overflow latency));
  if completed > 0 && Histogram.min_observed latency < 0.0 then
    add
      (v "service-latency" "negative request latency %.0f observed"
         (Histogram.min_observed latency));
  (* Every warm instance's run must stand on its own: the service layer
     charges transition cost outside the instance clock, so the full
     single-run battery (cycle identity included) still applies. *)
  List.iteri
    (fun i r ->
      List.iter
        (fun x -> add { x with check = Printf.sprintf "instance%d:%s" i x.check })
        (check r))
    results

let check_service ~dispatched ~completed ~in_flight ~latency results =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  if dispatched < 0 || completed < 0 || in_flight < 0 then
    add
      (v "service-conservation"
         "negative request counter (dispatched=%d completed=%d in-flight=%d)"
         dispatched completed in_flight);
  if dispatched <> completed + in_flight then
    add
      (v "service-conservation"
         "dispatched %d <> completed %d + in-flight %d" dispatched completed
         in_flight);
  service_core ~completed ~latency results add;
  List.rev !violations

(* The resilient-service battery: request conservation with a failure
   disposition, attempt conservation across retries and hedges, crash
   bookkeeping against the instances' own counters, and breaker
   transition-log legality. *)
let check_resilience ~dispatched ~completed ~failed ~in_flight ~attempts
    ~retried ~hedged ~hedge_wins ~hedge_cancelled ~crashes ~restarts
    ~down_at_end ~latency results =
  let violations = ref [] in
  let add x = violations := x :: !violations in
  List.iter
    (fun (name, value) ->
      if value < 0 then add (v "resilience-counter" "%s is %d" name value))
    [
      ("dispatched", dispatched); ("completed", completed); ("failed", failed);
      ("in_flight", in_flight); ("attempts", attempts); ("retried", retried);
      ("hedged", hedged); ("hedge_wins", hedge_wins);
      ("hedge_cancelled", hedge_cancelled); ("crashes", crashes);
      ("restarts", restarts); ("down_at_end", down_at_end);
    ];
  (* Every dispatched request ends in exactly one disposition. *)
  if dispatched <> completed + failed + in_flight then
    add
      (v "service-conservation"
         "dispatched %d <> completed %d + failed %d + in-flight %d" dispatched
         completed failed in_flight);
  (* Every attempt is the request's first dispatch, a retry re-dispatch,
     or a hedged duplicate — and a hedge race has exactly one winner, so
     wins and cancellations are bounded by the hedges launched. *)
  if attempts <> dispatched + retried + hedged then
    add
      (v "attempt-conservation"
         "attempts %d <> dispatched %d + retried %d + hedged %d" attempts
         dispatched retried hedged);
  if hedge_wins > hedged then
    add (v "attempt-conservation" "hedge wins %d exceed hedges %d" hedge_wins hedged);
  if hedge_cancelled > hedged then
    add
      (v "attempt-conservation" "hedge cancellations %d exceed hedges %d"
         hedge_cancelled hedged);
  (* Crash bookkeeping: every crash is either restarted or still down at
     the end, and the aggregates must agree with the instances' own
     counters. *)
  if crashes <> restarts + down_at_end then
    add
      (v "crash-bookkeeping" "crashes %d <> restarts %d + down-at-end %d"
         crashes restarts down_at_end);
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let metric_crashes = sum (fun (r : Runner.result) -> r.metrics.Metrics.crashes) in
  let diag_restarts =
    sum (fun (r : Runner.result) -> r.diagnostics.Runner.restarts)
  in
  if crashes <> metric_crashes then
    add
      (v "crash-bookkeeping" "outcome says %d crash(es), instances report %d"
         crashes metric_crashes);
  if restarts <> diag_restarts then
    add
      (v "crash-bookkeeping" "outcome says %d restart(s), instances report %d"
         restarts diag_restarts);
  List.iteri
    (fun i (r : Runner.result) ->
      let d = r.diagnostics in
      if d.Runner.restarts > r.metrics.Metrics.crashes then
        add
          (v "crash-bookkeeping" "instance%d: %d restart(s) but only %d crash(es)"
             i d.Runner.restarts r.metrics.Metrics.crashes);
      (match Preload.Breaker.check_transitions d.Runner.breaker_transitions with
      | None -> ()
      | Some reason -> add (v "breaker-legal" "instance%d: %s" i reason));
      let trips =
        List.length
          (List.filter
             (fun (x : Preload.Breaker.transition) ->
               x.Preload.Breaker.to_state = Preload.Breaker.Open)
             d.Runner.breaker_transitions)
      in
      if d.Runner.breaker_trips <> trips then
        add
          (v "breaker-legal"
             "instance%d: %d trip(s) reported, transition log has %d" i
             d.Runner.breaker_trips trips);
      match d.Runner.breaker_state with
      | None ->
        if d.Runner.breaker_transitions <> [] then
          add
            (v "breaker-legal"
               "instance%d: transitions logged without a breaker" i)
      | Some final ->
        let expected =
          List.fold_left
            (fun _ (x : Preload.Breaker.transition) -> x.Preload.Breaker.to_state)
            Preload.Breaker.Closed d.Runner.breaker_transitions
        in
        if final <> expected then
          add
            (v "breaker-legal"
               "instance%d: final state %s but transition log ends %s" i
               (Preload.Breaker.state_name final)
               (Preload.Breaker.state_name expected)))
    results;
  service_core ~completed ~latency results add;
  List.rev !violations

exception Invalid of violation list

let assert_valid r =
  match check r with
  | [] -> ()
  | violations ->
    raise (Invalid violations)

let () =
  Printexc.register_printer (function
    | Invalid violations ->
      Some (Printf.sprintf "Validate.Invalid:\n%s" (report violations))
    | _ -> None)
