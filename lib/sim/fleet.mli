(** Multi-enclave fleet simulation: co-tenant enclaves over one EPC.

    The paper evaluates one enclave at a time and defers EPC-sharing
    fairness to future work (§5.6); this module promotes co-tenancy to a
    first-class model.  A fleet is N concurrent enclaves — each with its
    own trace, scheme and preloader — interleaved by virtual time over:

    - {b one EPC}, either a single {e shared} pool swept by a global
      CLOCK evictor whose frames carry owner tags (a tenant's load can
      evict a co-tenant's page: cross-tenant interference), or {e static
      partitions} sized [capacity/N] apiece;
    - {b one paging channel}, arbitrated across tenants under a
      scheduling policy (FIFO / per-enclave fair-share / priority) on
      top of whatever {!Fault_plan} jitter is active.

    The replay always advances the tenant whose private clock is
    furthest behind, so the shared structures observe accesses in global
    time order and the whole run is deterministic — a fleet of one in
    shared mode reproduces {!Runner.run} byte for byte (the differential
    test and CI lock), and partition-of-1 coincides with shared-of-1.

    Outputs per tenant: the ordinary {!Runner.result} plus arbiter wait
    cycles; across the fleet: the victim × aggressor interference table,
    checked against the eviction counters by {!Validate.check_fleet}. *)

type epc_mode = Shared | Partitioned

val mode_name : epc_mode -> string
val mode_of_string : string -> epc_mode option

type tenant = {
  label : string;
  trace : Workload.Trace.t;
  scheme : Preload.Scheme.t;
  priority : int;
      (** Weight under the [Priority] channel policy; ignored by the
          other policies. *)
}

val tenant :
  ?priority:int ->
  label:string ->
  scheme:Preload.Scheme.t ->
  Workload.Trace.t ->
  tenant
(** [priority] defaults to 1.  @raise Invalid_argument if negative. *)

type config = {
  epc_pages : int;  (** Total EPC frames across the whole fleet. *)
  costs : Sgxsim.Cost_model.t;
  log_capacity : int;
      (** Per-tenant event-log ring; 0 (the default) disables logging —
          a co-tenant's evictions land in the victim's log at the
          aggressor's clock, so fleet logs are not globally monotone. *)
  policy : Sgxsim.Load_channel.Arbiter.policy;
  mode : epc_mode;
}

val default_config : config
(** 2048 shared frames, paper costs, no logs, FIFO channel. *)

type outcome = {
  mode : epc_mode;
  policy : Sgxsim.Load_channel.Arbiter.policy;
  epc_pages : int;
  fault_plan : string;
  labels : string list;
  results : Runner.result list;  (** Tenant order. *)
  shared_pool : bool array;
      (** Which tenants actually share the global pool: [false] for
          every tenant in [Partitioned] mode and for Native tenants
          (which model unconstrained RAM and never contend). *)
  interference : int array array;
      (** [interference.(victim).(aggressor)]: evictions of [victim]'s
          pages performed by [aggressor]'s sweeps.  Diagonal =
          self-eviction; strictly diagonal in partitioned mode. *)
  triggered : int array;  (** Evictions performed, per aggressor. *)
  channel_waits : int array;
      (** Cycles each tenant's loads spent queued behind co-tenants at
          the arbiter (0 for a fleet of one). *)
  channel_contentions : int;  (** Arbiter requests that had to wait. *)
}

val run :
  ?config:config ->
  ?fault_plan:Fault_plan.t ->
  ?input_label:string ->
  ?online:Preload.Online.config ->
  tenant list ->
  outcome
(** Execute the fleet to completion (every tenant's full trace).  With
    one tenant and [Shared] mode, [results] is [[Runner.run ... ]],
    structurally equal field for field.  [online] attaches the adaptive
    controller to every non-Native tenant (each learns from its own
    stream; the controllers share nothing).
    @raise Invalid_argument on an empty fleet. *)

val check : outcome -> Validate.violation list
(** {!Validate.check_fleet} over this outcome. *)

val assert_valid : outcome -> unit
(** @raise Validate.Invalid when {!check} reports anything. *)

(** {1 The scheme × mode matrix} *)

type cell = { c_tag : string; c_mode : epc_mode; c_outcome : outcome }

val matrix :
  ?jobs:int ->
  ?config:config ->
  ?fault_plan:Fault_plan.t ->
  ?input_label:string ->
  ?online:Preload.Online.config ->
  scheme_for:(string -> string -> Preload.Scheme.t) ->
  tags:string list ->
  modes:epc_mode list ->
  tenant list ->
  cell list
(** One fleet run per (scheme tag, mode) cell, fanned over [jobs] forked
    workers ({!Job_pool}; submission order, so output is byte-identical
    at any [-j]).  [scheme_for tag label] supplies each tenant's scheme
    for the cell (called inside the worker — SIP plan profiling is paid
    per cell, not serialised through the parent).  Every outcome passes
    {!assert_valid} in its worker.  The input [tenant]s' own [scheme]
    fields are placeholders. *)

(** {1 Report} *)

val interference_table : labels:string list -> int array array -> Repro_util.Table.t
(** Victim-major rows, one aggressor column each plus a row total. *)

val summary_lines : outcome -> string list
(** One {!Report.summary} line per tenant, label-prefixed — the CLI's
    [--summaries] output and the CI determinism diff. *)

val print_outcome : outcome -> unit
(** Per-tenant table (cycles, faults, fault rate, evictions suffered,
    channel wait), the interference table, and the contention count. *)

val print_cells : cell list -> unit
(** {!print_outcome} per cell plus, when both modes are present, the
    partition-vs-share total-cycles comparison per scheme. *)
