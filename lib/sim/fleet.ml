module Enclave = Sgxsim.Enclave
module Clock_evictor = Sgxsim.Clock_evictor
module Cost_model = Sgxsim.Cost_model
module Metrics = Sgxsim.Metrics
module Arbiter = Sgxsim.Load_channel.Arbiter
module Trace = Workload.Trace
module Trace_arena = Workload.Trace_arena
module Access = Workload.Access
module Scheme = Preload.Scheme
module Table = Repro_util.Table

type epc_mode = Shared | Partitioned

let mode_name = function Shared -> "shared" | Partitioned -> "partitioned"

let mode_of_string = function
  | "shared" -> Some Shared
  | "partitioned" | "partition" -> Some Partitioned
  | _ -> None

type tenant = {
  label : string;
  trace : Trace.t;
  scheme : Scheme.t;
  priority : int;
}

let tenant ?(priority = 1) ~label ~scheme trace =
  if priority < 0 then invalid_arg "Fleet.tenant: negative priority";
  { label; trace; scheme; priority }

type config = {
  epc_pages : int;
  costs : Cost_model.t;
  log_capacity : int;
  policy : Arbiter.policy;
  mode : epc_mode;
}

let default_config =
  {
    epc_pages = 2048;
    costs = Cost_model.paper;
    log_capacity = 0;
    policy = Arbiter.Fifo;
    mode = Shared;
  }

type outcome = {
  mode : epc_mode;
  policy : Arbiter.policy;
  epc_pages : int;
  fault_plan : string;
  labels : string list;
  results : Runner.result list;  (** Tenant order. *)
  shared_pool : bool array;
  interference : int array array;  (** [interference.(victim).(aggressor)] *)
  triggered : int array;
  channel_waits : int array;
  channel_contentions : int;
}

(* One tenant's position in the interleaved replay: its runner instance
   plus a cursor over its (possibly plan-perturbed) access stream. *)
type feed = {
  inst : Runner.instance;
  spec : Runner.Spec.t;
      (* Per-tenant: a partitioned pool gives each tenant its own EPC
         size, so each carries the spec it was built under into
         [finalize]. *)
  arena : Trace_arena.t;
  events : Access.t array option;
      (* Materialised per tenant when the plan corrupts/truncates the
         stream; [None] replays straight off the arena columns. *)
  len : int;
  mutable idx : int;
}

let partition_capacity ~epc_pages ~n i =
  (* Static split: cap/n frames each, the first (cap mod n) tenants take
     the remainder one frame apiece; never below one frame.  A partition
     of one tenant is the whole pool, which is what makes
     partition-of-1 coincide with shared-of-1 (and with Runner.run). *)
  max 1 ((epc_pages / n) + if i < epc_pages mod n then 1 else 0)

let run ?(config = default_config) ?(fault_plan = Fault_plan.none)
    ?(input_label = "") ?online tenants =
  let tenants = Array.of_list tenants in
  let n = Array.length tenants in
  if n = 0 then invalid_arg "Fleet.run: empty fleet";
  if n - 1 > 0xFFFE then invalid_arg "Fleet.run: too many tenants";
  let pool =
    match config.mode with
    | Shared -> Some (Clock_evictor.create ~capacity:config.epc_pages)
    | Partitioned -> None
  in
  let feeds =
    Array.mapi
      (fun i t ->
        let epc_pages =
          match config.mode with
          | Shared -> config.epc_pages
          | Partitioned -> partition_capacity ~epc_pages:config.epc_pages ~n i
        in
        let spec =
          Runner.Spec.make
            ~config:
              {
                Runner.epc_pages;
                costs = config.costs;
                log_capacity = config.log_capacity;
              }
            ~fault_plan ~input_label ?online ()
        in
        let inst =
          Runner.make_instance ?epc:pool ~owner:i ~spec ~trace:t.trace t.scheme
        in
        let arena = Trace_arena.compile t.trace in
        let events =
          match fault_plan.Fault_plan.trace with
          | None -> None
          | Some _ ->
            (* Draws are keyed by event index, so each tenant's stream is
               exactly what its solo run would have consumed. *)
            Some
              (Array.of_seq
                 (Fault_plan.perturb_trace fault_plan
                    ~elrange_pages:t.trace.Trace.elrange_pages
                    (Trace_arena.to_seq arena)))
        in
        let len =
          match events with
          | Some evs -> Array.length evs
          | None -> Trace_arena.length arena
        in
        { inst; spec; arena; events; len; idx = 0 })
      tenants
  in
  let enclaves = Array.map (fun f -> f.inst.Runner.enclave) feeds in
  (* Wire the co-tenancy: the shared pool's sweeps need every tenant's
     page table reachable by owner tag.  (Partitioned pools are private;
     nothing to link.) *)
  if config.mode = Shared then Enclave.link_fleet enclaves;
  let interference = Array.make_matrix n n 0 in
  let triggered = Array.make n 0 in
  Array.iter
    (fun e ->
      Enclave.set_on_evict e (fun ~aggressor ~victim ~vpage:_ ->
          interference.(victim).(aggressor) <-
            interference.(victim).(aggressor) + 1;
          triggered.(aggressor) <- triggered.(aggressor) + 1))
    enclaves;
  (* One paging channel arbiter across the fleet (the EPC partitioning
     knob does not split the bus).  Installed over the plan's jitter:
     first the plan stretches the load, then contention queues it.  For
     a single tenant the arbiter is the identity — its own channel
     already serialises loads, so every request arrives at or after
     [free_at] and waits zero — which is what keeps a fleet of one
     byte-identical to [Runner.run]. *)
  let arb =
    Arbiter.create
      ~priorities:(Array.map (fun t -> t.priority) tenants)
      ~policy:config.policy n
  in
  Array.iteri
    (fun i f ->
      match f.inst.Runner.i_scheme with
      | Scheme.Native -> ()
      | _ ->
        Enclave.set_load_perturb f.inst.Runner.enclave (fun ~at base ->
            let d =
              if fault_plan.Fault_plan.channel <> None then
                Fault_plan.perturb_load_duration fault_plan ~at base
              else base
            in
            Arbiter.request arb ~owner:i ~at d))
    feeds;
  (* Interleave by virtual time: always advance the tenant whose private
     clock is furthest behind (ties broken by lowest index), one trace
     event at a time.  This is the fleet's co-tenancy schedule — the
     shared pool and arbiter see accesses in global time order — and for
     a fleet of one it degenerates to the plain in-order replay. *)
  let live = ref n in
  Array.iter (fun f -> if f.len = 0 then decr live) feeds;
  while !live > 0 do
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      let f = feeds.(i) in
      if
        f.idx < f.len
        && (!best < 0
           || f.inst.Runner.now <= feeds.(!best).inst.Runner.now)
      then best := i
    done;
    let f = feeds.(!best) in
    (match f.events with
    | None ->
      Runner.step f.inst
        ~site:(Trace_arena.site f.arena f.idx)
        ~vpage:(Trace_arena.vpage f.arena f.idx)
        ~compute:(Trace_arena.compute f.arena f.idx)
        ~thread:(Trace_arena.thread f.arena f.idx)
    | Some evs ->
      let a = evs.(f.idx) in
      Runner.step f.inst ~site:a.Access.site ~vpage:a.Access.vpage
        ~compute:a.Access.compute ~thread:a.Access.thread);
    f.idx <- f.idx + 1;
    if f.idx >= f.len then decr live
  done;
  let results =
    Array.to_list
      (Array.mapi
         (fun i f ->
           Runner.finalize ~spec:f.spec ~trace:tenants.(i).trace f.inst)
         feeds)
  in
  let shared_pool =
    Array.map
      (fun f ->
        config.mode = Shared
        &&
        match f.inst.Runner.i_scheme with Scheme.Native -> false | _ -> true)
      feeds
  in
  {
    mode = config.mode;
    policy = config.policy;
    epc_pages = config.epc_pages;
    fault_plan = fault_plan.Fault_plan.name;
    labels = Array.to_list (Array.map (fun t -> t.label) tenants);
    results;
    shared_pool;
    interference;
    triggered;
    channel_waits = Array.init n (fun i -> Arbiter.wait_of arb i);
    channel_contentions = Arbiter.contentions arb;
  }

let check outcome =
  Validate.check_fleet ~epc_pages:outcome.epc_pages
    ~shared:outcome.shared_pool ~interference:outcome.interference
    ~triggered:outcome.triggered outcome.results

let assert_valid outcome =
  match check outcome with
  | [] -> ()
  | violations -> raise (Validate.Invalid violations)

(* ------------------------------------------------------------------ *)
(* The scheme x mode matrix                                            *)
(* ------------------------------------------------------------------ *)

type cell = { c_tag : string; c_mode : epc_mode; c_outcome : outcome }

let matrix ?(jobs = 1) ?(config = default_config) ?(fault_plan = Fault_plan.none)
    ?(input_label = "") ?online ~scheme_for ~tags ~modes tenants =
  if tenants = [] then invalid_arg "Fleet.matrix: empty fleet";
  let grid =
    List.concat_map (fun tag -> List.map (fun mode -> (tag, mode)) modes) tags
  in
  let jobs_list =
    List.map
      (fun (tag, mode) ->
        Job_pool.job
          ~label:(Printf.sprintf "fleet/%s/%s" tag (mode_name mode))
          (fun () ->
            let fleet =
              List.map (fun t -> { t with scheme = scheme_for tag t.label })
                tenants
            in
            let outcome =
              run ~config:{ config with mode } ~fault_plan ~input_label ?online
                fleet
            in
            assert_valid outcome;
            { c_tag = tag; c_mode = mode; c_outcome = outcome }))
      grid
  in
  Job_pool.run ~jobs jobs_list

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let interference_table ~labels m =
  let t =
    Table.create
      ~headers:
        (("victim \\ aggressor", Table.Left)
        :: List.map (fun l -> (l, Table.Right)) labels
        @ [ ("evicted total", Table.Right) ])
  in
  List.iteri
    (fun v label ->
      let row = m.(v) in
      Table.add_row t
        (label
        :: (Array.to_list (Array.map Table.cell_int row)
           @ [ Table.cell_int (Array.fold_left ( + ) 0 row) ])))
    labels;
  t

let summary_lines outcome =
  List.map2
    (fun label r -> Printf.sprintf "%-12s %s" label (Report.summary r))
    outcome.labels outcome.results

let print_outcome outcome =
  Printf.printf "fleet: %d tenant(s), %s EPC (%d pages), %s channel, plan %s\n"
    (List.length outcome.labels)
    (mode_name outcome.mode)
    outcome.epc_pages
    (Arbiter.policy_name outcome.policy)
    outcome.fault_plan;
  List.iter print_endline (summary_lines outcome);
  let t =
    Table.create
      ~headers:
        [
          ("tenant", Table.Left); ("cycles", Table.Right);
          ("faults", Table.Right); ("fault rate", Table.Right);
          ("evictions", Table.Right); ("evicted by others", Table.Right);
          ("channel wait", Table.Right);
        ]
  in
  List.iteri
    (fun i (r : Runner.result) ->
      let m = r.Runner.metrics in
      let faults = Metrics.total_faults m in
      let row = outcome.interference.(i) in
      let by_others =
        Array.fold_left ( + ) 0 row - row.(i)
      in
      Table.add_row t
        [
          List.nth outcome.labels i;
          Table.cell_int r.Runner.cycles;
          Table.cell_int faults;
          Table.cell_pct
            (if m.Metrics.accesses = 0 then 0.0
             else float_of_int faults /. float_of_int m.Metrics.accesses);
          Table.cell_int m.Metrics.evictions;
          Table.cell_int by_others;
          Table.cell_int outcome.channel_waits.(i);
        ])
    outcome.results;
  Table.print t;
  Printf.printf "\ninterference (evictions of victim's pages by aggressor):\n";
  Table.print (interference_table ~labels:outcome.labels outcome.interference);
  Printf.printf "\nchannel contentions: %d\n" outcome.channel_contentions

let print_cells cells =
  List.iter
    (fun c ->
      Printf.printf "### scheme %s, %s EPC\n\n" c.c_tag (mode_name c.c_mode);
      print_outcome c.c_outcome;
      print_newline ())
    cells;
  (* The partition-vs-share comparison the matrix exists for: per scheme,
     total fleet cycles under each mode. *)
  let tags =
    List.sort_uniq compare (List.map (fun c -> c.c_tag) cells)
  in
  let modes =
    List.sort_uniq compare (List.map (fun c -> c.c_mode) cells)
  in
  if List.length modes > 1 then begin
    let t =
      Table.create
        ~headers:
          (("scheme", Table.Left)
          :: List.map
               (fun m -> ("Σ cycles (" ^ mode_name m ^ ")", Table.Right))
               modes
          @ [ ("share vs partition", Table.Right) ])
    in
    List.iter
      (fun tag ->
        let total mode =
          List.fold_left
            (fun acc c ->
              if c.c_tag = tag && c.c_mode = mode then
                List.fold_left
                  (fun a (r : Runner.result) -> a + r.Runner.cycles)
                  acc c.c_outcome.results
              else acc)
            0 cells
        in
        let totals = List.map total modes in
        let ratio =
          match (total Shared, total Partitioned) with
          | s, p when p > 0 -> Printf.sprintf "%.3fx" (float_of_int s /. float_of_int p)
          | _ -> "-"
        in
        Table.add_row t
          (tag :: (List.map Table.cell_int totals @ [ ratio ])))
      tags;
    print_string "### partition vs share (total fleet cycles)\n\n";
    Table.print t
  end
