module Prng = Repro_util.Prng
module Stats = Repro_util.Stats
module Histogram = Repro_util.Histogram
module Cost_model = Sgxsim.Cost_model
module Metrics = Sgxsim.Metrics
module Trace = Workload.Trace
module Trace_arena = Workload.Trace_arena
module Access = Workload.Access
module Scheme = Preload.Scheme

type arrival_process =
  | Poisson
  | Bursty of { burst : int }
  | Diurnal of { period : int; swing : float }

type resilience = {
  deadline : int option;
  retries : int;
  retry_backoff : int;
  hedge_after : int option;
  restart : Runner.restart_policy;
  breaker : Preload.Breaker.config option;
  online : Preload.Online.config option;
}

let no_resilience =
  {
    deadline = None;
    retries = 0;
    retry_backoff = 0;
    hedge_after = None;
    restart = Runner.Cold;
    breaker = None;
    online = None;
  }

type config = {
  epc_pages : int;
  costs : Cost_model.t;
  pool : int;
  requests : int;
  request_events : int;
  mean_gap : int;
  arrivals : arrival_process;
  seed : int;
  slo : int;
  switchless : bool;
  horizon : int option;
  resilience : resilience;
}

let default_config =
  {
    epc_pages = 2048;
    costs = Cost_model.paper;
    pool = 4;
    requests = 400;
    request_events = 400;
    mean_gap = 2_500_000;
    arrivals = Poisson;
    seed = 1;
    slo = 30_000_000;
    switchless = false;
    horizon = None;
    resilience = no_resilience;
  }

let arrival_name = function
  | Poisson -> "poisson"
  | Bursty { burst } -> Printf.sprintf "bursty:%d" burst
  | Diurnal { period; swing } -> Printf.sprintf "diurnal:%d,%g" period swing

(* "bursty:16" (the CLI's spelling) and "bursty(16)" share one parameter
   grammar, mirroring [Scheme.of_string]; bare names keep their stock
   parameters.  [arrival_name] emits the [:] form, so every process
   round-trips through its own name. *)
let arrival_of_string s =
  let low = String.lowercase_ascii (String.trim s) in
  let body ~prefix =
    let plen = String.length prefix in
    if
      String.length low > plen + 1
      && String.sub low 0 (plen + 1) = prefix ^ ":"
    then Some (String.sub low (plen + 1) (String.length low - plen - 1))
    else if
      String.length low > plen + 2
      && String.sub low 0 (plen + 1) = prefix ^ "("
      && low.[String.length low - 1] = ')'
    then Some (String.sub low (plen + 1) (String.length low - plen - 2))
    else None
  in
  match low with
  | "poisson" -> Ok Poisson
  | "bursty" -> Ok (Bursty { burst = 8 })
  | "diurnal" -> Ok (Diurnal { period = 200_000_000; swing = 0.8 })
  | _ -> (
    match (body ~prefix:"bursty", body ~prefix:"diurnal") with
    | Some b, _ -> (
      match int_of_string_opt (String.trim b) with
      | Some burst when burst > 0 -> Ok (Bursty { burst })
      | Some _ ->
        Error (Printf.sprintf "arrival %S: burst must be positive" s)
      | None -> Error (Printf.sprintf "arrival %S: malformed burst %S" s b))
    | None, Some b -> (
      match String.split_on_char ',' b with
      | [ p; sw ] -> (
        match
          (int_of_string_opt (String.trim p), float_of_string_opt (String.trim sw))
        with
        | Some period, Some swing when period > 0 && swing >= 0.0 && swing < 1.0
          ->
          Ok (Diurnal { period; swing })
        | Some _, Some _ ->
          Error
            (Printf.sprintf
               "arrival %S: need period > 0 and swing in [0, 1)" s)
        | _ ->
          Error (Printf.sprintf "arrival %S: malformed parameters %S" s b))
      | _ ->
        Error (Printf.sprintf "arrival %S: diurnal takes PERIOD,SWING" s))
    | None, None ->
      Error
        (Printf.sprintf
           "unknown arrival process %S (known: poisson, bursty[:N], \
            diurnal[:PERIOD,SWING])"
           s))

let validate_config c =
  if c.pool <= 0 then invalid_arg "Service: pool must be positive";
  if c.requests < 0 then invalid_arg "Service: requests must be non-negative";
  if c.request_events < 0 then
    invalid_arg "Service: request_events must be non-negative";
  if c.mean_gap <= 0 then invalid_arg "Service: mean_gap must be positive";
  if c.slo <= 0 then invalid_arg "Service: slo must be positive";
  Option.iter
    (fun h -> if h <= 0 then invalid_arg "Service: horizon must be positive")
    c.horizon;
  (match c.arrivals with
  | Poisson -> ()
  | Bursty { burst } ->
    if burst <= 0 then invalid_arg "Service: burst must be positive"
  | Diurnal { period; swing } ->
    if period <= 0 then invalid_arg "Service: diurnal period must be positive";
    if not (swing >= 0.0 && swing < 1.0) then
      invalid_arg "Service: diurnal swing must be in [0, 1)");
  let z = c.resilience in
  if z.retries < 0 then invalid_arg "Service: retries must be non-negative";
  if z.retry_backoff < 0 then
    invalid_arg "Service: retry_backoff must be non-negative";
  Option.iter
    (fun d -> if d <= 0 then invalid_arg "Service: deadline must be positive")
    z.deadline;
  Option.iter
    (fun h ->
      if h < 0 then invalid_arg "Service: hedge_after must be non-negative")
    z.hedge_after;
  (* A retry is triggered by a blown deadline; without one it could never
     fire, so the combination is a config error, not a silent no-op. *)
  if z.retries > 0 && z.deadline = None then
    invalid_arg "Service: retries require a deadline";
  Option.iter (fun b -> ignore (Preload.Breaker.validate b)) z.breaker;
  Option.iter (fun o -> ignore (Preload.Online.validate o)) z.online;
  c

(* One exponential inter-arrival draw with the given mean, in whole
   cycles.  [1 - u] keeps the log argument in (0, 1]. *)
let exponential_gap prng mean =
  let u = Prng.float prng 1.0 in
  int_of_float (Float.round (-.mean *. Float.log1p (-.u)))

let arrival_times config =
  let c = validate_config config in
  let prng = Prng.create c.seed in
  let times = Array.make c.requests 0 in
  let now = ref 0 in
  (match c.arrivals with
  | Poisson ->
    for k = 0 to c.requests - 1 do
      now := !now + exponential_gap prng (float_of_int c.mean_gap);
      times.(k) <- !now
    done
  | Bursty { burst } ->
    (* Whole bursts arrive at one instant; inter-burst gaps stretch by
       the burst size so the offered load matches the Poisson process
       with the same [mean_gap]. *)
    let k = ref 0 in
    while !k < c.requests do
      now := !now + exponential_gap prng (float_of_int (c.mean_gap * burst));
      let n = min burst (c.requests - !k) in
      for i = 0 to n - 1 do
        times.(!k + i) <- !now
      done;
      k := !k + n
    done
  | Diurnal { period; swing } ->
    (* Sinusoidally modulated rate: the local mean gap swells and
       shrinks around [mean_gap] over one [period], compressing a
       rush-hour's arrivals and stretching the quiet phase. *)
    for k = 0 to c.requests - 1 do
      let phase =
        2.0 *. Float.pi
        *. (float_of_int (!now mod period) /. float_of_int period)
      in
      let local_mean =
        float_of_int c.mean_gap *. (1.0 +. (swing *. Float.sin phase))
      in
      now := !now + exponential_gap prng local_mean;
      times.(k) <- !now
    done);
  times

type outcome = {
  scheme : string;
  fault_plan : string;
  switchless : bool;
  arrivals : string;
  dispatched : int;
  completed : int;
  failed : int;
  in_flight : int;
  attempts : int;
  retried : int;
  hedged : int;
  hedge_wins : int;
  hedge_cancelled : int;
  crashes : int;
  restarts : int;
  down_at_end : int;
  crash_pages_lost : int;
  latencies : float array;
  latency_h : Histogram.t;
  slo : int;
  slo_violations : int;
  makespan : int;
  results : Runner.result list;
}

(* The per-request event source: the (possibly perturbed) compiled
   stream, sliced by index with wrap-around.  A trace-corrupting plan
   materialises the perturbed stream once — draws are keyed by event
   index, so every scheme cell consumes identical corruption. *)
let event_source fault_plan trace =
  let arena = Trace_arena.compile trace in
  match fault_plan.Fault_plan.trace with
  | None ->
    let len = Trace_arena.length arena in
    let get i =
      ( Trace_arena.site arena i,
        Trace_arena.vpage arena i,
        Trace_arena.compute arena i,
        Trace_arena.thread arena i )
    in
    (len, get)
  | Some _ ->
    let arr =
      Array.of_seq
        (Fault_plan.perturb_trace fault_plan
           ~elrange_pages:trace.Trace.elrange_pages
           (Trace_arena.to_seq arena))
    in
    let get i =
      let a = arr.(i) in
      (a.Access.site, a.Access.vpage, a.Access.compute, a.Access.thread)
    in
    (Array.length arr, get)

let run ?(config = default_config) ?(fault_plan = Fault_plan.none)
    ?(input_label = "") ~scheme trace =
  let c = validate_config config in
  let z = c.resilience in
  let arrivals = arrival_times c in
  let len, event = event_source fault_plan trace in
  let spec =
    Runner.Spec.make
      ~config:
        { Runner.epc_pages = c.epc_pages; costs = c.costs; log_capacity = 0 }
      ~fault_plan ~input_label ~restart:z.restart ?breaker:z.breaker
      ?online:z.online ()
  in
  (* [owner:i] keys each pool member's crash schedule (frame tags are
     unobservable in a private EPC pool, so this changes nothing for a
     crash-free plan); the restart policy and the optional breaker and
     online controller ride the same instance plumbing the chaos runner
     uses. *)
  let instances =
    Array.init c.pool (fun i ->
        Runner.make_instance ~owner:i ~spec ~trace scheme)
  in
  (* The service layer keeps its own timeline: [free_at.(i)] is when
     instance [i] finishes its current request, *including* the
     transition cycles charged here.  The instance's private clock
     [inst.now] advances only through [Runner.step], preserving the
     cycle identity [Validate.check] enforces on each finalized run. *)
  let free_at = Array.make c.pool 0 in
  let latency_h =
    Histogram.create ~auto_expand:true ~lo:0.0
      ~hi:(float_of_int (max 1 c.slo)) ~buckets:96 ()
  in
  let latencies = Array.make c.requests 0.0 in
  let completed = ref 0 in
  let failed = ref 0 in
  let in_flight = ref 0 in
  let retried = ref 0 in
  let hedged = ref 0 in
  let hedge_wins = ref 0 in
  let hedge_cancelled = ref 0 in
  let slo_violations = ref 0 in
  let makespan = ref 0 in
  (* Earliest-free instance; ties break to the lowest index so the
     schedule is a pure function of the arrival sequence.  [exclude]
     (-1 for none) steers a retry or hedge away from the instance whose
     attempt it shadows — moot in a pool of one. *)
  let pick ~exclude =
    let best = ref (-1) in
    for i = 0 to c.pool - 1 do
      if i <> exclude && (!best < 0 || free_at.(i) < free_at.(!best)) then
        best := i
    done;
    !best
  in
  (* One attempt on instance [i]: replay the request's slice, charge
     transition + service on the service timeline.  A lost hedge still
     ran to completion here — cancellation reclaims nothing (the load
     channel is non-preemptible), it only stops the loser from
     double-completing the request. *)
  let serve i ~dispatch ~offset =
    let inst = instances.(i) in
    let transition =
      Cost_model.transition_cost inst.Runner.i_costs ~switchless:c.switchless
    in
    let start = max dispatch free_at.(i) in
    let before = inst.Runner.now in
    if len > 0 then
      for j = 0 to c.request_events - 1 do
        let site, vpage, compute, thread = event ((offset + j) mod len) in
        Runner.step inst ~site ~vpage ~compute ~thread
      done;
    let service = inst.Runner.now - before in
    let finish = start + transition + service in
    free_at.(i) <- finish;
    if finish > !makespan then makespan := finish;
    finish
  in
  Array.iteri
    (fun k arrival ->
      let offset = if len > 0 then k * c.request_events mod len else 0 in
      (* Round [r] dispatches at [dispatch]; a blown deadline re-dispatches
         round [r+1] at [dispatch + deadline + backoff * 2^r] on a
         different instance.  [None] = every round failed. *)
      let rec round r ~dispatch ~exclude =
        let i = pick ~exclude in
        let finish_primary = serve i ~dispatch ~offset in
        let finish =
          match z.hedge_after with
          | Some h when c.pool > 1 && finish_primary > dispatch + h ->
            (* The primary is still running [h] cycles in: launch a
               duplicate on another instance; first completion wins (a
               tie goes to the primary), the loser is cancelled and can
               never double-complete the request. *)
            let j = pick ~exclude:i in
            let finish_hedge = serve j ~dispatch:(dispatch + h) ~offset in
            incr hedged;
            incr hedge_cancelled;
            if finish_hedge < finish_primary then begin
              incr hedge_wins;
              finish_hedge
            end
            else finish_primary
          | _ -> finish_primary
        in
        match z.deadline with
        | Some dl when finish - dispatch > dl ->
          if r < z.retries then begin
            incr retried;
            round (r + 1)
              ~dispatch:(dispatch + dl + (z.retry_backoff * (1 lsl r)))
              ~exclude:i
          end
          else None
        | _ -> Some finish
      in
      match round 0 ~dispatch:arrival ~exclude:(-1) with
      | None -> incr failed
      | Some finish -> (
        let latency = finish - arrival in
        match c.horizon with
        | Some h when finish > h -> incr in_flight
        | Some _ | None ->
          latencies.(!completed) <- float_of_int latency;
          incr completed;
          Histogram.add latency_h (float_of_int latency);
          if latency > c.slo then incr slo_violations))
    arrivals;
  let results =
    Array.to_list (Array.map (Runner.finalize ~spec ~trace) instances)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let crashes = sum (fun (r : Runner.result) -> r.Runner.metrics.Metrics.crashes) in
  let restarts =
    sum (fun (r : Runner.result) -> r.Runner.diagnostics.Runner.restarts)
  in
  let crash_pages_lost =
    sum (fun (r : Runner.result) -> r.Runner.metrics.Metrics.crash_pages_lost)
  in
  {
    scheme =
      (* Mirror the "+online" suffix the finalized runner results carry,
         so the service table and its per-instance results agree. *)
      (match results with
      | r :: _ -> r.Runner.scheme
      | [] -> Scheme.name scheme);
    fault_plan = fault_plan.Fault_plan.name;
    switchless = c.switchless;
    arrivals = arrival_name c.arrivals;
    dispatched = c.requests;
    completed = !completed;
    failed = !failed;
    in_flight = !in_flight;
    attempts = c.requests + !retried + !hedged;
    retried = !retried;
    hedged = !hedged;
    hedge_wins = !hedge_wins;
    hedge_cancelled = !hedge_cancelled;
    crashes;
    restarts;
    down_at_end = crashes - restarts;
    crash_pages_lost;
    latencies = Array.sub latencies 0 !completed;
    latency_h;
    slo = c.slo;
    slo_violations = !slo_violations;
    makespan = !makespan;
    results;
  }

(* Below this many completed requests the exact sorted-array percentile
   is used; past it, the histogram's interpolated quantile. *)
let exact_quantile_threshold = 4096

let quantile outcome q =
  if outcome.completed = 0 then Float.nan
  else if outcome.completed <= exact_quantile_threshold then
    Stats.percentile outcome.latencies (q *. 100.0)
  else Histogram.quantile outcome.latency_h q

let throughput outcome =
  if outcome.makespan = 0 then 0.0
  else float_of_int outcome.completed *. 1e6 /. float_of_int outcome.makespan

let check outcome =
  Validate.check_resilience ~dispatched:outcome.dispatched
    ~completed:outcome.completed ~failed:outcome.failed
    ~in_flight:outcome.in_flight ~attempts:outcome.attempts
    ~retried:outcome.retried ~hedged:outcome.hedged
    ~hedge_wins:outcome.hedge_wins ~hedge_cancelled:outcome.hedge_cancelled
    ~crashes:outcome.crashes ~restarts:outcome.restarts
    ~down_at_end:outcome.down_at_end ~latency:outcome.latency_h
    outcome.results

let assert_valid outcome =
  match check outcome with
  | [] -> ()
  | violations -> raise (Validate.Invalid violations)

exception Cells_failed of Job_pool.failure list

let () =
  Printexc.register_printer (function
    | Cells_failed fs ->
      Some
        (Printf.sprintf "Service.Cells_failed: %d cell(s):\n%s"
           (List.length fs)
           (String.concat "\n"
              (List.map
                 (fun (f : Job_pool.failure) ->
                   Printf.sprintf "  %s: %s (%d attempt(s))" f.label f.reason
                     f.attempts)
                 fs)))
    | _ -> None)

let matrix ?(jobs = 1) ?timeout ?retries ?(keep_going = false) ?config
    ?fault_plan ?input_label ~scheme_for ~tags trace =
  let jobs_list =
    List.map
      (fun tag ->
        Job_pool.job ~label:("service/" ^ tag) (fun () ->
            let outcome =
              run ?config ?fault_plan ?input_label ~scheme:(scheme_for tag)
                trace
            in
            assert_valid outcome;
            outcome))
      tags
  in
  if timeout = None && retries = None && not keep_going then
    List.combine tags (Job_pool.run ~jobs jobs_list)
  else begin
    (* The hardened path: forked cells, per-cell wall-clock timeout,
       bounded retry.  Without [keep_going] any exhausted cell fails the
       whole matrix (its row would be fabricated otherwise); with it,
       surviving cells are returned and failures go to stderr only, so
       stdout stays byte-identical across [-j]. *)
    let results = Job_pool.run_hardened ~jobs ?timeout ?retries jobs_list in
    let paired = List.combine tags results in
    let failures =
      List.filter_map
        (function _, Error f -> Some f | _, Ok _ -> None)
        paired
    in
    if failures <> [] && not keep_going then raise (Cells_failed failures);
    List.iter
      (fun (f : Job_pool.failure) ->
        Printf.eprintf "service: cell %s failed: %s (%d attempt(s))\n%!"
          f.label f.reason f.attempts)
      failures;
    List.filter_map
      (function tag, Ok o -> Some (tag, o) | _, Error _ -> None)
      paired
  end

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

module Table = Repro_util.Table

let cell_cycles v =
  if Float.is_nan v then "-" else Table.cell_int (int_of_float (Float.round v))

let summary_table cells =
  let t =
    Table.create
      ~headers:
        [
          ("scheme", Table.Left);
          ("mode", Table.Left);
          ("done", Table.Right);
          ("failed", Table.Right);
          ("in-flight", Table.Right);
          ("req/Mcyc", Table.Right);
          ("p50", Table.Right);
          ("p95", Table.Right);
          ("p99", Table.Right);
          ("p999", Table.Right);
          ("max", Table.Right);
          ("SLO-viol", Table.Right);
          ("crashes", Table.Right);
        ]
  in
  let online_suffix = "+online" in
  List.iter
    (fun (tag, o) ->
      (* The caller's tag is the CLI spelling; carry the runner's
         "+online" suffix over so the table row matches [o.scheme]. *)
      let tag =
        if
          String.ends_with ~suffix:online_suffix o.scheme
          && not (String.ends_with ~suffix:online_suffix tag)
        then tag ^ online_suffix
        else tag
      in
      Table.add_row t
        [
          tag;
          (if o.switchless then "switchless" else "sync");
          Table.cell_int o.completed;
          Table.cell_int o.failed;
          Table.cell_int o.in_flight;
          Table.cell_float ~decimals:3 (throughput o);
          cell_cycles (quantile o 0.50);
          cell_cycles (quantile o 0.95);
          cell_cycles (quantile o 0.99);
          cell_cycles (quantile o 0.999);
          cell_cycles (Histogram.max_observed o.latency_h);
          Table.cell_int o.slo_violations;
          Table.cell_int o.crashes;
        ])
    cells;
  t

let print_cells cells = Table.print (summary_table cells)
