module Prng = Repro_util.Prng
module Stats = Repro_util.Stats
module Histogram = Repro_util.Histogram
module Cost_model = Sgxsim.Cost_model
module Trace = Workload.Trace
module Trace_arena = Workload.Trace_arena
module Access = Workload.Access
module Scheme = Preload.Scheme

type arrival_process =
  | Poisson
  | Bursty of { burst : int }
  | Diurnal of { period : int; swing : float }

type config = {
  epc_pages : int;
  costs : Cost_model.t;
  pool : int;
  requests : int;
  request_events : int;
  mean_gap : int;
  arrivals : arrival_process;
  seed : int;
  slo : int;
  switchless : bool;
  horizon : int option;
}

let default_config =
  {
    epc_pages = 2048;
    costs = Cost_model.paper;
    pool = 4;
    requests = 400;
    request_events = 400;
    mean_gap = 2_500_000;
    arrivals = Poisson;
    seed = 1;
    slo = 30_000_000;
    switchless = false;
    horizon = None;
  }

let arrival_name = function
  | Poisson -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"

let arrival_of_string s =
  match String.lowercase_ascii s with
  | "poisson" -> Ok Poisson
  | "bursty" -> Ok (Bursty { burst = 8 })
  | "diurnal" -> Ok (Diurnal { period = 200_000_000; swing = 0.8 })
  | _ ->
    Error
      (Printf.sprintf "unknown arrival process %S (known: poisson, bursty, diurnal)" s)

let validate_config c =
  if c.pool <= 0 then invalid_arg "Service: pool must be positive";
  if c.requests < 0 then invalid_arg "Service: requests must be non-negative";
  if c.request_events < 0 then
    invalid_arg "Service: request_events must be non-negative";
  if c.mean_gap <= 0 then invalid_arg "Service: mean_gap must be positive";
  if c.slo <= 0 then invalid_arg "Service: slo must be positive";
  (match c.arrivals with
  | Poisson -> ()
  | Bursty { burst } ->
    if burst <= 0 then invalid_arg "Service: burst must be positive"
  | Diurnal { period; swing } ->
    if period <= 0 then invalid_arg "Service: diurnal period must be positive";
    if not (swing >= 0.0 && swing < 1.0) then
      invalid_arg "Service: diurnal swing must be in [0, 1)");
  c

(* One exponential inter-arrival draw with the given mean, in whole
   cycles.  [1 - u] keeps the log argument in (0, 1]. *)
let exponential_gap prng mean =
  let u = Prng.float prng 1.0 in
  int_of_float (Float.round (-.mean *. Float.log1p (-.u)))

let arrival_times config =
  let c = validate_config config in
  let prng = Prng.create c.seed in
  let times = Array.make c.requests 0 in
  let now = ref 0 in
  (match c.arrivals with
  | Poisson ->
    for k = 0 to c.requests - 1 do
      now := !now + exponential_gap prng (float_of_int c.mean_gap);
      times.(k) <- !now
    done
  | Bursty { burst } ->
    (* Whole bursts arrive at one instant; inter-burst gaps stretch by
       the burst size so the offered load matches the Poisson process
       with the same [mean_gap]. *)
    let k = ref 0 in
    while !k < c.requests do
      now := !now + exponential_gap prng (float_of_int (c.mean_gap * burst));
      let n = min burst (c.requests - !k) in
      for i = 0 to n - 1 do
        times.(!k + i) <- !now
      done;
      k := !k + n
    done
  | Diurnal { period; swing } ->
    (* Sinusoidally modulated rate: the local mean gap swells and
       shrinks around [mean_gap] over one [period], compressing a
       rush-hour's arrivals and stretching the quiet phase. *)
    for k = 0 to c.requests - 1 do
      let phase =
        2.0 *. Float.pi
        *. (float_of_int (!now mod period) /. float_of_int period)
      in
      let local_mean =
        float_of_int c.mean_gap *. (1.0 +. (swing *. Float.sin phase))
      in
      now := !now + exponential_gap prng local_mean;
      times.(k) <- !now
    done);
  times

type outcome = {
  scheme : string;
  fault_plan : string;
  switchless : bool;
  arrivals : string;
  dispatched : int;
  completed : int;
  in_flight : int;
  latencies : float array;
  latency_h : Histogram.t;
  slo : int;
  slo_violations : int;
  makespan : int;
  results : Runner.result list;
}

(* The per-request event source: the (possibly perturbed) compiled
   stream, sliced by index with wrap-around.  A trace-corrupting plan
   materialises the perturbed stream once — draws are keyed by event
   index, so every scheme cell consumes identical corruption. *)
let event_source fault_plan trace =
  let arena = Trace_arena.compile trace in
  match fault_plan.Fault_plan.trace with
  | None ->
    let len = Trace_arena.length arena in
    let get i =
      ( Trace_arena.site arena i,
        Trace_arena.vpage arena i,
        Trace_arena.compute arena i,
        Trace_arena.thread arena i )
    in
    (len, get)
  | Some _ ->
    let arr =
      Array.of_seq
        (Fault_plan.perturb_trace fault_plan
           ~elrange_pages:trace.Trace.elrange_pages
           (Trace_arena.to_seq arena))
    in
    let get i =
      let a = arr.(i) in
      (a.Access.site, a.Access.vpage, a.Access.compute, a.Access.thread)
    in
    (Array.length arr, get)

let run ?(config = default_config) ?(fault_plan = Fault_plan.none)
    ?(input_label = "") ~scheme trace =
  let c = validate_config config in
  let arrivals = arrival_times c in
  let len, event = event_source fault_plan trace in
  let runner_config =
    { Runner.epc_pages = c.epc_pages; costs = c.costs; log_capacity = 0 }
  in
  let instances =
    Array.init c.pool (fun _ ->
        Runner.make_instance ~config:runner_config ~fault_plan ~trace scheme)
  in
  (* The service layer keeps its own timeline: [free_at.(i)] is when
     instance [i] finishes its current request, *including* the
     transition cycles charged here.  The instance's private clock
     [inst.now] advances only through [Runner.step], preserving the
     cycle identity [Validate.check] enforces on each finalized run. *)
  let free_at = Array.make c.pool 0 in
  let latency_h =
    Histogram.create ~auto_expand:true ~lo:0.0
      ~hi:(float_of_int (max 1 c.slo)) ~buckets:96 ()
  in
  let latencies = Array.make c.requests 0.0 in
  let completed = ref 0 in
  let in_flight = ref 0 in
  let slo_violations = ref 0 in
  let makespan = ref 0 in
  Array.iteri
    (fun k arrival ->
      (* Earliest-free instance; ties break to the lowest index so the
         schedule is a pure function of the arrival sequence. *)
      let best = ref 0 in
      for i = 1 to c.pool - 1 do
        if free_at.(i) < free_at.(!best) then best := i
      done;
      let i = !best in
      let inst = instances.(i) in
      let transition =
        Cost_model.transition_cost inst.Runner.i_costs ~switchless:c.switchless
      in
      let start = max arrival free_at.(i) in
      let before = inst.Runner.now in
      if len > 0 then begin
        let offset = k * c.request_events mod len in
        for j = 0 to c.request_events - 1 do
          let site, vpage, compute, thread = event ((offset + j) mod len) in
          Runner.step inst ~site ~vpage ~compute ~thread
        done
      end;
      let service = inst.Runner.now - before in
      let finish = start + transition + service in
      free_at.(i) <- finish;
      if finish > !makespan then makespan := finish;
      let latency = finish - arrival in
      match c.horizon with
      | Some h when finish > h -> incr in_flight
      | Some _ | None ->
        latencies.(!completed) <- float_of_int latency;
        incr completed;
        Histogram.add latency_h (float_of_int latency);
        if latency > c.slo then incr slo_violations)
    arrivals;
  let results =
    Array.to_list
      (Array.map (Runner.finalize ~fault_plan ~input_label ~trace) instances)
  in
  {
    scheme = Scheme.name scheme;
    fault_plan = fault_plan.Fault_plan.name;
    switchless = c.switchless;
    arrivals = arrival_name c.arrivals;
    dispatched = c.requests;
    completed = !completed;
    in_flight = !in_flight;
    latencies = Array.sub latencies 0 !completed;
    latency_h;
    slo = c.slo;
    slo_violations = !slo_violations;
    makespan = !makespan;
    results;
  }

(* Below this many completed requests the exact sorted-array percentile
   is used; past it, the histogram's interpolated quantile. *)
let exact_quantile_threshold = 4096

let quantile outcome q =
  if outcome.completed = 0 then Float.nan
  else if outcome.completed <= exact_quantile_threshold then
    Stats.percentile outcome.latencies (q *. 100.0)
  else Histogram.quantile outcome.latency_h q

let throughput outcome =
  if outcome.makespan = 0 then 0.0
  else float_of_int outcome.completed *. 1e6 /. float_of_int outcome.makespan

let check outcome =
  Validate.check_service ~dispatched:outcome.dispatched
    ~completed:outcome.completed ~in_flight:outcome.in_flight
    ~latency:outcome.latency_h outcome.results

let assert_valid outcome =
  match check outcome with
  | [] -> ()
  | violations -> raise (Validate.Invalid violations)

let matrix ?(jobs = 1) ?config ?fault_plan ?input_label ~scheme_for ~tags trace =
  let jobs_list =
    List.map
      (fun tag ->
        Job_pool.job ~label:("service/" ^ tag) (fun () ->
            let outcome =
              run ?config ?fault_plan ?input_label ~scheme:(scheme_for tag)
                trace
            in
            assert_valid outcome;
            outcome))
      tags
  in
  List.combine tags (Job_pool.run ~jobs jobs_list)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

module Table = Repro_util.Table

let cell_cycles v =
  if Float.is_nan v then "-" else Table.cell_int (int_of_float (Float.round v))

let summary_table cells =
  let t =
    Table.create
      ~headers:
        [
          ("scheme", Table.Left);
          ("mode", Table.Left);
          ("done", Table.Right);
          ("in-flight", Table.Right);
          ("req/Mcyc", Table.Right);
          ("p50", Table.Right);
          ("p95", Table.Right);
          ("p99", Table.Right);
          ("p999", Table.Right);
          ("max", Table.Right);
          ("SLO-viol", Table.Right);
        ]
  in
  List.iter
    (fun (tag, o) ->
      Table.add_row t
        [
          tag;
          (if o.switchless then "switchless" else "sync");
          Table.cell_int o.completed;
          Table.cell_int o.in_flight;
          Table.cell_float ~decimals:3 (throughput o);
          cell_cycles (quantile o 0.50);
          cell_cycles (quantile o 0.95);
          cell_cycles (quantile o 0.99);
          cell_cycles (quantile o 0.999);
          cell_cycles (Histogram.max_observed o.latency_h);
          Table.cell_int o.slo_violations;
        ])
    cells;
  t

let print_cells cells = Table.print (summary_table cells)
