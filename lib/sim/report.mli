(** Formatting helpers shared by the bench harness, CLI and examples. *)

val summary : Runner.result -> string
(** One line: workload, scheme, cycles, faults, preload stats. *)

val breakdown_table : Runner.result -> Repro_util.Table.t
(** Cycle accounting by category (compute / access / AEX / loads / ...). *)

val fault_latency_table : Runner.result -> Repro_util.Table.t
(** Raise-to-handled latency per fault resolution kind: count, mean,
    sparkline histogram.  Rows with zero faults show a dash. *)

val comparison_row :
  baseline:Runner.result -> Runner.result -> string * float * float
(** [(scheme, normalized_time, improvement)] against the baseline run. *)

val geomean_normalized : (Runner.result * Runner.result) list -> float
(** Geometric mean of normalized times over [(baseline, candidate)]
    pairs — the SPEC-style aggregate. *)

val ascii_scatter :
  width:int -> height:int -> (int * int) list -> max_x:int -> max_y:int -> string
(** Render (x, y) points into an ASCII scatter plot, for the Fig. 3
    access-pattern reproduction. *)

val fault_reduction : baseline:Runner.result -> Runner.result -> float
(** Fraction of baseline faults eliminated ([0.7] = 70% fewer). *)
