(** Formatting helpers shared by the bench harness, CLI and examples. *)

val summary : Runner.result -> string
(** One line: workload, scheme, cycles, faults, preload stats. *)

val breakdown_table : Runner.result -> Repro_util.Table.t
(** Cycle accounting by category (compute / access / AEX / loads / ...). *)

val diagnostics_table : Runner.result -> Repro_util.Table.t
(** End-of-run {!Runner.diagnostics} (pending / in-flight preloads,
    residency vs capacity, truncation flag) as a two-column table. *)

val fault_latency_table : Runner.result -> Repro_util.Table.t
(** Raise-to-handled latency per fault resolution kind: count, mean,
    sparkline histogram.  Rows with zero faults show a dash. *)

val comparison_row :
  baseline:Runner.result -> Runner.result -> string * float * float
(** [(scheme, normalized_time, improvement)] against the baseline run. *)

val geomean_normalized : (Runner.result * Runner.result) list -> float
(** Geometric mean of normalized times over [(baseline, candidate)]
    pairs — the SPEC-style aggregate. *)

val ascii_scatter :
  width:int -> height:int -> (int * int) list -> max_x:int -> max_y:int -> string
(** Render (x, y) points into an ASCII scatter plot, for the Fig. 3
    access-pattern reproduction. *)

val fault_reduction : baseline:Runner.result -> Runner.result -> float option
(** Fraction of baseline faults eliminated ([Some 0.7] = 70% fewer);
    [None] when the baseline had no faults at all (the reduction is
    undefined, not zero — a 0-of-0 baseline says nothing about the
    candidate). *)

(** How gracefully a scheme degrades under a {!Fault_plan}, measured
    against the same (workload, scheme) cell run fault-free.  Rate
    fields are [None] when their denominator is zero (e.g. a scheme
    that never issued a preload has no abort {e rate}); tables render
    those as ["n/a"] instead of a misleading 0%. *)
type degradation = {
  overhead : float;
      (** Slowdown vs the fault-free run ([0.25] = 25% more cycles). *)
  fault_increase : float option;
      (** Fractional growth in total faults; [None] when the fault-free
          run had none. *)
  preload_abort_rate : float option;  (** Aborted / issued preloads. *)
  mispreload_rate : float option;
      (** Preloaded-but-evicted-unused / completed preloads — wasted
          channel work under the fault. *)
}

val degradation : fault_free:Runner.result -> Runner.result -> degradation
(** @raise Invalid_argument if the fault-free baseline has zero cycles. *)

val degradation_table :
  fault_free:Runner.result -> Runner.result list -> Repro_util.Table.t
(** One row per faulted run (the fault-free run first), labelled by the
    plan name carried in [result.fault_plan]. *)
