module Table = Repro_util.Table
module Trace = Workload.Trace
module Pattern = Workload.Pattern
module Input = Workload.Input
module Spec = Workload.Spec
module Vision = Workload.Vision
module Scheme = Preload.Scheme
module Dfp = Preload.Dfp
module Profiler = Preload.Sip_profiler
module Instrumenter = Preload.Sip_instrumenter
module Metrics = Sgxsim.Metrics

type settings = {
  epc_pages : int;
  ref_input : Input.t;
  quick : bool;
  jobs : int;
  cell_timeout : float option;
  retries : int;
  keep_going : bool;
  journal_dir : string option;
  resume : bool;
  fused : bool;
}

let default =
  {
    epc_pages = 2048;
    ref_input = Input.Ref 0;
    quick = false;
    jobs = 1;
    cell_timeout = None;
    retries = 0;
    keep_going = false;
    journal_dir = None;
    resume = false;
    fused = true;
  }

let quick = { default with epc_pages = 1024; quick = true }

exception Cells_failed of Job_pool.failure list

let () =
  Printexc.register_printer (function
    | Cells_failed fs ->
      Some
        (Printf.sprintf "Experiments.Cells_failed: %d cell(s):\n%s"
           (List.length fs)
           (String.concat "\n"
              (List.map
                 (fun (f : Job_pool.failure) ->
                   Printf.sprintf "  %s: %s (%d attempt(s))" f.label f.reason
                     f.attempts)
                 fs)))
    | _ -> None)

type improvement_row = {
  workload : string;
  scheme : string;
  normalized : float;
  improvement : float;
  fault_reduction : float option;  (* None: baseline had no faults *)
  stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let find_model name =
  match Spec.by_name name with
  | Some m -> Some m
  | None -> (
    match Vision.by_name name with
    | Some m -> Some m
    | None -> (
      match Workload.Parallel_apps.by_name name with
      | Some m -> Some m
      | None -> Workload.Synthetic.by_name name))

let model_of_name name =
  match find_model name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Experiments: unknown workload %S" name)

(* Every family [find_model] resolves, with its display label — the one
   catalog the CLI's [list] and error messages draw from, so the listing
   can never understate what [run] accepts again. *)
let workload_families =
  List.map (fun (n, c, _) -> (n, Spec.category_name c)) Spec.all
  @ List.map (fun (n, _) -> (n, "vision (SD-VBS)")) Vision.all
  @ List.map
      (fun (n, _) -> (n, "multi-threaded (extension)"))
      Workload.Parallel_apps.all
  @ List.map (fun (n, _) -> (n, "synthetic boundary case")) Workload.Synthetic.all

let workload_names () = List.map fst workload_families

let runner_config settings =
  { Runner.default_config with epc_pages = settings.epc_pages }

(* Every experiment run passes through the validator: no reproduction
   figure is printed from a run whose own invariants do not hold. *)
let run_checked ?config ?input_label ?fault_plan ?online ~scheme trace =
  let r =
    Runner.run
      ~spec:(Runner.Spec.make ?config ?input_label ?fault_plan ?online ())
      ~scheme trace
  in
  Validate.assert_valid r;
  r

let trace_of settings name ~input =
  (model_of_name name) ~epc_pages:settings.epc_pages ~input

let plan_for ?threshold settings name =
  let train = trace_of settings name ~input:Input.Train in
  let profile =
    Profiler.profile
      ~input:(Input.to_string Input.Train)
      (Profiler.default_config ~residency_pages:settings.epc_pages)
      train
  in
  Instrumenter.plan_of_profile ?threshold profile

let run_one settings ~scheme ?input name =
  let input = Option.value input ~default:settings.ref_input in
  let trace = trace_of settings name ~input in
  run_checked ~config:(runner_config settings)
    ~input_label:(Input.to_string input) ~scheme trace

let row_of ~baseline (r : Runner.result) =
  {
    workload = r.workload;
    scheme = r.scheme;
    normalized = Runner.normalized_time ~baseline r;
    improvement = Runner.improvement ~baseline r;
    fault_reduction = Report.fault_reduction ~baseline r;
    stopped = r.dfp_stopped;
  }

let hybrid_scheme plan = Scheme.Hybrid (Dfp.with_stop Dfp.default_config, plan)

(* Compile each distinct workload trace once in the parent before a
   table fans out: forked workers inherit the arena memo copy-on-write
   (and repeated in-process cells hit it directly), so no cell pays a
   redundant stream materialisation.  Compilation is silent, keeping the
   stdout byte-identity contract. *)
let prewarm settings ?input names =
  let input = Option.value input ~default:settings.ref_input in
  List.iter
    (fun name ->
      ignore (Workload.Trace_arena.compile (trace_of settings name ~input)))
    (List.sort_uniq compare names)

(* The explicit job-list representation of a table: every cell is a
   labelled pure closure (ultimately over [run_checked]) producing a
   marshalable value, and [cells] fans the list out across
   [settings.jobs] forked workers, merging results in submission order.
   Tables are therefore byte-identical at any [-j]; cells must not
   print (the pool's contract, see {!Job_pool}). *)
let hardened settings =
  settings.cell_timeout <> None || settings.retries > 0 || settings.keep_going
  || settings.journal_dir <> None

(* Part of the journal key: a journal written for one matrix
   configuration must never satisfy another.  [fused] is part of the key
   because it reshapes the job list (group jobs vs cell jobs) even
   though both shapes print the same bytes. *)
let settings_key settings =
  Printf.sprintf "epc=%d input=%s quick=%b fused=%b" settings.epc_pages
    (Input.to_string settings.ref_input)
    settings.quick settings.fused

let cells settings ~table ~label ~f xs =
  let jobs =
    List.map
      (fun x ->
        Job_pool.job
          ~label:(Printf.sprintf "%s/%s" table (label x))
          (fun () -> f x))
      xs
  in
  if not (hardened settings) then Job_pool.run ~jobs:settings.jobs jobs
  else begin
    let journal =
      Option.map
        (fun dir -> Filename.concat dir (table ^ ".journal"))
        settings.journal_dir
    in
    let results =
      Job_pool.run_hardened ~jobs:settings.jobs ?timeout:settings.cell_timeout
        ~retries:settings.retries ?journal ~resume:settings.resume
        ~journal_key:(settings_key settings) jobs
    in
    (* Keep-going granularity is the table: a cell that exhausted its
       retries fails the whole table (its rows would be fabricated
       otherwise), and the per-experiment driver decides whether the
       rest of the matrix continues. *)
    match List.filter_map (function Error f -> Some f | Ok _ -> None) results with
    | [] -> List.map (function Ok v -> v | Error _ -> assert false) results
    | failures -> raise (Cells_failed failures)
  end

(* The dominant table shape: a [(key, tag)] grid where cells sharing a
   key run the same trace under the same config and differ only in
   scheme.  With [settings.fused] (the default) each key's cells
   collapse into one job that drives {!Runner.run_fused} over the
   group's schemes — the trace is decoded and replayed once per key
   instead of once per cell, and [Job_pool] parallelism moves up to the
   key level.  Without it, the grid degrades to the classic one job per
   cell, which is the cross-check reference: [run_fused] is contractually
   equal to per-cell [run], so both paths print identical bytes (CI
   diffs them).  Results come back in grid order; every run is validated
   inside its job exactly as [run_checked] would. *)
let scheme_grid settings ~table ~config ?(input_label = "") ~key_label
    ~tag_label ~trace_of:trace_for ~scheme_of grid =
  let spec = Runner.Spec.make ~config ~input_label () in
  let cell_label (k, tag) =
    let kl = key_label k in
    if kl = "" then tag_label tag
    else Printf.sprintf "%s/%s" kl (tag_label tag)
  in
  if not settings.fused then
    cells settings ~table ~label:cell_label
      ~f:(fun (k, tag) ->
        let r = Runner.run ~spec ~scheme:(scheme_of k tag) (trace_for k) in
        Validate.assert_valid r;
        r)
      grid
  else begin
    let keys =
      List.rev
        (List.fold_left
           (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
           [] grid)
    in
    let groups =
      List.map
        (fun k ->
          ( k,
            List.filter_map
              (fun (k', tag) -> if k' = k then Some tag else None)
              grid ))
        keys
    in
    let group_results =
      cells settings ~table
        ~label:(fun (k, tags) ->
          let kl = key_label k in
          Printf.sprintf "%sfused[%s]"
            (if kl = "" then "" else kl ^ "/")
            (String.concat "," (List.map tag_label tags)))
        ~f:(fun (k, tags) ->
          let schemes = List.map (scheme_of k) tags in
          let rs = Runner.run_fused ~spec ~schemes (trace_for k) in
          List.iter Validate.assert_valid rs;
          rs)
        groups
    in
    let by_cell =
      List.concat
        (List.map2
           (fun (k, tags) rs -> List.map2 (fun tag r -> ((k, tag), r)) tags rs)
           groups group_results)
    in
    List.map (fun cell -> List.assoc cell by_cell) grid
  end

let improvement_table ?(paper = []) rows =
  let t =
    Table.create
      ~headers:
        [
          ("workload", Table.Left); ("scheme", Table.Left);
          ("normalized", Table.Right); ("improvement", Table.Right);
          ("fault-reduction", Table.Right); ("stopped", Table.Left);
          ("paper", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      let paper_cell =
        match List.assoc_opt (r.workload, r.scheme) paper with
        | Some v -> v
        | None -> "n/r"
      in
      Table.add_row t
        [
          r.workload; r.scheme;
          Table.cell_float ~decimals:3 r.normalized;
          Table.cell_pct r.improvement;
          (match r.fault_reduction with
          | None -> "n/a"
          | Some fr -> Table.cell_pct fr);
          (if r.stopped then "yes" else "-");
          paper_cell;
        ])
    rows;
  t

(* ------------------------------------------------------------------ *)
(* E-intro — §1: enclave vs native slowdown                            *)
(* ------------------------------------------------------------------ *)

(* The §1 motivation program is a bare scan ("a simple program with
   sequential accesses of 1GB data"), unlike the Fig. 7/8 microbenchmark
   whose loop body does real work: nearly all of its time is paging. *)
let intro_trace settings =
  let pages = 8 * settings.epc_pages in
  Trace.make ~name:"intro-scan" ~elrange_pages:pages ~footprint_pages:pages
    ~seed:3
    ~sites:[ (0, "scan") ]
    (Pattern.sequential ~site:0 ~base:0 ~pages ~events_per_page:8 ~compute:50
       ~jitter:0.0)

let intro_runs settings =
  match
    scheme_grid settings ~table:"intro" ~config:(runner_config settings)
      ~key_label:(fun () -> "")
      ~tag_label:Fun.id
      ~trace_of:(fun () -> intro_trace settings)
      ~scheme_of:(fun () tag ->
        if tag = "enclave" then Scheme.Baseline else Scheme.Native)
      [ ((), "enclave"); ((), "native") ]
  with
  | [ base; native ] -> (base, native)
  | _ -> assert false

let intro_slowdown settings =
  let base, native = intro_runs settings in
  float_of_int base.cycles /. float_of_int native.cycles

let print_intro settings =
  Printf.printf "## E-intro — §1 motivation: sequential 8x-EPC scan, enclave vs native\n\n";
  let base, native = intro_runs settings in
  Printf.printf "enclave:  %s cycles (%d faults)\n" (Table.cell_int base.cycles)
    (Metrics.total_faults base.metrics);
  Printf.printf "native:   %s cycles (%d faults)\n"
    (Table.cell_int native.cycles)
    (Metrics.total_faults native.metrics);
  Printf.printf "slowdown: %.1fx   (paper observed ~46x on real SGX)\n\n"
    (intro_slowdown settings);
  print_string
    "The model charges only paging costs; the paper's 46x additionally\n\
     includes TLB shootdowns and cache disturbance outside this model.\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig2 — Fig. 2: baseline vs DFP page-load timeline                 *)
(* ------------------------------------------------------------------ *)

let didactic_trace () =
  (* Four sequential pages, one access each, enough compute between them
     for preloads to land: the Fig. 2 scenario. *)
  Trace.make ~name:"fig2-didactic" ~elrange_pages:16 ~footprint_pages:4 ~seed:1
    ~sites:[ (0, "loop") ]
    (Pattern.sequential ~site:0 ~base:0 ~pages:4 ~events_per_page:1
       ~compute:60_000 ~jitter:0.0)

let fig2_timelines settings =
  let config = { (runner_config settings) with Runner.log_capacity = 128 } in
  match
    scheme_grid settings ~table:"fig2" ~config
      ~key_label:(fun () -> "")
      ~tag_label:Fun.id
      ~trace_of:(fun () -> didactic_trace ())
      ~scheme_of:(fun () tag ->
        if tag = "baseline" then Scheme.Baseline else Scheme.dfp_default)
      [ ((), "baseline"); ((), "dfp") ]
  with
  | [ base; dfp ] -> (base.Runner.events, dfp.Runner.events)
  | _ -> assert false

let print_fig2 settings =
  Printf.printf "## E-fig2 — Fig. 2: time sequence of loading pages 1-4\n\n";
  let base_events, dfp_events = fig2_timelines settings in
  let dump title events =
    Printf.printf "%s:\n" title;
    List.iter (fun e -> Format.printf "  %a@." Sgxsim.Event.pp e) events;
    print_newline ()
  in
  dump "Baseline (every page faults: AEX + load + ERESUME each)" base_events;
  dump "DFP (fault on page 1 starts a stream; pages 2+ are preloaded)" dfp_events

(* ------------------------------------------------------------------ *)
(* E-fig3 — Fig. 3: representative page access patterns                *)
(* ------------------------------------------------------------------ *)

let fig3_series settings =
  let sample name =
    let trace = trace_of settings name ~input:settings.ref_input in
    let arena = Workload.Trace_arena.compile trace in
    let window = if settings.quick then 20_000 else 60_000 in
    let stride = max 1 (window / 300) in
    let n = min window (Workload.Trace_arena.length arena) in
    let points = ref [] in
    let i = ref 0 in
    while !i < n do
      points := (!i, Workload.Trace_arena.vpage arena !i) :: !points;
      i := !i + stride
    done;
    (name, List.rev !points)
  in
  List.map sample [ "bwaves"; "deepsjeng"; "lbm" ]

let print_fig3 settings =
  Printf.printf "## E-fig3 — Fig. 3: memory access patterns (page vs access index)\n\n";
  List.iter
    (fun (name, points) ->
      let max_x = List.fold_left (fun m (x, _) -> max m x) 1 points in
      let max_y = List.fold_left (fun m (_, y) -> max m y) 1 points in
      Printf.printf "%s (pages 0..%d over %d accesses):\n" name max_y max_x;
      print_string (Report.ascii_scatter ~width:64 ~height:16 points ~max_x ~max_y);
      print_newline ())
    (fig3_series settings)

(* ------------------------------------------------------------------ *)
(* E-fig4 — Fig. 4: baseline fault vs SIP notification cost            *)
(* ------------------------------------------------------------------ *)

let single_fault_trace () =
  Trace.make ~name:"fig4-didactic" ~elrange_pages:4 ~footprint_pages:1 ~seed:1
    ~sites:[ (0, "miss") ]
    (Pattern.sequential ~site:0 ~base:0 ~pages:1 ~events_per_page:1 ~compute:0
       ~jitter:0.0)

let instrument_site0_plan =
  {
    Instrumenter.workload = "fig4-didactic";
    threshold = Instrumenter.default_threshold;
    decisions =
      [
        {
          Instrumenter.site = 0;
          counts = { Profiler.c1 = 0; c2 = 0; c3 = 1 };
          ratio = 1.0;
          instrument = true;
        };
      ];
  }

let fig4_costs settings =
  let config = runner_config settings in
  let trace = single_fault_trace () in
  let base = run_checked ~config ~scheme:Scheme.Baseline trace in
  let sip = run_checked ~config ~scheme:(Scheme.Sip instrument_site0_plan) trace in
  (base.cycles, sip.cycles)

let print_fig4 settings =
  Printf.printf "## E-fig4 — Fig. 4: cost of servicing one cold page\n\n";
  let base, sip = fig4_costs settings in
  let costs = Sgxsim.Cost_model.paper in
  Printf.printf "baseline fault path: %s cycles (AEX %d + load %d + ERESUME %d)\n"
    (Table.cell_int base) costs.t_aex costs.t_load costs.t_eresume;
  Printf.printf "SIP notify path:     %s cycles (check %d + notify %d + load %d)\n"
    (Table.cell_int sip) costs.t_bitmap_check costs.t_notify costs.t_load;
  Printf.printf "benefit per avoided fault: %s cycles (paper: ~t_AEX + t_ERESUME - t_notify)\n\n"
    (Table.cell_int (base - sip))

(* ------------------------------------------------------------------ *)
(* E-tab1 — Table 1: benchmark classification                          *)
(* ------------------------------------------------------------------ *)

let table1_names = List.map (fun (name, _, _) -> name) Spec.all

let table1_rows settings =
  prewarm settings table1_names;
  prewarm settings ~input:Input.Train table1_names;
  cells settings ~table:"table1"
    ~label:(fun (name, _, _) -> name)
    ~f:(fun (name, category, _) ->
      let trace = trace_of settings name ~input:settings.ref_input in
      let profile =
        Profiler.profile
          ~input:(Input.to_string Input.Train)
          (Profiler.default_config ~residency_pages:settings.epc_pages)
          (trace_of settings name ~input:Input.Train)
      in
      let totals = Profiler.totals profile in
      let irregular = Profiler.irregular_ratio totals in
      ( name,
        Spec.category_name category,
        trace.Trace.footprint_pages,
        float_of_int trace.Trace.footprint_pages /. float_of_int settings.epc_pages,
        irregular ))
    Spec.all

let table1_miss_ratios settings =
  prewarm settings table1_names;
  cells settings ~table:"table1-miss"
    ~label:(fun (name, _, _) -> name)
    ~f:(fun (name, _, _) ->
      let trace = trace_of settings name ~input:settings.ref_input in
      ( name,
        Workload.Trace_stats.miss_ratio trace ~epc_pages:settings.epc_pages ))
    Spec.all

let print_table1 settings =
  Printf.printf "## E-tab1 — Table 1: classification of benchmarks\n\n";
  let misses = table1_miss_ratios settings in
  let t =
    Table.create
      ~headers:
        [
          ("benchmark", Table.Left); ("paper category", Table.Left);
          ("footprint (pages)", Table.Right); ("x EPC", Table.Right);
          ("irregular share", Table.Right); ("LRU miss ratio", Table.Right);
        ]
  in
  List.iter
    (fun (name, category, pages, ratio, irregular) ->
      Table.add_row t
        [
          name; category; Table.cell_int pages;
          Table.cell_float ~decimals:2 ratio; Table.cell_pct irregular;
          Table.cell_pct (List.assoc name misses);
        ])
    (table1_rows settings);
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-fig6 — Fig. 6: stream-list length sweep (lbm, bwaves)             *)
(* ------------------------------------------------------------------ *)

let fig6_sweep settings =
  let lengths =
    if settings.quick then [ 2; 5; 30 ] else [ 1; 2; 3; 5; 10; 20; 30; 45; 60 ]
  in
  let benchmarks = [ "lbm"; "bwaves" ] in
  prewarm settings benchmarks;
  let grid =
    List.map (fun b -> (b, None)) benchmarks
    @ List.concat_map
        (fun len -> List.map (fun b -> (b, Some len)) benchmarks)
        lengths
  in
  let runs =
    scheme_grid settings ~table:"fig6" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:(fun len ->
        match len with
        | None -> "baseline"
        | Some l -> Printf.sprintf "len=%d" l)
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun _ len ->
        match len with
        | None -> Scheme.Baseline
        | Some len ->
          Scheme.Dfp { Dfp.default_config with stream_list_length = len })
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.map
    (fun len ->
      ( len,
        List.map
          (fun b ->
            let baseline = List.assoc (b, None) table in
            ( b,
              Runner.normalized_time ~baseline
                (List.assoc (b, Some len) table) ))
          benchmarks ))
    lengths

let print_fig6 settings =
  Printf.printf
    "## E-fig6 — Fig. 6: DFP vs stream-list length (normalized time)\n\n";
  let sweep = fig6_sweep settings in
  let t =
    Table.create
      ~headers:
        [
          ("length", Table.Right); ("lbm", Table.Right); ("bwaves", Table.Right);
          ("combined", Table.Right);
        ]
  in
  List.iter
    (fun (len, per_bench) ->
      let lbm = List.assoc "lbm" per_bench in
      let bwaves = List.assoc "bwaves" per_bench in
      Table.add_row t
        [
          string_of_int len;
          Table.cell_float ~decimals:3 lbm;
          Table.cell_float ~decimals:3 bwaves;
          Table.cell_float ~decimals:3 ((lbm +. bwaves) /. 2.0);
        ])
    sweep;
  Table.print t;
  print_string
    "\nPaper: combined execution time shortest around length 30 (their\n\
     default); the reproduction plateaus once every concurrent stream\n\
     fits, and 30 sits on that plateau.\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig7 — Fig. 7: LOADLENGTH sweep                                   *)
(* ------------------------------------------------------------------ *)

let fig7_sweep settings =
  let lengths = if settings.quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16 ] in
  let benchmarks =
    if settings.quick then [ "lbm"; "deepsjeng" ]
    else
      [
        "microbenchmark"; "bwaves"; "lbm"; "wrf"; "roms"; "mcf"; "deepsjeng";
        "omnetpp"; "xz";
      ]
  in
  prewarm settings benchmarks;
  let grid =
    List.concat_map
      (fun b -> (b, None) :: List.map (fun len -> (b, Some len)) lengths)
      benchmarks
  in
  let runs =
    scheme_grid settings ~table:"fig7" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:(fun len ->
        match len with
        | None -> "baseline"
        | Some l -> Printf.sprintf "L=%d" l)
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun _ len ->
        match len with
        | None -> Scheme.Baseline
        | Some load_length -> Scheme.Dfp { Dfp.default_config with load_length })
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.map
    (fun b ->
      let baseline = List.assoc (b, None) table in
      ( b,
        List.map
          (fun len ->
            ( len,
              Runner.normalized_time ~baseline
                (List.assoc (b, Some len) table) ))
          lengths ))
    benchmarks

let print_fig7 settings =
  Printf.printf
    "## E-fig7 — Fig. 7: normalized time vs pages preloaded per prediction\n\n";
  let sweep = fig7_sweep settings in
  let lengths = match sweep with (_, cells) :: _ -> List.map fst cells | [] -> [] in
  let t =
    Table.create
      ~headers:
        (("benchmark", Table.Left)
        :: List.map (fun l -> (Printf.sprintf "L=%d" l, Table.Right)) lengths)
  in
  List.iter
    (fun (b, cells) ->
      Table.add_row t
        (b :: List.map (fun (_, v) -> Table.cell_float ~decimals:3 v) cells))
    sweep;
  Table.print t;
  print_string
    "\nPaper: beyond 4 pages per preload, mcf and deepsjeng lose\n\
     substantially; 4 is the default.  Regular benchmarks flatten out.\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig8 — Fig. 8: DFP and DFP-stop improvement                       *)
(* ------------------------------------------------------------------ *)

let fig8_rows settings =
  let benchmarks =
    if settings.quick then [ "lbm"; "roms" ]
    else
      [
        "microbenchmark"; "bwaves"; "lbm"; "wrf"; "roms"; "mcf"; "mcf.2006";
        "deepsjeng"; "omnetpp"; "xz";
      ]
  in
  prewarm settings benchmarks;
  let grid =
    List.concat_map
      (fun b -> [ (b, "baseline"); (b, "dfp"); (b, "dfp-stop") ])
      benchmarks
  in
  let runs =
    scheme_grid settings ~table:"fig8" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun _ tag ->
        match tag with
        | "baseline" -> Scheme.Baseline
        | "dfp" -> Scheme.dfp_default
        | _ -> Scheme.dfp_stop)
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.concat_map
    (fun b ->
      let baseline = List.assoc (b, "baseline") table in
      List.map
        (fun tag -> row_of ~baseline (List.assoc (b, tag) table))
        [ "dfp"; "dfp-stop" ])
    benchmarks

let fig8_paper =
  [
    (("microbenchmark", "DFP"), "+18.6%");
    (("lbm", "DFP"), "+13.3%");
    (("roms", "DFP"), "-42%");
    (("roms", "DFP-stop"), "-0.1%");
    (("deepsjeng", "DFP"), "-34%");
    (("deepsjeng", "DFP-stop"), "~0%");
  ]

let print_fig8 settings =
  Printf.printf "## E-fig8 — Fig. 8: DFP / DFP-stop performance\n\n";
  let rows = fig8_rows settings in
  Table.print (improvement_table ~paper:fig8_paper rows);
  let regular = [ "microbenchmark"; "bwaves"; "lbm"; "wrf" ] in
  let dfp_regular =
    List.filter (fun r -> r.scheme = "DFP" && List.mem r.workload regular) rows
  in
  if dfp_regular <> [] then begin
    let avg =
      List.fold_left (fun acc r -> acc +. r.improvement) 0.0 dfp_regular
      /. float_of_int (List.length dfp_regular)
    in
    Printf.printf
      "\naverage DFP improvement on regular benchmarks: %s (paper: 11.4%%)\n"
      (Table.cell_pct avg)
  end;
  let overheads scheme =
    List.filter
      (fun r ->
        r.scheme = scheme
        && List.mem r.workload [ "roms"; "mcf"; "deepsjeng"; "omnetpp" ])
      rows
  in
  let avg_overhead scheme =
    let rs = overheads scheme in
    if rs = [] then 0.0
    else
      List.fold_left (fun acc r -> acc -. r.improvement) 0.0 rs
      /. float_of_int (List.length rs)
  in
  Printf.printf
    "average overhead on mispredicting benchmarks: DFP %s -> DFP-stop %s (paper: 38.5%% -> 2.8%%)\n\n"
    (Table.cell_pct (avg_overhead "DFP"))
    (Table.cell_pct (avg_overhead "DFP-stop"))

(* ------------------------------------------------------------------ *)
(* E-fig9 — Fig. 9: SIP threshold sweep on deepsjeng                   *)
(* ------------------------------------------------------------------ *)

let fig9_sweep settings =
  let thresholds =
    if settings.quick then [ 0.01; 0.05; 0.8 ]
    else [ 0.005; 0.01; 0.02; 0.05; 0.10; 0.20; 0.50; 0.80 ]
  in
  (* As in the paper's Fig. 9, both the profile and the measurement use
     the train input. *)
  let baseline = run_one settings ~scheme:Scheme.Baseline ~input:Input.Train "deepsjeng" in
  let runs =
    scheme_grid settings ~table:"fig9" ~config:(runner_config settings)
      ~input_label:(Input.to_string Input.Train)
      ~key_label:(fun () -> "")
      ~tag_label:(fun threshold -> Printf.sprintf "t=%g" threshold)
      ~trace_of:(fun () -> trace_of settings "deepsjeng" ~input:Input.Train)
      ~scheme_of:(fun () threshold ->
        Scheme.Sip (plan_for ~threshold settings "deepsjeng"))
      (List.map (fun threshold -> ((), threshold)) thresholds)
  in
  List.combine thresholds
    (List.map (Runner.normalized_time ~baseline) runs)

let print_fig9 settings =
  Printf.printf
    "## E-fig9 — Fig. 9: deepsjeng (train input) vs SIP irregular-ratio threshold\n\n";
  let t =
    Table.create
      ~headers:[ ("threshold", Table.Right); ("normalized time", Table.Right) ]
  in
  List.iter
    (fun (threshold, normalized) ->
      Table.add_row t
        [ Table.cell_pct ~decimals:1 threshold; Table.cell_float ~decimals:3 normalized ])
    (fig9_sweep settings);
  Table.print t;
  print_string
    "\nPaper: best around 5%; too high a threshold forfeits the probe\n\
     sites' faults.  (The left-side penalty of over-instrumentation is\n\
     shallower here because the model's hot sites have lower access\n\
     volume than real deepsjeng's evaluation loop.)\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig10 — Fig. 10: SIP improvement                                  *)
(* ------------------------------------------------------------------ *)

let sip_benchmarks settings =
  if settings.quick then [ "lbm"; "deepsjeng" ]
  else [ "microbenchmark"; "lbm"; "mcf"; "mcf.2006"; "deepsjeng"; "xz" ]

let fig10_rows settings =
  let benchmarks = sip_benchmarks settings in
  prewarm settings benchmarks;
  prewarm settings ~input:Input.Train benchmarks;
  let grid =
    List.concat_map (fun b -> [ (b, "baseline"); (b, "sip") ]) benchmarks
  in
  let runs =
    scheme_grid settings ~table:"fig10" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun b tag ->
        if tag = "baseline" then Scheme.Baseline
        else Scheme.Sip (plan_for settings b))
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.map
    (fun b ->
      let baseline = List.assoc (b, "baseline") table in
      let r = List.assoc (b, "sip") table in
      (* The instrumented run records its own plan size, so the parent
         never re-derives the plan just to count its sites. *)
      (row_of ~baseline r, r.Runner.instrumentation_points))
    benchmarks

let fig10_paper =
  [
    (("deepsjeng", "SIP"), "+9.0%");
    (("mcf.2006", "SIP"), "+4.9%");
    (("mcf", "SIP"), "~0% (wash)");
    (("lbm", "SIP"), "0%");
    (("microbenchmark", "SIP"), "0%");
  ]

let print_fig10 settings =
  Printf.printf "## E-fig10 — Fig. 10: SIP performance (train profile, ref run)\n\n";
  let rows = fig10_rows settings in
  Table.print (improvement_table ~paper:fig10_paper (List.map fst rows));
  print_string
    "\n(bwaves, roms, wrf are Fortran and omnetpp defeats the paper's\n\
     instrumentation tool; they are excluded exactly as in §5.2.)\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig11 — Fig. 11: SIFT and MSER                                    *)
(* ------------------------------------------------------------------ *)

let fig11_rows settings =
  let names = [ "SIFT"; "MSER" ] in
  let prep =
    List.combine names
      (cells settings ~table:"fig11-prep" ~label:Fun.id
         ~f:(fun name ->
           ( run_one settings ~scheme:Scheme.Baseline name,
             plan_for settings name ))
         names)
  in
  let grid =
    List.concat_map (fun name -> [ (name, "dfp"); (name, "sip") ]) names
  in
  let runs =
    scheme_grid settings ~table:"fig11" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun name -> trace_of settings name ~input:settings.ref_input)
      ~scheme_of:(fun name tag ->
        if tag = "dfp" then Scheme.dfp_default
        else Scheme.Sip (snd (List.assoc name prep)))
      grid
  in
  List.map2
    (fun (name, _) r -> row_of ~baseline:(fst (List.assoc name prep)) r)
    grid runs

let fig11_paper =
  [ (("SIFT", "DFP"), "+9.5%"); (("MSER", "SIP"), "+3.0%") ]

let print_fig11 settings =
  Printf.printf "## E-fig11 — Fig. 11: real-world applications (SD-VBS)\n\n";
  Table.print (improvement_table ~paper:fig11_paper (fig11_rows settings));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-fig12 — Fig. 12: SIP vs DFP vs hybrid                             *)
(* ------------------------------------------------------------------ *)

let fig12_rows settings =
  let benchmarks = sip_benchmarks settings in
  prewarm settings benchmarks;
  prewarm settings ~input:Input.Train benchmarks;
  let prep =
    List.combine benchmarks
      (cells settings ~table:"fig12-prep" ~label:Fun.id
         ~f:(fun b ->
           (run_one settings ~scheme:Scheme.Baseline b, plan_for settings b))
         benchmarks)
  in
  let grid =
    List.concat_map
      (fun b -> [ (b, "sip"); (b, "dfp"); (b, "hybrid") ])
      benchmarks
  in
  let runs =
    scheme_grid settings ~table:"fig12" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun b tag ->
        let plan = snd (List.assoc b prep) in
        match tag with
        | "sip" -> Scheme.Sip plan
        | "dfp" -> Scheme.dfp_default
        | _ -> hybrid_scheme plan)
      grid
  in
  List.map2
    (fun (b, _) r -> row_of ~baseline:(fst (List.assoc b prep)) r)
    grid runs

let print_fig12 settings =
  Printf.printf "## E-fig12 — Fig. 12: SIP, DFP and the combined scheme\n\n";
  Table.print (improvement_table (fig12_rows settings));
  print_string
    "\nPaper: the hybrid tracks the better of the two schemes on\n\
     single-behaviour benchmarks; mcf's worst-case overhead ~4.2%.\n\n"

(* ------------------------------------------------------------------ *)
(* E-fig13 — Fig. 13: mixed-blood                                      *)
(* ------------------------------------------------------------------ *)

let fig13_rows settings =
  let plan = plan_for settings "mixed-blood" in
  let runs =
    scheme_grid settings ~table:"fig13" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input)
      ~key_label:(fun () -> "")
      ~tag_label:(fun tag -> "mixed-blood/" ^ tag)
      ~trace_of:(fun () ->
        trace_of settings "mixed-blood" ~input:settings.ref_input)
      ~scheme_of:(fun () tag ->
        match tag with
        | "baseline" -> Scheme.Baseline
        | "sip" -> Scheme.Sip plan
        | "dfp" -> Scheme.dfp_default
        | _ -> hybrid_scheme plan)
      (List.map
         (fun tag -> ((), tag))
         [ "baseline"; "sip"; "dfp"; "hybrid" ])
  in
  match runs with
  | baseline :: rest -> List.map (row_of ~baseline) rest
  | [] -> assert false

let fig13_paper =
  [
    (("mixed-blood", "SIP"), "+1.6%");
    (("mixed-blood", "DFP"), "+6.0%");
    (("mixed-blood", "SIP+DFP-stop"), "+7.1%");
  ]

let print_fig13 settings =
  Printf.printf "## E-fig13 — Fig. 13: the synthesized mixed-blood program\n\n";
  Table.print (improvement_table ~paper:fig13_paper (fig13_rows settings));
  print_string
    "\nPaper: SIP 1.6%, DFP 6.0%, hybrid 7.1% — the two schemes improve\n\
     different phases, so their combination beats both.\n\n"

(* ------------------------------------------------------------------ *)
(* E-tab2 — Table 2: instrumentation points                            *)
(* ------------------------------------------------------------------ *)

let table2_paper =
  [
    ("mcf.2006", 114); ("mcf", 99); ("xz", 46); ("deepsjeng", 35); ("lbm", 0);
    ("MSER", 54); ("SIFT", 0); ("microbenchmark", 0);
  ]

let table2_rows settings =
  cells settings ~table:"table2" ~label:fst
    ~f:(fun (name, paper) ->
      let plan = plan_for settings name in
      (name, Instrumenter.instrumentation_points plan, paper))
    table2_paper

let print_table2 settings =
  Printf.printf "## E-tab2 — Table 2: SIP instrumentation points\n\n";
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("measured", Table.Right); ("paper", Table.Right) ]
  in
  List.iter
    (fun (name, measured, paper) ->
      Table.add_row t [ name; string_of_int measured; string_of_int paper ])
    (table2_rows settings);
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper                                          *)
(* ------------------------------------------------------------------ *)

let ablation_predictor_rows settings =
  let benchmarks =
    if settings.quick then [ "lbm" ] else [ "lbm"; "bwaves"; "roms"; "deepsjeng" ]
  in
  prewarm settings benchmarks;
  let schemes =
    [
      ("dfp", Scheme.dfp_default); ("next-line", Scheme.next_line ~degree:4);
      ("stride", Scheme.stride ~degree:4);
      ("markov", Scheme.markov ~table_pages:(8 * settings.epc_pages) ~degree:4);
    ]
  in
  let grid =
    List.concat_map
      (fun b -> (b, "baseline") :: List.map (fun (tag, _) -> (b, tag)) schemes)
      benchmarks
  in
  let runs =
    scheme_grid settings ~table:"abl-predictor" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun _ tag ->
        match List.assoc_opt tag schemes with
        | Some s -> s
        | None -> Scheme.Baseline)
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.concat_map
    (fun b ->
      let baseline = List.assoc (b, "baseline") table in
      List.map
        (fun (tag, _) -> row_of ~baseline (List.assoc (b, tag) table))
        schemes)
    benchmarks

let print_ablation_predictor settings =
  Printf.printf
    "## E-abl-predictor — multiple-stream vs next-line vs stride preloading\n\n";
  Table.print (improvement_table (ablation_predictor_rows settings));
  print_string
    "\nNext-line preloads on every fault (no stream confirmation), so it\n\
     pays more misprediction cost on irregular faults; stride-only misses\n\
     interleaved streams.\n\n"

let descending_trace settings =
  let pages = 3 * settings.epc_pages in
  Trace.make ~name:"descending-scan" ~elrange_pages:pages ~footprint_pages:pages
    ~seed:7
    ~sites:[ (0, "reverse_scan") ]
    (Pattern.repeat 2
       (Pattern.sequential_desc ~site:0 ~base:0 ~pages ~events_per_page:8
          ~compute:25_000 ~jitter:0.1))

let ablation_backward_rows settings =
  let variants =
    [ ("DFP (backward on)", Some true); ("DFP (backward off)", Some false) ]
  in
  let runs =
    scheme_grid settings ~table:"abl-backward" ~config:(runner_config settings)
      ~key_label:(fun () -> "")
      ~tag_label:fst
      ~trace_of:(fun () -> descending_trace settings)
      ~scheme_of:(fun () (_, detect_backward) ->
        match detect_backward with
        | None -> Scheme.Baseline
        | Some detect_backward ->
          Scheme.Dfp { Dfp.default_config with detect_backward })
      (List.map (fun v -> ((), v)) (("baseline", None) :: variants))
  in
  match runs with
  | baseline :: rest ->
    List.map2
      (fun (label, _) r -> { (row_of ~baseline r) with scheme = label })
      variants rest
  | [] -> assert false

let print_ablation_backward settings =
  Printf.printf "## E-abl-backward — descending streams need direction detection\n\n";
  Table.print (improvement_table (ablation_backward_rows settings));
  print_newline ()

let ablation_epc_rows settings =
  let sizes =
    if settings.quick then [ 1024; 2048 ] else [ 512; 1024; 2048; 4096 ]
  in
  let grid =
    List.concat_map (fun epc -> [ (epc, "baseline"); (epc, "dfp") ]) sizes
  in
  let runs =
    cells settings ~table:"abl-epc"
      ~label:(fun (epc, tag) -> Printf.sprintf "epc=%d/%s" epc tag)
      ~f:(fun (epc, tag) ->
        let s = { settings with epc_pages = epc } in
        let scheme =
          if tag = "baseline" then Scheme.Baseline else Scheme.dfp_default
        in
        run_one s ~scheme "microbenchmark")
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.map
    (fun epc ->
      let baseline = List.assoc (epc, "baseline") table in
      let dfp = List.assoc (epc, "dfp") table in
      (epc, Runner.improvement ~baseline dfp))
    sizes

let print_ablation_epc settings =
  Printf.printf "## E-abl-epc — DFP improvement vs EPC size (microbenchmark)\n\n";
  let t =
    Table.create
      ~headers:[ ("EPC pages", Table.Right); ("DFP improvement", Table.Right) ]
  in
  List.iter
    (fun (epc, improvement) ->
      Table.add_row t [ Table.cell_int epc; Table.cell_pct improvement ])
    (ablation_epc_rows settings);
  Table.print t;
  print_string
    "\n(The workload footprint scales with the EPC, so the fault pressure\n\
     and hence the headroom for DFP stay comparable across sizes.)\n\n"

let ablation_scan_rows settings =
  let periods =
    if settings.quick then [ 2_000_000 ]
    else [ 250_000; 1_000_000; 2_000_000; 8_000_000; 32_000_000 ]
  in
  let grid =
    List.concat_map
      (fun period -> [ (period, "baseline"); (period, "dfp-stop") ])
      periods
  in
  let runs =
    cells settings ~table:"abl-scan"
      ~label:(fun (period, tag) -> Printf.sprintf "period=%d/%s" period tag)
      ~f:(fun (period, tag) ->
        let costs = { Sgxsim.Cost_model.paper with clock_scan_period = period } in
        let config = { (runner_config settings) with Runner.costs } in
        let trace = trace_of settings "roms" ~input:settings.ref_input in
        let scheme =
          if tag = "baseline" then Scheme.Baseline else Scheme.dfp_stop
        in
        run_checked ~config ~scheme trace)
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.map
    (fun period ->
      let baseline = List.assoc (period, "baseline") table in
      let r = List.assoc (period, "dfp-stop") table in
      (period, Runner.normalized_time ~baseline r, r.Runner.dfp_stopped))
    periods

let print_ablation_scan settings =
  Printf.printf
    "## E-abl-scan — DFP-stop reaction vs service-thread scan period (roms)\n\n";
  let t =
    Table.create
      ~headers:
        [
          ("scan period (cycles)", Table.Right); ("normalized time", Table.Right);
          ("stop fired", Table.Left);
        ]
  in
  List.iter
    (fun (period, normalized, stopped) ->
      Table.add_row t
        [
          Table.cell_int period; Table.cell_float ~decimals:3 normalized;
          (if stopped then "yes" else "no");
        ])
    (ablation_scan_rows settings);
  Table.print t;
  print_string
    "\nThe stop valve's counters are only refreshed by the scan, so a very\n\
     slow scan delays the rescue and leaks misprediction overhead.\n\n"

let ablation_threads_rows settings =
  let threads = if settings.quick then 4 else 8 in
  let trace =
    Workload.Parallel_apps.mt_scan ~threads ~epc_pages:settings.epc_pages
      ~input:settings.ref_input
  in
  let variants =
    [ ("DFP (per-thread lists)", Some true); ("DFP (one shared list)", Some false) ]
  in
  let runs =
    scheme_grid settings ~table:"abl-threads" ~config:(runner_config settings)
      ~key_label:(fun () -> "")
      ~tag_label:fst
      ~trace_of:(fun () -> trace)
      ~scheme_of:(fun () (_, per_thread) ->
        match per_thread with
        | None -> Scheme.Baseline
        | Some per_thread -> Scheme.Dfp { Dfp.default_config with per_thread })
      (List.map (fun v -> ((), v)) (("baseline", None) :: variants))
  in
  match runs with
  | baseline :: rest ->
    List.map2
      (fun (label, _) r -> { (row_of ~baseline r) with scheme = label })
      variants rest
  | [] -> assert false

let print_ablation_threads settings =
  Printf.printf
    "## E-abl-threads — Algorithm 1's per-thread stream lists on a \
     multi-threaded enclave\n\n";
  Table.print (improvement_table (ablation_threads_rows settings));
  print_string
    "\nEvery thread scans its own region while also probing a shared cold\n\
     pool; the combined fault stream churns one shared list out of\n\
     existence, while per-thread lists (the paper's find_stream_list(ID))\n\
     keep each scan's stream alive.\n\n"

let ablation_share_rows settings =
  (* §5.6: sharing the EPC shrinks each enclave's portion but the schemes
     keep working per enclave.  Fix the footprint (built against the full
     EPC) and shrink the partition. *)
  let trace = trace_of settings "xz" ~input:settings.ref_input in
  let full = settings.epc_pages in
  let partitions =
    if settings.quick then [ full; full / 2 ] else [ full; full / 2; full / 4 ]
  in
  let grid =
    List.concat_map (fun epc -> [ (epc, "baseline"); (epc, "dfp") ]) partitions
  in
  let runs =
    cells settings ~table:"abl-share"
      ~label:(fun (epc, tag) -> Printf.sprintf "epc=%d/%s" epc tag)
      ~f:(fun (epc, tag) ->
        let scheme =
          if tag = "baseline" then Scheme.Baseline else Scheme.dfp_default
        in
        run_checked
          ~config:{ (runner_config settings) with Runner.epc_pages = epc }
          ~scheme trace)
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  (* [full] heads [partitions], so its baseline cell doubles as the
     full-EPC reference run. *)
  let full_baseline = List.assoc (full, "baseline") table in
  List.map
    (fun epc ->
      let baseline = List.assoc (epc, "baseline") table in
      let dfp = List.assoc (epc, "dfp") table in
      ( epc,
        float_of_int baseline.Runner.cycles
        /. float_of_int full_baseline.Runner.cycles,
        Runner.improvement ~baseline dfp ))
    partitions

let print_ablation_share settings =
  Printf.printf "## E-abl-share — §5.6: EPC sharing (fixed footprint, shrinking partition)\n\n";
  let t =
    Table.create
      ~headers:
        [
          ("EPC partition (pages)", Table.Right);
          ("baseline slowdown vs full EPC", Table.Right);
          ("DFP improvement in partition", Table.Right);
        ]
  in
  List.iter
    (fun (epc, slowdown, improvement) ->
      Table.add_row t
        [
          Table.cell_int epc;
          Printf.sprintf "%.2fx" slowdown;
          Table.cell_pct improvement;
        ])
    (ablation_share_rows settings);
  Table.print t;
  print_string
    "\nContention raises fault pressure (the paper defers fairness to\n\
     future work) but preloading keeps delivering within each partition.\n\n"

let ablation_sip_all_rows settings =
  let benchmarks = if settings.quick then [ "deepsjeng" ] else [ "lbm"; "deepsjeng"; "mcf" ] in
  let grid =
    List.concat_map
      (fun b ->
        [ (b, "baseline"); (b, "SIP (5% threshold)"); (b, "check everything") ])
      benchmarks
  in
  let runs =
    scheme_grid settings ~table:"abl-sip-all" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun b -> trace_of settings b ~input:settings.ref_input)
      ~scheme_of:(fun b tag ->
        match tag with
        | "baseline" -> Scheme.Baseline
        | "SIP (5% threshold)" -> Scheme.Sip (plan_for settings b)
        | _ ->
          (* Threshold 0: every profiled site gets a check — an Eleos-like
             check-everything runtime (minus its TCB/security cost, which
             the simulator cannot price). *)
          Scheme.Sip (plan_for ~threshold:0.0 settings b))
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.concat_map
    (fun b ->
      let baseline = List.assoc (b, "baseline") table in
      List.map
        (fun tag ->
          { (row_of ~baseline (List.assoc (b, tag) table)) with scheme = tag })
        [ "SIP (5% threshold)"; "check everything" ])
    benchmarks

let print_ablation_sip_all settings =
  Printf.printf
    "## E-abl-sip-all — profile-guided SIP vs an instrument-everything runtime\n\n";
  Table.print (improvement_table (ablation_sip_all_rows settings));
  print_string
    "\nChecking every site converts more faults but taxes every access and\n\
     bloats the instrumented TCB; the paper's selective instrumentation\n\
     keeps nearly all the benefit at a fraction of the footprint (§6\n\
     contrasts this against Eleos/CoSMIX-style full interposition).\n\n"

let ablation_oram_rows settings =
  let names =
    if settings.quick then [ "oram" ]
    else [ "oram"; "adversarial-streams"; "best-case" ]
  in
  prewarm settings names;
  let grid =
    List.concat_map
      (fun name -> [ (name, "baseline"); (name, "dfp"); (name, "dfp-stop") ])
      names
  in
  let runs =
    scheme_grid settings ~table:"abl-oram" ~config:(runner_config settings)
      ~input_label:(Input.to_string settings.ref_input) ~key_label:Fun.id
      ~tag_label:Fun.id
      ~trace_of:(fun name -> trace_of settings name ~input:settings.ref_input)
      ~scheme_of:(fun _ tag ->
        match tag with
        | "baseline" -> Scheme.Baseline
        | "dfp" -> Scheme.dfp_default
        | _ -> Scheme.dfp_stop)
      grid
  in
  let table = List.map2 (fun k r -> (k, r)) grid runs in
  List.concat_map
    (fun name ->
      let baseline = List.assoc (name, "baseline") table in
      List.map
        (fun tag -> row_of ~baseline (List.assoc (name, tag) table))
        [ "dfp"; "dfp-stop" ])
    names

let print_ablation_oram settings =
  Printf.printf
    "## E-abl-oram — boundary workloads: ORAM, adversarial pairs, ideal stream\n\n";
  Table.print (improvement_table (ablation_oram_rows settings));
  print_string
    "\nORAM-style uniform randomness (§3.1's warning) gives DFP nothing to\n\
     predict; the adversarial pair-walk is its worst case and the stop\n\
     valve contains it; the ideal stream approaches the 1-fault-per-\n\
     (LOADLENGTH+1)-pages bound.\n\n"

(* ------------------------------------------------------------------ *)
(* E-fleet — multi-enclave co-tenancy (the §5.6 future work, made real) *)
(* ------------------------------------------------------------------ *)

let fleet_workloads settings =
  if settings.quick then [ "lbm"; "deepsjeng" ]
  else [ "lbm"; "deepsjeng"; "mcf"; "xz" ]

let fleet_cells settings =
  let names = fleet_workloads settings in
  prewarm settings names;
  let tenants =
    List.map
      (fun name ->
        (* Placeholder scheme; [scheme_for] supplies the real one per cell. *)
        Fleet.tenant ~label:name ~scheme:Scheme.Baseline
          (trace_of settings name ~input:settings.ref_input))
      names
  in
  let config =
    { Fleet.default_config with Fleet.epc_pages = settings.epc_pages }
  in
  let scheme_for tag label =
    match tag with
    | "baseline" -> Scheme.Baseline
    | "dfp-stop" -> Scheme.dfp_stop
    | "SIP" -> Scheme.Sip (plan_for settings label)
    | "hybrid" ->
      Scheme.Hybrid (Dfp.with_stop Dfp.default_config, plan_for settings label)
    | t -> invalid_arg ("Experiments.fleet: unknown scheme tag " ^ t)
  in
  Fleet.matrix ~jobs:settings.jobs ~config
    ~input_label:(Input.to_string settings.ref_input) ~scheme_for
    ~tags:[ "baseline"; "dfp-stop"; "SIP"; "hybrid" ]
    ~modes:[ Fleet.Shared; Fleet.Partitioned ]
    tenants

let print_fleet settings =
  Printf.printf
    "## E-fleet — co-tenant fleet: shared EPC vs static partitions\n\n";
  Fleet.print_cells (fleet_cells settings);
  print_string
    "\nEvery tenant runs its full trace under one EPC: shared mode sweeps a\n\
     single global CLOCK over owner-tagged frames (a fault in one enclave\n\
     can evict a co-tenant's page — the interference tables above), while\n\
     partitioned mode gives each tenant capacity/N private frames.  The\n\
     paper measures one enclave at a time and defers sharing fairness to\n\
     future work (S5.6); here preloading's cost under co-tenancy is the\n\
     aggressor column: DFP's speculative loads evict neighbours' pages\n\
     more often than demand faulting alone, and the stop valve bounds it.\n\n"

(* ------------------------------------------------------------------ *)
(* E-service — open-loop request traffic and tail latency              *)
(* ------------------------------------------------------------------ *)

let service_config settings =
  {
    Service.default_config with
    Service.epc_pages = settings.epc_pages;
    pool = (if settings.quick then 2 else 4);
    requests = (if settings.quick then 60 else 300);
    request_events = (if settings.quick then 150 else 400);
    seed = 11;
  }

let service_workloads settings =
  if settings.quick then [ "deepsjeng" ] else [ "lbm"; "deepsjeng" ]

let service_scheme_for settings name tag =
  match tag with
  | "baseline" -> Scheme.Baseline
  | "dfp-stop" -> Scheme.dfp_stop
  | "SIP" -> Scheme.Sip (plan_for settings name)
  | "hybrid" -> hybrid_scheme (plan_for settings name)
  | t -> invalid_arg ("Experiments.service: unknown scheme tag " ^ t)

let service_tags = [ "baseline"; "dfp-stop"; "SIP"; "hybrid" ]

(* Service cells ride the same hardening settings as every other table:
   plain [Job_pool.run] when nothing is hardened (zero behaviour
   change), forked cells with timeout/retry/keep-going otherwise. *)
let service_matrix settings ?config ?fault_plan ~input_label ~scheme_for ~tags
    trace =
  if not (hardened settings) then
    Service.matrix ~jobs:settings.jobs ?config ?fault_plan ~input_label
      ~scheme_for ~tags trace
  else
    Service.matrix ~jobs:settings.jobs ?timeout:settings.cell_timeout
      ~retries:settings.retries ~keep_going:settings.keep_going ?config
      ?fault_plan ~input_label ~scheme_for ~tags trace

let print_service settings =
  Printf.printf
    "## E-service — open-loop request traffic: tail latency and SLOs\n\n";
  let names = service_workloads settings in
  prewarm settings names;
  prewarm settings ~input:Input.Train names;
  let base = service_config settings in
  let input_label = Input.to_string settings.ref_input in
  (* 1. Per-scheme tails, synchronous vs switchless calls. *)
  List.iter
    (fun name ->
      let trace = trace_of settings name ~input:settings.ref_input in
      Printf.printf "### %s: per-scheme request latency (%s arrivals)\n\n" name
        (Service.arrival_name base.Service.arrivals);
      let cells_for switchless =
        service_matrix settings ~config:{ base with Service.switchless }
          ~input_label ~scheme_for:(service_scheme_for settings name)
          ~tags:service_tags trace
      in
      Service.print_cells (cells_for false @ cells_for true);
      print_newline ())
    names;
  (* 2. Throughput vs tail: squeeze the mean gap, watch p99 grow. *)
  let curve_name = List.hd names in
  let curve_trace = trace_of settings curve_name ~input:settings.ref_input in
  let multipliers = if settings.quick then [ 2.0; 0.75 ] else [ 2.0; 1.0; 0.75 ] in
  Printf.printf "### %s: throughput vs tail (offered load sweep)\n\n" curve_name;
  let t =
    Table.create
      ~headers:
        [
          ("mean gap (cycles)", Table.Right);
          ("baseline req/Mcyc", Table.Right);
          ("baseline p99", Table.Right);
          ("dfp-stop req/Mcyc", Table.Right);
          ("dfp-stop p99", Table.Right);
        ]
  in
  List.iter
    (fun m ->
      let gap =
        int_of_float (float_of_int base.Service.mean_gap *. m)
      in
      let cells =
        service_matrix settings ~config:{ base with Service.mean_gap = gap }
          ~input_label ~scheme_for:(service_scheme_for settings curve_name)
          ~tags:[ "baseline"; "dfp-stop" ] curve_trace
      in
      let o tag = List.assoc tag cells in
      let p99 tag =
        Table.cell_int
          (int_of_float (Float.round (Service.quantile (o tag) 0.99)))
      in
      let thr tag = Table.cell_float ~decimals:3 (Service.throughput (o tag)) in
      Table.add_row t
        [
          Table.cell_int gap;
          thr "baseline";
          p99 "baseline";
          thr "dfp-stop";
          p99 "dfp-stop";
        ])
    multipliers;
  Table.print t;
  print_newline ();
  (* 3. Degraded-mode tails: the same service under a chaos fault plan. *)
  Printf.printf "### %s: degraded-mode tails (chaos fault plans)\n\n" curve_name;
  let plans = [ Fault_plan.none; Fault_plan.jittery_channel ] in
  let chaos_cells =
    List.concat_map
      (fun plan ->
        List.map
          (fun (tag, o) -> (plan.Fault_plan.name ^ "/" ^ tag, o))
          (service_matrix settings ~config:base ~fault_plan:plan ~input_label
             ~scheme_for:(service_scheme_for settings curve_name)
             ~tags:[ "baseline"; "dfp-stop" ] curve_trace))
      plans
  in
  Service.print_cells chaos_cells;
  print_string
    "\nEach request replays a slice of the trace through a pool of warm\n\
     enclave instances; arrivals are open-loop (a seeded Poisson process\n\
     does not slow down because the server is behind).  Preloading's\n\
     whole-trace cycle savings concentrate in the tail percentiles, where\n\
     a burst of demand faults stacks queueing on top of fault service;\n\
     switchless calls shave the constant EENTER/EEXIT toll off every\n\
     percentile, and a jittery paging channel degrades the tail far\n\
     before it moves the median.\n\n"

(* ------------------------------------------------------------------ *)
(* E-resilience — crash–recovery, retries, hedging, breaker            *)
(* ------------------------------------------------------------------ *)

(* The resilient service config: a per-round deadline loose enough
   (4x the SLO) that only genuinely stuck attempts — behind a dead
   instance or a storm of faults — blow it, two retries with
   exponential backoff, and a hedge once an attempt is a full SLO
   outstanding.  A deadline at the SLO itself would flip the table
   into overload collapse: hedges double the offered load exactly when
   the pool is behind.  Full-settings requests replay 400 events (2.7x
   the quick slice) at the same stock arrival gap, which already runs
   the pool past saturation before a single hedge fires — so the gap
   widens with the request size to keep the table about *faults*, not
   queueing collapse.  Restart policy and breaker vary per table. *)
let resilience_config settings =
  let base = service_config settings in
  {
    base with
    Service.mean_gap =
      (if settings.quick then base.Service.mean_gap
       else base.Service.mean_gap * 3);
    Service.resilience =
      {
        Service.no_resilience with
        Service.deadline = Some (4 * base.Service.slo);
        retries = 2;
        retry_backoff = base.Service.slo / 8;
        hedge_after = Some base.Service.slo;
      };
  }

let print_resilience settings =
  Printf.printf
    "## E-resilience — degraded-mode serving: crashes, retries, hedging, \
     breaker\n\n";
  (* deepsjeng in both modes: its scattered accesses are what gives the
     breaker a collapsing hit rate to act on (lbm's streams never trip). *)
  let name = List.hd (List.rev (service_workloads settings)) in
  prewarm settings [ name ];
  let trace = trace_of settings name ~input:settings.ref_input in
  let input_label = Input.to_string settings.ref_input in
  let base = resilience_config settings in
  let cell ?fault_plan config label =
    List.map
      (fun (tag, o) -> (label ^ "/" ^ tag, o))
      (service_matrix settings ~config ?fault_plan ~input_label
         ~scheme_for:(service_scheme_for settings name) ~tags:[ "dfp-stop" ]
         trace)
  in
  (* 1. Restart policy under the crash plans: a rewarmed instance
     re-requests the pages a crash wiped, so the requests queued behind
     the restart fault less and the tail recovers faster than cold. *)
  Printf.printf "### %s: cold vs rewarm restarts under crash plans\n\n" name;
  let restart_cells =
    List.concat_map
      (fun (plan : Fault_plan.t) ->
        List.concat_map
          (fun restart ->
            cell ~fault_plan:plan
              {
                base with
                Service.resilience =
                  { base.Service.resilience with Service.restart };
              }
              (plan.Fault_plan.name ^ "/" ^ Runner.restart_policy_name restart))
          [ Runner.Cold; Runner.Rewarm ])
      [ Fault_plan.crashy_fleet; Fault_plan.flaky_service ]
  in
  Service.print_cells restart_cells;
  print_newline ();
  (* 2. Breaker on/off across the fault bank: under plans that starve
     the load channel, tripping Open sheds speculative loads from the
     contended channel; under clean plans it must stay Closed and cost
     nothing. *)
  Printf.printf "### %s: preload circuit breaker on/off (fault bank)\n\n" name;
  let breaker_plans =
    if settings.quick then
      [ Fault_plan.none; Fault_plan.jittery_channel; Fault_plan.crashy_fleet ]
    else Fault_plan.bank
  in
  let breaker_cells =
    List.concat_map
      (fun (plan : Fault_plan.t) ->
        List.concat_map
          (fun (blabel, breaker) ->
            cell ~fault_plan:plan
              {
                base with
                Service.resilience =
                  { base.Service.resilience with Service.breaker };
              }
              (plan.Fault_plan.name ^ "/" ^ blabel))
          [
            ("breaker-off", None);
            ("breaker-on", Some Preload.Breaker.default_config);
          ])
      breaker_plans
  in
  Service.print_cells breaker_cells;
  print_string
    "\nEvery cell runs the full resilient dispatch loop — per-round\n\
     deadlines, retry re-dispatch with exponential backoff onto another\n\
     instance, hedged duplicates once an attempt is a full SLO old —\n\
     and passes the attempt-conservation / crash-bookkeeping /\n\
     breaker-legality battery\n\
     (Validate.check_resilience).  Crashes wipe an instance's EPC and\n\
     charge its restart downtime to every request queued behind it;\n\
     rewarm restarts re-request the lost pages so the post-restart\n\
     requests fault on a warming EPC instead of a cold one.  The breaker\n\
     watches the scan-harvested preload hit rate and sheds speculative\n\
     loads when it collapses, trading prefetch coverage for demand-load\n\
     channel time exactly when the channel is the bottleneck.\n\n"

(* ------------------------------------------------------------------ *)
(* E-online — adaptive preloading without a training trace             *)
(* ------------------------------------------------------------------ *)

(* The online controller's claim: with zero profile input it should
   land near the PGO hybrid on phased programs — DFP mode through the
   streaming phase, learned instrumentation through the irregular one —
   and at worst pay its learning window on single-behaviour programs.
   mixed-blood is the phased witness; lbm (pure stream) and deepsjeng
   (pure irregular) bound the cost of learning what a profile already
   knows. *)
let online_workloads settings =
  if settings.quick then [ "mixed-blood" ]
  else [ "mixed-blood"; "lbm"; "deepsjeng" ]

let online_tags = [ "baseline"; "SIP (PGO)"; "dfp-stop"; "hybrid (PGO)"; "online" ]

(* Unlike every PGO row, the online cell's spec carries the controller
   and its scheme is plain [Baseline]: all preloading it does is learned
   from its own run.  Cells get their own specs (no [scheme_grid]): a
   fused group would share one controller across schemes. *)
let online_scheme_and_spec settings ?fault_plan name tag =
  let spec ?online () =
    Runner.Spec.make ~config:(runner_config settings) ?fault_plan
      ~input_label:(Input.to_string settings.ref_input) ?online ()
  in
  match tag with
  | "baseline" -> (Scheme.Baseline, spec ())
  | "SIP (PGO)" -> (Scheme.Sip (plan_for settings name), spec ())
  | "dfp-stop" -> (Scheme.dfp_stop, spec ())
  | "hybrid (PGO)" -> (hybrid_scheme (plan_for settings name), spec ())
  | "online" -> (Scheme.Baseline, spec ~online:Preload.Online.default_config ())
  | t -> invalid_arg ("Experiments.online: unknown scheme tag " ^ t)

let online_rows settings =
  let names = online_workloads settings in
  prewarm settings names;
  prewarm settings ~input:Input.Train names;
  let grid =
    List.concat_map (fun n -> List.map (fun t -> (n, t)) online_tags) names
  in
  let runs =
    cells settings ~table:"online"
      ~label:(fun (n, tag) -> Printf.sprintf "%s/%s" n tag)
      ~f:(fun (n, tag) ->
        let scheme, spec = online_scheme_and_spec settings n tag in
        let r =
          Runner.run ~spec ~scheme
            (trace_of settings n ~input:settings.ref_input)
        in
        Validate.assert_valid r;
        r)
      grid
  in
  let table = List.combine grid runs in
  List.concat_map
    (fun n ->
      let baseline = List.assoc (n, "baseline") table in
      List.filter_map
        (fun tag ->
          if tag = "baseline" then None
          else Some (row_of ~baseline (List.assoc (n, tag) table)))
        online_tags)
    names

(* The variable-EPC axis: a co-tenant plan periodically steals frames
   ({!Fault_plan.epc_budget}), so the effective EPC — and with it the
   profitable scheme — changes mid-run.  A profile computed at the
   nominal size cannot anticipate it; the controller re-reads the fault
   rate every scan and follows the squeeze. *)
let online_epc_rows settings =
  let name = "mixed-blood" in
  prewarm settings [ name ];
  prewarm settings ~input:Input.Train [ name ];
  let plans = [ Fault_plan.none; Fault_plan.noisy_neighbor ] in
  let plan_of pname =
    List.find (fun (p : Fault_plan.t) -> p.Fault_plan.name = pname) plans
  in
  let tags = [ "baseline"; "SIP (PGO)"; "online" ] in
  let grid =
    List.concat_map
      (fun (p : Fault_plan.t) -> List.map (fun t -> (p.Fault_plan.name, t)) tags)
      plans
  in
  let runs =
    cells settings ~table:"online-epc"
      ~label:(fun (pname, tag) -> Printf.sprintf "%s/%s" pname tag)
      ~f:(fun (pname, tag) ->
        let scheme, spec =
          online_scheme_and_spec settings ~fault_plan:(plan_of pname) name tag
        in
        let r =
          Runner.run ~spec ~scheme
            (trace_of settings name ~input:settings.ref_input)
        in
        Validate.assert_valid r;
        r)
      grid
  in
  let table = List.combine grid runs in
  List.map
    (fun (p : Fault_plan.t) ->
      let cell tag = List.assoc (p.Fault_plan.name, tag) table in
      let baseline = cell "baseline" in
      let norm tag = Runner.normalized_time ~baseline (cell tag) in
      let online = cell "online" in
      let s =
        match online.Runner.diagnostics.Runner.online with
        | Some s -> s
        | None -> assert false (* the online cell always attaches *)
      in
      (p.Fault_plan.name, norm "SIP (PGO)", norm "online", s))
    plans

let print_online settings =
  let module Online = Preload.Online in
  Printf.printf "## E-online — adaptive preloading without a training trace\n\n";
  Printf.printf "### Phased workloads: online controller vs PGO schemes\n\n";
  Table.print (improvement_table (online_rows settings));
  Printf.printf
    "\n### mixed-blood: variable EPC (co-tenant frame steal, plan \
     epc_budget)\n\n";
  let t =
    Table.create
      ~headers:
        [
          ("fault plan", Table.Left);
          ("SIP (PGO) norm.", Table.Right);
          ("online norm.", Table.Right);
          ("mode switches", Table.Right);
          ("phase shifts", Table.Right);
          ("sites instrumented", Table.Right);
          ("final mode", Table.Left);
        ]
  in
  List.iter
    (fun (plan, sip, online, (s : Online.summary)) ->
      Table.add_row t
        [
          plan;
          Table.cell_float ~decimals:3 sip;
          Table.cell_float ~decimals:3 online;
          Table.cell_int (List.length s.Online.s_transitions);
          Table.cell_int s.Online.s_phase_shifts;
          Table.cell_int s.Online.s_instrumented;
          Online.mode_name s.Online.final_mode;
        ])
    (online_epc_rows settings);
  Table.print t;
  print_string
    "\nThe online rows consume no training trace: the controller starts\n\
     in baseline mode, classifies sites from the CLOCK scan's harvested\n\
     access bits, and switches scheme at scan boundaries — DFP when the\n\
     stream-covered miss share clears its threshold, learned\n\
     instrumentation when irregular sites dominate.  On phased programs\n\
     it beats the offline SIP profile (which averages both phases into\n\
     one plan); on single-behaviour programs it pays only its learning\n\
     window.  Under the co-tenant squeeze the effective EPC moves\n\
     mid-run, and the phase detector re-triggers where a fixed profile\n\
     would stay mis-tuned.\n\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let catalog =
  [
    ("intro", "§1 motivation: enclave vs native slowdown", print_intro);
    ("fig2", "Fig. 2: baseline vs DFP page-load timeline", print_fig2);
    ("fig3", "Fig. 3: representative page access patterns", print_fig3);
    ("fig4", "Fig. 4: baseline fault vs SIP notification cost", print_fig4);
    ("table1", "Table 1: benchmark classification", print_table1);
    ("fig6", "Fig. 6: DFP stream-list length sweep", print_fig6);
    ("fig7", "Fig. 7: LOADLENGTH sweep", print_fig7);
    ("fig8", "Fig. 8: DFP and DFP-stop improvement", print_fig8);
    ("fig9", "Fig. 9: SIP threshold sweep (deepsjeng)", print_fig9);
    ("fig10", "Fig. 10: SIP improvement", print_fig10);
    ("fig11", "Fig. 11: SIFT and MSER", print_fig11);
    ("fig12", "Fig. 12: SIP vs DFP vs hybrid", print_fig12);
    ("fig13", "Fig. 13: mixed-blood", print_fig13);
    ("table2", "Table 2: instrumentation points", print_table2);
    ("abl-predictor", "Ablation: predictor choice", print_ablation_predictor);
    ("abl-backward", "Ablation: backward-stream detection", print_ablation_backward);
    ("abl-epc", "Ablation: EPC size sweep", print_ablation_epc);
    ("abl-scan", "Ablation: CLOCK scan period vs DFP-stop", print_ablation_scan);
    ("abl-threads", "Ablation: per-thread stream lists", print_ablation_threads);
    ("abl-share", "Ablation: EPC sharing (§5.6)", print_ablation_share);
    ("abl-sip-all", "Ablation: SIP vs instrument-everything", print_ablation_sip_all);
    ("abl-oram", "Ablation: ORAM / adversarial / ideal boundary workloads", print_ablation_oram);
    ("fleet", "Multi-enclave fleet: shared vs partitioned EPC interference", print_fleet);
    ("service", "Open-loop request service: tail latency, SLOs, switchless calls", print_service);
    ("resilience", "Crash-recovery: restarts, retries, hedging, preload breaker", print_resilience);
    ("online", "Online adaptive preloading (no PGO): phased workloads, variable EPC", print_online);
  ]

let all = List.map (fun (id, descr, _) -> (id, descr)) catalog

let run id settings =
  match List.find_opt (fun (i, _, _) -> i = id) catalog with
  | Some (_, _, printer) -> printer settings
  | None ->
    invalid_arg
      (Printf.sprintf "Experiments.run: unknown experiment %S (known: %s)" id
         (String.concat ", " (List.map fst all)))

let run_all settings =
  List.iter
    (fun (id, _, printer) ->
      ignore id;
      printer settings)
    catalog

(* Keep-going driver: run each experiment, collecting instead of
   propagating failures when [settings.keep_going].  Failure reports go
   to stderr as they happen (stdout carries only the tables, keeping the
   -j byte-identity contract), and the returned list lets the CLI exit
   nonzero. *)
let run_many ids settings =
  let failures = ref [] in
  List.iter
    (fun id ->
      try
        run id settings;
        print_newline ()
      with
      | (Job_pool.Job_failed _ | Cells_failed _ | Service.Cells_failed _) as e
        when settings.keep_going ->
        let reason = Printexc.to_string e in
        Printf.eprintf "experiment %s failed: %s\n%!" id reason;
        failures := (id, reason) :: !failures)
    ids;
  List.rev !failures
