(** Self-validation of simulated runs.

    The simulator's claim to fidelity rests on its event log and cycle
    accounting, so every invariant that must hold of a finished run is
    checkable here:

    - {b cycle identity}: the final simulated clock, [result.cycles], and
      [Metrics.total_cycles] all equal the sum of the nine per-category
      cycle counters — no cost is charged to metrics without advancing
      time, and vice versa;
    - {b counter identities}: [total_faults] decomposes into its three
      resolutions, and every issued preload ends in exactly one
      disposition (completed / aborted / taken over by a demand load /
      skipped at start / still queued / still in flight as a DFP load);
      [in_flight_preloads] agrees with the kind of the load occupying
      the channel at end of run (either speculative kind counts, demand
      does not);
    - {b page conservation}: residency never exceeds the EPC, and (with
      a complete log) load-dones minus evictions equals the pages
      resident at end of run — pages are neither minted nor leaked,
      whatever a {!Fault_plan} does to budgets and latencies;
    - {b non-negativity}: every cycle category and event counter is
      non-negative — a perturbed path that charged backwards would
      surface here;
    - {b fault-latency sanity}: the per-resolution latency histograms
      have an empty overflow bucket (they auto-expand; an overflow means
      a mis-sized fixed bound is biasing the reported mean);
    - {b event-log discipline} (when a complete log was recorded):
      timestamps are monotone; the exclusive load channel's start/done
      events alternate and agree; each fault's AEX→ERESUME span is well
      formed with [Aex_done] exactly [t_aex] after the trap; each SIP
      notification is stamped exactly [t_notify] after the absent bitmap
      check that triggered it;
    - {b counter/event agreement}: metric counters match the number of
      logged events of each kind.

    Experiments run every result through {!assert_valid}; the [validate]
    CLI subcommand exposes the same checks interactively. *)

type violation = { check : string; detail : string }

val report : violation list -> string
(** One line per violation: "[check] detail". *)

val check_events :
  costs:Sgxsim.Cost_model.t -> Sgxsim.Event.t list -> violation list
(** Event-log discipline checks alone, on a chronological event list.
    Usable against synthetic or corrupted logs in tests. *)

val check : Runner.result -> violation list
(** All applicable checks for one finished run.  Event-derived checks are
    skipped when the run logged nothing or the log ring overflowed.
    Runs with an online controller attached additionally pass
    {!check_online}. *)

val check_online : Runner.result -> violation list
(** Online-controller invariants (empty for runs without a controller):
    label conservation — the controller observed exactly
    [metrics.accesses] accesses and its lifetime per-site class totals
    sum back to that count; transition-log legality
    ({!Preload.Online.check_transitions} under the config's pin, plus
    the final mode agreeing with the log); and, when a complete event
    log is available, scan alignment — every mode switch and label flip
    carries a service-scan timestamp. *)

val check_online_oracle :
  pinned:Runner.result -> static:Runner.result -> violation list
(** The oracle identity behind the online design: a controller pinned to
    a static scheme's mode ([pin = Some Baseline] vs [Scheme.Baseline],
    [pin = Some Dfp] vs the default DFP scheme) must reproduce the
    static run field for field — cycles, every metric counter, the event
    log, fault-latency histograms and end-of-run channel state.  Only
    the scheme label (which carries ["+online"]) and the controller
    summary may differ. *)

val check_fleet :
  epc_pages:int ->
  shared:bool array ->
  interference:int array array ->
  triggered:int array ->
  Runner.result list ->
  violation list
(** Fleet invariants over one co-tenant run ({!Fleet} packages the
    arguments; they are unpacked here so [Fleet] can depend on this
    module).  Runs the full per-tenant battery (violations prefixed
    [tenant<i>:]), then the cross-tenant conservation laws: shared
    tenants' end-of-run residency sums to at most the pool ([shared.(i)]
    marks tenants in the shared pool; partitioned or Native tenants are
    excluded), and the [interference.(victim).(aggressor)] table is
    double-entry consistent — every row sums to its victim's eviction
    counter, every column to [triggered.(aggressor)], no entry
    negative. *)

val check_service :
  dispatched:int ->
  completed:int ->
  in_flight:int ->
  latency:Repro_util.Histogram.t ->
  Runner.result list ->
  violation list
(** Service-mode invariants over one open-loop run ({!Service} packages
    the arguments; they are unpacked here so [Service] can depend on
    this module).  Request conservation
    ([dispatched = completed + in_flight], all non-negative); the
    latency histogram holds exactly one non-nan, non-negative
    observation per completed request with an empty overflow bucket
    (latency histograms auto-expand); and every warm instance's
    finalized run passes the full {!check} battery (violations prefixed
    [instance<i>:]). *)

val check_resilience :
  dispatched:int ->
  completed:int ->
  failed:int ->
  in_flight:int ->
  attempts:int ->
  retried:int ->
  hedged:int ->
  hedge_wins:int ->
  hedge_cancelled:int ->
  crashes:int ->
  restarts:int ->
  down_at_end:int ->
  latency:Repro_util.Histogram.t ->
  Runner.result list ->
  violation list
(** The resilient-service battery ({!Service} packages the arguments
    from its outcome).  Extends {!check_service}'s conservation with the
    failure disposition ([dispatched = completed + failed + in_flight]);
    attempt conservation ([attempts = dispatched + retried + hedged],
    hedge wins and cancellations bounded by hedges launched); crash
    bookkeeping ([crashes = restarts + down_at_end], both agreeing with
    the instances' own [Metrics.crashes] / [diagnostics.restarts], and
    no instance restarting more often than it crashed); breaker
    transition-log legality per instance
    ({!Preload.Breaker.check_transitions}, trip count and final state
    agreeing with the log); plus the latency-histogram sanity and
    per-instance battery of {!check_service}. *)

exception Invalid of violation list

val assert_valid : Runner.result -> unit
(** @raise Invalid when {!check} reports anything. *)
