(** A [Unix.fork]-based worker pool for the experiment matrix.

    The paper's evaluation is a grid of independent (workload, input,
    scheme) simulations; each cell is CPU-bound, deterministic and
    allocation-heavy, which makes processes (not threads or domains) the
    right isolation unit: every worker gets its own heap and its own
    minor-GC clock, and a crash in one cell cannot corrupt another's
    state.  Stress-SGX and the SGX benchmarking harnesses of Kumar et
    al. use the same multi-process shape for the same reason.

    Guarantees:

    - {b Determinism.}  Results are merged in submission order, whatever
      order workers finish in.  Since every job is a pure function of
      its closure (no shared mutable state survives the fork), running
      with [jobs = N] returns a list structurally equal to the
      [jobs = 1] run — the experiment layer turns that into
      byte-identical tables.
    - {b Fast path.}  With [jobs <= 1] (or fewer than two jobs) nothing
      forks: the jobs run inline in the calling process, exceptions
      propagate unchanged, and behaviour is exactly that of [List.map].
    - {b Crash containment.}  A job that raises inside a worker is
      reported to the parent and re-raised as {!Job_failed} carrying the
      job's label; a worker that dies without reporting (segfault,
      [kill -9], OOM) is detected from its exit status and named.

    {!run_hardened} is the resilient variant underneath the [chaos] and
    hardened [experiment] CLI drivers: one forked process per cell,
    per-cell wall-clock timeout (hung workers are SIGKILLed), bounded
    retry with exponential backoff, keep-going semantics (every cell
    yields a [result]; a failure never discards completed neighbours),
    and an on-disk cell journal enabling [--resume].

    Constraints: job results travel through [Marshal] on a pipe, so they
    must not contain closures or custom blocks; jobs must not print
    (their stdout is shared with the parent — output belongs to the
    merge phase, after {!run} returns).  The pool is not reentrant:
    jobs must not themselves call {!run} with [jobs > 1]. *)

type 'a job = { label : string; run : unit -> 'a }

val job : label:string -> (unit -> 'a) -> 'a job
(** Failure-path test plumbing: if the environment variable
    [SGX_PRELOAD_FAIL_CELL] (resp. [SGX_PRELOAD_HANG_CELL]) holds a
    substring of [label], the job raises (resp. sleeps forever) when
    executed instead of running its body — letting shelled-out tests
    drive crash containment, timeouts, retry and keep-going through the
    real CLI.  Unset in normal operation. *)

exception Job_failed of { label : string; reason : string }
(** A job raised in its worker ([reason] is the printed exception), or
    its worker died before reporting a result ([reason] describes the
    exit status). *)

type failure = { label : string; reason : string; attempts : int }
(** A cell that exhausted its retry budget.  [attempts] counts actual
    executions, so it equals [retries + 1] for a cell that failed every
    attempt. *)

val run : ?jobs:int -> 'a job list -> 'a list
(** [run ~jobs js] executes every job and returns their results in
    submission order.  [jobs] (default 1) bounds the number of
    concurrent worker processes; it is clamped to the number of jobs.

    @raise Job_failed on the first failing job in submission order.
    @raise Invalid_argument if [jobs] exceeds 1024 (a driver bug, not a
    machine size). *)

val run_hardened :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?journal:string ->
  ?resume:bool ->
  ?journal_key:string ->
  'a job list ->
  ('a, failure) result list
(** Keep-going execution: every cell yields [Ok value] or
    [Error failure], merged in submission order.  Cells always run in
    forked processes (even at [jobs = 1]) so [timeout] (seconds of
    wall-clock per attempt) can SIGKILL a hung cell.  A failing cell is
    re-run up to [retries] times (default 0), waiting
    [backoff * 2^(attempt-1)] seconds between attempts (default backoff
    0.5s).

    [journal] names a checkpoint file: each completed cell is appended
    and flushed as it finishes, keyed by [journal_key] plus a digest of
    the submitted label list.  With [resume:true], cells already present
    in a matching journal are returned without re-execution; a journal
    written for a different matrix or key is ignored (and overwritten).
    A torn final record from an interrupted run is tolerated.  Progress
    notes go to stderr only, keeping stdout byte-identical across [-j].

    @raise Invalid_argument if [jobs > 1024] or [retries < 0]. *)

val default_jobs : unit -> int
(** A sensible [-j] default for "use the machine": the number of online
    processors as reported by [getconf _NPROCESSORS_ONLN], or 1 when
    that cannot be determined. *)

val status_reason : Unix.process_status -> string
(** Human-readable description of a worker exit status (exposed for
    tests and drivers). *)
