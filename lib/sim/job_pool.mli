(** A [Unix.fork]-based worker pool for the experiment matrix.

    The paper's evaluation is a grid of independent (workload, input,
    scheme) simulations; each cell is CPU-bound, deterministic and
    allocation-heavy, which makes processes (not threads or domains) the
    right isolation unit: every worker gets its own heap and its own
    minor-GC clock, and a crash in one cell cannot corrupt another's
    state.  Stress-SGX and the SGX benchmarking harnesses of Kumar et
    al. use the same multi-process shape for the same reason.

    Guarantees:

    - {b Determinism.}  Results are merged in submission order, whatever
      order workers finish in.  Since every job is a pure function of
      its closure (no shared mutable state survives the fork), running
      with [jobs = N] returns a list structurally equal to the
      [jobs = 1] run — the experiment layer turns that into
      byte-identical tables.
    - {b Fast path.}  With [jobs <= 1] (or fewer than two jobs) nothing
      forks: the jobs run inline in the calling process, exceptions
      propagate unchanged, and behaviour is exactly that of [List.map].
    - {b Crash containment.}  A job that raises inside a worker is
      reported to the parent and re-raised as {!Job_failed} carrying the
      job's label; a worker that dies without reporting (segfault,
      [kill -9], OOM) is detected from its exit status and the first
      unaccounted-for job is named.

    Constraints: job results travel through [Marshal] on a pipe, so they
    must not contain closures or custom blocks; jobs must not print
    (their stdout is shared with the parent — output belongs to the
    merge phase, after {!run} returns).  The pool is not reentrant:
    jobs must not themselves call {!run} with [jobs > 1]. *)

type 'a job = { label : string; run : unit -> 'a }

val job : label:string -> (unit -> 'a) -> 'a job

exception Job_failed of { label : string; reason : string }
(** A job raised in its worker ([reason] is the printed exception), or
    its worker died before reporting a result ([reason] describes the
    exit status). *)

val run : ?jobs:int -> 'a job list -> 'a list
(** [run ~jobs js] executes every job and returns their results in
    submission order.  [jobs] (default 1) bounds the number of
    concurrent worker processes; it is clamped to the number of jobs.
    Jobs are distributed round-robin: worker [w] of [n] runs jobs
    [w, w+n, w+2n, ...], so the assignment — like the merge — is
    independent of scheduling.

    @raise Job_failed on the first failing job in submission order.
    @raise Invalid_argument if [jobs] exceeds 1024 (a driver bug, not a
    machine size). *)

val default_jobs : unit -> int
(** A sensible [-j] default for "use the machine": the number of online
    processors as reported by [getconf _NPROCESSORS_ONLN], or 1 when
    that cannot be determined. *)
