module Table = Repro_util.Table
module Input = Workload.Input
module Scheme = Preload.Scheme
module Dfp = Preload.Dfp
module Metrics = Sgxsim.Metrics

type settings = {
  epc_pages : int;
  input : Input.t;
  quick : bool;
  jobs : int;
  seed : int;
  plans : Fault_plan.t list;
  workloads : string list;
  cell_timeout : float option;
  retries : int;
  keep_going : bool;
  journal_dir : string option;
  resume : bool;
  fused : bool;
      (* Collapse the four scheme cells of every (workload, plan) pair
         into one fused single-pass replay (the default); [--no-fused]
         is the per-cell cross-check reference CI diffs against. *)
  breaker : Preload.Breaker.config option;
      (* Attach a preload circuit breaker to every non-Native cell, so
         the matrix shows what tripping Open under a hostile plan costs
         (and that it stays Closed under clean ones). *)
  online : Preload.Online.config option;
      (* Attach the online adaptive controller to every non-Native cell:
         the chaos matrix then answers whether adaptation stays legal
         (and helpful) while the fault plans are actively lying to the
         classifier. *)
}

let default_workloads ~quick =
  if quick then [ "lbm"; "deepsjeng" ] else [ "lbm"; "deepsjeng"; "mcf"; "xz" ]

let default =
  {
    epc_pages = 1024;
    input = Input.Ref 0;
    quick = false;
    jobs = 1;
    seed = Fault_plan.bank_seed;
    plans = Fault_plan.bank;
    workloads = default_workloads ~quick:false;
    cell_timeout = None;
    retries = 0;
    keep_going = false;
    journal_dir = None;
    resume = false;
    fused = true;
    breaker = None;
    online = None;
  }

let quick = { default with quick = true; workloads = default_workloads ~quick:true }

(* What a chaos cell sends back through the pool: enough to print the
   degradation table and prove the invariants, nothing heavy — the full
   Runner.result (with its event log) dies in the worker. *)
type cell = {
  workload : string;
  scheme : string;
  plan : string;
  cycles : int;
  faults : int;
  preloads_issued : int;
  preloads_aborted : int;
  preloads_completed : int;
  preload_evicted_unused : int;
  violations : string list;
}

type outcome = {
  cells : cell list;
      (** Grid order — workload-major, scheme, plan-minor — whether the
          cells were computed per-cell or reassembled from fused jobs. *)
  failed : Job_pool.failure list;
  violation_count : int;
}

let scheme_names = [ "baseline"; "dfp-stop"; "SIP"; "hybrid" ]

let scheme_of tag plan =
  match tag with
  | "baseline" -> Scheme.Baseline
  | "dfp-stop" -> Scheme.dfp_stop
  | "SIP" -> Scheme.Sip plan
  | "hybrid" -> Scheme.Hybrid (Dfp.with_stop Dfp.default_config, plan)
  | _ -> invalid_arg ("Chaos.scheme_of: " ^ tag)

(* Large enough that the shipped workloads keep complete logs, so the
   event-derived invariants (channel discipline, page conservation)
   actually run; Validate skips them gracefully if a log still
   overflows. *)
let log_capacity = 1 lsl 20

let exp_settings settings =
  {
    Experiments.epc_pages = settings.epc_pages;
    ref_input = settings.input;
    quick = settings.quick;
    jobs = settings.jobs;
    cell_timeout = settings.cell_timeout;
    retries = settings.retries;
    (* Chaos collects per-cell failures itself (a dead cell must not
       discard its neighbours), so the pool always runs hardened. *)
    keep_going = true;
    journal_dir = settings.journal_dir;
    resume = settings.resume;
    (* Flows into {!Experiments.settings_key}, so fused and per-cell
       runs never satisfy each other's journals. *)
    fused = settings.fused;
  }

let cell_of_result ~workload ~plan (r : Runner.result) =
  let m = r.Runner.metrics in
  {
    workload;
    scheme = r.Runner.scheme;
    plan = plan.Fault_plan.name;
    cycles = r.Runner.cycles;
    faults = Metrics.total_faults m;
    preloads_issued = m.Metrics.preloads_issued;
    preloads_aborted = m.preloads_aborted;
    preloads_completed = m.preloads_completed;
    preload_evicted_unused = m.preload_evicted_unused;
    violations =
      List.map
        (fun (x : Validate.violation) ->
          Printf.sprintf "[%s] %s" x.check x.detail)
        (Validate.check r);
  }

let runner_config es =
  { Runner.default_config with epc_pages = es.Experiments.epc_pages; log_capacity }

let cell_spec es ?breaker ?online ~plan () =
  Runner.Spec.make ~config:(runner_config es) ~fault_plan:plan
    ~input_label:(Input.to_string es.Experiments.ref_input) ?breaker ?online ()

let run_cell es ?breaker ?online ~workload ~scheme_tag ~plan () =
  let sip_plan =
    (* The profiling step is pure and cheap relative to the measured run;
       recomputing it inside the cell keeps the cell self-contained (a
       Sip plan would otherwise have to travel into every closure). *)
    if scheme_tag = "SIP" || scheme_tag = "hybrid" then
      Experiments.plan_for es workload
    else Preload.Sip_instrumenter.empty_plan ~workload
  in
  let scheme = scheme_of scheme_tag sip_plan in
  let trace = Experiments.trace_of es workload ~input:es.Experiments.ref_input in
  let r =
    Runner.run ~spec:(cell_spec es ?breaker ?online ~plan ()) ~scheme trace
  in
  cell_of_result ~workload ~plan r

(* One fused job per (workload, plan): the trace is decoded and replayed
   once for all four schemes instead of once per cell.  [run_fused] is
   contractually equal to per-cell [run], and the SIP plan profiled here
   is the same pure function of the trace each SIP/hybrid cell would
   recompute, so the resulting cells are field-for-field the ones the
   per-cell path produces (the CI fused/per-cell diff locks this). *)
let run_group es ?breaker ?online ~workload ~plan () =
  let sip_plan = Experiments.plan_for es workload in
  let schemes = List.map (fun tag -> scheme_of tag sip_plan) scheme_names in
  let trace = Experiments.trace_of es workload ~input:es.Experiments.ref_input in
  let rs =
    Runner.run_fused
      ~spec:(cell_spec es ?breaker ?online ~plan ())
      ~schemes trace
  in
  List.map (cell_of_result ~workload ~plan) rs

let plans_of settings =
  Fault_plan.none
  :: List.map (fun p -> Fault_plan.with_seed p settings.seed) settings.plans

let grid settings =
  let plans = plans_of settings in
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun scheme_tag ->
          List.map (fun plan -> (workload, scheme_tag, plan)) plans)
        scheme_names)
    settings.workloads

let run settings =
  let es = exp_settings settings in
  let journal =
    Option.map
      (fun dir -> Filename.concat dir "chaos.journal")
      settings.journal_dir
  in
  let pool jobs =
    Job_pool.run_hardened ~jobs:settings.jobs ?timeout:settings.cell_timeout
      ~retries:settings.retries ?journal ~resume:settings.resume
      ~journal_key:
        (Printf.sprintf "chaos %s seed=%d breaker=%s online=%s"
           (Experiments.settings_key es) settings.seed
           (match settings.breaker with
           | None -> "off"
           | Some b ->
             Printf.sprintf "%d/%d/%g/%d/%d" b.Preload.Breaker.window
               b.Preload.Breaker.min_samples b.Preload.Breaker.threshold
               b.Preload.Breaker.cooldown b.Preload.Breaker.probe_samples)
           (match settings.online with
           | None -> "off"
           | Some o -> Preload.Online.config_name o))
      jobs
  in
  let cells, failed =
    if not settings.fused then begin
      let results =
        pool
          (List.map
             (fun (workload, scheme_tag, plan) ->
               Job_pool.job
                 ~label:
                   (Printf.sprintf "chaos/%s/%s/%s" workload scheme_tag
                      plan.Fault_plan.name)
                 (run_cell es ?breaker:settings.breaker
                    ?online:settings.online ~workload ~scheme_tag ~plan))
             (grid settings))
      in
      ( List.filter_map (function Ok c -> Some c | Error _ -> None) results,
        List.filter_map (function Error f -> Some f | Ok _ -> None) results )
    end
    else begin
      let groups =
        List.concat_map
          (fun workload ->
            List.map (fun plan -> (workload, plan)) (plans_of settings))
          settings.workloads
      in
      let results =
        pool
          (List.map
             (fun (workload, plan) ->
               Job_pool.job
                 ~label:
                   (Printf.sprintf "chaos/%s/fused[%s]/%s" workload
                      (String.concat "," scheme_names)
                      plan.Fault_plan.name)
                 (run_group es ?breaker:settings.breaker
                    ?online:settings.online ~workload ~plan))
             groups)
      in
      (* Fused jobs come back (workload, plan)-major with the scheme
         cells inside; the report wants the per-cell grid order
         (workload / scheme / plan), so reassemble.  A failed group
         drops all of its cells, exactly as each would have failed
         individually. *)
      let by_cell = Hashtbl.create 64 in
      List.iter2
        (fun (workload, plan) res ->
          match res with
          | Ok cs ->
            List.iter2
              (fun tag c ->
                Hashtbl.replace by_cell (workload, tag, plan.Fault_plan.name) c)
              scheme_names cs
          | Error _ -> ())
        groups results;
      ( List.filter_map
          (fun (workload, scheme_tag, plan) ->
            Hashtbl.find_opt by_cell (workload, scheme_tag, plan.Fault_plan.name))
          (grid settings),
        List.filter_map (function Error f -> Some f | Ok _ -> None) results )
    end
  in
  if failed <> [] && not settings.keep_going then
    raise (Experiments.Cells_failed failed);
  {
    cells;
    failed;
    violation_count =
      List.fold_left (fun n c -> n + List.length c.violations) 0 cells;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let print_workload cells workload =
  let mine = List.filter (fun c -> c.workload = workload) cells in
  if mine <> [] then begin
    Printf.printf "### %s\n\n" workload;
    let t =
      Table.create
        ~headers:
          [
            ("scheme", Table.Left); ("fault plan", Table.Left);
            ("cycles", Table.Right); ("overhead", Table.Right);
            ("faults", Table.Right); ("fault incr", Table.Right);
            ("abort rate", Table.Right); ("mispreload", Table.Right);
            ("invariants", Table.Left);
          ]
    in
    List.iter
      (fun c ->
        let fault_free =
          List.find_opt
            (fun b ->
              b.workload = c.workload && b.scheme = c.scheme
              && b.plan = Fault_plan.none.Fault_plan.name)
            mine
        in
        let against f = Option.fold ~none:"-" ~some:f fault_free in
        Table.add_row t
          [
            c.scheme; c.plan;
            Table.cell_int c.cycles;
            against (fun b ->
                Table.cell_pct
                  ((float_of_int c.cycles /. float_of_int (max 1 b.cycles)) -. 1.0));
            Table.cell_int c.faults;
            against (fun b ->
                if b.faults = 0 then (if c.faults = 0 then "0.0%" else "inf")
                else Table.cell_pct (ratio c.faults b.faults -. 1.0));
            Table.cell_pct (ratio c.preloads_aborted c.preloads_issued);
            Table.cell_pct (ratio c.preload_evicted_unused c.preloads_completed);
            (if c.violations = [] then "ok"
             else Printf.sprintf "%d VIOLATED" (List.length c.violations));
          ])
      mine;
    Table.print t;
    print_newline ()
  end

let print_report settings outcome =
  Printf.printf "## Chaos — scheme matrix under fault plans (seed %d)\n\n"
    settings.seed;
  List.iter
    (fun p ->
      Printf.printf "- %-16s %s\n" p.Fault_plan.name (Fault_plan.describe p))
    (List.map (fun p -> Fault_plan.with_seed p settings.seed) settings.plans);
  (match settings.breaker with
  | None -> ()
  | Some b ->
    Printf.printf
      "- %-16s window %d, min %d samples, trip under %.0f%%, cooldown %d, \
       probe %d\n"
      "breaker" b.Preload.Breaker.window b.Preload.Breaker.min_samples
      (100.0 *. b.Preload.Breaker.threshold)
      b.Preload.Breaker.cooldown b.Preload.Breaker.probe_samples);
  (match settings.online with
  | None -> ()
  | Some o ->
    Printf.printf "- %-16s %s (adaptive controller on every cell)\n" "online"
      (Preload.Online.config_name o));
  print_newline ();
  List.iter (print_workload outcome.cells) settings.workloads;
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          Printf.printf "VIOLATION %s/%s/%s: %s\n" c.workload c.scheme c.plan v)
        c.violations)
    outcome.cells;
  (* Failed cells go to stderr (the pool already noted each); the stdout
     summary only counts them, keeping stdout identical whether failures
     were retried at different times. *)
  Printf.printf "%d cells, %d invariant violation(s), %d failed cell(s)\n"
    (List.length outcome.cells + List.length outcome.failed)
    outcome.violation_count
    (List.length outcome.failed);
  List.iter
    (fun (f : Job_pool.failure) ->
      Printf.eprintf "chaos cell %s failed after %d attempt(s): %s\n%!" f.label
        f.attempts f.reason)
    outcome.failed

let ok outcome = outcome.failed = [] && outcome.violation_count = 0
