module Prng = Repro_util.Prng
module Access = Workload.Access
module Sip_instrumenter = Preload.Sip_instrumenter

type channel_fault = {
  jitter_period : int;
  stall_chance : float;
  max_multiplier : float;
}

type co_tenant = { steal_period : int; max_steal : float }

type trace_fault = { corrupt_chance : float; truncate_after : int option }

type crash_fault = {
  crash_period : int;
  crash_chance : float;
  restart_delay : int;
}

type t = {
  name : string;
  seed : int;
  channel : channel_fault option;
  co_tenant : co_tenant option;
  trace : trace_fault option;
  stale_sip_plan : bool;
  crash : crash_fault option;
}

let none =
  {
    name = "fault-free";
    seed = 0;
    channel = None;
    co_tenant = None;
    trace = None;
    stale_sip_plan = false;
    crash = None;
  }

let is_fault_free t =
  t.channel = None && t.co_tenant = None && t.trace = None
  && (not t.stale_sip_plan)
  && t.crash = None

let with_seed t seed = { t with seed }

let validate t =
  let check cond what = if not cond then invalid_arg ("Fault_plan: " ^ what) in
  Option.iter
    (fun c ->
      check (c.jitter_period > 0) "jitter_period must be positive";
      check (c.stall_chance >= 0.0 && c.stall_chance <= 1.0)
        "stall_chance must be in [0,1]";
      check (c.max_multiplier >= 1.0) "max_multiplier must be >= 1")
    t.channel;
  Option.iter
    (fun c ->
      check (c.steal_period > 0) "steal_period must be positive";
      check (c.max_steal >= 0.0 && c.max_steal < 1.0)
        "max_steal must be in [0,1)")
    t.co_tenant;
  Option.iter
    (fun f ->
      check (f.corrupt_chance >= 0.0 && f.corrupt_chance <= 1.0)
        "corrupt_chance must be in [0,1]";
      Option.iter
        (fun n -> check (n >= 0) "truncate_after must be non-negative")
        f.truncate_after)
    t.trace;
  Option.iter
    (fun c ->
      check (c.crash_period > 0) "crash_period must be positive";
      check (c.crash_chance >= 0.0 && c.crash_chance <= 1.0)
        "crash_chance must be in [0,1]";
      check (c.restart_delay >= 0) "restart_delay must be non-negative")
    t.crash;
  t

(* Every perturbation is a pure function of (plan seed, position, salt):
   no Prng state is threaded between draws, so re-running a trace Seq or
   replaying the same simulation — from any process, in any cell order —
   reproduces the same faults bit for bit.  The combination below is
   plain integer arithmetic (not [Hashtbl.hash], whose value is not a
   documented contract) feeding splitmix's [mix64] via [Prng.create]. *)
let draw t ~window ~salt =
  Prng.create ((((t.seed * 1_000_003) + salt) * 1_000_003) + window)

let salt_channel = 1
let salt_tenant = 2
let salt_plan = 3
let salt_trace = 4
let salt_crash = 5

(* Instance crashes: in each crash window, with probability
   [crash_chance] the instance dies and sits out [restart_delay] cycles.
   The draw folds the instance index into the seed chain so a fleet's
   members crash independently yet each (plan, instance, window) triple
   is a pure function — replays and [-j] reorderings see the same
   schedule bit for bit. *)
let crash_fires t ~instance ~window =
  match t.crash with
  | None -> false
  | Some c ->
    let rng =
      Prng.create
        (((((t.seed * 1_000_003) + salt_crash) * 1_000_003) + instance)
          * 1_000_003
        + window)
    in
    Prng.chance rng c.crash_chance

(* ELDU latency under a contended paging channel: in each jitter window,
   with probability [stall_chance] the channel is stalled and the whole
   load (including any write-back it triggered) takes a multiplier in
   [1, max_multiplier].  Never shortens a load. *)
let perturb_load_duration t ~at base =
  match t.channel with
  | None -> base
  | Some c ->
    let rng = draw t ~window:(at / c.jitter_period) ~salt:salt_channel in
    if Prng.chance rng c.stall_chance then
      let m = 1.0 +. Prng.float rng (c.max_multiplier -. 1.0) in
      max base (int_of_float (Float.ceil (float_of_int base *. m)))
    else base

(* EPC frames left to this enclave once the co-tenant has taken its
   time-varying slice.  Always at least one frame — an enclave with zero
   EPC cannot make progress, and neither can a real one. *)
let epc_budget t ~at ~capacity =
  match t.co_tenant with
  | None -> capacity
  | Some c ->
    let rng = draw t ~window:(at / c.steal_period) ~salt:salt_tenant in
    let stolen =
      int_of_float (Prng.float rng c.max_steal *. float_of_int capacity)
    in
    max 1 (capacity - stolen)

(* Corrupted / truncated trace input.  Draws are keyed by event index,
   so the returned Seq is re-entrant exactly like [Trace.events]: forcing
   it twice yields identical streams. *)
let perturb_trace t ~elrange_pages (seq : Access.t Seq.t) : Access.t Seq.t =
  match t.trace with
  | None -> seq
  | Some f ->
    let corrupt i (a : Access.t) =
      if f.corrupt_chance <= 0.0 then a
      else
        let rng = draw t ~window:i ~salt:salt_trace in
        if Prng.chance rng f.corrupt_chance then
          { a with vpage = Prng.int rng elrange_pages }
        else a
    in
    let indexed = Seq.mapi corrupt seq in
    (match f.truncate_after with
    | None -> indexed
    | Some n -> Seq.take n indexed)

(* A stale SIP plan: the profile came from a mismatched build, so the
   site ids no longer line up with the running binary.  Modelled by
   permuting which sites carry the instrumentation decisions — the plan
   keeps its size and thresholds but points at the wrong code. *)
let scramble_plan t (plan : Sip_instrumenter.plan) =
  if not t.stale_sip_plan then plan
  else begin
    let decisions = Array.of_list plan.Sip_instrumenter.decisions in
    let sites =
      Array.map (fun d -> d.Sip_instrumenter.site) decisions
    in
    let rng = draw t ~window:0 ~salt:salt_plan in
    Prng.shuffle rng sites;
    let scrambled =
      Array.mapi
        (fun i (d : Sip_instrumenter.decision) -> { d with site = sites.(i) })
        decisions
    in
    Array.sort
      (fun (a : Sip_instrumenter.decision) b -> compare a.site b.site)
      scrambled;
    { plan with Sip_instrumenter.decisions = Array.to_list scrambled }
  end

(* ------------------------------------------------------------------ *)
(* The named bank                                                      *)
(* ------------------------------------------------------------------ *)

let bank_seed = 42

let jittery_channel =
  validate
    {
      name = "jittery-channel";
      seed = bank_seed;
      channel =
        Some
          { jitter_period = 500_000; stall_chance = 0.35; max_multiplier = 6.0 };
      co_tenant = None;
      trace = None;
      stale_sip_plan = false;
      crash = None;
    }

let noisy_neighbor =
  validate
    {
      name = "noisy-neighbor";
      seed = bank_seed;
      channel = None;
      co_tenant = Some { steal_period = 2_000_000; max_steal = 0.5 };
      trace = None;
      stale_sip_plan = false;
      crash = None;
    }

let garbled_trace =
  validate
    {
      name = "garbled-trace";
      seed = bank_seed;
      channel = None;
      co_tenant = None;
      trace = Some { corrupt_chance = 0.02; truncate_after = None };
      stale_sip_plan = false;
      crash = None;
    }

let stale_profile =
  validate
    {
      name = "stale-profile";
      seed = bank_seed;
      channel = None;
      co_tenant = None;
      trace = None;
      stale_sip_plan = true;
      crash = None;
    }

let perfect_storm =
  validate
    {
      name = "perfect-storm";
      seed = bank_seed;
      channel =
        Some
          { jitter_period = 500_000; stall_chance = 0.25; max_multiplier = 4.0 };
      co_tenant = Some { steal_period = 2_000_000; max_steal = 0.35 };
      trace = Some { corrupt_chance = 0.01; truncate_after = None };
      stale_sip_plan = true;
      crash = None;
    }

(* Crash plans.  [crashy-fleet] is tuned for fleet replays: frequent
   enough crashes that a multi-enclave run loses residency several times
   per member.  [flaky-service] pairs rarer crashes with channel jitter —
   the degraded-but-alive regime where retries, hedging and the breaker
   earn their keep. *)
let crashy_fleet =
  validate
    {
      name = "crashy-fleet";
      seed = bank_seed;
      channel = None;
      co_tenant = None;
      trace = None;
      stale_sip_plan = false;
      crash =
        Some
          {
            crash_period = 5_000_000;
            crash_chance = 0.08;
            restart_delay = 1_000_000;
          };
    }

let flaky_service =
  validate
    {
      name = "flaky-service";
      seed = bank_seed;
      channel =
        Some
          { jitter_period = 500_000; stall_chance = 0.20; max_multiplier = 4.0 };
      co_tenant = None;
      trace = None;
      stale_sip_plan = false;
      crash =
        Some
          {
            crash_period = 20_000_000;
            crash_chance = 0.04;
            restart_delay = 2_000_000;
          };
    }

let bank =
  [
    jittery_channel;
    noisy_neighbor;
    garbled_trace;
    stale_profile;
    perfect_storm;
    crashy_fleet;
    flaky_service;
  ]

let find name =
  if name = none.name then Some none
  else List.find_opt (fun p -> p.name = name) bank

let names () = List.map (fun p -> p.name) bank

let describe t =
  if is_fault_free t then "no faults"
  else
    String.concat "; "
      (List.filter_map Fun.id
         [
           Option.map
             (fun c ->
               Printf.sprintf
                 "channel jitter (period %d, stall %.0f%%, up to %.1fx)"
                 c.jitter_period (100.0 *. c.stall_chance) c.max_multiplier)
             t.channel;
           Option.map
             (fun c ->
               Printf.sprintf "co-tenant steals up to %.0f%% EPC every %d"
                 (100.0 *. c.max_steal) c.steal_period)
             t.co_tenant;
           Option.map
             (fun f ->
               Printf.sprintf "trace corruption %.1f%%%s"
                 (100.0 *. f.corrupt_chance)
                 (match f.truncate_after with
                 | None -> ""
                 | Some n -> Printf.sprintf ", truncated at %d" n))
             t.trace;
           (if t.stale_sip_plan then Some "stale SIP plan" else None);
           Option.map
             (fun c ->
               Printf.sprintf
                 "crashes (%.0f%% per %d window, restart %d)"
                 (100.0 *. c.crash_chance) c.crash_period c.restart_delay)
             t.crash;
         ])
