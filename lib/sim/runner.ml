module Enclave = Sgxsim.Enclave
module Cost_model = Sgxsim.Cost_model
module Metrics = Sgxsim.Metrics
module Event = Sgxsim.Event
module Trace = Workload.Trace
module Access = Workload.Access
module Scheme = Preload.Scheme
module Histogram = Repro_util.Histogram

type config = { epc_pages : int; costs : Cost_model.t; log_capacity : int }

let default_config =
  { epc_pages = 2048; costs = Cost_model.paper; log_capacity = 0 }

let resolution_name = function
  | Enclave.Already_present -> "already-present"
  | Enclave.Waited_in_flight -> "waited-in-flight"
  | Enclave.Demand_load -> "demand-load"

type diagnostics = {
  pending_preloads : int;
  in_flight_preloads : int;
  in_flight_kind : Sgxsim.Load_channel.kind option;
  events_truncated : bool;
  resident_at_end : int;
}

type result = {
  workload : string;
  input : string;
  scheme : string;
  fault_plan : string;
  cycles : int;
  final_now : int;
  costs : Cost_model.t;
  metrics : Metrics.t;
  events : Event.t list;
  diagnostics : diagnostics;
  fault_latency : (Enclave.fault_resolution * Histogram.t) list;
  dfp_stopped : bool;
  instrumentation_points : int;
  epc_capacity : int;
}

let run ?(config = default_config) ?(fault_plan = Fault_plan.none)
    ?(input_label = "") ~scheme trace =
  (* A stale profile perturbs the scheme itself, before anything else
     sees it: SIP/Hybrid run with the scrambled plan throughout. *)
  let scheme =
    if fault_plan.Fault_plan.stale_sip_plan then
      match scheme with
      | Scheme.Sip plan -> Scheme.Sip (Fault_plan.scramble_plan fault_plan plan)
      | Scheme.Hybrid (d, plan) ->
        Scheme.Hybrid (d, Fault_plan.scramble_plan fault_plan plan)
      | s -> s
    else scheme
  in
  let costs, epc_pages =
    match scheme with
    | Scheme.Native ->
      (* Outside SGX the whole footprint fits in RAM: faults are cheap
         first-touch minor faults and nothing is ever evicted. *)
      (Cost_model.native, trace.Trace.elrange_pages)
    | _ -> (config.costs, config.epc_pages)
  in
  let log =
    if config.log_capacity > 0 then Event.make_log ~capacity:config.log_capacity
    else Event.null_log
  in
  let enclave =
    Enclave.create ~costs ~log ~epc_pages ~elrange_pages:trace.Trace.elrange_pages
      ()
  in
  (* Install fault hooks only when the respective fault is present, so a
     fault-free run is the exact pre-fault-plan simulation. *)
  if fault_plan.Fault_plan.channel <> None then
    Enclave.set_load_perturb enclave (fun ~at base ->
        Fault_plan.perturb_load_duration fault_plan ~at base);
  if fault_plan.Fault_plan.co_tenant <> None then
    Enclave.set_epc_budget enclave (fun ~at capacity ->
        Fault_plan.epc_budget fault_plan ~at ~capacity);
  let dfp =
    match scheme with
    | Scheme.Dfp dfp_config | Scheme.Hybrid (dfp_config, _) ->
      Some (Preload.Dfp.attach enclave dfp_config)
    | Scheme.Next_line { degree } ->
      ignore (Preload.Prefetch_baselines.attach_next_line enclave ~degree);
      None
    | Scheme.Stride { degree } ->
      ignore (Preload.Prefetch_baselines.attach_stride enclave ~degree);
      None
    | Scheme.Markov { table_pages; degree } ->
      ignore
        (Preload.Prefetch_baselines.attach_markov enclave ~table_pages ~degree);
      None
    | Scheme.Baseline | Scheme.Native | Scheme.Sip _ -> None
  in
  (* Fault-resolution latency (raise -> execution resumed), one histogram
     per resolution kind.  Chained after the scheme's own on_fault so the
     measurement never displaces DFP. *)
  let latency_hi =
    float_of_int
      (2
      * (costs.Cost_model.t_aex + costs.Cost_model.t_evict
       + costs.Cost_model.t_load + costs.Cost_model.t_eresume))
  in
  (* [auto_expand]: the initial bound covers one drained load plus the
     fault's own; a fault queued behind a deeper preload window must
     widen the buckets, not vanish into overflow and bias the mean.
     [Validate] asserts the overflow bucket stays empty. *)
  let hist_for _ =
    Histogram.create ~auto_expand:true ~lo:0.0 ~hi:(Float.max latency_hi 1.0)
      ~buckets:32 ()
  in
  let fault_latency =
    List.map
      (fun kind -> (kind, hist_for kind))
      [ Enclave.Already_present; Enclave.Waited_in_flight; Enclave.Demand_load ]
  in
  (* The hook fires between the handler's return and the ERESUME, whose
     fixed cost is still part of what the faulting thread waits for. *)
  Enclave.add_on_fault enclave (fun _ (ctx : Enclave.fault_ctx) ->
      Histogram.add
        (List.assoc ctx.resolution fault_latency)
        (float_of_int
           (ctx.handled_at - ctx.raised_at + costs.Cost_model.t_eresume)));
  let sip_site =
    match Scheme.sip_plan scheme with
    | Some plan -> Preload.Sip_instrumenter.site_predicate plan
    | None -> fun _ -> false
  in
  let now = ref 0 in
  (* Replay from the compiled arena.  The common (trace-fault-free) path
     is a tight index loop with no per-access allocation; only a plan
     that corrupts/truncates the stream itself needs the [Seq] view, and
     feeds the perturbation the identical stream [Trace.events] would
     have produced. *)
  let arena = Workload.Trace_arena.compile trace in
  let step ~site ~vpage ~compute ~thread =
    let t = Enclave.compute enclave ~now:!now compute in
    let t =
      if sip_site site then Enclave.sip_access ~thread enclave ~now:t vpage
      else Enclave.access ~thread enclave ~now:t vpage
    in
    now := t
  in
  (match fault_plan.Fault_plan.trace with
  | None -> Workload.Trace_arena.iter arena ~f:step
  | Some _ ->
    Seq.iter
      (fun (a : Access.t) ->
        step ~site:a.site ~vpage:a.vpage ~compute:a.compute ~thread:a.thread)
      (Fault_plan.perturb_trace fault_plan
         ~elrange_pages:trace.Trace.elrange_pages
         (Workload.Trace_arena.to_seq arena)));
  Enclave.sync enclave ~now:!now;
  let metrics = Enclave.metrics enclave in
  {
    workload = trace.Trace.name;
    input = input_label;
    scheme = Scheme.name scheme;
    fault_plan = fault_plan.Fault_plan.name;
    cycles = Metrics.total_cycles metrics;
    final_now = !now;
    costs;
    metrics;
    events = Enclave.events enclave;
    diagnostics =
      {
        events_truncated = Event.truncated log;
        pending_preloads = Enclave.pending_preload_count enclave;
        in_flight_preloads =
          (* Both speculative kinds: a SIP-requested load mid-flight at
             run end is as much an unfinished preload as a DFP one.
             Demand loads stay excluded — they resolve a fault, not a
             prediction. *)
          (match Enclave.in_flight enclave with
          | Some { kind = Sgxsim.Load_channel.(Preload_dfp | Preload_sip); _ }
            ->
            1
          | Some { kind = Sgxsim.Load_channel.Demand; _ } | None -> 0);
        in_flight_kind =
          Option.map
            (fun (l : Sgxsim.Load_channel.inflight) -> l.kind)
            (Enclave.in_flight enclave);
        resident_at_end = Enclave.resident_count enclave;
      };
    fault_latency;
    dfp_stopped = (match dfp with Some d -> Preload.Dfp.stopped d | None -> false);
    instrumentation_points =
      (match Scheme.sip_plan scheme with
      | Some plan -> Preload.Sip_instrumenter.instrumentation_points plan
      | None -> 0);
    epc_capacity = Enclave.epc_capacity enclave;
  }

let normalized_time ~baseline result =
  if baseline.cycles = 0 then invalid_arg "Runner.normalized_time: empty baseline";
  float_of_int result.cycles /. float_of_int baseline.cycles

let improvement ~baseline result = 1.0 -. normalized_time ~baseline result
