module Enclave = Sgxsim.Enclave
module Cost_model = Sgxsim.Cost_model
module Metrics = Sgxsim.Metrics
module Event = Sgxsim.Event
module Trace = Workload.Trace
module Access = Workload.Access
module Scheme = Preload.Scheme
module Breaker = Preload.Breaker
module Histogram = Repro_util.Histogram

type config = { epc_pages : int; costs : Cost_model.t; log_capacity : int }

let default_config =
  { epc_pages = 2048; costs = Cost_model.paper; log_capacity = 0 }

let resolution_name = function
  | Enclave.Already_present -> "already-present"
  | Enclave.Waited_in_flight -> "waited-in-flight"
  | Enclave.Demand_load -> "demand-load"

type restart_policy = Cold | Rewarm

let restart_policy_name = function Cold -> "cold" | Rewarm -> "rewarm"

let restart_policy_of_string = function
  | "cold" -> Ok Cold
  | "rewarm" -> Ok Rewarm
  | s ->
    Error (Printf.sprintf "unknown restart policy %S (expected cold|rewarm)" s)

(* The one run-entry record.  Every knob that used to be a mirrored
   optional argument on [run]/[run_fused]/[make_instance] (and then on
   Fleet/Service/Chaos in turn) lives here once, validated once. *)
module Spec = struct
  type t = {
    config : config;
    fault_plan : Fault_plan.t;
    input_label : string;
    restart : restart_policy;
    breaker : Preload.Breaker.config option;
    online : Preload.Online.config option;
  }

  let default =
    {
      config = default_config;
      fault_plan = Fault_plan.none;
      input_label = "";
      restart = Cold;
      breaker = None;
      online = None;
    }

  let make ?(config = default_config) ?(fault_plan = Fault_plan.none)
      ?(input_label = "") ?(restart = Cold) ?breaker ?online () =
    if config.epc_pages <= 0 then
      invalid_arg "Runner.Spec: epc_pages must be positive";
    if config.log_capacity < 0 then
      invalid_arg "Runner.Spec: log_capacity must be non-negative";
    ignore (Option.map Preload.Breaker.validate breaker);
    ignore (Option.map Preload.Online.validate online);
    { config; fault_plan; input_label; restart; breaker; online }
end

type diagnostics = {
  pending_preloads : int;
  in_flight_preloads : int;
  in_flight_kind : Sgxsim.Load_channel.kind option;
  events_truncated : bool;
  resident_at_end : int;
  restarts : int;
  breaker_state : Breaker.state option;
  breaker_trips : int;
  breaker_transitions : Breaker.transition list;
  online : Preload.Online.summary option;
}

type result = {
  workload : string;
  input : string;
  scheme : string;
  fault_plan : string;
  cycles : int;
  final_now : int;
  costs : Cost_model.t;
  metrics : Metrics.t;
  events : Event.t list;
  diagnostics : diagnostics;
  fault_latency : (Enclave.fault_resolution * Histogram.t) list;
  dfp_stopped : bool;
  instrumentation_points : int;
  epc_capacity : int;
}

(* One scheme's complete simulation state within a (possibly fused)
   replay: its enclave, attached preloader, measurement histograms and
   private clock.  Instances never share mutable state, so fanning one
   trace pass out across many of them is observationally identical to
   running each scheme in its own pass. *)
type instance = {
  i_scheme : Scheme.t; (* post stale-plan scramble *)
  enclave : Enclave.t;
  log : Event.log;
  dfp : Preload.Dfp.t option;
  fault_latency_h : (Enclave.fault_resolution * Histogram.t) list;
  sip_site : int -> bool;
  i_costs : Cost_model.t;
  mutable now : int;
  (* Crash–restart machinery (inert when the plan has no crash fault or
     the scheme is Native). *)
  i_fault_plan : Fault_plan.t;
  i_crash : Fault_plan.crash_fault option;
  i_crash_key : int; (* instance index in the crash draw chain *)
  i_restart : restart_policy;
  i_breaker : Breaker.t option;
  i_online : Preload.Online.t option;
  mutable crash_window : int; (* highest crash window already evaluated *)
  mutable restarts : int;
}

let make_instance ?epc ?owner ~(spec : Spec.t) ~(trace : Trace.t) scheme =
  let config = spec.Spec.config in
  let fault_plan = spec.Spec.fault_plan in
  (* A stale profile perturbs the scheme itself, before anything else
     sees it: SIP/Hybrid run with the scrambled plan throughout. *)
  let scheme =
    if fault_plan.Fault_plan.stale_sip_plan then
      match scheme with
      | Scheme.Sip plan -> Scheme.Sip (Fault_plan.scramble_plan fault_plan plan)
      | Scheme.Hybrid (d, plan) ->
        Scheme.Hybrid (d, Fault_plan.scramble_plan fault_plan plan)
      | s -> s
    else scheme
  in
  let costs, epc_pages =
    match scheme with
    | Scheme.Native ->
      (* Outside SGX the whole footprint fits in RAM: faults are cheap
         first-touch minor faults and nothing is ever evicted. *)
      (Cost_model.native, trace.Trace.elrange_pages)
    | _ -> (config.costs, config.epc_pages)
  in
  let log =
    if config.log_capacity > 0 then Event.make_log ~capacity:config.log_capacity
    else Event.null_log
  in
  (* Native models unconstrained RAM: it must never join a shared EPC
     pool even inside a fleet, so the pass-through is suppressed (its
     private pool spans the whole ELRANGE and nothing evicts). *)
  let epc = match scheme with Scheme.Native -> None | _ -> epc in
  let enclave =
    Enclave.create ~costs ~log ?epc ?owner ~epc_pages
      ~elrange_pages:trace.Trace.elrange_pages ()
  in
  (* Install fault hooks only when the respective fault is present, so a
     fault-free run is the exact pre-fault-plan simulation.  Native runs
     outside the enclave entirely: there is no EPC for a co-tenant to
     squeeze and no load channel for jitter to stretch, so neither hook
     applies (installing them was a bug — it made the native yardstick
     drift with the fault plan). *)
  (match scheme with
  | Scheme.Native -> ()
  | _ ->
    if fault_plan.Fault_plan.channel <> None then
      Enclave.set_load_perturb enclave (fun ~at base ->
          Fault_plan.perturb_load_duration fault_plan ~at base);
    if fault_plan.Fault_plan.co_tenant <> None then
      Enclave.set_epc_budget enclave (fun ~at capacity ->
          Fault_plan.epc_budget fault_plan ~at ~capacity));
  let dfp =
    match scheme with
    | Scheme.Dfp dfp_config | Scheme.Hybrid (dfp_config, _) ->
      Some (Preload.Dfp.attach enclave dfp_config)
    | Scheme.Next_line { degree } ->
      ignore (Preload.Prefetch_baselines.attach_next_line enclave ~degree);
      None
    | Scheme.Stride { degree } ->
      ignore (Preload.Prefetch_baselines.attach_stride enclave ~degree);
      None
    | Scheme.Markov { table_pages; degree } ->
      ignore
        (Preload.Prefetch_baselines.attach_markov enclave ~table_pages ~degree);
      None
    | Scheme.Baseline | Scheme.Native | Scheme.Sip _ -> None
  in
  (* The online controller attaches to whatever actuation slots the base
     scheme left free: it owns the mode-gated stream preloader when the
     fault hook is unclaimed (Baseline, SIP) and the dynamic SIP
     predicate when there is no static plan.  Native runs outside SGX —
     nothing to adapt.  Its observations come from [step], which (unlike
     the fault hook) sees instruction sites. *)
  let online =
    match (scheme, spec.Spec.online) with
    | Scheme.Native, _ | _, None -> None
    | _, Some ocfg ->
      let can_dfp =
        match scheme with
        | Scheme.Baseline | Scheme.Sip _ -> true
        | Scheme.Native | Scheme.Dfp _ | Scheme.Hybrid _ | Scheme.Next_line _
        | Scheme.Stride _ | Scheme.Markov _ ->
          false
      in
      let can_sip = Scheme.sip_plan scheme = None in
      let ctl =
        Preload.Online.create ~config:ocfg ~residency_pages:epc_pages ~can_dfp
          ~can_sip ()
      in
      Preload.Online.attach ctl enclave;
      Some ctl
  in
  (* The breaker chains after the scheme's (and controller's) hooks,
     which own the set_* slots, and installs the admission gate.  Native
     never speculates, so a breaker on it would only log an
     eternally-Closed machine. *)
  let breaker =
    match (scheme, spec.Spec.breaker) with
    | Scheme.Native, _ | _, None -> None
    | _, Some bconfig ->
      let b = Breaker.create ~config:bconfig () in
      Breaker.attach b enclave;
      Some b
  in
  (* Fault-resolution latency (raise -> execution resumed), one histogram
     per resolution kind.  Chained after the scheme's own on_fault so the
     measurement never displaces DFP. *)
  let latency_hi =
    float_of_int
      (2
      * (costs.Cost_model.t_aex + costs.Cost_model.t_evict
       + costs.Cost_model.t_load + costs.Cost_model.t_eresume))
  in
  (* [auto_expand]: the initial bound covers one drained load plus the
     fault's own; a fault queued behind a deeper preload window must
     widen the buckets, not vanish into overflow and bias the mean.
     [Validate] asserts the overflow bucket stays empty. *)
  let hist_for () =
    Histogram.create ~auto_expand:true ~lo:0.0 ~hi:(Float.max latency_hi 1.0)
      ~buckets:32 ()
  in
  let h_already = hist_for () in
  let h_waited = hist_for () in
  let h_demand = hist_for () in
  let fault_latency_h =
    [
      (Enclave.Already_present, h_already);
      (Enclave.Waited_in_flight, h_waited);
      (Enclave.Demand_load, h_demand);
    ]
  in
  (* The hook fires between the handler's return and the ERESUME, whose
     fixed cost is still part of what the faulting thread waits for.  The
     histogram is selected by a direct match — this runs per fault, and an
     assoc lookup here was a measurable slice of the replay (polymorphic
     compare on the resolution variant). *)
  Enclave.add_on_fault enclave (fun _ (ctx : Enclave.fault_ctx) ->
      let h =
        match ctx.resolution with
        | Enclave.Already_present -> h_already
        | Enclave.Waited_in_flight -> h_waited
        | Enclave.Demand_load -> h_demand
      in
      Histogram.add h
        (float_of_int
           (ctx.handled_at - ctx.raised_at + costs.Cost_model.t_eresume)));
  let sip_site =
    match (Scheme.sip_plan scheme, online) with
    | Some plan, _ -> Preload.Sip_instrumenter.site_predicate plan
    | None, Some ctl -> Preload.Online.site_predicate ctl
    | None, None -> fun _ -> false
  in
  {
    i_scheme = scheme;
    enclave;
    log;
    dfp;
    fault_latency_h;
    sip_site;
    i_costs = costs;
    now = 0;
    i_fault_plan = fault_plan;
    i_crash =
      (* Native runs outside SGX: an enclave-instance crash has nothing
         to kill, so Native stays invariant across crash plans exactly as
         it does across channel/EPC faults. *)
      (match scheme with
      | Scheme.Native -> None
      | _ -> fault_plan.Fault_plan.crash);
    i_crash_key = Option.value owner ~default:0;
    i_restart = spec.Spec.restart;
    i_breaker = breaker;
    i_online = online;
    crash_window = -1;
    restarts = 0;
  }

(* Evaluate the crash schedule up to the instance's current clock.  Each
   crash window not yet judged gets one seeded draw; the first that fires
   kills the instance at [now] (at most one crash per evaluation — an
   instance cannot die twice without running in between), charges the
   restart delay to [cyc_restart] while advancing the clock by the same
   amount (so the cycle identity [total_cycles = final_now] survives),
   and, under [Rewarm], re-requests the lost resident set through the
   ordinary preload path so every page flows through the standard
   disposition identities. *)
let check_crash inst =
  match inst.i_crash with
  | None -> ()
  | Some c ->
    let w = inst.now / c.Fault_plan.crash_period in
    if w > inst.crash_window then begin
      let fired = ref false in
      for w' = inst.crash_window + 1 to w do
        if
          (not !fired)
          && Fault_plan.crash_fires inst.i_fault_plan ~instance:inst.i_crash_key
               ~window:w'
        then fired := true
      done;
      inst.crash_window <- w;
      if !fired then begin
        let lost = Enclave.crash inst.enclave ~now:inst.now in
        let m = Enclave.metrics inst.enclave in
        m.Metrics.cyc_restart <- m.Metrics.cyc_restart + c.restart_delay;
        inst.now <- inst.now + c.restart_delay;
        inst.restarts <- inst.restarts + 1;
        match inst.i_restart with
        | Cold -> ()
        | Rewarm ->
          List.iter
            (fun vpage ->
              ignore (Enclave.request_preload inst.enclave ~now:inst.now vpage))
            lost
      end
    end

let finalize ~(spec : Spec.t) ~(trace : Trace.t) inst =
  Enclave.sync inst.enclave ~now:inst.now;
  let metrics = Enclave.metrics inst.enclave in
  {
    workload = trace.Trace.name;
    input = spec.Spec.input_label;
    scheme =
      (* An adaptive run is a different scheme from its base: tables and
         journals must never conflate the two. *)
      (match inst.i_online with
      | Some _ -> Scheme.name inst.i_scheme ^ "+online"
      | None -> Scheme.name inst.i_scheme);
    fault_plan = spec.Spec.fault_plan.Fault_plan.name;
    cycles = Metrics.total_cycles metrics;
    final_now = inst.now;
    costs = inst.i_costs;
    metrics;
    events = Enclave.events inst.enclave;
    diagnostics =
      {
        events_truncated = Event.truncated inst.log;
        pending_preloads = Enclave.pending_preload_count inst.enclave;
        in_flight_preloads =
          (* Both speculative kinds: a SIP-requested load mid-flight at
             run end is as much an unfinished preload as a DFP one.
             Demand loads stay excluded — they resolve a fault, not a
             prediction. *)
          (match Enclave.in_flight inst.enclave with
          | Some { kind = Sgxsim.Load_channel.(Preload_dfp | Preload_sip); _ }
            ->
            1
          | Some { kind = Sgxsim.Load_channel.Demand; _ } | None -> 0);
        in_flight_kind =
          Option.map
            (fun (l : Sgxsim.Load_channel.inflight) -> l.kind)
            (Enclave.in_flight inst.enclave);
        resident_at_end = Enclave.resident_count inst.enclave;
        restarts = inst.restarts;
        breaker_state = Option.map Breaker.state inst.i_breaker;
        breaker_trips =
          (match inst.i_breaker with Some b -> Breaker.trips b | None -> 0);
        breaker_transitions =
          (match inst.i_breaker with
          | Some b -> Breaker.transitions b
          | None -> []);
        online = Option.map Preload.Online.summary inst.i_online;
      };
    fault_latency = inst.fault_latency_h;
    dfp_stopped =
      (match inst.dfp with Some d -> Preload.Dfp.stopped d | None -> false);
    instrumentation_points =
      (match Scheme.sip_plan inst.i_scheme with
      | Some plan -> Preload.Sip_instrumenter.instrumentation_points plan
      | None -> 0);
    epc_capacity = Enclave.epc_capacity inst.enclave;
  }

let step inst ~site ~vpage ~compute ~thread =
  check_crash inst;
  (* The classifier observes from here — the only place that sees the
     instruction site — and never touches the enclave, so observation
     cannot perturb the replay. *)
  (match inst.i_online with
  | Some ctl -> Preload.Online.observe ctl ~site ~vpage
  | None -> ());
  let t = Enclave.compute inst.enclave ~now:inst.now compute in
  let t =
    if inst.sip_site site then
      Enclave.sip_access ~thread inst.enclave ~now:t vpage
    else Enclave.access ~thread inst.enclave ~now:t vpage
  in
  inst.now <- t

let run_fused ?(spec = Spec.default) ~schemes trace =
  let fault_plan = spec.Spec.fault_plan in
  let instances =
    Array.of_list (List.map (make_instance ~spec ~trace) schemes)
  in
  let n = Array.length instances in
  (* Replay from the compiled arena, fanning each access out to every
     instance.  Instances advance their private clocks independently and
     share nothing mutable, so ANY replay interleaving produces, per
     instance, the exact event sequence a solo pass would — the trace is
     decoded once instead of [n] times.  The fan-out is chunked, not
     per-event: each instance replays a cache-sized block of the packed
     columns before the next instance takes the same block.  Per-event
     round-robin would drag [n] enclaves' page tables through the cache
     between consecutive accesses of each one; per-block, an instance's
     working set stays hot for the whole block and the block's columns
     (four int columns, ~2 MB at this size) stay hot across the [n]
     replays of it.  Only a plan that corrupts/truncates the stream
     itself needs the [Seq] view, which is one-shot and therefore fans
     out per event; [perturb_trace] draws are keyed by event index, so
     the one shared perturbed stream is identical to the stream each
     solo run would have drawn. *)
  let arena = Workload.Trace_arena.compile trace in
  (match fault_plan.Fault_plan.trace with
  | None ->
    let block = 16384 in
    let len = Workload.Trace_arena.length arena in
    let lo = ref 0 in
    while !lo < len do
      let hi = min len (!lo + block) in
      for i = 0 to n - 1 do
        let inst = instances.(i) in
        Workload.Trace_arena.iter_range arena ~lo:!lo ~hi
          ~f:(fun ~site ~vpage ~compute ~thread ->
            step inst ~site ~vpage ~compute ~thread)
      done;
      lo := hi
    done
  | Some _ ->
    let step_all ~site ~vpage ~compute ~thread =
      for i = 0 to n - 1 do
        step instances.(i) ~site ~vpage ~compute ~thread
      done
    in
    Seq.iter
      (fun (a : Access.t) ->
        step_all ~site:a.site ~vpage:a.vpage ~compute:a.compute
          ~thread:a.thread)
      (Fault_plan.perturb_trace fault_plan
         ~elrange_pages:trace.Trace.elrange_pages
         (Workload.Trace_arena.to_seq arena)));
  List.map (finalize ~spec ~trace) (Array.to_list instances)

let run ?spec ~scheme trace =
  match run_fused ?spec ~schemes:[ scheme ] trace with
  | [ r ] -> r
  | _ -> assert false

let normalized_time ~baseline result =
  if baseline.cycles = 0 then invalid_arg "Runner.normalized_time: empty baseline";
  float_of_int result.cycles /. float_of_int baseline.cycles

let improvement ~baseline result = 1.0 -. normalized_time ~baseline result
