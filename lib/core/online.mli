(** Online adaptive preloading: the no-PGO mode.

    SIP's offline profiling pass (profile a train input, derive per-site
    Class 1/2/3 labels, instrument the irregular sites) assumes a train
    trace no real service gets.  This module learns the same labels
    {e online}: a per-site classifier runs the §4.4 classification
    pipeline over the live access stream against its own residency proxy
    and fault-history predictor, a phase detector (windowed fault rate +
    site-entropy change-point) flags when the access mix shifts, and an
    adaptive controller switches the active scheme per phase — baseline,
    DFP, online-SIP, or the hybrid of both.

    Like the circuit breaker it generalizes alongside, every decision
    (label flips {e and} mode switches) happens at a service-scan
    timestamp over a tumbling window, which keeps an adaptive replay
    bit-reproducible across solo, fused, fleet and service drivers.
    The controller composes with {!Breaker}: its speculative requests
    pass through the ordinary preload gate. *)

type mode = Baseline | Dfp | Sip | Hybrid

val mode_name : mode -> string
(** ["baseline"] / ["dfp"] / ["sip"] / ["hybrid"]. *)

val mode_of_string : string -> mode option

type config = {
  window : int;  (** Service scans per decision window. *)
  probe : int;
      (** Minimum classified accesses in a window before the controller
          will judge it; quieter windows slide by unchanged. *)
  threshold : float;
      (** Per-site irregular (Class 3) ratio at or above which the site
          is instrumented — the online analogue of the offline plan
          threshold. *)
  site_min : int;
      (** Minimum phase-local samples before a site can be labelled. *)
  dfp_share : float;
      (** Window Class-2 (stream-covered) share at or above which the
          stream preloader is switched on. *)
  entropy_jump : float;
      (** Absolute site-entropy delta (bits) between consecutive windows
          that flags a phase shift and resets phase-local labels. *)
  pin : mode option;
      (** Oracle pin: freeze the controller in one mode.  Labels still
          learn (pin [Sip] is "online SIP without the controller"), but
          the mode never changes and the transition log stays empty —
          pinned [Baseline]/[Dfp] runs reproduce the static scheme
          field-for-field ({!Validate.check_online_oracle}). *)
}

val default_config : config

val validate : config -> config
(** Returns the config unchanged, or raises [Invalid_argument
    ("Online: <what>")] on out-of-range fields. *)

val grammar : string

val config_of_string : string -> (config, string) result
(** Parse a controller spelling: [online] or
    [online:window=N,probe=K,...] (keys [window], [probe], [threshold],
    [pin]).  Total like {!Scheme.of_string} — malformed keys, values or
    out-of-range parameters return [Error] with a human-readable
    message. *)

val config_name : config -> string
(** Canonical spelling; round-trips through {!config_of_string} for
    every grammar-covered field ([site_min], [dfp_share] and
    [entropy_jump] are code-level knobs the grammar does not carry). *)

type transition = {
  at : int;  (** Scan timestamp of the switch. *)
  from_mode : mode;
  to_mode : mode;
  miss_share : float;
      (** Window share of non-resident (Class 2 + 3) accesses at the
          decision. *)
  entropy : float;  (** Window site entropy (bits) at the decision. *)
}

type label_change = {
  lc_at : int;  (** Scan timestamp of the flip. *)
  lc_site : int;
  lc_instrument : bool;  (** New label: instrumented or not. *)
}

type t

val create :
  ?config:config ->
  residency_pages:int ->
  ?can_dfp:bool ->
  ?can_sip:bool ->
  unit ->
  t
(** Fresh controller.  [residency_pages] sizes the classifier's
    residency proxy (the EPC frame count).  [can_dfp]/[can_sip] (both
    default [true]) record which actuation slots the base scheme left
    free: a scheme owning the enclave's fault hook keeps it
    ([can_dfp = false], the controller only observes), and a scheme with
    a static instrumentation plan keeps its predicate
    ([can_sip = false]).  Raises [Invalid_argument] on an invalid
    config. *)

val attach : t -> Sgxsim.Enclave.t -> unit
(** Wire the controller into an enclave: installs the mode-gated DFP
    fault hook (when [can_dfp]) and chains the decision clock onto the
    service scan.  Call {!observe} per access from the replay loop — the
    fault hook cannot see instruction sites, the trace can. *)

val observe : t -> site:int -> vpage:int -> unit
(** Feed one access to the classifier.  Pure bookkeeping against the
    controller's own residency proxy — never touches the enclave, so an
    observed replay is cycle-identical to an unobserved one until the
    controller actuates. *)

val mode : t -> mode
val config : t -> config
val observed : t -> int
val phase_shifts : t -> int
val instrumented_count : t -> int
val transitions : t -> transition list
val label_changes : t -> label_change list

val dfp_active : t -> bool
(** Whether the stream preloader is on in the current mode (and the
    slot was free to begin with). *)

val sip_active : t -> bool

val site_predicate : t -> int -> bool
(** The dynamic analogue of {!Sip_instrumenter.site_predicate}: whether
    an access at this site takes the SIP-instrumented path {e right
    now}. *)

val on_scan : t -> Sgxsim.Enclave.t -> at:int -> unit
(** The decision point {!attach} chains onto the scan hook; exposed for
    direct unit tests. *)

type summary = {
  s_config : config;
  final_mode : mode;
  s_transitions : transition list;
  s_label_changes : label_change list;
  s_observed : int;
  s_instrumented : int;
  s_phase_shifts : int;
  per_site : (int * (int * int * int)) list;
      (** Lifetime (never reset) per-site Class 1/2/3 totals, sorted by
          site; {!Validate.check_online} sums them against
          [s_observed]. *)
}

val summary : t -> summary
(** End-of-run snapshot packaged into {!Runner.diagnostics}. *)

val check_transitions : ?pin:mode -> transition list -> string option
(** Legality of a controller history: starts from [pin] (default
    [Baseline]), every transition departs the state the previous one
    entered, self-edges are illegal, timestamps never regress, and a
    pinned controller never transitions at all.  [None] when legal. *)
