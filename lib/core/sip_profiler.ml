module Trace = Workload.Trace

type access_class = Class1 | Class2 | Class3

type site_counts = { mutable c1 : int; mutable c2 : int; mutable c3 : int }

type config = {
  stream_list_length : int;
  load_length : int;
  residency_pages : int;
}

let default_config ~residency_pages =
  { stream_list_length = 30; load_length = 4; residency_pages }

type t = {
  workload : string;
  input : string;
  config : config;
  per_site : (int, site_counts) Hashtbl.t;
  mutable total_accesses : int;
}

(* Would DFP's stream list consider [page] covered?  Either it extends a
   stream or it sits within [load_length] pages ahead of a tail (the
   window DFP would have preloaded). *)
let within_stream predictor ~load_length page =
  List.exists
    (fun (s : Stream_predictor.stream) ->
      let delta = page - s.stpn in
      if s.dir > 0 then delta >= 1 && delta <= load_length
      else if s.dir < 0 then -delta >= 1 && -delta <= load_length
      else abs delta >= 1 && abs delta <= load_length)
    (Stream_predictor.streams predictor)

let classify_one predictor cache ~load_length page =
  let resident = Page_lru.mem cache page in
  if resident then begin
    ignore (Page_lru.touch cache page);
    Class1
  end
  else begin
    let cls = if within_stream predictor ~load_length page then Class2 else Class3 in
    (* A non-resident access is a (simulated) fault: it enters the fault
       history exactly as the OS would record it. *)
    ignore (Stream_predictor.on_fault predictor page);
    ignore (Page_lru.touch cache page);
    cls
  end

let profile ?(input = "") config trace =
  let predictor =
    Stream_predictor.create ~stream_list_length:config.stream_list_length
      ~load_length:config.load_length ()
  in
  let cache = Page_lru.create ~capacity:config.residency_pages in
  let t =
    {
      workload = trace.Trace.name;
      input;
      config;
      per_site = Hashtbl.create 64;
      total_accesses = 0;
    }
  in
  let arena = Workload.Trace_arena.compile trace in
  Workload.Trace_arena.iter arena ~f:(fun ~site ~vpage ~compute:_ ~thread:_ ->
      let counts =
        match Hashtbl.find_opt t.per_site site with
        | Some c -> c
        | None ->
          let c = { c1 = 0; c2 = 0; c3 = 0 } in
          Hashtbl.add t.per_site site c;
          c
      in
      t.total_accesses <- t.total_accesses + 1;
      match classify_one predictor cache ~load_length:config.load_length vpage with
      | Class1 -> counts.c1 <- counts.c1 + 1
      | Class2 -> counts.c2 <- counts.c2 + 1
      | Class3 -> counts.c3 <- counts.c3 + 1);
  t

let site_counts t site = Hashtbl.find_opt t.per_site site

let sites t =
  Hashtbl.fold (fun site counts acc -> (site, counts) :: acc) t.per_site []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let irregular_ratio c =
  let total = c.c1 + c.c2 + c.c3 in
  if total = 0 then 0.0 else float_of_int c.c3 /. float_of_int total

let totals t =
  let acc = { c1 = 0; c2 = 0; c3 = 0 } in
  Hashtbl.iter
    (fun _ c ->
      acc.c1 <- acc.c1 + c.c1;
      acc.c2 <- acc.c2 + c.c2;
      acc.c3 <- acc.c3 + c.c3)
    t.per_site;
  acc
