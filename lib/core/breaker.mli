(** Preload circuit breaker: Closed → Open → Half-open over observed
    hit rate.

    DFP-stop (§4.2) hardwires one valve: stop preloading forever once
    accuracy collapses.  This module generalizes it into the classic
    circuit-breaker state machine, driven entirely by simulated events
    so a braked run stays bit-reproducible:

    - {b Closed} — speculation admitted.  Completions and scan-harvested
      hits accumulate over a tumbling window of [window] CLOCK scans; a
      full window with at least [min_samples] completions whose hit rate
      falls below [threshold] trips the breaker Open.  A window too
      quiet to judge just restarts.
    - {b Open} — every speculative request is refused (counted in
      [Metrics.preloads_rejected_breaker]).  After [cooldown] scans the
      breaker moves to Half-open.
    - {b Half-open} — speculation admitted again, on probation: the
      first [probe_samples] completions decide.  Probe hit rate at or
      above [threshold] recloses the breaker; below it re-opens.

    Attached to any scheme's enclave via the observer chain
    ({!Sgxsim.Enclave.add_on_preload_complete} /
    [add_on_preload_hit] / [add_on_scan]) and the admission gate
    ({!Sgxsim.Enclave.set_preload_gate}), so it wraps DFP, next-line,
    stride, Markov or the hybrid without touching the scheme.  SIP's
    synchronous loads never pass the gate. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  window : int;  (** CLOCK scans per closed-state evaluation window. *)
  min_samples : int;
      (** Completions a window needs before its rate is judged. *)
  threshold : float;  (** Minimum hit rate ([0..1]) to stay closed. *)
  cooldown : int;  (** Scans to sit Open before probing. *)
  probe_samples : int;
      (** Completions the half-open probation judges on. *)
}

val default_config : config
(** window 8, min_samples 16, threshold 0.25, cooldown 16,
    probe_samples 8. *)

val validate : config -> config
(** @raise Invalid_argument on a non-positive count or a threshold
    outside [0, 1]. *)

type transition = {
  at : int;  (** Scan timestamp of the state change. *)
  from_state : state;
  to_state : state;
  rate : float;
      (** Hit rate that drove the decision (0 for the cooldown-expiry
          Open → Half-open edge). *)
}

type t

val create : ?config:config -> unit -> t
(** Fresh breaker, Closed.  @raise Invalid_argument via {!validate}. *)

val state : t -> state
val config : t -> config

val rejected : t -> int
(** Speculative requests refused while Open. *)

val transitions : t -> transition list
(** Chronological state-change log (empty if never tripped). *)

val trips : t -> int
(** Number of transitions into Open. *)

val admit : t -> bool
(** The gate: [false] (and counts a rejection) iff Open. *)

val note_completed : t -> unit
val note_hit : t -> unit

val on_scan : t -> at:int -> unit
(** Advance the machine one scan tick at simulated time [at]. *)

val attach : t -> Sgxsim.Enclave.t -> unit
(** Chain the breaker's observers after the scheme's hooks and install
    its admission gate.  Call after the scheme's own [attach]. *)

val check_transitions : transition list -> string option
(** Validate a transition log: starts from Closed, every edge legal
    (Closed→Open, Open→Half-open, Half-open→Closed/Open), timestamps
    non-decreasing.  [None] when well-formed, [Some reason] otherwise —
    the shared legality oracle behind [Validate.check_resilience]. *)
