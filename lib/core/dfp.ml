module Enclave = Sgxsim.Enclave

type config = {
  stream_list_length : int;
  load_length : int;
  detect_backward : bool;
  stop_enabled : bool;
  stop_margin : int;
  per_thread : bool;
}

let default_config =
  {
    stream_list_length = 30;
    load_length = 4;
    detect_backward = true;
    stop_enabled = false;
    stop_margin = 160;
    per_thread = true;
  }

let with_stop config = { config with stop_enabled = true }

(* Per-thread predictor lookup runs on every fault, so the common case —
   small non-negative thread ids, which is what every trace generator
   produces — is an array probe; the Hashtbl only backs exotic ids. *)
let small_threads = 256

type t = {
  config : config;
  small : Stream_predictor.t option array; (* keyed by thread, [0, 256) *)
  others : (int, Stream_predictor.t) Hashtbl.t; (* any other thread id *)
  mutable predictor_count : int;
  mutable acc_preload_counter : int;
  mutable preload_counter : int;
  mutable stopped : bool;
}

let new_predictor t =
  t.predictor_count <- t.predictor_count + 1;
  Stream_predictor.create ~detect_backward:t.config.detect_backward
    ~stream_list_length:t.config.stream_list_length
    ~load_length:t.config.load_length ()

let predictor_for t thread =
  let key = if t.config.per_thread then thread else 0 in
  if key >= 0 && key < small_threads then (
    match t.small.(key) with
    | Some p -> p
    | None ->
      let p = new_predictor t in
      t.small.(key) <- Some p;
      p)
  else
    match Hashtbl.find_opt t.others key with
    | Some p -> p
    | None ->
      let p = new_predictor t in
      Hashtbl.add t.others key p;
      p

(* Refresh a stream's pending window against what is actually still
   queued, then queue the new predictions and record which ones the
   enclave accepted.  Membership is the enclave's per-vpage queue index
   (O(1) per page) — materializing the whole queue list and running
   [List.mem] against it per prediction made every fault O(queue). *)
let issue_preloads enclave ~now stream predict =
  let old_pending =
    List.filter
      (fun p -> Enclave.preload_queued enclave p)
      stream.Stream_predictor.pending
  in
  let queued =
    List.filter (fun p -> Enclave.request_preload enclave ~now p) predict
  in
  Stream_predictor.set_pending stream (old_pending @ queued)

let on_fault t enclave (ctx : Enclave.fault_ctx) =
  if not t.stopped then begin
    let now = ctx.handled_at in
    let predictor = predictor_for t ctx.fault_thread in
    match Stream_predictor.on_fault predictor ctx.fault_vpage with
    | Extend { stream; predict } -> issue_preloads enclave ~now stream predict
    | Restart_within { stream = _; abort } ->
      ignore (Enclave.abort_pending_preloads_pages enclave ~now abort)
    | New_stream { stream = _; replaced } -> (
      match replaced with
      | Some dead ->
        let abort = dead.Stream_predictor.pending in
        if abort <> [] then
          ignore (Enclave.abort_pending_preloads_pages enclave ~now abort)
      | None -> ())
  end

(* The §4.2 stop decision, audited against the paper's semantics:
   [completed] is the PreloadCounter — pages actually brought into EPC
   (issued-but-aborted/taken-over/skipped requests never count against
   accuracy); [acc] is the AccPreloadCounter harvested by the service
   scan.  Both are cumulative over the whole run — the paper's counters
   are never reset and the stop is one-way — and the margin absorbs the
   harvest lag (preloads completed but not yet scanned). *)
let should_stop config ~acc ~completed =
  config.stop_enabled && acc + config.stop_margin < completed / 2

let check_stop t enclave ~now =
  if
    (not t.stopped)
    && should_stop t.config ~acc:t.acc_preload_counter
         ~completed:t.preload_counter
  then begin
    t.stopped <- true;
    ignore (Enclave.abort_pending_preloads enclave ~now)
  end

let create config =
  {
    config;
    small = Array.make small_threads None;
    others = Hashtbl.create 4;
    predictor_count = 0;
    acc_preload_counter = 0;
    preload_counter = 0;
    stopped = false;
  }

let attach enclave config =
  let t = create config in
  Enclave.set_on_fault enclave (fun enc ctx -> on_fault t enc ctx);
  Enclave.set_on_preload_complete enclave (fun _ _ ->
      t.preload_counter <- t.preload_counter + 1);
  Enclave.set_on_preload_hit enclave (fun _ _ ->
      t.acc_preload_counter <- t.acc_preload_counter + 1);
  Enclave.set_on_scan enclave (fun enc at -> check_stop t enc ~now:at);
  t

let stopped t = t.stopped
let counters t = (t.acc_preload_counter, t.preload_counter)
let predictor t = predictor_for t 0
let thread_count t = t.predictor_count
