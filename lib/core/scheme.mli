(** The preloading schemes under evaluation.

    [Baseline] is the paper's un-optimized enclave execution; [Native] the
    same program outside SGX (only the §1 slowdown experiment uses it);
    [Dfp]/[Sip]/[Hybrid] are the paper's contributions; the three
    prefetcher variants are ablation baselines.

    Parameterised schemes carry labelled config records; build them with
    the smart constructors ({!next_line}, {!stride}, {!markov}), which
    validate their parameters.  {!of_string} parses every spelling
    {!name} produces (plus the CLI's historical colon forms), so
    scheme names round-trip: [of_string (name s)] re-derives [s] up to
    the plan payload. *)

type next_line_config = { degree : int }
type stride_config = { degree : int }

type markov_config = {
  table_pages : int;  (** Correlation-table size in predecessor entries. *)
  degree : int;
}

type t =
  | Baseline
  | Native
  | Dfp of Dfp.config
  | Sip of Sip_instrumenter.plan
  | Hybrid of Dfp.config * Sip_instrumenter.plan
  | Next_line of next_line_config
  | Stride of stride_config
  | Markov of markov_config

val next_line : degree:int -> t
(** Raises [Invalid_argument] unless [degree >= 1]. *)

val stride : degree:int -> t
(** Raises [Invalid_argument] unless [degree >= 1]. *)

val markov : table_pages:int -> degree:int -> t
(** Raises [Invalid_argument] unless both parameters are [>= 1]. *)

val name : t -> string

val of_string :
  ?dfp:Dfp.config ->
  ?plan:(unit -> Sip_instrumenter.plan) ->
  string ->
  (t, string) result
(** Parse a scheme name.  Total: never raises — unknown spellings,
    malformed or out-of-range parameters, and SIP/hybrid schemes
    requested without a [plan] supplier all return [Error] with a
    human-readable message.  [plan] is only forced when the scheme
    actually needs an instrumentation plan; [dfp] (default
    [Dfp.default_config]) seeds the DFP-carrying schemes, with the
    [-stop] spellings layering [Dfp.with_stop] on top. *)

val dfp_default : t
(** DFP with the paper's defaults (no stop valve). *)

val dfp_stop : t
(** DFP with the §4.2 safety valve — the Fig. 8 "DFP-stop" series. *)

val uses_sip : t -> bool
(** Whether the scheme consults an instrumentation plan at run time. *)

val sip_plan : t -> Sip_instrumenter.plan option
