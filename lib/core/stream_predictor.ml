type stream = { mutable stpn : int; mutable dir : int; mutable pending : int list }

type reaction =
  | Extend of { stream : stream; predict : int list }
  | Restart_within of { stream : stream; abort : int list }
  | New_stream of { stream : stream; replaced : stream option }

(* The stream list is a fixed-capacity MRU-first array rather than a
   linked LRU list: [on_fault] runs on every simulated page fault, and at
   list length 30 the generic list-based LRU spent its time rebuilding
   cons cells on every promote and walking the list twice (pending check,
   then sequential check).  The array form promotes with one [Array.blit]
   (no allocation) and matches both predicates in a single early-exit
   pass.  Order semantics are unchanged: index 0 is the MRU head, inserts
   evict the highest live index. *)
type t = {
  streams : stream array; (* [0, count) live, MRU first *)
  dummy : stream; (* shared filler for dead slots; never mutated *)
  mutable count : int;
  load_length : int;
  list_length : int;
  detect_backward : bool;
}

let create ?(detect_backward = true) ~stream_list_length ~load_length () =
  if stream_list_length <= 0 then
    invalid_arg "Stream_predictor.create: stream_list_length must be positive";
  if load_length <= 0 then
    invalid_arg "Stream_predictor.create: load_length must be positive";
  let dummy = { stpn = min_int; dir = 0; pending = [] } in
  {
    streams = Array.make stream_list_length dummy;
    dummy;
    count = 0;
    load_length;
    list_length = stream_list_length;
    detect_backward;
  }

let load_length t = t.load_length
let stream_list_length t = t.list_length

(* Is [npn] a continuation of [s]?  In steady state the pages
   [stpn+1 .. stpn+LOADLENGTH] are preloaded and never fault, so the next
   fault of a live stream lands at [stpn + LOADLENGTH + 1]: anything in
   that window continues the stream.  (A fault {e inside} a window whose
   preloads are still pending is a skip, handled separately — the paper's
   page(5)-while-loading-page(3) abort example.)  Returns the direction
   that makes [npn] a continuation, 0 if none. *)
let sequential_dir t s npn =
  let window = t.load_length + 1 in
  let fits dir =
    let delta = (npn - s.stpn) * dir in
    delta >= 1 && delta <= window
  in
  if s.dir <> 0 then if fits s.dir then s.dir else 0
  else if fits 1 then 1
  else if t.detect_backward && fits (-1) then -1
  else 0

let promote t i =
  if i > 0 then begin
    let s = t.streams.(i) in
    Array.blit t.streams 0 t.streams 1 i;
    t.streams.(0) <- s
  end

let on_fault t npn =
  (* One MRU-order pass.  The pending check has absolute priority over
     the sequential check — a pending match anywhere in the list beats a
     sequential match anywhere — so the pass can stop at the first
     pending match but must remember only the {e first} sequential match
     in case no pending match exists.  This reproduces exactly the
     two-traversal (pending find, then sequential find) semantics. *)
  let pending_i = ref (-1) in
  let seq_i = ref (-1) in
  let seq_dir = ref 0 in
  let i = ref 0 in
  while !pending_i < 0 && !i < t.count do
    let s = t.streams.(!i) in
    (* [memq], not [mem]: page numbers are immediate ints, so physical
       equality is exact and skips the polymorphic-compare call. *)
    if List.memq npn s.pending then pending_i := !i
    else if !seq_i < 0 then begin
      let dir = sequential_dir t s npn in
      if dir <> 0 then begin
        seq_i := !i;
        seq_dir := dir
      end
    end;
    incr i
  done;
  if !pending_i >= 0 then begin
    (* The fault landed on a page whose preload is still queued: the
       application skipped ahead of the loader. *)
    let s = t.streams.(!pending_i) in
    let abort = s.pending in
    s.pending <- [];
    s.stpn <- npn;
    s.dir <- 0;
    promote t !pending_i;
    Restart_within { stream = s; abort }
  end
  else if !seq_i >= 0 then begin
    let s = t.streams.(!seq_i) in
    let dir = !seq_dir in
    s.dir <- dir;
    s.stpn <- npn;
    promote t !seq_i;
    let predict =
      List.init t.load_length (fun i -> npn + (dir * (i + 1)))
      |> List.filter (fun p -> p >= 0)
    in
    Extend { stream = s; predict }
  end
  else begin
    let fresh = { stpn = npn; dir = 0; pending = [] } in
    let replaced =
      if t.count < t.list_length then begin
        Array.blit t.streams 0 t.streams 1 t.count;
        t.count <- t.count + 1;
        None
      end
      else begin
        let dropped = t.streams.(t.list_length - 1) in
        Array.blit t.streams 0 t.streams 1 (t.list_length - 1);
        Some dropped
      end
    in
    t.streams.(0) <- fresh;
    New_stream { stream = fresh; replaced }
  end

let set_pending s pages = s.pending <- pages

let streams t = List.init t.count (fun i -> t.streams.(i))

let reset t =
  t.count <- 0;
  Array.fill t.streams 0 t.list_length t.dummy
