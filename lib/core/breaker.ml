module Enclave = Sgxsim.Enclave

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  window : int;
  min_samples : int;
  threshold : float;
  cooldown : int;
  probe_samples : int;
}

let default_config =
  { window = 8; min_samples = 16; threshold = 0.25; cooldown = 16;
    probe_samples = 8 }

let validate c =
  let check cond what =
    if not cond then invalid_arg (Printf.sprintf "Breaker: %s" what)
  in
  check (c.window > 0) "window must be positive";
  check (c.min_samples > 0) "min_samples must be positive";
  check (c.threshold >= 0.0 && c.threshold <= 1.0)
    "threshold must be in [0, 1]";
  check (c.cooldown > 0) "cooldown must be positive";
  check (c.probe_samples > 0) "probe_samples must be positive";
  c

type transition = {
  at : int;
  from_state : state;
  to_state : state;
  rate : float;
}

type t = {
  config : config;
  mutable state : state;
  (* Closed-state tumbling window: completions/hits observed over the
     last [window] scans.  A full window whose hit rate (with at least
     [min_samples] completions) falls below [threshold] opens the
     breaker; a window with too few samples just slides on. *)
  mutable window_hits : int;
  mutable window_completed : int;
  mutable window_scans : int;
  (* Open state: scans sat out before probing again. *)
  mutable open_scans : int;
  (* Half-open probe: the few completions let through decide reclose
     vs re-open. *)
  mutable probe_hits : int;
  mutable probe_completed : int;
  mutable rejected : int;
  mutable transitions_rev : transition list;
}

let create ?(config = default_config) () =
  let config = validate config in
  {
    config;
    state = Closed;
    window_hits = 0;
    window_completed = 0;
    window_scans = 0;
    open_scans = 0;
    probe_hits = 0;
    probe_completed = 0;
    rejected = 0;
    transitions_rev = [];
  }

let state t = t.state
let config t = t.config
let rejected t = t.rejected
let transitions t = List.rev t.transitions_rev
let trips t =
  List.length (List.filter (fun x -> x.to_state = Open) t.transitions_rev)

let goto t ~at ~rate next =
  t.transitions_rev <-
    { at; from_state = t.state; to_state = next; rate } :: t.transitions_rev;
  t.state <- next;
  match next with
  | Closed ->
    t.window_hits <- 0;
    t.window_completed <- 0;
    t.window_scans <- 0
  | Open -> t.open_scans <- 0
  | Half_open ->
    t.probe_hits <- 0;
    t.probe_completed <- 0

let admit t =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
    t.rejected <- t.rejected + 1;
    false

let note_completed t =
  match t.state with
  | Closed -> t.window_completed <- t.window_completed + 1
  | Half_open -> t.probe_completed <- t.probe_completed + 1
  | Open -> ()

let note_hit t =
  match t.state with
  | Closed -> t.window_hits <- t.window_hits + 1
  | Half_open -> t.probe_hits <- t.probe_hits + 1
  | Open -> ()

(* Hit observations ride the CLOCK scan (the paper's AccPreloadCounter
   harvest), so the scan is also the breaker's clock: every state
   decision happens here, at a simulated timestamp, which is what keeps
   a braked replay bit-reproducible. *)
let on_scan t ~at =
  match t.state with
  | Closed ->
    t.window_scans <- t.window_scans + 1;
    if t.window_scans >= t.config.window then begin
      let completed = t.window_completed in
      if completed >= t.config.min_samples then begin
        let rate = float_of_int t.window_hits /. float_of_int completed in
        if rate < t.config.threshold then goto t ~at ~rate Open
        else begin
          t.window_hits <- 0;
          t.window_completed <- 0;
          t.window_scans <- 0
        end
      end
      else begin
        (* Too quiet to judge: restart the window rather than condemn a
           scheme for idling. *)
        t.window_hits <- 0;
        t.window_completed <- 0;
        t.window_scans <- 0
      end
    end
  | Open ->
    t.open_scans <- t.open_scans + 1;
    if t.open_scans >= t.config.cooldown then goto t ~at ~rate:0.0 Half_open
  | Half_open ->
    if t.probe_completed >= t.config.probe_samples then begin
      let rate =
        float_of_int t.probe_hits /. float_of_int t.probe_completed
      in
      if rate >= t.config.threshold then goto t ~at ~rate Closed
      else goto t ~at ~rate Open
    end

(* Wire the breaker into an enclave: observe completions and hits
   alongside whatever scheme already owns the set_* hooks, evaluate at
   every scan, and gate speculative admission.  DFP-stop's valve
   ([Dfp.should_stop]) is the one-way special case of this machine: it
   opens once and never probes. *)
let attach t enclave =
  Enclave.add_on_preload_complete enclave (fun _ _ -> note_completed t);
  Enclave.add_on_preload_hit enclave (fun _ _ -> note_hit t);
  Enclave.add_on_scan enclave (fun _ at -> on_scan t ~at);
  Enclave.set_preload_gate enclave (fun ~now:_ _ -> admit t)

(* Transition-log legality, factored here so every consumer (Runner
   diagnostics, Validate.check_resilience, tests) shares one notion of a
   well-formed breaker history. *)
let legal_edge = function
  | Closed, Open | Open, Half_open | Half_open, Closed | Half_open, Open ->
    true
  | _ -> false

let check_transitions ts =
  let rec go prev_state prev_at = function
    | [] -> None
    | x :: rest ->
      if x.from_state <> prev_state then
        Some
          (Printf.sprintf "transition from %s but machine was %s"
             (state_name x.from_state) (state_name prev_state))
      else if not (legal_edge (x.from_state, x.to_state)) then
        Some
          (Printf.sprintf "illegal edge %s -> %s"
             (state_name x.from_state) (state_name x.to_state))
      else if x.at < prev_at then
        Some
          (Printf.sprintf "timestamps regress (%d after %d)" x.at prev_at)
      else go x.to_state x.at rest
  in
  go Closed min_int ts
