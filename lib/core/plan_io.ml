let save (plan : Sip_instrumenter.plan) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# sgx-preload plan v1\n";
      Printf.fprintf oc "workload %s\n" plan.workload;
      Printf.fprintf oc "threshold %.6f\n" plan.threshold;
      List.iter
        (fun (d : Sip_instrumenter.decision) ->
          Printf.fprintf oc "s %d %d %d %d %d\n" d.site d.counts.Sip_profiler.c1
            d.counts.Sip_profiler.c2 d.counts.Sip_profiler.c3
            (if d.instrument then 1 else 0))
        plan.decisions)

let fail path line msg =
  failwith (Printf.sprintf "Plan_io.load: %s, line %d: %s" path line msg)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let read () =
        incr lineno;
        input_line ic
      in
      (* [fail] raises [Failure]; a [Failure _] catch-all around the parse
         loop would swallow its message and replace every diagnostic with
         a generic one, so fields are decoded explicitly instead. *)
      let int_of field s =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
          fail path !lineno (Printf.sprintf "malformed %s field %S" field s)
      in
      if read () <> "# sgx-preload plan v1" then
        fail path !lineno "unrecognised header";
      let workload = ref None and threshold = ref None in
      let decisions = ref [] in
      let seen_sites = Hashtbl.create 64 in
      let set field cell value =
        if Option.is_some !cell then
          fail path !lineno (Printf.sprintf "duplicate %s line" field);
        cell := Some value
      in
      (try
         while true do
           let line = read () in
           match String.split_on_char ' ' line with
           | "workload" :: rest ->
             set "workload" workload (String.concat " " rest)
           | [ "threshold"; x ] -> (
             match float_of_string_opt x with
             | Some v -> set "threshold" threshold v
             | None ->
               fail path !lineno
                 (Printf.sprintf "malformed threshold field %S" x))
           | [ "s"; site; c1; c2; c3; instrument ] ->
             let site = int_of "site" site in
             if Hashtbl.mem seen_sites site then
               fail path !lineno (Printf.sprintf "duplicate site %d" site);
             Hashtbl.add seen_sites site ();
             let counts =
               {
                 Sip_profiler.c1 = int_of "c1" c1;
                 c2 = int_of "c2" c2;
                 c3 = int_of "c3" c3;
               }
             in
             decisions :=
               {
                 Sip_instrumenter.site;
                 counts;
                 ratio = Sip_profiler.irregular_ratio counts;
                 instrument = int_of "instrument" instrument <> 0;
               }
               :: !decisions
           | [ "" ] -> ()
           | _ -> fail path !lineno "unrecognised line"
         done
       with End_of_file -> ());
      let require field = function
        | Some v -> v
        | None -> fail path !lineno (Printf.sprintf "missing %s line" field)
      in
      {
        Sip_instrumenter.workload = require "workload" !workload;
        threshold = require "threshold" !threshold;
        decisions = List.rev !decisions;
      })
