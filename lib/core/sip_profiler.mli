(** The SIP offline profiling pass (§3.2, §4.4).

    A profiling run replays the workload's full memory trace (the LLVM
    pass instruments every memory instruction in the paper) and classifies
    each access by the Algorithm-1 view of the page it touches:

    - {b Class 1}: the page was touched recently enough that it would be
      found in EPC with high probability;
    - {b Class 2}: the page extends (or sits within the preload window of)
      a detected sequential stream — DFP's territory;
    - {b Class 3}: neither — an irregular access likely to fault.

    Counts are aggregated per instruction site; {!Sip_instrumenter} turns
    them into instrumentation decisions. *)

type access_class = Class1 | Class2 | Class3

type site_counts = {
  mutable c1 : int;
  mutable c2 : int;
  mutable c3 : int;
}

type config = {
  stream_list_length : int;  (** Streams tracked while classifying. *)
  load_length : int;
      (** How far ahead of a stream tail still counts as Class 2. *)
  residency_pages : int;
      (** Size of the recent-page set standing in for EPC residency. *)
}

val default_config : residency_pages:int -> config
(** Paper-shaped defaults (list length 30, load length 4) with the
    residency set sized like the EPC under study. *)

type t = {
  workload : string;
  input : string;
  config : config;
  per_site : (int, site_counts) Hashtbl.t;
  mutable total_accesses : int;
}

val profile : ?input:string -> config -> Workload.Trace.t -> t
(** Replay the trace and classify every access.  [input] labels which
    workload input produced the trace (e.g. ["train"]) and is carried
    verbatim into the profile's [input] field; default [""]. *)

val classify_one :
  Stream_predictor.t -> Page_lru.t -> load_length:int -> int -> access_class
(** The classification step for a single page access, exposed for tests:
    checks residency, then stream adjacency, then falls through to
    Class 3.  Mutates both trackers as the profiling pass would. *)

val site_counts : t -> int -> site_counts option

val sites : t -> (int * site_counts) list
(** All sites with at least one access, sorted by site id. *)

val irregular_ratio : site_counts -> float
(** [c3 / (c1+c2+c3)]; 0 for an empty site. *)

val totals : t -> site_counts
(** Whole-program class counts. *)
