module Enclave = Sgxsim.Enclave

type mode = Baseline | Dfp | Sip | Hybrid

let mode_name = function
  | Baseline -> "baseline"
  | Dfp -> "dfp"
  | Sip -> "sip"
  | Hybrid -> "hybrid"

let mode_of_string = function
  | "baseline" -> Some Baseline
  | "dfp" -> Some Dfp
  | "sip" -> Some Sip
  | "hybrid" -> Some Hybrid
  | _ -> None

type config = {
  window : int;
  probe : int;
  threshold : float;
  site_min : int;
  dfp_share : float;
  entropy_jump : float;
  pin : mode option;
}

let default_config =
  {
    window = 8;
    probe = 64;
    threshold = Sip_instrumenter.default_threshold;
    site_min = 16;
    dfp_share = 0.10;
    entropy_jump = 1.0;
    pin = None;
  }

let validate c =
  let check cond what =
    if not cond then invalid_arg (Printf.sprintf "Online: %s" what)
  in
  check (c.window > 0) "window must be positive";
  check (c.probe > 0) "probe must be positive";
  check (c.threshold >= 0.0 && c.threshold <= 1.0)
    "threshold must be in [0, 1]";
  check (c.site_min > 0) "site_min must be positive";
  check (c.dfp_share >= 0.0 && c.dfp_share <= 1.0)
    "dfp_share must be in [0, 1]";
  check (c.entropy_jump >= 0.0) "entropy_jump must be non-negative";
  c

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let grammar =
  "online or online:key=value,... with keys window=N, probe=N, \
   threshold=R, pin=baseline|dfp|sip|hybrid"

(* One string -> at most one controller config, total like
   [Scheme.of_string]: bad spellings, malformed values and out-of-range
   parameters all come back as [Error], never an exception. *)
let config_of_string s =
  let ( let* ) = Result.bind in
  let low = String.lowercase_ascii s in
  if low = "online" then Ok default_config
  else if
    not (String.length low > 7 && String.sub low 0 7 = "online:")
  then Error (Printf.sprintf "unknown online controller %S (expected %s)" s grammar)
  else begin
    let body = String.sub low 7 (String.length low - 7) in
    let parse acc field =
      let* c = acc in
      match String.index_opt field '=' with
      | None ->
        Error (Printf.sprintf "online %S: malformed key=value %S" s field)
      | Some i ->
        let k = String.trim (String.sub field 0 i) in
        let v =
          String.trim (String.sub field (i + 1) (String.length field - i - 1))
        in
        let int_field set =
          match int_of_string_opt v with
          | Some n -> Ok (set n)
          | None ->
            Error
              (Printf.sprintf "online %S: malformed value %S for %s" s v k)
        in
        (match k with
        | "window" -> int_field (fun n -> { c with window = n })
        | "probe" -> int_field (fun n -> { c with probe = n })
        | "threshold" -> (
          match float_of_string_opt v with
          | Some r -> Ok { c with threshold = r }
          | None ->
            Error
              (Printf.sprintf "online %S: malformed value %S for %s" s v k))
        | "pin" -> (
          match mode_of_string v with
          | Some m -> Ok { c with pin = Some m }
          | None ->
            Error
              (Printf.sprintf
                 "online %S: pin must be baseline|dfp|sip|hybrid, not %S" s v))
        | _ ->
          Error
            (Printf.sprintf
               "online %S: unknown key %S (window, probe, threshold, pin)" s k))
    in
    let* c =
      List.fold_left parse (Ok default_config) (String.split_on_char ',' body)
    in
    match validate c with
    | c -> Ok c
    | exception Invalid_argument m ->
      (* "Online: window must be positive" -> "window must be positive" *)
      let m =
        let p = "Online: " in
        let pl = String.length p in
        if String.length m > pl && String.sub m 0 pl = p then
          String.sub m pl (String.length m - pl)
        else m
      in
      Error (Printf.sprintf "online %S: %s" s m)
  end

let config_name c =
  let d = default_config in
  let kv =
    (if c.window <> d.window then [ Printf.sprintf "window=%d" c.window ]
     else [])
    @ (if c.probe <> d.probe then [ Printf.sprintf "probe=%d" c.probe ]
       else [])
    @ (if c.threshold <> d.threshold then
         [ Printf.sprintf "threshold=%g" c.threshold ]
       else [])
    @
    match c.pin with
    | Some m -> [ Printf.sprintf "pin=%s" (mode_name m) ]
    | None -> []
  in
  if kv = [] then "online" else "online:" ^ String.concat "," kv

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type transition = {
  at : int;
  from_mode : mode;
  to_mode : mode;
  miss_share : float;
  entropy : float;
}

type label_change = { lc_at : int; lc_site : int; lc_instrument : bool }

type site_stat = {
  (* Phase-local classification counts: reset when the phase detector
     fires, so labels re-derive from post-shift behaviour only. *)
  mutable p_c1 : int;
  mutable p_c2 : int;
  mutable p_c3 : int;
  (* Lifetime totals: never reset; the label-conservation invariant sums
     them against [observed]. *)
  mutable l_c1 : int;
  mutable l_c2 : int;
  mutable l_c3 : int;
  (* Accesses in the current tumbling window (the entropy input). *)
  mutable w_count : int;
}

type t = {
  config : config;
  can_dfp : bool;
  can_sip : bool;
  predictor : Stream_predictor.t;
  residency : Page_lru.t;
  dfp : Dfp.t option;
  sites : (int, site_stat) Hashtbl.t;
  instrumented : (int, unit) Hashtbl.t;
  mutable mode : mode;
  mutable observed : int;
  (* Tumbling window of [config.window] scans, mirroring the breaker's
     clock: every label and mode decision happens at a scan timestamp. *)
  mutable w_scans : int;
  mutable w_total : int;
  mutable w_c1 : int;
  mutable w_c2 : int;
  mutable w_c3 : int;
  mutable prev_entropy : float option;
  mutable phase_shifts : int;
  mutable transitions_rev : transition list;
  mutable label_changes_rev : label_change list;
}

let create ?(config = default_config) ~residency_pages ?(can_dfp = true)
    ?(can_sip = true) () =
  let config = validate config in
  let dfp_config = Dfp.default_config in
  {
    config;
    can_dfp;
    can_sip;
    predictor =
      Stream_predictor.create
        ~stream_list_length:dfp_config.Dfp.stream_list_length
        ~load_length:dfp_config.Dfp.load_length ();
    residency = Page_lru.create ~capacity:(max 1 residency_pages);
    dfp = (if can_dfp then Some (Dfp.create dfp_config) else None);
    sites = Hashtbl.create 64;
    instrumented = Hashtbl.create 16;
    mode = Option.value config.pin ~default:Baseline;
    observed = 0;
    w_scans = 0;
    w_total = 0;
    w_c1 = 0;
    w_c2 = 0;
    w_c3 = 0;
    prev_entropy = None;
    phase_shifts = 0;
    transitions_rev = [];
    label_changes_rev = [];
  }

let mode t = t.mode
let config t = t.config
let observed t = t.observed
let phase_shifts t = t.phase_shifts
let transitions t = List.rev t.transitions_rev
let label_changes t = List.rev t.label_changes_rev
let instrumented_count t = Hashtbl.length t.instrumented

let dfp_active t =
  t.can_dfp && (match t.mode with Dfp | Hybrid -> true | Baseline | Sip -> false)

let sip_active t =
  t.can_sip && (match t.mode with Sip | Hybrid -> true | Baseline | Dfp -> false)

let site_predicate t site = sip_active t && Hashtbl.mem t.instrumented site

(* ------------------------------------------------------------------ *)
(* Classifier                                                          *)
(* ------------------------------------------------------------------ *)

let site_stat_for t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s =
      { p_c1 = 0; p_c2 = 0; p_c3 = 0; l_c1 = 0; l_c2 = 0; l_c3 = 0;
        w_count = 0 }
    in
    Hashtbl.add t.sites site s;
    s

(* Classify one access against the controller's own residency proxy and
   fault-history predictor (the same §4.4 pipeline the offline profiler
   runs over a train trace, fed the live stream instead).  The proxy is
   a pure function of the access sequence, so the classifier is
   bit-identical across solo, fused, fleet and service replays. *)
let observe t ~site ~vpage =
  t.observed <- t.observed + 1;
  t.w_total <- t.w_total + 1;
  let s = site_stat_for t site in
  s.w_count <- s.w_count + 1;
  match
    Sip_profiler.classify_one t.predictor t.residency
      ~load_length:(Stream_predictor.load_length t.predictor)
      vpage
  with
  | Sip_profiler.Class1 ->
    t.w_c1 <- t.w_c1 + 1;
    s.p_c1 <- s.p_c1 + 1;
    s.l_c1 <- s.l_c1 + 1
  | Sip_profiler.Class2 ->
    t.w_c2 <- t.w_c2 + 1;
    s.p_c2 <- s.p_c2 + 1;
    s.l_c2 <- s.l_c2 + 1
  | Sip_profiler.Class3 ->
    t.w_c3 <- t.w_c3 + 1;
    s.p_c3 <- s.p_c3 + 1;
    s.l_c3 <- s.l_c3 + 1

(* Shannon entropy (bits) of the window's per-site access distribution —
   the change-point signal: a workload moving between phases redistributes
   its accesses across instrumentation sites long before per-site ratios
   converge. *)
let window_entropy t =
  let total = float_of_int t.w_total in
  if t.w_total = 0 then 0.0
  else
    Hashtbl.fold
      (fun _ s acc ->
        if s.w_count = 0 then acc
        else
          let p = float_of_int s.w_count /. total in
          acc -. (p *. (Float.log p /. Float.log 2.0)))
      t.sites 0.0

(* Re-derive every site's instrument bit from its phase-local counts.
   Flips are logged (sorted by site for a stable rendering) with the scan
   timestamp — labels never change anywhere else. *)
let relabel t ~at =
  let flips = ref [] in
  Hashtbl.iter
    (fun site s ->
      let samples = s.p_c1 + s.p_c2 + s.p_c3 in
      let ratio =
        if samples = 0 then 0.0
        else float_of_int s.p_c3 /. float_of_int samples
      in
      let should =
        samples >= t.config.site_min && ratio >= t.config.threshold
      in
      let is = Hashtbl.mem t.instrumented site in
      if should <> is then flips := (site, should) :: !flips)
    t.sites;
  List.iter
    (fun (site, should) ->
      if should then Hashtbl.replace t.instrumented site ()
      else Hashtbl.remove t.instrumented site;
      t.label_changes_rev <-
        { lc_at = at; lc_site = site; lc_instrument = should }
        :: t.label_changes_rev)
    (List.sort compare !flips)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

(* The decision clock is the service scan, exactly like the breaker's:
   every [window] scans the controller closes its observation window,
   checks for a phase shift, re-derives labels, and picks the mode for
   the next window.  A window with fewer than [probe] classified
   accesses is too quiet to judge and slides by without changing
   anything. *)
let on_scan t enclave ~at =
  t.w_scans <- t.w_scans + 1;
  if t.w_scans >= t.config.window then begin
    if t.w_total >= t.config.probe then begin
      let entropy = window_entropy t in
      (match t.prev_entropy with
      | Some prev when Float.abs (entropy -. prev) > t.config.entropy_jump ->
        (* Change-point: the access mix shifted.  Forget the phase-local
           evidence so labels re-derive from post-shift behaviour. *)
        t.phase_shifts <- t.phase_shifts + 1;
        Hashtbl.iter
          (fun _ s ->
            s.p_c1 <- 0;
            s.p_c2 <- 0;
            s.p_c3 <- 0)
          t.sites
      | Some _ | None -> ());
      t.prev_entropy <- Some entropy;
      relabel t ~at;
      let total = float_of_int t.w_total in
      let miss_share = float_of_int (t.w_c2 + t.w_c3) /. total in
      let stream_share = float_of_int t.w_c2 /. total in
      let next =
        match t.config.pin with
        | Some m -> m
        | None -> (
          let dfp_on = stream_share >= t.config.dfp_share in
          let sip_on = Hashtbl.length t.instrumented > 0 in
          match (dfp_on, sip_on) with
          | true, true -> Hybrid
          | true, false -> Dfp
          | false, true -> Sip
          | false, false -> Baseline)
      in
      if next <> t.mode then begin
        (* Leaving a DFP-active mode sheds the queued speculation, like
           the §4.2 stop valve (but two-way: the next phase may turn the
           stream preloader back on). *)
        (match t.mode with
        | Dfp | Hybrid -> (
          match next with
          | Baseline | Sip ->
            if t.can_dfp then
              ignore (Enclave.abort_pending_preloads enclave ~now:at)
          | Dfp | Hybrid -> ())
        | Baseline | Sip -> ());
        t.transitions_rev <-
          { at; from_mode = t.mode; to_mode = next; miss_share; entropy }
          :: t.transitions_rev;
        t.mode <- next
      end
    end;
    t.w_scans <- 0;
    t.w_total <- 0;
    t.w_c1 <- 0;
    t.w_c2 <- 0;
    t.w_c3 <- 0;
    Hashtbl.iter (fun _ s -> s.w_count <- 0) t.sites
  end

let attach t enclave =
  (match t.dfp with
  | Some d ->
    Enclave.set_on_fault enclave (fun enc ctx ->
        if dfp_active t then Dfp.on_fault d enc ctx)
  | None -> ());
  Enclave.add_on_scan enclave (fun enc at -> on_scan t enc ~at)

(* ------------------------------------------------------------------ *)
(* Summary + legality                                                  *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_config : config;
  final_mode : mode;
  s_transitions : transition list;
  s_label_changes : label_change list;
  s_observed : int;
  s_instrumented : int;
  s_phase_shifts : int;
  per_site : (int * (int * int * int)) list;
}

let summary t =
  {
    s_config = t.config;
    final_mode = t.mode;
    s_transitions = transitions t;
    s_label_changes = label_changes t;
    s_observed = t.observed;
    s_instrumented = instrumented_count t;
    s_phase_shifts = t.phase_shifts;
    per_site =
      Hashtbl.fold
        (fun site s acc -> (site, (s.l_c1, s.l_c2, s.l_c3)) :: acc)
        t.sites []
      |> List.sort compare;
  }

(* Transition-log legality, shared by Validate.check_online, the runner
   diagnostics and the tests — one notion of a well-formed controller
   history, mirroring [Breaker.check_transitions]. *)
let check_transitions ?pin ts =
  if pin <> None && ts <> [] then
    Some "pinned controller must not transition"
  else
    let initial = Option.value pin ~default:Baseline in
    let rec go prev_mode prev_at = function
      | [] -> None
      | x :: rest ->
        if x.from_mode <> prev_mode then
          Some
            (Printf.sprintf "transition from %s but controller was %s"
               (mode_name x.from_mode) (mode_name prev_mode))
        else if x.from_mode = x.to_mode then
          Some
            (Printf.sprintf "self-edge %s -> %s" (mode_name x.from_mode)
               (mode_name x.to_mode))
        else if x.at < prev_at then
          Some (Printf.sprintf "timestamps regress (%d after %d)" x.at prev_at)
        else go x.to_mode x.at rest
    in
    go initial min_int ts
