(** DFP: dynamic page-fault-history-based preloading (§3.1, §4.1–§4.2).

    DFP lives entirely in the untrusted OS.  It observes only the fault
    event stream (page numbers), feeds it to the multiple-stream predictor
    and queues asynchronous preloads through the enclave's load channel.
    Its two safety devices are exactly the paper's:

    - the {e in-stream abort}: a fault that lands inside a stream's
      not-yet-loaded preload window drops the rest of that window;
    - the {e stop safety valve} (DFP-stop): the service-thread scan keeps
      an [AccPreloadCounter] of preloaded-and-then-used pages and a
      [PreloadCounter] of all completed preloads; when
      [acc + stop_margin < total/2] the preloading thread stops itself
      for good (§4.2's empirical formula, with the margin scaled to the
      simulated EPC size).

    DFP-Stop semantics, audited against §4.2 and locked by unit tests:

    - [PreloadCounter] counts {e completed} preloads — pages actually
      brought into EPC.  Issued requests that were aborted, taken over by
      a demand fault, or skipped at start time never count against
      accuracy (they cost nothing on the channel, so charging them would
      stop DFP too early on abort-heavy workloads).
    - Both counters are {e cumulative}: never reset, no sliding window.
      A long accurate phase therefore buys later inaccuracy headroom, and
      the stop, once fired, is one-way.
    - The comparison runs on every service-thread scan; [stop_margin]
      also absorbs the harvest lag of hits not yet observed by the scan. *)

type config = {
  stream_list_length : int;  (** Fig. 6 knob; paper default 30. *)
  load_length : int;  (** Fig. 7 knob (preload distance); paper default 4. *)
  detect_backward : bool;
  stop_enabled : bool;  (** DFP-stop (Fig. 8's rescue) on/off. *)
  stop_margin : int;
      (** The additive constant of the §4.2 stop formula.  The paper uses
          200,000 on a 24,576-page EPC; scale proportionally. *)
  per_thread : bool;
      (** One stream list per faulting thread, as Algorithm 1 prescribes
          ([find_stream_list(ID)]).  Disable to share a single list across
          threads (the ablation of E-abl-threads). *)
}

val default_config : config
(** Paper defaults: list length 30, load length 4, backward detection on,
    stop disabled (plain DFP). *)

val with_stop : config -> config
(** Same configuration with the §4.2 safety valve enabled. *)

val should_stop : config -> acc:int -> completed:int -> bool
(** The pure §4.2 stop decision:
    [stop_enabled && acc + stop_margin < completed / 2].  Exposed so the
    threshold semantics are locked by direct tests. *)

type t

val attach : Sgxsim.Enclave.t -> config -> t
(** Hook DFP onto an enclave.  From this point every fault drives the
    predictor and may queue preloads.  Only one scheme should own the
    enclave's hooks. *)

val create : config -> t
(** Bare DFP state with no hooks installed — for drivers that place the
    hooks themselves.  The online controller ({!Online}) uses this to
    chain {!on_fault} behind its mode gate instead of letting DFP own
    the enclave's fault hook unconditionally. *)

val on_fault : t -> Sgxsim.Enclave.t -> Sgxsim.Enclave.fault_ctx -> unit
(** Feed one fault to the predictor and issue/abort preloads — the body
    {!attach} installs as the enclave's fault hook.  Exposed for
    {!Online}, which wraps it so an adaptive controller can switch the
    stream preloader on and off per phase. *)

val stopped : t -> bool
(** Whether the safety valve has fired. *)

val counters : t -> int * int
(** [(AccPreloadCounter, PreloadCounter)]. *)

val predictor : t -> Stream_predictor.t
(** Thread 0's stream list (the only one for single-threaded runs). *)

val predictor_for : t -> int -> Stream_predictor.t
(** The stream list serving a given thread; with [per_thread = false]
    every thread maps to the shared list. *)

val thread_count : t -> int
(** Number of distinct stream lists created so far. *)
