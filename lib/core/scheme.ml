type next_line_config = { degree : int }
type stride_config = { degree : int }
type markov_config = { table_pages : int; degree : int }

type t =
  | Baseline
  | Native
  | Dfp of Dfp.config
  | Sip of Sip_instrumenter.plan
  | Hybrid of Dfp.config * Sip_instrumenter.plan
  | Next_line of next_line_config
  | Stride of stride_config
  | Markov of markov_config

let next_line ~degree =
  if degree < 1 then invalid_arg "Scheme.next_line: degree must be >= 1";
  Next_line { degree }

let stride ~degree =
  if degree < 1 then invalid_arg "Scheme.stride: degree must be >= 1";
  Stride { degree }

let markov ~table_pages ~degree =
  if table_pages < 1 then invalid_arg "Scheme.markov: table_pages must be >= 1";
  if degree < 1 then invalid_arg "Scheme.markov: degree must be >= 1";
  Markov { table_pages; degree }

let name = function
  | Baseline -> "baseline"
  | Native -> "native"
  | Dfp c -> if c.Dfp.stop_enabled then "DFP-stop" else "DFP"
  | Sip _ -> "SIP"
  | Hybrid (c, _) -> if c.Dfp.stop_enabled then "SIP+DFP-stop" else "SIP+DFP"
  | Next_line { degree } -> Printf.sprintf "next-line(%d)" degree
  | Stride { degree } -> Printf.sprintf "stride(%d)" degree
  | Markov { table_pages; degree } ->
    Printf.sprintf "markov(%d,%d)" table_pages degree

let dfp_default = Dfp Dfp.default_config
let dfp_stop = Dfp (Dfp.with_stop Dfp.default_config)

let uses_sip = function
  | Sip _ | Hybrid _ -> true
  | Baseline | Native | Dfp _ | Next_line _ | Stride _ | Markov _ -> false

let sip_plan = function
  | Sip plan | Hybrid (_, plan) -> Some plan
  | Baseline | Native | Dfp _ | Next_line _ | Stride _ | Markov _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let grammar =
  "baseline, native, dfp, dfp-stop, sip, sip+dfp, sip+dfp-stop (alias \
   hybrid), next-line(K), stride(K), markov(T,D); parameterised schemes \
   also accept the colon form next-line:K, stride:K, markov:T,D"

(* One string -> at most one scheme, total over everything [name] emits
   plus the colon spellings the CLI historically accepted.  Never
   raises: a bad spelling, an out-of-range parameter, or a SIP scheme
   without a plan supplier all come back as [Error]. *)
let of_string ?(dfp = Dfp.default_config) ?plan s =
  let ( let* ) = Result.bind in
  let with_plan make =
    match plan with
    | Some supply -> Ok (make (supply ()))
    | None -> Error (Printf.sprintf "scheme %S needs an instrumentation plan" s)
  in
  (* "next-line(4)" ([name]'s spelling) and "next-line:4" (the CLI's)
     share one parameter grammar. *)
  let params ~prefix ~arity low =
    let plen = String.length prefix in
    let body =
      if String.length low > plen + 1
         && String.sub low 0 (plen + 1) = prefix ^ ":"
      then Some (String.sub low (plen + 1) (String.length low - plen - 1))
      else if
        String.length low > plen + 2
        && String.sub low 0 (plen + 1) = prefix ^ "("
        && low.[String.length low - 1] = ')'
      then Some (String.sub low (plen + 1) (String.length low - plen - 2))
      else None
    in
    match body with
    | None -> None
    | Some body ->
      let fields = String.split_on_char ',' body in
      if List.length fields <> arity then
        Some
          (Error
             (Printf.sprintf "scheme %S: %s takes %d parameter(s)" s prefix
                arity))
      else
        Some
          (List.fold_left
             (fun acc field ->
               let* acc = acc in
               match int_of_string_opt (String.trim field) with
               | Some n when n >= 1 -> Ok (acc @ [ n ])
               | Some _ ->
                 Error
                   (Printf.sprintf "scheme %S: parameters must be >= 1" s)
               | None ->
                 Error
                   (Printf.sprintf "scheme %S: malformed parameter %S" s field))
             (Ok []) fields)
  in
  let low = String.lowercase_ascii s in
  match low with
  | "baseline" -> Ok Baseline
  | "native" -> Ok Native
  | "dfp" -> Ok (Dfp dfp)
  | "dfp-stop" -> Ok (Dfp (Dfp.with_stop dfp))
  | "sip" -> with_plan (fun p -> Sip p)
  | "sip+dfp" -> with_plan (fun p -> Hybrid (dfp, p))
  | "sip+dfp-stop" | "hybrid" -> with_plan (fun p -> Hybrid (Dfp.with_stop dfp, p))
  | _ -> (
    match
      ( params ~prefix:"next-line" ~arity:1 low,
        params ~prefix:"stride" ~arity:1 low,
        params ~prefix:"markov" ~arity:2 low )
    with
    | Some r, _, _ ->
      let* ps = r in
      (match ps with [ degree ] -> Ok (next_line ~degree) | _ -> assert false)
    | _, Some r, _ ->
      let* ps = r in
      (match ps with [ degree ] -> Ok (stride ~degree) | _ -> assert false)
    | _, _, Some r ->
      let* ps = r in
      (match ps with
      | [ table_pages; degree ] -> Ok (markov ~table_pages ~degree)
      | _ -> assert false)
    | None, None, None ->
      Error (Printf.sprintf "unknown scheme %S (expected %s)" s grammar))
