type t = {
  events : int;
  distinct_pages : int;
  sites : int;
  threads : int;
  total_compute : int;
  sequential_pairs : int;
  same_page_pairs : int;
  run_length_mean : float;
  hot_persistence : float;
}

(* Hot-page persistence: split the stream into equal windows, take each
   window's most-accessed pages, and measure how much of one window's
   hot set survives into the next.  1.0 = one stable hot set for the
   whole run (residency-friendly; an online classifier can trust old
   labels), ~0 = the hot set turns over every window (stream- or
   scan-like; labels go stale as fast as they are learned). *)
let hot_windows = 16
let hot_top = 64

let hot_persistence_of arena ~events =
  if events = 0 then 0.0
  else begin
    let window_len = max 1 ((events + hot_windows - 1) / hot_windows) in
    let counts = Array.init hot_windows (fun _ -> Hashtbl.create 64) in
    let idx = ref 0 in
    Trace_arena.iter arena ~f:(fun ~site:_ ~vpage ~compute:_ ~thread:_ ->
        let w = min (hot_windows - 1) (!idx / window_len) in
        incr idx;
        let h = counts.(w) in
        Hashtbl.replace h vpage
          (1 + Option.value (Hashtbl.find_opt h vpage) ~default:0));
    let top h =
      (* Total order (count desc, then page asc), so hash-fold order
         cannot leak into the result. *)
      let sorted =
        List.sort
          (fun (p1, n1) (p2, n2) ->
            if n1 <> n2 then compare n2 n1 else compare p1 p2)
          (Hashtbl.fold (fun page n acc -> (page, n) :: acc) h [])
      in
      List.filteri (fun i _ -> i < hot_top) sorted |> List.map fst
    in
    let tops = Array.map top counts in
    let overlaps = ref [] in
    Array.iteri
      (fun i t ->
        if i + 1 < hot_windows then
          match (t, tops.(i + 1)) with
          | [], _ | _, [] -> ()
          | t, t' ->
            let set = Hashtbl.create hot_top in
            List.iter (fun p -> Hashtbl.replace set p ()) t';
            let inter = List.length (List.filter (Hashtbl.mem set) t) in
            overlaps :=
              (float_of_int inter /. float_of_int (List.length t))
              :: !overlaps)
      tops;
    match !overlaps with
    | [] -> 0.0
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  end

let analyse trace =
  let arena = Trace_arena.compile trace in
  let pages = Hashtbl.create 1024 in
  let sites = Hashtbl.create 64 in
  let threads = Hashtbl.create 8 in
  let events = ref 0 in
  let total_compute = ref 0 in
  let sequential_pairs = ref 0 in
  let same_page_pairs = ref 0 in
  let prev = ref None in
  let runs = ref 0 in
  let run_pages = ref 0 in
  let current_run = ref 0 in
  let close_run () =
    if !current_run > 0 then begin
      incr runs;
      run_pages := !run_pages + !current_run;
      current_run := 0
    end
  in
  Trace_arena.iter arena ~f:(fun ~site ~vpage ~compute ~thread ->
      incr events;
      total_compute := !total_compute + compute;
      Hashtbl.replace pages vpage ();
      Hashtbl.replace sites site ();
      Hashtbl.replace threads thread ();
      (match !prev with
      | Some p when abs (vpage - p) = 1 ->
        incr sequential_pairs;
        incr current_run
      | Some p when vpage = p ->
        incr same_page_pairs;
        (* A repeat terminates the run in progress — it must not let
           [A, A, A+1] silently bridge two ±1-step runs — and the
           repeated page seeds a fresh one-page candidate run. *)
        close_run ();
        current_run := 1
      | Some _ ->
        close_run ();
        current_run := 1
      | None -> current_run := 1);
      prev := Some vpage);
  close_run ();
  {
    events = !events;
    distinct_pages = Hashtbl.length pages;
    sites = Hashtbl.length sites;
    threads = Hashtbl.length threads;
    total_compute = !total_compute;
    sequential_pairs = !sequential_pairs;
    same_page_pairs = !same_page_pairs;
    run_length_mean =
      (if !runs = 0 then 0.0 else float_of_int !run_pages /. float_of_int !runs);
    hot_persistence = hot_persistence_of arena ~events:!events;
  }

let miss_ratio trace ~epc_pages =
  if epc_pages <= 0 then invalid_arg "Trace_stats.miss_ratio: epc_pages must be positive";
  let arena = Trace_arena.compile trace in
  (* Reuse the core library's trick without depending on it: a lazy LRU
     set of page numbers. *)
  let stamps = Hashtbl.create (2 * epc_pages) in
  let queue = Queue.create () in
  let clock = ref 0 in
  let misses = ref 0 in
  let events = ref 0 in
  let evict () =
    let rec pop () =
      match Queue.take_opt queue with
      | None -> ()
      | Some (page, stamp) -> (
        match Hashtbl.find_opt stamps page with
        | Some fresh when fresh = stamp -> Hashtbl.remove stamps page
        | Some _ | None -> pop ())
    in
    pop ()
  in
  Trace_arena.iter arena ~f:(fun ~site:_ ~vpage ~compute:_ ~thread:_ ->
      incr events;
      let hit = Hashtbl.mem stamps vpage in
      if not hit then incr misses;
      incr clock;
      Hashtbl.replace stamps vpage !clock;
      Queue.add (vpage, !clock) queue;
      if not hit then
        while Hashtbl.length stamps > epc_pages do
          evict ()
        done);
  if !events = 0 then 0.0 else float_of_int !misses /. float_of_int !events

let miss_ratio_curve trace ~epc_pages =
  List.map (fun epc -> (epc, miss_ratio trace ~epc_pages:epc)) epc_pages

let pp fmt t =
  Format.fprintf fmt
    "@[<v>events=%d distinct-pages=%d sites=%d threads=%d compute=%d@ \
     sequential-pairs=%d same-page-pairs=%d mean-run=%.2f \
     hot-persistence=%.2f@]"
    t.events t.distinct_pages t.sites t.threads t.total_compute
    t.sequential_pairs t.same_page_pairs t.run_length_mean t.hot_persistence
