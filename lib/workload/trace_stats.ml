type t = {
  events : int;
  distinct_pages : int;
  sites : int;
  threads : int;
  total_compute : int;
  sequential_pairs : int;
  same_page_pairs : int;
  run_length_mean : float;
}

let analyse trace =
  let arena = Trace_arena.compile trace in
  let pages = Hashtbl.create 1024 in
  let sites = Hashtbl.create 64 in
  let threads = Hashtbl.create 8 in
  let events = ref 0 in
  let total_compute = ref 0 in
  let sequential_pairs = ref 0 in
  let same_page_pairs = ref 0 in
  let prev = ref None in
  let runs = ref 0 in
  let run_pages = ref 0 in
  let current_run = ref 0 in
  let close_run () =
    if !current_run > 0 then begin
      incr runs;
      run_pages := !run_pages + !current_run;
      current_run := 0
    end
  in
  Trace_arena.iter arena ~f:(fun ~site ~vpage ~compute ~thread ->
      incr events;
      total_compute := !total_compute + compute;
      Hashtbl.replace pages vpage ();
      Hashtbl.replace sites site ();
      Hashtbl.replace threads thread ();
      (match !prev with
      | Some p when abs (vpage - p) = 1 ->
        incr sequential_pairs;
        incr current_run
      | Some p when vpage = p ->
        incr same_page_pairs;
        (* A repeat terminates the run in progress — it must not let
           [A, A, A+1] silently bridge two ±1-step runs — and the
           repeated page seeds a fresh one-page candidate run. *)
        close_run ();
        current_run := 1
      | Some _ ->
        close_run ();
        current_run := 1
      | None -> current_run := 1);
      prev := Some vpage);
  close_run ();
  {
    events = !events;
    distinct_pages = Hashtbl.length pages;
    sites = Hashtbl.length sites;
    threads = Hashtbl.length threads;
    total_compute = !total_compute;
    sequential_pairs = !sequential_pairs;
    same_page_pairs = !same_page_pairs;
    run_length_mean =
      (if !runs = 0 then 0.0 else float_of_int !run_pages /. float_of_int !runs);
  }

let miss_ratio trace ~epc_pages =
  if epc_pages <= 0 then invalid_arg "Trace_stats.miss_ratio: epc_pages must be positive";
  let arena = Trace_arena.compile trace in
  (* Reuse the core library's trick without depending on it: a lazy LRU
     set of page numbers. *)
  let stamps = Hashtbl.create (2 * epc_pages) in
  let queue = Queue.create () in
  let clock = ref 0 in
  let misses = ref 0 in
  let events = ref 0 in
  let evict () =
    let rec pop () =
      match Queue.take_opt queue with
      | None -> ()
      | Some (page, stamp) -> (
        match Hashtbl.find_opt stamps page with
        | Some fresh when fresh = stamp -> Hashtbl.remove stamps page
        | Some _ | None -> pop ())
    in
    pop ()
  in
  Trace_arena.iter arena ~f:(fun ~site:_ ~vpage ~compute:_ ~thread:_ ->
      incr events;
      let hit = Hashtbl.mem stamps vpage in
      if not hit then incr misses;
      incr clock;
      Hashtbl.replace stamps vpage !clock;
      Queue.add (vpage, !clock) queue;
      if not hit then
        while Hashtbl.length stamps > epc_pages do
          evict ()
        done);
  if !events = 0 then 0.0 else float_of_int !misses /. float_of_int !events

let miss_ratio_curve trace ~epc_pages =
  List.map (fun epc -> (epc, miss_ratio trace ~epc_pages:epc)) epc_pages

let pp fmt t =
  Format.fprintf fmt
    "@[<v>events=%d distinct-pages=%d sites=%d threads=%d compute=%d@ \
     sequential-pairs=%d same-page-pairs=%d mean-run=%.2f@]"
    t.events t.distinct_pages t.sites t.threads t.total_compute
    t.sequential_pairs t.same_page_pairs t.run_length_mean
