let save_trace (trace : Trace.t) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# sgx-preload trace v1\n";
      Printf.fprintf oc "name %s\n" trace.name;
      Printf.fprintf oc "elrange %d\n" trace.elrange_pages;
      Printf.fprintf oc "footprint %d\n" trace.footprint_pages;
      List.iter
        (fun (site, label) -> Printf.fprintf oc "site %d %s\n" site label)
        trace.sites;
      Seq.iter
        (fun (a : Access.t) ->
          Printf.fprintf oc "a %d %d %d %d\n" a.site a.vpage a.compute a.thread)
        (Trace.events trace))

let fail path line msg =
  failwith (Printf.sprintf "Trace_io.load_trace: %s, line %d: %s" path line msg)

let load_trace ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let read () =
        incr lineno;
        input_line ic
      in
      (* [fail] itself raises [Failure], so parse errors must never flow
         through a [Failure _] catch-all — it would rewrite every message
         into the generic one.  Decode ints explicitly instead. *)
      let int_of field s =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
          fail path !lineno (Printf.sprintf "malformed %s field %S" field s)
      in
      let header = read () in
      if header <> "# sgx-preload trace v1" then
        fail path !lineno "unrecognised header";
      let name = ref "" and elrange = ref 0 and footprint = ref 0 in
      let sites = ref [] in
      let accesses = ref [] in
      (try
         while true do
           let line = read () in
           match String.split_on_char ' ' line with
           | "name" :: rest -> name := String.concat " " rest
           | [ "elrange"; n ] -> elrange := int_of "elrange" n
           | [ "footprint"; n ] -> footprint := int_of "footprint" n
           | "site" :: id :: label ->
             sites := (int_of "site" id, String.concat " " label) :: !sites
           | [ "a"; site; vpage; compute; thread ] ->
             accesses :=
               Access.make ~site:(int_of "site" site)
                 ~vpage:(int_of "vpage" vpage)
                 ~compute:(int_of "compute" compute)
                 ~thread:(int_of "thread" thread) ()
               :: !accesses
           | [ "" ] -> ()
           | _ -> fail path !lineno "unrecognised line"
         done
       with End_of_file -> ());
      if !elrange <= 0 then fail path !lineno "missing or invalid elrange";
      if !footprint <= 0 then fail path !lineno "missing or invalid footprint";
      if !footprint > !elrange then
        fail path !lineno
          (Printf.sprintf "footprint %d exceeds elrange %d" !footprint !elrange);
      Trace.make ~name:!name ~elrange_pages:!elrange ~footprint_pages:!footprint
        ~seed:0 ~sites:(List.rev !sites)
        (Pattern.of_events (List.rev !accesses)))
