(** Compiled trace arenas: the allocation-free replay path.

    {!compile} materialises a {!Trace.t}'s access stream once into
    packed [Bigarray] int columns (site, vpage, compute, thread) and
    hands back an arena whose {!iter}/{!fold} replay it as a tight index
    loop — no PRNG work, no per-access record allocation.  Arenas are
    memoised process-wide (keyed on the trace's identity: header fields,
    sites, and a fingerprint of the stream's first accesses) and, when
    [SGX_PRELOAD_ARENA_CACHE] names a directory, persisted through
    {!Trace_codec} so forked workers and repeated CLI invocations decode
    instead of regenerating.  Replays from an arena — memoised, decoded
    cold or decoded warm — are bit-identical to [Trace.events].

    Compiling also deposits the stream's length and distinct-page count
    on the trace ({!Trace.note_stats}), making [Trace.length] and
    [Trace.count_distinct_pages] O(1) afterwards. *)

type t

val compile : Trace.t -> t
(** Compile (or fetch the memoised / cached compilation of) a trace.
    A cache file that is truncated, corrupt, version-mismatched or for a
    different trace is treated as a miss and regenerated, never an
    error. *)

val trace : t -> Trace.t
val length : t -> int
val distinct_pages : t -> int

(** {1 Replay} *)

val iter :
  t -> f:(site:int -> vpage:int -> compute:int -> thread:int -> unit) -> unit
(** In-order replay; the callback receives unboxed ints, so the loop
    allocates nothing per access. *)

val iter_range :
  t ->
  lo:int ->
  hi:int ->
  f:(site:int -> vpage:int -> compute:int -> thread:int -> unit) ->
  unit
(** [iter] over indices [\[max lo 0, min hi (length t))] — the fused
    replay's chunking primitive (each scheme instance replays one
    cache-sized block of the columns before the next instance takes
    it). *)

val fold :
  t ->
  init:'a ->
  f:('a -> site:int -> vpage:int -> compute:int -> thread:int -> 'a) ->
  'a

val site : t -> int -> int
val vpage : t -> int -> int
val compute : t -> int -> int
val thread : t -> int -> int
(** Indexed column access (bounds-checked). *)

val get : t -> int -> Access.t
(** Indexed access as a record (allocates; for spot queries). *)

val to_seq : t -> Access.t Seq.t
(** The arena as a sequence — drop-in for [Trace.events] where a [Seq]
    is structurally required (e.g. fault-plan trace perturbation). *)

(** {1 Cache plumbing} *)

val cache_env_var : string
(** ["SGX_PRELOAD_ARENA_CACHE"]: directory for the on-disk cache (created
    on first store).  Unset or empty disables persistence; the in-process
    memo always applies. *)

val cache_dir : unit -> string option

val cache_path : Trace.t -> string option
(** Where this trace's compilation lives (or would live) on disk, when
    the cache is enabled.  Costs a fingerprint prefix replay. *)

val compilations : unit -> int
(** Number of full stream materialisations this process has performed —
    memo and disk-cache hits do not count.  Tests pin "one compilation
    per trace" on this. *)

val clear_memo : unit -> unit
(** Drop the in-process memo (tests use this to force the disk path). *)
