(** A named, replayable workload: a pattern plus its seed and address-space
    size.

    Replays are the backbone of the PGO flow — the profiling run and the
    measured run both see streams rebuilt from the trace's seed, so "run
    the same binary again" is exact.  Hot consumers replay through
    {!Trace_arena}, which compiles the stream once into packed buffers;
    {!events} remains as the thin compatibility view over the pattern. *)

type stats = { length : int; distinct_pages : int }
(** Whole-stream statistics, cached on the trace after the first full
    materialisation (by {!Trace_arena.compile} or by the first {!length}
    / {!count_distinct_pages} query). *)

type t = {
  name : string;
  elrange_pages : int;  (** Virtual address-space size (ELRANGE), pages. *)
  footprint_pages : int;  (** Distinct pages the workload touches. *)
  seed : int;
  pattern : Pattern.t;
  sites : (int * string) list;  (** Site id -> human label, for reports. *)
  mutable stats : stats option;
      (** Memoised {!stats}; not part of the trace's identity.  Filled
          through {!note_stats}, never written directly. *)
}

val make :
  name:string -> elrange_pages:int -> footprint_pages:int -> seed:int ->
  sites:(int * string) list -> Pattern.t -> t

val events : t -> Access.t Seq.t
(** A fresh single-consumption stream built from the stored seed.
    Successive calls yield identical streams.  Compatibility view: one
    [Access.t] record is allocated per step, and every call re-runs the
    PRNG pattern — replay loops should go through {!Trace_arena}. *)

val site_name : t -> int -> string
(** Label of a site (falls back to ["site<i>"]). *)

val note_stats : t -> length:int -> distinct_pages:int -> unit
(** Deposit whole-stream statistics computed elsewhere (the arena
    compiler calls this while packing).  First writer wins; the values
    are a pure function of the trace, so any writer agrees. *)

val length : t -> int
(** Number of events.  O(1) once the trace has been compiled or queried
    before; one full replay (then cached) otherwise. *)

val count_distinct_pages : t -> int
(** Distinct pages touched; same caching as {!length}. *)
