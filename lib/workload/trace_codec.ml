(* Binary on-disk format for compiled trace arenas.

   One file is one compiled trace: a fixed magic, a format version, the
   identity header (everything [Trace_arena] keys the cache on), the
   four packed access columns, and a trailing checksum over every byte
   before it.  Integers are zigzag + LEB128 so a 1M-event arena costs a
   few bytes per access instead of 32; the whole file round-trips
   bit-exactly, which is what lets a warm cache replace regeneration
   without perturbing a single simulated cycle. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type packed = {
  name : string;
  seed : int;
  elrange_pages : int;
  footprint_pages : int;
  fingerprint : int;
  distinct_pages : int;
  site : buf;
  vpage : buf;
  compute : buf;
  thread : buf;
}

let version = 1
let magic = "SGXARENA"

let length p = Bigarray.Array1.dim p.site

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

(* FNV-1a folded into OCaml's 63-bit int: integrity against truncation
   and bit rot, not an adversary.  [mix] is shared with [Trace_arena]'s
   stream fingerprint so both sides agree on one mixing function. *)
let hash_seed = 0x27d4eb2f165667c5
let hash_prime = 0x100000001b3

let mix h n = ((h lxor n) * hash_prime) land max_int

let hash_string_range s ~len =
  let h = ref hash_seed in
  for i = 0 to len - 1 do
    h := mix !h (Char.code (String.unsafe_get s i))
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Primitive encode/decode                                             *)
(* ------------------------------------------------------------------ *)

(* Zigzag maps the 63-bit int line onto non-negatives (small magnitudes
   stay small either sign), then LEB128 emits 7 bits per byte. *)
let put_int buf n =
  let rec go v =
    if v lsr 7 = 0 then Buffer.add_char buf (Char.unsafe_chr (v land 0x7f))
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go ((n lsl 1) lxor (n asr 62))

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type cursor = { data : string; mutable pos : int }

let get_byte c =
  if c.pos >= String.length c.data then corrupt "truncated file";
  let b = Char.code (String.unsafe_get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let get_int c =
  let rec go shift acc =
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then corrupt "varint too long"
    else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let get_string c =
  let n = get_int c in
  if n < 0 || c.pos + n > String.length c.data then
    corrupt "truncated string field";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Whole-arena encode/decode                                           *)
(* ------------------------------------------------------------------ *)

let checksum_bytes = 8

let encode p =
  let n = length p in
  let buf = Buffer.create (64 + (n * 6)) in
  Buffer.add_string buf magic;
  put_int buf version;
  put_string buf p.name;
  put_int buf p.seed;
  put_int buf p.elrange_pages;
  put_int buf p.footprint_pages;
  put_int buf p.fingerprint;
  put_int buf p.distinct_pages;
  put_int buf n;
  let put_column (a : buf) =
    for i = 0 to n - 1 do
      put_int buf (Bigarray.Array1.unsafe_get a i)
    done
  in
  put_column p.site;
  put_column p.vpage;
  put_column p.compute;
  put_column p.thread;
  let body = Buffer.contents buf in
  let h = hash_string_range body ~len:(String.length body) in
  let tail = Bytes.create checksum_bytes in
  for i = 0 to checksum_bytes - 1 do
    Bytes.unsafe_set tail i (Char.unsafe_chr ((h lsr (8 * i)) land 0xff))
  done;
  body ^ Bytes.unsafe_to_string tail

let decode data =
  try
    let len = String.length data in
    if len < String.length magic + checksum_bytes then corrupt "truncated file";
    if String.sub data 0 (String.length magic) <> magic then
      corrupt "bad magic (not an arena file)";
    let body_len = len - checksum_bytes in
    let stored =
      let h = ref 0 in
      for i = checksum_bytes - 1 downto 0 do
        h := (!h lsl 8) lor Char.code data.[body_len + i]
      done;
      !h
    in
    if hash_string_range data ~len:body_len <> stored then
      corrupt "checksum mismatch";
    let c = { data; pos = String.length magic } in
    let v = get_int c in
    if v <> version then corrupt "unsupported version %d (want %d)" v version;
    let name = get_string c in
    let seed = get_int c in
    let elrange_pages = get_int c in
    let footprint_pages = get_int c in
    let fingerprint = get_int c in
    let distinct_pages = get_int c in
    let n = get_int c in
    if n < 0 then corrupt "negative event count %d" n;
    let get_column () =
      let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set a i (get_int c)
      done;
      a
    in
    let site = get_column () in
    let vpage = get_column () in
    let compute = get_column () in
    let thread = get_column () in
    if c.pos <> body_len then corrupt "trailing garbage after payload";
    Ok
      {
        name; seed; elrange_pages; footprint_pages; fingerprint;
        distinct_pages; site; vpage; compute; thread;
      }
  with Corrupt msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let write_file ~path p =
  (* Temp-then-rename: concurrent forked workers may race to populate
     the same cache entry; each writes its own temp file and the atomic
     rename means readers only ever see complete, checksummed files. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "arena-" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (encode p);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated file"
  | data -> decode data
