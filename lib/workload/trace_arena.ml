(* Compile a trace once into packed parallel buffers and replay it from
   there.

   [Trace.events] re-runs the PRNG-driven pattern closure chain and
   allocates one record per access, every time anyone looks at the
   stream — and the experiment matrix looks at the same stream once per
   scheme cell.  The arena pays that cost once: the stream is
   materialised into four Bigarray int columns (site, vpage, compute,
   thread), replays become tight index loops with no per-access
   allocation, and compiled arenas are memoised process-wide and
   (optionally) persisted to a checksummed on-disk cache so forked
   workers and repeated CLI invocations decode instead of regenerating.

   Identity.  A pattern is a closure, so it has no hashable structure;
   the cache key is the trace's header (name, seed, elrange, footprint,
   sites) plus a fingerprint of the first [fingerprint_events] accesses
   the pattern actually generates.  Two traces that agree on all of that
   and diverge only deeper into the stream would collide — the shipped
   models never do (their streams are PRNG-seeded, so any difference
   shows immediately), and the cost of the fingerprint is a bounded
   prefix replay, not a full one. *)

module Codec = Trace_codec

type t = { trace : Trace.t; packed : Codec.packed }

let trace a = a.trace
let length a = Codec.length a.packed
let distinct_pages a = a.packed.Codec.distinct_pages

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let site a i = Bigarray.Array1.get a.packed.Codec.site i
let vpage a i = Bigarray.Array1.get a.packed.Codec.vpage i
let compute a i = Bigarray.Array1.get a.packed.Codec.compute i
let thread a i = Bigarray.Array1.get a.packed.Codec.thread i

let iter_range a ~lo ~hi ~f =
  let lo = max lo 0 and hi = min hi (length a) in
  let p = a.packed in
  let s = p.Codec.site and v = p.Codec.vpage in
  let c = p.Codec.compute and th = p.Codec.thread in
  for i = lo to hi - 1 do
    f
      ~site:(Bigarray.Array1.unsafe_get s i)
      ~vpage:(Bigarray.Array1.unsafe_get v i)
      ~compute:(Bigarray.Array1.unsafe_get c i)
      ~thread:(Bigarray.Array1.unsafe_get th i)
  done

let iter a ~f = iter_range a ~lo:0 ~hi:(length a) ~f

let fold a ~init ~f =
  let acc = ref init in
  iter a ~f:(fun ~site ~vpage ~compute ~thread ->
      acc := f !acc ~site ~vpage ~compute ~thread);
  !acc

let get a i : Access.t =
  { site = site a i; vpage = vpage a i; compute = compute a i; thread = thread a i }

let to_seq a =
  let n = length a in
  let rec from i () = if i >= n then Seq.Nil else Seq.Cons (get a i, from (i + 1)) in
  from 0

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let fingerprint_events = 128

let fingerprint trace =
  let h = ref Codec.(mix (mix 0 0x5eed) (String.length trace.Trace.name)) in
  let i = ref 0 in
  (try
     Seq.iter
       (fun (a : Access.t) ->
         if !i >= fingerprint_events then raise Exit;
         incr i;
         h := Codec.mix (Codec.mix (Codec.mix (Codec.mix !h a.site) a.vpage) a.compute) a.thread)
       (Trace.events trace)
   with Exit -> ());
  Codec.mix !h !i

let key trace fp =
  Printf.sprintf "v%d|%s|%d|%d|%d|%s|%d" Codec.version trace.Trace.name
    trace.Trace.seed trace.Trace.elrange_pages trace.Trace.footprint_pages
    (String.concat ";"
       (List.map
          (fun (id, label) -> Printf.sprintf "%d:%s" id label)
          trace.Trace.sites))
    fp

(* ------------------------------------------------------------------ *)
(* On-disk cache                                                       *)
(* ------------------------------------------------------------------ *)

let cache_env_var = "SGX_PRELOAD_ARENA_CACHE"

let cache_dir () =
  match Sys.getenv_opt cache_env_var with
  | None | Some "" -> None
  | Some dir -> Some dir

let cache_file dir k = Filename.concat dir (Digest.to_hex (Digest.string k) ^ ".arena")

let matches trace fp (p : Codec.packed) =
  (* The filename already digests the key, so this only guards against a
     digest collision or a hand-copied file: never replay someone else's
     stream. *)
  p.Codec.name = trace.Trace.name
  && p.Codec.seed = trace.Trace.seed
  && p.Codec.elrange_pages = trace.Trace.elrange_pages
  && p.Codec.footprint_pages = trace.Trace.footprint_pages
  && p.Codec.fingerprint = fp

let load_cached trace fp k =
  match cache_dir () with
  | None -> None
  | Some dir -> (
    match Codec.read_file ~path:(cache_file dir k) with
    | Ok p when matches trace fp p -> Some p
    | Ok _ | Error _ ->
      (* Missing, truncated, corrupt, stale version, wrong identity:
         every failure mode is a cache miss, never a run failure. *)
      None)

let store_cached k p =
  match cache_dir () with
  | None -> ()
  | Some dir -> (
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Codec.write_file ~path:(cache_file dir k) p
    with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compilations_counter = ref 0
let compilations () = !compilations_counter

let build trace fp =
  incr compilations_counter;
  let cap = ref 4096 in
  let n = ref 0 in
  let site = ref (Array.make !cap 0) in
  let vpage = ref (Array.make !cap 0) in
  let compute = ref (Array.make !cap 0) in
  let thread = ref (Array.make !cap 0) in
  let grow () =
    let cap' = 2 * !cap in
    let extend a = Array.append !a (Array.make !cap 0) in
    site := extend site;
    vpage := extend vpage;
    compute := extend compute;
    thread := extend thread;
    cap := cap'
  in
  let distinct = Hashtbl.create 1024 in
  Seq.iter
    (fun (a : Access.t) ->
      if !n = !cap then grow ();
      let i = !n in
      !site.(i) <- a.site;
      !vpage.(i) <- a.vpage;
      !compute.(i) <- a.compute;
      !thread.(i) <- a.thread;
      Hashtbl.replace distinct a.vpage ();
      n := i + 1)
    (Trace.events trace);
  let column src =
    let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !n in
    for i = 0 to !n - 1 do
      Bigarray.Array1.unsafe_set b i (Array.unsafe_get src i)
    done;
    b
  in
  {
    Codec.name = trace.Trace.name;
    seed = trace.Trace.seed;
    elrange_pages = trace.Trace.elrange_pages;
    footprint_pages = trace.Trace.footprint_pages;
    fingerprint = fp;
    distinct_pages = Hashtbl.length distinct;
    site = column !site;
    vpage = column !vpage;
    compute = column !compute;
    thread = column !thread;
  }

let memo : (string, t) Hashtbl.t = Hashtbl.create 16
let clear_memo () = Hashtbl.reset memo

let compile trace =
  let fp = fingerprint trace in
  let k = key trace fp in
  let a =
    match Hashtbl.find_opt memo k with
    | Some a -> a
    | None ->
      let packed =
        match load_cached trace fp k with
        | Some p -> p
        | None ->
          let p = build trace fp in
          store_cached k p;
          p
      in
      let a = { trace; packed } in
      Hashtbl.replace memo k a;
      a
  in
  Trace.note_stats trace ~length:(length a) ~distinct_pages:(distinct_pages a);
  a

let cache_path trace =
  match cache_dir () with
  | None -> None
  | Some dir ->
    let fp = fingerprint trace in
    Some (cache_file dir (key trace fp))
