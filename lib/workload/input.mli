(** Input-set selection for the PGO flow.

    The paper profiles with SPEC's {e train} inputs (or one sample image)
    and measures with {e ref} inputs (other images), §5.2/§5.3.  An input
    deterministically perturbs a workload model's seed and size so the
    profile run and the measured run differ the way two input sets do,
    while keeping the benchmark's characteristic pattern. *)

type t =
  | Train  (** The profiling input. *)
  | Ref of int  (** A measurement input; the index selects among several
                    (e.g. several images of the FiveK set). *)

val seed_of : t -> base:int -> int
(** Derive the PRNG seed for this input from the benchmark's base seed. *)

val size_factor : t -> float
(** Relative workload size: train inputs are smaller (paper's train sets
    are); ref inputs are full-size with slight per-input variation. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string}: ["train"] or ["ref<N>"] with [N] a
    non-negative decimal.  ["ref-1"] and other malformed indices are
    rejected with a message (the CLI used to parse a negative index and
    then derive a seed from it). *)

val equal : t -> t -> bool
