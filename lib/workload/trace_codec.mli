(** Versioned, checksummed binary codec for compiled trace arenas.

    [Trace_arena] compiles a {!Trace.t} into four packed integer columns
    (one entry per access); this module is the byte-level format those
    columns persist in.  A file is

    {v magic "SGXARENA" | version | identity header | columns | checksum v}

    with every integer zigzag + LEB128 encoded and the trailing 8 bytes
    an FNV-style checksum of everything before them.  Decoding verifies
    the magic, the version and the checksum before trusting a single
    field, so a truncated, corrupted or stale-format cache file is
    reported as an [Error] — callers fall back to regeneration, never to
    garbage replay. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type packed = {
  name : string;
  seed : int;
  elrange_pages : int;
  footprint_pages : int;
  fingerprint : int;
      (** Stream-prefix hash computed by [Trace_arena]; part of the
          identity the cache is keyed on. *)
  distinct_pages : int;  (** Cached [Trace.count_distinct_pages]. *)
  site : buf;
  vpage : buf;
  compute : buf;
  thread : buf;  (** Parallel columns, one entry per access. *)
}

val version : int
(** Bumped whenever the layout changes; a file with any other version is
    rejected on read. *)

val length : packed -> int
(** Number of accesses (the common dimension of the four columns). *)

val mix : int -> int -> int
(** One FNV-1a step folded into OCaml's 63-bit int.  Exposed so
    [Trace_arena]'s stream fingerprint and the file checksum share one
    mixing function. *)

val encode : packed -> string

val decode : string -> (packed, string) result
(** Inverse of {!encode}; [Error] names what was wrong (bad magic,
    unsupported version, checksum mismatch, truncation, trailing
    garbage). *)

val write_file : path:string -> packed -> unit
(** Write atomically (temp file + rename), so concurrent writers of the
    same cache entry never expose a half-written file. *)

val read_file : path:string -> (packed, string) result
