type t = Train | Ref of int

let seed_of t ~base =
  match t with
  | Train -> (base * 31) + 17
  | Ref i -> (base * 131) + (1009 * (i + 1))

let size_factor = function
  | Train -> 0.45
  | Ref i -> 1.0 +. (0.06 *. float_of_int (i mod 3))

let to_string = function
  | Train -> "train"
  | Ref i -> Printf.sprintf "ref%d" i

let of_string s =
  let err = Error (Printf.sprintf "%S is not an input set (expected train or ref<N>)" s) in
  if s = "train" then Ok Train
  else if String.length s > 3 && String.sub s 0 3 = "ref" then
    match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
    (* [int_of_string] accepts "-1", "0x2", "1_0"...; an input index is a
       plain non-negative decimal, so insist every char is a digit. *)
    | Some i
      when i >= 0
           && String.for_all
                (fun ch -> ch >= '0' && ch <= '9')
                (String.sub s 3 (String.length s - 3)) ->
      Ok (Ref i)
    | Some _ | None -> err
  else err

let equal a b =
  match (a, b) with
  | Train, Train -> true
  | Ref i, Ref j -> i = j
  | Train, Ref _ | Ref _, Train -> false
