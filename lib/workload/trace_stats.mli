(** Offline workload characterisation.

    Computes the quantities Table 1 of the paper classifies benchmarks by
    (working-set size, regularity) plus the standard locality curves used
    to sanity-check the synthetic models: an LRU miss-ratio curve (what
    fraction of accesses would fault at a given EPC size) and the
    distribution of sequential run lengths in the page stream. *)

type t = {
  events : int;
  distinct_pages : int;
  sites : int;
  threads : int;
  total_compute : int;
  sequential_pairs : int;
      (** Adjacent consecutive accesses ([|Δpage| = 1]), the raw material
          of stream detection. *)
  same_page_pairs : int;  (** Consecutive accesses to the same page. *)
  run_length_mean : float;
      (** Mean length (in pages) of maximal ±1-step runs.  A same-page
          repeat terminates the run in progress (it neither extends it
          nor bridges it across the repeat: [A, A, A+1] is two runs) and
          the repeated page starts a fresh candidate run. *)
  hot_persistence : float;
      (** How much of one window's hot set survives into the next: the
          stream is split into 16 equal windows, each window's top-64
          pages by access count are its hot set (ties to the lower page
          number), and this is the mean of
          [|top(w) ∩ top(w+1)| / |top(w)|] over consecutive non-empty
          windows (0.0 with fewer than two non-empty windows).  1.0 = a
          stable hot set the whole run; near 0 = the hot set turns over
          every window, so learned page labels go stale as fast as an
          online classifier can earn them. *)
}

val analyse : Trace.t -> t
(** One replay of the trace (O(events)). *)

val miss_ratio : Trace.t -> epc_pages:int -> float
(** Fraction of accesses that miss an LRU set of [epc_pages] pages — a
    fast approximation of the baseline fault rate at that EPC size. *)

val miss_ratio_curve : Trace.t -> epc_pages:int list -> (int * float) list
(** {!miss_ratio} at several sizes, one replay per size. *)

val pp : Format.formatter -> t -> unit
