module Prng = Repro_util.Prng

type stats = { length : int; distinct_pages : int }

type t = {
  name : string;
  elrange_pages : int;
  footprint_pages : int;
  seed : int;
  pattern : Pattern.t;
  sites : (int * string) list;
  mutable stats : stats option;
}

let make ~name ~elrange_pages ~footprint_pages ~seed ~sites pattern =
  if elrange_pages <= 0 then invalid_arg "Trace.make: elrange must be positive";
  { name; elrange_pages; footprint_pages; seed; pattern; sites; stats = None }

let events t = Pattern.run t.pattern (Prng.create t.seed)

let site_name t site =
  match List.assoc_opt site t.sites with
  | Some name -> name
  | None -> Printf.sprintf "site%d" site

let note_stats t ~length ~distinct_pages =
  if t.stats = None then t.stats <- Some { length; distinct_pages }

(* Both statistics come out of one replay, and [Trace_arena.compile]
   deposits them as a side effect of packing, so a trace that has been
   compiled (or measured once) never replays again for either query. *)
let computed_stats t =
  match t.stats with
  | Some s -> s
  | None ->
    let seen = Hashtbl.create 1024 in
    let n = ref 0 in
    Seq.iter
      (fun (a : Access.t) ->
        incr n;
        Hashtbl.replace seen a.vpage ())
      (events t);
    let s = { length = !n; distinct_pages = Hashtbl.length seen } in
    t.stats <- Some s;
    s

let length t = (computed_stats t).length

let count_distinct_pages t = (computed_stats t).distinct_pages
