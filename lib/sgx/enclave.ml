module Bitset = Repro_util.Bitset

type fault_resolution = Already_present | Waited_in_flight | Demand_load

type fault_ctx = {
  fault_vpage : int;
  fault_thread : int;
  raised_at : int;
  handled_at : int;
  resolution : fault_resolution;
}

type t = {
  costs : Cost_model.t;
  pt : Page_table.t;
  epc : Clock_evictor.t;
  owner : int;
      (* This enclave's frame tag in [epc].  0 unless a fleet assigned
         one; meaningful only when the evictor is shared. *)
  channel : Load_channel.t;
  metrics : Metrics.t;
  bitmap : Bitset.t;
  mutable log : Event.log;
  mutable next_scan : int;
  mutable peers : t array option;
      (* Co-tenants sharing [epc], indexed by owner tag; [None] outside a
         fleet.  Set once by {!link_fleet}; lets the CLOCK sweep consult
         the right page table for each frame it passes. *)
  mutable protected_vpage : int;
      (* Page being returned to the faulting thread: the handler pins it
         (mirrored in the page-table pinned bit) so an eviction sweep —
         this enclave's or a co-tenant's — cannot snatch it back before
         the application's access completes.  -1 when no fault is in
         progress. *)
  mutable on_evict : aggressor:int -> victim:int -> vpage:int -> unit;
      (* Observation hook for every eviction this enclave's sweeps
         perform, with the owner tags of both sides — the fleet's
         interference table.  No-op by default. *)
  mutable on_fault : t -> fault_ctx -> unit;
  mutable on_preload_complete : t -> int -> unit;
  mutable on_preload_hit : t -> int -> unit;
  mutable on_scan : t -> int -> unit;
  mutable preload_gate : now:int -> int -> bool;
      (* Scheme-level circuit breaker: consulted before a speculative
         preload request is queued.  [false] rejects the request (counted
         in [preloads_rejected_breaker]).  Always [true] by default.
         Gates only the speculative path ([request_preload]); SIP's
         synchronous notification loads never pass through it. *)
  mutable load_perturb : at:int -> int -> int;
      (* Fault-injection point: maps a load's clean duration to its
         faulted duration (contended paging channel).  Identity by
         default; must never shorten a load — [start_load] clamps. *)
  mutable epc_budget : at:int -> int -> int;
      (* Fault-injection point: frames available to this enclave at a
         given cycle once a co-tenant has taken its slice.  Defaults to
         the full capacity. *)
}

let create ?(costs = Cost_model.paper) ?(log = Event.null_log) ?epc
    ?(owner = 0) ~epc_pages ~elrange_pages () =
  let epc =
    (* A fleet passes the shared pool in; solo enclaves get a private one
       of [epc_pages] frames. *)
    match epc with
    | Some e -> e
    | None -> Clock_evictor.create ~capacity:epc_pages
  in
  {
    costs;
    pt = Page_table.create ~pages:elrange_pages;
    epc;
    owner;
    channel = Load_channel.create ~pages:elrange_pages;
    metrics = Metrics.create ();
    bitmap = Bitset.create elrange_pages;
    log;
    next_scan = costs.Cost_model.clock_scan_period;
    peers = None;
    protected_vpage = -1;
    on_evict = (fun ~aggressor:_ ~victim:_ ~vpage:_ -> ());
    on_fault = (fun _ _ -> ());
    on_preload_complete = (fun _ _ -> ());
    on_preload_hit = (fun _ _ -> ());
    on_scan = (fun _ _ -> ());
    preload_gate = (fun ~now _ -> ignore now; true);
    load_perturb = (fun ~at d -> ignore at; d);
    epc_budget = (fun ~at c -> ignore at; c);
  }

let set_on_fault t f = t.on_fault <- f

let add_on_fault t f =
  let prev = t.on_fault in
  t.on_fault <-
    (fun enc ctx ->
      prev enc ctx;
      f enc ctx)
let set_on_preload_complete t f = t.on_preload_complete <- f
let set_on_preload_hit t f = t.on_preload_hit <- f
let set_on_scan t f = t.on_scan <- f

let add_on_preload_complete t f =
  let prev = t.on_preload_complete in
  t.on_preload_complete <-
    (fun enc v ->
      prev enc v;
      f enc v)

let add_on_preload_hit t f =
  let prev = t.on_preload_hit in
  t.on_preload_hit <-
    (fun enc v ->
      prev enc v;
      f enc v)

let add_on_scan t f =
  let prev = t.on_scan in
  t.on_scan <-
    (fun enc at ->
      prev enc at;
      f enc at)

let set_preload_gate t f = t.preload_gate <- f
let set_load_perturb t f = t.load_perturb <- f
let set_epc_budget t f = t.epc_budget <- f
let set_on_evict t f = t.on_evict <- f
let owner t = t.owner

let link_fleet peers =
  Array.iteri
    (fun i e ->
      if e.owner <> i then
        invalid_arg "Enclave.link_fleet: owner tag must equal array index";
      e.peers <- Some peers)
    peers

let record t e = Event.record t.log e

(* Credit a preloaded page's first observed use to the scheme (the paper's
   AccPreloadCounter).  Called wherever the driver inspects access bits:
   the service scan, the CLOCK sweep, and eviction. *)
let harvest t vpage =
  if
    Page_table.preloaded t.pt vpage
    && (not (Page_table.counted t.pt vpage))
    && Page_table.accessed t.pt vpage
  then begin
    Page_table.set_counted t.pt vpage;
    t.metrics.preload_hits <- t.metrics.preload_hits + 1;
    t.on_preload_hit t vpage
  end

(* Resolve a frame's owner tag to its enclave.  Outside a fleet only our
   own tag can appear in the (private) pool. *)
let enc_of t o =
  if o = t.owner then t
  else
    match t.peers with
    | Some peers when o >= 0 && o < Array.length peers -> peers.(o)
    | Some _ | None ->
      invalid_arg "Enclave: EPC frame owned by an unlinked tenant"

(* Free one EPC frame via the CLOCK sweep.  The victim's state transition
   is applied at [at]; the EWB write-back time is charged to the load that
   needed the frame (part of the channel busy span).  In a shared pool the
   victim may belong to a co-tenant: its page table, bitmap, metrics and
   event log take the eviction, while the cycles stay charged to this
   enclave (the aggressor) — exactly the cross-tenant interference the
   fleet's table reports via [on_evict]. *)
let evict_one t ~at =
  let pinned ~owner ~vpage = Page_table.pinned (enc_of t owner).pt vpage in
  let accessed ~owner ~vpage = Page_table.accessed (enc_of t owner).pt vpage in
  let clear ~owner ~vpage =
    let e = enc_of t owner in
    harvest e vpage;
    Page_table.clear_accessed e.pt vpage
  in
  let vowner, victim =
    Clock_evictor.choose_victim_owned t.epc ~pinned ~accessed ~clear
  in
  let ve = enc_of t vowner in
  if Page_table.preloaded ve.pt victim && not (Page_table.counted ve.pt victim)
  then
    ve.metrics.preload_evicted_unused <- ve.metrics.preload_evicted_unused + 1;
  Clock_evictor.remove t.epc ~slot:(Page_table.slot ve.pt victim);
  Page_table.mark_evicted ve.pt victim;
  Bitset.clear ve.bitmap victim;
  ve.metrics.evictions <- ve.metrics.evictions + 1;
  record ve (Event.Evict { at; vpage = victim });
  t.on_evict ~aggressor:t.owner ~victim:vowner ~vpage:victim

(* The CLOCK sweep passes pinned pages over, so they can never be
   victims — and with only pinned pages resident there is no victim at
   all.  Pins last for the tail of one access call, so at any instant at
   most one page is pinned per tenant (and in an interleaved fleet
   replay, at most one globally). *)
let evictable t =
  let pinned_resident e =
    e.protected_vpage >= 0 && Page_table.present e.pt e.protected_vpage
  in
  let pinned =
    match t.peers with
    | None -> if pinned_resident t then 1 else 0
    | Some peers ->
      (* Only tenants sharing this pool can pin frames in it. *)
      Array.fold_left
        (fun n e -> if e.epc == t.epc && pinned_resident e then n + 1 else n)
        0 peers
  in
  Clock_evictor.used t.epc > pinned

(* Frames this enclave may occupy at [at]: full capacity unless a fault
   plan installed a co-tenant.  Never below one frame. *)
let budget_at t ~at =
  let cap = Clock_evictor.capacity t.epc in
  max 1 (min cap (t.epc_budget ~at cap))

(* Evict until residency fits the (possibly co-tenant-shrunk) frame
   budget.  Like the scan's reclaim — and unlike the evictions a load
   triggers in [start_load] — the write-backs ride the co-tenant's own
   channel, so no cycles are charged here.  Called from [run_scan] and
   from every [sync]: a budget shrink used to go unreconciled until the
   next fault or scan, leaving resident > budget for whole access bursts. *)
let reconcile_budget t ~at =
  let budget = budget_at t ~at in
  while Clock_evictor.used t.epc > budget && evictable t do
    evict_one t ~at
  done

(* Begin a load on the (idle) channel at [at]; evicts first if the EPC —
   or the co-tenant-shrunk budget — leaves no free frame for the incoming
   page, extending the busy span by one write-back cost per eviction. *)
let start_load t ~at ~vpage ~kind =
  let budget = budget_at t ~at in
  let evictions = ref 0 in
  while
    (Clock_evictor.is_full t.epc || Clock_evictor.used t.epc >= budget)
    && evictable t
  do
    evict_one t ~at;
    incr evictions
  done;
  let base =
    (!evictions * t.costs.Cost_model.t_evict) + t.costs.Cost_model.t_load
  in
  (* Clamped: a contended channel can only slow a load down. *)
  let duration = max base (t.load_perturb ~at base) in
  record t (Event.Load_start { at; vpage; kind });
  Load_channel.begin_load t.channel ~vpage ~kind ~now:at ~duration

let complete_load t (l : Load_channel.inflight) =
  record t (Event.Load_done { at = l.finishes; vpage = l.vpage; kind = l.kind });
  if not (Page_table.present t.pt l.vpage) then begin
    let prov =
      match l.kind with
      | Demand | Preload_sip -> Page_table.Demand
      | Preload_dfp -> Page_table.Preloaded
    in
    (* In a shared pool a co-tenant may have claimed the frame this load
       was started against; make room again at completion time.  Dead
       code for a private pool: the exclusive channel means nothing can
       fill the EPC between [start_load] and here. *)
    while Clock_evictor.is_full t.epc && evictable t do
      evict_one t ~at:l.finishes
    done;
    let slot = Clock_evictor.insert ~owner:t.owner t.epc l.vpage in
    Page_table.mark_loaded t.pt l.vpage ~prov ~slot;
    Bitset.set t.bitmap l.vpage;
    match l.kind with
    | Preload_dfp ->
      t.metrics.preloads_completed <- t.metrics.preloads_completed + 1;
      t.on_preload_complete t l.vpage
    | Demand | Preload_sip -> ()
  end

let run_scan t ~at =
  t.metrics.scans <- t.metrics.scans + 1;
  record t (Event.Scan { at });
  (* The harvest-and-clear sweep only does work on frames whose access
     bit is set (harvesting or clearing a clear bit is a no-op), so the
     scan drains the page table's touched list instead of walking every
     resident frame: O(pages touched since the last scan) rather than
     O(EPC capacity).  The hit counters it feeds are order-independent,
     so visiting in touch order instead of frame order changes nothing
     observable. *)
  Page_table.drain_touched t.pt ~f:(fun v -> harvest t v);
  (* A co-tenant that grew its slice reclaims frames here: its own
     channel does the write-backs, so — unlike the evictions a load
     triggers in [start_load] — no cycles are charged to this enclave;
     it just finds itself with fewer resident pages. *)
  reconcile_budget t ~at;
  t.next_scan <- at + t.costs.Cost_model.clock_scan_period;
  t.on_scan t at

(* Replay background events (load completions, scans, preload starts) in
   timestamp order up to [now].  [preload_bound] freezes the preload
   queue: no {e new} speculative load may begin at or after that time —
   used while a fault handler owns the channel, since demand has
   priority. *)
(* Allocation-free event selection: candidate times are plain ints with
   [max_int] as "absent", and the <=/< comparisons below reproduce the
   tie-break priority of the option-list fold this replaces — on equal
   timestamps a completion beats a scan beats a preload start.  This
   runs on every [sync], i.e. on every simulated access, so it must not
   box. *)
let rec pump t ~now ~preload_bound =
  let completion_at =
    match Load_channel.in_flight t.channel with
    | Some l when l.finishes <= now -> l.finishes
    | Some _ | None -> max_int
  in
  let scan_at = if t.next_scan <= now then t.next_scan else max_int in
  let start_vpage =
    match Load_channel.in_flight t.channel with
    | None -> Load_channel.next_queued_vpage t.channel
    | Some _ -> -1
  in
  let start_at =
    if start_vpage < 0 then max_int
    else begin
      let st =
        max (Load_channel.free_at t.channel)
          (Load_channel.next_queued_at t.channel)
      in
      if st <= now && st < preload_bound then st else max_int
    end
  in
  if completion_at <= scan_at && completion_at <= start_at
     && completion_at < max_int
  then begin
    (match Load_channel.take_completed t.channel ~now:completion_at with
    | Some l -> complete_load t l
    | None -> assert false);
    pump t ~now ~preload_bound
  end
  else if scan_at <= start_at && scan_at < max_int then begin
    run_scan t ~at:scan_at;
    pump t ~now ~preload_bound
  end
  else if start_at < max_int then begin
    ignore (Load_channel.pop_queued t.channel);
    (* The page may have been demand-loaded while it waited in the queue;
       the kernel thread re-checks presence cheaply and skips it.  An EPC
       full of nothing but pinned pages has no victim, so the preload is
       dropped rather than started.  (Outside a fleet that means a
       single-frame EPC whose only frame is pinned.) *)
    let no_victim = Clock_evictor.is_full t.epc && not (evictable t) in
    if (not (Page_table.present t.pt start_vpage)) && not no_victim then
      ignore (start_load t ~at:start_at ~vpage:start_vpage ~kind:Load_channel.Preload_dfp)
    else t.metrics.preloads_skipped <- t.metrics.preloads_skipped + 1;
    pump t ~now ~preload_bound
  end

let sync t ~now =
  pump t ~now ~preload_bound:max_int;
  (* Satellite fix: a budget shrink between background events must be
     reconciled now, not at the next fault — otherwise resident > budget
     holds for every fault-free access until a scan happens by. *)
  reconcile_budget t ~at:now

(* Complete the access itself once the page is resident. *)
let finish_access t ~now vpage =
  Page_table.touch t.pt vpage;
  t.metrics.cyc_access <- t.metrics.cyc_access + t.costs.Cost_model.t_access;
  now + t.costs.Cost_model.t_access

(* The full demand-fault path: AEX, handler (three possible resolutions),
   ERESUME. *)
let fault_path t ~now ~thread vpage =
  let c = t.costs in
  record t (Event.Fault { at = now; vpage });
  let t_handler_start = now + c.Cost_model.t_aex in
  t.metrics.cyc_aex <- t.metrics.cyc_aex + c.Cost_model.t_aex;
  (* The channel keeps working during the AEX transition, but the fault
     freezes the speculative queue: the handler owns the channel next. *)
  pump t ~now:t_handler_start ~preload_bound:now;
  record t (Event.Aex_done { at = t_handler_start; vpage });
  let handled_at, resolution =
    if Page_table.present t.pt vpage then begin
      (* A preload for this very page finished during the AEX window: the
         handler just fixes the PTE and returns. *)
      t.metrics.faults_already_present <- t.metrics.faults_already_present + 1;
      t.metrics.cyc_os_handler <-
        t.metrics.cyc_os_handler + c.Cost_model.t_fault_native;
      (t_handler_start + c.Cost_model.t_fault_native, Already_present)
    end
    else
      match Load_channel.in_flight t.channel with
      | Some l when l.vpage = vpage ->
        (* The faulted page is mid-preload; the load is non-preemptible,
           so the handler waits out the remainder. *)
        t.metrics.faults_in_flight <- t.metrics.faults_in_flight + 1;
        let wait = max 0 (l.finishes - t_handler_start) in
        t.metrics.cyc_load_wait <- t.metrics.cyc_load_wait + wait;
        pump t ~now:l.finishes ~preload_bound:now;
        (l.finishes, Waited_in_flight)
      | Some _ | None ->
        t.metrics.faults <- t.metrics.faults + 1;
        (* Drain whatever other load occupies the channel... *)
        let free_at = Load_channel.busy_until t.channel ~now:t_handler_start in
        t.metrics.cyc_load_wait <-
          t.metrics.cyc_load_wait + (free_at - t_handler_start);
        pump t ~now:free_at ~preload_bound:now;
        (* ...take over any queued preload of the same page... *)
        if Load_channel.remove_queued t.channel vpage then
          t.metrics.preloads_taken_over <- t.metrics.preloads_taken_over + 1;
        (* ...and perform the demand load. *)
        let l = start_load t ~at:free_at ~vpage ~kind:Load_channel.Demand in
        t.metrics.cyc_load_wait <-
          t.metrics.cyc_load_wait + (l.finishes - free_at);
        pump t ~now:l.finishes ~preload_bound:now;
        (l.finishes, Demand_load)
  in
  t.protected_vpage <- vpage;
  (* Mirror the pin into the page-table word so a co-tenant's sweep —
     which consults our table, not our [protected_vpage] — passes the
     frame over too.  (Guarded: a shrunk-budget scan racing the load
     completion can have re-evicted the page already.) *)
  if Page_table.present t.pt vpage then Page_table.pin t.pt vpage;
  t.on_fault t
    { fault_vpage = vpage; fault_thread = thread; raised_at = now; handled_at;
      resolution };
  t.metrics.cyc_eresume <- t.metrics.cyc_eresume + c.Cost_model.t_eresume;
  let resumed = handled_at + c.Cost_model.t_eresume in
  record t (Event.Eresume { at = resumed; vpage });
  let finished = finish_access t ~now:resumed vpage in
  Page_table.unpin t.pt vpage;
  t.protected_vpage <- -1;
  finished

let access ?(thread = 0) t ~now vpage =
  sync t ~now;
  t.metrics.accesses <- t.metrics.accesses + 1;
  if Page_table.present t.pt vpage then finish_access t ~now vpage
  else fault_path t ~now ~thread vpage

(* SIP's checked access: bitmap check, then either a plain access or a
   notification + synchronous in-enclave wait.  No AEX/ERESUME on the
   miss path — that is the whole point of the scheme (Fig. 4). *)
let sip_access ?(thread = 0) t ~now vpage =
  ignore thread;
  let c = t.costs in
  sync t ~now;
  t.metrics.accesses <- t.metrics.accesses + 1;
  t.metrics.sip_checks <- t.metrics.sip_checks + 1;
  t.metrics.cyc_bitmap_check <-
    t.metrics.cyc_bitmap_check + c.Cost_model.t_bitmap_check;
  let t_checked = now + c.Cost_model.t_bitmap_check in
  let present = Bitset.mem t.bitmap vpage in
  record t (Event.Sip_check { at = t_checked; vpage; present });
  if present then finish_access t ~now:t_checked vpage
  else begin
    t.metrics.sip_notifies <- t.metrics.sip_notifies + 1;
    t.metrics.cyc_notify <- t.metrics.cyc_notify + c.Cost_model.t_notify;
    let t_notified = t_checked + c.Cost_model.t_notify in
    (* Stamped at the end of the notify span: the event marks the kernel
       thread *receiving* the notification, which is also when it may
       start acting on the channel.  Stamping it at [t_checked] (the old
       behaviour) let the log interleave against the loads the kernel
       thread starts only after pickup. *)
    record t (Event.Sip_notify { at = t_notified; vpage });
    (* The kernel thread owns the channel next; freeze speculation. *)
    pump t ~now:t_notified ~preload_bound:t_checked;
    let loaded_at =
      if Page_table.present t.pt vpage then
        (* Completed in the notification window. *)
        t_notified
      else
        match Load_channel.in_flight t.channel with
        | Some l when l.vpage = vpage ->
          let wait = max 0 (l.finishes - t_notified) in
          t.metrics.cyc_sip_wait <- t.metrics.cyc_sip_wait + wait;
          pump t ~now:l.finishes ~preload_bound:t_checked;
          l.finishes
        | Some _ | None ->
          let free_at = Load_channel.busy_until t.channel ~now:t_notified in
          t.metrics.cyc_sip_wait <-
            t.metrics.cyc_sip_wait + (free_at - t_notified);
          pump t ~now:free_at ~preload_bound:t_checked;
          if Load_channel.remove_queued t.channel vpage then
            t.metrics.preloads_taken_over <- t.metrics.preloads_taken_over + 1;
          let l = start_load t ~at:free_at ~vpage ~kind:Load_channel.Preload_sip in
          t.metrics.cyc_sip_wait <-
            t.metrics.cyc_sip_wait + (l.finishes - free_at);
          pump t ~now:l.finishes ~preload_bound:t_checked;
          l.finishes
    in
    finish_access t ~now:loaded_at vpage
  end

let compute t ~now cycles =
  if cycles < 0 then invalid_arg "Enclave.compute: negative cycles";
  t.metrics.cyc_compute <- t.metrics.cyc_compute + cycles;
  now + cycles

let request_preload t ~now vpage =
  sync t ~now;
  t.metrics.preloads_requested <- t.metrics.preloads_requested + 1;
  if vpage < 0 || vpage >= Page_table.pages t.pt then begin
    (* Predictors may run past the end of ELRANGE; the driver range-checks
       and skips such requests.  Counted so predictor over-runs are
       distinguishable from never-predicted pages. *)
    t.metrics.preloads_rejected_range <- t.metrics.preloads_rejected_range + 1;
    false
  end
  else if not (t.preload_gate ~now vpage) then begin
    (* An open circuit breaker refuses speculation wholesale; counted
       apart from range/dup rejects so the breaker's bite is visible. *)
    t.metrics.preloads_rejected_breaker <-
      t.metrics.preloads_rejected_breaker + 1;
    false
  end
  else
  let in_flight_same =
    match Load_channel.in_flight t.channel with
    | Some l -> l.vpage = vpage
    | None -> false
  in
  if
    Page_table.present t.pt vpage || in_flight_same
    || Load_channel.queued_mem t.channel vpage
  then begin
    t.metrics.preloads_rejected_dup <- t.metrics.preloads_rejected_dup + 1;
    false
  end
  else begin
    Load_channel.queue_preload t.channel ~vpage ~at:now;
    t.metrics.preloads_issued <- t.metrics.preloads_issued + 1;
    record t (Event.Preload_queued { at = now; vpage });
    true
  end

let abort_pending_preloads t ~now =
  sync t ~now;
  let n = Load_channel.abort_queued t.channel in
  if n > 0 then begin
    t.metrics.preloads_aborted <- t.metrics.preloads_aborted + n;
    record t (Event.Preload_aborted { at = now; count = n })
  end;
  n

let abort_pending_preloads_where t ~now pred =
  sync t ~now;
  let n = Load_channel.abort_queued_where t.channel pred in
  if n > 0 then begin
    t.metrics.preloads_aborted <- t.metrics.preloads_aborted + n;
    record t (Event.Preload_aborted { at = now; count = n })
  end;
  n

let abort_pending_preloads_pages t ~now pages =
  sync t ~now;
  let n = Load_channel.abort_queued_pages t.channel pages in
  if n > 0 then begin
    t.metrics.preloads_aborted <- t.metrics.preloads_aborted + n;
    record t (Event.Preload_aborted { at = now; count = n })
  end;
  n

(* Instance crash at [now]: the enclave's EPC contents, pending preload
   queue and in-flight load are all lost.  Losses are not evictions —
   there is no write-back, no [Evict] event and no waste counter; the
   crash is its own event and its own pair of counters.  Returns the
   pages that were resident, oldest frame first, so a rewarm restart can
   re-request exactly the working set that died. *)
let crash t ~now =
  sync t ~now;
  (* Pending speculative loads die with the enclave; the in-flight load
     (always speculative between accesses — demand and SIP loads complete
     inside their access call) never lands.  Both count as aborted so the
     preload-disposition identity survives the crash. *)
  let queued = Load_channel.abort_queued t.channel in
  let cancelled =
    match Load_channel.cancel_in_flight t.channel ~now with
    | Some l when l.kind = Load_channel.Preload_dfp -> 1
    | Some _ | None -> 0
  in
  let aborted = queued + cancelled in
  if aborted > 0 then begin
    t.metrics.preloads_aborted <- t.metrics.preloads_aborted + aborted;
    record t (Event.Preload_aborted { at = now; count = aborted })
  end;
  let lost = ref [] in
  Clock_evictor.scan_owned t.epc (fun ~owner ~vpage ->
      if owner = t.owner then lost := vpage :: !lost);
  let lost = List.rev !lost in
  List.iter
    (fun vpage ->
      (* Credit a used preload before the page disappears, exactly as an
         eviction's sweep would — hit accounting must not depend on how
         the residency ended. *)
      harvest t vpage;
      Page_table.unpin t.pt vpage;
      Clock_evictor.remove t.epc ~slot:(Page_table.slot t.pt vpage);
      Page_table.mark_evicted t.pt vpage;
      Bitset.clear t.bitmap vpage)
    lost;
  let n = List.length lost in
  t.metrics.crashes <- t.metrics.crashes + 1;
  t.metrics.crash_pages_lost <- t.metrics.crash_pages_lost + n;
  t.protected_vpage <- -1;
  record t (Event.Crash { at = now; pages_lost = n });
  lost

let costs t = t.costs
let metrics t = t.metrics
let elrange_pages t = Page_table.pages t.pt
let epc_capacity t = Clock_evictor.capacity t.epc
let frame_budget t ~at = budget_at t ~at
let resident_count t = Page_table.resident_count t.pt
let page_present t vpage = Page_table.present t.pt vpage
let bitmap_present t vpage = Bitset.mem t.bitmap vpage
let pending_preloads t = Load_channel.queued t.channel
let pending_preload_count t = Load_channel.queue_length t.channel
let preload_queued t vpage = Load_channel.queued_mem t.channel vpage
let in_flight t = Load_channel.in_flight t.channel
let events t = Event.events t.log
let set_log t log = t.log <- log
