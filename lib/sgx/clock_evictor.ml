(* Frames are packed (owner, vpage) words: a shared EPC hosts pages from
   several enclaves at once, and the sweep must know whose page table to
   consult for each frame's access bit.  The single-enclave case is
   owner 0 throughout and costs one mask per probe. *)

let owner_bits = 16
let owner_mask = (1 lsl owner_bits) - 1
let max_owner = owner_mask - 1

type t = {
  slots : int array; (* (vpage lsl owner_bits) lor owner, -1 when free *)
  mutable free : int list;
  mutable hand : int;
  mutable used : int;
}

exception No_evictable_page

let create ~capacity =
  if capacity <= 0 then invalid_arg "Clock_evictor.create: capacity must be positive";
  {
    slots = Array.make capacity (-1);
    free = List.init capacity (fun i -> i);
    hand = 0;
    used = 0;
  }

let capacity t = Array.length t.slots
let used t = t.used
let is_full t = t.used >= Array.length t.slots

let pack ~owner vpage = (vpage lsl owner_bits) lor owner
let frame_owner w = w land owner_mask
let frame_vpage w = w lsr owner_bits

let insert ?(owner = 0) t vpage =
  if owner < 0 || owner > max_owner then
    invalid_arg "Clock_evictor.insert: owner out of range";
  if vpage < 0 then invalid_arg "Clock_evictor.insert: negative vpage";
  match t.free with
  | [] -> invalid_arg "Clock_evictor.insert: EPC full"
  | slot :: rest ->
    t.free <- rest;
    t.slots.(slot) <- pack ~owner vpage;
    t.used <- t.used + 1;
    slot

let remove t ~slot =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Clock_evictor.remove: slot out of range";
  if t.slots.(slot) = -1 then invalid_arg "Clock_evictor.remove: slot already free";
  t.slots.(slot) <- -1;
  t.free <- slot :: t.free;
  t.used <- t.used - 1

let advance t = t.hand <- (t.hand + 1) mod Array.length t.slots

let choose_victim_owned t ~pinned ~accessed ~clear =
  if t.used = 0 then invalid_arg "Clock_evictor.choose_victim: EPC empty";
  (* At most two revolutions: the first may clear every bit, the second
     must then find a victim.  A pinned frame is passed over without a
     clear, so it never ages toward victimhood; if every resident frame
     is pinned the budget runs dry and the typed error surfaces (the
     old code raised a bare invalid_arg here, which callers could not
     usefully catch). *)
  let budget = ref (2 * Array.length t.slots) in
  let rec sweep () =
    if !budget <= 0 then raise No_evictable_page
    else begin
      decr budget;
      let w = t.slots.(t.hand) in
      if w = -1 then begin
        advance t;
        sweep ()
      end
      else begin
        let owner = frame_owner w and vpage = frame_vpage w in
        if pinned ~owner ~vpage then begin
          advance t;
          sweep ()
        end
        else if accessed ~owner ~vpage then begin
          clear ~owner ~vpage;
          advance t;
          sweep ()
        end
        else begin
          advance t;
          (owner, vpage)
        end
      end
    end
  in
  sweep ()

let never_pinned ~owner ~vpage =
  ignore owner;
  ignore vpage;
  false

let choose_victim t ~accessed ~clear =
  snd
    (choose_victim_owned t ~pinned:never_pinned
       ~accessed:(fun ~owner:_ ~vpage -> accessed vpage)
       ~clear:(fun ~owner:_ ~vpage -> clear vpage))

let scan t f =
  Array.iter (fun w -> if w <> -1 then f (frame_vpage w)) t.slots

let scan_owned t f =
  Array.iter
    (fun w -> if w <> -1 then f ~owner:(frame_owner w) ~vpage:(frame_vpage w))
    t.slots

let resident t =
  Array.fold_right
    (fun w acc -> if w = -1 then acc else frame_vpage w :: acc)
    t.slots []

let resident_by_owner t =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      if w <> -1 then
        let o = frame_owner w in
        Hashtbl.replace counts o
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    t.slots;
  List.sort compare (Hashtbl.fold (fun o n acc -> (o, n) :: acc) counts [])
