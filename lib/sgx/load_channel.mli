(** The exclusive EPC page-load channel.

    §3.1 and §5.6 of the paper establish the two constraints that shape
    everything DFP can achieve: the channel moves {e one} page at a time,
    and an in-progress ELDU/ELDB cannot be preempted.  A demand fault that
    arrives while a speculative preload is in flight therefore waits for
    the full remainder of that load.

    This module is pure bookkeeping over absolute cycle timestamps; the
    {!Enclave} facade decides when loads start and what happens on
    completion.

    The pending-preload FIFO is an indexed deque: a ring-buffer deque of
    [(vpage, queued_at)] slots plus a per-page membership bitset and live
    sequence-number array.  Removals are lazy (the slot is invalidated in
    place and discarded when it reaches the head), so [queued_mem],
    [remove_queued], [pop_queued] and [next_queued] are O(1) amortized and
    [abort_queued_pages] is O(k) in the aborted set — the whole
    speculative-load path costs constant time per access regardless of
    queue depth.  Stale slots that never reach the head are reclaimed by
    compaction: once they outnumber both a small floor and the live
    entries, the deque is rebuilt from the live slots (relative order
    kept), bounding the physical queue at O(live) between rebuilds. *)

type kind =
  | Demand  (** Load servicing an actual fault. *)
  | Preload_dfp  (** Speculative load issued by the DFP kernel thread. *)
  | Preload_sip  (** Load requested through the SIP notification. *)

type inflight = { vpage : int; kind : kind; started : int; finishes : int }

type t

val create : pages:int -> t
(** A channel serving an ELRANGE of [pages] virtual pages (the membership
    index is per-page).  @raise Invalid_argument if [pages <= 0]. *)

val in_flight : t -> inflight option

val is_busy : t -> now:int -> bool
(** Whether a load is still in progress at [now]. *)

val busy_until : t -> now:int -> int
(** First cycle at which the channel is free, [>= now]. *)

val free_at : t -> int
(** Completion time of the last load ever started (0 initially); the
    earliest time a new load may begin when the channel is idle. *)

val begin_load : t -> vpage:int -> kind:kind -> now:int -> duration:int -> inflight
(** Occupy the channel.  @raise Invalid_argument if busy at [now]. *)

val take_completed : t -> now:int -> inflight option
(** If the in-flight load has finished by [now], clear it and return it. *)

val cancel_in_flight : t -> now:int -> inflight option
(** Crash path: drop the in-flight load (if any) without completing it
    and free the channel at [now].  The one exception to the
    can't-preempt-ELDU rule — a crashed enclave's load never lands.
    Returns the load that was abandoned. *)

val queue_preload : t -> vpage:int -> at:int -> unit
(** Append a page to the pending-preload FIFO, stamped with its enqueue
    time (a queued load cannot start before it was requested).
    @raise Invalid_argument if the page is already queued (callers check
    {!queued_mem} first — a duplicate would corrupt the membership index)
    or outside [\[0, pages)]. *)

val next_queued : t -> (int * int) option
(** Head of the pending FIFO as [(vpage, queued_at)], not removed. *)

val next_queued_vpage : t -> int
(** Head page of the pending FIFO without the option/tuple boxes ([-1]
    when empty) — the allocation-free {!next_queued} for the per-access
    scheduler probe. *)

val next_queued_at : t -> int
(** Enqueue time of the pending FIFO's head; only meaningful when
    {!next_queued_vpage} is [>= 0]. *)

val pop_queued : t -> (int * int) option

val queued : t -> int list
(** Pending vpages, next-to-load first. *)

val queue_length : t -> int
(** Live (still pending) entries. *)

val physical_length : t -> int
(** Slots actually held in the deque, including lazily-deleted ones —
    [>= queue_length].  Compaction keeps this bounded by
    [max (2 * queue_length) constant]; exposed so tests can lock the
    bound. *)

val abort_queued : t -> int
(** Drop every pending (not yet started) preload; returns how many were
    dropped.  The in-flight load, if any, is untouched — it cannot be
    preempted. *)

val abort_queued_where : t -> (int -> bool) -> int
(** Drop pending preloads whose vpage satisfies the predicate; returns the
    number dropped.  O(queue); prefer {!abort_queued_pages} when the pages
    are known. *)

val abort_queued_pages : t -> int list -> int
(** Drop the listed pages from the pending FIFO (pages not queued are
    ignored); returns the number dropped.  O(k) in the list length — the
    per-stream abort path. *)

val remove_queued : t -> int -> bool
(** Drop one specific pending page (demand load took over); [false] if it
    was not queued. *)

val queued_mem : t -> int -> bool
(** Whether a page is waiting in the pending FIFO. *)

(** Cross-tenant contention over the {e physical} paging channel.

    Each enclave still owns a logical {!t} (its loads serialize against
    themselves exactly as before), but in a fleet every tenant's loads
    also share one physical channel.  The arbiter is the deterministic
    bookkeeping for that sharing: each load asks for the channel with
    its clean duration and gets back a (possibly longer) duration that
    folds in the cross-tenant wait, scheduled under a policy.  Installed
    through {!Enclave.set_load_perturb}, so the enclave's own clamp
    ([duration >= base]) applies on top.

    With a single tenant the arbiter is the identity — the tenant's own
    exclusive channel already serializes its loads — which is what lets
    a fleet of one reproduce the solo runner byte-for-byte. *)
module Arbiter : sig
  type policy =
    | Fifo  (** First-come-first-served: wait for the channel, no bias. *)
    | Fair_share
        (** The contended wait grows with the tenant's cumulative channel
            occupancy above the fleet average — hogs queue longer. *)
    | Priority
        (** The contended wait is multiplied by the tenant's priority
            level (0 = highest = plain FIFO, higher = slower). *)

  val policy_name : policy -> string
  val policy_of_string : string -> policy option
  val policies : policy list

  type t

  val create : ?priorities:int array -> policy:policy -> int -> t
  (** Arbiter for [n] tenants (owners [0 .. n-1]).  [priorities]
      (default all 0) is only consulted by the [Priority] policy.
      @raise Invalid_argument on [n <= 0], a length mismatch, or a
      negative priority. *)

  val tenants : t -> int

  val request : t -> owner:int -> at:int -> int -> int
  (** [request t ~owner ~at d] books a load of clean duration [d]
      starting no earlier than [at]; returns the effective duration
      ([>= d]) including any cross-tenant wait.  The channel's free time
      advances by the FIFO backlog plus [d] only — a policy penalty
      delays the {e requester} (it models being overtaken by co-tenant
      loads, whose own service fills the channel meanwhile), so
      penalties never compound into later tenants' waits.  Deterministic:
      same call sequence, same results; with a single tenant whose own
      exclusive channel already serializes its loads, the wait is always
      zero and [request] is the identity on [d]. *)

  val busy_of : t -> int -> int
  (** Cumulative channel occupancy (sum of clean durations) per tenant. *)

  val wait_of : t -> int -> int
  (** Cumulative cross-tenant wait cycles charged to the tenant. *)

  val contentions : t -> int
  (** Number of requests that found the channel busy. *)
end
