(* Packed page table: one integer word per page, stored off-heap.

   The obvious representation — an array of records with mutable fields —
   is what this module used to be, and it is hostile to both the GC and
   the cache at ELRANGE scale: a million-page table is a million-pointer
   array plus a million 4-field records (plus one more box per preloaded
   page for the counted flag), all of which every major-GC mark pass must
   walk, for every live enclave.  A fused replay keeps several enclaves
   live at once, multiplying that marking cost into the dominant term of
   the whole run.  Packing each entry into one [Bigarray] int makes the
   table invisible to the GC and turns an entry probe into a single
   indexed load.

   Word layout (low to high):
     bit 0   present    resident in EPC
     bit 1   accessed   PTE access bit, cleared by the service scan
     bit 2   preloaded  provenance: came in via DFP speculation
     bit 3   counted    scan already credited this page (AccPreloadCounter)
     bit 4   pinned     mid-return to a faulting thread; not evictable
     bits 5+ slot + 1   EPC frame index, 0 meaning "no slot" (-1) *)

type provenance = Demand | Preloaded

let bit_present = 0b00001
let bit_accessed = 0b00010
let bit_preloaded = 0b00100
let bit_counted = 0b01000
let bit_pinned = 0b10000
let slot_shift = 5

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  words : words;
  mutable resident : int;
  (* Pages whose access bit went 0 -> 1 since the last {!drain_touched}:
     the service scan only cares about set bits (harvesting a clear bit
     and clearing a clear bit are both no-ops), so draining this stack is
     equivalent to sweeping every resident frame — at O(touched) instead
     of O(EPC capacity).  Entries whose bit was cleared in the meantime
     (eviction, CLOCK sweep) are skipped at drain time; a page is pushed
     again only after its bit was cleared, so the stack holds at most one
     live entry per page. *)
  mutable touched : int array;
  mutable touched_len : int;
}

let create ~pages =
  if pages <= 0 then invalid_arg "Page_table.create: pages must be positive";
  let words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout pages in
  Bigarray.Array1.fill words 0;
  { words; resident = 0; touched = Array.make (min pages 64) 0; touched_len = 0 }

let pages t = Bigarray.Array1.dim t.words

let check t vpage =
  if vpage < 0 || vpage >= Bigarray.Array1.dim t.words then
    invalid_arg
      (Printf.sprintf "Page_table: page %d outside ELRANGE [0,%d)" vpage
         (Bigarray.Array1.dim t.words))

let word t vpage =
  check t vpage;
  Bigarray.Array1.unsafe_get t.words vpage

let set_word t vpage w = Bigarray.Array1.unsafe_set t.words vpage w

let present t vpage = word t vpage land bit_present <> 0
let accessed t vpage = word t vpage land bit_accessed <> 0
let pinned t vpage = word t vpage land bit_pinned <> 0
let preloaded t vpage = word t vpage land bit_preloaded <> 0
let counted t vpage = word t vpage land bit_counted <> 0
let slot t vpage = (word t vpage lsr slot_shift) - 1

let provenance t vpage =
  if preloaded t vpage then Preloaded else Demand

let resident_count t = t.resident

let push_touched t vpage =
  if t.touched_len = Array.length t.touched then begin
    let bigger = Array.make (2 * Array.length t.touched) 0 in
    Array.blit t.touched 0 bigger 0 t.touched_len;
    t.touched <- bigger
  end;
  t.touched.(t.touched_len) <- vpage;
  t.touched_len <- t.touched_len + 1

let drain_touched t ~f =
  for i = 0 to t.touched_len - 1 do
    let vpage = t.touched.(i) in
    let w = Bigarray.Array1.unsafe_get t.words vpage in
    if w land bit_accessed <> 0 then begin
      f vpage;
      (* Re-read: [f] may have flipped other bits (counted). *)
      set_word t vpage
        (Bigarray.Array1.unsafe_get t.words vpage land lnot bit_accessed)
    end
  done;
  t.touched_len <- 0

let mark_loaded t vpage ~prov ~slot =
  let w = word t vpage in
  if w land bit_present <> 0 then
    invalid_arg
      (Printf.sprintf "Page_table.mark_loaded: page %d already present" vpage);
  (* Demand-loaded pages are hot by construction; preloaded pages start
     with a clear bit so the scan can tell whether they were ever used.
     Either way the provenance bits are rewritten: a reloaded page starts
     a fresh counted life. *)
  (match prov with
  | Demand ->
    set_word t vpage
      (bit_present lor bit_accessed lor ((slot + 1) lsl slot_shift));
    push_touched t vpage
  | Preloaded ->
    set_word t vpage
      (bit_present lor bit_preloaded lor ((slot + 1) lsl slot_shift)));
  t.resident <- t.resident + 1

let mark_evicted t vpage =
  let w = word t vpage in
  if w land bit_present = 0 then
    invalid_arg
      (Printf.sprintf "Page_table.mark_evicted: page %d not present" vpage);
  (* Presence, access bit and slot go; provenance survives until the next
     load rewrites it (nothing reads it while the page is out). *)
  set_word t vpage (w land (bit_preloaded lor bit_counted));
  t.resident <- t.resident - 1

let touch t vpage =
  let w = word t vpage in
  if w land bit_present = 0 then
    invalid_arg (Printf.sprintf "Page_table.touch: page %d not present" vpage);
  if w land bit_accessed = 0 then begin
    set_word t vpage (w lor bit_accessed);
    push_touched t vpage
  end

let clear_accessed t vpage =
  let w = word t vpage in
  set_word t vpage (w land lnot bit_accessed)

let pin t vpage =
  let w = word t vpage in
  if w land bit_present = 0 then
    invalid_arg (Printf.sprintf "Page_table.pin: page %d not present" vpage);
  set_word t vpage (w lor bit_pinned)

let unpin t vpage =
  let w = word t vpage in
  set_word t vpage (w land lnot bit_pinned)

let set_counted t vpage =
  let w = word t vpage in
  set_word t vpage (w lor bit_counted)
