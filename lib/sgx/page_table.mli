(** Per-enclave virtual page table.

    One entry per page of the enclave linear address range (ELRANGE).  The
    simulator works at page granularity throughout — SGX clears the bottom
    12 bits of faulting addresses before the OS sees them (§3.1), so page
    numbers are the finest information any scheme can observe.

    Entries are packed one integer word per page in an off-heap
    [Bigarray], so a million-page ELRANGE costs the GC nothing to mark —
    which is what keeps several simultaneously-live enclaves (the fused
    replay) from multiplying major-collection work — and an entry probe
    is a single indexed load. *)

type provenance =
  | Demand  (** Loaded by the ordinary fault path. *)
  | Preloaded
      (** Loaded ahead of demand by DFP.  Whether the CLOCK service scan
          has already credited the page to the [AccPreloadCounter] (§4.2)
          is tracked separately: see {!counted} / {!set_counted}. *)

type t

val create : pages:int -> t
(** All pages absent.  @raise Invalid_argument if [pages <= 0]. *)

val pages : t -> int

val present : t -> int -> bool
(** Resident in EPC.  @raise Invalid_argument if the page number is out
    of ELRANGE (as do all the per-page accessors below). *)

val accessed : t -> int -> bool
(** PTE access bit, cleared by the scan. *)

val preloaded : t -> int -> bool
(** Provenance of the page's current (or, if absent, most recent)
    residency: [true] iff it came in as a speculative preload. *)

val counted : t -> int -> bool
(** Whether the service scan already credited this page's first use to
    the [AccPreloadCounter] — prevents double counting. *)

val set_counted : t -> int -> unit

val provenance : t -> int -> provenance

val slot : t -> int -> int
(** Index of the EPC frame slot holding this page, [-1] if absent.
    Maintained by {!Clock_evictor}. *)

val resident_count : t -> int
(** Number of present pages (O(1), maintained incrementally). *)

val mark_loaded : t -> int -> prov:provenance -> slot:int -> unit
(** Transition a page to present.  Demand loads come in with the access
    bit set (they are about to be touched); preloads come in clear, which
    is exactly the §4.2 bookkeeping.  Rewrites the provenance and counted
    state: a reloaded page starts a fresh counted life.
    @raise Invalid_argument if already present. *)

val mark_evicted : t -> int -> unit
(** Transition a page to absent.  @raise Invalid_argument if absent. *)

val touch : t -> int -> unit
(** Set the access bit of a present page (app-side memory access). *)

val clear_accessed : t -> int -> unit
(** Clear the access bit (CLOCK sweep's second-chance clear). *)

val pinned : t -> int -> bool
(** Whether the page is pinned: mid-return to a faulting thread, so the
    CLOCK sweep must pass it over (see {!Clock_evictor.choose_victim_owned}).
    The bit lives in the same packed word as presence and the slot. *)

val pin : t -> int -> unit
(** Pin a present page.  @raise Invalid_argument if absent. *)

val unpin : t -> int -> unit
(** Clear the pinned bit (no-op if it was clear). *)

val drain_touched : t -> f:(int -> unit) -> unit
(** Visit every page whose access bit is currently set, then clear the
    bit — the service scan's harvest-and-clear sweep, at O(pages touched
    since the last drain) instead of O(frames resident).  [f] runs while
    the page's bit is still set and must not set access bits itself.
    Visit order is bit-setting order (first set first), not frame order;
    callers must be order-independent (the scan's counter harvesting
    is). *)
