type t = {
  t_aex : int;
  t_eresume : int;
  t_load : int;
  t_evict : int;
  t_fault_native : int;
  t_bitmap_check : int;
  t_notify : int;
  t_access : int;
  t_eenter : int;
  t_eexit : int;
  clock_scan_period : int;
}

let paper =
  {
    t_aex = 10_000;
    t_eresume = 10_000;
    t_load = 44_000;
    t_evict = 4_000;
    t_fault_native = 2_000;
    (* The check reads a bitmap word in untrusted memory from inside the
       enclave (address arithmetic + a likely-cold load + branch); the
       notification is a shared-memory mailbox write plus the kernel
       thread's polling pickup latency. *)
    t_bitmap_check = 120;
    t_notify = 3_000;
    t_access = 6;
    (* Synchronous enclave call boundary: EENTER flushes and re-checks
       more state than EEXIT, so the round trip is asymmetric and lands
       in the ~13k-cycle range the switchless-call literature measures
       for a world switch. *)
    t_eenter = 7_000;
    t_eexit = 6_000;
    clock_scan_period = 2_000_000;
  }

let native =
  {
    paper with
    (* No enclave transitions; a first-touch fault is a ~2k-cycle minor
       fault and the "load" is the kernel mapping a page. *)
    t_aex = 0;
    t_eresume = 0;
    t_load = 2_000;
    t_evict = 0;
    t_bitmap_check = 0;
    t_notify = 0;
    t_eenter = 0;
    t_eexit = 0;
  }

let fault_cost t ~evict =
  t.t_aex + (if evict then t.t_evict else 0) + t.t_load + t.t_eresume

let transition_cost t ~switchless =
  if switchless then t.t_notify else t.t_eenter + t.t_eexit

let pp fmt t =
  Format.fprintf fmt
    "@[<v>AEX=%d ERESUME=%d load=%d evict=%d native-fault=%d@ \
     bitmap-check=%d notify=%d access=%d EENTER=%d EEXIT=%d scan-period=%d@]"
    t.t_aex t.t_eresume t.t_load t.t_evict t.t_fault_native t.t_bitmap_check
    t.t_notify t.t_access t.t_eenter t.t_eexit t.clock_scan_period
