(** Timeline event log.

    Optional per-run recording of what happened when, used by the Fig. 2 /
    Fig. 4 timeline reproductions and by integration tests that assert on
    event ordering.  Recording is off by default; experiments that need it
    attach a bounded ring. *)

type t =
  | Access of { at : int; vpage : int }
      (** In-EPC access completed at [at]. *)
  | Fault of { at : int; vpage : int }  (** Fault raised (AEX begins). *)
  | Aex_done of { at : int; vpage : int }
  | Load_start of { at : int; vpage : int; kind : Load_channel.kind }
  | Load_done of { at : int; vpage : int; kind : Load_channel.kind }
  | Eresume of { at : int; vpage : int }
  | Evict of { at : int; vpage : int }
  | Preload_queued of { at : int; vpage : int }
  | Preload_aborted of { at : int; count : int }
  | Sip_check of { at : int; vpage : int; present : bool }
  | Sip_notify of { at : int; vpage : int }
  | Scan of { at : int }
  | Crash of { at : int; pages_lost : int }
      (** Instance crash: every resident page and pending load was lost. *)

val at : t -> int
(** Timestamp of the event. *)

val vpage : t -> int option
(** Page concerned, if any. *)

val pp : Format.formatter -> t -> unit

type log
(** Bounded recorder. *)

val make_log : capacity:int -> log
val record : log -> t -> unit
val events : log -> t list
(** Chronological (oldest first), up to the ring capacity. *)

val recorded : log -> int
(** Total events ever recorded, including any the ring has since
    dropped.  0 for the null log. *)

val truncated : log -> bool
(** Whether the ring overflowed and dropped its oldest events.  Event
    counts can then no longer be cross-checked against metric counters. *)

val null_log : log
(** Discards everything; the default. *)
