(** Counters and cycle accounting collected during a simulated run.

    Cycle totals are split by category so reports can show where time
    went (compute vs fault handling vs waiting on the load channel), and
    event counters expose the quantities the paper analyses: faults,
    preloads issued/used/aborted, SIP checks and notifications. *)

type t = {
  (* Cycle accounting. *)
  mutable cyc_compute : int;  (** Application compute between accesses. *)
  mutable cyc_access : int;  (** In-EPC access cost. *)
  mutable cyc_aex : int;  (** Asynchronous enclave exits. *)
  mutable cyc_eresume : int;  (** ERESUME re-entries. *)
  mutable cyc_os_handler : int;
      (** Short OS fault-handler path (fault found page already present /
          native fault service). *)
  mutable cyc_load_wait : int;
      (** Demand-path waiting: channel drain + eviction + own load. *)
  mutable cyc_bitmap_check : int;  (** SIP BIT_MAP_CHECK instructions. *)
  mutable cyc_notify : int;  (** SIP notification sends. *)
  mutable cyc_sip_wait : int;  (** SIP synchronous wait for the load. *)
  mutable cyc_restart : int;
      (** Post-crash downtime: the restart delay an instance sat dead
          before re-entering service. *)
  (* Event counters. *)
  mutable accesses : int;
  mutable faults : int;  (** Demand faults needing a real load. *)
  mutable faults_in_flight : int;
      (** Faults that found their page mid-preload and waited it out. *)
  mutable faults_already_present : int;
      (** Faults resolved by the handler finding the page preloaded
          during the AEX window. *)
  mutable preloads_requested : int;
      (** Every [request_preload] call a scheme made, accepted or not:
          [requested = issued + rejected_range + rejected_dup +
          rejected_breaker]. *)
  mutable preloads_rejected_range : int;
      (** Requests refused because the predicted page lies outside
          ELRANGE — predictor over-runs, previously dropped silently. *)
  mutable preloads_rejected_dup : int;
      (** Requests refused because the page was already present, in
          flight, or queued. *)
  mutable preloads_rejected_breaker : int;
      (** Requests refused by an open preload circuit breaker (the
          scheme-level gate installed via [set_preload_gate]). *)
  mutable preloads_issued : int;
  mutable preloads_completed : int;
  mutable preloads_aborted : int;  (** Queued preloads dropped by aborts. *)
  mutable preloads_taken_over : int;
      (** Queued preloads whose page faulted (or SIP-missed) first: the
          demand path removed them from the queue and loaded the page
          itself. *)
  mutable preloads_skipped : int;
      (** Queued preloads dropped at start time by the kernel thread's
          re-check: the page was already resident, or a single-frame EPC
          had no victim. *)
  mutable preload_hits : int;
      (** Preloaded pages later observed accessed by the CLOCK scan. *)
  mutable preload_evicted_unused : int;
      (** Preloaded pages evicted before any access — pure waste. *)
  mutable evictions : int;
  mutable sip_checks : int;
  mutable sip_notifies : int;
  mutable scans : int;  (** CLOCK service-thread passes. *)
  mutable crashes : int;  (** Instance crashes (EPC wiped). *)
  mutable crash_pages_lost : int;
      (** Resident pages dropped by crashes — not evictions: they leave
          no Evict event and never count as preload waste. *)
}

val create : unit -> t

val total_cycles : t -> int
(** Sum of every cycle category: the run's execution time. *)

val fault_handling_cycles : t -> int
(** Cycles spent in fault handling and load waits (AEX + handler + wait +
    ERESUME + SIP wait/notify/check). *)

val total_faults : t -> int
(** All fault events, whatever their resolution. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
