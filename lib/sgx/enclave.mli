(** The simulated enclave: ELRANGE + EPC + paging + preloading machinery.

    This facade ties the page table, the CLOCK evictor, the exclusive load
    channel and the metrics together, and exposes exactly the interface
    the paper's components see:

    - the {e application} performs page-granular accesses
      ({!access}) and, when instrumented by SIP, checked accesses
      ({!sip_access});
    - the {e OS / DFP} observes faults through the [on_fault] hook (page
      number only — SGX clears the low 12 bits) and reacts by queueing
      asynchronous preloads ({!request_preload}) or aborting pending ones;
    - the {e SGX-driver service thread} periodically scans and clears
      access bits; the scan harvests which preloaded pages were actually
      used, feeding DFP's abort counters (§4.2).

    Time is an absolute cycle counter owned by the caller.  Each
    application-side operation takes the current time and returns the
    advanced time; background work (in-flight loads, queued preloads, the
    periodic scan) is replayed lazily and in timestamp order whenever the
    simulation reaches a new point in time. *)

type fault_resolution =
  | Already_present
      (** The handler found the page in EPC: a preload completed during
          the AEX window.  Only the short handler path is paid. *)
  | Waited_in_flight
      (** The faulted page was being preloaded; the handler waited out the
          remainder of the non-preemptible load. *)
  | Demand_load  (** The ordinary path: the handler loaded the page. *)

type fault_ctx = {
  fault_vpage : int;
  fault_thread : int;
      (** Faulting thread id — the [ID] input of Algorithm 1; the OS sees
          which thread trapped. *)
  raised_at : int;  (** Cycle at which the fault trapped (AEX begins). *)
  handled_at : int;  (** Cycle at which the OS handler finished. *)
  resolution : fault_resolution;
}

type t

val create :
  ?costs:Cost_model.t ->
  ?log:Event.log ->
  ?epc:Clock_evictor.t ->
  ?owner:int ->
  epc_pages:int ->
  elrange_pages:int ->
  unit ->
  t
(** Fresh enclave with an EPC of [epc_pages] frames and an ELRANGE of
    [elrange_pages] virtual pages.  [costs] defaults to
    {!Cost_model.paper}.  A fleet passes a shared [epc] pool and a
    distinct [owner] frame tag per tenant (and must then {!link_fleet});
    by default the enclave gets a private pool and tag 0, in which case
    [epc_pages] is its capacity ([epc_pages] is ignored when [epc] is
    supplied). *)

val link_fleet : t array -> unit
(** Wire co-tenants together: each enclave learns the full fleet so the
    shared pool's CLOCK sweep can consult the right page table for each
    frame's owner tag.  @raise Invalid_argument unless every enclave's
    [owner] equals its array index. *)

val owner : t -> int
(** This enclave's frame tag in its EPC pool. *)

(** {1 Hooks (scheme attachment points)} *)

val set_on_fault : t -> (t -> fault_ctx -> unit) -> unit
(** Called once per fault, while the OS handler is logically running
    (timestamp [handled_at]).  The callback may queue preloads and abort
    pending ones; this is where DFP lives. *)

val add_on_fault : t -> (t -> fault_ctx -> unit) -> unit
(** Chain an additional fault observer after the currently installed one
    without displacing it — used by measurement plumbing (e.g. latency
    histograms) that must coexist with a scheme's [set_on_fault]. *)

val set_on_preload_complete : t -> (t -> int -> unit) -> unit
(** Called when a DFP preload finishes loading (the paper's
    [PreloadCounter] increment point). *)

val set_on_preload_hit : t -> (t -> int -> unit) -> unit
(** Called when the service scan first observes that a preloaded page has
    been accessed (the paper's [AccPreloadCounter] increment point). *)

val set_on_scan : t -> (t -> int -> unit) -> unit
(** Called after each service-thread scan with the scan time; DFP-stop
    runs its periodic counter comparison here. *)

val add_on_preload_complete : t -> (t -> int -> unit) -> unit
(** Chain an additional preload-completion observer after the installed
    one (a scheme typically owns [set_on_preload_complete]; the circuit
    breaker observes alongside it). *)

val add_on_preload_hit : t -> (t -> int -> unit) -> unit
(** Chain an additional preload-hit observer after the installed one. *)

val add_on_scan : t -> (t -> int -> unit) -> unit
(** Chain an additional scan observer after the installed one. *)

val set_preload_gate : t -> (now:int -> int -> bool) -> unit
(** Install the circuit breaker's admission gate: consulted by
    {!request_preload} (after the range check, before dup detection) for
    every speculative request; [false] rejects it, counted in
    [preloads_rejected_breaker].  SIP's synchronous notification loads
    never pass through the gate.  Always-[true] by default. *)

val set_load_perturb : t -> (at:int -> int -> int) -> unit
(** Fault-injection point (see [Sim.Fault_plan]): maps a load's clean
    duration to its faulted duration, modelling a contended paging
    channel.  The result is clamped to never shorten a load.  Identity
    by default. *)

val set_epc_budget : t -> (at:int -> int -> int) -> unit
(** Fault-injection point: frames available to this enclave at a given
    cycle once a co-tenant has taken its slice.  The result is clamped
    to [[1, capacity]].  Loads evict down to the budget (charging one
    write-back each); every {!sync} and periodic scan squeezes residency
    to the budget for free (the co-tenant's own channel pays those
    write-backs), so a shrink is reconciled at the next simulated
    instant, not at the next fault.  Defaults to the full capacity. *)

val set_on_evict : t -> (aggressor:int -> victim:int -> vpage:int -> unit) -> unit
(** Observe every eviction this enclave's sweeps perform, with the owner
    tags of both sides — in a shared pool the victim may be a co-tenant.
    Feeds the fleet's interference table.  No-op by default. *)

(** {1 Application-side operations} *)

val access : ?thread:int -> t -> now:int -> int -> int
(** [access t ~now vpage] performs one un-instrumented enclave access;
    returns the advanced cycle counter.  Faults are fully serviced inside
    (AEX, channel wait, load, ERESUME) with [on_fault] invoked at handler
    time.  [thread] (default 0) is reported in the fault context. *)

val sip_access : ?thread:int -> t -> now:int -> int -> int
(** [sip_access t ~now vpage] performs one SIP-instrumented access:
    BIT_MAP_CHECK first, then, on absence, notification plus a synchronous
    in-enclave wait for the OS to load the page — no AEX, no ERESUME
    (§3.2, Fig. 4). *)

val compute : t -> now:int -> int -> int
(** [compute t ~now cycles] accounts application compute time between
    accesses; returns [now + cycles]. *)

val sync : t -> now:int -> unit
(** Replay background work up to [now] (in-flight load completion, queued
    preload starts, periodic scans).  Application-side operations sync
    implicitly; call this at end of run to drain. *)

(** {1 OS-side operations} *)

val request_preload : t -> now:int -> int -> bool
(** Queue an asynchronous preload.  Returns [false] (no-op) if the page is
    already present, in flight, queued, outside ELRANGE (the driver
    range-checks speculative requests), or refused by the installed
    preload gate; [true] if it was queued. *)

val crash : t -> now:int -> int list
(** Kill the instance at [now]: every resident page is dropped (no
    write-back, no [Evict] event — the loss is counted in
    [Metrics.crashes] / [crash_pages_lost] and logged as one
    [Event.Crash]), the pending preload queue is aborted, and the
    in-flight load is cancelled (the one case where a load does not
    complete; it counts as aborted).  Returns the pages that were
    resident, oldest frame first — the working set a rewarm restart
    re-requests.  The enclave object itself survives and may be driven
    again after the caller charges the restart delay. *)

val abort_pending_preloads : t -> now:int -> int
(** Drop all queued (not yet started) preloads; returns the count. *)

val abort_pending_preloads_where : t -> now:int -> (int -> bool) -> int
(** Drop queued preloads matching the predicate.  O(queue); prefer
    {!abort_pending_preloads_pages} when the pages are known. *)

val abort_pending_preloads_pages : t -> now:int -> int list -> int
(** Drop the listed pages from the preload queue (pages not queued are
    ignored); returns the number dropped.  O(k) in the list length — the
    per-stream abort path. *)

(** {1 Inspection} *)

val costs : t -> Cost_model.t
val metrics : t -> Metrics.t
val elrange_pages : t -> int
val epc_capacity : t -> int

val frame_budget : t -> at:int -> int
(** Frames this enclave may occupy at [at] under the installed
    [epc_budget] hook, clamped to [[1, capacity]] — what residency is
    reconciled against (regression hook for the budget-shrink fix). *)

val resident_count : t -> int
val page_present : t -> int -> bool
val bitmap_present : t -> int -> bool
(** What SIP's shared bitmap says (kept in sync by load/evict). *)

val pending_preloads : t -> int list
(** Materializes the queue; O(queue) — inspection/testing only.  Hot paths
    use {!preload_queued} / {!pending_preload_count}. *)

val pending_preload_count : t -> int
(** Number of queued (not yet started) preloads; O(1). *)

val preload_queued : t -> int -> bool
(** Whether a page is waiting in the preload queue; O(1). *)

val in_flight : t -> Load_channel.inflight option
val events : t -> Event.t list
val set_log : t -> Event.log -> unit
