type t =
  | Access of { at : int; vpage : int }
  | Fault of { at : int; vpage : int }
  | Aex_done of { at : int; vpage : int }
  | Load_start of { at : int; vpage : int; kind : Load_channel.kind }
  | Load_done of { at : int; vpage : int; kind : Load_channel.kind }
  | Eresume of { at : int; vpage : int }
  | Evict of { at : int; vpage : int }
  | Preload_queued of { at : int; vpage : int }
  | Preload_aborted of { at : int; count : int }
  | Sip_check of { at : int; vpage : int; present : bool }
  | Sip_notify of { at : int; vpage : int }
  | Scan of { at : int }
  | Crash of { at : int; pages_lost : int }

let at = function
  | Access { at; _ }
  | Fault { at; _ }
  | Aex_done { at; _ }
  | Load_start { at; _ }
  | Load_done { at; _ }
  | Eresume { at; _ }
  | Evict { at; _ }
  | Preload_queued { at; _ }
  | Preload_aborted { at; _ }
  | Sip_check { at; _ }
  | Sip_notify { at; _ }
  | Scan { at }
  | Crash { at; _ } ->
    at

let vpage = function
  | Access { vpage; _ }
  | Fault { vpage; _ }
  | Aex_done { vpage; _ }
  | Load_start { vpage; _ }
  | Load_done { vpage; _ }
  | Eresume { vpage; _ }
  | Evict { vpage; _ }
  | Preload_queued { vpage; _ }
  | Sip_check { vpage; _ }
  | Sip_notify { vpage; _ } ->
    Some vpage
  | Preload_aborted _ | Scan _ | Crash _ -> None

let kind_str = function
  | Load_channel.Demand -> "demand"
  | Load_channel.Preload_dfp -> "dfp"
  | Load_channel.Preload_sip -> "sip"

let pp fmt = function
  | Access { at; vpage } -> Format.fprintf fmt "%10d access    p%d" at vpage
  | Fault { at; vpage } -> Format.fprintf fmt "%10d FAULT     p%d" at vpage
  | Aex_done { at; vpage } -> Format.fprintf fmt "%10d aex-done  p%d" at vpage
  | Load_start { at; vpage; kind } ->
    Format.fprintf fmt "%10d load      p%d (%s)" at vpage (kind_str kind)
  | Load_done { at; vpage; kind } ->
    Format.fprintf fmt "%10d load-done p%d (%s)" at vpage (kind_str kind)
  | Eresume { at; vpage } -> Format.fprintf fmt "%10d eresume   p%d" at vpage
  | Evict { at; vpage } -> Format.fprintf fmt "%10d evict     p%d" at vpage
  | Preload_queued { at; vpage } ->
    Format.fprintf fmt "%10d queued    p%d" at vpage
  | Preload_aborted { at; count } ->
    Format.fprintf fmt "%10d abort     %d queued preload(s)" at count
  | Sip_check { at; vpage; present } ->
    Format.fprintf fmt "%10d sip-check p%d (%s)" at vpage
      (if present then "present" else "absent")
  | Sip_notify { at; vpage } -> Format.fprintf fmt "%10d sip-notify p%d" at vpage
  | Scan { at } -> Format.fprintf fmt "%10d clock-scan" at
  | Crash { at; pages_lost } ->
    Format.fprintf fmt "%10d CRASH     %d resident page(s) lost" at pages_lost

type log = Null | Ring of { ring : t Repro_util.Ring.t; mutable recorded : int }

let make_log ~capacity = Ring { ring = Repro_util.Ring.create capacity; recorded = 0 }

let record log event =
  match log with
  | Null -> ()
  | Ring r ->
    r.recorded <- r.recorded + 1;
    Repro_util.Ring.push r.ring event

let events = function
  | Null -> []
  | Ring r ->
    (* Recording order can differ from event time: the lazy simulation
       backdates background work (e.g. a preload that started during an
       already-recorded ERESUME).  Present the timeline chronologically,
       keeping insertion order among equal timestamps. *)
    List.stable_sort
      (fun a b -> compare (at a) (at b))
      (Repro_util.Ring.to_list r.ring)

let recorded = function Null -> 0 | Ring r -> r.recorded

let truncated = function
  | Null -> false
  | Ring r -> r.recorded > Repro_util.Ring.length r.ring

let null_log = Null
