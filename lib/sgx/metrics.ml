type t = {
  mutable cyc_compute : int;
  mutable cyc_access : int;
  mutable cyc_aex : int;
  mutable cyc_eresume : int;
  mutable cyc_os_handler : int;
  mutable cyc_load_wait : int;
  mutable cyc_bitmap_check : int;
  mutable cyc_notify : int;
  mutable cyc_sip_wait : int;
  mutable cyc_restart : int;
  mutable accesses : int;
  mutable faults : int;
  mutable faults_in_flight : int;
  mutable faults_already_present : int;
  mutable preloads_requested : int;
  mutable preloads_rejected_range : int;
  mutable preloads_rejected_dup : int;
  mutable preloads_rejected_breaker : int;
  mutable preloads_issued : int;
  mutable preloads_completed : int;
  mutable preloads_aborted : int;
  mutable preloads_taken_over : int;
  mutable preloads_skipped : int;
  mutable preload_hits : int;
  mutable preload_evicted_unused : int;
  mutable evictions : int;
  mutable sip_checks : int;
  mutable sip_notifies : int;
  mutable scans : int;
  mutable crashes : int;
  mutable crash_pages_lost : int;
}

let create () =
  {
    cyc_compute = 0;
    cyc_access = 0;
    cyc_aex = 0;
    cyc_eresume = 0;
    cyc_os_handler = 0;
    cyc_load_wait = 0;
    cyc_bitmap_check = 0;
    cyc_notify = 0;
    cyc_sip_wait = 0;
    cyc_restart = 0;
    accesses = 0;
    faults = 0;
    faults_in_flight = 0;
    faults_already_present = 0;
    preloads_requested = 0;
    preloads_rejected_range = 0;
    preloads_rejected_dup = 0;
    preloads_rejected_breaker = 0;
    preloads_issued = 0;
    preloads_completed = 0;
    preloads_aborted = 0;
    preloads_taken_over = 0;
    preloads_skipped = 0;
    preload_hits = 0;
    preload_evicted_unused = 0;
    evictions = 0;
    sip_checks = 0;
    sip_notifies = 0;
    scans = 0;
    crashes = 0;
    crash_pages_lost = 0;
  }

let total_cycles t =
  t.cyc_compute + t.cyc_access + t.cyc_aex + t.cyc_eresume + t.cyc_os_handler
  + t.cyc_load_wait + t.cyc_bitmap_check + t.cyc_notify + t.cyc_sip_wait
  + t.cyc_restart

let fault_handling_cycles t =
  t.cyc_aex + t.cyc_eresume + t.cyc_os_handler + t.cyc_load_wait
  + t.cyc_bitmap_check + t.cyc_notify + t.cyc_sip_wait

let total_faults t = t.faults + t.faults_in_flight + t.faults_already_present

let copy t = { t with cyc_compute = t.cyc_compute }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles: total=%d compute=%d access=%d aex=%d eresume=%d handler=%d \
     load-wait=%d check=%d notify=%d sip-wait=%d restart=%d@ events: \
     accesses=%d faults=%d \
     in-flight=%d already-present=%d preloads=%d/%d requested=%d \
     rejected-range=%d rejected-dup=%d rejected-breaker=%d aborted=%d \
     taken-over=%d \
     skipped=%d hits=%d wasted-evict=%d evictions=%d sip-checks=%d notifies=%d \
     scans=%d crashes=%d crash-pages-lost=%d@]"
    (total_cycles t) t.cyc_compute t.cyc_access t.cyc_aex t.cyc_eresume
    t.cyc_os_handler t.cyc_load_wait t.cyc_bitmap_check t.cyc_notify
    t.cyc_sip_wait t.cyc_restart t.accesses t.faults t.faults_in_flight
    t.faults_already_present t.preloads_completed t.preloads_issued
    t.preloads_requested t.preloads_rejected_range t.preloads_rejected_dup
    t.preloads_rejected_breaker t.preloads_aborted t.preloads_taken_over
    t.preloads_skipped t.preload_hits
    t.preload_evicted_unused t.evictions t.sip_checks t.sip_notifies t.scans
    t.crashes t.crash_pages_lost
