module Bitset = Repro_util.Bitset
module Deque = Repro_util.Deque

type kind = Demand | Preload_dfp | Preload_sip

type inflight = { vpage : int; kind : kind; started : int; finishes : int }

(* One pending-FIFO slot.  [seq] makes lazy deletion sound: a removal only
   clears the per-page live sequence number, leaving the slot in place; a
   slot whose [seq] no longer matches [live_seq.(vpage)] is stale and is
   discarded the next time the head is inspected.  Re-queueing a removed
   page allocates a fresh [seq], so the stale older slot can never shadow
   the new tail position — FIFO order is exactly the list semantics. *)
type entry = { e_vpage : int; e_at : int; e_seq : int }

let stale_slot = { e_vpage = -1; e_at = 0; e_seq = -1 }

type t = {
  mutable current : inflight option;
  q : entry Deque.t;
  live_seq : int array; (* per vpage: seq of its live slot, -1 if none *)
  queued : Bitset.t; (* membership mirror of live_seq >= 0: O(1) queued_mem *)
  mutable live : int;
  mutable next_seq : int;
  mutable free_at : int;
}

let create ~pages =
  if pages <= 0 then invalid_arg "Load_channel.create: pages must be positive";
  {
    current = None;
    q = Deque.create ~dummy:stale_slot ();
    live_seq = Array.make pages (-1);
    queued = Bitset.create pages;
    live = 0;
    next_seq = 0;
    free_at = 0;
  }

let in_flight t = t.current

let is_busy t ~now = match t.current with None -> false | Some l -> l.finishes > now

let busy_until t ~now =
  match t.current with None -> now | Some l -> max now l.finishes

let free_at t = t.free_at

let begin_load t ~vpage ~kind ~now ~duration =
  if is_busy t ~now then invalid_arg "Load_channel.begin_load: channel busy";
  (match t.current with
  | Some stale ->
    invalid_arg
      (Printf.sprintf
         "Load_channel.begin_load: completed load of page %d not collected"
         stale.vpage)
  | None -> ());
  let load = { vpage; kind; started = now; finishes = now + duration } in
  t.current <- Some load;
  t.free_at <- load.finishes;
  load

let take_completed t ~now =
  match t.current with
  | Some l when l.finishes <= now ->
    t.current <- None;
    Some l
  | Some _ | None -> None

let is_live t (e : entry) = t.live_seq.(e.e_vpage) = e.e_seq

(* Discard stale (lazily-deleted) slots at the head.  Each slot is dropped
   at most once, so the scan is O(1) amortized over the queue's life. *)
let rec drop_stale t =
  match Deque.peek_front t.q with
  | Some e when not (is_live t e) ->
    ignore (Deque.pop_front t.q);
    drop_stale t
  | Some _ | None -> ()

let queued_mem t vpage =
  vpage >= 0 && vpage < Array.length t.live_seq && Bitset.mem t.queued vpage

let queue_preload t ~vpage ~at =
  if vpage < 0 || vpage >= Array.length t.live_seq then
    invalid_arg
      (Printf.sprintf "Load_channel.queue_preload: page %d out of range" vpage);
  if queued_mem t vpage then
    invalid_arg
      (Printf.sprintf "Load_channel.queue_preload: page %d already queued" vpage);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Deque.push_back t.q { e_vpage = vpage; e_at = at; e_seq = seq };
  t.live_seq.(vpage) <- seq;
  Bitset.set t.queued vpage;
  t.live <- t.live + 1

let next_queued t =
  drop_stale t;
  match Deque.peek_front t.q with
  | Some e -> Some (e.e_vpage, e.e_at)
  | None -> None

let unlink t vpage =
  t.live_seq.(vpage) <- -1;
  Bitset.clear t.queued vpage;
  t.live <- t.live - 1

let pop_queued t =
  drop_stale t;
  match Deque.pop_front t.q with
  | Some e ->
    unlink t e.e_vpage;
    Some (e.e_vpage, e.e_at)
  | None -> None

let queued t =
  List.rev
    (Deque.fold
       (fun acc e -> if is_live t e then e.e_vpage :: acc else acc)
       [] t.q)

let queue_length t = t.live

let abort_queued t =
  let n = t.live in
  Deque.iter (fun e -> if is_live t e then unlink t e.e_vpage) t.q;
  Deque.clear t.q;
  n

let remove_queued t vpage =
  if queued_mem t vpage then begin
    (* Lazy deletion: the slot stays in the deque and is skipped once it
       reaches the head. *)
    unlink t vpage;
    true
  end
  else false

let abort_queued_pages t pages =
  List.fold_left
    (fun n vpage -> if remove_queued t vpage then n + 1 else n)
    0 pages

let abort_queued_where t pred =
  let n = ref 0 in
  Deque.iter
    (fun e ->
      if is_live t e && pred e.e_vpage then begin
        unlink t e.e_vpage;
        incr n
      end)
    t.q;
  !n
