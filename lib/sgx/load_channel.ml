module Bitset = Repro_util.Bitset
module Deque = Repro_util.Deque

type kind = Demand | Preload_dfp | Preload_sip

type inflight = { vpage : int; kind : kind; started : int; finishes : int }

(* One pending-FIFO slot.  [seq] makes lazy deletion sound: a removal only
   clears the per-page live sequence number, leaving the slot in place; a
   slot whose [seq] no longer matches [live_seq.(vpage)] is stale and is
   discarded the next time the head is inspected.  Re-queueing a removed
   page allocates a fresh [seq], so the stale older slot can never shadow
   the new tail position — FIFO order is exactly the list semantics. *)
type entry = { e_vpage : int; e_at : int; e_seq : int }

let stale_slot = { e_vpage = -1; e_at = 0; e_seq = -1 }

type seqs = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable current : inflight option;
  q : entry Deque.t;
  live_seq : seqs;
      (* per vpage: seq of its live slot, -1 if none.  Off-heap so an
         ELRANGE-sized table adds nothing to GC marking (the fused replay
         keeps one per live enclave). *)
  queued : Bitset.t; (* membership mirror of live_seq >= 0: O(1) queued_mem *)
  mutable live : int;
  mutable next_seq : int;
  mutable free_at : int;
}

let create ~pages =
  if pages <= 0 then invalid_arg "Load_channel.create: pages must be positive";
  let live_seq = Bigarray.Array1.create Bigarray.int Bigarray.c_layout pages in
  Bigarray.Array1.fill live_seq (-1);
  {
    current = None;
    q = Deque.create ~dummy:stale_slot ();
    live_seq;
    queued = Bitset.create pages;
    live = 0;
    next_seq = 0;
    free_at = 0;
  }

let in_flight t = t.current

let is_busy t ~now = match t.current with None -> false | Some l -> l.finishes > now

let busy_until t ~now =
  match t.current with None -> now | Some l -> max now l.finishes

let free_at t = t.free_at

let begin_load t ~vpage ~kind ~now ~duration =
  if is_busy t ~now then invalid_arg "Load_channel.begin_load: channel busy";
  (match t.current with
  | Some stale ->
    invalid_arg
      (Printf.sprintf
         "Load_channel.begin_load: completed load of page %d not collected"
         stale.vpage)
  | None -> ());
  let load = { vpage; kind; started = now; finishes = now + duration } in
  t.current <- Some load;
  t.free_at <- load.finishes;
  load

let take_completed t ~now =
  match t.current with
  | Some l when l.finishes <= now ->
    t.current <- None;
    Some l
  | Some _ | None -> None

(* Crash path only: hardware cannot preempt an ELDU, but a dead enclave
   has no channel — the load that was in progress simply never lands.
   The channel frees immediately so the restarted instance can load. *)
let cancel_in_flight t ~now =
  match t.current with
  | None ->
    t.free_at <- max t.free_at now;
    None
  | Some l ->
    t.current <- None;
    t.free_at <- now;
    Some l

let is_live t (e : entry) = Bigarray.Array1.get t.live_seq e.e_vpage = e.e_seq

(* Discard stale (lazily-deleted) slots at the head.  Each slot is dropped
   at most once, so the scan is O(1) amortized over the queue's life. *)
let rec drop_stale t =
  match Deque.peek_front t.q with
  | Some e when not (is_live t e) ->
    ignore (Deque.pop_front t.q);
    drop_stale t
  | Some _ | None -> ()

let queued_mem t vpage =
  vpage >= 0 && vpage < Bigarray.Array1.dim t.live_seq && Bitset.mem t.queued vpage

let queue_preload t ~vpage ~at =
  if vpage < 0 || vpage >= Bigarray.Array1.dim t.live_seq then
    invalid_arg
      (Printf.sprintf "Load_channel.queue_preload: page %d out of range" vpage);
  if queued_mem t vpage then
    invalid_arg
      (Printf.sprintf "Load_channel.queue_preload: page %d already queued" vpage);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Deque.push_back t.q { e_vpage = vpage; e_at = at; e_seq = seq };
  Bigarray.Array1.set t.live_seq vpage seq;
  Bitset.set t.queued vpage;
  t.live <- t.live + 1

let next_queued t =
  drop_stale t;
  match Deque.peek_front t.q with
  | Some e -> Some (e.e_vpage, e.e_at)
  | None -> None

(* Allocation-free head peeks for the background-event scheduler, which
   probes the FIFO on every pump step.  [stale_slot]'s vpage is -1, so an
   empty queue reads as "no page". *)
let next_queued_vpage t =
  drop_stale t;
  (Deque.front t.q).e_vpage

let next_queued_at t =
  drop_stale t;
  (Deque.front t.q).e_at

let physical_length t = Deque.length t.q

(* Lazy deletion leaves the removed slot in the deque until it reaches
   the head; a run with heavy aborts and no re-queues (so [drop_stale]
   never fires) would grow the deque without bound.  Rebuild from the
   live slots once the stale ones exceed both a floor (small queues are
   not worth compacting) and the live count (amortizes the O(n) rebuild
   against the removals that created the garbage).  FIFO order is
   preserved: live slots keep their relative order. *)
let compaction_floor = 64

let maybe_compact t =
  let stale = Deque.length t.q - t.live in
  if stale > compaction_floor && stale > t.live then begin
    let entries = Deque.to_list t.q in
    Deque.clear t.q;
    List.iter (fun e -> if is_live t e then Deque.push_back t.q e) entries
  end

let unlink t vpage =
  Bigarray.Array1.set t.live_seq vpage (-1);
  Bitset.clear t.queued vpage;
  t.live <- t.live - 1

let pop_queued t =
  drop_stale t;
  match Deque.pop_front t.q with
  | Some e ->
    unlink t e.e_vpage;
    Some (e.e_vpage, e.e_at)
  | None -> None

let queued t =
  List.rev
    (Deque.fold
       (fun acc e -> if is_live t e then e.e_vpage :: acc else acc)
       [] t.q)

let queue_length t = t.live

let abort_queued t =
  let n = t.live in
  Deque.iter (fun e -> if is_live t e then unlink t e.e_vpage) t.q;
  Deque.clear t.q;
  n

let remove_queued t vpage =
  if queued_mem t vpage then begin
    (* Lazy deletion: the slot stays in the deque and is skipped once it
       reaches the head (or the next compaction, whichever comes first). *)
    unlink t vpage;
    maybe_compact t;
    true
  end
  else false

let abort_queued_pages t pages =
  List.fold_left
    (fun n vpage -> if remove_queued t vpage then n + 1 else n)
    0 pages

let abort_queued_where t pred =
  let n = ref 0 in
  Deque.iter
    (fun e ->
      if is_live t e && pred e.e_vpage then begin
        unlink t e.e_vpage;
        incr n
      end)
    t.q;
  maybe_compact t;
  !n

(* ------------------------------------------------------------------ *)
(* Fleet arbiter: contention across co-tenant channels                  *)
(* ------------------------------------------------------------------ *)

module Arbiter = struct
  type policy = Fifo | Fair_share | Priority

  let policy_name = function
    | Fifo -> "fifo"
    | Fair_share -> "fair-share"
    | Priority -> "priority"

  let policy_of_string = function
    | "fifo" -> Some Fifo
    | "fair-share" | "fair" -> Some Fair_share
    | "priority" -> Some Priority
    | _ -> None

  let policies = [ Fifo; Fair_share; Priority ]

  type t = {
    policy : policy;
    priorities : int array;
    busy : int array;
    waits : int array;
    mutable free_at : int;
    mutable contentions : int;
  }

  let create ?priorities ~policy n =
    if n <= 0 then invalid_arg "Load_channel.Arbiter.create: no tenants";
    let priorities =
      match priorities with
      | None -> Array.make n 0
      | Some p ->
        if Array.length p <> n then
          invalid_arg "Load_channel.Arbiter.create: priorities length mismatch";
        Array.iter
          (fun x ->
            if x < 0 then
              invalid_arg "Load_channel.Arbiter.create: negative priority")
          p;
        Array.copy p
    in
    {
      policy;
      priorities;
      busy = Array.make n 0;
      waits = Array.make n 0;
      free_at = 0;
      contentions = 0;
    }

  let tenants t = Array.length t.busy

  (* One load of clean duration [d] requested by [owner] at [at]: the
     returned duration (>= d) folds in the wait for the shared physical
     channel.  All arithmetic is integer and state-deterministic, so a
     fleet replay is reproducible at any worker count.

     The base wait is FIFO (the channel frees at [free_at]); the other
     policies scale the *contended* portion only, so an uncontended
     channel behaves identically under every policy — which is also what
     makes a fleet of one collapse to the solo runner byte-for-byte:
     a single tenant's own exclusive channel already serializes its
     loads, so [at >= free_at] always and the wait is zero.

     Fair-share penalizes a tenant in proportion to how far its
     cumulative channel occupancy exceeds the fleet average; Priority
     multiplies the contended wait by the tenant's priority level
     (0 = highest, plain FIFO). *)
  let request t ~owner ~at d =
    if d < 0 then invalid_arg "Load_channel.Arbiter.request: negative duration";
    if owner < 0 || owner >= Array.length t.busy then
      invalid_arg "Load_channel.Arbiter.request: owner out of range";
    let wait0 = max 0 (t.free_at - at) in
    let extra =
      if wait0 = 0 then 0
      else
        match t.policy with
        | Fifo -> 0
        | Priority -> t.priorities.(owner) * wait0
        | Fair_share ->
          let total = Array.fold_left ( + ) 0 t.busy in
          if total = 0 then 0
          else
            let n = Array.length t.busy in
            max 0 ((t.busy.(owner) * n) - total) * wait0 / total
    in
    let wait = wait0 + extra in
    if wait > 0 then t.contentions <- t.contentions + 1;
    t.waits.(owner) <- t.waits.(owner) + wait;
    t.busy.(owner) <- t.busy.(owner) + d;
    (* The physical channel is occupied by this load alone, so it frees
       [d] after the FIFO backlog drains.  [extra] delays only the
       requester — it models being overtaken, and the overtakers' own
       service occupies the channel during that window.  Folding [extra]
       into [free_at] would double-charge the channel and compound
       penalized waits geometrically (each inflated [free_at] raising
       the next tenant's [wait0], which gets penalized again). *)
    t.free_at <- at + wait0 + d;
    wait + d

  let busy_of t owner = t.busy.(owner)
  let wait_of t owner = t.waits.(owner)
  let contentions t = t.contentions
end
