(** CLOCK (second-chance) management of the EPC frame pool.

    Mirrors the Intel SGX driver's page reclaim: frames form a circular
    buffer over which a hand sweeps; a set access bit buys the page one
    more revolution.  The same structure hosts the periodic service-thread
    scan that clears access bits and — piggybacked, as in §4.2 of the
    paper — harvests "preloaded page was actually used" information for
    DFP's abort counters.

    Frames carry an {e owner} tag so one pool can be shared by a fleet of
    co-tenant enclaves: the sweep reports (owner, vpage) pairs and its
    callbacks receive both, letting the caller consult the right page
    table per frame.  Single-enclave users ignore owners entirely (they
    default to 0). *)

type t

exception No_evictable_page
(** The sweep exhausted its two-revolution budget without finding a
    victim: every resident frame is pinned (or kept permanently
    accessed).  Raised by {!choose_victim_owned} / {!choose_victim};
    callers decide whether that is a drop-the-preload situation or a
    hard error. *)

val create : capacity:int -> t
(** An empty EPC with [capacity] frames.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val used : t -> int
(** Frames currently holding a page. *)

val is_full : t -> bool

val insert : ?owner:int -> t -> int -> int
(** [insert ?owner t vpage] places a page into a free frame and returns
    the slot index (to be recorded in the owner's page-table entry).
    [owner] (default 0) tags the frame for shared-pool sweeps.
    @raise Invalid_argument if full, if [vpage < 0], or if [owner] is
    outside the 16-bit tag range. *)

val remove : t -> slot:int -> unit
(** Free a frame by slot index (page evicted or enclave-destroyed).
    @raise Invalid_argument if the slot is already free. *)

val choose_victim_owned :
  t ->
  pinned:(owner:int -> vpage:int -> bool) ->
  accessed:(owner:int -> vpage:int -> bool) ->
  clear:(owner:int -> vpage:int -> unit) ->
  int * int
(** [choose_victim_owned t ~pinned ~accessed ~clear] runs the CLOCK
    sweep over a (possibly shared) pool: pinned frames are passed over
    untouched (no second-chance clear — a pinned page is mid-return to
    a faulting thread and must stay put); pages whose access bit is set
    (per [accessed]) are given a second chance ([clear] is called and
    the hand advances); the first page with a clear bit is the victim,
    returned as [(owner, vpage)] {e without} freeing the slot — callers
    evict via {!remove} once the write-back completes.
    @raise Invalid_argument if the EPC is empty.
    @raise No_evictable_page if two full revolutions find only pinned
    frames. *)

val choose_victim : t -> accessed:(int -> bool) -> clear:(int -> unit) -> int
(** Single-owner view of {!choose_victim_owned}: no frames are pinned
    and callbacks receive the vpage alone.
    @raise Invalid_argument if the EPC is empty.
    @raise No_evictable_page if the sweep budget runs dry ([accessed]
    held every frame hot through both revolutions). *)

val scan : t -> (int -> unit) -> unit
(** [scan t f] visits every resident page once (service-thread pass);
    [f] receives the vpage.  Visit order is frame order, not recency. *)

val scan_owned : t -> (owner:int -> vpage:int -> unit) -> unit
(** {!scan} with the owner tag, for shared-pool walkers. *)

val resident : t -> int list
(** Resident vpages in frame order (testing/report helper). *)

val resident_by_owner : t -> (int * int) list
(** [(owner, frames held)] sorted by owner — the shared pool's view of
    who occupies what, checked by the fleet conservation invariant. *)
