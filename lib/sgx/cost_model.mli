(** Cycle-cost model of the simulated SGX memory subsystem.

    The headline constants come straight from the paper (§2, after the
    CVE-2019-0117 micro-code update): an enclave page fault costs
    [t_aex + t_load + t_eresume] ≈ 60,000–64,000 cycles, an out-of-enclave
    fault ≈ 2,000 cycles, and the EPC load channel moves exactly one page
    at a time, non-preemptibly, in [t_load] = 44,000 cycles. *)

type t = {
  t_aex : int;
      (** Asynchronous enclave exit on a fault (paper: 10,000 cycles). *)
  t_eresume : int;
      (** ERESUME back into the enclave (paper: 10,000 cycles). *)
  t_load : int;
      (** One EPC page load, ELDU/ELDB; exclusive and non-preemptible
          (paper: 44,000 cycles). *)
  t_evict : int;
      (** EWB write-back when the EPC is full and a frame must be freed
          before a load; folded into the busy span of the channel.  The
          paper's 60k–64k fault range corresponds to evict-free vs
          evict-needed faults. *)
  t_fault_native : int;
      (** Page-fault service outside an enclave (paper: ~2,000 cycles);
          also used for the short OS handler path when a fault finds its
          page already (pre)loaded. *)
  t_bitmap_check : int;
      (** SIP's BIT_MAP_CHECK of the shared presence bitmap (§4.3): a few
          loads and a branch inside the enclave. *)
  t_notify : int;
      (** SIP preload notification through the shared memory mailbox:
          write + kernel-thread pickup latency (§3.2, Fig. 4). *)
  t_access : int;
      (** An in-EPC memory access (amortised, page-granular event). *)
  t_eenter : int;
      (** EENTER for a synchronous enclave call (ecall entry): TLB flush,
          state checks, stack switch. *)
  t_eexit : int;
      (** EEXIT back to untrusted code at the end of a synchronous call. *)
  clock_scan_period : int;
      (** Period, in cycles, of the SGX-driver service thread that scans
          and clears page-table access bits (§4.2). *)
}

val paper : t
(** The constants reported by the paper, with the remaining knobs set to
    values consistent with its measurements. *)

val native : t
(** Same machine without SGX: faults cost [t_fault_native], no AEX or
    ERESUME, loads are plain memory-bandwidth page touches.  Used for the
    §1 enclave-vs-native slowdown experiment. *)

val fault_cost : t -> evict:bool -> int
(** End-to-end demand-fault cost when the channel is free:
    AEX + (evict?) + load + ERESUME. *)

val transition_cost : t -> switchless:bool -> int
(** Per-request enclave call boundary cost.  Synchronous calls pay
    [t_eenter + t_eexit]; with [~switchless:true] the request is handed
    over through a shared-memory mailbox to a thread already resident in
    the enclave, so only [t_notify] is charged (zero under {!native},
    where there is no boundary to cross either way). *)

val pp : Format.formatter -> t -> unit
