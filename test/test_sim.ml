(* Integration tests: whole simulated runs through the runner, the
   report helpers, and the experiment layer at quick settings.  These
   assert the *shapes* the paper reports, not exact numbers. *)

module Runner = Sim.Runner
module Report = Sim.Report
module Experiments = Sim.Experiments
module Scheme = Preload.Scheme
module Input = Workload.Input
module Metrics = Sgxsim.Metrics

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let epc = 512
let config = { Runner.default_config with epc_pages = epc }

let trace name =
  let model =
    match Workload.Spec.by_name name with
    | Some m -> m
    | None -> Option.get (Workload.Vision.by_name name)
  in
  model ~epc_pages:epc ~input:Input.Train

let run name scheme = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme (trace name)

let plan_for name =
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:epc)
      (trace name)
  in
  Preload.Sip_instrumenter.plan_of_profile profile

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_deterministic () =
  let a = run "lbm" Scheme.Baseline in
  let b = run "lbm" Scheme.Baseline in
  checki "same cycles" a.cycles b.cycles;
  checki "same faults" (Metrics.total_faults a.metrics) (Metrics.total_faults b.metrics)

let test_runner_native_faster () =
  let base = run "microbenchmark" Scheme.Baseline in
  let native = run "microbenchmark" Scheme.Native in
  checkb "enclave pays for paging" true (native.cycles < base.cycles);
  checkb "native never evicts" true (native.metrics.evictions = 0)

let test_dfp_improves_regular () =
  let base = run "lbm" Scheme.Baseline in
  let dfp = run "lbm" Scheme.dfp_default in
  checkb "faster" true (Runner.improvement ~baseline:base dfp > 0.05);
  checkb "fewer faults" true
    (Metrics.total_faults dfp.metrics < Metrics.total_faults base.metrics)

let test_dfp_hurts_bursty_and_stop_rescues () =
  let base = run "roms" Scheme.Baseline in
  let dfp = run "roms" Scheme.dfp_default in
  let stop = run "roms" Scheme.dfp_stop in
  checkb "plain DFP mispredicts into overhead" true
    (Runner.improvement ~baseline:base dfp < -0.05);
  checkb "stop fires" true stop.dfp_stopped;
  checkb "stop rescues" true
    (Runner.improvement ~baseline:base stop > Runner.improvement ~baseline:base dfp);
  checkb "stop leaves only a small residue" true
    (Float.abs (Runner.improvement ~baseline:base stop) < 0.05)

let test_sip_improves_irregular () =
  let base = run "deepsjeng" Scheme.Baseline in
  let plan = plan_for "deepsjeng" in
  let sip = run "deepsjeng" (Scheme.Sip plan) in
  checkb "has instrumentation points" true (sip.instrumentation_points > 0);
  checkb "faster" true (Runner.improvement ~baseline:base sip > 0.03);
  checkb "notifications replaced faults" true (sip.metrics.sip_notifies > 0);
  checkb "fewer faults" true
    (Metrics.total_faults sip.metrics < Metrics.total_faults base.metrics)

let test_sip_noop_on_regular () =
  let base = run "lbm" Scheme.Baseline in
  let plan = plan_for "lbm" in
  checki "no points on lbm" 0 (Preload.Sip_instrumenter.instrumentation_points plan);
  let sip = run "lbm" (Scheme.Sip plan) in
  checki "identical to baseline" base.cycles sip.cycles

let test_hybrid_beats_both_on_mixed () =
  let base = run "mixed-blood" Scheme.Baseline in
  let plan = plan_for "mixed-blood" in
  let sip = run "mixed-blood" (Scheme.Sip plan) in
  let dfp = run "mixed-blood" Scheme.dfp_default in
  let hybrid =
    run "mixed-blood"
      (Scheme.Hybrid (Preload.Dfp.with_stop Preload.Dfp.default_config, plan))
  in
  let imp r = Runner.improvement ~baseline:base r in
  checkb "all positive" true (imp sip > 0.0 && imp dfp > 0.0 && imp hybrid > 0.0);
  checkb "hybrid >= max(sip, dfp) - epsilon" true
    (imp hybrid >= Float.max (imp sip) (imp dfp) -. 0.01)

let test_normalized_and_improvement () =
  let base = run "lbm" Scheme.Baseline in
  let dfp = run "lbm" Scheme.dfp_default in
  let n = Runner.normalized_time ~baseline:base dfp in
  let i = Runner.improvement ~baseline:base dfp in
  Alcotest.(check (float 1e-9)) "complementary" 1.0 (n +. i)

let test_small_ws_barely_faults () =
  let base = run "exchange2" Scheme.Baseline in
  let faults = Metrics.total_faults base.metrics in
  let accesses = base.metrics.accesses in
  checkb "cold faults only" true (faults * 50 < accesses)

(* ------------------------------------------------------------------ *)
(* Self-validation: every scheme on a mixed workload                   *)
(* ------------------------------------------------------------------ *)

let all_schemes () =
  let plan = plan_for "mixed-blood" in
  [
    Scheme.Baseline; Scheme.Native; Scheme.dfp_default; Scheme.dfp_stop;
    Scheme.Sip plan;
    Scheme.Hybrid (Preload.Dfp.with_stop Preload.Dfp.default_config, plan);
    Scheme.next_line ~degree:4; Scheme.stride ~degree:4;
    Scheme.markov ~table_pages:(8 * epc) ~degree:4;
  ]

let test_every_scheme_validates () =
  (* The tentpole cross-check: for every scheme, the final simulated
     clock equals the accounted cycles, every counter identity holds,
     and the recorded event log obeys its discipline. *)
  let config = { config with Runner.log_capacity = 1 lsl 18 } in
  List.iter
    (fun scheme ->
      let r = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme (trace "mixed-blood") in
      checki
        (r.scheme ^ ": final now = total cycles")
        (Metrics.total_cycles r.metrics) r.final_now;
      checkb (r.scheme ^ ": log complete") false
        r.diagnostics.Runner.events_truncated;
      Alcotest.(check string)
        (r.scheme ^ ": no violations")
        ""
        (Sim.Validate.report (Sim.Validate.check r)))
    (all_schemes ())

let test_fault_latency_histograms () =
  let r = run "mixed-blood" Scheme.dfp_default in
  let count kind =
    Repro_util.Histogram.count (List.assoc kind r.fault_latency)
  in
  let m = r.metrics in
  checki "demand-load histogram counts demand faults" m.faults
    (count Sgxsim.Enclave.Demand_load);
  checki "in-flight histogram" m.faults_in_flight
    (count Sgxsim.Enclave.Waited_in_flight);
  checki "already-present histogram" m.faults_already_present
    (count Sgxsim.Enclave.Already_present);
  (* Demand faults cost at least AEX + load + ERESUME, so none can land
     below that bound. *)
  let h = List.assoc Sgxsim.Enclave.Demand_load r.fault_latency in
  let c = Sgxsim.Cost_model.paper in
  Alcotest.(check (float 1e-9))
    "no demand fault faster than the architectural floor" 0.0
    (Repro_util.Histogram.fraction_below h
       (float_of_int (c.t_aex + c.t_load + c.t_eresume)));
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  let rendered = Repro_util.Table.render (Report.fault_latency_table r) in
  checkb "table names every resolution" true
    (List.for_all (contains rendered)
       [ "demand-load"; "waited-in-flight"; "already-present" ])

let test_queue_stress_latency_fits () =
  (* Regression: the fault-latency histograms had a fixed upper bound
     sized for shallow queues; on the queue-stress trace an in-flight
     wait can outlast it many times over, and every such observation
     fell into overflow, biasing the reported mean low.  Auto-expansion
     must keep the overflow bucket empty on this trace too. *)
  let s = { Sim.Macro_bench.smoke with events = 20_000 } in
  let stress = Sim.Macro_bench.queue_stress s in
  let config = { Runner.default_config with epc_pages = s.epc_pages } in
  let r = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme:Scheme.dfp_default stress in
  checkb "stress run faults at all" true (Metrics.total_faults r.metrics > 0);
  List.iter
    (fun (kind, h) ->
      checki
        (Runner.resolution_name kind ^ " overflow empty")
        0
        (Repro_util.Histogram.overflow h))
    r.fault_latency

let test_workload_catalog_complete () =
  (* Regression: [workload_families] (behind the CLI's [list]) omitted
     the Parallel_apps and Synthetic families even though [run] accepted
     their names. *)
  let catalog = Experiments.workload_families in
  let listed n = List.mem_assoc n catalog in
  List.iter
    (fun (n, _) -> checkb (n ^ " listed") true (listed n))
    Workload.Parallel_apps.all;
  List.iter
    (fun (n, _) -> checkb (n ^ " listed") true (listed n))
    Workload.Synthetic.all;
  (* The catalog and the resolver agree in both directions. *)
  List.iter
    (fun (n, _) ->
      checkb (n ^ " resolves") true (Option.is_some (Experiments.find_model n)))
    catalog;
  checkb "unknown name stays unresolvable" true
    (Option.is_none (Experiments.find_model "no-such-workload"))

(* ------------------------------------------------------------------ *)
(* Report helpers                                                      *)
(* ------------------------------------------------------------------ *)

let test_report_summary_mentions_scheme () =
  let r = run "lbm" Scheme.dfp_default in
  let s = Report.summary r in
  checkb "workload named" true
    (String.length s > 0
    && String.sub s 0 3 = "lbm")

let test_report_breakdown_sums_to_total () =
  let r = run "lbm" Scheme.Baseline in
  let rendered = Repro_util.Table.render (Report.breakdown_table r) in
  checkb "total row present" true
    (List.exists
       (fun line ->
         String.length line > 5 && String.sub line 0 5 = "total")
       (String.split_on_char '\n' rendered))

let test_report_fault_reduction () =
  let base = run "lbm" Scheme.Baseline in
  let dfp = run "lbm" Scheme.dfp_default in
  (match Report.fault_reduction ~baseline:base dfp with
  | None -> Alcotest.fail "baseline had faults, reduction must be defined"
  | Some fr -> checkb "in (0,1)" true (fr > 0.0 && fr < 1.0));
  (* A fault-free baseline has no defined reduction. *)
  checkb "0-of-0 baseline is n/a" true
    (Report.fault_reduction ~baseline:dfp dfp = None
    || Sgxsim.Metrics.total_faults dfp.Runner.metrics > 0)

let test_report_geomean () =
  let base = run "lbm" Scheme.Baseline in
  let dfp = run "lbm" Scheme.dfp_default in
  let g = Report.geomean_normalized [ (base, dfp); (base, base) ] in
  checkb "between the two" true
    (g > Runner.normalized_time ~baseline:base dfp && g < 1.0)

let test_ascii_scatter_shape () =
  let s =
    Report.ascii_scatter ~width:10 ~height:4
      [ (0, 0); (9, 9) ]
      ~max_x:9 ~max_y:9
  in
  let lines = String.split_on_char '\n' s in
  checki "height + axis" 6 (List.length lines);
  checkb "plots points" true (String.contains s '*')

(* ------------------------------------------------------------------ *)
(* Experiments layer (quick settings)                                  *)
(* ------------------------------------------------------------------ *)

let q = Experiments.quick

let test_intro_slowdown_order_of_magnitude () =
  let s = Experiments.intro_slowdown q in
  checkb "tens of x" true (s > 10.0 && s < 100.0)

let test_fig2_timelines () =
  let base_events, dfp_events = Experiments.fig2_timelines q in
  checkb "baseline logged" true (List.length base_events > 0);
  checkb "dfp logged" true (List.length dfp_events > 0);
  (* Baseline faults on all four pages; DFP on fewer. *)
  let faults evs =
    List.length
      (List.filter (function Sgxsim.Event.Fault _ -> true | _ -> false) evs)
  in
  checki "baseline faults" 4 (faults base_events);
  checkb "dfp avoids some" true (faults dfp_events < 4)

let test_fig4_costs () =
  let base, sip = Experiments.fig4_costs q in
  let c = Sgxsim.Cost_model.paper in
  checki "baseline path" (c.t_aex + c.t_load + c.t_eresume + c.t_access) base;
  checki "sip path" (c.t_bitmap_check + c.t_notify + c.t_load + c.t_access) sip

let test_table1_covers_all_spec () =
  let rows = Experiments.table1_rows q in
  checki "15 benchmarks" 15 (List.length rows);
  List.iter
    (fun (name, _, pages, ratio, irregular) ->
      checkb (name ^ " pages positive") true (pages > 0);
      checkb (name ^ " ratio positive") true (ratio > 0.0);
      checkb (name ^ " irregular in [0,1]") true (irregular >= 0.0 && irregular <= 1.0))
    rows

let test_fig6_short_list_hurts_bwaves () =
  let sweep = Experiments.fig6_sweep q in
  let at len = List.assoc "bwaves" (List.assoc len sweep) in
  (* bwaves runs 5 concurrent streams + a noise site: a 2-entry list
     thrashes, a 30-entry list does not. *)
  checkb "short list worse" true (at 2 > at 30)

let test_fig7_long_loadlength_hurts_irregular () =
  let sweep = Experiments.fig7_sweep q in
  let sjeng = List.assoc "deepsjeng" sweep in
  checkb "L=16 worse than L=4 on deepsjeng" true
    (List.assoc 16 sjeng > List.assoc 4 sjeng);
  let lbm = List.assoc "lbm" sweep in
  checkb "L=4 better than L=1 on lbm" true (List.assoc 4 lbm < List.assoc 1 lbm)

let test_fig8_shapes () =
  let rows = Experiments.fig8_rows q in
  let find w s = List.find (fun r -> r.Experiments.workload = w && r.scheme = s) rows in
  checkb "lbm DFP gains" true ((find "lbm" "DFP").improvement > 0.05);
  checkb "roms DFP loses" true ((find "roms" "DFP").improvement < -0.05);
  checkb "roms DFP-stop rescued" true
    ((find "roms" "DFP-stop").improvement > (find "roms" "DFP").improvement)

let test_fig9_high_threshold_loses () =
  let sweep = Experiments.fig9_sweep q in
  let at t = List.assoc t sweep in
  checkb "80% threshold worse than 5%" true (at 0.8 > at 0.05)

let test_fig10_shapes () =
  let rows = Experiments.fig10_rows q in
  let find w = List.find (fun (r, _) -> r.Experiments.workload = w) rows in
  let sjeng, points = find "deepsjeng" in
  checkb "deepsjeng gains" true (sjeng.improvement > 0.02);
  checkb "deepsjeng instrumented" true (points > 0);
  let lbm, lbm_points = find "lbm" in
  checki "lbm untouched" 0 lbm_points;
  checkb "lbm unchanged" true (Float.abs lbm.improvement < 1e-9)

let test_fig13_hybrid_wins () =
  let rows = Experiments.fig13_rows q in
  let get s = (List.find (fun r -> r.Experiments.scheme = s) rows).Experiments.improvement in
  checkb "hybrid at least matches both" true
    (get "SIP+DFP-stop" >= Float.max (get "SIP") (get "DFP") -. 0.01)

let test_table2_zero_point_benchmarks () =
  let rows = Experiments.table2_rows q in
  List.iter
    (fun (name, measured, paper) ->
      if paper = 0 then checki (name ^ " has zero points") 0 measured
      else checkb (name ^ " has points") true (measured > 0))
    rows

let test_ablation_backward () =
  let rows = Experiments.ablation_backward_rows q in
  let get s = (List.find (fun r -> r.Experiments.scheme = s) rows).Experiments.improvement in
  checkb "backward detection pays on a descending sweep" true
    (get "DFP (backward on)" > get "DFP (backward off)" +. 0.02)

let test_ablation_predictor () =
  let rows = Experiments.ablation_predictor_rows q in
  checkb "four schemes per benchmark" true (List.length rows = 4);
  checkb "DFP competitive on lbm" true
    (List.for_all
       (fun r ->
         r.Experiments.scheme <> "DFP" || r.improvement > 0.0)
       rows)

let test_ablation_threads () =
  let rows = Experiments.ablation_threads_rows q in
  let get s = (List.find (fun r -> r.Experiments.scheme = s) rows).Experiments.improvement in
  checkb "per-thread lists beat a shared one" true
    (get "DFP (per-thread lists)" > get "DFP (one shared list)")

let test_ablation_share () =
  let rows = Experiments.ablation_share_rows q in
  (match rows with
  | (full_epc, full_slowdown, _) :: (half_epc, half_slowdown, _) :: _ ->
    checkb "partitions shrink" true (half_epc < full_epc);
    checkb "full partition is the reference" true
      (Float.abs (full_slowdown -. 1.0) < 1e-9);
    checkb "contention hurts" true (half_slowdown > 1.0)
  | _ -> Alcotest.fail "expected at least two partitions");
  (match rows with
  | (_, _, full_improvement) :: _ ->
    checkb "DFP positive at the full partition" true (full_improvement > 0.0)
  | [] -> Alcotest.fail "no partitions");
  checkb "DFP never collapses under contention" true
    (List.for_all (fun (_, _, improvement) -> improvement > -0.05) rows)

let test_ablation_sip_all () =
  let rows = Experiments.ablation_sip_all_rows q in
  let get s = (List.find (fun r -> r.Experiments.scheme = s) rows).Experiments.improvement in
  (* Checking everything converts every fault (quick set: deepsjeng). *)
  checkb "check-everything converts more faults" true
    (get "check everything" >= get "SIP (5% threshold)")

let test_experiments_catalog () =
  checkb "has the paper artefacts" true
    (List.for_all
       (fun id -> List.mem_assoc id Experiments.all)
       [
         "intro"; "fig2"; "fig3"; "fig4"; "table1"; "fig6"; "fig7"; "fig8";
         "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "table2";
       ]);
  (match
     try
       Experiments.run "nope" q;
       None
     with Invalid_argument msg -> Some msg
   with
  | Some msg ->
    let prefix = "Experiments.run: unknown experiment" in
    checkb "error names the unknown id" true
      (String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix)
  | None -> Alcotest.fail "unknown id must be rejected")

let test_fig3_series_shapes () =
  let series = Experiments.fig3_series q in
  checki "three benchmarks" 3 (List.length series);
  List.iter
    (fun (name, points) ->
      checkb (name ^ " has points") true (List.length points > 50);
      checkb (name ^ " x ascending") true
        (let xs = List.map fst points in
         List.sort compare xs = xs))
    series;
  (* lbm's sweep is the diagonal: page is non-decreasing over the window
     apart from the array switch. *)
  let lbm = List.assoc "lbm" series in
  let increasing =
    let rec count = function
      | (_, a) :: ((_, b) :: _ as rest) -> (if b >= a then 1 else 0) + count rest
      | _ -> 0
    in
    count lbm
  in
  checkb "lbm mostly ascending" true
    (float_of_int increasing /. float_of_int (List.length lbm) > 0.9)

let test_runner_reports_instrumentation_points () =
  let plan = plan_for "deepsjeng" in
  let r = run "deepsjeng" (Scheme.Sip plan) in
  checki "points surfaced in the result"
    (Preload.Sip_instrumenter.instrumentation_points plan)
    r.instrumentation_points;
  let b = run "deepsjeng" Scheme.Baseline in
  checki "baseline reports none" 0 b.instrumentation_points

let test_markov_scheme_via_runner () =
  (* The correlation table needs repeats: the ref input runs lbm for
     several timesteps, so the second sweep replays the first's fault
     chain. *)
  let trace = Workload.Spec.lbm ~epc_pages:epc ~input:(Input.Ref 0) in
  let base = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme:Scheme.Baseline trace in
  let m = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme:(Scheme.markov ~table_pages:(8 * epc) ~degree:4) trace in
  Alcotest.(check string) "scheme name" "markov(4096,4)" m.scheme;
  checkb "repeated sweeps are learnable" true
    (Runner.improvement ~baseline:base m > 0.0)

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "sim"
    [
      ( "runner",
        [
          tc "deterministic" test_runner_deterministic;
          tc "native faster" test_runner_native_faster;
          tc "DFP improves regular" test_dfp_improves_regular;
          slow "DFP hurts bursty, stop rescues" test_dfp_hurts_bursty_and_stop_rescues;
          slow "SIP improves irregular" test_sip_improves_irregular;
          tc "SIP no-op on regular" test_sip_noop_on_regular;
          slow "hybrid beats both on mixed" test_hybrid_beats_both_on_mixed;
          tc "normalized + improvement = 1" test_normalized_and_improvement;
          tc "small WS barely faults" test_small_ws_barely_faults;
        ] );
      ( "validation",
        [
          slow "every scheme validates on mixed-blood" test_every_scheme_validates;
          tc "fault latency histograms" test_fault_latency_histograms;
          slow "queue-stress latencies fit" test_queue_stress_latency_fits;
        ] );
      ( "report",
        [
          tc "summary" test_report_summary_mentions_scheme;
          tc "breakdown" test_report_breakdown_sums_to_total;
          tc "fault reduction" test_report_fault_reduction;
          tc "geomean" test_report_geomean;
          tc "ascii scatter" test_ascii_scatter_shape;
        ] );
      ( "experiments",
        [
          tc "workload catalog complete" test_workload_catalog_complete;
          slow "intro slowdown" test_intro_slowdown_order_of_magnitude;
          tc "fig2 timelines" test_fig2_timelines;
          tc "fig4 costs" test_fig4_costs;
          slow "table1 coverage" test_table1_covers_all_spec;
          slow "fig6 short list hurts" test_fig6_short_list_hurts_bwaves;
          slow "fig7 loadlength" test_fig7_long_loadlength_hurts_irregular;
          slow "fig8 shapes" test_fig8_shapes;
          slow "fig9 threshold" test_fig9_high_threshold_loses;
          slow "fig10 shapes" test_fig10_shapes;
          slow "fig13 hybrid" test_fig13_hybrid_wins;
          slow "table2 zero points" test_table2_zero_point_benchmarks;
          slow "ablation backward" test_ablation_backward;
          slow "ablation predictor" test_ablation_predictor;
          slow "ablation threads" test_ablation_threads;
          slow "ablation share" test_ablation_share;
          slow "ablation sip-all" test_ablation_sip_all;
          tc "fig3 series shapes" test_fig3_series_shapes;
          tc "runner reports points" test_runner_reports_instrumentation_points;
          slow "markov via runner" test_markov_scheme_via_runner;
          tc "catalog" test_experiments_catalog;
        ] );
    ]
