(* Tests of the paper's core contribution: Algorithm 1, DFP with its
   abort machinery, the SIP profiler/instrumenter, and the ablation
   prefetchers. *)

module SP = Preload.Stream_predictor
module Dfp = Preload.Dfp
module Page_lru = Preload.Page_lru
module Profiler = Preload.Sip_profiler
module Instrumenter = Preload.Sip_instrumenter
module Scheme = Preload.Scheme
module Enclave = Sgxsim.Enclave

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Stream predictor (Algorithm 1)                                      *)
(* ------------------------------------------------------------------ *)

let predictor ?(len = 4) ?(ll = 4) ?detect_backward () =
  SP.create ?detect_backward ~stream_list_length:len ~load_length:ll ()

let test_first_fault_opens_stream () =
  let p = predictor () in
  (match SP.on_fault p 10 with
  | SP.New_stream { stream; replaced } ->
    checki "tail" 10 stream.stpn;
    checki "no direction yet" 0 stream.dir;
    checkb "nothing replaced" true (replaced = None)
  | _ -> Alcotest.fail "expected New_stream");
  checki "one stream" 1 (List.length (SP.streams p))

let test_sequential_fault_extends () =
  let p = predictor () in
  ignore (SP.on_fault p 10);
  match SP.on_fault p 11 with
  | SP.Extend { stream; predict } ->
    checki "tail advanced" 11 stream.stpn;
    checki "ascending" 1 stream.dir;
    Alcotest.(check (list int)) "LOADLENGTH pages ahead" [ 12; 13; 14; 15 ] predict
  | _ -> Alcotest.fail "expected Extend"

let test_descending_stream_detected () =
  let p = predictor () in
  ignore (SP.on_fault p 10);
  match SP.on_fault p 9 with
  | SP.Extend { stream; predict } ->
    checki "descending" (-1) stream.dir;
    Alcotest.(check (list int)) "downward predictions" [ 8; 7; 6; 5 ] predict
  | _ -> Alcotest.fail "expected Extend"

let test_backward_detection_can_be_disabled () =
  let p = predictor ~detect_backward:false () in
  ignore (SP.on_fault p 10);
  match SP.on_fault p 9 with
  | SP.New_stream _ -> ()
  | _ -> Alcotest.fail "descending fault must open a new stream"

let test_direction_locks () =
  let p = predictor () in
  ignore (SP.on_fault p 10);
  ignore (SP.on_fault p 11);
  (* Once ascending, 10 is not sequential any more. *)
  match SP.on_fault p 10 with
  | SP.New_stream _ -> ()
  | _ -> Alcotest.fail "locked direction must not re-extend backwards"

let test_predictions_clamped_at_zero () =
  let p = predictor () in
  ignore (SP.on_fault p 2);
  match SP.on_fault p 1 with
  | SP.Extend { predict; _ } ->
    Alcotest.(check (list int)) "no negative pages" [ 0 ] predict
  | _ -> Alcotest.fail "expected Extend"

let test_lru_replacement () =
  let p = predictor ~len:2 () in
  ignore (SP.on_fault p 10);
  ignore (SP.on_fault p 50);
  (match SP.on_fault p 90 with
  | SP.New_stream { replaced = Some dead; _ } -> checki "LRU evicted" 10 dead.stpn
  | _ -> Alcotest.fail "expected replacement");
  checki "bounded" 2 (List.length (SP.streams p))

let test_hit_promotes_stream () =
  let p = predictor ~len:2 () in
  ignore (SP.on_fault p 10);
  ignore (SP.on_fault p 50);
  (* Extending the older stream must move it to the head: the next
     replacement victim is then 50, not 10's stream. *)
  ignore (SP.on_fault p 11);
  match SP.on_fault p 90 with
  | SP.New_stream { replaced = Some dead; _ } -> checki "newer got evicted" 50 dead.stpn
  | _ -> Alcotest.fail "expected replacement"

let test_restart_within_pending_window () =
  let p = predictor () in
  ignore (SP.on_fault p 1);
  let stream, _ =
    match SP.on_fault p 2 with
    | SP.Extend { stream; predict } ->
      SP.set_pending stream predict;
      (stream, predict)
    | _ -> Alcotest.fail "expected Extend"
  in
  (* The paper's example: the fault skips to page 5 while 3..6 are still
     pending -> abort them, restart the stream at 5. *)
  match SP.on_fault p 5 with
  | SP.Restart_within { stream = s; abort } ->
    checkb "same stream" true (s == stream);
    Alcotest.(check (list int)) "aborts the window" [ 3; 4; 5; 6 ] abort;
    checki "restarted at the fault" 5 s.stpn;
    checki "direction reset" 0 s.dir;
    Alcotest.(check (list int)) "pending cleared" [] s.pending
  | _ -> Alcotest.fail "expected Restart_within"

let test_restarted_stream_can_extend_again () =
  let p = predictor () in
  ignore (SP.on_fault p 1);
  (match SP.on_fault p 2 with
  | SP.Extend { stream; predict } -> SP.set_pending stream predict
  | _ -> Alcotest.fail "expected Extend");
  ignore (SP.on_fault p 5);
  match SP.on_fault p 6 with
  | SP.Extend { predict; _ } ->
    Alcotest.(check (list int)) "resumes from the restart" [ 7; 8; 9; 10 ] predict
  | _ -> Alcotest.fail "expected Extend"

let test_interleaved_streams_both_tracked () =
  let p = predictor ~len:4 () in
  ignore (SP.on_fault p 100);
  ignore (SP.on_fault p 200);
  (* Faults alternate between two sequential regions; both must extend. *)
  let ok = ref true in
  List.iter
    (fun npn ->
      match SP.on_fault p npn with SP.Extend _ -> () | _ -> ok := false)
    [ 101; 201; 102; 202; 103; 203 ];
  checkb "multi-stream" true !ok

let test_reset () =
  let p = predictor () in
  ignore (SP.on_fault p 1);
  SP.reset p;
  checki "empty" 0 (List.length (SP.streams p))

let test_create_validation () =
  Alcotest.check_raises "bad list length"
    (Invalid_argument "Stream_predictor.create: stream_list_length must be positive")
    (fun () -> ignore (SP.create ~stream_list_length:0 ~load_length:4 ()));
  Alcotest.check_raises "bad load length"
    (Invalid_argument "Stream_predictor.create: load_length must be positive")
    (fun () -> ignore (SP.create ~stream_list_length:4 ~load_length:0 ()))

let predictor_qcheck =
  [
    QCheck2.Test.make ~name:"stream list never exceeds its capacity" ~count:200
      QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 100) (int_range 0 200)))
      (fun (len, faults) ->
        let p = predictor ~len () in
        List.iter (fun f -> ignore (SP.on_fault p f)) faults;
        List.length (SP.streams p) <= len);
    QCheck2.Test.make ~name:"predictions never include the faulted page" ~count:200
      QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 100))
      (fun faults ->
        let p = predictor () in
        List.for_all
          (fun f ->
            match SP.on_fault p f with
            | SP.Extend { predict; _ } -> not (List.mem f predict)
            | _ -> true)
          faults);
    QCheck2.Test.make ~name:"predictions are contiguous from the fault" ~count:200
      QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 100))
      (fun faults ->
        let p = predictor () in
        List.for_all
          (fun f ->
            match SP.on_fault p f with
            | SP.Extend { stream; predict } ->
              let dir = stream.dir in
              List.for_all2
                (fun i pred -> pred = f + (dir * (i + 1)))
                (List.init (List.length predict) Fun.id)
                predict
            | _ -> true)
          faults);
  ]

(* ------------------------------------------------------------------ *)
(* Page LRU                                                            *)
(* ------------------------------------------------------------------ *)

let test_page_lru_eviction () =
  let l = Page_lru.create ~capacity:2 in
  checkb "miss" false (Page_lru.touch l 1);
  checkb "miss" false (Page_lru.touch l 2);
  checkb "hit" true (Page_lru.touch l 1);
  (* 2 is now the LRU. *)
  ignore (Page_lru.touch l 3);
  checkb "evicted lru" false (Page_lru.mem l 2);
  checkb "kept recent" true (Page_lru.mem l 1);
  checki "size" 2 (Page_lru.size l)

let test_page_lru_clear () =
  let l = Page_lru.create ~capacity:4 in
  ignore (Page_lru.touch l 1);
  Page_lru.clear l;
  checki "empty" 0 (Page_lru.size l);
  checkb "gone" false (Page_lru.mem l 1)

let page_lru_qcheck =
  [
    QCheck2.Test.make ~name:"size never exceeds capacity" ~count:200
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 1 300) (int_range 0 64)))
      (fun (cap, touches) ->
        let l = Page_lru.create ~capacity:cap in
        List.iter (fun p -> ignore (Page_lru.touch l p)) touches;
        Page_lru.size l <= cap);
    QCheck2.Test.make ~name:"most recent touch is always in" ~count:200
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 1 100) (int_range 0 64)))
      (fun (cap, touches) ->
        let l = Page_lru.create ~capacity:cap in
        List.iter (fun p -> ignore (Page_lru.touch l p)) touches;
        match List.rev touches with [] -> true | last :: _ -> Page_lru.mem l last);
  ]

(* ------------------------------------------------------------------ *)
(* SIP profiler                                                        *)
(* ------------------------------------------------------------------ *)

let profile_of_pattern ?(residency = 64) pattern =
  let trace =
    Workload.Trace.make ~name:"t" ~elrange_pages:100_000 ~footprint_pages:1
      ~seed:5 ~sites:[] pattern
  in
  Profiler.profile
    { Profiler.stream_list_length = 8; load_length = 4; residency_pages = residency }
    trace

let test_profiler_sequential_is_class2 () =
  let profile =
    profile_of_pattern
      (Workload.Pattern.sequential ~site:0 ~base:0 ~pages:200 ~events_per_page:1
         ~compute:0 ~jitter:0.0)
  in
  let counts = Option.get (Profiler.site_counts profile 0) in
  (* First touch opens the stream (Class 3); every subsequent page
     extends it (Class 2). *)
  checki "one opener" 1 counts.c3;
  checki "rest extend" 199 counts.c2

let test_profiler_repeated_touches_are_class1 () =
  let profile =
    profile_of_pattern
      (Workload.Pattern.sequential ~site:0 ~base:0 ~pages:50 ~events_per_page:4
         ~compute:0 ~jitter:0.0)
  in
  let counts = Option.get (Profiler.site_counts profile 0) in
  (* 3 of every 4 touches hit the residency set. *)
  checki "class1" 150 counts.c1;
  checki "class2" 49 counts.c2;
  checki "class3" 1 counts.c3

let test_profiler_random_is_class3 () =
  let profile =
    profile_of_pattern ~residency:16
      (Workload.Pattern.uniform_random ~site:0 ~base:0 ~pages:50_000 ~events:400
         ~compute:0 ~jitter:0.0)
  in
  let counts = Option.get (Profiler.site_counts profile 0) in
  checkb "overwhelmingly irregular" true
    (Profiler.irregular_ratio counts > 0.9);
  checki "all classified" 400 (counts.c1 + counts.c2 + counts.c3)

let test_profiler_totals_and_sites () =
  let pattern =
    Workload.Pattern.seq_list
      [
        Workload.Pattern.sequential ~site:1 ~base:0 ~pages:10 ~events_per_page:1
          ~compute:0 ~jitter:0.0;
        Workload.Pattern.sequential ~site:2 ~base:100 ~pages:10 ~events_per_page:1
          ~compute:0 ~jitter:0.0;
      ]
  in
  let profile = profile_of_pattern pattern in
  checki "two sites" 2 (List.length (Profiler.sites profile));
  let totals = Profiler.totals profile in
  checki "accesses" 20 (totals.c1 + totals.c2 + totals.c3);
  checki "total counter" 20 profile.total_accesses

let test_profiler_records_input () =
  let trace =
    Workload.Trace.make ~name:"t" ~elrange_pages:100 ~footprint_pages:1 ~seed:5
      ~sites:[]
      (Workload.Pattern.sequential ~site:0 ~base:0 ~pages:10 ~events_per_page:1
         ~compute:0 ~jitter:0.0)
  in
  let config =
    { Profiler.stream_list_length = 8; load_length = 4; residency_pages = 64 }
  in
  (* The profiled input names the plan's provenance in reports and saved
     plan files; it used to be hardcoded to "". *)
  let profile = Profiler.profile ~input:"train" config trace in
  Alcotest.(check string) "input recorded" "train" profile.Profiler.input;
  Alcotest.(check string) "workload recorded" "t" profile.Profiler.workload;
  let default = Profiler.profile config trace in
  Alcotest.(check string) "default stays empty" "" default.Profiler.input

let test_classify_one_steps () =
  let predictor = predictor ~len:4 () in
  let cache = Page_lru.create ~capacity:8 in
  let cls = Profiler.classify_one predictor cache ~load_length:4 in
  checkb "first sight irregular" true (cls 10 = Profiler.Class3);
  checkb "revisit is class1" true (cls 10 = Profiler.Class1);
  checkb "next page is class2" true (cls 11 = Profiler.Class2);
  checkb "within load-length window is class2" true (cls 14 = Profiler.Class2)

(* ------------------------------------------------------------------ *)
(* SIP instrumenter                                                    *)
(* ------------------------------------------------------------------ *)

let mk_profile specs =
  let t =
    {
      Profiler.workload = "synthetic";
      input = "train";
      config = { Profiler.stream_list_length = 8; load_length = 4; residency_pages = 8 };
      per_site = Hashtbl.create 8;
      total_accesses = 0;
    }
  in
  List.iter
    (fun (site, c1, c2, c3) ->
      Hashtbl.add t.Profiler.per_site site { Profiler.c1; c2; c3 };
      t.total_accesses <- t.total_accesses + c1 + c2 + c3)
    specs;
  t

let test_instrumenter_threshold () =
  let profile = mk_profile [ (0, 96, 0, 4); (1, 50, 0, 50); (2, 100, 0, 0) ] in
  let plan = Instrumenter.plan_of_profile ~threshold:0.05 profile in
  Alcotest.(check (list int)) "only the irregular site" [ 1 ]
    (Instrumenter.instrumented_sites plan);
  checki "points" 1 (Instrumenter.instrumentation_points plan)

let test_instrumenter_threshold_boundary () =
  (* ratio exactly at the threshold counts as instrumented (>=). *)
  let profile = mk_profile [ (0, 95, 0, 5) ] in
  let plan = Instrumenter.plan_of_profile ~threshold:0.05 profile in
  checki "boundary included" 1 (Instrumenter.instrumentation_points plan)

let test_instrumenter_predicate_matches_list () =
  let profile = mk_profile [ (3, 0, 0, 10); (7, 10, 0, 0); (9, 5, 0, 5) ] in
  let plan = Instrumenter.plan_of_profile profile in
  let pred = Instrumenter.site_predicate plan in
  List.iter
    (fun site ->
      checkb
        (Printf.sprintf "site %d" site)
        (Instrumenter.is_instrumented plan site)
        (pred site))
    [ 0; 3; 7; 9 ]

let test_instrumenter_empty_plan () =
  let plan = Instrumenter.empty_plan ~workload:"x" in
  checki "no points" 0 (Instrumenter.instrumentation_points plan);
  checkb "nothing instrumented" false (Instrumenter.is_instrumented plan 0)

let test_default_threshold_is_paper () =
  Alcotest.(check (float 1e-9)) "5%" 0.05 Instrumenter.default_threshold

(* ------------------------------------------------------------------ *)
(* Plan IO                                                             *)
(* ------------------------------------------------------------------ *)

let test_plan_io_roundtrip () =
  let profile = mk_profile [ (0, 96, 0, 4); (1, 50, 0, 50); (7, 100, 3, 0) ] in
  let plan = Instrumenter.plan_of_profile ~threshold:0.05 profile in
  let path = Filename.temp_file "sgx_preload_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Preload.Plan_io.save plan ~path;
      let loaded = Preload.Plan_io.load ~path in
      Alcotest.(check string) "workload" plan.workload loaded.workload;
      Alcotest.(check (float 1e-6)) "threshold" plan.threshold loaded.threshold;
      checki "decisions" (List.length plan.decisions) (List.length loaded.decisions);
      Alcotest.(check (list int)) "instrumented sites survive"
        (Instrumenter.instrumented_sites plan)
        (Instrumenter.instrumented_sites loaded);
      List.iter2
        (fun (a : Instrumenter.decision) (b : Instrumenter.decision) ->
          checki "site" a.site b.site;
          checki "c1" a.counts.c1 b.counts.c1;
          checki "c3" a.counts.c3 b.counts.c3)
        plan.decisions loaded.decisions)

let test_plan_io_rejects_garbage () =
  let path = Filename.temp_file "sgx_preload_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "bogus\n";
      close_out oc;
      checkb "load fails" true
        (try
           ignore (Preload.Plan_io.load ~path);
           false
         with Failure _ -> true))

let plan_load_error content =
  let path = Filename.temp_file "sgx_preload_test" ".plan" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      match Preload.Plan_io.load ~path with
      | _ -> Alcotest.fail "expected Plan_io.load to fail"
      | exception Failure msg -> msg)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let plan_header = "# sgx-preload plan v1\n"

let test_plan_io_error_messages_not_masked () =
  (* Regression: like Trace_io, the loader's [Failure _] catch-all used
     to swallow its own diagnostics and report everything as "malformed
     field". *)
  checkb "unrecognised line named as such" true
    (contains
       (plan_load_error (plan_header ^ "workload w\nthreshold 0.05\njunk\n"))
       "unrecognised line");
  checkb "bad int names the field" true
    (contains
       (plan_load_error
          (plan_header ^ "workload w\nthreshold 0.05\ns 1 a 0 0 1\n"))
       "malformed c1 field");
  checkb "bad threshold named" true
    (contains
       (plan_load_error (plan_header ^ "workload w\nthreshold high\n"))
       "malformed threshold field")

let test_plan_io_duplicate_and_missing () =
  checkb "duplicate site rejected" true
    (contains
       (plan_load_error
          (plan_header
         ^ "workload w\nthreshold 0.05\ns 3 1 0 0 1\ns 3 2 0 0 0\n"))
       "duplicate site 3");
  checkb "duplicate workload rejected" true
    (contains
       (plan_load_error (plan_header ^ "workload a\nworkload b\nthreshold 0.05\n"))
       "duplicate workload line");
  checkb "duplicate threshold rejected" true
    (contains
       (plan_load_error
          (plan_header ^ "workload w\nthreshold 0.05\nthreshold 0.1\n"))
       "duplicate threshold line");
  checkb "missing workload rejected" true
    (contains (plan_load_error (plan_header ^ "threshold 0.05\n"))
       "missing workload line");
  checkb "missing threshold rejected" true
    (contains (plan_load_error (plan_header ^ "workload w\n"))
       "missing threshold line")

(* ------------------------------------------------------------------ *)
(* DFP attached to an enclave                                          *)
(* ------------------------------------------------------------------ *)

let test_dfp_preloads_on_stream () =
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:64 () in
  let dfp = Dfp.attach e Dfp.default_config in
  let now = ref 0 in
  (* Sequential walk with compute gaps large enough to hide loads. *)
  for p = 0 to 15 do
    now := Enclave.compute e ~now:!now 60_000;
    now := Enclave.access e ~now:!now p
  done;
  Enclave.sync e ~now:!now;
  let m = Enclave.metrics e in
  checkb "preloads eliminated most faults" true (m.faults < 8);
  checkb "completed some preloads" true (m.preloads_completed > 6);
  let acc, total = Dfp.counters dfp in
  checkb "counters move" true (total > 0);
  checkb "hits harvested after scans" true (acc >= 0)

let test_dfp_stop_fires_on_garbage () =
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:4096 () in
  let dfp = Dfp.attach e { (Dfp.with_stop Dfp.default_config) with stop_margin = 5 } in
  let prng = Repro_util.Prng.create 17 in
  let now = ref 0 in
  (* Adjacent fault pairs at random positions: streams open, predictions
     never hit.  The safety valve must fire. *)
  for _ = 1 to 400 do
    let base = Repro_util.Prng.int prng 4000 in
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now base;
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now (base + 1)
  done;
  Enclave.sync e ~now:!now;
  checkb "stopped" true (Dfp.stopped dfp)

let test_dfp_stop_stays_off_on_streams () =
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:8192 () in
  let dfp = Dfp.attach e { (Dfp.with_stop Dfp.default_config) with stop_margin = 5 } in
  let now = ref 0 in
  for p = 0 to 2000 do
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now p
  done;
  Enclave.sync e ~now:!now;
  checkb "accurate preloading keeps running" false (Dfp.stopped dfp)

(* §4.2 semantics locks: the stop decision in isolation, what the
   counters actually count, and the one-way/cumulative behaviour. *)

let test_dfp_should_stop_boundary () =
  let cfg = { (Dfp.with_stop Dfp.default_config) with stop_margin = 10 } in
  (* Strict inequality: acc + margin = completed/2 does not fire. *)
  checkb "at boundary holds" false (Dfp.should_stop cfg ~acc:40 ~completed:100);
  checkb "one below fires" true (Dfp.should_stop cfg ~acc:39 ~completed:100);
  (* completed/2 is integer floor: 101/2 = 50, same threshold as 100. *)
  checkb "odd completed floors" false (Dfp.should_stop cfg ~acc:40 ~completed:101);
  checkb "floor crossed at 102" true (Dfp.should_stop cfg ~acc:40 ~completed:102);
  (* Early in the run the margin alone keeps DFP alive. *)
  checkb "margin covers cold start" false (Dfp.should_stop cfg ~acc:0 ~completed:20);
  (* Disabled config never stops, however bad the accuracy. *)
  checkb "disabled never fires" false
    (Dfp.should_stop Dfp.default_config ~acc:0 ~completed:1_000_000)

let test_dfp_counters_track_completed_not_issued () =
  (* Abort-heavy run: random adjacent fault pairs open streams whose
     windows are mostly aborted when the stream list recycles.  The
     PreloadCounter must equal preloads_completed — NOT preloads_issued —
     and the AccPreloadCounter must equal the harvested preload_hits. *)
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:4096 () in
  let dfp = Dfp.attach e Dfp.default_config in
  let prng = Repro_util.Prng.create 23 in
  let now = ref 0 in
  for _ = 1 to 300 do
    let base = Repro_util.Prng.int prng 4000 in
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now base;
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now (base + 1)
  done;
  Enclave.sync e ~now:!now;
  let m = Enclave.metrics e in
  let acc, total = Dfp.counters dfp in
  checkb "run is abort-heavy" true (m.preloads_issued > m.preloads_completed);
  checki "PreloadCounter = completed" m.preloads_completed total;
  checki "AccPreloadCounter = hits" m.preload_hits acc

let test_dfp_stop_is_one_way () =
  (* Once fired, the stop survives a later perfectly accurate phase: the
     counters are cumulative, never reset, and no preloads are issued
     after the valve closes. *)
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:8192 () in
  let dfp = Dfp.attach e { (Dfp.with_stop Dfp.default_config) with stop_margin = 5 } in
  let prng = Repro_util.Prng.create 17 in
  let now = ref 0 in
  for _ = 1 to 400 do
    let base = Repro_util.Prng.int prng 4000 in
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now base;
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now (base + 1)
  done;
  Enclave.sync e ~now:!now;
  checkb "valve fired on garbage" true (Dfp.stopped dfp);
  let issued_at_stop = (Enclave.metrics e).preloads_issued in
  (* Long sequential phase that plain DFP would eat with preloads. *)
  for p = 4096 to 6096 do
    now := Enclave.compute e ~now:!now 50_000;
    now := Enclave.access e ~now:!now p
  done;
  Enclave.sync e ~now:!now;
  checkb "still stopped after accurate phase" true (Dfp.stopped dfp);
  checki "no preloads issued after stop" issued_at_stop
    (Enclave.metrics e).preloads_issued

let test_dfp_steady_state_bound () =
  (* With ample compute between pages, DFP's steady state on an endless
     scan is exactly 1 fault per LOADLENGTH+1 pages (§4.1). *)
  let pages = 500 in
  let e = Enclave.create ~epc_pages:64 ~elrange_pages:pages () in
  ignore (Dfp.attach e Dfp.default_config);
  let now = ref 0 in
  for p = 0 to pages - 1 do
    now := Enclave.compute e ~now:!now 100_000;
    now := Enclave.access e ~now:!now p
  done;
  Enclave.sync e ~now:!now;
  let faults = Sgxsim.Metrics.total_faults (Enclave.metrics e) in
  let expected = pages / (Dfp.default_config.load_length + 1) in
  checkb "within 5% of the L/(L+1) bound" true
    (abs (faults - expected) <= (expected / 20) + 2)

let test_window_fault_extends_stream () =
  (* Steady state from the predictor's view: the next fault of a live
     stream lands LOADLENGTH+1 past the tail and must extend, not open a
     new stream. *)
  let p = predictor () in
  ignore (SP.on_fault p 10);
  ignore (SP.on_fault p 11);
  match SP.on_fault p 16 with
  | SP.Extend { stream; predict } ->
    checki "tail jumps to the fault" 16 stream.stpn;
    Alcotest.(check (list int)) "predicts onward" [ 17; 18; 19; 20 ] predict
  | _ -> Alcotest.fail "window fault must extend"

let test_beyond_window_opens_new_stream () =
  let p = predictor () in
  ignore (SP.on_fault p 10);
  ignore (SP.on_fault p 11);
  (* LOADLENGTH+2 past the tail is outside the window. *)
  match SP.on_fault p 17 with
  | SP.New_stream _ -> ()
  | _ -> Alcotest.fail "beyond the window is a new stream"

let test_pending_beats_window () =
  (* A fault inside a window whose preloads are still queued is a skip
     (restart), even though the distance alone would say extend. *)
  let p = predictor () in
  ignore (SP.on_fault p 1);
  (match SP.on_fault p 2 with
  | SP.Extend { stream; predict } -> SP.set_pending stream predict
  | _ -> Alcotest.fail "expected Extend");
  match SP.on_fault p 4 with
  | SP.Restart_within _ -> ()
  | _ -> Alcotest.fail "pending check must run before the window check"

let test_dfp_per_thread_lists () =
  let e = Enclave.create ~epc_pages:32 ~elrange_pages:4096 () in
  let dfp = Dfp.attach e Dfp.default_config in
  let now = ref 0 in
  (* Two threads, each with its own sequential stream, interleaved. *)
  for i = 0 to 9 do
    now := Enclave.compute e ~now:!now 60_000;
    now := Enclave.access ~thread:1 e ~now:!now (100 + i);
    now := Enclave.compute e ~now:!now 60_000;
    now := Enclave.access ~thread:2 e ~now:!now (2000 + i)
  done;
  checki "one list per thread" 2 (Dfp.thread_count dfp);
  let tails p =
    List.map (fun (s : SP.stream) -> s.stpn) (SP.streams (Dfp.predictor_for dfp p))
  in
  checkb "thread 1's list tracks its own stream" true
    (List.exists (fun t -> t >= 100 && t < 120) (tails 1));
  checkb "thread 2's list tracks its own stream" true
    (List.exists (fun t -> t >= 2000 && t < 2020) (tails 2))

let test_dfp_shared_list_mode () =
  let e = Enclave.create ~epc_pages:32 ~elrange_pages:4096 () in
  let dfp = Dfp.attach e { Dfp.default_config with per_thread = false } in
  let now = ref 0 in
  for i = 0 to 5 do
    now := Enclave.access ~thread:7 e ~now:!now (100 + i);
    now := Enclave.access ~thread:8 e ~now:!now (2000 + i)
  done;
  checki "single shared list" 1 (Dfp.thread_count dfp)

let test_dfp_config_helpers () =
  checkb "default has no stop" false Dfp.default_config.stop_enabled;
  checkb "with_stop enables" true (Dfp.with_stop Dfp.default_config).stop_enabled;
  checki "paper list length" 30 Dfp.default_config.stream_list_length;
  checki "paper load length" 4 Dfp.default_config.load_length

(* ------------------------------------------------------------------ *)
(* Ablation prefetchers                                                *)
(* ------------------------------------------------------------------ *)

let test_next_line_preloads () =
  let e = Enclave.create ~epc_pages:16 ~elrange_pages:64 () in
  let b = Preload.Prefetch_baselines.attach_next_line e ~degree:2 in
  Alcotest.(check string) "name" "next-line(2)" (Preload.Prefetch_baselines.name b);
  let t = Enclave.access e ~now:0 10 in
  Enclave.sync e ~now:(t + 200_000);
  checkb "p+1 preloaded" true (Enclave.page_present e 11);
  checkb "p+2 preloaded" true (Enclave.page_present e 12);
  checkb "p+3 not requested" false (Enclave.page_present e 13)

let test_stride_detects_constant_delta () =
  let e = Enclave.create ~epc_pages:32 ~elrange_pages:256 () in
  ignore (Preload.Prefetch_baselines.attach_stride e ~degree:2);
  let now = ref 0 in
  List.iter
    (fun p ->
      now := Enclave.compute e ~now:!now 200_000;
      now := Enclave.access e ~now:!now p)
    [ 10; 17; 24 ];
  (* Two consecutive deltas of 7: pages 31 and 38 should be queued. *)
  Enclave.sync e ~now:(!now + 400_000);
  checkb "stride+1" true (Enclave.page_present e 31);
  checkb "stride+2" true (Enclave.page_present e 38)

let test_markov_learns_repeated_sequence () =
  let e = Enclave.create ~epc_pages:8 ~elrange_pages:256 () in
  let b = Preload.Prefetch_baselines.attach_markov e ~table_pages:64 ~degree:2 in
  Alcotest.(check string) "name" "markov(64,2)" (Preload.Prefetch_baselines.name b);
  let now = ref 0 in
  let visit pages =
    List.iter
      (fun p ->
        now := Enclave.compute e ~now:!now 200_000;
        now := Enclave.access e ~now:!now p)
      pages
  in
  (* First pass teaches 10 -> 20 -> 30; the pages then get evicted by a
     filler walk; the second pass replays the chain, so after re-faulting
     on 10 the table preloads 20. *)
  visit [ 10; 20; 30 ];
  visit [ 100; 101; 102; 103; 104; 105; 106; 107; 108 ];
  now := Enclave.access e ~now:!now 10;
  Enclave.sync e ~now:(!now + 400_000);
  checkb "successor preloaded" true (Enclave.page_present e 20)

let test_markov_validation () =
  let e = Enclave.create ~epc_pages:8 ~elrange_pages:16 () in
  Alcotest.check_raises "degree" (Invalid_argument "attach_markov: degree must be positive")
    (fun () -> ignore (Preload.Prefetch_baselines.attach_markov e ~table_pages:8 ~degree:0));
  Alcotest.check_raises "table"
    (Invalid_argument "attach_markov: table_pages must be positive") (fun () ->
      ignore (Preload.Prefetch_baselines.attach_markov e ~table_pages:0 ~degree:2))

let test_stride_ignores_irregular () =
  let e = Enclave.create ~epc_pages:32 ~elrange_pages:256 () in
  ignore (Preload.Prefetch_baselines.attach_stride e ~degree:2);
  let now = ref 0 in
  List.iter
    (fun p ->
      now := Enclave.compute e ~now:!now 200_000;
      now := Enclave.access e ~now:!now p)
    [ 10; 30; 90 ];
  Enclave.sync e ~now:(!now + 400_000);
  checki "no speculative loads" 0 (Enclave.metrics e).preloads_issued

(* ------------------------------------------------------------------ *)
(* Scheme                                                              *)
(* ------------------------------------------------------------------ *)

let test_scheme_names () =
  Alcotest.(check string) "baseline" "baseline" (Scheme.name Scheme.Baseline);
  Alcotest.(check string) "dfp" "DFP" (Scheme.name Scheme.dfp_default);
  Alcotest.(check string) "dfp-stop" "DFP-stop" (Scheme.name Scheme.dfp_stop);
  Alcotest.(check string) "sip" "SIP"
    (Scheme.name (Scheme.Sip (Instrumenter.empty_plan ~workload:"x")));
  Alcotest.(check string) "hybrid" "SIP+DFP-stop"
    (Scheme.name
       (Scheme.Hybrid
          (Dfp.with_stop Dfp.default_config, Instrumenter.empty_plan ~workload:"x")))

let test_scheme_sip_plan () =
  let plan = Instrumenter.empty_plan ~workload:"x" in
  checkb "sip has plan" true (Scheme.sip_plan (Scheme.Sip plan) <> None);
  checkb "dfp has none" true (Scheme.sip_plan Scheme.dfp_default = None);
  checkb "uses_sip" true (Scheme.uses_sip (Scheme.Sip plan));
  checkb "baseline does not" false (Scheme.uses_sip Scheme.Baseline)

let test_scheme_name_roundtrip () =
  let plan () = Instrumenter.empty_plan ~workload:"rt" in
  List.iter
    (fun s ->
      match Scheme.of_string ~plan (Scheme.name s) with
      | Ok s' ->
        Alcotest.(check string)
          "of_string (name s) re-derives s" (Scheme.name s) (Scheme.name s')
      | Error msg -> Alcotest.fail msg)
    [
      Scheme.Baseline;
      Scheme.Native;
      Scheme.dfp_default;
      Scheme.dfp_stop;
      Scheme.Sip (plan ());
      Scheme.Hybrid (Dfp.default_config, plan ());
      Scheme.Hybrid (Dfp.with_stop Dfp.default_config, plan ());
      Scheme.next_line ~degree:4;
      Scheme.stride ~degree:2;
      Scheme.markov ~table_pages:512 ~degree:3;
    ]

let test_scheme_of_string_spellings () =
  (* The parameterised variants carry only ints, so structural equality
     is safe here (no plan closures involved). *)
  checkb "colon next-line" true
    (Scheme.of_string "next-line:3" = Ok (Scheme.next_line ~degree:3));
  checkb "colon stride" true
    (Scheme.of_string "stride:2" = Ok (Scheme.stride ~degree:2));
  checkb "colon markov" true
    (Scheme.of_string "markov:64,2"
    = Ok (Scheme.markov ~table_pages:64 ~degree:2));
  checkb "paren markov with spaces" true
    (Scheme.of_string "markov(64, 2)"
    = Ok (Scheme.markov ~table_pages:64 ~degree:2));
  checkb "case-insensitive" true
    (Scheme.of_string "BASELINE" = Ok Scheme.Baseline);
  checkb "hybrid alias" true
    (match
       Scheme.of_string
         ~plan:(fun () -> Instrumenter.empty_plan ~workload:"x")
         "hybrid"
     with
    | Ok s -> Scheme.name s = "SIP+DFP-stop"
    | Error _ -> false)

let test_scheme_of_string_errors () =
  let err s =
    match Scheme.of_string s with
    | Error msg -> msg
    | Ok _ -> Alcotest.fail (Printf.sprintf "parsed %S" s)
  in
  let mentions label needle msg =
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    checkb
      (Printf.sprintf "%s: %S mentions %S" label msg needle)
      true (contains msg needle)
  in
  mentions "unknown" "unknown scheme" (err "frobnicate");
  mentions "plan needed" "needs an instrumentation plan" (err "sip");
  mentions "plan needed (hybrid)" "needs an instrumentation plan"
    (err "sip+dfp-stop");
  mentions "malformed" "malformed parameter" (err "stride:x");
  mentions "range" ">= 1" (err "next-line(0)");
  mentions "arity" "takes 2 parameter" (err "markov:4");
  mentions "arity (paren)" "takes 1 parameter" (err "stride(2,3)");
  Alcotest.check_raises "constructor validates"
    (Invalid_argument "Scheme.next_line: degree must be >= 1") (fun () ->
      ignore (Scheme.next_line ~degree:0));
  Alcotest.check_raises "markov validates"
    (Invalid_argument "Scheme.markov: table_pages must be >= 1") (fun () ->
      ignore (Scheme.markov ~table_pages:0 ~degree:1))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "preload-core"
    [
      ( "stream_predictor",
        [
          tc "first fault opens stream" test_first_fault_opens_stream;
          tc "sequential extends" test_sequential_fault_extends;
          tc "descending detected" test_descending_stream_detected;
          tc "backward can be disabled" test_backward_detection_can_be_disabled;
          tc "direction locks" test_direction_locks;
          tc "clamped at zero" test_predictions_clamped_at_zero;
          tc "LRU replacement" test_lru_replacement;
          tc "hit promotes" test_hit_promotes_stream;
          tc "restart within window" test_restart_within_pending_window;
          tc "restart then extend" test_restarted_stream_can_extend_again;
          tc "window fault extends" test_window_fault_extends_stream;
          tc "beyond window is new" test_beyond_window_opens_new_stream;
          tc "pending beats window" test_pending_beats_window;
          tc "interleaved streams" test_interleaved_streams_both_tracked;
          tc "reset" test_reset;
          tc "create validation" test_create_validation;
        ]
        @ props predictor_qcheck );
      ( "page_lru",
        [ tc "eviction" test_page_lru_eviction; tc "clear" test_page_lru_clear ]
        @ props page_lru_qcheck );
      ( "sip_profiler",
        [
          tc "sequential is class2" test_profiler_sequential_is_class2;
          tc "repeats are class1" test_profiler_repeated_touches_are_class1;
          tc "random is class3" test_profiler_random_is_class3;
          tc "totals and sites" test_profiler_totals_and_sites;
          tc "records input" test_profiler_records_input;
          tc "classify_one steps" test_classify_one_steps;
        ] );
      ( "sip_instrumenter",
        [
          tc "threshold" test_instrumenter_threshold;
          tc "threshold boundary" test_instrumenter_threshold_boundary;
          tc "predicate matches list" test_instrumenter_predicate_matches_list;
          tc "empty plan" test_instrumenter_empty_plan;
          tc "paper threshold" test_default_threshold_is_paper;
        ] );
      ( "plan_io",
        [
          tc "round trip" test_plan_io_roundtrip;
          tc "rejects garbage" test_plan_io_rejects_garbage;
          tc "error messages not masked" test_plan_io_error_messages_not_masked;
          tc "duplicate and missing sections" test_plan_io_duplicate_and_missing;
        ] );
      ( "dfp",
        [
          tc "preloads on stream" test_dfp_preloads_on_stream;
          tc "stop fires on garbage" test_dfp_stop_fires_on_garbage;
          tc "stop stays off on streams" test_dfp_stop_stays_off_on_streams;
          tc "stop boundary semantics" test_dfp_should_stop_boundary;
          tc "counters track completed not issued"
            test_dfp_counters_track_completed_not_issued;
          tc "stop is one-way" test_dfp_stop_is_one_way;
          tc "config helpers" test_dfp_config_helpers;
          tc "steady-state bound" test_dfp_steady_state_bound;
          tc "per-thread lists" test_dfp_per_thread_lists;
          tc "shared list mode" test_dfp_shared_list_mode;
        ] );
      ( "prefetch_baselines",
        [
          tc "next-line preloads" test_next_line_preloads;
          tc "stride detects" test_stride_detects_constant_delta;
          tc "stride ignores irregular" test_stride_ignores_irregular;
          tc "markov learns repeats" test_markov_learns_repeated_sequence;
          tc "markov validation" test_markov_validation;
        ] );
      ( "scheme",
        [
          tc "names" test_scheme_names;
          tc "sip plan" test_scheme_sip_plan;
          tc "name round-trip" test_scheme_name_roundtrip;
          tc "of_string spellings" test_scheme_of_string_spellings;
          tc "of_string errors" test_scheme_of_string_errors;
        ] );
    ]
