(* Behavioural tests of the Enclave facade: exact cycle accounting of
   every fault path, preload flow, demand priority, SIP paths, bitmap
   coherence, and whole-facade invariants under random operation
   sequences. *)

module Enclave = Sgxsim.Enclave
module Cost_model = Sgxsim.Cost_model
module Metrics = Sgxsim.Metrics
module Event = Sgxsim.Event

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let c = Cost_model.paper
(* Shorthands for the paper constants used in the arithmetic below. *)
let aex = c.t_aex
let load = c.t_load
let eresume = c.t_eresume
let evict = c.t_evict
let native = c.t_fault_native
let acc = c.t_access
let bmc = c.t_bitmap_check
let notify = c.t_notify

let make ?(epc = 8) ?(elrange = 64) () = Enclave.create ~epc_pages:epc ~elrange_pages:elrange ()

(* ------------------------------------------------------------------ *)
(* Demand path                                                         *)
(* ------------------------------------------------------------------ *)

let test_cold_fault_cost () =
  let e = make () in
  let t = Enclave.access e ~now:0 5 in
  checki "AEX + load + ERESUME + access" (aex + load + eresume + acc) t;
  let m = Enclave.metrics e in
  checki "one fault" 1 m.faults;
  checki "aex cycles" aex m.cyc_aex;
  checki "eresume cycles" eresume m.cyc_eresume;
  checki "load wait" load m.cyc_load_wait;
  checkb "now resident" true (Enclave.page_present e 5)

let test_hit_cost () =
  let e = make () in
  let t = Enclave.access e ~now:0 5 in
  let t2 = Enclave.access e ~now:t 5 in
  checki "pure access" acc (t2 - t);
  checki "still one fault" 1 (Enclave.metrics e).faults

let test_fault_with_eviction () =
  let e = make ~epc:1 () in
  let t = Enclave.access e ~now:0 0 in
  let t2 = Enclave.access e ~now:t 1 in
  checki "eviction adds EWB time" (aex + evict + load + eresume + acc) (t2 - t);
  checkb "victim evicted" false (Enclave.page_present e 0);
  checkb "new page resident" true (Enclave.page_present e 1);
  checki "one eviction" 1 (Enclave.metrics e).evictions

let test_resident_never_exceeds_epc () =
  let e = make ~epc:4 ~elrange:32 () in
  let now = ref 0 in
  for p = 0 to 31 do
    now := Enclave.access e ~now:!now p;
    checkb "bounded" true (Enclave.resident_count e <= 4)
  done

let test_compute_accounting () =
  let e = make () in
  let t = Enclave.compute e ~now:100 5_000 in
  checki "advances" 5_100 t;
  checki "recorded" 5_000 (Enclave.metrics e).cyc_compute;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Enclave.compute: negative cycles") (fun () ->
      ignore (Enclave.compute e ~now:0 (-1)))

(* ------------------------------------------------------------------ *)
(* Preload flow                                                        *)
(* ------------------------------------------------------------------ *)

let test_preload_completes_asynchronously () =
  let e = make () in
  checkb "queued" true (Enclave.request_preload e ~now:0 7);
  checkb "not yet resident" false (Enclave.page_present e 7);
  Enclave.sync e ~now:(load + 1);
  checkb "resident after load time" true (Enclave.page_present e 7);
  let m = Enclave.metrics e in
  checki "issued" 1 m.preloads_issued;
  checki "completed" 1 m.preloads_completed;
  (* A later access is a pure hit: the fault was avoided entirely. *)
  let t = Enclave.access e ~now:(2 * load) 7 in
  checki "hit" (2 * load + acc) t;
  checki "no faults" 0 (Metrics.total_faults m)

let test_preload_dedup () =
  let e = make () in
  ignore (Enclave.access e ~now:0 3);
  checkb "present page refused" false (Enclave.request_preload e ~now:200_000 3);
  checkb "fresh page accepted" true (Enclave.request_preload e ~now:200_000 4);
  checkb "queued page refused" false (Enclave.request_preload e ~now:200_000 4);
  checkb "out of ELRANGE refused" false (Enclave.request_preload e ~now:200_000 64);
  checkb "negative refused" false (Enclave.request_preload e ~now:200_000 (-1))

let test_preload_rejections_counted () =
  (* Every request lands in exactly one disposition counter:
     requested = issued + rejected_range + rejected_dup. *)
  let e = make () in
  ignore (Enclave.access e ~now:0 3);
  ignore (Enclave.request_preload e ~now:200_000 3);
  (* dup: present *)
  ignore (Enclave.request_preload e ~now:200_000 4);
  (* issued *)
  ignore (Enclave.request_preload e ~now:200_000 4);
  (* dup: queued *)
  ignore (Enclave.request_preload e ~now:200_000 64);
  (* range *)
  ignore (Enclave.request_preload e ~now:200_000 (-1));
  (* range *)
  let m = Enclave.metrics e in
  checki "requested" 5 m.preloads_requested;
  checki "issued" 1 m.preloads_issued;
  checki "rejected out-of-ELRANGE" 2 m.preloads_rejected_range;
  checki "rejected duplicate" 2 m.preloads_rejected_dup;
  checki "disposition identity"
    m.preloads_requested
    (m.preloads_issued + m.preloads_rejected_range + m.preloads_rejected_dup)

let test_preload_of_inflight_refused () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 9);
  (* Force the load to start, then re-request while it is in flight. *)
  Enclave.sync e ~now:10;
  checkb "now in flight" true (Enclave.in_flight e <> None);
  checkb "in-flight refused" false (Enclave.request_preload e ~now:20 9)

let test_fault_waits_for_inflight_preload () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 2);
  (* The preload starts at 0 and finishes at [load].  Faulting at 10
     means AEX ends at 10+aex, and the handler then waits out the
     remainder of the non-preemptible load. *)
  let t = Enclave.access e ~now:10 2 in
  checki "resume right after the load lands" (load + eresume + acc) t;
  let m = Enclave.metrics e in
  checki "counted as in-flight fault" 1 m.faults_in_flight;
  checki "no demand fault" 0 m.faults;
  checki "waited the remainder" (load - (10 + aex)) m.cyc_load_wait

let test_fault_finds_page_already_preloaded () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 2);
  (* Fault raised just before the preload lands: it completes during the
     AEX window, so the handler only fixes the PTE. *)
  let raise_at = load - 100 in
  let t = Enclave.access e ~now:raise_at 2 in
  checki "short handler path" (raise_at + aex + native + eresume + acc) t;
  let m = Enclave.metrics e in
  checki "already-present fault" 1 m.faults_already_present;
  checki "no demand fault" 0 m.faults

let test_demand_waits_for_other_inflight () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  (* Preload of page 1 occupies the channel until [load]; the demand
     fault on page 2 at t=5 drains it first, then loads its own page. *)
  let t = Enclave.access e ~now:5 2 in
  checki "serialized behind the preload" (load + load + eresume + acc) t;
  checkb "preloaded page landed too" true (Enclave.page_present e 1);
  checki "demand fault" 1 (Enclave.metrics e).faults

let test_queue_frozen_during_fault () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  (* Page 1 is in flight; page 2 is queued.  The fault on page 3 must
     claim the channel before queued page 2. *)
  let t = Enclave.access e ~now:5 3 in
  checkb "demand page resident" true (Enclave.page_present e 3);
  (* Page 2's preload only starts after the demand load completes. *)
  checkb "queued preload deferred" false (Enclave.page_present e 2);
  Enclave.sync e ~now:(t + load);
  checkb "then proceeds" true (Enclave.page_present e 2)

let test_demand_takes_over_queued_page () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  (* Fault on the queued (not yet started) page 2: the demand load takes
     it over; it must not be loaded twice. *)
  let (_ : int) = Enclave.access e ~now:5 2 in
  Enclave.sync e ~now:(10 * load);
  let m = Enclave.metrics e in
  checki "only page 1's preload completed" 1 m.preloads_completed;
  checkb "page 2 resident once" true (Enclave.page_present e 2)

let test_abort_pending () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  ignore (Enclave.request_preload e ~now:0 3);
  (* Page 1 starts immediately; 2 and 3 are still queued at t=10. *)
  Enclave.sync e ~now:10;
  checki "two dropped" 2 (Enclave.abort_pending_preloads e ~now:10);
  checki "metric" 2 (Enclave.metrics e).preloads_aborted;
  Enclave.sync e ~now:(3 * load);
  checkb "aborted never load" false (Enclave.page_present e 2);
  checkb "in-flight survived" true (Enclave.page_present e 1)

let test_abort_where () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  ignore (Enclave.request_preload e ~now:0 3);
  Enclave.sync e ~now:10;
  checki "one dropped" 1
    (Enclave.abort_pending_preloads_where e ~now:10 (fun p -> p = 3));
  Alcotest.(check (list int)) "page 2 still queued" [ 2 ] (Enclave.pending_preloads e)

let test_faulting_page_pinned_against_preload_eviction () =
  (* A preload issued from the fault handler must not evict the page the
     handler is about to return to the application (tiny EPC makes the
     race certain without pinning). *)
  let e = make ~epc:2 ~elrange:16 () in
  Enclave.set_on_fault e (fun enc ctx ->
      (* Next-line reaction: on a full EPC this preload needs a victim. *)
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 1)));
  let now = ref 0 in
  (* Fill the EPC, then keep faulting: every fault's handler queues a
     preload whose eviction must never pick the faulting page. *)
  for p = 0 to 9 do
    now := Enclave.access e ~now:!now p;
    checkb "faulted page still resident after handling" true
      (Enclave.page_present e p)
  done

let test_single_frame_epc_stays_safe () =
  (* Capacity 1 is the deadlock candidate: while the handler pins its
     page, the only frame has no victim.  Preloads that would need one
     inside the handler are dropped; preloads starting after the access
     legitimately displace the previous page. *)
  let e = make ~epc:1 ~elrange:16 () in
  Enclave.set_on_fault e (fun enc ctx ->
      (* Two requests: the second one's sync pumps the queue while the
         page is still pinned. *)
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 1));
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 2)));
  let now = ref 0 in
  for p = 0 to 9 do
    now := Enclave.access e ~now:!now p;
    checkb "faulting page never stolen" true (Enclave.page_present e p)
  done;
  Enclave.sync e ~now:!now;
  (* A load may be mid-flight at the end (victim evicted, page not yet
     landed), so residency is 0 or 1 — never above capacity. *)
  checkb "EPC never overfilled" true (Enclave.resident_count e <= 1)

(* ------------------------------------------------------------------ *)
(* Scan and preload-hit harvesting                                     *)
(* ------------------------------------------------------------------ *)

let test_scan_harvests_preload_hits () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 4);
  Enclave.sync e ~now:(load + 1);
  let t = Enclave.access e ~now:(load + 10) 4 in
  (* The hit is only credited when the service scan observes the access
     bit — not at access time. *)
  checki "not yet credited" 0 (Enclave.metrics e).preload_hits;
  Enclave.sync e ~now:(t + c.clock_scan_period);
  checki "credited by the scan" 1 (Enclave.metrics e).preload_hits;
  checkb "scan ran" true ((Enclave.metrics e).scans >= 1)

let test_unused_preload_not_credited () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 4);
  Enclave.sync e ~now:(2 * c.clock_scan_period);
  checki "never accessed, never credited" 0 (Enclave.metrics e).preload_hits

let test_evicted_unused_preload_counted_as_waste () =
  let e = make ~epc:2 ~elrange:16 () in
  ignore (Enclave.request_preload e ~now:0 9);
  Enclave.sync e ~now:(load + 1);
  (* Fill the EPC with demand pages; the unused preloaded page is the
     only cold page, so CLOCK evicts it. *)
  let t = Enclave.access e ~now:(load + 10) 0 in
  let t = Enclave.access e ~now:t 1 in
  ignore t;
  checki "waste counted" 1 (Enclave.metrics e).preload_evicted_unused

let test_on_scan_hook_fires () =
  let e = make () in
  let fired = ref 0 in
  Enclave.set_on_scan e (fun _ _ -> incr fired);
  Enclave.sync e ~now:(3 * c.clock_scan_period);
  checki "three periods, three scans" 3 !fired

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let test_on_fault_context () =
  let e = make () in
  let seen = ref [] in
  Enclave.set_on_fault e (fun _ ctx -> seen := ctx :: !seen);
  ignore (Enclave.access e ~now:100 6);
  match !seen with
  | [ ctx ] ->
    checki "page" 6 ctx.Enclave.fault_vpage;
    checki "raised at call time" 100 ctx.raised_at;
    checki "handled when load done" (100 + aex + load) ctx.handled_at;
    checkb "demand resolution" true (ctx.resolution = Enclave.Demand_load)
  | _ -> Alcotest.fail "expected exactly one fault"

let test_on_fault_can_preload () =
  let e = make () in
  (* A next-line reaction implemented in the hook: faults trigger a
     preload of the following page. *)
  Enclave.set_on_fault e (fun enc ctx ->
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 1)));
  let t = Enclave.access e ~now:0 0 in
  (* Give the preload time to land, then touch page 1: no fault. *)
  let t = Enclave.compute e ~now:t (2 * load) in
  let t = Enclave.access e ~now:t 1 in
  ignore t;
  let m = Enclave.metrics e in
  checki "single demand fault" 1 m.faults;
  checki "preload completed" 1 m.preloads_completed

let test_on_preload_complete_hook () =
  let e = make () in
  let completed = ref [] in
  Enclave.set_on_preload_complete e (fun _ p -> completed := p :: !completed);
  ignore (Enclave.request_preload e ~now:0 11);
  Enclave.sync e ~now:(load + 1);
  Alcotest.(check (list int)) "hook saw the page" [ 11 ] !completed

(* ------------------------------------------------------------------ *)
(* SIP paths                                                           *)
(* ------------------------------------------------------------------ *)

let test_sip_hit_cost () =
  let e = make () in
  ignore (Enclave.access e ~now:0 3);
  let t0 = 1_000_000 in
  let t = Enclave.sip_access e ~now:t0 3 in
  checki "check + access" (bmc + acc) (t - t0);
  let m = Enclave.metrics e in
  checki "check counted" 1 m.sip_checks;
  checki "no notify" 0 m.sip_notifies

let test_sip_miss_cost () =
  let e = make () in
  let t = Enclave.sip_access e ~now:0 3 in
  checki "check + notify + load + access (no AEX/ERESUME)"
    (bmc + notify + load + acc) t;
  let m = Enclave.metrics e in
  checki "notify counted" 1 m.sip_notifies;
  checki "no aex" 0 m.cyc_aex;
  checki "no eresume" 0 m.cyc_eresume;
  checki "no demand fault recorded" 0 m.faults;
  checkb "resident afterwards" true (Enclave.page_present e 3)

let test_sip_cheaper_than_fault () =
  let e1 = make () in
  let fault_cost = Enclave.access e1 ~now:0 0 in
  let e2 = make () in
  let sip_cost = Enclave.sip_access e2 ~now:0 0 in
  checkb "Fig. 4: SIP path beats the fault path" true (sip_cost < fault_cost);
  checki "benefit = AEX + ERESUME - check - notify"
    (aex + eresume - bmc - notify) (fault_cost - sip_cost)

let test_sip_waits_for_inflight () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 2);
  Enclave.sync e ~now:10;
  let t = Enclave.sip_access e ~now:10 2 in
  (* check+notify bring us to 10+bmc+notify; the in-flight load lands at
     [load]; the access follows. *)
  checki "waits out the load" (load + acc) t;
  checki "sip wait recorded" (load - (10 + bmc + notify))
    (Enclave.metrics e).cyc_sip_wait

let test_sip_notify_stamped_at_pickup () =
  (* Regression: the Sip_notify event used to carry the bitmap-check
     time.  The notification is only in the kernel thread's hands
     [t_notify] cycles after the check, and the event must say so. *)
  let e =
    Enclave.create ~log:(Event.make_log ~capacity:64) ~epc_pages:4
      ~elrange_pages:16 ()
  in
  ignore (Enclave.sip_access e ~now:0 3);
  let check_at = ref (-1) and notify_at = ref (-1) in
  List.iter
    (function
      | Event.Sip_check { at; present = false; _ } -> check_at := at
      | Event.Sip_notify { at; _ } -> notify_at := at
      | _ -> ())
    (Enclave.events e);
  checki "check when the bitmap read completes" bmc !check_at;
  checki "notify stamped at kernel-thread pickup, not at the check"
    (bmc + notify) !notify_at

let test_preload_taken_over_counted () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  (* Page 1 is in flight, page 2 still queued: the demand fault takes
     over the queued entry. *)
  ignore (Enclave.access e ~now:5 2);
  Enclave.sync e ~now:(10 * load);
  let m = Enclave.metrics e in
  checki "queued entry taken over" 1 m.preloads_taken_over;
  checki "only page 1's preload completed" 1 m.preloads_completed

let test_sip_takeover_counted () =
  let e = make () in
  ignore (Enclave.request_preload e ~now:0 1);
  ignore (Enclave.request_preload e ~now:0 2);
  ignore (Enclave.sip_access e ~now:5 2);
  Enclave.sync e ~now:(10 * load);
  checki "SIP load takes over the queued entry" 1
    (Enclave.metrics e).preloads_taken_over

let test_preload_skipped_counted () =
  (* The single-frame scenario: preloads queued inside the handler find
     the only frame pinned when they reach the channel and are dropped.
     Those drops must be accounted, not silent. *)
  let e = make ~epc:1 ~elrange:16 () in
  Enclave.set_on_fault e (fun enc ctx ->
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 1));
      ignore (Enclave.request_preload enc ~now:ctx.handled_at (ctx.fault_vpage + 2)));
  let now = ref 0 in
  for p = 0 to 9 do
    now := Enclave.access e ~now:!now p
  done;
  Enclave.sync e ~now:!now;
  let m = Enclave.metrics e in
  checkb "some preloads were skipped" true (m.preloads_skipped > 0);
  let pending = List.length (Enclave.pending_preloads e) in
  let in_flight = match Enclave.in_flight e with Some _ -> 1 | None -> 0 in
  checki "every issued preload has exactly one disposition"
    m.preloads_issued
    (m.preloads_completed + m.preloads_aborted + m.preloads_taken_over
   + m.preloads_skipped + pending + in_flight)

let test_sip_eviction_when_full () =
  let e = make ~epc:1 () in
  ignore (Enclave.sip_access e ~now:0 0);
  let t0 = 200_000 in
  let t = Enclave.sip_access e ~now:t0 1 in
  checki "includes EWB" (bmc + notify + evict + load + acc) (t - t0);
  checkb "victim gone" false (Enclave.page_present e 0)

(* ------------------------------------------------------------------ *)
(* Bitmap coherence                                                    *)
(* ------------------------------------------------------------------ *)

let test_bitmap_tracks_residency () =
  let e = make ~epc:2 ~elrange:16 () in
  checkb "initially clear" false (Enclave.bitmap_present e 5);
  ignore (Enclave.access e ~now:0 5);
  checkb "set on load" true (Enclave.bitmap_present e 5);
  (* Force page 5 out. *)
  let t = Enclave.access e ~now:1_000_000 6 in
  let t = Enclave.access e ~now:t 7 in
  let t = Enclave.access e ~now:t 8 in
  ignore t;
  checkb "cleared on eviction" false (Enclave.bitmap_present e 5)

let test_bitmap_agrees_with_page_table () =
  let e = make ~epc:4 ~elrange:32 () in
  let prng = Repro_util.Prng.create 99 in
  let now = ref 0 in
  for _ = 1 to 200 do
    now := Enclave.access e ~now:!now (Repro_util.Prng.int prng 32)
  done;
  for p = 0 to 31 do
    checkb "bitmap = page table" (Enclave.page_present e p)
      (Enclave.bitmap_present e p)
  done

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let test_event_log_records_fault_sequence () =
  let e =
    Enclave.create ~log:(Event.make_log ~capacity:64) ~epc_pages:4
      ~elrange_pages:16 ()
  in
  ignore (Enclave.access e ~now:0 1);
  let kinds =
    List.map
      (function
        | Event.Fault _ -> "fault"
        | Event.Aex_done _ -> "aex"
        | Event.Load_start _ -> "load"
        | Event.Load_done _ -> "done"
        | Event.Eresume _ -> "eresume"
        | _ -> "other")
      (Enclave.events e)
  in
  Alcotest.(check (list string)) "canonical order"
    [ "fault"; "aex"; "load"; "done"; "eresume" ]
    kinds

let test_event_timestamps_nondecreasing () =
  let e =
    Enclave.create ~log:(Event.make_log ~capacity:256) ~epc_pages:4
      ~elrange_pages:64 ()
  in
  let _dfp = Preload.Dfp.attach e Preload.Dfp.default_config in
  let now = ref 0 in
  for p = 0 to 20 do
    now := Enclave.compute e ~now:!now 30_000;
    now := Enclave.access e ~now:!now p
  done;
  let ats = List.map Event.at (Enclave.events e) in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  checkb "chronological" true (nondecreasing ats)

(* ------------------------------------------------------------------ *)
(* Whole-facade invariants (property tests)                            *)
(* ------------------------------------------------------------------ *)

type op = Access of int | Sip of int | Compute of int | Preload of int | Abort

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (5, map (fun p -> Access p) (int_range 0 31));
        (2, map (fun p -> Sip p) (int_range 0 31));
        (3, map (fun n -> Compute n) (int_range 0 50_000));
        (3, map (fun p -> Preload p) (int_range 0 31));
        (1, return Abort);
      ])

let run_ops ops =
  let e = Enclave.create ~epc_pages:4 ~elrange_pages:32 () in
  let now = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Access p -> now := Enclave.access e ~now:!now p
      | Sip p -> now := Enclave.sip_access e ~now:!now p
      | Compute n -> now := Enclave.compute e ~now:!now n
      | Preload p -> ignore (Enclave.request_preload e ~now:!now p)
      | Abort -> ignore (Enclave.abort_pending_preloads e ~now:!now))
    ops;
  Enclave.sync e ~now:!now;
  (e, !now)

let enclave_qcheck =
  [
    QCheck2.Test.make ~name:"time advanced equals cycles accounted" ~count:150
      QCheck2.Gen.(list_size (int_range 1 120) op_gen)
      (fun ops ->
        let e, now = run_ops ops in
        Metrics.total_cycles (Enclave.metrics e) = now);
    QCheck2.Test.make ~name:"residency bounded by EPC capacity" ~count:150
      QCheck2.Gen.(list_size (int_range 1 120) op_gen)
      (fun ops ->
        let e, _ = run_ops ops in
        Enclave.resident_count e <= Enclave.epc_capacity e);
    QCheck2.Test.make ~name:"accessed pages end up resident or evicted, never lost"
      ~count:150
      QCheck2.Gen.(list_size (int_range 1 120) op_gen)
      (fun ops ->
        let e, _ = run_ops ops in
        (* The bitmap is the OS view; it must agree with the page table
           for every page after a full sync. *)
        List.for_all
          (fun p -> Enclave.page_present e p = Enclave.bitmap_present e p)
          (List.init 32 Fun.id));
    QCheck2.Test.make ~name:"deterministic replay" ~count:60
      QCheck2.Gen.(list_size (int_range 1 80) op_gen)
      (fun ops ->
        let _, n1 = run_ops ops in
        let _, n2 = run_ops ops in
        n1 = n2);
    QCheck2.Test.make
      ~name:"every issued preload has exactly one disposition" ~count:150
      QCheck2.Gen.(list_size (int_range 1 120) op_gen)
      (fun ops ->
        let e, _ = run_ops ops in
        let m = Enclave.metrics e in
        let pending = List.length (Enclave.pending_preloads e) in
        let in_flight = match Enclave.in_flight e with Some _ -> 1 | None -> 0 in
        m.preloads_issued
        = m.preloads_completed + m.preloads_aborted + m.preloads_taken_over
          + m.preloads_skipped + pending + in_flight);
  ]

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "enclave"
    [
      ( "demand path",
        [
          tc "cold fault cost" test_cold_fault_cost;
          tc "hit cost" test_hit_cost;
          tc "fault with eviction" test_fault_with_eviction;
          tc "residency bounded" test_resident_never_exceeds_epc;
          tc "compute accounting" test_compute_accounting;
        ] );
      ( "preload flow",
        [
          tc "completes asynchronously" test_preload_completes_asynchronously;
          tc "dedup" test_preload_dedup;
          tc "rejections counted" test_preload_rejections_counted;
          tc "in-flight refused" test_preload_of_inflight_refused;
          tc "fault waits for in-flight preload" test_fault_waits_for_inflight_preload;
          tc "fault finds page preloaded" test_fault_finds_page_already_preloaded;
          tc "demand waits for other in-flight" test_demand_waits_for_other_inflight;
          tc "queue frozen during fault" test_queue_frozen_during_fault;
          tc "demand takes over queued page" test_demand_takes_over_queued_page;
          tc "abort pending" test_abort_pending;
          tc "abort where" test_abort_where;
          tc "takeover counted" test_preload_taken_over_counted;
          tc "sip takeover counted" test_sip_takeover_counted;
          tc "skipped counted" test_preload_skipped_counted;
          tc "faulting page pinned" test_faulting_page_pinned_against_preload_eviction;
          tc "single-frame EPC stays safe" test_single_frame_epc_stays_safe;
        ] );
      ( "scan",
        [
          tc "harvests preload hits" test_scan_harvests_preload_hits;
          tc "unused preload not credited" test_unused_preload_not_credited;
          tc "evicted unused preload is waste" test_evicted_unused_preload_counted_as_waste;
          tc "on_scan hook" test_on_scan_hook_fires;
        ] );
      ( "hooks",
        [
          tc "fault context" test_on_fault_context;
          tc "hook can preload" test_on_fault_can_preload;
          tc "preload complete hook" test_on_preload_complete_hook;
        ] );
      ( "sip",
        [
          tc "hit cost" test_sip_hit_cost;
          tc "miss cost" test_sip_miss_cost;
          tc "cheaper than fault" test_sip_cheaper_than_fault;
          tc "waits for in-flight" test_sip_waits_for_inflight;
          tc "notify stamped at pickup" test_sip_notify_stamped_at_pickup;
          tc "eviction when full" test_sip_eviction_when_full;
        ] );
      ( "bitmap",
        [
          tc "tracks residency" test_bitmap_tracks_residency;
          tc "agrees with page table" test_bitmap_agrees_with_page_table;
        ] );
      ( "events",
        [
          tc "fault sequence" test_event_log_records_fault_sequence;
          tc "timestamps nondecreasing" test_event_timestamps_nondecreasing;
        ] );
      ("invariants", props enclave_qcheck);
    ]
