(* The fleet locks.

   1. Correctness lock: a fleet of ONE tenant in shared mode is
      [Runner.run], structurally equal over the whole result (diagnostics
      and histograms included) — over every scheme and every fault plan,
      directed and randomized.  The global owner-tagged CLOCK sweep, the
      channel arbiter and the interleaver must all be exact identities
      at N = 1.
   2. Partition-of-1 coincides with shared-of-1 (a partition of one
      tenant is the whole pool).
   3. Multi-tenant runs satisfy the {!Sim.Validate.check_fleet}
      conservation laws on every chaos-bank plan, in both EPC modes and
      under every channel policy, and are deterministic (same outcome on
      a re-run, and across [Fleet.matrix ~jobs]).
   4. The budget-shrink satellite fix: under a co-tenant fault plan,
      residency never exceeds the frame budget at any synced instant. *)

module Runner = Sim.Runner
module Fleet = Sim.Fleet
module Validate = Sim.Validate
module Fault_plan = Sim.Fault_plan
module Macro_bench = Sim.Macro_bench
module Scheme = Preload.Scheme
module Enclave = Sgxsim.Enclave
module Arbiter = Sgxsim.Load_channel.Arbiter
module Trace_arena = Workload.Trace_arena

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let trace_for seed =
  Macro_bench.queue_stress
    {
      Macro_bench.smoke with
      Macro_bench.label = Printf.sprintf "fleet-diff-%d" seed;
      events = 4_000;
      threads = 3;
      streams_per_thread = 5;
      seed;
    }

let config = { Runner.default_config with Runner.epc_pages = 128 }

let fleet_config mode =
  {
    Fleet.default_config with
    Fleet.epc_pages = 128;
    log_capacity = 0;
    mode;
  }

let sip_plan_for trace =
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:128)
      trace
  in
  Preload.Sip_instrumenter.plan_of_profile profile

let scheme_pool trace =
  [
    Scheme.Baseline;
    Scheme.Native;
    Scheme.dfp_default;
    Scheme.dfp_stop;
    Scheme.next_line ~degree:4;
    Scheme.stride ~degree:4;
    Scheme.Sip (sip_plan_for trace);
    Scheme.Hybrid (Preload.Dfp.default_config, sip_plan_for trace);
  ]

let plan_pool = Fault_plan.none :: Fault_plan.bank

(* ------------------------------------------------------------------ *)
(* Lock 1: fleet of one (shared) == Runner.run                         *)
(* ------------------------------------------------------------------ *)

let singleton_diff ~seed ~plan scheme =
  let trace = trace_for seed in
  let solo = Runner.run ~spec:(Runner.Spec.make ~config ~fault_plan:plan ()) ~scheme trace in
  let outcome =
    Fleet.run ~config:(fleet_config Fleet.Shared) ~fault_plan:plan
      [ Fleet.tenant ~label:"solo" ~scheme trace ]
  in
  let ctx =
    Printf.sprintf "seed=%d plan=%s scheme=%s" seed plan.Fault_plan.name
      solo.Runner.scheme
  in
  (match outcome.Fleet.results with
  | [ r ] ->
    checki (ctx ^ ": cycles") solo.Runner.cycles r.Runner.cycles;
    checkb (ctx ^ ": whole result equal") true (solo = r)
  | rs -> Alcotest.failf "%s: expected 1 result, got %d" ctx (List.length rs));
  (* A fleet of one has nobody to contend with. *)
  checki (ctx ^ ": channel wait") 0 outcome.Fleet.channel_waits.(0);
  checki (ctx ^ ": contentions") 0 outcome.Fleet.channel_contentions;
  checkb (ctx ^ ": fleet invariants") true (Fleet.check outcome = [])

let test_singleton_all_schemes () =
  let trace = trace_for 7 in
  List.iter
    (fun scheme -> singleton_diff ~seed:7 ~plan:Fault_plan.none scheme)
    (scheme_pool trace)

let test_singleton_all_plans () =
  let trace = trace_for 11 in
  List.iter
    (fun plan ->
      List.iter
        (fun scheme -> singleton_diff ~seed:11 ~plan scheme)
        [ Scheme.Baseline; Scheme.dfp_default; Scheme.Sip (sip_plan_for trace) ])
    Fault_plan.bank

let test_partition_of_one_is_shared () =
  let trace = trace_for 13 in
  List.iter
    (fun scheme ->
      let one mode =
        Fleet.run ~config:(fleet_config mode)
          [ Fleet.tenant ~label:"solo" ~scheme trace ]
      in
      let shared = one Fleet.Shared and part = one Fleet.Partitioned in
      checkb
        (Printf.sprintf "%s: partition-of-1 results == shared-of-1"
           (Scheme.name scheme))
        true
        (shared.Fleet.results = part.Fleet.results))
    [ Scheme.Baseline; Scheme.dfp_default ]

let singleton_qcheck =
  let gen =
    QCheck2.Gen.(
      triple (int_range 0 1000)
        (int_range 0 (List.length plan_pool - 1))
        (int_range 0 7))
  in
  [
    QCheck2.Test.make ~name:"fleet of 1 (shared) == Runner.run" ~count:25 gen
      (fun (seed, plan_i, scheme_i) ->
        let trace = trace_for seed in
        let pool = Array.of_list (scheme_pool trace) in
        singleton_diff ~seed ~plan:(List.nth plan_pool plan_i) pool.(scheme_i);
        true);
  ]

(* ------------------------------------------------------------------ *)
(* Lock 3: multi-tenant invariants and determinism                     *)
(* ------------------------------------------------------------------ *)

let mixed_fleet () =
  let t1 = trace_for 21 and t2 = trace_for 22 and t3 = trace_for 23 in
  [
    Fleet.tenant ~label:"alpha" ~scheme:Scheme.Baseline ~priority:1 t1;
    Fleet.tenant ~label:"beta" ~scheme:Scheme.dfp_default ~priority:2 t2;
    Fleet.tenant ~label:"gamma" ~scheme:(Scheme.Sip (sip_plan_for t3))
      ~priority:3 t3;
  ]

let test_fleet_invariants_all_plans () =
  let tenants = mixed_fleet () in
  List.iter
    (fun plan ->
      List.iter
        (fun mode ->
          let outcome =
            Fleet.run ~config:(fleet_config mode) ~fault_plan:plan tenants
          in
          (match Fleet.check outcome with
          | [] -> ()
          | vs ->
            Alcotest.failf "plan=%s mode=%s:\n%s" plan.Fault_plan.name
              (Fleet.mode_name mode) (Validate.report vs));
          (* The shared sweep must actually cross tenant boundaries under
             pressure: the three traces together far exceed 128 frames,
             so somebody evicts somebody. *)
          if mode = Fleet.Shared && plan == Fault_plan.none then begin
            let total =
              Array.fold_left
                (fun acc row -> acc + Array.fold_left ( + ) 0 row)
                0 outcome.Fleet.interference
            in
            checkb "evictions happened" true (total > 0);
            let off_diagonal = ref 0 in
            Array.iteri
              (fun v row ->
                Array.iteri
                  (fun a x -> if v <> a then off_diagonal := !off_diagonal + x)
                  row)
              outcome.Fleet.interference;
            checkb "cross-tenant evictions happened" true (!off_diagonal > 0)
          end;
          (* Partitioned pools are private: nobody can evict across. *)
          if mode = Fleet.Partitioned then
            Array.iteri
              (fun v row ->
                Array.iteri
                  (fun a x ->
                    if v <> a then
                      checki
                        (Printf.sprintf
                           "partitioned off-diagonal (%d,%d) is zero" v a)
                        0 x)
                  row)
              outcome.Fleet.interference)
        [ Fleet.Shared; Fleet.Partitioned ])
    plan_pool

let test_fleet_deterministic_and_policies () =
  let tenants = mixed_fleet () in
  List.iter
    (fun policy ->
      let cfg = { (fleet_config Fleet.Shared) with Fleet.policy } in
      let a = Fleet.run ~config:cfg tenants in
      let b = Fleet.run ~config:cfg tenants in
      checkb
        (Printf.sprintf "policy %s: outcome reproducible"
           (Arbiter.policy_name policy))
        true
        (a.Fleet.results = b.Fleet.results
        && a.Fleet.interference = b.Fleet.interference
        && a.Fleet.channel_waits = b.Fleet.channel_waits);
      checkb
        (Printf.sprintf "policy %s: invariants" (Arbiter.policy_name policy))
        true
        (Fleet.check a = []))
    Arbiter.policies;
  (* Three co-tenants over one channel must actually contend. *)
  let outcome = Fleet.run ~config:(fleet_config Fleet.Shared) tenants in
  checkb "channel contention happened" true
    (outcome.Fleet.channel_contentions > 0)

let test_matrix_jobs_deterministic () =
  let tenants =
    List.map
      (fun t -> { t with Fleet.scheme = Scheme.Baseline })
      (mixed_fleet ())
  in
  let scheme_for tag _label =
    match tag with
    | "baseline" -> Scheme.Baseline
    | "dfp-stop" -> Scheme.dfp_stop
    | t -> invalid_arg t
  in
  let run jobs =
    Fleet.matrix ~jobs ~config:(fleet_config Fleet.Shared) ~scheme_for
      ~tags:[ "baseline"; "dfp-stop" ]
      ~modes:[ Fleet.Shared; Fleet.Partitioned ]
      tenants
  in
  let serial = run 1 and parallel = run 2 in
  checki "cell count" 4 (List.length serial);
  checkb "matrix identical at -j2" true (serial = parallel)

(* ------------------------------------------------------------------ *)
(* Lock 4: budget shrink reconciled at every synced instant            *)
(* ------------------------------------------------------------------ *)

let test_budget_shrink_reconciled () =
  List.iter
    (fun plan ->
      (* Both plans with a co-tenant component. *)
      let trace = trace_for 31 in
      let arena = Trace_arena.compile trace in
      let enclave =
        Enclave.create ~epc_pages:64
          ~elrange_pages:trace.Workload.Trace.elrange_pages ()
      in
      Enclave.set_epc_budget enclave (fun ~at capacity ->
          Fault_plan.epc_budget plan ~at ~capacity);
      let now = ref 0 in
      let len = min 2_000 (Trace_arena.length arena) in
      for i = 0 to len - 1 do
        now :=
          Enclave.access enclave ~now:!now (Trace_arena.vpage arena i);
        (* The satellite fix: syncing at any instant squeezes residency
           to that instant's budget — not "eventually, at the next
           fault".  Before the fix this failed within a few hundred
           accesses of the first budget shrink. *)
        Enclave.sync enclave ~now:!now;
        let budget = Enclave.frame_budget enclave ~at:!now in
        if Enclave.resident_count enclave > budget then
          Alcotest.failf "plan=%s t=%d: resident %d > budget %d"
            plan.Fault_plan.name !now
            (Enclave.resident_count enclave)
            budget
      done)
    [ Fault_plan.noisy_neighbor; Fault_plan.perfect_storm ]

let () =
  Alcotest.run "fleet"
    [
      ( "singleton",
        [
          Alcotest.test_case "all schemes, fault-free" `Quick
            test_singleton_all_schemes;
          Alcotest.test_case "bank plans" `Quick test_singleton_all_plans;
          Alcotest.test_case "partition-of-1 == shared-of-1" `Quick
            test_partition_of_one_is_shared;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest singleton_qcheck);
      ( "co-tenancy",
        [
          Alcotest.test_case "invariants on every plan, both modes" `Quick
            test_fleet_invariants_all_plans;
          Alcotest.test_case "determinism across policies" `Quick
            test_fleet_deterministic_and_policies;
          Alcotest.test_case "matrix identical across -j" `Quick
            test_matrix_jobs_deterministic;
        ] );
      ( "budget",
        [
          Alcotest.test_case "resident <= budget at every sync" `Quick
            test_budget_shrink_reconciled;
        ] );
    ]
