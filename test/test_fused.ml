(* The fused-replay lock: [Runner.run_fused ~schemes] must be
   field-for-field identical to running each scheme in its own pass —
   over arbitrary scheme mixes, fault plans (both the arena fan-out path
   and the trace-corruption [Seq] path) and trace seeds.  Same lock style
   as the deque-vs-list differential of PR 2: a reference semantics
   ([List.map Runner.run]) pitted against the optimized path on random
   inputs. *)

module Runner = Sim.Runner
module Fault_plan = Sim.Fault_plan
module Macro_bench = Sim.Macro_bench
module Scheme = Preload.Scheme
module Metrics = Sgxsim.Metrics
module Histogram = Repro_util.Histogram

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Small but non-trivial stress trace: multi-threaded, queue-heavy, with
   footprint >> EPC so every scheme faults, preloads, evicts and scans. *)
let trace_for seed =
  Macro_bench.queue_stress
    {
      Macro_bench.smoke with
      Macro_bench.label = Printf.sprintf "fused-diff-%d" seed;
      events = 4_000;
      threads = 3;
      streams_per_thread = 5;
      seed;
    }

let config = { Runner.default_config with Runner.epc_pages = 128 }

let sip_plan_for trace =
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:128)
      trace
  in
  Preload.Sip_instrumenter.plan_of_profile profile

let scheme_pool trace =
  [
    Scheme.Baseline;
    Scheme.Native;
    Scheme.dfp_default;
    Scheme.dfp_stop;
    Scheme.next_line ~degree:4;
    Scheme.stride ~degree:4;
    Scheme.Sip (sip_plan_for trace);
    Scheme.Hybrid (Preload.Dfp.default_config, sip_plan_for trace);
  ]

let plan_pool = Fault_plan.none :: Fault_plan.bank

(* One differential comparison: fused vs per-cell, every result field.
   The histogram list and diagnostics records are covered by the whole-
   result structural equality (Runner.result is data all the way down);
   the targeted checks before it exist to localize a failure. *)
let check_equal ~ctx (fused : Runner.result) (solo : Runner.result) =
  let lbl what = Printf.sprintf "%s: %s" ctx what in
  Alcotest.(check string) (lbl "scheme") solo.Runner.scheme fused.Runner.scheme;
  checki (lbl "cycles") solo.Runner.cycles fused.Runner.cycles;
  checki (lbl "final_now") solo.Runner.final_now fused.Runner.final_now;
  checki (lbl "faults")
    (Metrics.total_faults solo.Runner.metrics)
    (Metrics.total_faults fused.Runner.metrics);
  checki (lbl "preloads_issued") solo.Runner.metrics.Metrics.preloads_issued
    fused.Runner.metrics.Metrics.preloads_issued;
  checki (lbl "pending at end") solo.Runner.diagnostics.Runner.pending_preloads
    fused.Runner.diagnostics.Runner.pending_preloads;
  checki (lbl "in-flight at end")
    solo.Runner.diagnostics.Runner.in_flight_preloads
    fused.Runner.diagnostics.Runner.in_flight_preloads;
  checkb (lbl "in-flight kind") true
    (solo.Runner.diagnostics.Runner.in_flight_kind
    = fused.Runner.diagnostics.Runner.in_flight_kind);
  checkb (lbl "dfp_stopped") solo.Runner.dfp_stopped fused.Runner.dfp_stopped;
  List.iter2
    (fun (kind_s, h_s) (kind_f, h_f) ->
      checkb (lbl "histogram kind order") true (kind_s = kind_f);
      checki
        (lbl
           (Printf.sprintf "fault-latency count (%s)"
              (Runner.resolution_name kind_s)))
        (Histogram.count h_s) (Histogram.count h_f);
      checkb (lbl "histogram equal") true (h_s = h_f))
    solo.Runner.fault_latency fused.Runner.fault_latency;
  checkb (lbl "whole result equal") true (solo = fused)

let run_diff ~seed ~plan ~schemes =
  let trace = trace_for seed in
  let fused = Runner.run_fused ~spec:(Runner.Spec.make ~config ~fault_plan:plan ()) ~schemes trace in
  let solo =
    List.map (fun s -> Runner.run ~spec:(Runner.Spec.make ~config ~fault_plan:plan ()) ~scheme:s trace) schemes
  in
  checki "result count" (List.length solo) (List.length fused);
  List.iteri
    (fun i (f, s) ->
      let ctx =
        Printf.sprintf "seed=%d plan=%s scheme#%d=%s" seed
          plan.Fault_plan.name i s.Runner.scheme
      in
      check_equal ~ctx f s)
    (List.combine fused solo)

(* ------------------------------------------------------------------ *)
(* Directed cases: every scheme, every plan in the bank                *)
(* ------------------------------------------------------------------ *)

let test_all_schemes_fault_free () =
  let trace = trace_for 7 in
  run_diff ~seed:7 ~plan:Fault_plan.none ~schemes:(scheme_pool trace)

let test_all_plans_mixed_schemes () =
  (* Each bank plan (including the trace-corrupting ones, which exercise
     the shared-Seq fan-out instead of the arena path) against a mix that
     includes both preloading and plain schemes. *)
  let trace = trace_for 11 in
  let schemes =
    [ Scheme.Baseline; Scheme.Native; Scheme.dfp_default;
      Scheme.Sip (sip_plan_for trace) ]
  in
  List.iter (fun plan -> run_diff ~seed:11 ~plan ~schemes) Fault_plan.bank

let test_singleton_fusion_is_run () =
  (* A 1-scheme fusion must also be [run] itself, trivially. *)
  let trace = trace_for 3 in
  let r = Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme:Scheme.dfp_default trace in
  match Runner.run_fused ~spec:(Runner.Spec.make ~config ()) ~schemes:[ Scheme.dfp_default ] trace with
  | [ r' ] -> checkb "singleton equal" true (r = r')
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)

let test_duplicate_schemes_independent () =
  (* The same scheme twice in one fused pass: instances must not share
     state, so both copies equal the solo run. *)
  let schemes = [ Scheme.dfp_default; Scheme.dfp_default ] in
  run_diff ~seed:5 ~plan:Fault_plan.none ~schemes

(* ------------------------------------------------------------------ *)
(* Randomized property: schemes x fault plans x seeds                  *)
(* ------------------------------------------------------------------ *)

let fused_qcheck =
  let gen =
    QCheck2.Gen.(
      triple (int_range 0 1000)
        (int_range 0 (List.length plan_pool - 1))
        (list_size (int_range 1 5) (int_range 0 7)))
  in
  [
    QCheck2.Test.make ~name:"run_fused == List.map run" ~count:25 gen
      (fun (seed, plan_i, scheme_is) ->
        let trace = trace_for seed in
        let pool = Array.of_list (scheme_pool trace) in
        let schemes = List.map (fun i -> pool.(i)) scheme_is in
        let plan = List.nth plan_pool plan_i in
        run_diff ~seed ~plan ~schemes;
        true);
  ]

let () =
  Alcotest.run "fused"
    [
      ( "differential",
        [
          Alcotest.test_case "all schemes, fault-free" `Quick
            test_all_schemes_fault_free;
          Alcotest.test_case "bank plans, mixed schemes" `Quick
            test_all_plans_mixed_schemes;
          Alcotest.test_case "singleton fusion" `Quick
            test_singleton_fusion_is_run;
          Alcotest.test_case "duplicate schemes stay independent" `Quick
            test_duplicate_schemes_independent;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest fused_qcheck );
    ]
