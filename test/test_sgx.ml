(* Unit tests for the sgxsim substrate (everything below the Enclave
   facade; the facade has its own suite in test_enclave.ml). *)

module Cost_model = Sgxsim.Cost_model
module Page_table = Sgxsim.Page_table
module Clock_evictor = Sgxsim.Clock_evictor
module Load_channel = Sgxsim.Load_channel
module Metrics = Sgxsim.Metrics
module Event = Sgxsim.Event

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_paper_constants () =
  let c = Cost_model.paper in
  checki "AEX" 10_000 c.t_aex;
  checki "ERESUME" 10_000 c.t_eresume;
  checki "load" 44_000 c.t_load;
  checki "native fault" 2_000 c.t_fault_native;
  (* §2: a fault costs 60,000-64,000 cycles end to end. *)
  let without_evict = Cost_model.fault_cost c ~evict:false in
  let with_evict = Cost_model.fault_cost c ~evict:true in
  checkb "60k..64k band" true (without_evict >= 60_000 && with_evict <= 68_000);
  checkb "evict costs more" true (with_evict > without_evict)

let test_native_model () =
  let c = Cost_model.native in
  checki "no AEX" 0 c.t_aex;
  checki "no ERESUME" 0 c.t_eresume;
  checkb "native load is cheap" true (c.t_load < Cost_model.paper.t_load / 10)

(* ------------------------------------------------------------------ *)
(* Page table                                                          *)
(* ------------------------------------------------------------------ *)

let test_pt_initially_absent () =
  let pt = Page_table.create ~pages:16 in
  checki "pages" 16 (Page_table.pages pt);
  checki "resident" 0 (Page_table.resident_count pt);
  checkb "absent" false (Page_table.present pt 3)

let test_pt_load_evict_cycle () =
  let pt = Page_table.create ~pages:8 in
  Page_table.mark_loaded pt 3 ~prov:Page_table.Demand ~slot:0;
  checkb "present" true (Page_table.present pt 3);
  checki "resident" 1 (Page_table.resident_count pt);
  checkb "demand pages come in hot" true (Page_table.accessed pt 3);
  Page_table.mark_evicted pt 3;
  checkb "absent" false (Page_table.present pt 3);
  checki "resident" 0 (Page_table.resident_count pt);
  checki "slot cleared" (-1) (Page_table.slot pt 3)

let test_pt_preload_comes_in_cold () =
  let pt = Page_table.create ~pages:8 in
  Page_table.mark_loaded pt 2 ~prov:Page_table.Preloaded ~slot:1;
  checkb "access bit clear" false (Page_table.accessed pt 2);
  checkb "preloaded" true (Page_table.preloaded pt 2);
  checkb "not yet counted" false (Page_table.counted pt 2);
  Page_table.touch pt 2;
  checkb "touched" true (Page_table.accessed pt 2);
  Page_table.set_counted pt 2;
  checkb "counted" true (Page_table.counted pt 2)

let test_pt_double_load_rejected () =
  let pt = Page_table.create ~pages:4 in
  Page_table.mark_loaded pt 1 ~prov:Page_table.Demand ~slot:0;
  Alcotest.check_raises "double load"
    (Invalid_argument "Page_table.mark_loaded: page 1 already present")
    (fun () -> Page_table.mark_loaded pt 1 ~prov:Page_table.Demand ~slot:1)

let test_pt_evict_absent_rejected () =
  let pt = Page_table.create ~pages:4 in
  Alcotest.check_raises "evict absent"
    (Invalid_argument "Page_table.mark_evicted: page 2 not present") (fun () ->
      Page_table.mark_evicted pt 2)

let test_pt_out_of_elrange () =
  let pt = Page_table.create ~pages:4 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Page_table: page 4 outside ELRANGE [0,4)") (fun () ->
      ignore (Page_table.accessed pt 4))

(* ------------------------------------------------------------------ *)
(* Clock evictor                                                       *)
(* ------------------------------------------------------------------ *)

let test_clock_insert_remove () =
  let c = Clock_evictor.create ~capacity:3 in
  checki "capacity" 3 (Clock_evictor.capacity c);
  let s0 = Clock_evictor.insert c 10 in
  let s1 = Clock_evictor.insert c 11 in
  checki "used" 2 (Clock_evictor.used c);
  checkb "not full" false (Clock_evictor.is_full c);
  Clock_evictor.remove c ~slot:s0;
  checki "used after remove" 1 (Clock_evictor.used c);
  ignore s1

let test_clock_full_rejects_insert () =
  let c = Clock_evictor.create ~capacity:1 in
  ignore (Clock_evictor.insert c 1);
  Alcotest.check_raises "full" (Invalid_argument "Clock_evictor.insert: EPC full")
    (fun () -> ignore (Clock_evictor.insert c 2))

let test_clock_second_chance () =
  let c = Clock_evictor.create ~capacity:3 in
  ignore (Clock_evictor.insert c 0);
  ignore (Clock_evictor.insert c 1);
  ignore (Clock_evictor.insert c 2);
  (* Page 0 and 1 have their access bits set; page 2 does not.  The sweep
     must clear 0 and 1 and pick 2. *)
  let bits = Hashtbl.create 4 in
  Hashtbl.replace bits 0 true;
  Hashtbl.replace bits 1 true;
  Hashtbl.replace bits 2 false;
  let cleared = ref [] in
  let victim =
    Clock_evictor.choose_victim c
      ~accessed:(fun v -> Hashtbl.find bits v)
      ~clear:(fun v ->
        cleared := v :: !cleared;
        Hashtbl.replace bits v false)
  in
  checki "victim is the cold page" 2 victim;
  Alcotest.(check (list int)) "hot pages got their second chance" [ 0; 1 ]
    (List.sort compare !cleared)

let test_clock_all_hot_eventually_victimizes () =
  let c = Clock_evictor.create ~capacity:2 in
  ignore (Clock_evictor.insert c 0);
  ignore (Clock_evictor.insert c 1);
  let bits = Hashtbl.create 4 in
  Hashtbl.replace bits 0 true;
  Hashtbl.replace bits 1 true;
  let victim =
    Clock_evictor.choose_victim c
      ~accessed:(fun v -> Hashtbl.find bits v)
      ~clear:(fun v -> Hashtbl.replace bits v false)
  in
  (* Both bits were set: the first revolution clears them, the second
     finds a victim. *)
  checkb "some victim" true (victim = 0 || victim = 1)

let test_clock_empty_rejects_victim () =
  let c = Clock_evictor.create ~capacity:2 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Clock_evictor.choose_victim: EPC empty") (fun () ->
      ignore
        (Clock_evictor.choose_victim c
           ~accessed:(fun _ -> false)
           ~clear:(fun _ -> ())))

let test_clock_scan_visits_all () =
  let c = Clock_evictor.create ~capacity:4 in
  List.iter (fun p -> ignore (Clock_evictor.insert c p)) [ 5; 6; 7 ];
  let visited = ref [] in
  Clock_evictor.scan c (fun v -> visited := v :: !visited);
  Alcotest.(check (list int)) "all resident" [ 5; 6; 7 ]
    (List.sort compare !visited)

let test_clock_resident () =
  let c = Clock_evictor.create ~capacity:4 in
  let s = Clock_evictor.insert c 9 in
  ignore (Clock_evictor.insert c 8);
  Clock_evictor.remove c ~slot:s;
  Alcotest.(check (list int)) "resident" [ 8 ]
    (List.sort compare (Clock_evictor.resident c))

let clock_qcheck =
  [
    QCheck2.Test.make ~name:"victim is always resident" ~count:200
      QCheck2.Gen.(pair (int_range 1 16) (list (int_range 0 31)))
      (fun (cap, hot) ->
        let c = Clock_evictor.create ~capacity:cap in
        for p = 0 to cap - 1 do
          ignore (Clock_evictor.insert c p)
        done;
        let bits = Array.make cap false in
        List.iter (fun h -> if h < cap then bits.(h) <- true) hot;
        let victim =
          Clock_evictor.choose_victim c
            ~accessed:(fun v -> bits.(v))
            ~clear:(fun v -> bits.(v) <- false)
        in
        victim >= 0 && victim < cap);
  ]

(* Pinned frames and owner tags: the shared-pool sweep added for fleet
   co-tenancy. *)

let never_pinned ~owner:_ ~vpage:_ = false

let test_clock_pinned_interleaved () =
  let c = Clock_evictor.create ~capacity:3 in
  ignore (Clock_evictor.insert c 0);
  ignore (Clock_evictor.insert c 1);
  ignore (Clock_evictor.insert c 2);
  (* 0 and 2 pinned, 1 hot: the sweep must pass over the pinned frames
     without touching their access bits, burn 1's second chance, and
     come back to victimize 1. *)
  let hot = ref [ 1 ] in
  let cleared = ref [] in
  let owner, victim =
    Clock_evictor.choose_victim_owned c
      ~pinned:(fun ~owner:_ ~vpage -> vpage = 0 || vpage = 2)
      ~accessed:(fun ~owner:_ ~vpage -> List.mem vpage !hot)
      ~clear:(fun ~owner:_ ~vpage ->
        cleared := vpage :: !cleared;
        hot := List.filter (fun v -> v <> vpage) !hot)
  in
  checki "victim is the only unpinned page" 1 victim;
  checki "default owner" 0 owner;
  Alcotest.(check (list int)) "pinned frames never cleared" [ 1 ] !cleared

let test_clock_all_pinned_raises () =
  let c = Clock_evictor.create ~capacity:2 in
  ignore (Clock_evictor.insert c 0);
  ignore (Clock_evictor.insert c 1);
  Alcotest.check_raises "all pinned" Clock_evictor.No_evictable_page
    (fun () ->
      ignore
        (Clock_evictor.choose_victim_owned c
           ~pinned:(fun ~owner:_ ~vpage:_ -> true)
           ~accessed:(fun ~owner:_ ~vpage:_ -> false)
           ~clear:(fun ~owner:_ ~vpage:_ -> ())))

let test_clock_owner_roundtrip () =
  let c = Clock_evictor.create ~capacity:4 in
  ignore (Clock_evictor.insert ~owner:2 c 40);
  ignore (Clock_evictor.insert ~owner:5 c 41);
  ignore (Clock_evictor.insert ~owner:2 c 42);
  Alcotest.(check (list (pair int int)))
    "frames per owner" [ (2, 2); (5, 1) ]
    (Clock_evictor.resident_by_owner c);
  let seen = ref [] in
  Clock_evictor.scan_owned c (fun ~owner ~vpage -> seen := (owner, vpage) :: !seen);
  Alcotest.(check (list (pair int int)))
    "scan reports owner tags" [ (2, 40); (2, 42); (5, 41) ]
    (List.sort compare !seen);
  (* The sweep returns the victim's owner alongside the vpage. *)
  let owner, victim =
    Clock_evictor.choose_victim_owned c ~pinned:never_pinned
      ~accessed:(fun ~owner:_ ~vpage:_ -> false)
      ~clear:(fun ~owner:_ ~vpage:_ -> ())
  in
  checkb "victim tagged with its inserter"
    true
    (List.mem (owner, victim) [ (2, 40); (2, 42); (5, 41) ])

(* ------------------------------------------------------------------ *)
(* Load channel                                                        *)
(* ------------------------------------------------------------------ *)

let test_channel_lifecycle () =
  let ch = Load_channel.create ~pages:4096 in
  checkb "initially idle" false (Load_channel.is_busy ch ~now:0);
  let l = Load_channel.begin_load ch ~vpage:5 ~kind:Load_channel.Demand ~now:100 ~duration:44_000 in
  checki "finishes" 44_100 l.finishes;
  checkb "busy during" true (Load_channel.is_busy ch ~now:200);
  checki "busy until" 44_100 (Load_channel.busy_until ch ~now:200);
  checkb "no completion early" true (Load_channel.take_completed ch ~now:200 = None);
  (match Load_channel.take_completed ch ~now:44_100 with
  | Some done_ -> checki "completed page" 5 done_.vpage
  | None -> Alcotest.fail "expected completion");
  checkb "idle after" false (Load_channel.is_busy ch ~now:44_100)

let test_channel_busy_rejects_load () =
  let ch = Load_channel.create ~pages:4096 in
  ignore (Load_channel.begin_load ch ~vpage:1 ~kind:Load_channel.Demand ~now:0 ~duration:10);
  Alcotest.check_raises "busy" (Invalid_argument "Load_channel.begin_load: channel busy")
    (fun () ->
      ignore
        (Load_channel.begin_load ch ~vpage:2 ~kind:Load_channel.Demand ~now:5
           ~duration:10))

let test_channel_queue_fifo () =
  let ch = Load_channel.create ~pages:4096 in
  Load_channel.queue_preload ch ~vpage:1 ~at:10;
  Load_channel.queue_preload ch ~vpage:2 ~at:20;
  Load_channel.queue_preload ch ~vpage:3 ~at:30;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Load_channel.queued ch);
  Alcotest.(check (option (pair int int))) "head" (Some (1, 10))
    (Load_channel.next_queued ch);
  ignore (Load_channel.pop_queued ch);
  Alcotest.(check (option (pair int int))) "next" (Some (2, 20))
    (Load_channel.next_queued ch)

let test_channel_abort () =
  let ch = Load_channel.create ~pages:4096 in
  List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:0) [ 1; 2; 3; 4 ];
  checki "selective abort" 2 (Load_channel.abort_queued_where ch (fun v -> v mod 2 = 0));
  Alcotest.(check (list int)) "left" [ 1; 3 ] (Load_channel.queued ch);
  checki "full abort" 2 (Load_channel.abort_queued ch);
  checki "empty" 0 (Load_channel.queue_length ch)

let test_channel_abort_spares_inflight () =
  let ch = Load_channel.create ~pages:4096 in
  ignore (Load_channel.begin_load ch ~vpage:9 ~kind:Load_channel.Preload_dfp ~now:0 ~duration:100);
  Load_channel.queue_preload ch ~vpage:10 ~at:0;
  checki "only queued dropped" 1 (Load_channel.abort_queued ch);
  checkb "in-flight survives" true (Load_channel.in_flight ch <> None)

let test_channel_remove_queued () =
  let ch = Load_channel.create ~pages:4096 in
  Load_channel.queue_preload ch ~vpage:7 ~at:0;
  checkb "mem" true (Load_channel.queued_mem ch 7);
  checkb "removed" true (Load_channel.remove_queued ch 7);
  checkb "gone" false (Load_channel.queued_mem ch 7);
  checkb "absent remove" false (Load_channel.remove_queued ch 7)

let test_channel_free_at_tracks_last_load () =
  let ch = Load_channel.create ~pages:4096 in
  checki "initially 0" 0 (Load_channel.free_at ch);
  ignore (Load_channel.begin_load ch ~vpage:1 ~kind:Load_channel.Demand ~now:50 ~duration:100);
  checki "after load" 150 (Load_channel.free_at ch);
  ignore (Load_channel.take_completed ch ~now:150);
  checki "persists after completion" 150 (Load_channel.free_at ch)

let test_channel_duplicate_queue_rejected () =
  let ch = Load_channel.create ~pages:64 in
  Load_channel.queue_preload ch ~vpage:3 ~at:0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Load_channel.queue_preload: page 3 already queued")
    (fun () -> Load_channel.queue_preload ch ~vpage:3 ~at:5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Load_channel.queue_preload: page 64 out of range")
    (fun () -> Load_channel.queue_preload ch ~vpage:64 ~at:0);
  checki "still one entry" 1 (Load_channel.queue_length ch)

let test_channel_fifo_across_interleavings () =
  (* remove_queued (demand take-over), abort_queued_where and pop must
     leave the survivors in exact insertion order. *)
  let ch = Load_channel.create ~pages:64 in
  List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:v) [ 1; 2; 3; 4; 5; 6 ];
  checkb "take-over of 2" true (Load_channel.remove_queued ch 2);
  checki "abort odd pages > 4" 1 (Load_channel.abort_queued_where ch (fun v -> v > 4 && v mod 2 = 1));
  Alcotest.(check (list int)) "order" [ 1; 3; 4; 6 ] (Load_channel.queued ch);
  (* Pop walks over the lazily-deleted slots without disturbing order. *)
  Alcotest.(check (option (pair int int))) "head" (Some (1, 1)) (Load_channel.pop_queued ch);
  checkb "take-over of 4 mid-queue" true (Load_channel.remove_queued ch 4);
  Alcotest.(check (option (pair int int))) "next head" (Some (3, 3)) (Load_channel.next_queued ch);
  Alcotest.(check (list int)) "remaining" [ 3; 6 ] (Load_channel.queued ch);
  checki "live length" 2 (Load_channel.queue_length ch)

let test_channel_requeue_after_removal_goes_to_tail () =
  (* A removed page that is queued again must load *after* pages queued
     in between — its stale slot near the head must not resurrect it. *)
  let ch = Load_channel.create ~pages:64 in
  List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:0) [ 7; 8 ];
  checkb "removed" true (Load_channel.remove_queued ch 7);
  Load_channel.queue_preload ch ~vpage:9 ~at:1;
  Load_channel.queue_preload ch ~vpage:7 ~at:2;
  Alcotest.(check (list int)) "tail position" [ 8; 9; 7 ] (Load_channel.queued ch);
  Alcotest.(check (option (pair int int))) "head is 8" (Some (8, 0)) (Load_channel.pop_queued ch);
  Alcotest.(check (option (pair int int))) "then 9" (Some (9, 1)) (Load_channel.pop_queued ch);
  Alcotest.(check (option (pair int int)))
    "re-queued 7 carries its new timestamp" (Some (7, 2)) (Load_channel.pop_queued ch);
  Alcotest.(check (option (pair int int))) "empty" None (Load_channel.pop_queued ch)

let test_channel_abort_pages () =
  let ch = Load_channel.create ~pages:64 in
  List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:0) [ 1; 2; 3; 4 ];
  (* Unqueued and out-of-range pages are ignored, not errors. *)
  checki "two dropped" 2 (Load_channel.abort_queued_pages ch [ 2; 4; 40; -1; 2 ]);
  Alcotest.(check (list int)) "survivors in order" [ 1; 3 ] (Load_channel.queued ch)

(* The reference model: the pre-deque list-backed queue (exact old
   semantics — removals splice the list, duplicates are the caller's
   job).  The differential test drives both implementations with the
   same random operation stream and checks full observational equality
   after every step. *)
module Ref_queue = struct
  type t = { mutable q : (int * int) list }

  let create () = { q = [] }
  let queue m ~vpage ~at = m.q <- m.q @ [ (vpage, at) ]
  let mem m v = List.exists (fun (p, _) -> p = v) m.q

  let pop m =
    match m.q with
    | [] -> None
    | x :: rest ->
      m.q <- rest;
      Some x

  let next m = match m.q with [] -> None | x :: _ -> Some x

  let remove m v =
    let before = List.length m.q in
    m.q <- List.filter (fun (p, _) -> p <> v) m.q;
    List.length m.q < before

  let abort m =
    let n = List.length m.q in
    m.q <- [];
    n

  let abort_where m pred =
    let before = List.length m.q in
    m.q <- List.filter (fun (p, _) -> not (pred p)) m.q;
    before - List.length m.q

  let queued m = List.map fst m.q
  let length m = List.length m.q
end

(* The compaction invariant: lazy deletion may leave stale slots in the
   deque, but never more than [max 64 live] of them — so physical length
   is bounded by [live + max 64 live] after every public operation. *)
let check_compaction_bound ctx ch =
  let live = Load_channel.queue_length ch in
  let stale = Load_channel.physical_length ch - live in
  if not (stale <= max 64 live) then
    Alcotest.failf "%s: %d stale slots for %d live (bound %d)" ctx stale live
      (max 64 live)

let test_channel_compaction_bounds_deque () =
  (* Regression for unbounded deque growth: queue pages and abort them
     via lazy removal, never popping the head — [drop_stale] alone would
     never reclaim anything.  Without compaction the deque grows by one
     slot per queue/remove round forever. *)
  let pages = 4096 in
  let ch = Load_channel.create ~pages in
  let peak = ref 0 in
  for round = 0 to 9_999 do
    let v = round mod pages in
    Load_channel.queue_preload ch ~vpage:v ~at:round;
    checkb "removed" true (Load_channel.remove_queued ch v);
    check_compaction_bound (Printf.sprintf "round %d" round) ch;
    peak := max !peak (Load_channel.physical_length ch)
  done;
  checkb
    (Printf.sprintf "peak physical length %d stays near the floor" !peak)
    true (!peak <= 2 * 64 + 2);
  checki "nothing live at the end" 0 (Load_channel.queue_length ch);
  (* Same pressure through the batch-abort path, with a live remainder:
     survivors must come back in exact FIFO order after compactions. *)
  let ch = Load_channel.create ~pages in
  let survivors = List.init 40 (fun i -> 4000 + i) in
  List.iteri (fun i v -> Load_channel.queue_preload ch ~vpage:v ~at:i) survivors;
  for round = 0 to 999 do
    let batch = List.init 8 (fun i -> (round * 8 + i) mod 3000) in
    List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:round) batch;
    checki "batch dropped" 8
      (Load_channel.abort_queued_where ch (fun p -> p < 3000));
    check_compaction_bound (Printf.sprintf "abort round %d" round) ch
  done;
  Alcotest.(check (list int))
    "survivors keep FIFO order through compactions" survivors
    (Load_channel.queued ch)

let test_channel_differential_random () =
  let pages = 48 in
  let prng = Repro_util.Prng.create 20260806 in
  let ch = Load_channel.create ~pages in
  let rf = Ref_queue.create () in
  let agree step =
    let ctx msg = Printf.sprintf "step %d: %s" step msg in
    Alcotest.(check (list int)) (ctx "queued") (Ref_queue.queued rf) (Load_channel.queued ch);
    checki (ctx "length") (Ref_queue.length rf) (Load_channel.queue_length ch);
    check_compaction_bound (ctx "compaction bound") ch;
    for _ = 1 to 4 do
      let v = Repro_util.Prng.int prng pages in
      checkb (ctx "mem") (Ref_queue.mem rf v) (Load_channel.queued_mem ch v)
    done
  in
  for step = 1 to 3000 do
    (match Repro_util.Prng.int prng 100 with
    | k when k < 45 ->
      (* Queue a fresh page (duplicate suppression is the caller's job,
         exactly as Enclave.request_preload checks queued_mem first). *)
      let v = Repro_util.Prng.int prng pages in
      if not (Load_channel.queued_mem ch v) then begin
        let at = step in
        Load_channel.queue_preload ch ~vpage:v ~at;
        Ref_queue.queue rf ~vpage:v ~at
      end
    | k when k < 65 ->
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "step %d: pop" step)
        (Ref_queue.pop rf) (Load_channel.pop_queued ch)
    | k when k < 75 ->
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "step %d: next" step)
        (Ref_queue.next rf) (Load_channel.next_queued ch)
    | k when k < 90 ->
      let v = Repro_util.Prng.int prng pages in
      checkb
        (Printf.sprintf "step %d: remove p%d" step v)
        (Ref_queue.remove rf v) (Load_channel.remove_queued ch v)
    | k when k < 94 ->
      let m = 2 + Repro_util.Prng.int prng 3 in
      let r = Repro_util.Prng.int prng m in
      let pred p = p mod m = r in
      checki
        (Printf.sprintf "step %d: abort_where" step)
        (Ref_queue.abort_where rf pred)
        (Load_channel.abort_queued_where ch pred)
    | k when k < 98 ->
      let batch = List.init 3 (fun _ -> Repro_util.Prng.int prng pages) in
      (* The list form removes page-by-page; mirror that on the model so
         duplicate batch entries count identically. *)
      let expect =
        List.fold_left (fun n v -> if Ref_queue.remove rf v then n + 1 else n) 0 batch
      in
      checki
        (Printf.sprintf "step %d: abort_pages" step)
        expect
        (Load_channel.abort_queued_pages ch batch)
    | _ ->
      checki (Printf.sprintf "step %d: abort" step) (Ref_queue.abort rf)
        (Load_channel.abort_queued ch));
    agree step
  done

let channel_qcheck =
  [
    QCheck2.Test.make ~name:"queue preserves FIFO order" ~count:300
      QCheck2.Gen.(list small_nat)
      (fun pages ->
        (* Distinct pages: the indexed queue rejects duplicates by
           contract (callers check queued_mem first). *)
        let pages = List.sort_uniq compare pages in
        let ch = Load_channel.create ~pages:4096 in
        List.iter (fun v -> Load_channel.queue_preload ch ~vpage:v ~at:0) pages;
        Load_channel.queued ch = pages);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics / Event                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_totals () =
  let m = Metrics.create () in
  m.cyc_compute <- 100;
  m.cyc_aex <- 10;
  m.cyc_load_wait <- 44;
  m.cyc_eresume <- 10;
  checki "total" 164 (Metrics.total_cycles m);
  checki "fault handling" 64 (Metrics.fault_handling_cycles m);
  m.faults <- 2;
  m.faults_in_flight <- 1;
  m.faults_already_present <- 1;
  checki "total faults" 4 (Metrics.total_faults m)

let test_metrics_copy_is_independent () =
  let m = Metrics.create () in
  m.faults <- 5;
  let c = Metrics.copy m in
  m.faults <- 9;
  checki "copy unchanged" 5 c.faults

let test_event_log_ring () =
  let log = Event.make_log ~capacity:2 in
  Event.record log (Event.Fault { at = 1; vpage = 0 });
  Event.record log (Event.Fault { at = 2; vpage = 1 });
  Event.record log (Event.Fault { at = 3; vpage = 2 });
  let ats = List.map Event.at (Event.events log) in
  Alcotest.(check (list int)) "keeps newest" [ 2; 3 ] ats

let test_event_null_log () =
  Event.record Event.null_log (Event.Scan { at = 1 });
  Alcotest.(check (list int)) "empty" []
    (List.map Event.at (Event.events Event.null_log))

let test_event_pp_golden () =
  let show e = Format.asprintf "%a" Event.pp e in
  Alcotest.(check string) "fault" "       100 FAULT     p7"
    (show (Event.Fault { at = 100; vpage = 7 }));
  Alcotest.(check string) "load kind" "       200 load      p3 (dfp)"
    (show (Event.Load_start { at = 200; vpage = 3; kind = Load_channel.Preload_dfp }));
  Alcotest.(check string) "sip check"
    "       300 sip-check p4 (absent)"
    (show (Event.Sip_check { at = 300; vpage = 4; present = false }))

let test_event_accessors () =
  let e = Event.Load_start { at = 5; vpage = 9; kind = Load_channel.Demand } in
  checki "at" 5 (Event.at e);
  Alcotest.(check (option int)) "vpage" (Some 9) (Event.vpage e);
  Alcotest.(check (option int)) "scan has no page" None
    (Event.vpage (Event.Scan { at = 0 }))

(* ------------------------------------------------------------------ *)
(* Fleet arbiter                                                       *)
(* ------------------------------------------------------------------ *)

let test_arbiter_fifo_and_solo_identity () =
  let open Load_channel.Arbiter in
  let a = create ~policy:Fifo 2 in
  checki "clean load is the identity" 10 (request a ~owner:0 ~at:0 10);
  (* Channel frees at 10; owner 1 asks at 5 → 5 cycles queued. *)
  checki "contended load queues" 15 (request a ~owner:1 ~at:5 10);
  checki "one contention" 1 (contentions a);
  checki "wait charged to the queuer" 5 (wait_of a 1);
  checki "no wait for the first" 0 (wait_of a 0);
  (* A lone tenant's own exclusive channel serializes its loads, so it
     always arrives at or after free_at: every request is the identity —
     the fleet-of-1 lock at the arbiter level. *)
  let solo = create ~policy:Priority ~priorities:[| 7 |] 1 in
  let at = ref 0 in
  for d = 1 to 20 do
    let eff = request solo ~owner:0 ~at:!at d in
    checki "solo identity" d eff;
    at := !at + eff + 3
  done;
  checki "solo never contends" 0 (contentions solo)

let test_arbiter_penalty_does_not_compound () =
  let open Load_channel.Arbiter in
  let p = create ~priorities:[| 0; 3 |] ~policy:Priority 2 in
  checki "priority 0 is plain fifo" 10 (request p ~owner:0 ~at:0 10);
  (* wait0 = 5, extra = 3 * 5: the penalized tenant waits 20, loads 10. *)
  checki "penalized wait" 30 (request p ~owner:1 ~at:5 10);
  (* The channel freed at 5 + 5 + 10 = 20, NOT at 5 + 30: the penalty
     delays the requester, never later tenants — penalized waits must
     not compound into the fleet's virtual clocks. *)
  checki "channel free once backlog + load drain" 10
    (request p ~owner:0 ~at:20 10);
  (* Fair-share: a tenant whose occupancy exceeds the fleet average pays
     extra; a light tenant queues plain FIFO. *)
  let f = create ~policy:Fair_share 2 in
  checki "first" 10 (request f ~owner:0 ~at:0 10);
  checki "back-to-back still clean" 10 (request f ~owner:0 ~at:10 10);
  (* Owner 1 has no occupancy: backlog only (free_at 20, wait0 8). *)
  checki "light tenant waits the backlog" 18 (request f ~owner:1 ~at:12 10);
  (* Owner 0 now holds 20 of 30 busy cycles; wait0 = 30 - 14 = 16,
     overuse (20*2 - 30) = 10 → extra 10*16/30 = 5. *)
  checki "hog penalized beyond the backlog" 31 (request f ~owner:0 ~at:14 10)

let arbiter_qcheck =
  [
    (* The channel-time conservation lock: [free_at] follows the same
       backlog + d recurrence under every policy, so a policy penalty is
       invisible to later requests.  Observable in lockstep against a
       FIFO twin fed the identical sequence: the policy arbiter's wait
       is the FIFO wait plus a non-negative extra, and a request the
       FIFO twin serves cleanly is served cleanly under any policy.  The
       hang regression (penalties folded into [free_at]) breaks this —
       the trajectories diverge and an uncontended-under-FIFO request
       starts waiting. *)
    QCheck2.Test.make ~name:"arbiter: penalties never leak into later waits"
      ~count:300
      QCheck2.Gen.(
        triple (int_range 0 2)
          (array_size (int_range 1 5) (int_range 0 4))
          (small_list (triple (int_range 0 4) (int_range 0 50) (int_range 0 40))))
      (fun (policy_i, priorities, reqs) ->
        let open Load_channel.Arbiter in
        let n = Array.length priorities in
        let a = create ~priorities ~policy:(List.nth policies policy_i) n in
        let fifo = create ~priorities ~policy:Fifo n in
        let now = ref 0 in
        List.for_all
          (fun (owner, gap, d) ->
            let owner = owner mod n in
            now := !now + gap;
            let ea = request a ~owner ~at:!now d in
            let eb = request fifo ~owner ~at:!now d in
            ea >= eb && (eb > d || ea = eb))
          reqs);
  ]

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sgxsim"
    [
      ( "cost_model",
        [ tc "paper constants" test_paper_constants; tc "native model" test_native_model ]
      );
      ( "page_table",
        [
          tc "initially absent" test_pt_initially_absent;
          tc "load/evict cycle" test_pt_load_evict_cycle;
          tc "preload comes in cold" test_pt_preload_comes_in_cold;
          tc "double load rejected" test_pt_double_load_rejected;
          tc "evict absent rejected" test_pt_evict_absent_rejected;
          tc "out of ELRANGE" test_pt_out_of_elrange;
        ] );
      ( "clock_evictor",
        [
          tc "insert/remove" test_clock_insert_remove;
          tc "full rejects insert" test_clock_full_rejects_insert;
          tc "second chance" test_clock_second_chance;
          tc "all hot still victimizes" test_clock_all_hot_eventually_victimizes;
          tc "empty rejects victim" test_clock_empty_rejects_victim;
          tc "scan visits all" test_clock_scan_visits_all;
          tc "resident" test_clock_resident;
          tc "pinned frames interleaved" test_clock_pinned_interleaved;
          tc "all pinned raises" test_clock_all_pinned_raises;
          tc "owner tags round-trip" test_clock_owner_roundtrip;
        ]
        @ props clock_qcheck );
      ( "load_channel",
        [
          tc "lifecycle" test_channel_lifecycle;
          tc "busy rejects load" test_channel_busy_rejects_load;
          tc "queue fifo" test_channel_queue_fifo;
          tc "abort" test_channel_abort;
          tc "abort spares in-flight" test_channel_abort_spares_inflight;
          tc "remove queued" test_channel_remove_queued;
          tc "free_at tracks last load" test_channel_free_at_tracks_last_load;
          tc "duplicate queue rejected" test_channel_duplicate_queue_rejected;
          tc "fifo across interleavings" test_channel_fifo_across_interleavings;
          tc "re-queue after removal goes to tail"
            test_channel_requeue_after_removal_goes_to_tail;
          tc "abort pages" test_channel_abort_pages;
          tc "compaction bounds the deque" test_channel_compaction_bounds_deque;
          tc "differential vs list model" test_channel_differential_random;
          tc "arbiter fifo + solo identity" test_arbiter_fifo_and_solo_identity;
          tc "arbiter penalties do not compound"
            test_arbiter_penalty_does_not_compound;
        ]
        @ props (channel_qcheck @ arbiter_qcheck) );
      ( "metrics_event",
        [
          tc "metrics totals" test_metrics_totals;
          tc "metrics copy" test_metrics_copy_is_independent;
          tc "event log ring" test_event_log_ring;
          tc "event null log" test_event_null_log;
          tc "event pp golden" test_event_pp_golden;
          tc "event accessors" test_event_accessors;
        ] );
    ]
