(* Service mode: open-loop arrivals, request scheduling, tail-latency
   accounting, and the determinism contract. *)

module Service = Sim.Service
module Fault_plan = Sim.Fault_plan
module Validate = Sim.Validate
module Scheme = Preload.Scheme
module Input = Workload.Input
module Spec = Workload.Spec
module Histogram = Repro_util.Histogram
module Table = Repro_util.Table

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let trace = Spec.deepsjeng ~epc_pages:128 ~input:Input.Train

let config =
  {
    Service.default_config with
    Service.epc_pages = 128;
    pool = 2;
    requests = 40;
    request_events = 100;
    mean_gap = 2_000_000;
    seed = 5;
  }

(* ------------------------------------------------------------------ *)
(* Arrival generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_arrivals_deterministic () =
  List.iter
    (fun arrivals ->
      let c = { config with Service.arrivals } in
      check
        Alcotest.(array int)
        (Service.arrival_name arrivals ^ " same seed")
        (Service.arrival_times c) (Service.arrival_times c))
    [
      Service.Poisson;
      Service.Bursty { burst = 8 };
      Service.Diurnal { period = 100_000_000; swing = 0.8 };
    ]

let test_arrivals_seed_sensitive () =
  let a = Service.arrival_times config in
  let b = Service.arrival_times { config with Service.seed = 6 } in
  checkb "different seeds diverge" true (a <> b)

let test_arrivals_non_decreasing () =
  List.iter
    (fun arrivals ->
      let c = { config with Service.arrivals } in
      let times = Service.arrival_times c in
      checki "count" c.Service.requests (Array.length times);
      for k = 1 to Array.length times - 1 do
        checkb "non-decreasing" true (times.(k) >= times.(k - 1));
        checkb "non-negative" true (times.(k) >= 0)
      done)
    [
      Service.Poisson;
      Service.Bursty { burst = 8 };
      Service.Diurnal { period = 100_000_000; swing = 0.8 };
    ]

let test_arrivals_bursty_groups () =
  let c = { config with Service.arrivals = Service.Bursty { burst = 5 } } in
  let times = Service.arrival_times c in
  (* Requests within one burst share an arrival instant. *)
  for k = 0 to Array.length times - 1 do
    if k mod 5 <> 0 then
      checki (Printf.sprintf "burst member %d" k) times.(k - 1) times.(k)
  done

let test_arrivals_bad_config_rejected () =
  Alcotest.check_raises "zero pool"
    (Invalid_argument "Service: pool must be positive") (fun () ->
      ignore (Service.arrival_times { config with Service.pool = 0 }));
  Alcotest.check_raises "bad swing"
    (Invalid_argument "Service: diurnal swing must be in [0, 1)") (fun () ->
      ignore
        (Service.arrival_times
           {
             config with
             Service.arrivals = Service.Diurnal { period = 1000; swing = 1.5 };
           }));
  Alcotest.check_raises "zero horizon"
    (Invalid_argument "Service: horizon must be positive") (fun () ->
      ignore (Service.arrival_times { config with Service.horizon = Some 0 }));
  Alcotest.check_raises "retries without deadline"
    (Invalid_argument "Service: retries require a deadline") (fun () ->
      ignore
        (Service.arrival_times
           {
             config with
             Service.resilience =
               { Service.no_resilience with Service.retries = 1 };
           }))

let test_arrival_grammar_roundtrip () =
  (* Every process's printed name must re-parse to itself (the CLI and
     the outcome's [arrivals] field share this grammar). *)
  List.iter
    (fun a ->
      let name = Service.arrival_name a in
      match Service.arrival_of_string name with
      | Ok b -> checkb (name ^ " round-trips") true (a = b)
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    [
      Service.Poisson;
      Service.Bursty { burst = 1 };
      Service.Bursty { burst = 16 };
      Service.Diurnal { period = 200_000_000; swing = 0.8 };
      Service.Diurnal { period = 5; swing = 0.0 };
    ];
  (* Bare names keep their stock parameters; the paren spelling parses. *)
  checkb "bare bursty" true
    (Service.arrival_of_string "bursty" = Ok (Service.Bursty { burst = 8 }));
  checkb "paren spelling" true
    (Service.arrival_of_string "bursty(16)" = Ok (Service.Bursty { burst = 16 }))

let test_arrival_grammar_errors () =
  let err s expected =
    match Service.arrival_of_string s with
    | Ok _ -> Alcotest.fail (s ^ " unexpectedly parsed")
    | Error m -> check Alcotest.string s expected m
  in
  err "bursty:0" "arrival \"bursty:0\": burst must be positive";
  err "bursty:many" "arrival \"bursty:many\": malformed burst \"many\"";
  err "diurnal:0,0.5"
    "arrival \"diurnal:0,0.5\": need period > 0 and swing in [0, 1)";
  err "diurnal:1000,1.5"
    "arrival \"diurnal:1000,1.5\": need period > 0 and swing in [0, 1)";
  err "diurnal:1000,x"
    "arrival \"diurnal:1000,x\": malformed parameters \"1000,x\"";
  err "diurnal:1000" "arrival \"diurnal:1000\": diurnal takes PERIOD,SWING";
  err "sawtooth"
    "unknown arrival process \"sawtooth\" (known: poisson, bursty[:N], \
     diurnal[:PERIOD,SWING])"

(* ------------------------------------------------------------------ *)
(* Request conservation and validation                                 *)
(* ------------------------------------------------------------------ *)

let test_run_conserves_requests () =
  let o = Service.run ~config ~scheme:Scheme.Baseline trace in
  checki "dispatched" config.Service.requests o.Service.dispatched;
  checki "conservation" o.Service.dispatched
    (o.Service.completed + o.Service.in_flight);
  checki "no horizon, nothing in flight" 0 o.Service.in_flight;
  checki "one histogram observation per completion" o.Service.completed
    (Histogram.count o.Service.latency_h);
  checki "one latency per completion" o.Service.completed
    (Array.length o.Service.latencies);
  Array.iter
    (fun l -> checkb "non-negative latency" true (l >= 0.0))
    o.Service.latencies;
  checki "pool instances finalized" config.Service.pool
    (List.length o.Service.results);
  Service.assert_valid o

let test_run_horizon_in_flight () =
  (* A horizon inside the run leaves requests in flight; conservation
     and the validation battery must still hold. *)
  let full = Service.run ~config ~scheme:Scheme.Baseline trace in
  let horizon = Some (full.Service.makespan / 2) in
  let o =
    Service.run ~config:{ config with Service.horizon } ~scheme:Scheme.Baseline
      trace
  in
  checkb "some requests in flight" true (o.Service.in_flight > 0);
  checki "conservation with horizon" o.Service.dispatched
    (o.Service.completed + o.Service.in_flight);
  checki "histogram tracks completions only" o.Service.completed
    (Histogram.count o.Service.latency_h);
  Service.assert_valid o

let test_run_under_chaos_validates () =
  List.iter
    (fun plan ->
      let o = Service.run ~config ~fault_plan:plan ~scheme:Scheme.dfp_stop trace in
      check Alcotest.string "plan recorded" plan.Fault_plan.name
        o.Service.fault_plan;
      checki "conservation under chaos" o.Service.dispatched
        (o.Service.completed + o.Service.in_flight);
      Service.assert_valid o)
    [ Fault_plan.jittery_channel; Fault_plan.garbled_trace ]

let test_inert_resilience_identity () =
  (* Resilience knobs that can never fire (astronomical deadline and
     hedge trigger, no crash plan) must leave the dispatch math — and
     therefore every latency — exactly as [no_resilience] computes it. *)
  let plain = Service.run ~config ~scheme:Scheme.Baseline trace in
  let guarded =
    Service.run
      ~config:
        {
          config with
          Service.resilience =
            {
              Service.no_resilience with
              Service.deadline = Some max_int;
              retries = 3;
              retry_backoff = 1;
              hedge_after = Some (max_int / 2);
            };
        }
      ~scheme:Scheme.Baseline trace
  in
  check
    Alcotest.(array (float 1e-9))
    "latencies identical" plain.Service.latencies guarded.Service.latencies;
  checki "completed identical" plain.Service.completed
    guarded.Service.completed;
  checki "makespan identical" plain.Service.makespan guarded.Service.makespan;
  checki "nothing failed" 0 guarded.Service.failed;
  checki "nothing retried" 0 guarded.Service.retried;
  checki "nothing hedged" 0 guarded.Service.hedged;
  checki "attempts = dispatched" guarded.Service.dispatched
    guarded.Service.attempts;
  checki "no crashes" 0 guarded.Service.crashes;
  Service.assert_valid guarded

let test_chaos_degrades_tail () =
  let clean = Service.run ~config ~scheme:Scheme.Baseline trace in
  let jittery =
    Service.run ~config ~fault_plan:Fault_plan.jittery_channel
      ~scheme:Scheme.Baseline trace
  in
  checkb "jittery channel lengthens the p99 tail" true
    (Service.quantile jittery 0.99 > Service.quantile clean 0.99)

(* ------------------------------------------------------------------ *)
(* Transition cost                                                     *)
(* ------------------------------------------------------------------ *)

let test_switchless_shortens_latency () =
  let sync = Service.run ~config ~scheme:Scheme.Baseline trace in
  let swl =
    Service.run ~config:{ config with Service.switchless = true }
      ~scheme:Scheme.Baseline trace
  in
  checkb "switchless flagged" true swl.Service.switchless;
  (* Every request pays t_notify instead of EENTER+EEXIT, so each
     latency (queueing included) can only shrink. *)
  Array.iteri
    (fun k l -> checkb "per-request no slower" true (l <= sync.Service.latencies.(k)))
    swl.Service.latencies;
  checkb "median strictly faster" true
    (Service.quantile swl 0.5 < Service.quantile sync 0.5)

let test_native_transitions_free () =
  (* Native has no enclave boundary: the switchless discount must be a
     no-op, not a negative cost. *)
  let sync = Service.run ~config ~scheme:Scheme.Native trace in
  let swl =
    Service.run ~config:{ config with Service.switchless = true }
      ~scheme:Scheme.Native trace
  in
  check
    Alcotest.(array (float 1e-9))
    "identical latencies" sync.Service.latencies swl.Service.latencies

(* ------------------------------------------------------------------ *)
(* Quantiles and throughput                                            *)
(* ------------------------------------------------------------------ *)

let test_quantile_endpoints_and_monotonicity () =
  let o = Service.run ~config ~scheme:Scheme.Baseline trace in
  let sorted = Array.copy o.Service.latencies in
  Array.sort compare sorted;
  check (Alcotest.float 1e-9) "q0 is the minimum" sorted.(0)
    (Service.quantile o 0.0);
  check (Alcotest.float 1e-9) "q1 is the maximum"
    sorted.(Array.length sorted - 1)
    (Service.quantile o 1.0);
  List.fold_left
    (fun prev q ->
      let v = Service.quantile o q in
      checkb (Printf.sprintf "monotone at %.3f" q) true (v >= prev);
      v)
    neg_infinity
    [ 0.0; 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ]
  |> ignore

let test_throughput_positive () =
  let o = Service.run ~config ~scheme:Scheme.Baseline trace in
  checkb "positive throughput" true (Service.throughput o > 0.0);
  checkb "makespan covers the last arrival" true
    (o.Service.makespan
    >= (Service.arrival_times config).(config.Service.requests - 1))

(* ------------------------------------------------------------------ *)
(* Matrix determinism                                                  *)
(* ------------------------------------------------------------------ *)

let tags = [ "baseline"; "dfp-stop"; "native" ]

let scheme_for = function
  | "baseline" -> Scheme.Baseline
  | "dfp-stop" -> Scheme.dfp_stop
  | "native" -> Scheme.Native
  | t -> invalid_arg t

let test_matrix_parallel_equals_serial () =
  let render cells = Table.render (Service.summary_table cells) in
  let serial = Service.matrix ~jobs:1 ~config ~scheme_for ~tags trace in
  let forked = Service.matrix ~jobs:2 ~config ~scheme_for ~tags trace in
  check
    Alcotest.(list string)
    "tag order preserved" tags (List.map fst serial);
  check Alcotest.string "summary bytes identical" (render serial) (render forked)

let test_matrix_rerun_identical () =
  let render cells = Table.render (Service.summary_table cells) in
  let a = Service.matrix ~jobs:1 ~config ~scheme_for ~tags trace in
  let b = Service.matrix ~jobs:1 ~config ~scheme_for ~tags trace in
  check Alcotest.string "same seed, same table" (render a) (render b)

(* ------------------------------------------------------------------ *)
(* Validate.check_service direct coverage                              *)
(* ------------------------------------------------------------------ *)

let test_check_service_flags_violations () =
  let h = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:100.0 ~buckets:4 () in
  Histogram.add h 10.0;
  Histogram.add h 20.0;
  (* Conservation broken: 3 <> 2 + 0. *)
  let vs =
    Validate.check_service ~dispatched:3 ~completed:2 ~in_flight:0 ~latency:h []
  in
  checkb "conservation violation reported" true
    (List.exists (fun (x : Validate.violation) -> x.check = "service-conservation") vs);
  (* Count mismatch: histogram holds 2, claim 3 completed. *)
  let vs2 =
    Validate.check_service ~dispatched:3 ~completed:3 ~in_flight:0 ~latency:h []
  in
  checkb "latency-count violation reported" true
    (List.exists (fun (x : Validate.violation) -> x.check = "service-latency") vs2);
  (* nan latency is rejected even though the histogram quarantines it. *)
  Histogram.add h Float.nan;
  let vs3 =
    Validate.check_service ~dispatched:3 ~completed:3 ~in_flight:0 ~latency:h []
  in
  checkb "nan latency reported" true
    (List.exists
       (fun (x : Validate.violation) ->
         x.check = "service-latency"
         && String.length x.detail >= 3
         && String.sub x.detail 0 3 = "1 n")
       vs3);
  (* A healthy outcome reports nothing. *)
  let ok = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:100.0 ~buckets:4 () in
  Histogram.add ok 10.0;
  checki "healthy run clean" 0
    (List.length
       (Validate.check_service ~dispatched:2 ~completed:1 ~in_flight:1
          ~latency:ok []))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "service"
    [
      ( "arrivals",
        [
          tc "deterministic" test_arrivals_deterministic;
          tc "seed sensitive" test_arrivals_seed_sensitive;
          tc "non-decreasing" test_arrivals_non_decreasing;
          tc "bursty groups" test_arrivals_bursty_groups;
          tc "bad config rejected" test_arrivals_bad_config_rejected;
          tc "grammar round-trips" test_arrival_grammar_roundtrip;
          tc "grammar errors" test_arrival_grammar_errors;
        ] );
      ( "conservation",
        [
          tc "requests conserved" test_run_conserves_requests;
          tc "horizon leaves in-flight" test_run_horizon_in_flight;
          tc "inert resilience identity" test_inert_resilience_identity;
          tc "chaos validates" test_run_under_chaos_validates;
          tc "chaos degrades tail" test_chaos_degrades_tail;
        ] );
      ( "transitions",
        [
          tc "switchless shortens latency" test_switchless_shortens_latency;
          tc "native transitions free" test_native_transitions_free;
        ] );
      ( "report",
        [
          tc "quantile endpoints and monotonicity"
            test_quantile_endpoints_and_monotonicity;
          tc "throughput positive" test_throughput_positive;
        ] );
      ( "matrix",
        [
          tc "parallel equals serial" test_matrix_parallel_equals_serial;
          tc "rerun identical" test_matrix_rerun_identical;
        ] );
      ( "validate",
        [ tc "check_service flags violations" test_check_service_flags_violations ] );
    ]
