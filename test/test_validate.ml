(* Tests of the observability layer: the Validate invariant checker
   (including that it rejects logs exhibiting the pre-fix Sip_notify
   timestamp bug) and the Trace_export renderers, whose JSON output is
   re-parsed here with a small recursive-descent parser — the repository
   deliberately carries no JSON dependency. *)

module Runner = Sim.Runner
module Validate = Sim.Validate
module Trace_export = Sim.Trace_export
module Scheme = Preload.Scheme
module Event = Sgxsim.Event
module Cost_model = Sgxsim.Cost_model
module Load_channel = Sgxsim.Load_channel
module Trace = Workload.Trace
module Pattern = Workload.Pattern

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let c = Cost_model.paper

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser                                                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect ch =
    if !pos < n && s.[!pos] = ch then incr pos
    else fail (Printf.sprintf "expected %c" ch)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "dangling escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          (* The exports only emit control characters this way; a
             placeholder is enough for the tests. *)
          pos := !pos + 4;
          Buffer.add_char buf '?'
        | ch -> fail (Printf.sprintf "bad escape \\%c" ch));
        incr pos;
        go ()
      | ch ->
        Buffer.add_char buf ch;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        expect '}';
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          fields := (key, value) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            expect ',';
            members ()
          | _ -> expect '}'
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        expect ']';
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let value = parse_value () in
          items := value :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            expect ',';
            elements ()
          | _ -> expect ']'
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Some (Num f) -> f | _ -> Alcotest.fail "expected number"
let to_str = function Some (Str s) -> s | _ -> Alcotest.fail "expected string"
let to_arr = function Some (Arr xs) -> xs | _ -> Alcotest.fail "expected array"

(* ------------------------------------------------------------------ *)
(* A small deterministic run to export                                 *)
(* ------------------------------------------------------------------ *)

let didactic_trace () =
  Trace.make ~name:"export-didactic" ~elrange_pages:64 ~footprint_pages:16
    ~seed:1
    ~sites:[ (0, "loop") ]
    (Pattern.sequential ~site:0 ~base:0 ~pages:16 ~events_per_page:2
       ~compute:60_000 ~jitter:0.0)

let run_didactic scheme =
  (* EPC above the footprint: cold faults only, so every baseline fault
     span has the exact architectural cost asserted below. *)
  let config =
    { Runner.default_config with epc_pages = 32; log_capacity = 4096 }
  in
  Runner.run ~spec:(Runner.Spec.make ~config ()) ~scheme (didactic_trace ())

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* Everything goes through the one public entry point. *)
let chrome r = Trace_export.render ~format:Trace_export.Chrome_trace r
let jsonl r = Trace_export.render ~format:Trace_export.Jsonl r

let csv_lines r =
  match
    String.split_on_char '\n' (Trace_export.render ~format:Trace_export.Csv r)
  with
  | [ header; row; "" ] -> (header, row)
  | _ -> Alcotest.fail "csv payload must be one header line plus one row"

let test_chrome_trace_parses () =
  let r = run_didactic Scheme.dfp_default in
  let doc = parse_json (chrome r) in
  let events = to_arr (member "traceEvents" doc) in
  checkb "has events beyond metadata" true (List.length events > 8);
  List.iter
    (fun e ->
      let ph = to_str (member "ph" e) in
      checkb "known phase" true (List.mem ph [ "X"; "i"; "M" ]);
      checkb "named" true (String.length (to_str (member "name" e)) > 0);
      checki "single process" 1 (int_of_float (to_num (member "pid" e)));
      if ph = "X" then
        checkb "span duration non-negative" true (to_num (member "dur" e) >= 0.0))
    events

let test_chrome_trace_timestamps_monotone_per_track () =
  let r = run_didactic Scheme.dfp_default in
  let events = to_arr (member "traceEvents" (parse_json (chrome r))) in
  let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if to_str (member "ph" e) <> "M" then begin
        let tid = int_of_float (to_num (member "tid" e)) in
        let ts = to_num (member "ts" e) in
        (match Hashtbl.find_opt last tid with
        | Some prev ->
          checkb
            (Printf.sprintf "tid %d nondecreasing at ts %.0f" tid ts)
            true (ts >= prev)
        | None -> ());
        Hashtbl.replace last tid ts
      end)
    events;
  checkb "app and channel tracks both present" true
    (Hashtbl.mem last 1 && Hashtbl.mem last 2)

let test_chrome_trace_names_tracks () =
  let r = run_didactic Scheme.Baseline in
  let events = to_arr (member "traceEvents" (parse_json (chrome r))) in
  let thread_names =
    List.filter_map
      (fun e ->
        if to_str (member "ph" e) = "M" && to_str (member "name" e) = "thread_name"
        then Some (to_str (member "name" (Option.get (member "args" e))))
        else None)
      events
  in
  List.iter
    (fun expected -> checkb expected true (List.mem expected thread_names))
    [ "app thread"; "load channel"; "service scan"; "preload queue" ]

let test_chrome_trace_fault_spans_cost_accurate () =
  (* Every baseline fault span covers AEX + load + ERESUME (the didactic
     trace never waits on an in-flight load). *)
  let r = run_didactic Scheme.Baseline in
  let events = to_arr (member "traceEvents" (parse_json (chrome r))) in
  let fault_spans =
    List.filter
      (fun e ->
        to_str (member "ph" e) = "X"
        && member "cat" e = Some (Str "fault"))
      events
  in
  checki "one span per fault" (Sgxsim.Metrics.total_faults r.metrics)
    (List.length fault_spans);
  List.iter
    (fun e ->
      checki "span covers the whole fault"
        (c.t_aex + c.t_load + c.t_eresume)
        (int_of_float (to_num (member "dur" e))))
    fault_spans

(* ------------------------------------------------------------------ *)
(* JSONL / CSV export                                                  *)
(* ------------------------------------------------------------------ *)

let test_jsonl_row_round_trips () =
  let r = run_didactic Scheme.dfp_default in
  let row = parse_json (jsonl r) in
  Alcotest.(check string) "workload" "export-didactic" (to_str (member "workload" row));
  Alcotest.(check string) "scheme" r.scheme (to_str (member "scheme" row));
  checki "cycles" r.cycles (int_of_float (to_num (member "cycles" row)));
  checki "final_now agrees" r.cycles (int_of_float (to_num (member "final_now" row)));
  checki "faults" r.metrics.faults (int_of_float (to_num (member "faults" row)))

let test_csv_header_matches_row () =
  let r = run_didactic Scheme.Baseline in
  let split line = String.split_on_char ',' line in
  let header_line, row_line = csv_lines r in
  let header = split header_line in
  let row = split row_line in
  checki "same arity" (List.length header) (List.length row);
  let get key = List.assoc key (List.combine header row) in
  Alcotest.(check string) "workload cell" "export-didactic" (get "workload");
  Alcotest.(check string) "cycles cell" (string_of_int r.cycles) (get "cycles");
  (* The JSONL object exposes exactly the CSV columns. *)
  match parse_json (jsonl r) with
  | Obj fields ->
    Alcotest.(check (list string)) "jsonl keys = csv columns" header
      (List.map fst fields)
  | _ -> Alcotest.fail "jsonl row must be an object"

(* ------------------------------------------------------------------ *)
(* Validate: clean runs pass                                           *)
(* ------------------------------------------------------------------ *)

let test_clean_runs_validate () =
  List.iter
    (fun scheme ->
      let r = run_didactic scheme in
      checkb (r.Runner.scheme ^ " log complete") false
        r.Runner.diagnostics.Runner.events_truncated;
      Alcotest.(check string)
        (r.scheme ^ " passes")
        ""
        (Validate.report (Validate.check r)))
    [ Scheme.Baseline; Scheme.Native; Scheme.dfp_default; Scheme.next_line ~degree:2 ]

(* ------------------------------------------------------------------ *)
(* Validate: corrupted logs are rejected                               *)
(* ------------------------------------------------------------------ *)

let flags check violations = List.exists (fun v -> v.Validate.check = check) violations

let test_swapped_timestamps_detected () =
  let log =
    [
      Event.Scan { at = 500 };
      Event.Scan { at = 100 };
      (* out of order *)
      Event.Scan { at = 900 };
    ]
  in
  checkb "monotonicity violation reported" true
    (flags "monotone-timestamps" (Validate.check_events ~costs:c log))

let test_dropped_load_done_detected () =
  (* Two starts with the first load's completion dropped: the exclusive
     channel can never have two loads in flight. *)
  let log =
    [
      Event.Load_start { at = 0; vpage = 1; kind = Load_channel.Preload_dfp };
      Event.Load_start { at = 50_000; vpage = 2; kind = Load_channel.Preload_dfp };
      Event.Load_done { at = 94_000; vpage = 2; kind = Load_channel.Preload_dfp };
    ]
  in
  checkb "channel violation reported" true
    (flags "channel-exclusive" (Validate.check_events ~costs:c log))

let test_unmatched_load_done_detected () =
  let log =
    [ Event.Load_done { at = 44_000; vpage = 3; kind = Load_channel.Demand } ]
  in
  checkb "orphan load-done reported" true
    (flags "channel-exclusive" (Validate.check_events ~costs:c log))

let test_prefix_sip_notify_bug_detected () =
  (* The pre-fix recorder stamped Sip_notify with the bitmap-check time.
     Synthesize exactly that log and demand the checker reject it. *)
  let checked_at = 1_000 + c.t_bitmap_check in
  let buggy =
    [
      Event.Sip_check { at = checked_at; vpage = 7; present = false };
      Event.Sip_notify { at = checked_at; vpage = 7 };
      Event.Load_start { at = checked_at + c.t_notify; vpage = 7; kind = Load_channel.Preload_sip };
      Event.Load_done { at = checked_at + c.t_notify + c.t_load; vpage = 7; kind = Load_channel.Preload_sip };
    ]
  in
  checkb "pre-fix log rejected" true
    (flags "sip-notify-span" (Validate.check_events ~costs:c buggy));
  (* The same span with the correct stamp passes. *)
  let fixed =
    [
      Event.Sip_check { at = checked_at; vpage = 7; present = false };
      Event.Sip_notify { at = checked_at + c.t_notify; vpage = 7 };
      Event.Load_start { at = checked_at + c.t_notify; vpage = 7; kind = Load_channel.Preload_sip };
      Event.Load_done { at = checked_at + c.t_notify + c.t_load; vpage = 7; kind = Load_channel.Preload_sip };
    ]
  in
  Alcotest.(check string) "fixed log accepted" ""
    (Validate.report (Validate.check_events ~costs:c fixed))

let test_fault_span_discipline () =
  let ok =
    [
      Event.Fault { at = 100; vpage = 4 };
      Event.Aex_done { at = 100 + c.t_aex; vpage = 4 };
      Event.Eresume { at = 100 + c.t_aex + c.t_load + c.t_eresume; vpage = 4 };
    ]
  in
  Alcotest.(check string) "well-formed span accepted" ""
    (Validate.report (Validate.check_events ~costs:c ok));
  let late_aex =
    [
      Event.Fault { at = 100; vpage = 4 };
      Event.Aex_done { at = 100 + c.t_aex + 1; vpage = 4 };
      Event.Eresume { at = 200_000; vpage = 4 };
    ]
  in
  checkb "mistimed aex-done rejected" true
    (flags "fault-span" (Validate.check_events ~costs:c late_aex));
  let unterminated = [ Event.Fault { at = 100; vpage = 4 } ] in
  checkb "fault without eresume rejected" true
    (flags "fault-span" (Validate.check_events ~costs:c unterminated))

let test_validator_distinguishes_violations () =
  (* Each corruption is reported under its own check name, so a report
     names the failing invariant rather than a generic error. *)
  let log =
    [
      Event.Scan { at = 1_000 };
      Event.Scan { at = 0 };
      Event.Load_done { at = 2_000; vpage = 1; kind = Load_channel.Demand };
    ]
  in
  let violations = Validate.check_events ~costs:c log in
  checkb "monotone flagged" true (flags "monotone-timestamps" violations);
  checkb "channel flagged" true (flags "channel-exclusive" violations);
  checkb "fault spans not dragged in" false (flags "fault-span" violations);
  let report = Validate.report violations in
  checkb "report names the checks" true
    (String.length report > 0 && report.[0] = '[')

(* ------------------------------------------------------------------ *)
(* Validate: whole-run accounting and assert_valid                     *)
(* ------------------------------------------------------------------ *)

let test_accounting_identity_broken_detected () =
  let r = run_didactic Scheme.Baseline in
  (* Tamper with the reported clock: the cycle identity must catch it. *)
  let tampered = { r with Runner.final_now = r.final_now + 1 } in
  checkb "cycle identity violated" true
    (flags "cycle-identity" (Validate.check tampered));
  (match Validate.check r with
  | [] -> ()
  | vs -> Alcotest.fail ("clean run flagged: " ^ Validate.report vs));
  Alcotest.check_raises "assert_valid raises on tampering"
    (Validate.Invalid (Validate.check tampered))
    (fun () -> Validate.assert_valid tampered)

let test_event_counter_mismatch_detected () =
  let r = run_didactic Scheme.dfp_default in
  (* Dropping one Fault event from the log must break the counter
     cross-check (the log claims fewer faults than the metrics). *)
  let dropped = ref false in
  let events =
    List.filter
      (fun e ->
        match e with
        | Event.Fault _ when not !dropped ->
          dropped := true;
          false
        | _ -> true)
      r.events
  in
  checkb "a fault was dropped" true !dropped;
  let tampered = { r with Runner.events } in
  checkb "event counter mismatch reported" true
    (flags "event-counter" (Validate.check tampered))

let test_in_flight_preload_miscount_detected () =
  let r = run_didactic Scheme.dfp_default in
  (* Claiming an in-flight preload the channel does not show... *)
  let d = r.Runner.diagnostics in
  let inflated =
    {
      r with
      Runner.diagnostics =
        { d with Runner.in_flight_preloads = d.Runner.in_flight_preloads + 1 };
    }
  in
  checkb "inflated count caught" true
    (flags "preload-identity" (Validate.check inflated));
  (* ...and the pre-fix blind spot: a dangling SIP-kind load with the
     counter still at zero.  The old runner counted only Preload_dfp, so
     this state sailed through validation. *)
  let sip_blind =
    {
      r with
      Runner.diagnostics =
        {
          d with
          Runner.in_flight_kind = Some Load_channel.Preload_sip;
          in_flight_preloads = 0;
        };
    }
  in
  checkb "sip-kind blind spot caught" true
    (flags "preload-identity" (Validate.check sip_blind))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "validate"
    [
      ( "chrome trace",
        [
          tc "parses as JSON" test_chrome_trace_parses;
          tc "timestamps monotone per track" test_chrome_trace_timestamps_monotone_per_track;
          tc "names tracks" test_chrome_trace_names_tracks;
          tc "fault spans cost-accurate" test_chrome_trace_fault_spans_cost_accurate;
        ] );
      ( "rows",
        [
          tc "jsonl round-trips" test_jsonl_row_round_trips;
          tc "csv header matches row" test_csv_header_matches_row;
        ] );
      ( "validator",
        [
          tc "clean runs pass" test_clean_runs_validate;
          tc "swapped timestamps" test_swapped_timestamps_detected;
          tc "dropped load-done" test_dropped_load_done_detected;
          tc "orphan load-done" test_unmatched_load_done_detected;
          tc "pre-fix sip-notify log rejected" test_prefix_sip_notify_bug_detected;
          tc "fault-span discipline" test_fault_span_discipline;
          tc "violations distinguished" test_validator_distinguishes_violations;
          tc "tampered accounting caught" test_accounting_identity_broken_detected;
          tc "tampered event log caught" test_event_counter_mismatch_detected;
          tc "in-flight preload miscount caught" test_in_flight_preload_miscount_detected;
        ] );
    ]
