(* Tests of the fork-based job pool: submission-order determinism, the
   serial fast path, crash containment (both a raising job and a dying
   worker), and the tentpole guarantee that experiment tables computed
   at -j N equal the -j 1 tables exactly. *)

module Job_pool = Sim.Job_pool
module Experiments = Sim.Experiments

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Ordering and fast path                                              *)
(* ------------------------------------------------------------------ *)

let test_order_determinism () =
  (* Job sizes fall steeply with the index, so under any parallel
     schedule late jobs finish before early ones; the merged result must
     still be in submission order at every worker count. *)
  let jobs =
    List.init 24 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "job%d" i) (fun () ->
            let acc = ref 0 in
            for k = 1 to (24 - i) * 5_000 do
              acc := !acc + (k mod 7)
            done;
            ignore !acc;
            i * i))
  in
  let expected = List.init 24 (fun i -> i * i) in
  List.iter
    (fun workers ->
      Alcotest.(check (list int))
        (Printf.sprintf "workers=%d" workers)
        expected
        (Job_pool.run ~jobs:workers jobs))
    [ 1; 2; 3; 4; 7 ]

let test_serial_fast_path_runs_in_process () =
  (* jobs:1 must not fork: the caller sees the job's mutations, which a
     forked worker could never provide. *)
  let cell = ref 0 in
  let r =
    Job_pool.run ~jobs:1
      [
        Job_pool.job ~label:"mutate" (fun () ->
            cell := 41;
            !cell + 1);
      ]
  in
  Alcotest.(check (list int)) "result" [ 42 ] r;
  checki "mutation visible: ran in-process" 41 !cell

let test_serial_fast_path_raw_exceptions () =
  (* The documented List.map equivalence: in-process jobs propagate
     their exceptions unchanged, not wrapped in Job_failed. *)
  Alcotest.check_raises "raw exception" (Failure "as-is") (fun () ->
      ignore
        (Job_pool.run ~jobs:1
           [ Job_pool.job ~label:"raises" (fun () -> failwith "as-is") ]))

let test_forked_workers_are_isolated () =
  let cell = ref 0 in
  let r =
    Job_pool.run ~jobs:2
      (List.init 4 (fun i ->
           Job_pool.job ~label:(Printf.sprintf "j%d" i) (fun () ->
               cell := 99;
               i)))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3 ] r;
  checki "parent state untouched by workers" 0 !cell

let test_empty_and_clamped () =
  Alcotest.(check (list int)) "no jobs" [] (Job_pool.run ~jobs:8 []);
  Alcotest.(check (list int))
    "more workers than jobs" [ 7 ]
    (Job_pool.run ~jobs:64 [ Job_pool.job ~label:"only" (fun () -> 7) ]);
  Alcotest.check_raises "absurd worker count rejected"
    (Invalid_argument "Job_pool.run: jobs > 1024") (fun () ->
      ignore (Job_pool.run ~jobs:4096 [ Job_pool.job ~label:"x" (fun () -> 0) ]))

let test_default_jobs_positive () =
  checkb "at least one processor" true (Job_pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Crash containment                                                   *)
(* ------------------------------------------------------------------ *)

let test_raising_job_names_itself () =
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"fine" (fun () -> 1);
        Job_pool.job ~label:"boom" (fun () -> failwith "broken cell");
        Job_pool.job ~label:"also-fine" (fun () -> 3);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { label; reason } ->
    Alcotest.(check string) "failing job's label" "boom" label;
    checkb "reason carries the exception" true (contains reason "broken cell")

let test_first_failure_in_submission_order () =
  (* Two failing jobs: whatever the worker count, the reported one is
     the first in submission order. *)
  let jobs =
    List.init 6 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "cell%d" i) (fun () ->
            if i = 2 || i = 5 then failwith "bad" else i))
  in
  List.iter
    (fun workers ->
      match Job_pool.run ~jobs:workers jobs with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Job_pool.Job_failed { label; _ } ->
        Alcotest.(check string)
          (Printf.sprintf "workers=%d" workers)
          "cell2" label)
    [ 2; 3; 4 ]

let test_dead_worker_names_lost_job () =
  (* A worker that exits without reporting (as a segfault or kill -9
     would): the pool must name the job that went missing rather than
     hang or return a short list. *)
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"survivor" (fun () -> 0);
        Job_pool.job ~label:"dies-silently" (fun () -> Unix._exit 9);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { label; reason } ->
    Alcotest.(check string) "lost job's label" "dies-silently" label;
    checkb "reason reports the exit status" true (contains reason "9")

let test_unmarshalable_result_contained () =
  (* A job whose result captures a closure cannot cross the pipe; that
     must surface as the job's failure, not kill the worker's share. *)
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"plain" (fun () -> fun x -> x);
        Job_pool.job ~label:"closure" (fun () -> fun x -> x + 1);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { reason; _ } ->
    checkb "reason mentions marshal" true (contains reason "marshal")

(* ------------------------------------------------------------------ *)
(* Experiment tables are -j invariant                                  *)
(* ------------------------------------------------------------------ *)

let quick1 = Experiments.quick
let quick4 = { Experiments.quick with jobs = 4 }

let test_fig6_sweep_j_invariant () =
  checkb "fig6 identical at -j4" true
    (Experiments.fig6_sweep quick1 = Experiments.fig6_sweep quick4)

let test_fig8_rows_j_invariant () =
  checkb "fig8 identical at -j4" true
    (Experiments.fig8_rows quick1 = Experiments.fig8_rows quick4)

let test_fig12_rows_j_invariant () =
  checkb "fig12 identical at -j4" true
    (Experiments.fig12_rows quick1 = Experiments.fig12_rows quick4)

let test_macro_bench_j_invariant () =
  (* Wall-clock columns measure the machine; every simulated column must
     be identical whether the five replays fork or not. *)
  let strip (r : Sim.Macro_bench.report) =
    List.map
      (fun (row : Sim.Macro_bench.row) ->
        (row.scheme, row.sim_cycles, row.faults, row.preloads_issued,
         row.pending_at_end))
      r.rows
  in
  let smoke = { Sim.Macro_bench.smoke with events = 5_000 } in
  checkb "macro-bench rows identical at -j3" true
    (strip (Sim.Macro_bench.run ~jobs:1 smoke)
    = strip (Sim.Macro_bench.run ~jobs:3 smoke))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "job_pool"
    [
      ( "pool",
        [
          tc "submission-order determinism" test_order_determinism;
          tc "serial fast path in-process" test_serial_fast_path_runs_in_process;
          tc "serial fast path raw exceptions" test_serial_fast_path_raw_exceptions;
          tc "forked workers isolated" test_forked_workers_are_isolated;
          tc "empty and clamped" test_empty_and_clamped;
          tc "default jobs" test_default_jobs_positive;
        ] );
      ( "crash containment",
        [
          tc "raising job names itself" test_raising_job_names_itself;
          tc "first failure in submission order" test_first_failure_in_submission_order;
          tc "dead worker names lost job" test_dead_worker_names_lost_job;
          tc "unmarshalable result contained" test_unmarshalable_result_contained;
        ] );
      ( "experiments",
        [
          slow "fig6 -j invariant" test_fig6_sweep_j_invariant;
          slow "fig8 -j invariant" test_fig8_rows_j_invariant;
          slow "fig12 -j invariant" test_fig12_rows_j_invariant;
          slow "macro-bench -j invariant" test_macro_bench_j_invariant;
        ] );
    ]
