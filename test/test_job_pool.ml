(* Tests of the fork-based job pool: submission-order determinism, the
   serial fast path, crash containment (both a raising job and a dying
   worker), and the tentpole guarantee that experiment tables computed
   at -j N equal the -j 1 tables exactly. *)

module Job_pool = Sim.Job_pool
module Experiments = Sim.Experiments

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Ordering and fast path                                              *)
(* ------------------------------------------------------------------ *)

let test_order_determinism () =
  (* Job sizes fall steeply with the index, so under any parallel
     schedule late jobs finish before early ones; the merged result must
     still be in submission order at every worker count. *)
  let jobs =
    List.init 24 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "job%d" i) (fun () ->
            let acc = ref 0 in
            for k = 1 to (24 - i) * 5_000 do
              acc := !acc + (k mod 7)
            done;
            ignore !acc;
            i * i))
  in
  let expected = List.init 24 (fun i -> i * i) in
  List.iter
    (fun workers ->
      Alcotest.(check (list int))
        (Printf.sprintf "workers=%d" workers)
        expected
        (Job_pool.run ~jobs:workers jobs))
    [ 1; 2; 3; 4; 7 ]

let test_serial_fast_path_runs_in_process () =
  (* jobs:1 must not fork: the caller sees the job's mutations, which a
     forked worker could never provide. *)
  let cell = ref 0 in
  let r =
    Job_pool.run ~jobs:1
      [
        Job_pool.job ~label:"mutate" (fun () ->
            cell := 41;
            !cell + 1);
      ]
  in
  Alcotest.(check (list int)) "result" [ 42 ] r;
  checki "mutation visible: ran in-process" 41 !cell

let test_serial_fast_path_raw_exceptions () =
  (* The documented List.map equivalence: in-process jobs propagate
     their exceptions unchanged, not wrapped in Job_failed. *)
  Alcotest.check_raises "raw exception" (Failure "as-is") (fun () ->
      ignore
        (Job_pool.run ~jobs:1
           [ Job_pool.job ~label:"raises" (fun () -> failwith "as-is") ]))

let test_forked_workers_are_isolated () =
  let cell = ref 0 in
  let r =
    Job_pool.run ~jobs:2
      (List.init 4 (fun i ->
           Job_pool.job ~label:(Printf.sprintf "j%d" i) (fun () ->
               cell := 99;
               i)))
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3 ] r;
  checki "parent state untouched by workers" 0 !cell

let test_empty_and_clamped () =
  Alcotest.(check (list int)) "no jobs" [] (Job_pool.run ~jobs:8 []);
  Alcotest.(check (list int))
    "more workers than jobs" [ 7 ]
    (Job_pool.run ~jobs:64 [ Job_pool.job ~label:"only" (fun () -> 7) ]);
  Alcotest.check_raises "absurd worker count rejected"
    (Invalid_argument "Job_pool.run: jobs > 1024") (fun () ->
      ignore (Job_pool.run ~jobs:4096 [ Job_pool.job ~label:"x" (fun () -> 0) ]))

let test_default_jobs_positive () =
  checkb "at least one processor" true (Job_pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Crash containment                                                   *)
(* ------------------------------------------------------------------ *)

let test_raising_job_names_itself () =
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"fine" (fun () -> 1);
        Job_pool.job ~label:"boom" (fun () -> failwith "broken cell");
        Job_pool.job ~label:"also-fine" (fun () -> 3);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { label; reason } ->
    Alcotest.(check string) "failing job's label" "boom" label;
    checkb "reason carries the exception" true (contains reason "broken cell")

let test_first_failure_in_submission_order () =
  (* Two failing jobs: whatever the worker count, the reported one is
     the first in submission order. *)
  let jobs =
    List.init 6 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "cell%d" i) (fun () ->
            if i = 2 || i = 5 then failwith "bad" else i))
  in
  List.iter
    (fun workers ->
      match Job_pool.run ~jobs:workers jobs with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Job_pool.Job_failed { label; _ } ->
        Alcotest.(check string)
          (Printf.sprintf "workers=%d" workers)
          "cell2" label)
    [ 2; 3; 4 ]

let test_dead_worker_names_lost_job () =
  (* A worker that exits without reporting (as a segfault or kill -9
     would): the pool must name the job that went missing rather than
     hang or return a short list. *)
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"survivor" (fun () -> 0);
        Job_pool.job ~label:"dies-silently" (fun () -> Unix._exit 9);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { label; reason } ->
    Alcotest.(check string) "lost job's label" "dies-silently" label;
    checkb "reason reports the exit status" true (contains reason "9")

let test_unmarshalable_result_contained () =
  (* A job whose result captures a closure cannot cross the pipe; that
     must surface as the job's failure, not kill the worker's share. *)
  match
    Job_pool.run ~jobs:2
      [
        Job_pool.job ~label:"plain" (fun () -> fun x -> x);
        Job_pool.job ~label:"closure" (fun () -> fun x -> x + 1);
      ]
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job_pool.Job_failed { reason; _ } ->
    checkb "reason mentions marshal" true (contains reason "marshal")

(* ------------------------------------------------------------------ *)
(* Hardened pool: timeout, retry, keep-going, journal/resume           *)
(* ------------------------------------------------------------------ *)

let tmp_name prefix =
  Filename.temp_file ~temp_dir:(Filename.get_temp_dir_name ()) prefix ".tmp"

let with_tmp prefix f =
  let path = tmp_name prefix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Worker-side witness: each execution appends one line, so the parent
   can count how often a cell actually ran across attempts/resumes.
   O_APPEND keeps concurrent single-line writes atomic. *)
let witness path line =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_APPEND; O_CREAT ] 0o644 in
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s));
  Unix.close fd

let witness_count path line =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           if input_line ic = line then incr n
         done
       with End_of_file -> ());
      !n)

let test_timeout_kills_hung_cell () =
  let jobs =
    [
      Job_pool.job ~label:"quick" (fun () -> 1);
      Job_pool.job ~label:"hangs" (fun () ->
          while true do
            Unix.sleepf 3600.0
          done;
          0);
      Job_pool.job ~label:"also-quick" (fun () -> 3);
    ]
  in
  let before = Unix.gettimeofday () in
  let r = Job_pool.run_hardened ~jobs:2 ~timeout:0.4 jobs in
  checkb "finished well before the hung cell would"
    true
    (Unix.gettimeofday () -. before < 30.0);
  match r with
  | [ Ok 1; Error f; Ok 3 ] ->
    Alcotest.(check string) "hung cell named" "hangs" f.Job_pool.label;
    checkb "reason says timed out" true (contains f.reason "timed out")
  | _ -> Alcotest.fail "expected [Ok 1; Error _; Ok 3]"

let test_retry_recovers_flaky_cell () =
  (* First attempt plants a marker and dies; the retry (a fresh fork)
     sees the marker and succeeds.  One retry must be enough. *)
  with_tmp "flaky" @@ fun marker ->
  Sys.remove marker;
  let jobs =
    [
      Job_pool.job ~label:"flaky" (fun () ->
          if Sys.file_exists marker then 7
          else begin
            witness marker "attempt";
            failwith "first attempt dies"
          end);
    ]
  in
  match Job_pool.run_hardened ~jobs:2 ~retries:1 ~backoff:0.01 jobs with
  | [ Ok 7 ] -> ()
  | [ Error f ] -> Alcotest.fail ("expected recovery, got: " ^ f.Job_pool.reason)
  | _ -> Alcotest.fail "expected one result"

let test_retry_exhaustion_counts_attempts () =
  let jobs =
    [ Job_pool.job ~label:"doomed" (fun () -> failwith "always"); ]
  in
  match Job_pool.run_hardened ~jobs:2 ~retries:2 ~backoff:0.01 jobs with
  | [ Error f ] ->
    checki "initial attempt + 2 retries" 3 f.Job_pool.attempts;
    checkb "reason kept" true (contains f.reason "always")
  | _ -> Alcotest.fail "expected Error"

let test_keep_going_shape () =
  (* The hardened pool never discards neighbours: every cell gets a slot
     in submission order, failures in place. *)
  let jobs =
    List.init 6 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "c%d" i) (fun () ->
            if i mod 2 = 1 then failwith "odd cell dies" else i * 10))
  in
  let r = Job_pool.run_hardened ~jobs:3 jobs in
  checki "all six reported" 6 (List.length r);
  List.iteri
    (fun i res ->
      match res with
      | Ok v -> checki (Printf.sprintf "c%d value" i) (i * 10) v
      | Error f ->
        checkb (Printf.sprintf "c%d is odd" i) true (i mod 2 = 1);
        Alcotest.(check string)
          "failure names its cell"
          (Printf.sprintf "c%d" i)
          f.Job_pool.label)
    r

let test_interrupt_and_resume () =
  (* Run 1: cell c2 fails (its marker is absent), the rest journal.
     Run 2 with [resume]: only c2 re-executes — the witness counts prove
     the journaled cells were reused, and the merged results are
     complete and in order. *)
  with_tmp "journal" @@ fun journal ->
  with_tmp "wit" @@ fun wit ->
  with_tmp "fix" @@ fun fix ->
  Sys.remove journal;
  Sys.remove fix;
  let jobs () =
    List.init 5 (fun i ->
        Job_pool.job ~label:(Printf.sprintf "c%d" i) (fun () ->
            witness wit (Printf.sprintf "c%d" i);
            if i = 2 && not (Sys.file_exists fix) then failwith "not yet";
            i + 100))
  in
  (match
     Job_pool.run_hardened ~jobs:2 ~journal ~journal_key:"resume-test"
       (jobs ())
   with
  | [ Ok 100; Ok 101; Error f; Ok 103; Ok 104 ] ->
    Alcotest.(check string) "failed cell" "c2" f.Job_pool.label
  | _ -> Alcotest.fail "run 1: expected c2 to fail, others to pass");
  witness fix "fixed";
  (match
     Job_pool.run_hardened ~jobs:2 ~journal ~journal_key:"resume-test"
       ~resume:true (jobs ())
   with
  | [ Ok 100; Ok 101; Ok 102; Ok 103; Ok 104 ] -> ()
  | _ -> Alcotest.fail "run 2: expected full recovery");
  List.iter
    (fun i ->
      checki
        (Printf.sprintf "c%d executions" i)
        (if i = 2 then 2 else 1)
        (witness_count wit (Printf.sprintf "c%d" i)))
    [ 0; 1; 2; 3; 4 ]

let test_stale_journal_key_ignored () =
  with_tmp "journal" @@ fun journal ->
  with_tmp "wit" @@ fun wit ->
  Sys.remove journal;
  let jobs key =
    [
      Job_pool.job ~label:"only" (fun () ->
          witness wit key;
          42);
    ]
  in
  ignore
    (Job_pool.run_hardened ~jobs:2 ~journal ~journal_key:"config-A"
       (jobs "A"));
  (* Same labels, different configuration key: the journal must not be
     trusted, the cell runs again. *)
  (match
     Job_pool.run_hardened ~jobs:2 ~journal ~journal_key:"config-B"
       ~resume:true (jobs "B")
   with
  | [ Ok 42 ] -> ()
  | _ -> Alcotest.fail "expected Ok 42");
  checki "cell re-ran under the new key" 1 (witness_count wit "B")

let test_sigkill_containment_property () =
  (* Property: for any subset of cells SIGKILLed mid-run, the pool
     terminates, reports exactly the killed cells as failures naming the
     signal, and returns every other cell's value in order. *)
  let cells = 8 in
  let prop mask =
    let jobs =
      List.init cells (fun i ->
          Job_pool.job ~label:(Printf.sprintf "k%d" i) (fun () ->
              if mask land (1 lsl i) <> 0 then
                Unix.kill (Unix.getpid ()) Sys.sigkill;
              i))
    in
    let r = Job_pool.run_hardened ~jobs:3 jobs in
    List.length r = cells
    && List.for_all2
         (fun i res ->
           match res with
           | Ok v -> mask land (1 lsl i) = 0 && v = i
           | Error (f : Job_pool.failure) ->
             mask land (1 lsl i) <> 0
             && f.label = Printf.sprintf "k%d" i
             && contains f.reason "SIGKILL")
         (List.init cells Fun.id)
         r
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:12 ~name:"sigkill containment"
       QCheck.(int_bound ((1 lsl cells) - 1))
       prop)

(* ------------------------------------------------------------------ *)
(* Experiment tables are -j invariant                                  *)
(* ------------------------------------------------------------------ *)

let quick1 = Experiments.quick
let quick4 = { Experiments.quick with jobs = 4 }

let test_fig6_sweep_j_invariant () =
  checkb "fig6 identical at -j4" true
    (Experiments.fig6_sweep quick1 = Experiments.fig6_sweep quick4)

let test_fig8_rows_j_invariant () =
  checkb "fig8 identical at -j4" true
    (Experiments.fig8_rows quick1 = Experiments.fig8_rows quick4)

let test_fig12_rows_j_invariant () =
  checkb "fig12 identical at -j4" true
    (Experiments.fig12_rows quick1 = Experiments.fig12_rows quick4)

let test_macro_bench_j_invariant () =
  (* Wall-clock columns measure the machine; every simulated column must
     be identical whether the five replays fork or not. *)
  let strip (r : Sim.Macro_bench.report) =
    List.map
      (fun (row : Sim.Macro_bench.row) ->
        (row.scheme, row.sim_cycles, row.faults, row.preloads_issued,
         row.pending_at_end))
      r.rows
  in
  let smoke = { Sim.Macro_bench.smoke with events = 5_000 } in
  checkb "macro-bench rows identical at -j3" true
    (strip (Sim.Macro_bench.run ~jobs:1 smoke)
    = strip (Sim.Macro_bench.run ~jobs:3 smoke))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "job_pool"
    [
      ( "pool",
        [
          tc "submission-order determinism" test_order_determinism;
          tc "serial fast path in-process" test_serial_fast_path_runs_in_process;
          tc "serial fast path raw exceptions" test_serial_fast_path_raw_exceptions;
          tc "forked workers isolated" test_forked_workers_are_isolated;
          tc "empty and clamped" test_empty_and_clamped;
          tc "default jobs" test_default_jobs_positive;
        ] );
      ( "crash containment",
        [
          tc "raising job names itself" test_raising_job_names_itself;
          tc "first failure in submission order" test_first_failure_in_submission_order;
          tc "dead worker names lost job" test_dead_worker_names_lost_job;
          tc "unmarshalable result contained" test_unmarshalable_result_contained;
        ] );
      ( "hardening",
        [
          tc "timeout kills hung cell" test_timeout_kills_hung_cell;
          tc "retry recovers flaky cell" test_retry_recovers_flaky_cell;
          tc "retry exhaustion counts attempts" test_retry_exhaustion_counts_attempts;
          tc "keep-going reports every cell" test_keep_going_shape;
          tc "interrupt and resume" test_interrupt_and_resume;
          tc "stale journal key ignored" test_stale_journal_key_ignored;
          slow "sigkill containment property" test_sigkill_containment_property;
        ] );
      ( "experiments",
        [
          slow "fig6 -j invariant" test_fig6_sweep_j_invariant;
          slow "fig8 -j invariant" test_fig8_rows_j_invariant;
          slow "fig12 -j invariant" test_fig12_rows_j_invariant;
          slow "macro-bench -j invariant" test_macro_bench_j_invariant;
        ] );
    ]
