(* Unit and property tests for the repro_util substrate. *)

module Prng = Repro_util.Prng
module Stats = Repro_util.Stats
module Histogram = Repro_util.Histogram
module Ring = Repro_util.Ring
module Bitset = Repro_util.Bitset
module Lru = Repro_util.Lru
module Table = Repro_util.Table

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  checkb "different seeds diverge" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_copy_replays () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  checkb "split diverges" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_int_bounds () =
  let p = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create 1) 0))

let test_prng_int_in () =
  let p = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in p (-3) 5 in
    checkb "in closed range" true (v >= -3 && v <= 5)
  done

let test_prng_float_bounds () =
  let p = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.float p 2.5 in
    checkb "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_chance_extremes () =
  let p = Prng.create 6 in
  checkb "p=0 never" false (Prng.chance p 0.0);
  checkb "p=1 always" true (Prng.chance p 1.0)

let test_prng_geometric_mean () =
  let p = Prng.create 8 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.geometric p 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of geometric(0.5) failures-before-success is 1.0 *)
  checkb "mean near 1.0" true (mean > 0.9 && mean < 1.1)

let test_prng_zipf_bounds () =
  let p = Prng.create 10 in
  for _ = 1 to 2000 do
    let v = Prng.zipf p ~n:100 ~s:1.2 in
    checkb "in range" true (v >= 0 && v < 100)
  done

let test_prng_zipf_skew () =
  let p = Prng.create 11 in
  let head = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Prng.zipf p ~n:1000 ~s:1.3 < 10 then incr head
  done;
  (* With s=1.3 the first 10 of 1000 values should take far more than
     their uniform 1% share. *)
  checkb "head-heavy" true (float_of_int !head /. float_of_int n > 0.2)

let test_prng_shuffle_permutation () =
  let p = Prng.create 12 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let prng_qcheck =
  [
    QCheck2.Test.make ~name:"int always within bound" ~count:500
      QCheck2.Gen.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let v = Prng.int (Prng.create seed) bound in
        v >= 0 && v < bound);
    QCheck2.Test.make ~name:"equal seeds give equal ints" ~count:200
      QCheck2.Gen.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        Prng.int (Prng.create seed) bound = Prng.int (Prng.create seed) bound);
  ]

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  checki "count" 0 (Stats.count s);
  checkf "mean" 0.0 (Stats.mean s);
  checkf "variance" 0.0 (Stats.variance s)

let test_stats_known_values () =
  let s = Stats.create () in
  Stats.add_many s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checki "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  checkf "total" 40.0 (Stats.total s);
  check (Alcotest.float 1e-6) "variance" (32.0 /. 7.0) (Stats.variance s);
  checkf "min" 2.0 (Stats.min s);
  checkf "max" 9.0 (Stats.max s)

let test_stats_merge_equals_combined () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.5 ] and ys = [ -4.0; 0.25; 10.0; 2.0 ] in
  Stats.add_many a xs;
  Stats.add_many b ys;
  Stats.add_many whole (xs @ ys);
  let m = Stats.merge a b in
  checki "count" (Stats.count whole) (Stats.count m);
  check (Alcotest.float 1e-9) "mean" (Stats.mean whole) (Stats.mean m);
  check (Alcotest.float 1e-9) "variance" (Stats.variance whole) (Stats.variance m);
  checkf "min" (Stats.min whole) (Stats.min m);
  checkf "max" (Stats.max whole) (Stats.max m)

let test_stats_merge_with_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_many a [ 1.0; 2.0 ];
  let m = Stats.merge a b in
  checki "count" 2 (Stats.count m);
  checkf "mean" 1.5 (Stats.mean m)

let test_stats_empty_min_max_nan () =
  (* An empty accumulator has no extrema; pin the documented nan. *)
  let s = Stats.create () in
  checkb "min is nan" true (Float.is_nan (Stats.min s));
  checkb "max is nan" true (Float.is_nan (Stats.max s))

let test_stats_merge_empty_no_nan_poisoning () =
  (* The empty side's nan min/max must not leak into the merge, in
     either argument order, and merging two empties stays empty. *)
  let a = Stats.create () and b = Stats.create () in
  Stats.add_many b [ 3.0; 7.0 ];
  let m1 = Stats.merge a b and m2 = Stats.merge b a in
  checkf "min (empty left)" 3.0 (Stats.min m1);
  checkf "max (empty left)" 7.0 (Stats.max m1);
  checkf "min (empty right)" 3.0 (Stats.min m2);
  checkf "max (empty right)" 7.0 (Stats.max m2);
  checkf "mean unpoisoned" 5.0 (Stats.mean m1);
  let e = Stats.merge (Stats.create ()) (Stats.create ()) in
  checki "both empty: count" 0 (Stats.count e);
  checkf "both empty: mean" 0.0 (Stats.mean e)

let test_stats_merge_leaves_inputs_unchanged () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_many a [ 1.0 ];
  Stats.add_many b [ 9.0 ];
  let m = Stats.merge a b in
  Stats.add m 100.0;
  checki "a untouched" 1 (Stats.count a);
  checki "b untouched" 1 (Stats.count b);
  checkf "a mean" 1.0 (Stats.mean a);
  checkf "b max" 9.0 (Stats.max b)

let test_stats_percentile () =
  let xs = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  checkf "p0 = min" 15.0 (Stats.percentile xs 0.0);
  checkf "p100 = max" 50.0 (Stats.percentile xs 100.0);
  checkf "median" 35.0 (Stats.percentile xs 50.0);
  checkf "p25 interpolates" 20.0 (Stats.percentile xs 25.0)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0))

let test_stats_percentile_clamps () =
  let xs = [| 15.0; 20.0; 35.0 |] in
  checkf "below 0 clamps to min" 15.0 (Stats.percentile xs (-10.0));
  checkf "above 100 clamps to max" 35.0 (Stats.percentile xs 1000.0)

let test_stats_percentile_rejects_nan () =
  (* nan would silently mis-sort (compare treats it inconsistently);
     reject it loudly instead. *)
  Alcotest.check_raises "nan percentile"
    (Invalid_argument "Stats.percentile: nan percentile") (fun () ->
      ignore (Stats.percentile [| 1.0; 2.0 |] Float.nan));
  Alcotest.check_raises "nan observation"
    (Invalid_argument "Stats.percentile: nan observation") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 2.0 |] 50.0))

let test_stats_geometric_mean () =
  checkf "of equal" 3.0 (Stats.geometric_mean [ 3.0; 3.0; 3.0 ]);
  check (Alcotest.float 1e-9) "2,8" 4.0 (Stats.geometric_mean [ 2.0; 8.0 ])

let stats_qcheck =
  [
    QCheck2.Test.make ~name:"mean within min..max" ~count:300
      QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
      (fun xs ->
        let s = Stats.create () in
        Stats.add_many s xs;
        Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9);
    QCheck2.Test.make ~name:"merge commutes" ~count:200
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 20) (float_range (-100.) 100.))
          (list_size (int_range 1 20) (float_range (-100.) 100.)))
      (fun (xs, ys) ->
        let build zs =
          let s = Stats.create () in
          Stats.add_many s zs;
          s
        in
        let m1 = Stats.merge (build xs) (build ys) in
        let m2 = Stats.merge (build ys) (build xs) in
        Float.abs (Stats.mean m1 -. Stats.mean m2) < 1e-9
        && Stats.count m1 = Stats.count m2);
    (* The merge identity the fleet/service aggregation rests on:
       merging two accumulators is indistinguishable from one bulk add,
       across every moment — including when either side is empty. *)
    QCheck2.Test.make ~name:"merge equals bulk add in every moment" ~count:300
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 25) (float_range (-500.) 500.))
          (list_size (int_range 0 25) (float_range (-500.) 500.)))
      (fun (xs, ys) ->
        let build zs =
          let s = Stats.create () in
          Stats.add_many s zs;
          s
        in
        let m = Stats.merge (build xs) (build ys) in
        let whole = build (xs @ ys) in
        let eq a b =
          (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) < 1e-6
        in
        Stats.count m = Stats.count whole
        && eq (Stats.mean m) (Stats.mean whole)
        && eq (Stats.variance m) (Stats.variance whole)
        && eq (Stats.total m) (Stats.total whole)
        && eq (Stats.min m) (Stats.min whole)
        && eq (Stats.max m) (Stats.max whole));
    QCheck2.Test.make ~name:"percentile monotone with exact endpoints" ~count:300
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 40) (float_range (-100.) 100.))
          (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
      (fun (xs, (p1, p2)) ->
        let arr = Array.of_list xs in
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile arr lo <= Stats.percentile arr hi +. 1e-9
        && Stats.percentile arr 0.0 = List.fold_left Float.min Float.infinity xs
        && Stats.percentile arr 100.0
           = List.fold_left Float.max Float.neg_infinity xs);
  ]

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucketing () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 () in
  List.iter (Histogram.add h) [ 0.0; 1.9; 2.0; 9.99; -1.0; 10.0; 42.0 ];
  checki "total" 7 (Histogram.count h);
  checki "bucket 0" 2 (Histogram.bucket_count h 0);
  checki "bucket 1" 1 (Histogram.bucket_count h 1);
  checki "bucket 4" 1 (Histogram.bucket_count h 4);
  checki "underflow" 1 (Histogram.underflow h);
  checki "overflow" 2 (Histogram.overflow h)

let test_histogram_ranges () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 () in
  let lo, hi = Histogram.bucket_range h 2 in
  checkf "lo" 4.0 lo;
  checkf "hi" 6.0 hi

let test_histogram_mean () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 () in
  checkb "empty mean is nan" true (Float.is_nan (Histogram.mean h));
  (* 1.0 and 1.5 land in bucket [0,2) (midpoint 1), 5.0 in [4,6)
     (midpoint 5): midpoint approximation gives (1+1+5)/3. *)
  List.iter (Histogram.add h) [ 1.0; 1.5; 5.0 ];
  checkf "midpoint mean" (7.0 /. 3.0) (Histogram.mean h);
  (* Overflow pins to hi, underflow to lo. *)
  Histogram.add h 99.0;
  checkf "overflow at hi" ((7.0 +. 10.0) /. 4.0) (Histogram.mean h)

let test_histogram_fraction_below () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  checkf "half below 2" 0.5 (Histogram.fraction_below h 2.0)

let bucket_total h buckets =
  let t = ref 0 in
  for i = 0 to buckets - 1 do
    t := !t + Histogram.bucket_count h i
  done;
  !t

let test_histogram_auto_expand () =
  let h = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:8.0 ~buckets:4 () in
  List.iter (Histogram.add h) [ 1.0; 7.9 ];
  checki "in range, no overflow" 0 (Histogram.overflow h);
  (* At the bound: one doubling to [0, 16). *)
  Histogram.add h 8.0;
  checki "expanded, not overflowed" 0 (Histogram.overflow h);
  checkf "range doubled" 16.0 (snd (Histogram.bucket_range h 3));
  (* Far past the bound: several doublings at once. *)
  Histogram.add h 100.0;
  checki "still no overflow" 0 (Histogram.overflow h);
  checkb "range covers the sample" true
    (snd (Histogram.bucket_range h 3) > 100.0);
  checki "every observation kept" 4 (Histogram.count h);
  checki "every observation in a bucket" 4 (bucket_total h 4);
  checkf "extrema exact" 100.0 (Histogram.max_observed h)

let test_histogram_auto_expand_odd_buckets () =
  (* Doubling merges bucket pairs; with an odd bucket count the old top
     bucket has no partner and must still carry its count over. *)
  let h = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:5.0 ~buckets:5 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 3.5; 4.5 ];
  Histogram.add h 9.0;
  checki "count" 6 (Histogram.count h);
  checki "overflow" 0 (Histogram.overflow h);
  checki "no observation lost in the merge" 6 (bucket_total h 5)

let test_histogram_auto_expand_non_finite () =
  let h = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:4.0 ~buckets:4 () in
  (* Infinity can never fit: it must overflow, not expand forever. *)
  Histogram.add h Float.infinity;
  checki "infinity overflows" 1 (Histogram.overflow h);
  checkf "range unchanged" 4.0 (snd (Histogram.bucket_range h 3))

let test_histogram_fixed_still_overflows () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~buckets:4 () in
  Histogram.add h 9.0;
  checki "fixed histogram overflows as before" 1 (Histogram.overflow h);
  checkf "fixed range unchanged" 4.0 (snd (Histogram.bucket_range h 3))

let test_histogram_bad_args () =
  Alcotest.check_raises "no buckets"
    (Invalid_argument "Histogram.create: buckets must be positive") (fun () ->
      ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:0 ()))

let test_histogram_nan_quarantined () =
  (* nan used to land in bucket 0 ([int_of_float nan = 0]) and poison
     the extrema; it must be quarantined in its own counter. *)
  List.iter
    (fun auto_expand ->
      let h = Histogram.create ~auto_expand ~lo:0.0 ~hi:10.0 ~buckets:5 () in
      Histogram.add h Float.nan;
      checki "counted in total" 1 (Histogram.count h);
      checki "quarantined" 1 (Histogram.nan_count h);
      checki "bucket 0 untouched" 0 (Histogram.bucket_count h 0);
      checki "no underflow" 0 (Histogram.underflow h);
      checki "no overflow" 0 (Histogram.overflow h);
      checkf "no expansion" 10.0 (snd (Histogram.bucket_range h 4));
      checkb "max unpoisoned" true (Float.is_nan (Histogram.max_observed h));
      checkb "min unpoisoned" true (Float.is_nan (Histogram.min_observed h));
      checkb "mean of no real samples is nan" true
        (Float.is_nan (Histogram.mean h));
      (* Real observations alongside the nan stay exact: the nan is
         excluded from every derived statistic's denominator. *)
      Histogram.add h 5.0;
      checki "total counts both" 2 (Histogram.count h);
      checkf "mean excludes nan" 5.0 (Histogram.mean h);
      checkf "max exact" 5.0 (Histogram.max_observed h);
      checkf "fraction_below excludes nan" 1.0 (Histogram.fraction_below h 6.0))
    [ false; true ]

let test_histogram_infinities () =
  List.iter
    (fun auto_expand ->
      let h = Histogram.create ~auto_expand ~lo:0.0 ~hi:4.0 ~buckets:4 () in
      Histogram.add h Float.infinity;
      Histogram.add h Float.neg_infinity;
      checki "no nan" 0 (Histogram.nan_count h);
      (* +inf can never fit a finite range: overflow, never expand. *)
      checki "+inf overflows" 1 (Histogram.overflow h);
      (* -inf is below lo whatever the range: underflow. *)
      checki "-inf underflows" 1 (Histogram.underflow h);
      checkf "range unchanged" 4.0 (snd (Histogram.bucket_range h 3));
      checkf "max is +inf" Float.infinity (Histogram.max_observed h);
      checkf "min is -inf" Float.neg_infinity (Histogram.min_observed h))
    [ false; true ]

let test_histogram_fraction_below_overflow () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 () in
  Histogram.add h 5.0;
  Histogram.add h 15.0;
  checki "one overflowed" 1 (Histogram.overflow h);
  (* A threshold past [hi] covers the overflow bucket too — this used
     to report 0.5 forever, as if the overflowed sample did not exist. *)
  checkf "past hi counts overflow" 1.0 (Histogram.fraction_below h 20.0);
  checkf "at hi excludes overflow" 0.5 (Histogram.fraction_below h 10.0);
  checkf "infinity covers everything" 1.0 (Histogram.fraction_below h Float.infinity);
  checkf "in range unchanged" 0.5 (Histogram.fraction_below h 6.0)

let test_histogram_quantile () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:10 () in
  checkb "empty quantile is nan" true (Float.is_nan (Histogram.quantile h 0.5));
  (* One sample per bucket: 5, 15, ..., 95. *)
  for i = 0 to 9 do
    Histogram.add h (float_of_int (10 * i) +. 5.0)
  done;
  checkf "q0 is the exact minimum" 5.0 (Histogram.quantile h 0.0);
  checkf "q1 is the exact maximum" 95.0 (Histogram.quantile h 1.0);
  checkf "median interpolates its bucket" 50.0 (Histogram.quantile h 0.5);
  checkf "p95 interpolates the top bucket" 95.0 (Histogram.quantile h 0.95);
  (* Out-of-range quantiles clamp rather than extrapolate. *)
  checkf "clamps above" 95.0 (Histogram.quantile h 2.0);
  checkf "clamps below" 5.0 (Histogram.quantile h (-1.0));
  Alcotest.check_raises "nan quantile"
    (Invalid_argument "Histogram.quantile: nan quantile") (fun () ->
      ignore (Histogram.quantile h Float.nan))

let histogram_qcheck =
  [
    (* [Histogram.quantile] against ground truth: for k = ceil(q*n) the
       k-th smallest sample shares the interpolation bucket (cumulative
       counts are integers), so the two can differ by at most one bucket
       width.  [Stats.percentile] at p = 100(k-1)/(n-1) hits the k-th
       order statistic exactly. *)
    QCheck2.Test.make ~name:"quantile within a bucket of the order statistic"
      ~count:300
      QCheck2.Gen.(
        pair
          (list_size (int_range 2 60) (float_range 0.0 99.9))
          (float_range 0.01 0.99))
      (fun (xs, q) ->
        let h = Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:20 () in
        List.iter (Histogram.add h) xs;
        let n = List.length xs in
        let k = int_of_float (Float.ceil (q *. float_of_int n)) in
        let kth =
          Stats.percentile (Array.of_list xs)
            (100.0 *. float_of_int (k - 1) /. float_of_int (n - 1))
        in
        let width = 100.0 /. 20.0 in
        Float.abs (Histogram.quantile h q -. kth) <= width +. 1e-6);
    QCheck2.Test.make ~name:"quantile monotone with exact endpoints" ~count:200
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 40) (float_range 0.0 99.9))
          (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
      (fun (xs, (q1, q2)) ->
        let h = Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:16 () in
        List.iter (Histogram.add h) xs;
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        Histogram.quantile h lo <= Histogram.quantile h hi +. 1e-9
        && Histogram.quantile h 0.0 = List.fold_left Float.min Float.infinity xs
        && Histogram.quantile h 1.0
           = List.fold_left Float.max Float.neg_infinity xs);
  ]

let test_histogram_observed_extremes () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 () in
  checkb "empty max is nan" true (Float.is_nan (Histogram.max_observed h));
  checkb "empty min is nan" true (Float.is_nan (Histogram.min_observed h));
  List.iter (Histogram.add h) [ 3.0; 7.5 ];
  checkf "max in range" 7.5 (Histogram.max_observed h);
  checkf "min in range" 3.0 (Histogram.min_observed h);
  (* Overflow/underflow samples are clamped into the edge buckets for
     counting, but the observed extremes keep the exact values — the
     whole point of the overflow surfacing. *)
  Histogram.add h 1234.5;
  Histogram.add h (-2.0);
  checkf "overflow max exact" 1234.5 (Histogram.max_observed h);
  checkf "underflow min exact" (-2.0) (Histogram.min_observed h);
  checki "overflow counted" 1 (Histogram.overflow h);
  checki "underflow counted" 1 (Histogram.underflow h)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

module Deque = Repro_util.Deque

let test_deque_basics () =
  let d = Deque.create ~dummy:0 () in
  checkb "empty" true (Deque.is_empty d);
  check Alcotest.(option int) "peek empty" None (Deque.peek_front d);
  check Alcotest.(option int) "pop empty" None (Deque.pop_front d);
  List.iter (Deque.push_back d) [ 1; 2; 3 ];
  checki "length" 3 (Deque.length d);
  check Alcotest.(option int) "peek" (Some 1) (Deque.peek_front d);
  check Alcotest.(list int) "to_list" [ 1; 2; 3 ] (Deque.to_list d);
  check Alcotest.(option int) "pop" (Some 1) (Deque.pop_front d);
  check Alcotest.(list int) "after pop" [ 2; 3 ] (Deque.to_list d);
  Deque.clear d;
  checkb "cleared" true (Deque.is_empty d)

let test_deque_growth_wraps () =
  (* Interleave pushes and pops so head walks around the ring, then grow
     past the initial capacity while wrapped. *)
  let d = Deque.create ~capacity:4 ~dummy:(-1) () in
  for i = 0 to 2 do
    Deque.push_back d i
  done;
  check Alcotest.(option int) "pop 0" (Some 0) (Deque.pop_front d);
  check Alcotest.(option int) "pop 1" (Some 1) (Deque.pop_front d);
  for i = 3 to 12 do
    Deque.push_back d i
  done;
  checki "length" 11 (Deque.length d);
  check Alcotest.(list int) "order across growth" (List.init 11 (fun i -> i + 2))
    (Deque.to_list d);
  checki "fold sum" (List.fold_left ( + ) 0 (List.init 11 (fun i -> i + 2)))
    (Deque.fold ( + ) 0 d)

let deque_qcheck =
  [
    QCheck2.Test.make ~name:"deque behaves like a FIFO list" ~count:300
      QCheck2.Gen.(list (option small_int))
      (fun ops ->
        (* [Some x] = push x, [None] = pop; compare against a list model. *)
        let d = Deque.create ~capacity:1 ~dummy:(-1) () in
        let model = ref [] in
        List.for_all
          (fun op ->
            (match op with
            | Some x ->
              Deque.push_back d x;
              model := !model @ [ x ]
            | None -> (
              let got = Deque.pop_front d in
              match (!model, got) with
              | x :: rest, Some y when x = y -> model := rest
              | [], None -> ()
              | _ -> model := [ max_int ]));
            Deque.to_list d = !model && Deque.length d = List.length !model)
          ops);
  ]

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  let r = Ring.create 3 in
  checki "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  check Alcotest.(list int) "ordered" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  check Alcotest.(list int) "evicts oldest" [ 2; 3; 4 ] (Ring.to_list r);
  check Alcotest.(option int) "newest" (Some 4) (Ring.newest r);
  check Alcotest.(option int) "oldest" (Some 2) (Ring.oldest r)

let test_ring_get () =
  let r = Ring.create 2 in
  Ring.push r 10;
  Ring.push r 20;
  Ring.push r 30;
  checki "get 0" 20 (Ring.get r 0);
  checki "get 1" 30 (Ring.get r 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Ring.get: index out of range")
    (fun () -> ignore (Ring.get r 2))

let test_ring_clear () =
  let r = Ring.create 2 in
  Ring.push r 1;
  Ring.clear r;
  checki "empty again" 0 (Ring.length r);
  check Alcotest.(option int) "no newest" None (Ring.newest r)

let ring_qcheck =
  [
    QCheck2.Test.make ~name:"ring keeps the last capacity items" ~count:300
      QCheck2.Gen.(pair (int_range 1 10) (list small_int))
      (fun (cap, xs) ->
        let r = Ring.create cap in
        List.iter (Ring.push r) xs;
        let expected =
          let n = List.length xs in
          if n <= cap then xs
          else List.filteri (fun i _ -> i >= n - cap) xs
        in
        Ring.to_list r = expected);
  ]

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  checkb "initially clear" false (Bitset.mem b 7);
  Bitset.set b 7;
  checkb "set" true (Bitset.mem b 7);
  checkb "neighbour untouched" false (Bitset.mem b 8);
  Bitset.clear b 7;
  checkb "cleared" false (Bitset.mem b 7)

let test_bitset_cardinal () =
  let b = Bitset.create 64 in
  List.iter (Bitset.set b) [ 0; 1; 8; 63 ];
  checki "cardinal" 4 (Bitset.cardinal b);
  Bitset.clear_all b;
  checki "cleared all" 0 (Bitset.cardinal b)

let test_bitset_iter_set () =
  let b = Bitset.create 20 in
  List.iter (Bitset.set b) [ 3; 9; 17 ];
  let collected = ref [] in
  Bitset.iter_set (fun i -> collected := i :: !collected) b;
  check Alcotest.(list int) "ascending" [ 3; 9; 17 ] (List.rev !collected)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob set"
    (Invalid_argument "Bitset.set: index 8 out of [0,8)") (fun () ->
      Bitset.set b 8)

let test_bitset_copy_equal () =
  let b = Bitset.create 30 in
  Bitset.set b 11;
  let c = Bitset.copy b in
  checkb "copies equal" true (Bitset.equal b c);
  Bitset.set c 12;
  checkb "diverge after write" false (Bitset.equal b c)

let bitset_qcheck =
  [
    QCheck2.Test.make ~name:"bitset agrees with a set model" ~count:300
      QCheck2.Gen.(list (pair bool (int_range 0 63)))
      (fun ops ->
        let b = Bitset.create 64 in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (set, i) ->
            if set then begin
              Bitset.set b i;
              Hashtbl.replace model i ()
            end
            else begin
              Bitset.clear b i;
              Hashtbl.remove model i
            end)
          ops;
        Bitset.cardinal b = Hashtbl.length model
        && List.for_all
             (fun i -> Bitset.mem b i = Hashtbl.mem model i)
             (List.init 64 Fun.id));
  ]

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_insert_and_capacity () =
  let l = Lru.create 2 in
  checkb "not full" false (Lru.is_full l);
  check Alcotest.(option int) "no eviction" None (Lru.insert l 1);
  check Alcotest.(option int) "no eviction" None (Lru.insert l 2);
  checkb "full" true (Lru.is_full l);
  check Alcotest.(option int) "evicts lru" (Some 1) (Lru.insert l 3);
  check Alcotest.(list int) "mru order" [ 3; 2 ] (Lru.to_list l)

let test_lru_promote () =
  let l = Lru.create 3 in
  ignore (Lru.insert l 1);
  ignore (Lru.insert l 2);
  ignore (Lru.insert l 3);
  checkb "promoted" true (Lru.promote l (fun x -> x = 1));
  check Alcotest.(list int) "order" [ 1; 3; 2 ] (Lru.to_list l);
  checkb "missing" false (Lru.promote l (fun x -> x = 9))

let test_lru_find_does_not_promote () =
  let l = Lru.create 3 in
  ignore (Lru.insert l 1);
  ignore (Lru.insert l 2);
  check Alcotest.(option int) "found" (Some 1) (Lru.find l (fun x -> x = 1));
  check Alcotest.(list int) "order unchanged" [ 2; 1 ] (Lru.to_list l)

let test_lru_remove () =
  let l = Lru.create 3 in
  ignore (Lru.insert l 1);
  ignore (Lru.insert l 2);
  checkb "removed" true (Lru.remove l (fun x -> x = 1));
  check Alcotest.(list int) "left" [ 2 ] (Lru.to_list l);
  checkb "gone" false (Lru.remove l (fun x -> x = 1))

let test_lru_endpoints () =
  let l = Lru.create 3 in
  check Alcotest.(option int) "lru of empty" None (Lru.lru l);
  ignore (Lru.insert l 1);
  ignore (Lru.insert l 2);
  check Alcotest.(option int) "lru" (Some 1) (Lru.lru l);
  check Alcotest.(option int) "mru" (Some 2) (Lru.mru l)

let lru_qcheck =
  [
    QCheck2.Test.make ~name:"lru length never exceeds capacity" ~count:300
      QCheck2.Gen.(pair (int_range 1 8) (list small_int))
      (fun (cap, xs) ->
        let l = Lru.create cap in
        List.iter (fun x -> ignore (Lru.insert l x)) xs;
        Lru.length l <= cap
        && Lru.length l = min cap (List.length xs));
  ]

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~headers:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23" ];
  let rendered = Table.render t in
  check Alcotest.string "aligned"
    "name    n\n-----  --\nalpha   1\nb      23\n" rendered

let test_table_row_width_checked () =
  let t = Table.create ~headers:[ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Table.add_row: expected 1 cells, got 2") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  check Alcotest.string "pct" "11.4%" (Table.cell_pct 0.114);
  check Alcotest.string "float" "1.50" (Table.cell_float 1.5);
  check Alcotest.string "int" "1,234,567" (Table.cell_int 1234567);
  check Alcotest.string "negative int" "-1,000" (Table.cell_int (-1000))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "repro_util"
    [
      ( "prng",
        [
          tc "determinism" test_prng_determinism;
          tc "seed sensitivity" test_prng_seed_sensitivity;
          tc "copy replays" test_prng_copy_replays;
          tc "split independent" test_prng_split_independent;
          tc "int bounds" test_prng_int_bounds;
          tc "int rejects bad bound" test_prng_int_rejects_bad_bound;
          tc "int_in bounds" test_prng_int_in;
          tc "float bounds" test_prng_float_bounds;
          tc "chance extremes" test_prng_chance_extremes;
          tc "geometric mean" test_prng_geometric_mean;
          tc "zipf bounds" test_prng_zipf_bounds;
          tc "zipf skew" test_prng_zipf_skew;
          tc "shuffle permutation" test_prng_shuffle_permutation;
        ]
        @ props prng_qcheck );
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "known values" test_stats_known_values;
          tc "merge equals combined" test_stats_merge_equals_combined;
          tc "merge with empty" test_stats_merge_with_empty;
          tc "empty min/max are nan" test_stats_empty_min_max_nan;
          tc "merge with empty: no nan poisoning" test_stats_merge_empty_no_nan_poisoning;
          tc "merge leaves inputs unchanged" test_stats_merge_leaves_inputs_unchanged;
          tc "percentile" test_stats_percentile;
          tc "percentile empty" test_stats_percentile_empty;
          tc "percentile clamps" test_stats_percentile_clamps;
          tc "percentile rejects nan" test_stats_percentile_rejects_nan;
          tc "geometric mean" test_stats_geometric_mean;
        ]
        @ props stats_qcheck );
      ( "histogram",
        [
          tc "bucketing" test_histogram_bucketing;
          tc "ranges" test_histogram_ranges;
          tc "mean" test_histogram_mean;
          tc "fraction below" test_histogram_fraction_below;
          tc "auto-expand" test_histogram_auto_expand;
          tc "auto-expand odd buckets" test_histogram_auto_expand_odd_buckets;
          tc "auto-expand non-finite" test_histogram_auto_expand_non_finite;
          tc "fixed bound still overflows" test_histogram_fixed_still_overflows;
          tc "bad args" test_histogram_bad_args;
          tc "nan quarantined" test_histogram_nan_quarantined;
          tc "infinities" test_histogram_infinities;
          tc "fraction below overflow" test_histogram_fraction_below_overflow;
          tc "quantile" test_histogram_quantile;
          tc "observed extremes" test_histogram_observed_extremes;
        ]
        @ props histogram_qcheck );
      ( "deque",
        [
          tc "basics" test_deque_basics;
          tc "growth wraps" test_deque_growth_wraps;
        ]
        @ props deque_qcheck );
      ( "ring",
        [
          tc "basics" test_ring_basics;
          tc "get" test_ring_get;
          tc "clear" test_ring_clear;
        ]
        @ props ring_qcheck );
      ( "bitset",
        [
          tc "basics" test_bitset_basics;
          tc "cardinal" test_bitset_cardinal;
          tc "iter_set" test_bitset_iter_set;
          tc "bounds" test_bitset_bounds;
          tc "copy equal" test_bitset_copy_equal;
        ]
        @ props bitset_qcheck );
      ( "lru",
        [
          tc "insert and capacity" test_lru_insert_and_capacity;
          tc "promote" test_lru_promote;
          tc "find does not promote" test_lru_find_does_not_promote;
          tc "remove" test_lru_remove;
          tc "endpoints" test_lru_endpoints;
        ]
        @ props lru_qcheck );
      ( "table",
        [
          tc "render" test_table_render;
          tc "row width checked" test_table_row_width_checked;
          tc "cells" test_table_cells;
        ] );
    ]
