(* Crash–recovery model: seeded instance crashes, restart policies,
   request retries/hedging, and the preload circuit breaker. *)

module Service = Sim.Service
module Fault_plan = Sim.Fault_plan
module Validate = Sim.Validate
module Runner = Sim.Runner
module Breaker = Preload.Breaker
module Scheme = Preload.Scheme
module Input = Workload.Input
module Spec = Workload.Spec
module Metrics = Sgxsim.Metrics
module Histogram = Repro_util.Histogram
module Table = Repro_util.Table

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let trace = Spec.deepsjeng ~epc_pages:128 ~input:Input.Train

let runner_config =
  { Runner.default_config with epc_pages = 128; log_capacity = 1 lsl 18 }

(* ------------------------------------------------------------------ *)
(* Breaker state machine                                               *)
(* ------------------------------------------------------------------ *)

(* Small enough to drive every edge by hand. *)
let tiny =
  {
    Breaker.window = 2;
    min_samples = 4;
    threshold = 0.5;
    cooldown = 2;
    probe_samples = 2;
  }

let feed b ~completed ~hits =
  for _ = 1 to completed do
    Breaker.note_completed b
  done;
  for _ = 1 to hits do
    Breaker.note_hit b
  done

let test_breaker_trips_and_recloses () =
  let b = Breaker.create ~config:tiny () in
  checkb "starts closed" true (Breaker.state b = Breaker.Closed);
  checkb "closed admits" true (Breaker.admit b);
  (* A full window of misses trips it Open. *)
  feed b ~completed:4 ~hits:0;
  Breaker.on_scan b ~at:1;
  checkb "window not yet full" true (Breaker.state b = Breaker.Closed);
  Breaker.on_scan b ~at:2;
  checkb "tripped open" true (Breaker.state b = Breaker.Open);
  checkb "open refuses" false (Breaker.admit b);
  checki "rejection counted" 1 (Breaker.rejected b);
  (* Cooldown expiry moves to Half-open; a clean probe recloses. *)
  Breaker.on_scan b ~at:3;
  Breaker.on_scan b ~at:4;
  checkb "probing" true (Breaker.state b = Breaker.Half_open);
  checkb "half-open admits" true (Breaker.admit b);
  feed b ~completed:2 ~hits:2;
  Breaker.on_scan b ~at:5;
  checkb "reclosed" true (Breaker.state b = Breaker.Closed);
  checki "one trip" 1 (Breaker.trips b);
  check
    Alcotest.(option string)
    "log legal" None
    (Breaker.check_transitions (Breaker.transitions b))

let test_breaker_failed_probe_reopens () =
  let b = Breaker.create ~config:tiny () in
  feed b ~completed:4 ~hits:0;
  Breaker.on_scan b ~at:1;
  Breaker.on_scan b ~at:2;
  Breaker.on_scan b ~at:3;
  Breaker.on_scan b ~at:4;
  checkb "probing" true (Breaker.state b = Breaker.Half_open);
  feed b ~completed:2 ~hits:0;
  Breaker.on_scan b ~at:5;
  checkb "probe failed, reopened" true (Breaker.state b = Breaker.Open);
  checki "two trips" 2 (Breaker.trips b);
  check
    Alcotest.(option string)
    "log legal" None
    (Breaker.check_transitions (Breaker.transitions b))

let test_breaker_quiet_window_never_judged () =
  let b = Breaker.create ~config:tiny () in
  (* One miss per scan: each full window holds 2 completions, below the
     4-sample minimum, so the miss-heavy but quiet window never trips. *)
  for at = 1 to 20 do
    feed b ~completed:1 ~hits:0;
    Breaker.on_scan b ~at
  done;
  checkb "still closed" true (Breaker.state b = Breaker.Closed);
  checki "no trips" 0 (Breaker.trips b)

let test_breaker_config_validated () =
  Alcotest.check_raises "zero window"
    (Invalid_argument "Breaker: window must be positive") (fun () ->
      ignore (Breaker.create ~config:{ tiny with Breaker.window = 0 } ()));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Breaker: threshold must be in [0, 1]") (fun () ->
      ignore (Breaker.create ~config:{ tiny with Breaker.threshold = 1.5 } ()))

let test_check_transitions_rejects_bad_logs () =
  let edge at from_state to_state =
    { Breaker.at; from_state; to_state; rate = 0.0 }
  in
  checkb "wrong start flagged" true
    (Breaker.check_transitions [ edge 1 Breaker.Open Breaker.Half_open ]
    <> None);
  checkb "illegal edge flagged" true
    (Breaker.check_transitions [ edge 1 Breaker.Closed Breaker.Half_open ]
    <> None);
  checkb "regressing timestamps flagged" true
    (Breaker.check_transitions
       [ edge 5 Breaker.Closed Breaker.Open; edge 3 Breaker.Open Breaker.Half_open ]
    <> None);
  check
    Alcotest.(option string)
    "legal log accepted" None
    (Breaker.check_transitions
       [
         edge 1 Breaker.Closed Breaker.Open;
         edge 2 Breaker.Open Breaker.Half_open;
         edge 3 Breaker.Half_open Breaker.Closed;
       ])

(* The QCheck property behind the breaker's contract: as long as every
   completed preload is also a hit (window rate 1.0, at or above any
   legal threshold), no interleaving of completions and scans may ever
   open the breaker. *)
let prop_full_hit_rate_never_opens =
  QCheck.Test.make ~count:300 ~name:"full hit rate never opens"
    QCheck.(list bool)
    (fun ops ->
      let b = Breaker.create () in
      List.iteri
        (fun at op ->
          if op then begin
            Breaker.note_completed b;
            Breaker.note_hit b
          end
          else Breaker.on_scan b ~at)
        ops;
      Breaker.state b = Breaker.Closed && Breaker.trips b = 0)

(* ------------------------------------------------------------------ *)
(* Crash schedules                                                     *)
(* ------------------------------------------------------------------ *)

let crash_seq plan ~instance =
  List.init 500 (fun window -> Fault_plan.crash_fires plan ~instance ~window)

let test_crash_schedule_deterministic () =
  let plan = Fault_plan.crashy_fleet in
  for instance = 0 to 3 do
    checkb
      (Printf.sprintf "instance %d pure" instance)
      true
      (crash_seq plan ~instance = crash_seq plan ~instance)
  done;
  checkb "fires at all" true (List.exists Fun.id (crash_seq plan ~instance:0));
  checkb "instances draw independently" true
    (crash_seq plan ~instance:0 <> crash_seq plan ~instance:1);
  checkb "seed moves the schedule" true
    (crash_seq plan ~instance:0
    <> crash_seq (Fault_plan.with_seed plan 97) ~instance:0)

let test_crash_free_plans_never_fire () =
  List.iter
    (fun plan ->
      if plan.Fault_plan.crash = None then
        for window = 0 to 99 do
          checkb
            (plan.Fault_plan.name ^ " never crashes")
            false
            (Fault_plan.crash_fires plan ~instance:0 ~window)
        done)
    (Fault_plan.none :: Fault_plan.bank)

(* ------------------------------------------------------------------ *)
(* Runner: crash–restart and breaker wiring                            *)
(* ------------------------------------------------------------------ *)

(* An aggressive schedule so even short replays crash several times. *)
let crash_test_plan =
  {
    Fault_plan.none with
    Fault_plan.name = "crash-test";
    seed = 7;
    crash =
      Some
        {
          Fault_plan.crash_period = 150_000;
          crash_chance = 0.3;
          restart_delay = 100_000;
        };
  }

let test_runner_crash_restart_bookkeeping () =
  List.iter
    (fun restart ->
      let r =
        Runner.run
          ~spec:
            (Runner.Spec.make ~config:runner_config
               ~fault_plan:crash_test_plan ~restart ())
          ~scheme:Scheme.dfp_stop trace
      in
      let label = Runner.restart_policy_name restart in
      checkb (label ^ " crashes fired") true (r.Runner.metrics.Metrics.crashes > 0);
      checki
        (label ^ " every crash restarted")
        r.Runner.metrics.Metrics.crashes r.Runner.diagnostics.Runner.restarts;
      checkb
        (label ^ " downtime charged")
        true
        (r.Runner.metrics.Metrics.cyc_restart > 0);
      Validate.assert_valid r)
    [ Runner.Cold; Runner.Rewarm ]

let test_runner_crash_deterministic () =
  let go () =
    Runner.run
      ~spec:
        (Runner.Spec.make ~config:runner_config ~fault_plan:crash_test_plan ())
      ~scheme:Scheme.dfp_stop trace
  in
  let a = go () and b = go () in
  checki "same cycles" a.Runner.cycles b.Runner.cycles;
  checki "same crashes" a.Runner.metrics.Metrics.crashes
    b.Runner.metrics.Metrics.crashes;
  checki "same pages lost" a.Runner.metrics.Metrics.crash_pages_lost
    b.Runner.metrics.Metrics.crash_pages_lost

let test_runner_breaker_diagnostics () =
  let braked =
    Runner.run
      ~spec:
        (Runner.Spec.make ~config:runner_config
           ~breaker:Breaker.default_config ())
      ~scheme:Scheme.dfp_default trace
  in
  checkb "breaker state surfaced" true
    (braked.Runner.diagnostics.Runner.breaker_state <> None);
  checkb "trip count non-negative" true
    (braked.Runner.diagnostics.Runner.breaker_trips >= 0);
  Validate.assert_valid braked;
  let plain =
    Runner.run ~spec:(Runner.Spec.make ~config:runner_config ()) ~scheme:Scheme.dfp_default trace
  in
  checkb "no breaker, no state" true
    (plain.Runner.diagnostics.Runner.breaker_state = None);
  checki "no rejections without a breaker" 0
    plain.Runner.metrics.Metrics.preloads_rejected_breaker

let test_native_immune_to_crash_and_breaker () =
  let plain =
    Runner.run ~spec:(Runner.Spec.make ~config:runner_config ()) ~scheme:Scheme.Native trace
  in
  let stressed =
    Runner.run
      ~spec:
        (Runner.Spec.make ~config:runner_config ~fault_plan:crash_test_plan
           ~breaker:Breaker.default_config ())
      ~scheme:Scheme.Native trace
  in
  checki "native cycles unmoved" plain.Runner.cycles stressed.Runner.cycles;
  checki "native never crashes" 0 stressed.Runner.metrics.Metrics.crashes;
  checkb "native never braked" true
    (stressed.Runner.diagnostics.Runner.breaker_state = None)

(* ------------------------------------------------------------------ *)
(* Service: retries, hedging, conservation                             *)
(* ------------------------------------------------------------------ *)

let sconfig =
  {
    Service.default_config with
    Service.epc_pages = 128;
    pool = 2;
    requests = 40;
    request_events = 100;
    mean_gap = 2_000_000;
    seed = 5;
    resilience =
      {
        Service.deadline = Some 30_000_000;
        retries = 2;
        retry_backoff = 1_000_000;
        hedge_after = Some 15_000_000;
        restart = Runner.Rewarm;
        breaker = Some Breaker.default_config;
        online = None;
      };
  }

let test_conservation_under_every_plan () =
  List.iter
    (fun plan ->
      let o =
        Service.run ~config:sconfig ~fault_plan:plan ~scheme:Scheme.dfp_stop
          trace
      in
      let n = plan.Fault_plan.name in
      checki (n ^ " request conservation") o.Service.dispatched
        (o.Service.completed + o.Service.failed + o.Service.in_flight);
      checki (n ^ " attempt conservation") o.Service.attempts
        (o.Service.dispatched + o.Service.retried + o.Service.hedged);
      checkb
        (n ^ " hedge races bounded")
        true
        (o.Service.hedge_wins <= o.Service.hedged
        && o.Service.hedge_cancelled <= o.Service.hedged);
      checki (n ^ " crash bookkeeping") o.Service.crashes
        (o.Service.restarts + o.Service.down_at_end);
      Service.assert_valid o)
    (Fault_plan.none :: Fault_plan.bank)

let test_service_crashes_and_recovers () =
  let o =
    Service.run ~config:sconfig ~fault_plan:crash_test_plan
      ~scheme:Scheme.dfp_stop trace
  in
  checkb "crashes fired" true (o.Service.crashes > 0);
  checki "all instances restarted" o.Service.crashes o.Service.restarts;
  checki "nobody down at end" 0 o.Service.down_at_end;
  checkb "crash losses tracked" true (o.Service.crash_pages_lost > 0);
  Service.assert_valid o

let test_hedging_first_completion_wins () =
  (* hedge_after 0 on a 2-instance pool: every primary attempt gets a
     duplicate, and each race cancels exactly one loser. *)
  let c =
    {
      sconfig with
      Service.resilience =
        {
          Service.no_resilience with
          Service.hedge_after = Some 0;
        };
    }
  in
  let o = Service.run ~config:c ~scheme:Scheme.Baseline trace in
  checkb "hedges launched" true (o.Service.hedged > 0);
  checki "one cancelled loser per race" o.Service.hedged
    o.Service.hedge_cancelled;
  checkb "wins bounded by races" true (o.Service.hedge_wins <= o.Service.hedged);
  checki "no double completion" o.Service.dispatched
    (o.Service.completed + o.Service.failed + o.Service.in_flight);
  checki "attempt conservation" o.Service.attempts
    (o.Service.dispatched + o.Service.hedged);
  Service.assert_valid o

let test_retries_exhaust_to_failure () =
  (* An impossible 1-cycle deadline: every round blows it, every request
     burns its full retry budget and fails. *)
  let c =
    {
      sconfig with
      Service.resilience =
        {
          Service.no_resilience with
          Service.deadline = Some 1;
          retries = 2;
          retry_backoff = 1_000;
        };
    }
  in
  let o = Service.run ~config:c ~scheme:Scheme.Baseline trace in
  checki "every request fails" o.Service.dispatched o.Service.failed;
  checki "nothing completes" 0 o.Service.completed;
  checki "full retry budget burned" (2 * o.Service.dispatched)
    o.Service.retried;
  checki "attempt conservation" o.Service.attempts
    (o.Service.dispatched + o.Service.retried);
  Service.assert_valid o

(* ------------------------------------------------------------------ *)
(* Determinism with crashes across -j                                  *)
(* ------------------------------------------------------------------ *)

let rtags = [ "baseline"; "dfp-stop" ]

let rscheme_for = function
  | "baseline" -> Scheme.Baseline
  | "dfp-stop" -> Scheme.dfp_stop
  | t -> invalid_arg t

let test_crashy_matrix_j_identity () =
  let render cells = Table.render (Service.summary_table cells) in
  let go jobs =
    Service.matrix ~jobs ~config:sconfig ~fault_plan:crash_test_plan
      ~scheme_for:rscheme_for ~tags:rtags trace
  in
  let serial = go 1 in
  check Alcotest.string "-j1 = -j4 with crashes" (render serial)
    (render (go 4));
  check Alcotest.string "rerun identical" (render serial) (render (go 1));
  List.iter (fun (_, o) -> checkb "crashed" true (o.Service.crashes > 0)) serial

(* ------------------------------------------------------------------ *)
(* Validate.check_resilience direct coverage                           *)
(* ------------------------------------------------------------------ *)

let test_check_resilience_flags_violations () =
  let h = Histogram.create ~auto_expand:true ~lo:0.0 ~hi:100.0 ~buckets:4 () in
  Histogram.add h 10.0;
  let go ?(attempts = 3) ?(crashes = 0) ?(restarts = 0) ?(down = 0) () =
    Validate.check_resilience ~dispatched:2 ~completed:1 ~failed:1 ~in_flight:0
      ~attempts ~retried:1 ~hedged:0 ~hedge_wins:0 ~hedge_cancelled:0 ~crashes
      ~restarts ~down_at_end:down ~latency:h []
  in
  checki "healthy outcome clean" 0 (List.length (go ()));
  let has name vs =
    List.exists (fun (x : Validate.violation) -> x.check = name) vs
  in
  checkb "attempt leak flagged" true
    (has "attempt-conservation" (go ~attempts:5 ()));
  checkb "lost crash flagged" true
    (has "crash-bookkeeping" (go ~crashes:2 ~restarts:1 ()));
  checkb "failure disposition flagged" true
    (has "service-conservation"
       (Validate.check_resilience ~dispatched:3 ~completed:1 ~failed:1
          ~in_flight:0 ~attempts:4 ~retried:1 ~hedged:0 ~hedge_wins:0
          ~hedge_cancelled:0 ~crashes:0 ~restarts:0 ~down_at_end:0 ~latency:h
          []))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "resilience"
    [
      ( "breaker",
        [
          tc "trips and recloses" test_breaker_trips_and_recloses;
          tc "failed probe reopens" test_breaker_failed_probe_reopens;
          tc "quiet window never judged" test_breaker_quiet_window_never_judged;
          tc "config validated" test_breaker_config_validated;
          tc "bad logs rejected" test_check_transitions_rejects_bad_logs;
          QCheck_alcotest.to_alcotest prop_full_hit_rate_never_opens;
        ] );
      ( "crash schedule",
        [
          tc "deterministic" test_crash_schedule_deterministic;
          tc "crash-free plans never fire" test_crash_free_plans_never_fire;
        ] );
      ( "runner",
        [
          tc "crash-restart bookkeeping" test_runner_crash_restart_bookkeeping;
          tc "crash replay deterministic" test_runner_crash_deterministic;
          tc "breaker diagnostics" test_runner_breaker_diagnostics;
          tc "native immune" test_native_immune_to_crash_and_breaker;
        ] );
      ( "service",
        [
          tc "conservation under every plan" test_conservation_under_every_plan;
          tc "crashes and recovers" test_service_crashes_and_recovers;
          tc "hedging first completion wins" test_hedging_first_completion_wins;
          tc "retries exhaust to failure" test_retries_exhaust_to_failure;
        ] );
      ( "determinism",
        [ tc "crashy matrix -j identity" test_crashy_matrix_j_identity ] );
      ( "validate",
        [
          tc "check_resilience flags violations"
            test_check_resilience_flags_violations;
        ] );
    ]
