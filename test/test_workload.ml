(* Tests of the workload substrate: pattern generators, traces, and the
   benchmark model registry. *)

module Prng = Repro_util.Prng
module Access = Workload.Access
module Pattern = Workload.Pattern
module Trace = Workload.Trace
module Input = Workload.Input
module Spec = Workload.Spec
module Vision = Workload.Vision

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let collect ?(seed = 1) pattern =
  List.of_seq (Pattern.run pattern (Prng.create seed))

let pages_of accs = List.map (fun (a : Access.t) -> a.vpage) accs

(* ------------------------------------------------------------------ *)
(* Leaves                                                              *)
(* ------------------------------------------------------------------ *)

let test_sequential_order () =
  let accs =
    collect
      (Pattern.sequential ~site:3 ~base:10 ~pages:4 ~events_per_page:2
         ~compute:100 ~jitter:0.0)
  in
  Alcotest.(check (list int)) "page order" [ 10; 10; 11; 11; 12; 12; 13; 13 ]
    (pages_of accs);
  List.iter
    (fun (a : Access.t) ->
      checki "site" 3 a.site;
      checki "compute" 100 a.compute)
    accs

let test_sequential_desc_order () =
  let accs =
    collect
      (Pattern.sequential_desc ~site:0 ~base:0 ~pages:3 ~events_per_page:1
         ~compute:0 ~jitter:0.0)
  in
  Alcotest.(check (list int)) "descending" [ 2; 1; 0 ] (pages_of accs)

let test_strided_covers_all_pages_once () =
  let accs =
    collect
      (Pattern.strided ~site:0 ~base:0 ~pages:10 ~stride:3 ~events_per_page:1
         ~compute:0 ~jitter:0.0)
  in
  let pages = pages_of accs in
  checki "every page exactly once" 10 (List.length pages);
  Alcotest.(check (list int)) "as a set" (List.init 10 Fun.id)
    (List.sort compare pages);
  (* Consecutive accesses within a sub-sweep differ by the stride. *)
  (match pages with
  | a :: b :: _ -> checki "stride apart" 3 (b - a)
  | _ -> Alcotest.fail "unexpected");
  ()

let test_multi_stream_exhausts_all () =
  let accs =
    collect
      (Pattern.multi_stream ~site:0
         ~streams:[ (0, 5); (100, 5); (200, 5) ]
         ~events_per_page:2 ~compute:0 ~jitter:0.0)
  in
  checki "all events" 30 (List.length accs);
  let in_stream base p = p >= base && p < base + 5 in
  checkb "pages from declared streams" true
    (List.for_all
       (fun p -> in_stream 0 p || in_stream 100 p || in_stream 200 p)
       (pages_of accs));
  (* Each stream is internally ascending. *)
  let stream_pages base =
    List.filter (in_stream base) (pages_of accs)
  in
  List.iter
    (fun base ->
      let ps = stream_pages base in
      checkb "ascending" true (List.sort compare ps = ps))
    [ 0; 100; 200 ]

let test_uniform_random_bounds () =
  let accs =
    collect
      (Pattern.uniform_random ~site:0 ~base:50 ~pages:10 ~events:500 ~compute:0
         ~jitter:0.0)
  in
  checki "count" 500 (List.length accs);
  checkb "in range" true
    (List.for_all (fun p -> p >= 50 && p < 60) (pages_of accs))

let test_zipf_bounds_and_skew () =
  let accs =
    collect
      (Pattern.zipf ~site:0 ~base:0 ~pages:100 ~events:5000 ~s:1.3 ~compute:0
         ~jitter:0.0)
  in
  checkb "in range" true (List.for_all (fun p -> p >= 0 && p < 100) (pages_of accs));
  let head = List.length (List.filter (fun p -> p < 5) (pages_of accs)) in
  checkb "head heavy" true (head > 5000 / 10)

let test_pointer_chase_locality () =
  let accs =
    collect
      (Pattern.pointer_chase ~site:0 ~base:0 ~pages:1000 ~events:2000
         ~locality:1.0 ~compute:0 ~jitter:0.0)
  in
  (* With locality 1.0 every step is within +/-2 pages. *)
  let rec steps = function
    | a :: (b : int) :: rest -> abs (b - a) <= 2 && steps (b :: rest)
    | _ -> true
  in
  checkb "small steps" true (steps (pages_of accs))

let test_bursty_runs_are_adjacent () =
  let accs =
    collect
      (Pattern.bursty ~site:0 ~base:0 ~pages:1000 ~events:600 ~run_min:2
         ~run_max:4 ~events_per_page:1 ~compute:0 ~jitter:0.0)
  in
  (* Each consecutive pair is either +1 (inside a run) or a jump. *)
  let pages = pages_of accs in
  let rec count_steps inc jump = function
    | a :: (b : int) :: rest ->
      if b - a = 1 then count_steps (inc + 1) jump (b :: rest)
      else count_steps inc (jump + 1) (b :: rest)
    | _ -> (inc, jump)
  in
  let inc, jump = count_steps 0 0 pages in
  checkb "has sequential steps" true (inc > 100);
  checkb "has jumps" true (jump > 50)

let test_mixed_site_ranges () =
  let accs =
    collect
      (Pattern.mixed_site ~site:0 ~hot_base:0 ~hot_pages:10 ~cold_base:100
         ~cold_pages:50 ~events:2000 ~irregular_ratio:0.3 ~compute:0 ~jitter:0.0)
  in
  let hot, cold =
    List.partition (fun p -> p < 10) (pages_of accs)
  in
  checkb "cold in range" true (List.for_all (fun p -> p >= 100 && p < 150) cold);
  let ratio = float_of_int (List.length cold) /. 2000.0 in
  checkb "ratio near 0.3" true (ratio > 0.2 && ratio < 0.4);
  checkb "hot majority" true (List.length hot > List.length cold)

let test_jitter_spreads_compute () =
  let accs =
    collect
      (Pattern.sequential ~site:0 ~base:0 ~pages:100 ~events_per_page:1
         ~compute:1000 ~jitter:0.5)
  in
  let computes = List.map (fun (a : Access.t) -> a.compute) accs in
  checkb "within band" true (List.for_all (fun x -> x >= 500 && x <= 1500) computes);
  checkb "not constant" true
    (List.exists (fun x -> x <> List.hd computes) computes)

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let seq_leaf base =
  Pattern.sequential ~site:0 ~base ~pages:3 ~events_per_page:1 ~compute:0
    ~jitter:0.0

let test_seq_list_concatenates () =
  let accs = collect (Pattern.seq_list [ seq_leaf 0; seq_leaf 10 ]) in
  Alcotest.(check (list int)) "phases in order" [ 0; 1; 2; 10; 11; 12 ]
    (pages_of accs)

let test_repeat () =
  let accs = collect (Pattern.repeat 3 (seq_leaf 0)) in
  checki "three rounds" 9 (List.length accs);
  Alcotest.(check (list int)) "rounds" [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ]
    (pages_of accs)

let test_take () =
  let accs = collect (Pattern.take 2 (seq_leaf 0)) in
  Alcotest.(check (list int)) "prefix" [ 0; 1 ] (pages_of accs)

let test_interleave_exhausts_all () =
  let accs = collect (Pattern.interleave [ seq_leaf 0; seq_leaf 10; seq_leaf 20 ]) in
  checki "all events survive the merge" 9 (List.length accs);
  Alcotest.(check (list int)) "as a multiset" [ 0; 1; 2; 10; 11; 12; 20; 21; 22 ]
    (List.sort compare (pages_of accs));
  (* Relative order inside each source is preserved. *)
  let sub lo = List.filter (fun p -> p >= lo && p < lo + 3) (pages_of accs) in
  List.iter
    (fun lo ->
      Alcotest.(check (list int)) "source order kept" [ lo; lo + 1; lo + 2 ] (sub lo))
    [ 0; 10; 20 ]

let test_weighted_interleave_respects_weights () =
  let big =
    Pattern.uniform_random ~site:1 ~base:0 ~pages:10 ~events:900 ~compute:0
      ~jitter:0.0
  in
  let small =
    Pattern.uniform_random ~site:2 ~base:0 ~pages:10 ~events:900 ~compute:0
      ~jitter:0.0
  in
  let accs = collect (Pattern.weighted_interleave [ (9, big); (1, small) ]) in
  (* In the first 200 events, the weight-9 source should dominate. *)
  let first = List.filteri (fun i _ -> i < 200) accs in
  let site1 = List.length (List.filter (fun (a : Access.t) -> a.site = 1) first) in
  checkb "weighted" true (site1 > 140)

let test_empty_pattern () =
  checki "no events" 0 (List.length (collect Pattern.empty))

let test_on_thread_stamps () =
  let accs = collect (Pattern.on_thread 3 (seq_leaf 0)) in
  checkb "all stamped" true
    (List.for_all (fun (a : Access.t) -> a.thread = 3) accs);
  let default = collect (seq_leaf 0) in
  checkb "leaves default to thread 0" true
    (List.for_all (fun (a : Access.t) -> a.thread = 0) default)

let test_parallel_merges_threads () =
  let accs = collect (Pattern.parallel [ (0, seq_leaf 0); (5, seq_leaf 10) ]) in
  checki "all events" 6 (List.length accs);
  let threads =
    List.sort_uniq compare (List.map (fun (a : Access.t) -> a.thread) accs)
  in
  Alcotest.(check (list int)) "both threads present" [ 0; 5 ] threads;
  (* Thread stamping matches the source region. *)
  List.iter
    (fun (a : Access.t) ->
      checki "region matches thread" (if a.vpage < 10 then 0 else 5) a.thread)
    accs

let test_mt_scan_model () =
  let trace =
    Workload.Parallel_apps.mt_scan ~threads:4 ~epc_pages:128
      ~input:(Input.Ref 0)
  in
  let threads = Hashtbl.create 8 in
  Seq.iter
    (fun (a : Access.t) -> Hashtbl.replace threads a.thread ())
    (Seq.take 20_000 (Trace.events trace));
  checki "all four threads appear" 4 (Hashtbl.length threads)

let test_mt_models_validate () =
  Alcotest.check_raises "zero threads rejected"
    (Invalid_argument "Parallel_apps.mt_scan: threads must be positive")
    (fun () ->
      ignore
        (Workload.Parallel_apps.mt_scan ~threads:0 ~epc_pages:64
           ~input:(Input.Ref 0)))

let pattern_qcheck =
  [
    QCheck2.Test.make ~name:"sequential produces pages*epp events" ~count:200
      QCheck2.Gen.(pair (int_range 0 50) (int_range 1 5))
      (fun (pages, epp) ->
        let n =
          List.length
            (collect
               (Pattern.sequential ~site:0 ~base:0 ~pages ~events_per_page:epp
                  ~compute:0 ~jitter:0.0))
        in
        n = pages * epp);
    QCheck2.Test.make ~name:"same seed, same stream" ~count:100
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let p =
          Pattern.uniform_random ~site:0 ~base:0 ~pages:64 ~events:50
            ~compute:100 ~jitter:0.5
        in
        collect ~seed p = collect ~seed p);
    QCheck2.Test.make ~name:"strided visits each page epp times" ~count:100
      QCheck2.Gen.(pair (int_range 1 64) (int_range 1 7))
      (fun (pages, stride) ->
        let accs =
          collect
            (Pattern.strided ~site:0 ~base:0 ~pages ~stride ~events_per_page:2
               ~compute:0 ~jitter:0.0)
        in
        let counts = Hashtbl.create 64 in
        List.iter
          (fun (a : Access.t) ->
            Hashtbl.replace counts a.vpage
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.vpage)))
          accs;
        Hashtbl.length counts = pages
        && Hashtbl.fold (fun _ c ok -> ok && c = 2) counts true);
  ]

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_replay_identical () =
  let trace = Spec.lbm ~epc_pages:128 ~input:(Input.Ref 0) in
  let a = List.of_seq (Seq.take 500 (Trace.events trace)) in
  let b = List.of_seq (Seq.take 500 (Trace.events trace)) in
  checkb "replay identical" true (a = b)

let test_trace_inputs_differ () =
  let t0 = Spec.deepsjeng ~epc_pages:128 ~input:(Input.Ref 0) in
  let t1 = Spec.deepsjeng ~epc_pages:128 ~input:(Input.Ref 1) in
  let a = List.of_seq (Seq.take 200 (Trace.events t0)) in
  let b = List.of_seq (Seq.take 200 (Trace.events t1)) in
  checkb "different inputs diverge" true (a <> b)

let test_trace_site_names () =
  let trace = Spec.lbm ~epc_pages:128 ~input:(Input.Ref 0) in
  Alcotest.(check string) "known" "stream_src" (Trace.site_name trace 0);
  Alcotest.(check string) "fallback" "site99" (Trace.site_name trace 99)

let test_trace_length_and_distinct () =
  let trace =
    Trace.make ~name:"tiny" ~elrange_pages:8 ~footprint_pages:4 ~seed:1
      ~sites:[]
      (Pattern.sequential ~site:0 ~base:0 ~pages:4 ~events_per_page:3
         ~compute:0 ~jitter:0.0)
  in
  checki "length" 12 (Trace.length trace);
  checki "distinct" 4 (Trace.count_distinct_pages trace)

(* ------------------------------------------------------------------ *)
(* Trace IO                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "sgx_preload_test" ".trace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_trace_io_roundtrip () =
  with_temp_file (fun path ->
      let original = Spec.lbm ~epc_pages:64 ~input:(Input.Ref 0) in
      Workload.Trace_io.save_trace original ~path;
      let loaded = Workload.Trace_io.load_trace ~path in
      Alcotest.(check string) "name" original.Trace.name loaded.Trace.name;
      checki "elrange" original.Trace.elrange_pages loaded.Trace.elrange_pages;
      checki "footprint" original.Trace.footprint_pages loaded.Trace.footprint_pages;
      Alcotest.(check string) "site label" (Trace.site_name original 0)
        (Trace.site_name loaded 0);
      let a = List.of_seq (Trace.events original) in
      let b = List.of_seq (Trace.events loaded) in
      checkb "events identical" true (a = b))

let test_trace_io_replayable_twice () =
  with_temp_file (fun path ->
      let original = Spec.exchange2 ~epc_pages:64 ~input:Input.Train in
      Workload.Trace_io.save_trace original ~path;
      let loaded = Workload.Trace_io.load_trace ~path in
      let a = List.of_seq (Trace.events loaded) in
      let b = List.of_seq (Trace.events loaded) in
      checkb "loaded trace replays identically" true (a = b))

let test_trace_io_threads_preserved () =
  with_temp_file (fun path ->
      let original =
        Workload.Parallel_apps.mt_scan ~threads:3 ~epc_pages:32
          ~input:Input.Train
      in
      Workload.Trace_io.save_trace original ~path;
      let loaded = Workload.Trace_io.load_trace ~path in
      let threads trace =
        Seq.fold_left
          (fun acc (a : Access.t) -> max acc a.thread)
          0
          (Seq.take 5_000 (Trace.events trace))
      in
      checki "max thread id survives" (threads original) (threads loaded))

let test_trace_io_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      checkb "load fails" true
        (try
           ignore (Workload.Trace_io.load_trace ~path);
           false
         with Failure _ -> true))

let load_error path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  match Workload.Trace_io.load_trace ~path with
  | _ -> Alcotest.fail "expected load_trace to fail"
  | exception Failure msg -> msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_trace_io_error_messages_not_masked () =
  (* Regression: the parse loop used to catch [Failure _] — including
     the [Failure] its own error reporter raises — so every diagnostic
     collapsed into "malformed field".  Each failure mode must keep its
     own message and line number. *)
  with_temp_file (fun path ->
      let msg =
        load_error path
          "# sgx-preload trace v1\nname t\nelrange 8\nfootprint 4\nbogus line\n"
      in
      checkb "unrecognised line named as such" true
        (contains msg "unrecognised line");
      checkb "line number points at the bogus line" true (contains msg "line 5");
      let msg =
        load_error path
          "# sgx-preload trace v1\nname t\nelrange 8\nfootprint 4\na 1 xyz 0 0\n"
      in
      checkb "bad int names the field" true
        (contains msg "malformed vpage field");
      checkb "bad int keeps the offending text" true (contains msg "xyz"))

let test_trace_io_validates_footprint () =
  with_temp_file (fun path ->
      checkb "missing footprint rejected" true
        (contains
           (load_error path "# sgx-preload trace v1\nname t\nelrange 8\n")
           "missing or invalid footprint");
      checkb "footprint above elrange rejected" true
        (contains
           (load_error path
              "# sgx-preload trace v1\nname t\nelrange 8\nfootprint 9\n")
           "exceeds elrange");
      checkb "missing elrange still rejected" true
        (contains
           (load_error path "# sgx-preload trace v1\nname t\nfootprint 4\n")
           "missing or invalid elrange"))

(* ------------------------------------------------------------------ *)
(* Trace stats                                                         *)
(* ------------------------------------------------------------------ *)

let test_stats_of_sequential () =
  let trace =
    Trace.make ~name:"t" ~elrange_pages:100 ~footprint_pages:10 ~seed:1
      ~sites:[]
      (Pattern.sequential ~site:0 ~base:0 ~pages:10 ~events_per_page:2
         ~compute:5 ~jitter:0.0)
  in
  let s = Workload.Trace_stats.analyse trace in
  checki "events" 20 s.events;
  checki "distinct" 10 s.distinct_pages;
  checki "sites" 1 s.sites;
  checki "threads" 1 s.threads;
  checki "compute" 100 s.total_compute;
  checki "sequential pairs" 9 s.sequential_pairs;
  checki "same-page pairs" 10 s.same_page_pairs

let test_stats_repeat_interrupts_run () =
  (* Pages 5, 6, 6, 7: the repeated 6 must terminate the first run and
     seed a new one — it used to bridge [5;6] and [6;7] into a single
     4-page run because [close_run] fired with the run counter already
     reset. *)
  let events =
    List.map (fun vpage -> Access.make ~site:0 ~vpage ~compute:1 ()) [ 5; 6; 6; 7 ]
  in
  let trace =
    Trace.make ~name:"repeat" ~elrange_pages:16 ~footprint_pages:3 ~seed:1
      ~sites:[] (Pattern.of_events events)
  in
  let s = Workload.Trace_stats.analyse trace in
  checki "events" 4 s.events;
  checki "sequential pairs" 2 s.sequential_pairs;
  checki "same-page pairs" 1 s.same_page_pairs;
  Alcotest.(check (float 1e-9)) "two runs of two pages" 2.0 s.run_length_mean

let test_stats_miss_ratio_bounds () =
  let trace = Spec.deepsjeng ~epc_pages:128 ~input:Input.Train in
  let big = Workload.Trace_stats.miss_ratio trace ~epc_pages:1_000_000 in
  let small = Workload.Trace_stats.miss_ratio trace ~epc_pages:16 in
  checkb "huge cache only cold misses" true (big < 0.5);
  checkb "tiny cache misses more" true (small > big);
  checkb "ratios in [0,1]" true (big >= 0.0 && small <= 1.0)

let test_stats_miss_ratio_curve_monotone () =
  let trace = Spec.leela ~epc_pages:128 ~input:Input.Train in
  let curve =
    Workload.Trace_stats.miss_ratio_curve trace ~epc_pages:[ 8; 64; 512 ]
  in
  match curve with
  | [ (_, a); (_, b); (_, c) ] ->
    checkb "monotone non-increasing" true (a >= b && b >= c)
  | _ -> Alcotest.fail "expected three points"

(* ------------------------------------------------------------------ *)
(* Synthetic boundary workloads                                        *)
(* ------------------------------------------------------------------ *)

let test_synthetic_registry () =
  checki "three models" 3 (List.length Workload.Synthetic.all);
  checkb "oram known" true (Workload.Synthetic.by_name "oram" <> None);
  checkb "unknown none" true (Workload.Synthetic.by_name "nope" = None)

let test_oram_differs_per_input () =
  let t0 = Workload.Synthetic.oram ~epc_pages:64 ~input:(Input.Ref 0) in
  let t1 = Workload.Synthetic.oram ~epc_pages:64 ~input:(Input.Ref 1) in
  let take t = List.of_seq (Seq.take 100 (Trace.events t)) in
  checkb "sequences differ across runs (the §3.1 ORAM point)" true
    (take t0 <> take t1)

let test_best_case_is_one_run () =
  let trace = Workload.Synthetic.best_case ~epc_pages:16 ~input:Input.Train in
  let s = Workload.Trace_stats.analyse trace in
  checkb "single long run" true (s.run_length_mean > 20.0)

(* ------------------------------------------------------------------ *)
(* Input                                                               *)
(* ------------------------------------------------------------------ *)

let test_input_seeds_distinct () =
  checkb "train vs ref" true
    (Input.seed_of Input.Train ~base:5 <> Input.seed_of (Input.Ref 0) ~base:5);
  checkb "refs distinct" true
    (Input.seed_of (Input.Ref 0) ~base:5 <> Input.seed_of (Input.Ref 1) ~base:5)

let test_input_sizes () =
  checkb "train smaller" true (Input.size_factor Input.Train < 1.0);
  checkb "ref full size" true (Input.size_factor (Input.Ref 0) >= 1.0)

let test_input_strings () =
  Alcotest.(check string) "train" "train" (Input.to_string Input.Train);
  Alcotest.(check string) "ref2" "ref2" (Input.to_string (Input.Ref 2));
  checkb "equal" true (Input.equal (Input.Ref 1) (Input.Ref 1));
  checkb "not equal" false (Input.equal Input.Train (Input.Ref 0))

let test_input_of_string () =
  let ok s i =
    match Input.of_string s with
    | Ok parsed -> checkb (s ^ " parses") true (Input.equal parsed i)
    | Error m -> Alcotest.fail (s ^ " rejected: " ^ m)
  in
  let rejected s =
    checkb (s ^ " rejected") true
      (match Input.of_string s with Error _ -> true | Ok _ -> false)
  in
  ok "train" Input.Train;
  ok "ref0" (Input.Ref 0);
  ok "ref12" (Input.Ref 12);
  (* Round trip through to_string. *)
  List.iter
    (fun i -> ok (Input.to_string i) i)
    [ Input.Train; Input.Ref 0; Input.Ref 7 ];
  (* A negative index used to parse ("ref-1" -> Ref (-1)) and silently
     derive a seed; all malformed indices must be rejected. *)
  rejected "ref-1";
  rejected "ref";
  rejected "refx";
  rejected "ref1.5";
  rejected "ref 2";
  rejected "ref0x2";
  rejected "ref1_0";
  rejected "Train";
  rejected ""

(* ------------------------------------------------------------------ *)
(* Benchmark models                                                    *)
(* ------------------------------------------------------------------ *)

let all_names =
  List.map (fun (n, _, _) -> n) Spec.all @ List.map fst Vision.all

let test_registry_complete () =
  checki "15 SPEC models" 15 (List.length Spec.all);
  checki "3 vision models" 3 (List.length Vision.all);
  checkb "lookup works" true
    (List.for_all
       (fun n -> Spec.by_name n <> None || Vision.by_name n <> None)
       all_names);
  checkb "unknown is None" true (Spec.by_name "nonesuch" = None)

let test_models_stay_inside_elrange () =
  List.iter
    (fun name ->
      let model =
        match Spec.by_name name with
        | Some m -> m
        | None -> Option.get (Vision.by_name name)
      in
      let trace = model ~epc_pages:256 ~input:Input.Train in
      let ok = ref true in
      Seq.iter
        (fun (a : Access.t) ->
          if a.vpage < 0 || a.vpage >= trace.Trace.elrange_pages then ok := false)
        (Seq.take 30_000 (Trace.events trace));
      checkb (name ^ " within ELRANGE") true !ok)
    all_names

let test_large_ws_footprints_exceed_epc () =
  List.iter
    (fun name ->
      let model = Option.get (Spec.by_name name) in
      let trace = model ~epc_pages:256 ~input:(Input.Ref 0) in
      checkb
        (name ^ " exceeds EPC")
        true
        (trace.Trace.footprint_pages > 256))
    Spec.large_working_set

let test_small_ws_fit_in_epc () =
  List.iter
    (fun (name, category, model) ->
      if category = Spec.Small_working_set then begin
        let trace = model ~epc_pages:256 ~input:(Input.Ref 0) in
        checkb (name ^ " fits in EPC") true (trace.Trace.footprint_pages <= 256)
      end)
    Spec.all

let test_sip_support_matches_paper () =
  checkb "bwaves is Fortran" false (Spec.sip_supported "bwaves");
  checkb "roms is Fortran" false (Spec.sip_supported "roms");
  checkb "wrf is Fortran" false (Spec.sip_supported "wrf");
  checkb "omnetpp excluded" false (Spec.sip_supported "omnetpp");
  checkb "deepsjeng supported" true (Spec.sip_supported "deepsjeng");
  checkb "mcf supported" true (Spec.sip_supported "mcf");
  checkb "unknown unsupported" false (Spec.sip_supported "nonesuch")

let test_categories () =
  checkb "micro regular" true (Spec.category_of "microbenchmark" = Some Spec.Large_regular);
  checkb "deepsjeng irregular" true (Spec.category_of "deepsjeng" = Some Spec.Large_irregular);
  checkb "leela small" true (Spec.category_of "leela" = Some Spec.Small_working_set);
  checkb "unknown none" true (Spec.category_of "nonesuch" = None)

let test_train_is_smaller () =
  let count input =
    Trace.length (Spec.deepsjeng ~epc_pages:128 ~input)
  in
  checkb "train shorter than ref" true (count Input.Train < count (Input.Ref 0))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "leaves",
        [
          tc "sequential order" test_sequential_order;
          tc "sequential desc" test_sequential_desc_order;
          tc "strided coverage" test_strided_covers_all_pages_once;
          tc "multi-stream exhausts" test_multi_stream_exhausts_all;
          tc "uniform bounds" test_uniform_random_bounds;
          tc "zipf bounds and skew" test_zipf_bounds_and_skew;
          tc "pointer chase locality" test_pointer_chase_locality;
          tc "bursty adjacency" test_bursty_runs_are_adjacent;
          tc "mixed site ranges" test_mixed_site_ranges;
          tc "jitter" test_jitter_spreads_compute;
        ] );
      ( "combinators",
        [
          tc "seq_list" test_seq_list_concatenates;
          tc "repeat" test_repeat;
          tc "take" test_take;
          tc "interleave exhausts" test_interleave_exhausts_all;
          tc "weighted interleave" test_weighted_interleave_respects_weights;
          tc "empty" test_empty_pattern;
          tc "on_thread stamps" test_on_thread_stamps;
          tc "parallel merges threads" test_parallel_merges_threads;
          tc "mt_scan model" test_mt_scan_model;
          tc "mt model validation" test_mt_models_validate;
        ]
        @ props pattern_qcheck );
      ( "trace",
        [
          tc "replay identical" test_trace_replay_identical;
          tc "inputs differ" test_trace_inputs_differ;
          tc "site names" test_trace_site_names;
          tc "length and distinct" test_trace_length_and_distinct;
        ] );
      ( "trace_io",
        [
          tc "round trip" test_trace_io_roundtrip;
          tc "replayable twice" test_trace_io_replayable_twice;
          tc "threads preserved" test_trace_io_threads_preserved;
          tc "rejects garbage" test_trace_io_rejects_garbage;
          tc "error messages not masked" test_trace_io_error_messages_not_masked;
          tc "validates footprint" test_trace_io_validates_footprint;
        ] );
      ( "trace_stats",
        [
          tc "sequential stats" test_stats_of_sequential;
          tc "repeat interrupts run" test_stats_repeat_interrupts_run;
          tc "miss ratio bounds" test_stats_miss_ratio_bounds;
          tc "miss curve monotone" test_stats_miss_ratio_curve_monotone;
        ] );
      ( "synthetic",
        [
          tc "registry" test_synthetic_registry;
          tc "oram differs per input" test_oram_differs_per_input;
          tc "best case one run" test_best_case_is_one_run;
        ] );
      ( "input",
        [
          tc "seeds distinct" test_input_seeds_distinct;
          tc "sizes" test_input_sizes;
          tc "strings" test_input_strings;
          tc "of_string" test_input_of_string;
        ] );
      ( "models",
        [
          tc "registry complete" test_registry_complete;
          tc "inside ELRANGE" test_models_stay_inside_elrange;
          tc "large WS exceed EPC" test_large_ws_footprints_exceed_epc;
          tc "small WS fit" test_small_ws_fit_in_epc;
          tc "SIP support list" test_sip_support_matches_paper;
          tc "categories" test_categories;
          tc "train smaller" test_train_is_smaller;
        ] );
    ]
