(* Tests of the compiled trace arena: the binary codec (round-trip,
   rejection of malformed files), the one-compilation-per-trace memo,
   and the on-disk cache (cold store, warm decode, invalidation on
   seed/pattern/version change, corrupt-file regeneration). *)

module Prng = Repro_util.Prng
module Access = Workload.Access
module Pattern = Workload.Pattern
module Trace = Workload.Trace
module Arena = Workload.Trace_arena
module Codec = Workload.Trace_codec

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_error name needle = function
  | Ok _ -> Alcotest.fail (name ^ ": decode accepted a malformed file")
  | Error msg ->
    checkb
      (Printf.sprintf "%s: %S mentions %S" name msg needle)
      true (contains msg needle)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let quad (a : Access.t) = (a.site, a.vpage, a.compute, a.thread)
let events_of trace = List.map quad (List.of_seq (Trace.events trace))
let arena_list a = List.map quad (List.of_seq (Arena.to_seq a))

(* A mixed deterministic/random pattern so the columns carry real
   variety (multiple sites, PRNG-drawn pages, jittered compute). *)
let mk ?(name = "arena") ~seed ~pages () =
  let pattern =
    Pattern.interleave
      [
        Pattern.sequential ~site:0 ~base:0 ~pages ~events_per_page:2
          ~compute:100 ~jitter:0.2;
        Pattern.uniform_random ~site:1 ~base:0 ~pages ~events:(3 * pages)
          ~compute:50 ~jitter:0.5;
      ]
  in
  Trace.make ~name ~elrange_pages:(2 * pages) ~footprint_pages:pages ~seed
    ~sites:[ (0, "seq"); (1, "rand") ]
    pattern

let buf_of_list l : Codec.buf =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (List.length l) in
  List.iteri (Bigarray.Array1.set a) l;
  a

let list_of_buf (b : Codec.buf) =
  List.init (Bigarray.Array1.dim b) (Bigarray.Array1.get b)

let packed ?(name = "p") ?(seed = 1) ?(fingerprint = 99) cols =
  let site, vpage, compute, thread = cols in
  {
    Codec.name;
    seed;
    elrange_pages = 64;
    footprint_pages = 32;
    fingerprint;
    distinct_pages = 5;
    site = buf_of_list site;
    vpage = buf_of_list vpage;
    compute = buf_of_list compute;
    thread = buf_of_list thread;
  }

let packed_equal a b =
  a.Codec.name = b.Codec.name
  && a.Codec.seed = b.Codec.seed
  && a.Codec.elrange_pages = b.Codec.elrange_pages
  && a.Codec.footprint_pages = b.Codec.footprint_pages
  && a.Codec.fingerprint = b.Codec.fingerprint
  && a.Codec.distinct_pages = b.Codec.distinct_pages
  && list_of_buf a.Codec.site = list_of_buf b.Codec.site
  && list_of_buf a.Codec.vpage = list_of_buf b.Codec.vpage
  && list_of_buf a.Codec.compute = list_of_buf b.Codec.compute
  && list_of_buf a.Codec.thread = list_of_buf b.Codec.thread

(* Codec's FNV offset basis, duplicated so the tests can re-seal a
   deliberately patched file and prove decode rejects it for the right
   reason (version, trailing garbage) instead of tripping the checksum
   first. *)
let hash_seed = 0x27d4eb2f165667c5

let reseal body =
  let h = ref hash_seed in
  String.iter (fun ch -> h := Codec.mix !h (Char.code ch)) body;
  let tail = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set tail i (Char.chr ((!h lsr (8 * i)) land 0xff))
  done;
  body ^ Bytes.to_string tail

let strip_checksum s = String.sub s 0 (String.length s - 8)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* Each cache test gets its own scratch directory (cleared of stale
   entries from previous runs) and restores the disabled-cache state on
   the way out, so test order never matters. *)
let dir_counter = ref 0

let with_cache_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sgx-arena-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Array.iter
    (fun fn -> try Sys.remove (Filename.concat dir fn) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  Unix.putenv Arena.cache_env_var dir;
  Fun.protect
    ~finally:(fun () -> Unix.putenv Arena.cache_env_var "")
    (fun () -> f dir)

let the_cache_path t =
  match Arena.cache_path t with
  | Some p -> p
  | None -> Alcotest.fail "cache should be enabled here"

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip_empty () =
  let p = packed ([], [], [], []) in
  match Codec.decode (Codec.encode p) with
  | Ok p' ->
    checkb "empty arena round-trips" true (packed_equal p p');
    checki "length" 0 (Codec.length p')
  | Error msg -> Alcotest.fail msg

let codec_roundtrip_prop =
  (* Columns mix tiny, mid-size and huge magnitudes of either sign so
     every LEB128 width and the zigzag mapping get exercised. *)
  let entry =
    QCheck2.Gen.(
      oneof
        [
          int_range (-4) 4;
          int_range (-1_000_000) 1_000_000;
          map (fun n -> n lsl 40) (int_range (-1000) 1000);
        ])
  in
  let gen =
    QCheck2.Gen.(
      pair
        (pair small_nat (string_size ~gen:printable (int_range 0 12)))
        (list_size (int_range 0 200) (quad entry entry entry entry)))
  in
  QCheck2.Test.make ~name:"encode/decode round-trips any columns" ~count:100
    gen
    (fun ((seed, name), rows) ->
      let col f = List.map f rows in
      let p =
        packed ~name ~seed ~fingerprint:(seed * 7919)
          ( col (fun (s, _, _, _) -> s),
            col (fun (_, v, _, _) -> v),
            col (fun (_, _, c, _) -> c),
            col (fun (_, _, _, t) -> t) )
      in
      match Codec.decode (Codec.encode p) with
      | Ok p' -> packed_equal p p'
      | Error _ -> false)

let test_codec_rejects_short_input () =
  check_error "short" "truncated file" (Codec.decode "hi")

let test_codec_rejects_bad_magic () =
  check_error "magic" "bad magic"
    (Codec.decode "NOTANARENAFILE..................")

let test_codec_rejects_bit_flip () =
  let enc = Codec.encode (packed ([ 1; 2 ], [ 3; 4 ], [ 5; 6 ], [ 0; 1 ])) in
  let mid = String.length enc / 2 in
  let b = Bytes.of_string enc in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  check_error "bit flip" "checksum mismatch" (Codec.decode (Bytes.to_string b))

let test_codec_rejects_truncation () =
  let enc = Codec.encode (packed ([ 1; 2; 3 ], [ 4; 5; 6 ], [ 7; 8; 9 ], [ 0; 0; 1 ])) in
  List.iter
    (fun keep ->
      match Codec.decode (String.sub enc 0 keep) with
      | Ok _ ->
        Alcotest.fail (Printf.sprintf "accepted a %d-byte prefix" keep)
      | Error _ -> ())
    [ String.length enc - 1; String.length enc - 5; 20; 16 ]

let test_codec_rejects_future_version () =
  let enc = Codec.encode (packed ([ 1 ], [ 2 ], [ 3 ], [ 0 ])) in
  let body = Bytes.of_string (strip_checksum enc) in
  (* The version varint sits right after the 8-byte magic; the current
     version is small enough to zigzag into one byte, so patching that
     byte to zigzag(version + 1) forges a future-format file. *)
  checki "version varint is one byte"
    ((Codec.version lsl 1) land 0x7f)
    (Char.code (Bytes.get body 8));
  Bytes.set body 8 (Char.chr ((Codec.version + 1) lsl 1));
  check_error "version"
    (Printf.sprintf "unsupported version %d" (Codec.version + 1))
    (Codec.decode (reseal (Bytes.to_string body)))

let test_codec_rejects_trailing_garbage () =
  let enc = Codec.encode (packed ([ 1 ], [ 2 ], [ 3 ], [ 0 ])) in
  let forged = reseal (strip_checksum enc ^ "\x00") in
  check_error "garbage" "trailing garbage" (Codec.decode forged)

let test_codec_write_read_file () =
  with_cache_dir (fun dir ->
      let p = packed ([ 9; -9 ], [ 1; 2 ], [ 0; 0 ], [ 1; 0 ]) in
      let path = Filename.concat dir "direct.arena" in
      Codec.write_file ~path p;
      (match Codec.read_file ~path with
      | Ok p' -> checkb "file round-trip" true (packed_equal p p')
      | Error msg -> Alcotest.fail msg);
      match Codec.read_file ~path:(Filename.concat dir "absent.arena") with
      | Ok _ -> Alcotest.fail "read a missing file"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Arena replay                                                        *)
(* ------------------------------------------------------------------ *)

let arena_matches_events_prop =
  let gen = QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 40)) in
  QCheck2.Test.make ~name:"arena replay equals Trace.events" ~count:50 gen
    (fun (seed, pages) ->
      let t =
        mk ~name:(Printf.sprintf "arena-prop-%d-%d" seed pages) ~seed ~pages ()
      in
      let a = Arena.compile t in
      let evs = events_of t in
      arena_list a = evs
      && Arena.length a = List.length evs
      && Arena.distinct_pages a
         = List.length
             (List.sort_uniq compare (List.map (fun (_, v, _, _) -> v) evs)))

let test_arena_iter_fold_indexed_agree () =
  let t = mk ~name:"arena-views" ~seed:3 ~pages:16 () in
  let a = Arena.compile t in
  let via_iter = ref [] in
  Arena.iter a ~f:(fun ~site ~vpage ~compute ~thread ->
      via_iter := (site, vpage, compute, thread) :: !via_iter);
  checkb "iter = to_seq" true (List.rev !via_iter = arena_list a);
  let count =
    Arena.fold a ~init:0 ~f:(fun n ~site:_ ~vpage:_ ~compute:_ ~thread:_ ->
        n + 1)
  in
  checki "fold visits every event" (Arena.length a) count;
  List.iteri
    (fun i q ->
      checkb "indexed columns" true
        (q = (Arena.site a i, Arena.vpage a i, Arena.compute a i, Arena.thread a i));
      checkb "get record" true (quad (Arena.get a i) = q))
    (arena_list a);
  checkb "trace accessor" true (Arena.trace a == t)

let test_one_compilation_per_trace () =
  let t = mk ~name:"arena-once" ~seed:11 ~pages:16 () in
  let c0 = Arena.compilations () in
  let a = Arena.compile t in
  checki "first compile builds" 1 (Arena.compilations () - c0);
  ignore (Arena.compile t);
  checki "second compile memo-hits" 1 (Arena.compilations () - c0);
  checki "Trace.length from arena" (Arena.length a) (Trace.length t);
  checki "distinct pages from arena" (Arena.distinct_pages a)
    (Trace.count_distinct_pages t);
  checki "stats queries do not recompile" 1 (Arena.compilations () - c0);
  (* A structurally identical trace *value* keys to the same memo entry:
     the cache is keyed on identity (header + stream fingerprint), not
     on physical equality of the closure. *)
  let t' = mk ~name:"arena-once" ~seed:11 ~pages:16 () in
  ignore (Arena.compile t');
  checki "identical trace value memo-hits" 1 (Arena.compilations () - c0)

(* ------------------------------------------------------------------ *)
(* On-disk cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_disabled_without_env () =
  Unix.putenv Arena.cache_env_var "";
  checks "env var name" "SGX_PRELOAD_ARENA_CACHE" Arena.cache_env_var;
  checkb "empty value disables" true (Arena.cache_dir () = None);
  checkb "no path when disabled" true
    (Arena.cache_path (mk ~name:"arena-noenv" ~seed:1 ~pages:8 ()) = None)

let test_cache_cold_store_warm_decode () =
  with_cache_dir (fun dir ->
      let t = mk ~name:"arena-disk" ~seed:21 ~pages:24 () in
      let path = the_cache_path t in
      checks "entry lives under the cache dir" dir (Filename.dirname path);
      let c0 = Arena.compilations () in
      let a = Arena.compile t in
      checki "cold compile builds" 1 (Arena.compilations () - c0);
      checkb "cold compile stores" true (Sys.file_exists path);
      Arena.clear_memo ();
      let t' = mk ~name:"arena-disk" ~seed:21 ~pages:24 () in
      let a' = Arena.compile t' in
      checki "warm compile decodes, no rebuild" 1 (Arena.compilations () - c0);
      checkb "warm replay is bit-identical" true (arena_list a' = arena_list a);
      checki "decoded stats memoised" (Arena.length a) (Trace.length t'))

let test_cache_keyed_on_seed_and_pattern () =
  with_cache_dir (fun _dir ->
      let t1 = mk ~name:"arena-inv" ~seed:1 ~pages:24 () in
      let t2 = mk ~name:"arena-inv" ~seed:2 ~pages:24 () in
      checkb "seed change, different entry" true
        (the_cache_path t1 <> the_cache_path t2);
      (* Same header, different pattern: only the stream fingerprint can
         tell them apart. *)
      let t3 =
        Trace.make ~name:"arena-inv" ~elrange_pages:48 ~footprint_pages:24
          ~seed:1
          ~sites:[ (0, "seq"); (1, "rand") ]
          (Pattern.sequential ~site:0 ~base:0 ~pages:24 ~events_per_page:1
             ~compute:10 ~jitter:0.0)
      in
      checkb "pattern change, different entry" true
        (the_cache_path t1 <> the_cache_path t3);
      let c0 = Arena.compilations () in
      ignore (Arena.compile t1);
      ignore (Arena.compile t2);
      ignore (Arena.compile t3);
      checki "three identities, three builds" 3 (Arena.compilations () - c0);
      Arena.clear_memo ();
      ignore (Arena.compile t1);
      ignore (Arena.compile t2);
      ignore (Arena.compile t3);
      checki "all three decode warm" 3 (Arena.compilations () - c0))

let test_cache_rejects_damage_and_regenerates () =
  with_cache_dir (fun _dir ->
      let t = mk ~name:"arena-corrupt" ~seed:5 ~pages:24 () in
      let a = Arena.compile t in
      let path = the_cache_path t in
      let good = read_whole path in
      let expect_rebuild label damage =
        write_whole path damage;
        Arena.clear_memo ();
        let c0 = Arena.compilations () in
        let a' = Arena.compile t in
        checki (label ^ " forces a rebuild") 1 (Arena.compilations () - c0);
        checkb (label ^ " replay unchanged") true
          (arena_list a' = arena_list a);
        checks (label ^ " rewrites the entry byte-identically") good
          (read_whole path)
      in
      expect_rebuild "truncated entry"
        (String.sub good 0 (String.length good / 2));
      let flipped = Bytes.of_string good in
      let mid = Bytes.length flipped / 2 in
      Bytes.set flipped mid
        (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x01));
      expect_rebuild "corrupt entry" (Bytes.to_string flipped);
      let future = Bytes.of_string (strip_checksum good) in
      Bytes.set future 8 (Char.chr ((Codec.version + 1) lsl 1));
      expect_rebuild "stale-version entry" (reseal (Bytes.to_string future));
      expect_rebuild "garbage entry" "NOTANARENAFILE..................";
      (* A valid file for a *different* trace under this trace's name:
         the identity check must refuse to replay someone else's
         stream. *)
      let other = mk ~name:"arena-corrupt-other" ~seed:6 ~pages:24 () in
      ignore (Arena.compile other);
      expect_rebuild "foreign entry" (read_whole (the_cache_path other)))

(* ------------------------------------------------------------------ *)

let () =
  (* The cache must start disabled regardless of the caller's
     environment: every cache test opts in via [with_cache_dir]. *)
  Unix.putenv Arena.cache_env_var "";
  let tc name f = Alcotest.test_case name `Quick f in
  let props = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "trace-arena"
    [
      ( "codec",
        [
          tc "empty round-trip" test_codec_roundtrip_empty;
          tc "rejects short input" test_codec_rejects_short_input;
          tc "rejects bad magic" test_codec_rejects_bad_magic;
          tc "rejects bit flip" test_codec_rejects_bit_flip;
          tc "rejects truncation" test_codec_rejects_truncation;
          tc "rejects future version" test_codec_rejects_future_version;
          tc "rejects trailing garbage" test_codec_rejects_trailing_garbage;
          tc "write/read file" test_codec_write_read_file;
        ]
        @ props [ codec_roundtrip_prop ] );
      ( "arena",
        [
          tc "iter/fold/indexed agree" test_arena_iter_fold_indexed_agree;
          tc "one compilation per trace" test_one_compilation_per_trace;
        ]
        @ props [ arena_matches_events_prop ] );
      ( "cache",
        [
          tc "disabled without env" test_cache_disabled_without_env;
          tc "cold store, warm decode" test_cache_cold_store_warm_decode;
          tc "keyed on seed and pattern" test_cache_keyed_on_seed_and_pattern;
          tc "damage regenerates" test_cache_rejects_damage_and_regenerates;
        ] );
    ]
