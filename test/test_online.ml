(* The online adaptive controller: grammar totality, the pinned-mode
   oracle identities (a controller pinned to a static scheme's mode must
   reproduce that scheme's run field for field), classifier determinism,
   label conservation, and the scan-alignment law (every decision the
   controller takes carries a CLOCK-scan timestamp). *)

module Runner = Sim.Runner
module Macro_bench = Sim.Macro_bench
module Scheme = Preload.Scheme
module Online = Preload.Online
module Metrics = Sgxsim.Metrics
module Event = Sgxsim.Event

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let epc = 1024

(* The phased witness: a scan-heavy phase (stream-covered misses) then
   an irregular one — the trace the controller must adapt across. *)
let mixed_trace () =
  Workload.Vision.mixed_blood ~epc_pages:epc ~input:(Workload.Input.Ref 0)

(* Multi-threaded queue-stress trace for the randomized properties. *)
let stress_trace seed =
  Macro_bench.queue_stress
    {
      Macro_bench.smoke with
      Macro_bench.label = Printf.sprintf "online-prop-%d" seed;
      events = 4_000;
      threads = 3;
      streams_per_thread = 5;
      seed;
    }

let spec ?fault_plan ?online ?(log_capacity = 0) () =
  Runner.Spec.make
    ~config:{ Runner.default_config with epc_pages = epc; log_capacity }
    ?fault_plan ?online ()

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let test_grammar_roundtrip () =
  (* Every printed config name must re-parse to itself — the CLI flag,
     the chaos journal key and the experiment tables share this
     grammar. *)
  List.iter
    (fun c ->
      let name = Online.config_name c in
      match Online.config_of_string name with
      | Ok c' -> checkb (name ^ " round-trips") true (c = c')
      | Error m -> Alcotest.fail (name ^ ": " ^ m))
    [
      Online.default_config;
      { Online.default_config with Online.window = 8 };
      { Online.default_config with Online.probe = 512 };
      { Online.default_config with Online.threshold = 0.25 };
      { Online.default_config with Online.pin = Some Online.Baseline };
      { Online.default_config with Online.pin = Some Online.Dfp };
      {
        Online.default_config with
        Online.window = 2;
        probe = 64;
        threshold = 0.9;
        pin = Some Online.Sip;
      };
    ];
  checkb "bare online is the default" true
    (Online.config_of_string "online" = Ok Online.default_config);
  checks "default prints bare" "online" (Online.config_name Online.default_config)

let test_grammar_errors () =
  (* Exact strings: the message is CLI surface, same contract as the
     arrival-process grammar. *)
  let err s expected =
    match Online.config_of_string s with
    | Ok _ -> Alcotest.fail (s ^ " unexpectedly parsed")
    | Error m -> checks s expected m
  in
  err "online:window=0" "online \"online:window=0\": window must be positive";
  err "online:window=x"
    "online \"online:window=x\": malformed value \"x\" for window";
  err "online:probe=-1" "online \"online:probe=-1\": probe must be positive";
  err "online:threshold=1.5"
    "online \"online:threshold=1.5\": threshold must be in [0, 1]";
  err "online:pin=zap"
    "online \"online:pin=zap\": pin must be baseline|dfp|sip|hybrid, not \
     \"zap\"";
  err "online:window"
    "online \"online:window\": malformed key=value \"window\"";
  err "online:lr=0.1"
    "online \"online:lr=0.1\": unknown key \"lr\" (window, probe, threshold, \
     pin)";
  err "offline"
    "unknown online controller \"offline\" (expected online or \
     online:key=value,... with keys window=N, probe=N, threshold=R, \
     pin=baseline|dfp|sip|hybrid)"

(* ------------------------------------------------------------------ *)
(* Oracle identities                                                   *)
(* ------------------------------------------------------------------ *)

let oracle ~pin ~static_scheme trace =
  let pinned =
    Runner.run
      ~spec:
        (spec ~online:{ Online.default_config with Online.pin = Some pin } ())
      ~scheme:Scheme.Baseline trace
  in
  let static = Runner.run ~spec:(spec ()) ~scheme:static_scheme trace in
  (pinned, static)

let test_oracle_pin_baseline () =
  (* pin=baseline: the controller observes but never actuates, so the
     run must be the static Baseline run in every field but the scheme
     label and the controller summary. *)
  let pinned, static = oracle ~pin:Online.Baseline ~static_scheme:Scheme.Baseline (mixed_trace ()) in
  checks "label carries +online" "baseline+online" pinned.Runner.scheme;
  (match Sim.Validate.check_online_oracle ~pinned ~static with
  | [] -> ()
  | vs -> Alcotest.fail (Sim.Validate.report vs));
  (* And the controller's own invariants hold on the pinned run. *)
  match Sim.Validate.check_online pinned with
  | [] -> ()
  | vs -> Alcotest.fail (Sim.Validate.report vs)

let test_oracle_pin_dfp () =
  (* pin=dfp: the controller's stream preloader is the stock DFP
     configuration, so forcing DFP mode reproduces [Scheme.dfp_default]
     exactly — same preloads, same channel contention, same cycles. *)
  let pinned, static = oracle ~pin:Online.Dfp ~static_scheme:Scheme.dfp_default (mixed_trace ()) in
  match Sim.Validate.check_online_oracle ~pinned ~static with
  | [] -> ()
  | vs -> Alcotest.fail (Sim.Validate.report vs)

let test_native_never_attaches () =
  let r =
    Runner.run
      ~spec:(spec ~online:Online.default_config ())
      ~scheme:Scheme.Native (mixed_trace ())
  in
  checkb "no controller on native" true (r.Runner.diagnostics.Runner.online = None);
  checks "native label unsuffixed" "native" r.Runner.scheme

(* ------------------------------------------------------------------ *)
(* Determinism and composition                                         *)
(* ------------------------------------------------------------------ *)

let test_rerun_identity () =
  (* Bit-reproducibility: the classifier state is a pure function of the
     replayed stream, so a rerun is structurally identical — including
     the transition log and per-site label counts. *)
  let go () =
    Runner.run
      ~spec:(spec ~online:Online.default_config ())
      ~scheme:Scheme.Baseline (mixed_trace ())
  in
  let a = go () and b = go () in
  checkb "whole result equal" true (a = b)

let test_fused_online_identity () =
  (* The fused-replay contract extends to online specs: each fused
     instance carries its own controller, so fused == per-cell holds
     field for field (controller summaries included). *)
  let trace = stress_trace 5 in
  let s = spec ~online:Online.default_config () in
  let schemes = [ Scheme.Baseline; Scheme.dfp_stop ] in
  let fused = Runner.run_fused ~spec:s ~schemes trace in
  let solo = List.map (fun scheme -> Runner.run ~spec:s ~scheme trace) schemes in
  List.iter2
    (fun (f : Runner.result) (s : Runner.result) ->
      checkb (f.Runner.scheme ^ " fused == solo") true (f = s))
    fused solo

let test_adapts_on_phased_trace () =
  (* The feature does something: on the phased witness the controller
     must leave baseline mode at least once and report phase activity,
     and the run must beat the static baseline. *)
  let r =
    Runner.run
      ~spec:(spec ~online:Online.default_config ())
      ~scheme:Scheme.Baseline (mixed_trace ())
  in
  let baseline =
    Runner.run ~spec:(spec ()) ~scheme:Scheme.Baseline (mixed_trace ())
  in
  let s = Option.get r.Runner.diagnostics.Runner.online in
  checkb "controller switched modes" true (s.Online.s_transitions <> []);
  checkb "improves on static baseline" true
    (Runner.improvement ~baseline r > 0.0);
  Sim.Validate.assert_valid r

(* ------------------------------------------------------------------ *)
(* Conservation and scan alignment                                     *)
(* ------------------------------------------------------------------ *)

let test_label_conservation () =
  let r =
    Runner.run
      ~spec:(spec ~online:Online.default_config ())
      ~scheme:Scheme.Baseline (mixed_trace ())
  in
  let s = Option.get r.Runner.diagnostics.Runner.online in
  checki "observed = accesses" r.Runner.metrics.Metrics.accesses
    s.Online.s_observed;
  let labelled =
    List.fold_left
      (fun acc (_, (c1, c2, c3)) -> acc + c1 + c2 + c3)
      0 s.Online.per_site
  in
  checki "lifetime labels sum to observed" s.Online.s_observed labelled

let scan_times (r : Runner.result) =
  let t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Event.Scan _ -> Hashtbl.replace t (Event.at e) ()
      | _ -> ())
    r.Runner.events;
  t

let check_scan_aligned (r : Runner.result) =
  checkb "log complete" false r.Runner.diagnostics.Runner.events_truncated;
  let scans = scan_times r in
  let s = Option.get r.Runner.diagnostics.Runner.online in
  List.iter
    (fun (x : Online.transition) ->
      checkb
        (Printf.sprintf "switch at t=%d is a scan time" x.Online.at)
        true
        (Hashtbl.mem scans x.Online.at))
    s.Online.s_transitions;
  List.iter
    (fun (x : Online.label_change) ->
      checkb
        (Printf.sprintf "label flip at t=%d is a scan time" x.Online.lc_at)
        true
        (Hashtbl.mem scans x.Online.lc_at))
    s.Online.s_label_changes

let test_decisions_at_scan_times () =
  let r =
    Runner.run
      ~spec:(spec ~online:Online.default_config ~log_capacity:(1 lsl 20) ())
      ~scheme:Scheme.Baseline (mixed_trace ())
  in
  check_scan_aligned r

let prop_labels_only_change_at_scans =
  (* Randomized version of the scan-alignment law, across trace seeds
     and controller windows: every transition and label flip on a
     multi-threaded stress trace still lands on a scan timestamp, and
     the full online battery stays clean. *)
  QCheck2.Test.make ~name:"labels only change at scan timestamps" ~count:20
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, window) ->
      let trace = stress_trace seed in
      let r =
        Runner.run
          ~spec:
            (spec
               ~online:{ Online.default_config with Online.window }
               ~log_capacity:(1 lsl 20) ())
          ~scheme:Scheme.Baseline trace
      in
      check_scan_aligned r;
      (match Sim.Validate.check r with
      | [] -> ()
      | vs -> Alcotest.fail (Sim.Validate.report vs));
      true)

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "online"
    [
      ( "grammar",
        [
          tc "round-trips" test_grammar_roundtrip;
          tc "errors" test_grammar_errors;
        ] );
      ( "oracle",
        [
          tc "pin=baseline == Baseline" test_oracle_pin_baseline;
          tc "pin=dfp == dfp_default" test_oracle_pin_dfp;
          tc "native never attaches" test_native_never_attaches;
        ] );
      ( "determinism",
        [
          tc "rerun identity" test_rerun_identity;
          tc "fused == per-cell with online" test_fused_online_identity;
          tc "adapts on phased trace" test_adapts_on_phased_trace;
        ] );
      ( "laws",
        [
          tc "label conservation" test_label_conservation;
          tc "decisions at scan times" test_decisions_at_scan_times;
          QCheck_alcotest.to_alcotest prop_labels_only_change_at_scans;
        ] );
    ]
