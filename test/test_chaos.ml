(* Tests of the fault-injection layer: the pure, position-keyed draws in
   Fault_plan; the degradation arithmetic in Report; and the chaos
   matrix's tentpole guarantees — bit-identical across -j values and
   repeated runs, every cell passing the fault-tolerant Validate
   battery. *)

module Fault_plan = Sim.Fault_plan
module Chaos = Sim.Chaos
module Runner = Sim.Runner
module Report = Sim.Report
module Experiments = Sim.Experiments
module Input = Workload.Input

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault_plan draws                                                    *)
(* ------------------------------------------------------------------ *)

let test_fault_free_is_identity () =
  let p = Fault_plan.none in
  checkb "is_fault_free" true (Fault_plan.is_fault_free p);
  checki "load untouched" 44_000
    (Fault_plan.perturb_load_duration p ~at:123_456 44_000);
  checki "budget untouched" 2048 (Fault_plan.epc_budget p ~at:0 ~capacity:2048)

let test_channel_jitter_bounds_and_determinism () =
  let p = Fault_plan.with_seed Fault_plan.jittery_channel 7 in
  let samples =
    List.init 200 (fun i ->
        Fault_plan.perturb_load_duration p ~at:(i * 100_000) 44_000)
  in
  List.iter (fun d -> checkb "never below base" true (d >= 44_000)) samples;
  checkb "some window actually stalls" true
    (List.exists (fun d -> d > 44_000) samples);
  checkb "stateless: replay is identical" true
    (samples
    = List.init 200 (fun i ->
          Fault_plan.perturb_load_duration p ~at:(i * 100_000) 44_000));
  let reseeded = Fault_plan.with_seed p 8 in
  checkb "seed matters" true
    (samples
    <> List.init 200 (fun i ->
           Fault_plan.perturb_load_duration reseeded ~at:(i * 100_000) 44_000))

let test_co_tenant_budget_bounds () =
  let p = Fault_plan.with_seed Fault_plan.noisy_neighbor 7 in
  List.iter
    (fun at ->
      let b = Fault_plan.epc_budget p ~at ~capacity:1024 in
      checkb "at least one frame" true (b >= 1);
      checkb "never above capacity" true (b <= 1024))
    (List.init 100 (fun i -> i * 1_000_000));
  checkb "some window actually steals" true
    (List.exists
       (fun i -> Fault_plan.epc_budget p ~at:(i * 2_000_000) ~capacity:1024 < 1024)
       (List.init 50 Fun.id))

let test_trace_perturbation_reentrant () =
  let trace =
    Experiments.trace_of Experiments.quick "best-case" ~input:(Input.Ref 0)
  in
  let p = Fault_plan.with_seed Fault_plan.garbled_trace 7 in
  let perturbed () =
    Fault_plan.perturb_trace p ~elrange_pages:trace.Workload.Trace.elrange_pages
      (Workload.Trace.events trace)
    |> List.of_seq
  in
  let once = perturbed () in
  checkb "re-entrant like Trace.events" true (once = perturbed ());
  checkb "some accesses corrupted" true
    (once <> List.of_seq (Workload.Trace.events trace));
  checki "no events dropped without truncation"
    (Seq.length (Workload.Trace.events trace))
    (List.length once)

let test_trace_truncation () =
  let trace =
    Experiments.trace_of Experiments.quick "best-case" ~input:(Input.Ref 0)
  in
  let p =
    {
      (Fault_plan.with_seed Fault_plan.garbled_trace 7) with
      Fault_plan.trace =
        Some { Fault_plan.corrupt_chance = 0.0; truncate_after = Some 10 };
    }
  in
  checki "stream cut at the truncation point" 10
    (Seq.length
       (Fault_plan.perturb_trace p
          ~elrange_pages:trace.Workload.Trace.elrange_pages
          (Workload.Trace.events trace)))

let test_scramble_plan_permutes () =
  let plan = Experiments.plan_for Experiments.quick "deepsjeng" in
  let stale = Fault_plan.with_seed Fault_plan.stale_profile 7 in
  let scrambled = Fault_plan.scramble_plan stale plan in
  let sites (p : Preload.Sip_instrumenter.plan) =
    List.sort compare
      (List.map (fun (d : Preload.Sip_instrumenter.decision) -> d.site) p.decisions)
  in
  checkb "same site set" true (sites plan = sites scrambled);
  checkb "decisions moved" true (plan.decisions <> scrambled.decisions);
  checkb "deterministic" true
    (scrambled.decisions = (Fault_plan.scramble_plan stale plan).decisions);
  checkb "identity without the fault" true
    (Fault_plan.scramble_plan Fault_plan.none plan == plan)

let test_validate_rejects_bad_params () =
  let bad msg plan =
    Alcotest.check_raises msg (Invalid_argument ("Fault_plan: " ^ msg))
      (fun () -> ignore (Fault_plan.validate plan))
  in
  bad "stall_chance must be in [0,1]"
    {
      Fault_plan.none with
      name = "x";
      channel =
        Some
          {
            Fault_plan.jitter_period = 1000;
            stall_chance = 1.5;
            max_multiplier = 2.0;
          };
    };
  bad "max_steal must be in [0,1)"
    {
      Fault_plan.none with
      name = "x";
      co_tenant = Some { Fault_plan.steal_period = 1000; max_steal = 1.0 };
    }

let test_bank_lookup () =
  let names = Fault_plan.names () in
  checkb "bank has at least 4 plans" true (List.length names >= 4);
  List.iter
    (fun n ->
      match Fault_plan.find n with
      | Some p -> Alcotest.(check string) "find round-trips" n p.Fault_plan.name
      | None -> Alcotest.fail ("bank name not found: " ^ n))
    names;
  checkb "fault-free resolves" true
    (Fault_plan.find "fault-free" = Some Fault_plan.none);
  checkb "unknown is None" true (Fault_plan.find "no-such-plan" = None)

(* ------------------------------------------------------------------ *)
(* Degradation metrics                                                 *)
(* ------------------------------------------------------------------ *)

let run_scheme_best_case plan scheme =
  let trace =
    Experiments.trace_of Experiments.quick "best-case" ~input:(Input.Ref 0)
  in
  let config = { Runner.default_config with epc_pages = 1024 } in
  Runner.run ~spec:(Runner.Spec.make ~config ~fault_plan:plan ()) ~scheme trace

let run_best_case plan = run_scheme_best_case plan Preload.Scheme.dfp_stop

let test_degradation_against_fault_free () =
  let fault_free = run_best_case Fault_plan.none in
  let faulted =
    run_best_case (Fault_plan.with_seed Fault_plan.jittery_channel 7)
  in
  let d = Report.degradation ~fault_free faulted in
  checkb "jitter costs cycles" true (d.Report.overhead > 0.0);
  let self = Report.degradation ~fault_free fault_free in
  checkb "self-degradation is zero" true
    (self.Report.overhead = 0.0 && self.fault_increase = Some 0.0);
  Alcotest.(check string) "plan name recorded" "jittery-channel"
    faulted.Runner.fault_plan

let test_native_immune_to_enclave_faults () =
  (* Native runs outside SGX: there is no EPC for a co-tenant to squeeze,
     no load channel for jitter to stretch, and no SIP plan to go stale.
     Regression for the bug where those hooks were installed anyway and
     the native yardstick drifted with the fault plan.  Only a trace
     fault (which corrupts the access stream itself, before any enclave)
     may legitimately change Native, so each bank plan is compared
     against itself with every non-trace fault stripped. *)
  let native plan = run_scheme_best_case plan Preload.Scheme.Native in
  let fault_free = native Fault_plan.none in
  List.iter
    (fun (p : Fault_plan.t) ->
      let stripped =
        { p with Fault_plan.channel = None; co_tenant = None;
          stale_sip_plan = false }
      in
      let under_plan = native p and under_stripped = native stripped in
      checki
        (Printf.sprintf "%s: cycles ignore non-trace faults" p.Fault_plan.name)
        under_stripped.Runner.cycles under_plan.Runner.cycles;
      checki
        (Printf.sprintf "%s: final_now ignores non-trace faults"
           p.Fault_plan.name)
        under_stripped.Runner.final_now under_plan.Runner.final_now;
      checkb
        (Printf.sprintf "%s: whole result ignores non-trace faults"
           p.Fault_plan.name)
        true
        (under_stripped = under_plan);
      if p.Fault_plan.trace = None then
        checki
          (Printf.sprintf "%s: identical to fault-free" p.Fault_plan.name)
          fault_free.Runner.cycles under_plan.Runner.cycles)
    Fault_plan.bank

(* ------------------------------------------------------------------ *)
(* The chaos matrix                                                    *)
(* ------------------------------------------------------------------ *)

let tiny_settings jobs =
  {
    Chaos.quick with
    Chaos.workloads = [ "best-case" ];
    plans = [ Fault_plan.jittery_channel; Fault_plan.garbled_trace ];
    jobs;
  }

let test_matrix_clean_and_j_invariant () =
  let o1 = Chaos.run (tiny_settings 1) in
  checki "4 schemes x (fault-free + 2 plans)" 12 (List.length o1.Chaos.cells);
  checkb "no failures" true (o1.Chaos.failed = []);
  checki "no invariant violations" 0 o1.Chaos.violation_count;
  checkb "ok" true (Chaos.ok o1);
  let o2 = Chaos.run (tiny_settings 2) in
  checkb "cells identical at -j2" true (o1.Chaos.cells = o2.Chaos.cells);
  let o3 = Chaos.run (tiny_settings 1) in
  checkb "repeat run identical" true (o1.Chaos.cells = o3.Chaos.cells);
  (* The fused/per-cell contract: the default fused matrix above must be
     field-for-field what one job per cell computes. *)
  let per_cell = Chaos.run { (tiny_settings 1) with Chaos.fused = false } in
  checkb "fused == per-cell" true (o1.Chaos.cells = per_cell.Chaos.cells)

let test_matrix_invariants_full_bank () =
  (* Every bank plan, including the perfect storm, must leave the
     simulator's invariants intact on the worst-case-friendly workload. *)
  let o =
    Chaos.run { Chaos.quick with Chaos.workloads = [ "best-case" ]; jobs = 2 }
  in
  checki "full bank, no violations" 0 o.Chaos.violation_count;
  checkb "ok" true (Chaos.ok o);
  List.iter
    (fun (c : Chaos.cell) ->
      checkb
        (Printf.sprintf "%s/%s/%s cycles positive" c.workload c.scheme c.plan)
        true (c.cycles > 0))
    o.Chaos.cells

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_matrix_keeps_going_past_dead_cell () =
  (* Injected failure in one scheme's cells (per-cell mode, where each
     cell is its own job): every other cell must still come back, and
     the failures must name the injected cells. *)
  Unix.putenv "SGX_PRELOAD_FAIL_CELL" "/SIP/";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SGX_PRELOAD_FAIL_CELL" "")
    (fun () ->
      let o =
        Chaos.run
          { (tiny_settings 2) with Chaos.keep_going = true; fused = false }
      in
      checki "SIP cells failed (3 plans incl. fault-free)" 3
        (List.length o.Chaos.failed);
      checki "other 9 cells survived" 9 (List.length o.Chaos.cells);
      checkb "not ok" false (Chaos.ok o);
      List.iter
        (fun (f : Sim.Job_pool.failure) ->
          checkb "failure names a SIP cell" true (contains f.label "/SIP/"))
        o.Chaos.failed)

let test_matrix_keeps_going_past_dead_fused_group () =
  (* Fused mode bundles the four scheme cells of a (workload, plan) pair
     into one job, so a dead job drops exactly that pair's cells and the
     other pairs survive. *)
  Unix.putenv "SGX_PRELOAD_FAIL_CELL" "/jittery-channel";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SGX_PRELOAD_FAIL_CELL" "")
    (fun () ->
      let o = Chaos.run { (tiny_settings 2) with Chaos.keep_going = true } in
      checki "one fused group failed" 1 (List.length o.Chaos.failed);
      checki "other 8 cells survived" 8 (List.length o.Chaos.cells);
      checkb "not ok" false (Chaos.ok o);
      List.iter
        (fun (f : Sim.Job_pool.failure) ->
          checkb "failure names the fused group" true
            (contains f.label "fused[" && contains f.label "/jittery-channel"))
        o.Chaos.failed;
      List.iter
        (fun (c : Chaos.cell) ->
          checkb "no jittery-channel cell survived" true
            (c.Chaos.plan <> "jittery-channel"))
        o.Chaos.cells)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "chaos"
    [
      ( "fault plans",
        [
          tc "fault-free is identity" test_fault_free_is_identity;
          tc "channel jitter bounded + deterministic"
            test_channel_jitter_bounds_and_determinism;
          tc "co-tenant budget bounded" test_co_tenant_budget_bounds;
          tc "trace perturbation re-entrant" test_trace_perturbation_reentrant;
          tc "trace truncation" test_trace_truncation;
          tc "stale plan scrambling" test_scramble_plan_permutes;
          tc "parameter validation" test_validate_rejects_bad_params;
          tc "bank lookup" test_bank_lookup;
        ] );
      ( "degradation",
        [
          tc "measured against fault-free" test_degradation_against_fault_free;
          tc "native immune to enclave-side faults"
            test_native_immune_to_enclave_faults;
        ] );
      ( "matrix",
        [
          slow "clean, -j invariant, repeatable" test_matrix_clean_and_j_invariant;
          slow "full bank holds invariants" test_matrix_invariants_full_bank;
          slow "keeps going past dead cells" test_matrix_keeps_going_past_dead_cell;
          slow "keeps going past dead fused groups"
            test_matrix_keeps_going_past_dead_fused_group;
        ] );
    ]
