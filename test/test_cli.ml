(* End-to-end exit-code contract of the CLI, exercised through the real
   executable: validate/chaos/experiment must exit nonzero exactly when
   a check fails or a cell is lost, and the chaos matrix must emit
   byte-identical stdout at every -j and across an interrupt-and-resume.

   Cell failures are injected with SGX_PRELOAD_FAIL_CELL (a substring of
   a cell label, honoured by Job_pool workers), so the failure paths run
   through the production pool, not a test double. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* The test binary lives in _build/default/test/; the CLI is its sibling
   under bin/ regardless of the directory dune runs us from. *)
let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "sgx_preload.exe")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the CLI via /bin/sh; returns (exit code, stdout, stderr).  [env]
   entries are prepended as VAR=value assignments. *)
let run_cli ?(env = []) args =
  let out = Filename.temp_file "sgx_preload_cli" ".out" in
  let err = Filename.temp_file "sgx_preload_cli" ".err" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ out; err ])
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s %s > %s 2> %s"
          (String.concat " "
             (List.map (fun (k, v) -> k ^ "=" ^ Filename.quote v) env))
          (Filename.quote exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out) (Filename.quote err)
      in
      let code = Sys.command cmd in
      (code, read_file out, read_file err))

(* A chaos matrix small enough for a test: one synthetic workload, one
   plan, still 8 cells (4 schemes x {fault-free, garbled-trace}). *)
let tiny_chaos extra =
  [ "chaos"; "--quick"; "--workloads"; "best-case"; "--plans"; "garbled-trace" ]
  @ extra

let test_chaos_ok_exit_zero () =
  let code, out, _ = run_cli (tiny_chaos [ "-j"; "2" ]) in
  checki "exit 0" 0 code;
  checkb "summary reports clean matrix" true
    (contains out "8 cells, 0 invariant violation(s), 0 failed cell(s)")

let test_chaos_j_byte_identical () =
  let _, out1, _ = run_cli (tiny_chaos [ "-j"; "1" ]) in
  let _, out4, _ = run_cli (tiny_chaos [ "-j"; "4" ]) in
  checkb "-j1 and -j4 stdout byte-identical" true (out1 = out4)

let test_chaos_unknown_plan_rejected () =
  let code, _, err = run_cli [ "chaos"; "--plans"; "no-such-plan" ] in
  checkb "exit nonzero" true (code <> 0);
  checkb "stderr names the plan and lists the bank" true
    (contains err "no-such-plan" && contains err "jittery-channel")

let test_chaos_failed_cells_exit_nonzero () =
  let env = [ ("SGX_PRELOAD_FAIL_CELL", "/SIP/") ] in
  (* --no-fused: the "/SIP/" pattern targets per-cell job labels; the
     fused path groups a plan's schemes into one job (its failure
     containment is covered in test_chaos.ml). *)
  (* Without --keep-going the failures abort the matrix... *)
  let code, _, err = run_cli ~env (tiny_chaos [ "--no-fused"; "-j"; "2" ]) in
  checkb "abort: exit nonzero" true (code <> 0);
  checkb "abort: stderr names a lost cell" true (contains err "/SIP/");
  (* ...with it, the rest of the matrix still prints, but the exit code
     must stay nonzero. *)
  let code, out, _ =
    run_cli ~env (tiny_chaos [ "--no-fused"; "-j"; "2"; "--keep-going" ])
  in
  checkb "keep-going: exit nonzero" true (code <> 0);
  checkb "keep-going: survivors reported" true
    (contains out "8 cells, 0 invariant violation(s), 2 failed cell(s)")

let test_chaos_interrupt_and_resume () =
  (* An injected failure stands in for the interrupt: run 1 journals the
     cells that completed and exits nonzero; run 2 resumes with the
     fault gone and must produce stdout byte-identical to a never-failed
     run. *)
  let dir = Filename.temp_file "sgx_preload_cli" ".journal" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* --no-fused throughout: the "/SIP/" kill pattern matches per-cell
         job labels, and the resumed run must share the interrupted run's
         journal key (the fused flag is part of it). *)
      let _, clean, _ = run_cli (tiny_chaos [ "--no-fused" ]) in
      let code, _, _ =
        run_cli
          ~env:[ ("SGX_PRELOAD_FAIL_CELL", "/SIP/") ]
          (tiny_chaos [ "--no-fused"; "--keep-going"; "--journal"; dir ])
      in
      checkb "interrupted run exits nonzero" true (code <> 0);
      let code, resumed, _ =
        run_cli (tiny_chaos [ "--no-fused"; "--journal"; dir; "--resume" ])
      in
      checki "resumed run exits 0" 0 code;
      checkb "resumed stdout identical to a clean run" true (clean = resumed))

let test_validate_exit_zero_on_clean_run () =
  let code, out, _ =
    run_cli [ "validate"; "best-case"; "dfp-stop"; "--epc"; "512" ]
  in
  checki "exit 0" 0 code;
  checkb "reports all invariants hold" true (contains out "all invariants hold")

let test_experiment_keep_going_exit_codes () =
  let args = [ "experiment"; "fig2"; "--quick"; "--keep-going" ] in
  let code, _, _ = run_cli args in
  checki "clean experiment exits 0" 0 code;
  let code, _, err =
    run_cli ~env:[ ("SGX_PRELOAD_FAIL_CELL", "fig2/") ] args
  in
  checkb "failed cells make it exit nonzero" true (code <> 0);
  checkb "stderr names the experiment" true (contains err "fig2")

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "cli"
    [
      ( "exit codes",
        [
          slow "chaos clean exits 0" test_chaos_ok_exit_zero;
          slow "chaos -j byte-identical" test_chaos_j_byte_identical;
          slow "chaos unknown plan rejected" test_chaos_unknown_plan_rejected;
          slow "chaos failed cells exit nonzero" test_chaos_failed_cells_exit_nonzero;
          slow "chaos interrupt and resume" test_chaos_interrupt_and_resume;
          slow "validate clean exits 0" test_validate_exit_zero_on_clean_run;
          slow "experiment keep-going exit codes" test_experiment_keep_going_exit_codes;
        ] );
    ]
