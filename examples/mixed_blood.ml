(* The §5.4 validation: a program synthesized to have both behaviours —
   a sequential image scan (Class 2 accesses, DFP's territory) followed
   by MSER blob detection (Class 3 accesses, SIP's territory).  Neither
   scheme alone covers both phases; the hybrid does.

   Run with:  dune exec examples/mixed_blood.exe *)

module Scheme = Preload.Scheme
module Table = Repro_util.Table

let epc_pages = 2048

let () =
  print_endline
    "mixed-blood: sequential image scan + MSER blob detection (§5.4).\n\
     Paper: SIP +1.6%, DFP +6.0%, SIP+DFP +7.1%.\n";
  let model = Workload.Vision.mixed_blood in
  let trace = model ~epc_pages ~input:(Workload.Input.Ref 0) in
  let spec = Sim.Runner.Spec.make ~config:{ Sim.Runner.default_config with epc_pages } () in
  (* PGO: profile the train input, instrument only Class-3-heavy sites;
     Class-2 faults are left to DFP exactly as §4.4 prescribes. *)
  let plan =
    Preload.Sip_instrumenter.plan_of_profile
      (Preload.Sip_profiler.profile
         (Preload.Sip_profiler.default_config ~residency_pages:epc_pages)
         (model ~epc_pages ~input:Workload.Input.Train))
  in
  Printf.printf "instrumentation points: %d (all in the MSER phase)\n\n"
    (Preload.Sip_instrumenter.instrumentation_points plan);
  let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline trace in
  let table =
    Table.create
      ~headers:
        [
          ("scheme", Table.Left); ("cycles", Table.Right);
          ("improvement", Table.Right); ("faults", Table.Right);
          ("preloads used", Table.Right); ("SIP notifies", Table.Right);
        ]
  in
  let row scheme =
    let r = Sim.Runner.run ~spec ~scheme trace in
    Table.add_row table
      [
        r.scheme;
        Table.cell_int r.cycles;
        Table.cell_pct (Sim.Runner.improvement ~baseline r);
        Table.cell_int (Sgxsim.Metrics.total_faults r.metrics);
        Table.cell_int r.metrics.preload_hits;
        Table.cell_int r.metrics.sip_notifies;
      ]
  in
  row Scheme.Baseline;
  row (Scheme.Sip plan);
  row Scheme.dfp_default;
  row (Scheme.Hybrid (Preload.Dfp.with_stop Preload.Dfp.default_config, plan));
  Table.print table;
  print_newline ();
  print_endline
    "Reading the table: DFP's preload hits come from the scan phase, the\n\
     SIP notifications from the blob phase; the hybrid collects both."
