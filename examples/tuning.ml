(* Tuning walkthrough: the three empirical knobs the paper tunes and
   where their sweet spots come from.

   - stream-list length (Fig. 6): how many concurrent streams DFP can
     track before useful streams get LRU-evicted;
   - LOADLENGTH (Fig. 7): preload distance — deeper helps regular
     workloads, multiplies waste on irregular ones;
   - SIP threshold (Fig. 9): which sites are worth a per-access check.

   Run with:  dune exec examples/tuning.exe *)

module Scheme = Preload.Scheme
module Dfp = Preload.Dfp
module Table = Repro_util.Table

let epc_pages = 1024 (* smaller EPC: this is a walkthrough, not the eval *)

let spec = Sim.Runner.Spec.make ~config:{ Sim.Runner.default_config with epc_pages } ()

let normalized trace scheme =
  let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline trace in
  let r = Sim.Runner.run ~spec ~scheme trace in
  Sim.Runner.normalized_time ~baseline r

let () =
  print_endline "=== stream-list length (Fig. 6) ===";
  print_endline
    "bwaves advances 5 arrays concurrently; with fewer list entries than\n\
     live streams the predictor thrashes and preloading collapses:\n";
  let trace = Workload.Spec.bwaves ~epc_pages ~input:(Workload.Input.Ref 0) in
  List.iter
    (fun len ->
      let n =
        normalized trace (Scheme.Dfp { Dfp.default_config with stream_list_length = len })
      in
      Printf.printf "  length %2d -> normalized time %.3f\n%!" len n)
    [ 1; 2; 3; 5; 10; 30 ];
  print_newline ()

let () =
  print_endline "=== LOADLENGTH / preload distance (Fig. 7) ===";
  print_endline
    "lbm (regular) wants depth; deepsjeng (irregular) pays for it:\n";
  let lbm = Workload.Spec.lbm ~epc_pages ~input:(Workload.Input.Ref 0) in
  let sjeng = Workload.Spec.deepsjeng ~epc_pages ~input:(Workload.Input.Ref 0) in
  List.iter
    (fun len ->
      let scheme = Scheme.Dfp { Dfp.default_config with load_length = len } in
      Printf.printf "  L=%2d -> lbm %.3f, deepsjeng %.3f\n%!" len
        (normalized lbm scheme) (normalized sjeng scheme))
    [ 1; 2; 4; 8; 16 ];
  print_newline ()

let () =
  print_endline "=== SIP instrumentation threshold (Fig. 9) ===";
  print_endline
    "Too high and the probe sites lose their notifications; the paper\n\
     settles on 5%:\n";
  let model = Workload.Spec.deepsjeng in
  let train = model ~epc_pages ~input:Workload.Input.Train in
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:epc_pages)
      train
  in
  let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline train in
  List.iter
    (fun threshold ->
      let plan = Preload.Sip_instrumenter.plan_of_profile ~threshold profile in
      let r = Sim.Runner.run ~spec ~scheme:(Scheme.Sip plan) train in
      Printf.printf "  threshold %5.1f%% -> %3d points, normalized time %.3f\n%!"
        (100.0 *. threshold)
        (Preload.Sip_instrumenter.instrumentation_points plan)
        (Sim.Runner.normalized_time ~baseline r))
    [ 0.01; 0.05; 0.2; 0.5; 0.8 ];
  print_newline ();
  print_endline
    "Defaults adopted throughout the reproduction: stream list 30,\n\
     LOADLENGTH 4, threshold 5% — the paper's choices."
