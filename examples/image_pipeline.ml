(* The §5.3 real-world scenario: SIFT and MSER (SD-VBS) inside an
   enclave, with the PGO flow the paper uses — profile on one sample
   image, measure on different images.

   SIFT is sweep-dominated (DFP territory, zero instrumentation points);
   MSER is union-find-dominated (SIP territory, ~54 points).

   Run with:  dune exec examples/image_pipeline.exe *)

module Scheme = Preload.Scheme
module Input = Workload.Input

let epc_pages = 2048

let evaluate name model =
  Printf.printf "--- %s ---\n" name;
  (* 1. Profile with the sample image (the train input). *)
  let train_trace = model ~epc_pages ~input:Input.Train in
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:epc_pages)
      train_trace
  in
  let plan = Preload.Sip_instrumenter.plan_of_profile profile in
  let totals = Preload.Sip_profiler.totals profile in
  Printf.printf
    "profile (sample image): class1=%d class2=%d class3=%d -> %d \
     instrumentation point(s)\n"
    totals.c1 totals.c2 totals.c3
    (Preload.Sip_instrumenter.instrumentation_points plan);
  (* 2. Measure on other images. *)
  let spec = Sim.Runner.Spec.make ~config:{ Sim.Runner.default_config with epc_pages } () in
  let improvements scheme =
    List.map
      (fun i ->
        let trace = model ~epc_pages ~input:(Input.Ref i) in
        let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline trace in
        let r = Sim.Runner.run ~spec ~scheme trace in
        Sim.Runner.improvement ~baseline r)
      [ 0; 1; 2 ]
  in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let dfp = improvements Scheme.dfp_default in
  let sip = improvements (Scheme.Sip plan) in
  Printf.printf "DFP improvement over 3 images: %s (each: %s)\n"
    (Repro_util.Table.cell_pct (mean dfp))
    (String.concat ", " (List.map Repro_util.Table.cell_pct dfp));
  Printf.printf "SIP improvement over 3 images: %s (each: %s)\n\n"
    (Repro_util.Table.cell_pct (mean sip))
    (String.concat ", " (List.map Repro_util.Table.cell_pct sip))

let () =
  print_endline
    "Image pipeline inside an enclave: SIFT (feature extraction) and\n\
     MSER (blob detection), profiled on one image, measured on others.\n\
     Paper reference: SIFT+DFP 9.5%, MSER+SIP 3.0% (Fig. 11).\n";
  evaluate "SIFT" Workload.Vision.sift;
  evaluate "MSER" Workload.Vision.mser
