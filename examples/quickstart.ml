(* Quickstart: the §1 scenario end to end.

   Builds a 1 GB-style sequential-scan workload against a small EPC,
   runs it as a plain enclave, as a native process, and with DFP
   preloading attached — first through the high-level runner, then once
   more driving the Enclave API by hand to show what the pieces are.

   Run with:  dune exec examples/quickstart.exe *)

module Scheme = Preload.Scheme

let epc_pages = 2048 (* 8 MiB of usable EPC at 4 KiB pages *)

let () =
  print_endline "=== 1. High-level: runner + workload model ===\n";
  let trace =
    Workload.Spec.microbenchmark ~epc_pages ~input:(Workload.Input.Ref 0)
  in
  let spec = Sim.Runner.Spec.make ~config:{ Sim.Runner.default_config with epc_pages } () in
  let native = Sim.Runner.run ~spec ~scheme:Scheme.Native trace in
  let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline trace in
  let dfp = Sim.Runner.run ~spec ~scheme:Scheme.dfp_default trace in
  Printf.printf "native (no SGX):  %s\n" (Sim.Report.summary native);
  Printf.printf "enclave baseline: %s\n" (Sim.Report.summary baseline);
  Printf.printf "enclave + DFP:    %s\n\n" (Sim.Report.summary dfp);
  Printf.printf "enclave slowdown over native: %.1fx\n"
    (float_of_int baseline.cycles /. float_of_int native.cycles);
  Printf.printf
    "(a bare scan with no loop body slows down %.0fx — paper's §1 observed ~46x)\n"
    (Sim.Experiments.intro_slowdown
       { Sim.Experiments.default with epc_pages });
  Printf.printf "DFP improvement over baseline: %s (paper: 18.6%%)\n\n"
    (Repro_util.Table.cell_pct (Sim.Runner.improvement ~baseline dfp))

let () =
  print_endline "=== 2. Low-level: driving the enclave by hand ===\n";
  (* An enclave with 8 EPC frames and a 64-page ELRANGE; we attach DFP
     and touch 32 pages in order.  Watch the fault counters: after the
     second fault opens a stream, DFP preloads ahead and most pages are
     already resident (or in flight) when the app reaches them. *)
  let enclave = Sgxsim.Enclave.create ~epc_pages:8 ~elrange_pages:64 () in
  let _dfp = Preload.Dfp.attach enclave Preload.Dfp.default_config in
  let now = ref 0 in
  for page = 0 to 31 do
    (* 60k cycles of "work" between pages gives preloads time to land. *)
    now := Sgxsim.Enclave.compute enclave ~now:!now 60_000;
    now := Sgxsim.Enclave.access enclave ~now:!now page
  done;
  Sgxsim.Enclave.sync enclave ~now:!now;
  let m = Sgxsim.Enclave.metrics enclave in
  Printf.printf "pages touched:      32\n";
  Printf.printf "demand faults:      %d\n" m.faults;
  Printf.printf "resolved by preload:%d (found already loaded)\n"
    m.faults_already_present;
  Printf.printf "waited in flight:   %d\n" m.faults_in_flight;
  Printf.printf "preloads completed: %d, of which used: %d\n"
    m.preloads_completed m.preload_hits;
  Printf.printf "total time:         %s cycles\n" (Repro_util.Table.cell_int !now)
