(* Multi-threaded enclaves and per-thread fault histories (extension).

   Algorithm 1 takes the faulting thread's ID and keeps one stream list
   per thread ([find_stream_list(ID)]); the paper's evaluation never
   exercises it because SPEC runs single-threaded.  This example builds
   an 8-worker enclave where every thread advances its own sequential
   scan while also probing a shared pool, and shows why the per-thread
   design matters: the combined fault stream contains more concurrent
   noise than one shared 30-entry list can retain.

   Run with:  dune exec examples/multithreaded.exe *)

module Scheme = Preload.Scheme
module Dfp = Preload.Dfp

let epc_pages = 2048

let () =
  let trace =
    Workload.Parallel_apps.mt_scan ~threads:8 ~epc_pages
      ~input:(Workload.Input.Ref 0)
  in
  let spec = Sim.Runner.Spec.make ~config:{ Sim.Runner.default_config with epc_pages } () in
  let baseline = Sim.Runner.run ~spec ~scheme:Scheme.Baseline trace in
  Printf.printf "workload: %s — %s\n\n" trace.Workload.Trace.name
    (Sim.Report.summary baseline);
  let show label per_thread =
    let scheme = Scheme.Dfp { Dfp.default_config with per_thread } in
    let r = Sim.Runner.run ~spec ~scheme trace in
    Printf.printf "%-28s improvement %s, faults %s, preloads used %s\n" label
      (Repro_util.Table.cell_pct (Sim.Runner.improvement ~baseline r))
      (Repro_util.Table.cell_int (Sgxsim.Metrics.total_faults r.metrics))
      (Repro_util.Table.cell_int r.metrics.preload_hits)
  in
  show "DFP, per-thread lists:" true;
  show "DFP, one shared list:" false;
  print_newline ();
  (* Peek at the per-thread machinery directly. *)
  let enclave =
    Sgxsim.Enclave.create ~epc_pages:64 ~elrange_pages:65536 ()
  in
  let dfp = Dfp.attach enclave Dfp.default_config in
  let now = ref 0 in
  for i = 0 to 19 do
    List.iter
      (fun thread ->
        now := Sgxsim.Enclave.compute enclave ~now:!now 50_000;
        now :=
          Sgxsim.Enclave.access ~thread enclave ~now:!now
            ((thread * 4096) + i))
      [ 0; 1; 2; 3 ]
  done;
  Printf.printf "4 interleaved scans -> %d stream lists, tails: %s\n"
    (Dfp.thread_count dfp)
    (String.concat ", "
       (List.map
          (fun thread ->
            match Preload.Stream_predictor.streams (Dfp.predictor_for dfp thread) with
            | s :: _ -> Printf.sprintf "t%d@p%d" thread s.stpn
            | [] -> Printf.sprintf "t%d@-" thread)
          [ 0; 1; 2; 3 ]))
