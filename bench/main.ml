(* The benchmark harness.

   With no arguments it regenerates every table and figure of the paper's
   evaluation (§5) at full settings, then runs the Bechamel
   micro-benchmarks of the implementation's hot operations.  Individual
   experiment ids (see `bench/main.exe list`) select a subset. *)

open Bechamel
open Toolkit

let experiment_ids = List.map fst Sim.Experiments.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one test per hot operation, plus one     *)
(* end-to-end simulation test per paper artefact family.               *)
(* ------------------------------------------------------------------ *)

let ops_tests () =
  let prng = Repro_util.Prng.create 42 in
  let predictor =
    Preload.Stream_predictor.create ~stream_list_length:30 ~load_length:4 ()
  in
  let bitset = Repro_util.Bitset.create 65536 in
  Repro_util.Bitset.set bitset 12345;
  let lru = Preload.Page_lru.create ~capacity:2048 in
  for i = 0 to 4095 do
    ignore (Preload.Page_lru.touch lru i)
  done;
  let evictor = Sgxsim.Clock_evictor.create ~capacity:1024 in
  let accessed = Array.make 4096 false in
  for p = 0 to 1023 do
    ignore (Sgxsim.Clock_evictor.insert evictor p)
  done;
  let enclave = Sgxsim.Enclave.create ~epc_pages:1024 ~elrange_pages:4096 () in
  let now = ref 0 in
  Test.make_grouped ~name:"ops"
    [
      Test.make ~name:"prng_bits64"
        (Staged.stage (fun () -> ignore (Repro_util.Prng.bits64 prng)));
      Test.make ~name:"predictor_on_fault"
        (Staged.stage (fun () ->
             ignore
               (Preload.Stream_predictor.on_fault predictor
                  (Repro_util.Prng.int prng 4096))));
      Test.make ~name:"bitmap_check"
        (Staged.stage (fun () ->
             ignore
               (Repro_util.Bitset.mem bitset (Repro_util.Prng.int prng 65536))));
      Test.make ~name:"page_lru_touch"
        (Staged.stage (fun () ->
             ignore (Preload.Page_lru.touch lru (Repro_util.Prng.int prng 4096))));
      Test.make ~name:"clock_victim"
        (Staged.stage (fun () ->
             ignore
               (Sgxsim.Clock_evictor.choose_victim evictor
                  ~accessed:(fun v -> accessed.(v))
                  ~clear:(fun v -> accessed.(v) <- false))));
      Test.make ~name:"clock_victim_owned"
        (Staged.stage (fun () ->
             (* The fleet sweep: owner-tagged frames plus a pin check on
                every hand position. *)
             ignore
               (Sgxsim.Clock_evictor.choose_victim_owned evictor
                  ~pinned:(fun ~owner:_ ~vpage -> vpage land 255 = 17)
                  ~accessed:(fun ~owner:_ ~vpage -> accessed.(vpage))
                  ~clear:(fun ~owner:_ ~vpage -> accessed.(vpage) <- false))));
      Test.make ~name:"enclave_hot_access"
        (Staged.stage (fun () ->
             (* Page 0 is resident after the first call; later calls are
                the pure in-EPC fast path. *)
             now := Sgxsim.Enclave.access enclave ~now:!now 0));
    ]

let figure_tests () =
  (* One end-to-end Test.make per paper artefact family, at quick
     settings: measures how long regenerating each one takes. *)
  let s = Sim.Experiments.quick in
  let make name f = Test.make ~name (Staged.stage (fun () -> ignore (f s))) in
  (* A small co-tenant pair: two smoke-sized traces sharing 256 frames
     under the global CLOCK — the fleet interleaver's throughput. *)
  let fleet_trace label seed =
    Sim.Macro_bench.queue_stress
      { Sim.Macro_bench.smoke with Sim.Macro_bench.label; events = 10_000; seed }
  in
  let ta = fleet_trace "bench-fleet-a" 1 and tb = fleet_trace "bench-fleet-b" 2 in
  Test.make_grouped ~name:"figures"
    [
      make "fig2_timelines" Sim.Experiments.fig2_timelines;
      make "fig4_costs" Sim.Experiments.fig4_costs;
      make "fig6_sweep" Sim.Experiments.fig6_sweep;
      make "fig8_rows" Sim.Experiments.fig8_rows;
      make "fig13_rows" Sim.Experiments.fig13_rows;
      Test.make ~name:"fleet_shared_pair"
        (Staged.stage (fun () ->
             ignore
               (Sim.Fleet.run
                  ~config:
                    { Sim.Fleet.default_config with Sim.Fleet.epc_pages = 256 }
                  [
                    Sim.Fleet.tenant ~label:"a" ~scheme:Preload.Scheme.dfp_default ta;
                    Sim.Fleet.tenant ~label:"b" ~scheme:Preload.Scheme.Baseline tb;
                  ])));
    ]

let run_bechamel ~quota_s test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> Printf.sprintf "%12.1f ns/run" e
        | Some [] | None -> "           n/a"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "r2=%.3f" r
        | None -> ""
      in
      Printf.printf "  %-40s %s  %s\n%!" name estimate r2)
    rows

let print_ops () =
  print_endline "## E-ops — Bechamel micro-benchmarks of hot operations\n";
  run_bechamel ~quota_s:0.5 (ops_tests ());
  print_newline ();
  print_endline
    "## E-ops — end-to-end artefact regeneration (quick settings)\n";
  run_bechamel ~quota_s:1.0 (figure_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E-runtime: end-to-end simulator throughput (macro-benchmark)        *)
(* ------------------------------------------------------------------ *)

let run_runtime ~jobs settings =
  let report = Sim.Macro_bench.run ~clock:Unix.gettimeofday ~jobs settings in
  Sim.Macro_bench.print report;
  let path = "BENCH_runtime.json" in
  let oc = open_out path in
  output_string oc (Sim.Macro_bench.to_json report);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let print_list () =
  print_endline "experiments:";
  List.iter
    (fun (id, descr) -> Printf.printf "  %-14s %s\n" id descr)
    Sim.Experiments.all;
  print_endline "  ops            Bechamel micro-benchmarks";
  print_endline
    "  runtime        macro-benchmark: wall-clock throughput per scheme on \
     the queue-stress trace (writes BENCH_runtime.json)";
  print_endline "  runtime-smoke  the same at CI-sized settings";
  print_endline "  all            everything above";
  print_endline "";
  print_endline
    "options: -j N   fan experiment cells / runtime replays out across N \
     forked workers (output is byte-identical; default 1)";
  print_endline
    "         --fused / --no-fused   fused single-pass scheme replay vs one \
     job per cell (byte-identical output; default fused)"

(* Strip a leading/interspersed [-j N] (or [-jN]) and
   [--fused]/[--no-fused] from the argument list; everything else is an
   experiment id as before. *)
let parse_jobs args =
  let rec go jobs fused acc = function
    | [] -> (jobs, fused, List.rev acc)
    | "--fused" :: rest -> go jobs true acc rest
    | "--no-fused" :: rest -> go jobs false acc rest
    | "-j" :: n :: rest | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> go j fused acc rest
      | Some _ | None ->
        Printf.eprintf "-j expects a positive integer, got %S\n" n;
        exit 1)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j expects a worker count\n";
      exit 1
    | arg :: rest
      when String.length arg > 2 && String.sub arg 0 2 = "-j"
           && int_of_string_opt (String.sub arg 2 (String.length arg - 2))
              <> None -> (
      match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
      | Some j when j >= 1 -> go j fused acc rest
      | _ ->
        Printf.eprintf "-j expects a positive integer, got %S\n" arg;
        exit 1)
    | arg :: rest -> go jobs fused (arg :: acc) rest
  in
  go 1 true [] args

let () =
  let jobs, fused, args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  let settings = { Sim.Experiments.default with jobs; fused } in
  match args with
  | [ "list" ] -> print_list ()
  | [] | [ "all" ] ->
    print_endline
      "# Regenerating every table and figure of \"Regaining Lost Seconds\" \
       (Middleware '20)\n";
    Printf.printf "settings: EPC = %d pages, ref input = %s\n\n"
      settings.epc_pages
      (Workload.Input.to_string settings.ref_input);
    List.iter
      (fun (id, _) ->
        Sim.Experiments.run id settings;
        print_newline ())
      Sim.Experiments.all;
    print_ops ();
    run_runtime ~jobs Sim.Macro_bench.full
  | ids ->
    List.iter
      (fun id ->
        if id = "ops" then print_ops ()
        else if id = "runtime" then run_runtime ~jobs Sim.Macro_bench.full
        else if id = "runtime-smoke" then run_runtime ~jobs Sim.Macro_bench.smoke
        else if List.mem id experiment_ids then begin
          Sim.Experiments.run id settings;
          print_newline ()
        end
        else begin
          Printf.eprintf "unknown experiment %S\n" id;
          print_list ();
          exit 1
        end)
      ids
