(* Command-line driver: run a workload under a scheme, inspect SIP
   profiles/plans, or regenerate paper experiments. *)

open Cmdliner

module Scheme = Preload.Scheme
module Input = Workload.Input
module Experiments = Sim.Experiments

(* The workload catalog lives in Experiments so the [list] output, the
   error messages below and what [run] accepts can never drift apart
   (this listing used to omit the parallel and synthetic families). *)
let list_workloads () = Experiments.workload_names ()
let model_of_name = Experiments.find_model

let unknown_workload name =
  Printf.eprintf "unknown workload %S; known workloads:\n  %s\n" name
    (String.concat "\n  " (list_workloads ()));
  exit 1

(* ---------- shared argument converters ---------- *)

let input_conv =
  let parse s =
    match Input.of_string s with Ok i -> Ok i | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt i -> Format.pp_print_string fmt (Input.to_string i))

let workload_arg =
  let doc = "Workload model (see $(b,list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let epc_arg =
  let doc = "Usable EPC size in 4 KiB pages." in
  Arg.(value & opt int 2048 & info [ "epc" ] ~docv:"PAGES" ~doc)

let input_arg =
  let doc = "Input set: $(b,train) or $(b,ref0), $(b,ref1), ..." in
  Arg.(value & opt input_conv (Input.Ref 0) & info [ "input" ] ~docv:"INPUT" ~doc)

let threshold_arg =
  let doc = "SIP irregular-ratio instrumentation threshold." in
  Arg.(
    value
    & opt float Preload.Sip_instrumenter.default_threshold
    & info [ "threshold" ] ~docv:"RATIO" ~doc)

let breaker_arg =
  let doc =
    "Attach the preload circuit breaker (stock configuration) to every \
     enclave instance: when the scan-harvested preload hit rate falls \
     below the trip threshold over a full window, the breaker opens and \
     sheds speculative loads until a half-open probe run succeeds."
  in
  Arg.(value & flag & info [ "breaker" ] ~doc)

let breaker_of flag =
  if flag then Some Preload.Breaker.default_config else None

let online_arg =
  let doc =
    "Attach the online adaptive controller (no PGO input): $(b,online) \
     for the stock configuration, or a parameterized spec like \
     $(b,online:window=8,probe=256).  The controller classifies pages \
     from the CLOCK scan's harvested access bits and switches between \
     baseline, DFP and learned instrumentation at scan boundaries."
  in
  Arg.(
    value
    & opt ~vopt:(Some "online") (some string) None
    & info [ "online" ] ~docv:"SPEC" ~doc)

let online_of = function
  | None -> None
  | Some s -> (
    match Preload.Online.config_of_string s with
    | Ok c -> Some c
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1)

(* ---------- run ---------- *)

let settings_of ~epc ~input =
  { Experiments.default with epc_pages = epc; ref_input = input }

let build_plan ~epc name =
  let model =
    match model_of_name name with
    | Some m -> m
    | None -> failwith (Printf.sprintf "unknown workload %S" name)
  in
  let train = model ~epc_pages:epc ~input:Input.Train in
  let profile =
    Preload.Sip_profiler.profile
      ~input:(Input.to_string Input.Train)
      (Preload.Sip_profiler.default_config ~residency_pages:epc)
      train
  in
  Preload.Sip_instrumenter.plan_of_profile profile

(* One scheme grammar for every command — {!Scheme.of_string} owns the
   parsing; the CLI only supplies the plan thunk (a saved plan file when
   [--plan] is given, else the train-input PGO pipeline), which is forced
   only when the scheme actually needs a plan. *)
let parse_scheme ?plan_file ~epc ~workload s =
  let plan () =
    match plan_file with
    | Some path -> Preload.Plan_io.load ~path
    | None -> build_plan ~epc workload
  in
  match Scheme.of_string ~plan s with
  | Ok scheme -> scheme
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let scheme_doc =
  "Preloading scheme: $(b,baseline), $(b,native), $(b,dfp), $(b,dfp-stop), \
   $(b,sip), $(b,sip+dfp), $(b,sip+dfp-stop) (alias $(b,hybrid)), \
   $(b,next-line:K), $(b,stride:K), $(b,markov:T,D)."

let run_cmd =
  let scheme_arg =
    Arg.(
      value
      & opt string "baseline"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:scheme_doc)
  in
  let breakdown_arg =
    let doc = "Print the cycle-accounting breakdown." in
    Arg.(value & flag & info [ "breakdown" ] ~doc)
  in
  let events_arg =
    let doc = "Record and print the first $(docv) timeline events." in
    Arg.(value & opt int 0 & info [ "events" ] ~docv:"N" ~doc)
  in
  let plan_arg =
    let doc = "Use a saved instrumentation plan (see $(b,profile --save-plan)) for the sip/hybrid schemes." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let action workload scheme epc input breakdown events plan_file breaker
      online =
    match model_of_name workload with
    | None -> unknown_workload workload
    | Some model ->
      let scheme = parse_scheme ?plan_file ~epc ~workload scheme in
      let trace = model ~epc_pages:epc ~input in
      let config =
        { Sim.Runner.default_config with epc_pages = epc; log_capacity = events }
      in
      let spec =
        Sim.Runner.Spec.make ~config ?breaker:(breaker_of breaker)
          ?online:(online_of online)
          ~input_label:(Input.to_string input) ()
      in
      let result = Sim.Runner.run ~spec ~scheme trace in
      print_endline (Sim.Report.summary result);
      if result.instrumentation_points > 0 then
        Printf.printf "instrumentation points: %d\n" result.instrumentation_points;
      if result.dfp_stopped then print_endline "DFP-stop fired during the run.";
      if breakdown then begin
        print_newline ();
        Repro_util.Table.print (Sim.Report.breakdown_table result);
        print_newline ();
        Repro_util.Table.print (Sim.Report.fault_latency_table result);
        print_newline ();
        Repro_util.Table.print (Sim.Report.diagnostics_table result)
      end;
      if events > 0 then begin
        print_newline ();
        List.iter (fun e -> Format.printf "%a@." Sgxsim.Event.pp e) result.events
      end
  in
  let term =
    Term.(
      const action $ workload_arg $ scheme_arg $ epc_arg $ input_arg
      $ breakdown_arg $ events_arg $ plan_arg $ breaker_arg $ online_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one preloading scheme")
    term

(* ---------- compare ---------- *)

let compare_cmd =
  let action workload epc input =
    match model_of_name workload with
    | None -> unknown_workload workload
    | Some model ->
      let trace = model ~epc_pages:epc ~input in
      let spec =
        Sim.Runner.Spec.make
          ~config:{ Sim.Runner.default_config with epc_pages = epc }
          ~input_label:(Input.to_string input) ()
      in
      let run scheme = Sim.Runner.run ~spec ~scheme trace in
      let baseline = run Scheme.Baseline in
      let plan = build_plan ~epc workload in
      let table =
        Repro_util.Table.create
          ~headers:
            [
              ("scheme", Repro_util.Table.Left);
              ("cycles", Repro_util.Table.Right);
              ("normalized", Repro_util.Table.Right);
              ("improvement", Repro_util.Table.Right);
              ("faults", Repro_util.Table.Right);
            ]
      in
      List.iter
        (fun scheme ->
          let r = run scheme in
          Repro_util.Table.add_row table
            [
              r.scheme;
              Repro_util.Table.cell_int r.cycles;
              Repro_util.Table.cell_float ~decimals:3
                (Sim.Runner.normalized_time ~baseline r);
              Repro_util.Table.cell_pct (Sim.Runner.improvement ~baseline r);
              Repro_util.Table.cell_int (Sgxsim.Metrics.total_faults r.metrics);
            ])
        [
          Scheme.Baseline; Scheme.dfp_default; Scheme.dfp_stop; Scheme.Sip plan;
          Scheme.Hybrid (Preload.Dfp.with_stop Preload.Dfp.default_config, plan);
        ];
      Printf.printf "%s, input %s, EPC %d pages:\n\n" workload
        (Input.to_string input) epc;
      Repro_util.Table.print table
  in
  let term = Term.(const action $ workload_arg $ epc_arg $ input_arg) in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every scheme on one workload and compare")
    term

(* ---------- profile ---------- *)

let profile_cmd =
  let save_arg =
    let doc = "Also write the instrumentation plan to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save-plan" ] ~docv:"FILE" ~doc)
  in
  let action workload epc input threshold save =
    match model_of_name workload with
    | None -> unknown_workload workload
    | Some model ->
      let trace = model ~epc_pages:epc ~input in
      let profile =
        Preload.Sip_profiler.profile
          ~input:(Input.to_string input)
          (Preload.Sip_profiler.default_config ~residency_pages:epc)
          trace
      in
      let plan = Preload.Sip_instrumenter.plan_of_profile ~threshold profile in
      let totals = Preload.Sip_profiler.totals profile in
      Printf.printf "%s (%s): %d accesses, class1=%d class2=%d class3=%d\n"
        workload (Input.to_string input) profile.total_accesses totals.c1
        totals.c2 totals.c3;
      Printf.printf "instrumentation points at %.1f%%: %d\n\n"
        (100.0 *. threshold)
        (Preload.Sip_instrumenter.instrumentation_points plan);
      let table =
        Repro_util.Table.create
          ~headers:
            [
              ("site", Repro_util.Table.Left);
              ("class1", Repro_util.Table.Right);
              ("class2", Repro_util.Table.Right);
              ("class3", Repro_util.Table.Right);
              ("irregular", Repro_util.Table.Right);
              ("instrument", Repro_util.Table.Left);
            ]
      in
      List.iter
        (fun (d : Preload.Sip_instrumenter.decision) ->
          Repro_util.Table.add_row table
            [
              Workload.Trace.site_name trace d.site;
              string_of_int d.counts.c1;
              string_of_int d.counts.c2;
              string_of_int d.counts.c3;
              Repro_util.Table.cell_pct d.ratio;
              (if d.instrument then "yes" else "-");
            ])
        plan.decisions;
      Repro_util.Table.print table;
      match save with
      | Some path ->
        Preload.Plan_io.save plan ~path;
        Printf.printf "\nplan written to %s\n" path
      | None -> ()
  in
  let term =
    Term.(
      const action $ workload_arg $ epc_arg $ input_arg $ threshold_arg
      $ save_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the SIP profiling pass and show per-site classification")
    term

(* ---------- stats ---------- *)

let stats_cmd =
  let action workload epc input =
    match model_of_name workload with
    | None -> unknown_workload workload
    | Some model ->
      let trace = model ~epc_pages:epc ~input in
      let s = Workload.Trace_stats.analyse trace in
      Printf.printf "%s (%s):\n  %s\n\n" workload (Input.to_string input)
        (Format.asprintf "%a" Workload.Trace_stats.pp s);
      Printf.printf
        "hot-page persistence (top-%d overlap across %d windows): %s\n\n"
        64 16
        (Repro_util.Table.cell_pct s.Workload.Trace_stats.hot_persistence);
      print_endline "LRU miss-ratio curve (baseline fault-rate estimate):";
      List.iter
        (fun (size, ratio) ->
          Printf.printf "  %6d pages -> %s\n" size
            (Repro_util.Table.cell_pct ratio))
        (Workload.Trace_stats.miss_ratio_curve trace
           ~epc_pages:[ epc / 4; epc / 2; epc; 2 * epc ])
  in
  let term = Term.(const action $ workload_arg $ epc_arg $ input_arg) in
  Cmd.v
    (Cmd.info "stats" ~doc:"Characterise a workload (locality, miss curve)")
    term

(* ---------- record / replay ---------- *)

let output_arg =
  let doc = "Output file." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let record_cmd =
  let action workload epc input output =
    match model_of_name workload with
    | None -> unknown_workload workload
    | Some model ->
      let trace = model ~epc_pages:epc ~input in
      Workload.Trace_io.save_trace trace ~path:output;
      Printf.printf "recorded %s (%s) to %s\n" workload (Input.to_string input)
        output
  in
  let term = Term.(const action $ workload_arg $ epc_arg $ input_arg $ output_arg) in
  Cmd.v (Cmd.info "record" ~doc:"Record a workload's access trace to a file") term

let replay_cmd =
  let file_arg =
    let doc = "Trace file written by $(b,record)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let scheme_arg =
    Arg.(
      value
      & opt string "baseline"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:scheme_doc)
  in
  let action file scheme epc =
    let trace = Workload.Trace_io.load_trace ~path:file in
    let scheme = parse_scheme ~epc ~workload:trace.Workload.Trace.name scheme in
    let spec =
      Sim.Runner.Spec.make
        ~config:{ Sim.Runner.default_config with epc_pages = epc }
        ()
    in
    let result = Sim.Runner.run ~spec ~scheme trace in
    print_endline (Sim.Report.summary result)
  in
  let term = Term.(const action $ file_arg $ scheme_arg $ epc_arg) in
  Cmd.v (Cmd.info "replay" ~doc:"Run a recorded trace file under a scheme") term

(* ---------- validate ---------- *)

let scheme_pos_arg =
  Arg.(value & pos 1 string "baseline" & info [] ~docv:"SCHEME" ~doc:scheme_doc)

let run_logged ?online ~workload ~scheme_name ~epc ~input ~log_capacity () =
  match model_of_name workload with
  | None -> unknown_workload workload
  | Some model ->
    let scheme = parse_scheme ~epc ~workload scheme_name in
    let trace = model ~epc_pages:epc ~input in
    let spec =
      Sim.Runner.Spec.make
        ~config:{ Sim.Runner.default_config with epc_pages = epc; log_capacity }
        ~input_label:(Input.to_string input) ?online ()
    in
    Sim.Runner.run ~spec ~scheme trace

let validate_cmd =
  let action workload scheme epc input =
    (* Large enough to keep full histories for the shipped workloads, so
       the event-derived checks actually run; Validate skips them if the
       ring still overflows. *)
    let result =
      run_logged ~workload ~scheme_name:scheme ~epc ~input
        ~log_capacity:(1 lsl 20) ()
    in
    if result.diagnostics.events_truncated then
      Printf.printf
        "note: event ring overflowed (%d events kept); event-derived checks \
         skipped\n"
        (List.length result.events);
    match Sim.Validate.check result with
    | [] ->
      Printf.printf "%s/%s: all invariants hold (%d cycles, %d events)\n"
        result.workload result.scheme result.cycles
        (List.length result.events)
    | violations ->
      Printf.eprintf "%s/%s: %d invariant violation(s)\n%s\n" result.workload
        result.scheme
        (List.length violations)
        (Sim.Validate.report violations);
      exit 1
  in
  let term =
    Term.(const action $ workload_arg $ scheme_pos_arg $ epc_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Run a workload under a scheme and check every simulator invariant \
          (cycle accounting, event-log discipline, counter identities)")
    term

(* ---------- export ---------- *)

let export_cmd =
  let format_arg =
    (* The converter is derived from [Trace_export.formats]: a format
       added to the variant shows up here without touching the CLI. *)
    let doc = "Output format: $(b,chrome-trace), $(b,jsonl) or $(b,csv)." in
    Arg.(
      value
      & opt (Arg.enum Sim.Trace_export.formats) Sim.Trace_export.Chrome_trace
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let out_arg =
    let doc = "Write to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let scheme_opt_arg =
    let doc = "Preloading scheme (as for $(b,run))." in
    Arg.(value & opt string "baseline" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let action workload scheme epc input format out online =
    let log_capacity =
      if Sim.Trace_export.needs_events format then 1 lsl 20 else 0
    in
    let result =
      run_logged
        ?online:(online_of online)
        ~workload ~scheme_name:scheme ~epc ~input ~log_capacity ()
    in
    let payload = Sim.Trace_export.render ~format result in
    match out with
    | None -> print_string payload
    | Some path ->
      let oc = open_out path in
      output_string oc payload;
      close_out oc;
      Printf.eprintf "wrote %s (%d bytes)\n" path (String.length payload)
  in
  let term =
    Term.(
      const action $ workload_arg $ scheme_opt_arg $ epc_arg $ input_arg
      $ format_arg $ out_arg $ online_arg)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Run a workload and export the run as a Perfetto-loadable Chrome \
          trace, a JSONL record or a CSV row")
    term

(* ---------- experiment / chaos (shared hardening flags) ---------- *)

let quick_arg =
  let doc = "Use the trimmed quick settings." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Fan each experiment's cells out across $(docv) forked worker \
     processes (1 = run in-process).  Results merge deterministically, \
     so the output is byte-identical at any value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock seconds per cell attempt; a cell still running after \
     $(docv) seconds is SIGKILLed and counts as failed (or is retried, \
     see $(b,--retries))."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc = "Re-run a failing cell up to $(docv) extra times (exponential backoff)." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let keep_going_arg =
  let doc =
    "Collect failures and keep running the rest of the matrix; report \
     them at the end and exit nonzero if any remain."
  in
  Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)

let journal_arg =
  let doc =
    "Checkpoint completed cells into per-table journal files under \
     $(docv) (created if missing); see $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Reuse cells journaled by an interrupted run with the same \
     configuration instead of re-executing them (requires \
     $(b,--journal))."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let fused_arg =
  let fused_doc =
    "Collapse each trace's scheme cells into one fused single-pass \
     replay (the default): the trace is decoded once per workload \
     group, not once per cell.  Output is byte-identical to \
     $(b,--no-fused)."
  in
  let no_fused_doc =
    "Run one job per (workload, scheme) cell — the reference path the \
     fused replay is diffed against."
  in
  Arg.(
    value
    & vflag true
        [
          (true, info [ "fused" ] ~doc:fused_doc);
          (false, info [ "no-fused" ] ~doc:no_fused_doc);
        ])

let ensure_journal_dir = function
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ()

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids (see $(b,list)); defaults to all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let action ids epc input quick_flag jobs timeout retries keep_going journal
      resume fused =
    let settings =
      if quick_flag then Experiments.quick else settings_of ~epc ~input
    in
    ensure_journal_dir journal;
    let settings =
      {
        settings with
        Experiments.jobs;
        cell_timeout = timeout;
        retries;
        keep_going;
        journal_dir = journal;
        resume;
        fused;
      }
    in
    let ids = if ids = [] then List.map fst Experiments.all else ids in
    match Experiments.run_many ids settings with
    | [] -> ()
    | failures ->
      Printf.eprintf "%d experiment(s) failed: %s\n"
        (List.length failures)
        (String.concat ", " (List.map fst failures));
      exit 1
  in
  let term =
    Term.(
      const action $ ids_arg $ epc_arg $ input_arg $ quick_arg $ jobs_arg
      $ timeout_arg $ retries_arg $ keep_going_arg $ journal_arg $ resume_arg
      $ fused_arg)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate paper tables/figures by id")
    term

(* ---------- chaos ---------- *)

let chaos_cmd =
  let seed_arg =
    let doc = "Fault-plan seed; same seed = bit-identical matrix." in
    Arg.(
      value
      & opt int Sim.Fault_plan.bank_seed
      & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let plans_arg =
    let doc =
      "Comma-separated fault-plan names to run (default: the whole bank)."
    in
    Arg.(
      value
      & opt (list string) (Sim.Fault_plan.names ())
      & info [ "plans" ] ~docv:"NAMES" ~doc)
  in
  let workloads_arg =
    let doc = "Comma-separated workloads (default: the chaos set)." in
    Arg.(value & opt (list string) [] & info [ "workloads" ] ~docv:"NAMES" ~doc)
  in
  let action epc input quick_flag jobs seed plan_names workloads timeout
      retries keep_going journal resume fused breaker online =
    let plans =
      List.map
        (fun name ->
          match Sim.Fault_plan.find name with
          | Some p -> p
          | None ->
            Printf.eprintf "unknown fault plan %S; known plans:\n  %s\n" name
              (String.concat "\n  " (Sim.Fault_plan.names ()));
            exit 1)
        plan_names
    in
    List.iter
      (fun w -> if model_of_name w = None then unknown_workload w)
      workloads;
    ensure_journal_dir journal;
    let base = if quick_flag then Sim.Chaos.quick else Sim.Chaos.default in
    let settings =
      {
        base with
        Sim.Chaos.epc_pages = epc;
        input;
        jobs;
        seed;
        plans;
        workloads = (if workloads = [] then base.Sim.Chaos.workloads else workloads);
        cell_timeout = timeout;
        retries;
        keep_going;
        journal_dir = journal;
        resume;
        fused;
        breaker = breaker_of breaker;
        online = online_of online;
      }
    in
    let outcome =
      try Sim.Chaos.run settings
      with Experiments.Cells_failed fs ->
        Printf.eprintf "chaos: %d cell(s) failed:\n" (List.length fs);
        List.iter
          (fun (f : Sim.Job_pool.failure) ->
            Printf.eprintf "  %s: %s (%d attempt(s))\n" f.label f.reason
              f.attempts)
          fs;
        exit 1
    in
    Sim.Chaos.print_report settings outcome;
    if not (Sim.Chaos.ok outcome) then exit 1
  in
  let epc_chaos_arg =
    let doc = "Usable EPC size in 4 KiB pages." in
    Arg.(value & opt int 1024 & info [ "epc" ] ~docv:"PAGES" ~doc)
  in
  let term =
    Term.(
      const action $ epc_chaos_arg $ input_arg $ quick_arg $ jobs_arg
      $ seed_arg $ plans_arg $ workloads_arg $ timeout_arg $ retries_arg
      $ keep_going_arg $ journal_arg $ resume_arg $ fused_arg $ breaker_arg
      $ online_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the scheme matrix under a bank of named fault plans, print \
          graceful-degradation tables, and exit nonzero on any invariant \
          violation or failed cell")
    term

(* ---------- fleet ---------- *)

let fleet_cmd =
  let module Fleet = Sim.Fleet in
  let module Arbiter = Sgxsim.Load_channel.Arbiter in
  let tenants_arg =
    let doc =
      "Tenant workloads, one co-resident enclave each (repeat a name to \
       run two instances of the same workload)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let schemes_arg =
    let doc =
      "Comma-separated preloading schemes: one applied to every tenant, \
       or exactly one per tenant in tenant order.  Same grammar as \
       $(b,run --scheme)."
    in
    Arg.(value & opt (list string) [ "baseline" ] & info [ "schemes" ] ~docv:"SCHEMES" ~doc)
  in
  let mode_arg =
    let doc = "EPC mode: $(b,shared), $(b,partitioned), or $(b,both)." in
    Arg.(value & opt string "shared" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let policy_arg =
    let doc =
      "Paging-channel arbitration: $(b,fifo), $(b,fair-share) or \
       $(b,priority)."
    in
    Arg.(value & opt string "fifo" & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let priorities_arg =
    let doc =
      "Comma-separated per-tenant priority levels (0 = highest; only \
       the $(b,priority) policy reads them).  Default: all 1."
    in
    Arg.(value & opt (list int) [] & info [ "priorities" ] ~docv:"LEVELS" ~doc)
  in
  let fault_plan_arg =
    let doc = "Run under a named chaos fault plan (see $(b,chaos))." in
    Arg.(value & opt string "fault-free" & info [ "fault-plan" ] ~docv:"NAME" ~doc)
  in
  let summaries_arg =
    let doc =
      "Print only the label-prefixed per-tenant summary lines — the \
       stable surface the CI determinism diff compares."
    in
    Arg.(value & flag & info [ "summaries" ] ~doc)
  in
  let plan_arg =
    let doc = "Use a saved instrumentation plan for sip/hybrid schemes." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let action tenant_names schemes epc input mode_s policy_s priorities
      fault_plan_name jobs summaries plan_file =
    List.iter
      (fun w -> if model_of_name w = None then unknown_workload w)
      tenant_names;
    let n = List.length tenant_names in
    let scheme_strings =
      match schemes with
      | [ s ] -> List.map (fun w -> (w, s)) tenant_names
      | ss when List.length ss = n -> List.combine tenant_names ss
      | ss ->
        Printf.eprintf
          "--schemes wants 1 scheme or exactly one per tenant (%d tenants, \
           %d schemes)\n"
          n (List.length ss);
        exit 1
    in
    let priorities =
      match priorities with
      | [] -> List.map (fun _ -> 1) tenant_names
      | ps when List.length ps = n -> ps
      | ps ->
        Printf.eprintf "--priorities wants one level per tenant (%d tenants, %d levels)\n"
          n (List.length ps);
        exit 1
    in
    let modes =
      match mode_s with
      | "both" -> [ Fleet.Shared; Fleet.Partitioned ]
      | s -> (
        match Fleet.mode_of_string s with
        | Some m -> [ m ]
        | None ->
          Printf.eprintf "unknown mode %S (shared, partitioned, both)\n" s;
          exit 1)
    in
    let policy =
      match Arbiter.policy_of_string policy_s with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown policy %S (%s)\n" policy_s
          (String.concat ", " (List.map Arbiter.policy_name Arbiter.policies));
        exit 1
    in
    let fault_plan =
      match Sim.Fault_plan.find fault_plan_name with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown fault plan %S; known plans:\n  %s\n"
          fault_plan_name
          (String.concat "\n  " ("fault-free" :: Sim.Fault_plan.names ()));
        exit 1
    in
    let tenants =
      List.map2
        (fun w priority ->
          let model = Option.get (model_of_name w) in
          Fleet.tenant ~label:w ~scheme:Scheme.Baseline ~priority
            (model ~epc_pages:epc ~input))
        tenant_names priorities
    in
    let config =
      { Fleet.default_config with Fleet.epc_pages = epc; policy }
    in
    (* Scheme parsing (and any SIP plan profiling) happens per cell,
       inside the matrix worker. *)
    let scheme_for _tag label =
      parse_scheme ?plan_file ~epc ~workload:label
        (List.assoc label scheme_strings)
    in
    let cells =
      Fleet.matrix ~jobs ~config ~fault_plan
        ~input_label:(Input.to_string input) ~scheme_for ~tags:[ "fleet" ]
        ~modes tenants
    in
    List.iter
      (fun (c : Fleet.cell) ->
        if summaries then begin
          if List.length cells > 1 then
            Printf.printf "# mode=%s\n" (Fleet.mode_name c.Fleet.c_mode);
          List.iter print_endline (Fleet.summary_lines c.Fleet.c_outcome)
        end
        else begin
          Fleet.print_outcome c.Fleet.c_outcome;
          print_newline ()
        end)
      cells
  in
  let term =
    Term.(
      const action $ tenants_arg $ schemes_arg $ epc_arg $ input_arg
      $ mode_arg $ policy_arg $ priorities_arg $ fault_plan_arg $ jobs_arg
      $ summaries_arg $ plan_arg)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run several enclaves concurrently over one EPC (shared global \
          CLOCK or static partitions) and report per-tenant slowdown plus \
          the victim/aggressor interference table")
    term

(* ---------- service ---------- *)

let service_cmd =
  let module Service = Sim.Service in
  let schemes_arg =
    let doc =
      "Comma-separated preloading schemes to serve with, one warm pool \
       per scheme.  Same grammar as $(b,run --scheme)."
    in
    Arg.(
      value
      & opt (list string) [ "baseline"; "dfp-stop" ]
      & info [ "schemes" ] ~docv:"SCHEMES" ~doc)
  in
  let requests_arg =
    let doc = "Requests to dispatch (open loop)." in
    Arg.(
      value
      & opt int Service.default_config.Service.requests
      & info [ "requests" ] ~docv:"N" ~doc)
  in
  let pool_arg =
    let doc = "Warm enclave instances serving in parallel." in
    Arg.(
      value
      & opt int Service.default_config.Service.pool
      & info [ "pool" ] ~docv:"N" ~doc)
  in
  let events_arg =
    let doc = "Trace events replayed per request." in
    Arg.(
      value
      & opt int Service.default_config.Service.request_events
      & info [ "request-events" ] ~docv:"N" ~doc)
  in
  let gap_arg =
    let doc = "Mean inter-arrival gap in cycles (lower = more load)." in
    Arg.(
      value
      & opt int Service.default_config.Service.mean_gap
      & info [ "gap" ] ~docv:"CYCLES" ~doc)
  in
  let arrivals_arg =
    let doc = "Arrival process: $(b,poisson), $(b,bursty) or $(b,diurnal)." in
    Arg.(value & opt string "poisson" & info [ "arrivals" ] ~docv:"PROCESS" ~doc)
  in
  let slo_arg =
    let doc = "Latency objective in cycles; slower requests count as violations." in
    Arg.(
      value
      & opt int Service.default_config.Service.slo
      & info [ "slo" ] ~docv:"CYCLES" ~doc)
  in
  let seed_arg =
    let doc = "Arrival-generator seed; same seed = same arrivals, same table." in
    Arg.(value & opt int Service.default_config.Service.seed & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let switchless_arg =
    let doc =
      "Use switchless enclave calls: charge the mailbox notification \
       instead of EENTER+EEXIT per request."
    in
    Arg.(value & flag & info [ "switchless" ] ~doc)
  in
  let fault_plan_arg =
    let doc = "Run under a named chaos fault plan (see $(b,chaos))." in
    Arg.(value & opt string "fault-free" & info [ "fault-plan" ] ~docv:"NAME" ~doc)
  in
  let plan_arg =
    let doc = "Use a saved instrumentation plan for sip/hybrid schemes." in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-attempt latency deadline in cycles; an attempt finishing \
       later than dispatch + $(docv) fails its round (enables \
       $(b,--request-retries))."
    in
    Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"CYCLES" ~doc)
  in
  let request_retries_arg =
    let doc =
      "Retry a deadline-blown request up to $(docv) more rounds, each on \
       a different instance with exponential backoff (requires \
       $(b,--deadline)).  Distinct from $(b,--retries), which re-runs \
       failed matrix cells."
    in
    Arg.(value & opt int 0 & info [ "request-retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Base retry backoff in cycles, doubling each round." in
    Arg.(value & opt int 0 & info [ "retry-backoff" ] ~docv:"CYCLES" ~doc)
  in
  let hedge_arg =
    let doc =
      "Hedge: duplicate an attempt onto another instance once the \
       primary has been outstanding $(docv) cycles; the first completion \
       wins and the loser is cancelled."
    in
    Arg.(value & opt (some int) None & info [ "hedge" ] ~docv:"CYCLES" ~doc)
  in
  let restart_arg =
    let doc =
      "Crash–restart policy: $(b,cold) (restart with an empty EPC) or \
       $(b,rewarm) (re-request the pages the crash wiped)."
    in
    Arg.(value & opt string "cold" & info [ "restart" ] ~docv:"POLICY" ~doc)
  in
  let action workload schemes epc input requests pool events gap arrivals_s
      slo seed switchless fault_plan_name jobs plan_file deadline
      request_retries backoff hedge restart_s breaker online timeout
      cell_retries keep_going =
    let model =
      match model_of_name workload with
      | Some m -> m
      | None -> unknown_workload workload
    in
    let arrivals =
      match Service.arrival_of_string arrivals_s with
      | Ok a -> a
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    let fault_plan =
      match Sim.Fault_plan.find fault_plan_name with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown fault plan %S; known plans:\n  %s\n"
          fault_plan_name
          (String.concat "\n  " ("fault-free" :: Sim.Fault_plan.names ()));
        exit 1
    in
    let restart =
      match Sim.Runner.restart_policy_of_string restart_s with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    let resilience =
      {
        Service.deadline;
        retries = request_retries;
        retry_backoff = backoff;
        hedge_after = hedge;
        restart;
        breaker = breaker_of breaker;
        online = online_of online;
      }
    in
    let config =
      {
        Service.default_config with
        Service.epc_pages = epc;
        pool;
        requests;
        request_events = events;
        mean_gap = gap;
        arrivals;
        seed;
        slo;
        switchless;
        resilience;
      }
    in
    let trace = model ~epc_pages:epc ~input in
    (* Scheme parsing (and any SIP plan profiling) happens per cell,
       inside the matrix worker. *)
    let scheme_for tag = parse_scheme ?plan_file ~epc ~workload tag in
    let cells =
      try
        Service.matrix ~jobs ?timeout
          ?retries:(if cell_retries = 0 then None else Some cell_retries)
          ~keep_going ~config ~fault_plan
          ~input_label:(Input.to_string input) ~scheme_for ~tags:schemes trace
      with
      | Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
      | Service.Cells_failed fs ->
        Printf.eprintf "service: %d cell(s) failed:\n" (List.length fs);
        List.iter
          (fun (f : Sim.Job_pool.failure) ->
            Printf.eprintf "  %s: %s (%d attempt(s))\n" f.label f.reason
              f.attempts)
          fs;
        exit 1
    in
    Service.print_cells cells
  in
  let term =
    Term.(
      const action $ workload_arg $ schemes_arg $ epc_arg $ input_arg
      $ requests_arg $ pool_arg $ events_arg $ gap_arg $ arrivals_arg
      $ slo_arg $ seed_arg $ switchless_arg $ fault_plan_arg $ jobs_arg
      $ plan_arg $ deadline_arg $ request_retries_arg $ backoff_arg
      $ hedge_arg $ restart_arg $ breaker_arg $ online_arg $ timeout_arg
      $ retries_arg $ keep_going_arg)
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Serve seeded open-loop request traffic through a pool of warm \
          enclave instances and report per-scheme p50/p95/p99/p999 \
          request latency, throughput and SLO violations")
    term

(* ---------- list ---------- *)

let list_cmd =
  let action () =
    print_endline "workloads:";
    List.iter
      (fun (name, family) -> Printf.printf "  %-16s %s\n" name family)
      Experiments.workload_families;
    print_newline ();
    print_endline "experiments:";
    List.iter
      (fun (id, descr) -> Printf.printf "  %-14s %s\n" id descr)
      Experiments.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List workload models and experiments")
    Term.(const action $ const ())

let () =
  let doc =
    "Simulated reproduction of 'Regaining Lost Seconds: Efficient Page \
     Preloading for SGX Enclaves' (Middleware '20)"
  in
  let info = Cmd.info "sgx_preload" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; compare_cmd; profile_cmd; stats_cmd; record_cmd;
            replay_cmd; validate_cmd; export_cmd; experiment_cmd; chaos_cmd;
            fleet_cmd; service_cmd; list_cmd;
          ]))
