(* Developer calibration tool: dump baseline/DFP/SIP behaviour for each
   workload model so the model parameters can be tuned against the
   paper's reported shapes. *)

module Runner = Sim.Runner
module Scheme = Preload.Scheme
module Metrics = Sgxsim.Metrics

let epc = 2048

let pct x = Printf.sprintf "%+.1f%%" (100.0 *. x)

let profile_plan trace_of =
  let train = trace_of ~epc_pages:epc ~input:Workload.Input.Train in
  let profile =
    Preload.Sip_profiler.profile
      (Preload.Sip_profiler.default_config ~residency_pages:epc)
      train
  in
  Preload.Sip_instrumenter.plan_of_profile profile

let () =
  let names =
    match Array.to_list Sys.argv with
    | _ :: rest when rest <> [] -> rest
    | _ ->
      [
        "microbenchmark"; "bwaves"; "lbm"; "wrf"; "roms"; "mcf"; "mcf.2006";
        "deepsjeng"; "omnetpp"; "xz"; "SIFT"; "MSER"; "mixed-blood";
      ]
  in
  Printf.printf
    "%-15s %12s %8s %7s %7s %7s %7s %6s %6s %5s\n"
    "workload" "base-cycles" "fault%" "DFP" "DFPstop" "SIP" "hybrid" "points"
    "preacc" "stop?";
  List.iter
    (fun name ->
      let model =
        match Workload.Spec.by_name name with
        | Some m -> m
        | None -> (
          match Workload.Vision.by_name name with
          | Some m -> m
          | None -> failwith ("unknown workload " ^ name))
      in
      let trace = model ~epc_pages:epc ~input:(Workload.Input.Ref 0) in
      let t0 = Unix.gettimeofday () in
      let base = Runner.run ~scheme:Scheme.Baseline trace in
      let dt = Unix.gettimeofday () -. t0 in
      let dfp = Runner.run ~scheme:Scheme.dfp_default trace in
      let dfp_stop = Runner.run ~scheme:Scheme.dfp_stop trace in
      let plan = profile_plan model in
      let sip = Runner.run ~scheme:(Scheme.Sip plan) trace in
      let hybrid =
        Runner.run
          ~scheme:(Scheme.Hybrid (Preload.Dfp.with_stop Preload.Dfp.default_config, plan))
          trace
      in
      let fault_share =
        float_of_int (Metrics.fault_handling_cycles base.metrics)
        /. float_of_int base.cycles
      in
      let preacc =
        if dfp.metrics.preloads_completed = 0 then 0.0
        else
          float_of_int dfp.metrics.preload_hits
          /. float_of_int dfp.metrics.preloads_completed
      in
      Printf.printf
        "%-15s %12d %7.1f%% %7s %7s %7s %7s %6d %5.0f%% %5b (%.1fs, %d faults)\n%!"
        name base.cycles (100.0 *. fault_share)
        (pct (Runner.improvement ~baseline:base dfp))
        (pct (Runner.improvement ~baseline:base dfp_stop))
        (pct (Runner.improvement ~baseline:base sip))
        (pct (Runner.improvement ~baseline:base hybrid))
        (Preload.Sip_instrumenter.instrumentation_points plan)
        (100.0 *. preacc) dfp_stop.dfp_stopped dt
        (Metrics.total_faults base.metrics))
    names
