test/test_util.ml: Alcotest Array Float Fun Hashtbl List QCheck2 QCheck_alcotest Repro_util
