test/test_sgx.mli:
