test/test_enclave.ml: Alcotest Fun List Preload QCheck2 QCheck_alcotest Repro_util Sgxsim
