test/test_workload.ml: Alcotest Filename Fun Hashtbl List Option QCheck2 QCheck_alcotest Repro_util Seq Sys Workload
