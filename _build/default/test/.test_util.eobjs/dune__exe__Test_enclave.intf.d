test/test_enclave.mli:
