test/test_sim.ml: Alcotest Float List Option Preload Repro_util Sgxsim Sim String Workload
