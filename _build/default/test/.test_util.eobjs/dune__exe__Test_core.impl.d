test/test_core.ml: Alcotest Filename Fun Hashtbl List Option Preload Printf QCheck2 QCheck_alcotest Repro_util Sgxsim Sys Workload
