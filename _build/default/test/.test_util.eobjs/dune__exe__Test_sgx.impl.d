test/test_sgx.ml: Alcotest Array Format Hashtbl List QCheck2 QCheck_alcotest Sgxsim
