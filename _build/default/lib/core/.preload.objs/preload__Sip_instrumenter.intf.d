lib/core/sip_instrumenter.mli: Format Sip_profiler
