lib/core/plan_io.mli: Sip_instrumenter
