lib/core/scheme.ml: Dfp Printf Sip_instrumenter
