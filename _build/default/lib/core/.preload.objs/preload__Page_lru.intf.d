lib/core/page_lru.mli:
