lib/core/dfp.mli: Sgxsim Stream_predictor
