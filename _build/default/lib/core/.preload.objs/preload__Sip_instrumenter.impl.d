lib/core/sip_instrumenter.ml: Format Hashtbl List Sip_profiler
