lib/core/stream_predictor.ml: List Option Repro_util
