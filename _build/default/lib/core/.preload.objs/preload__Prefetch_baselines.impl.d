lib/core/prefetch_baselines.ml: Hashtbl List Option Page_lru Printf Sgxsim
