lib/core/sip_profiler.ml: Hashtbl List Page_lru Seq Stream_predictor Workload
