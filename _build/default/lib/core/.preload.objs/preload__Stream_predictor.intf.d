lib/core/stream_predictor.mli:
