lib/core/scheme.mli: Dfp Sip_instrumenter
