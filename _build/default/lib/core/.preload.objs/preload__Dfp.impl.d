lib/core/dfp.ml: Hashtbl List Sgxsim Stream_predictor
