lib/core/sip_profiler.mli: Hashtbl Page_lru Stream_predictor Workload
