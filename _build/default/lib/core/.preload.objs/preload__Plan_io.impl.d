lib/core/plan_io.ml: Fun List Printf Sip_instrumenter Sip_profiler String
