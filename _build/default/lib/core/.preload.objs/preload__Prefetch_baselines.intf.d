lib/core/prefetch_baselines.mli: Sgxsim
