lib/core/page_lru.ml: Hashtbl List Queue
