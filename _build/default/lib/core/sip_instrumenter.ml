type decision = {
  site : int;
  counts : Sip_profiler.site_counts;
  ratio : float;
  instrument : bool;
}

type plan = { workload : string; threshold : float; decisions : decision list }

let default_threshold = 0.05

let plan_of_profile ?(threshold = default_threshold) (profile : Sip_profiler.t) =
  let decisions =
    List.map
      (fun (site, counts) ->
        let ratio = Sip_profiler.irregular_ratio counts in
        { site; counts; ratio; instrument = ratio >= threshold })
      (Sip_profiler.sites profile)
  in
  { workload = profile.Sip_profiler.workload; threshold; decisions }

let instrumented_sites plan =
  List.filter_map
    (fun d -> if d.instrument then Some d.site else None)
    plan.decisions

let instrumentation_points plan = List.length (instrumented_sites plan)

let is_instrumented plan site =
  List.exists (fun d -> d.instrument && d.site = site) plan.decisions

let site_predicate plan =
  let set = Hashtbl.create 64 in
  List.iter (fun d -> if d.instrument then Hashtbl.replace set d.site ()) plan.decisions;
  fun site -> Hashtbl.mem set site

let empty_plan ~workload = { workload; threshold = default_threshold; decisions = [] }

let pp fmt plan =
  Format.fprintf fmt "@[<v>plan for %s (threshold %.1f%%): %d point(s)@ "
    plan.workload (100.0 *. plan.threshold)
    (instrumentation_points plan);
  List.iter
    (fun d ->
      if d.instrument then
        Format.fprintf fmt "  site %d: c1=%d c2=%d c3=%d ratio=%.1f%%@ " d.site
          d.counts.Sip_profiler.c1 d.counts.Sip_profiler.c2
          d.counts.Sip_profiler.c3 (100.0 *. d.ratio))
    plan.decisions;
  Format.fprintf fmt "@]"
