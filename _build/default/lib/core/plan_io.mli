(** Instrumentation-plan serialization.

    The paper's SIP flow hands the profiling result to the compiler as an
    artifact; this module provides the same decoupling for the simulator:
    profile once, save the plan, run the instrumented binary any number of
    times.  Line-oriented text:

    {v
    # sgx-preload plan v1
    workload <string>
    threshold <float>
    s <site> <c1> <c2> <c3> <0|1>     (one decision per line)
    v} *)

val save : Sip_instrumenter.plan -> path:string -> unit

val load : path:string -> Sip_instrumenter.plan
(** @raise Failure on a malformed file. *)
