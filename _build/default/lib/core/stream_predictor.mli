(** Algorithm 1: the multiple-stream page-fault predictor.

    A fixed-length LRU list of streams; each entry records the stream's
    tail page number ([stpn]).  On a fault with new page number [npn]:

    - if [npn] falls inside an entry's {e still-pending} preload window,
      the application skipped ahead of the loader: that preloading is
      aborted and [npn] restarts the stream (the paper's
      page(5)-while-loading-page(3) example in §4.1);
    - else if [npn] continues some entry (within [LOADLENGTH]+1 pages of
      its tail in the stream's direction — in steady state the preloaded
      pages never fault, so a live stream's next fault lands exactly
      [LOADLENGTH]+1 past the tail), the tail becomes [npn], the entry
      moves to the list head, and the following [LOADLENGTH] pages are
      predicted for preloading;
    - otherwise the least-recently-used entry is replaced by a fresh
      stream starting at [npn].

    Streams acquire a direction (ascending or descending) from their
    second sequential fault; until then both neighbours count as
    sequential. *)

type stream = {
  mutable stpn : int;  (** Stream tail page number: the last faulted page. *)
  mutable dir : int;  (** +1 ascending, -1 descending, 0 undetermined. *)
  mutable pending : int list;
      (** Pages this stream asked to preload that are believed still
          queued; used for the within-window abort check.  Maintained by
          the caller via {!set_pending}. *)
}

type reaction =
  | Extend of { stream : stream; predict : int list }
      (** Sequential hit: preload [predict] (already tail-extended). *)
  | Restart_within of { stream : stream; abort : int list }
      (** The fault landed inside [stream]'s pending window: abort those
          queued preloads, the stream restarts at the faulted page. *)
  | New_stream of { stream : stream; replaced : stream option }
      (** Irregular fault: a fresh stream was inserted; [replaced] is the
          evicted LRU entry (its pending preloads should be aborted). *)

type t

val create :
  ?detect_backward:bool -> stream_list_length:int -> load_length:int -> unit -> t
(** [stream_list_length] is the paper's tuning knob of Fig. 6 (default
    sweet spot 30); [load_length] the preload distance of Fig. 7 (default
    sweet spot 4).  [detect_backward] (default [true]) lets streams run
    descending. *)

val load_length : t -> int
val stream_list_length : t -> int

val on_fault : t -> int -> reaction
(** Feed one fault (page number only — all the OS can see). *)

val set_pending : stream -> int list -> unit

val streams : t -> stream list
(** Current entries, most recently used first (inspection/testing). *)

val reset : t -> unit
