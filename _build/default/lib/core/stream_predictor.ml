module Lru = Repro_util.Lru

type stream = { mutable stpn : int; mutable dir : int; mutable pending : int list }

type reaction =
  | Extend of { stream : stream; predict : int list }
  | Restart_within of { stream : stream; abort : int list }
  | New_stream of { stream : stream; replaced : stream option }

type t = {
  list : stream Lru.t;
  load_length : int;
  list_length : int;
  detect_backward : bool;
}

let create ?(detect_backward = true) ~stream_list_length ~load_length () =
  if stream_list_length <= 0 then
    invalid_arg "Stream_predictor.create: stream_list_length must be positive";
  if load_length <= 0 then
    invalid_arg "Stream_predictor.create: load_length must be positive";
  {
    list = Lru.create stream_list_length;
    load_length;
    list_length = stream_list_length;
    detect_backward;
  }

let load_length t = t.load_length
let stream_list_length t = t.list_length

(* Is [npn] a continuation of [s]?  In steady state the pages
   [stpn+1 .. stpn+LOADLENGTH] are preloaded and never fault, so the next
   fault of a live stream lands at [stpn + LOADLENGTH + 1]: anything in
   that window continues the stream.  (A fault {e inside} a window whose
   preloads are still pending is a skip, handled separately — the paper's
   page(5)-while-loading-page(3) abort example.)  Returns the direction
   that makes [npn] a continuation, if any. *)
let sequential_dir t s npn =
  let window = t.load_length + 1 in
  let fits dir =
    let delta = (npn - s.stpn) * dir in
    delta >= 1 && delta <= window
  in
  if s.dir <> 0 then if fits s.dir then Some s.dir else None
  else if fits 1 then Some 1
  else if t.detect_backward && fits (-1) then Some (-1)
  else None

let on_fault t npn =
  (* The pending check runs first: a fault on a page whose preload is
     still queued means the application skipped ahead of the loader. *)
  match Lru.find t.list (fun s -> List.mem npn s.pending) with
  | Some s ->
    let abort = s.pending in
    s.pending <- [];
    s.stpn <- npn;
    s.dir <- 0;
    ignore (Lru.promote t.list (fun x -> x == s));
    Restart_within { stream = s; abort }
  | None -> (
    match Lru.find t.list (fun s -> sequential_dir t s npn <> None) with
    | Some s ->
      let dir = Option.get (sequential_dir t s npn) in
      s.dir <- dir;
      s.stpn <- npn;
      ignore (Lru.promote t.list (fun x -> x == s));
      let predict =
        List.init t.load_length (fun i -> npn + (dir * (i + 1)))
        |> List.filter (fun p -> p >= 0)
      in
      Extend { stream = s; predict }
    | None ->
      let fresh = { stpn = npn; dir = 0; pending = [] } in
      let replaced = Lru.insert t.list fresh in
      New_stream { stream = fresh; replaced })

let set_pending s pages = s.pending <- pages

let streams t = Lru.to_list t.list

let reset t = Lru.clear t.list
