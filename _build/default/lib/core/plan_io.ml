let save (plan : Sip_instrumenter.plan) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# sgx-preload plan v1\n";
      Printf.fprintf oc "workload %s\n" plan.workload;
      Printf.fprintf oc "threshold %.6f\n" plan.threshold;
      List.iter
        (fun (d : Sip_instrumenter.decision) ->
          Printf.fprintf oc "s %d %d %d %d %d\n" d.site d.counts.Sip_profiler.c1
            d.counts.Sip_profiler.c2 d.counts.Sip_profiler.c3
            (if d.instrument then 1 else 0))
        plan.decisions)

let fail path line msg =
  failwith (Printf.sprintf "Plan_io.load: %s, line %d: %s" path line msg)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let read () =
        incr lineno;
        input_line ic
      in
      if read () <> "# sgx-preload plan v1" then
        fail path !lineno "unrecognised header";
      let workload = ref "" and threshold = ref 0.0 in
      let decisions = ref [] in
      (try
         while true do
           let line = read () in
           match String.split_on_char ' ' line with
           | "workload" :: rest -> workload := String.concat " " rest
           | [ "threshold"; x ] -> threshold := float_of_string x
           | [ "s"; site; c1; c2; c3; instrument ] ->
             let counts =
               {
                 Sip_profiler.c1 = int_of_string c1;
                 c2 = int_of_string c2;
                 c3 = int_of_string c3;
               }
             in
             decisions :=
               {
                 Sip_instrumenter.site = int_of_string site;
                 counts;
                 ratio = Sip_profiler.irregular_ratio counts;
                 instrument = int_of_string instrument <> 0;
               }
               :: !decisions
           | [ "" ] -> ()
           | _ -> fail path !lineno "unrecognised line"
         done
       with
      | End_of_file -> ()
      | Failure _ -> fail path !lineno "malformed field");
      {
        Sip_instrumenter.workload = !workload;
        threshold = !threshold;
        decisions = List.rev !decisions;
      })
