(** An LRU set of page numbers with O(1) amortised touch.

    The SIP profiler uses it as a cheap stand-in for "would this page be
    resident in EPC by now" when classifying profiled accesses (§4.4,
    Class 1): the most recently touched [capacity] pages are in. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val mem : t -> int -> bool

val touch : t -> int -> bool
(** Refresh (or insert) a page; returns whether it was already in the
    set.  May evict the least recently touched page. *)

val size : t -> int
(** Distinct pages currently in the set. *)

val clear : t -> unit
