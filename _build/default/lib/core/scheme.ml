type t =
  | Baseline
  | Native
  | Dfp of Dfp.config
  | Sip of Sip_instrumenter.plan
  | Hybrid of Dfp.config * Sip_instrumenter.plan
  | Next_line of int
  | Stride of int
  | Markov of int * int

let name = function
  | Baseline -> "baseline"
  | Native -> "native"
  | Dfp c -> if c.Dfp.stop_enabled then "DFP-stop" else "DFP"
  | Sip _ -> "SIP"
  | Hybrid (c, _) -> if c.Dfp.stop_enabled then "SIP+DFP-stop" else "SIP+DFP"
  | Next_line d -> Printf.sprintf "next-line(%d)" d
  | Stride d -> Printf.sprintf "stride(%d)" d
  | Markov (t, d) -> Printf.sprintf "markov(%d,%d)" t d

let dfp_default = Dfp Dfp.default_config
let dfp_stop = Dfp (Dfp.with_stop Dfp.default_config)

let uses_sip = function
  | Sip _ | Hybrid _ -> true
  | Baseline | Native | Dfp _ | Next_line _ | Stride _ | Markov _ -> false

let sip_plan = function
  | Sip plan | Hybrid (_, plan) -> Some plan
  | Baseline | Native | Dfp _ | Next_line _ | Stride _ | Markov _ -> None
