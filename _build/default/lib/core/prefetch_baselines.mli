(** Ablation baselines: the "conservative schemes used by hardware
    prefetchers" the paper contrasts DFP's predictor against (§4.1) —
    next-line and stride — lifted to EPC page preloading.

    They share DFP's transport (asynchronous preloads through the load
    channel) but replace Algorithm 1 with a simpler policy, which lets
    the benches quantify what the multiple-stream predictor itself
    contributes. *)

type t

val attach_next_line : Sgxsim.Enclave.t -> degree:int -> t
(** On every fault on page [p], queue [p+1 .. p+degree]. *)

val attach_stride : Sgxsim.Enclave.t -> degree:int -> t
(** Detect a repeated fault-to-fault delta (two consecutive equal deltas)
    and queue [degree] further pages at that stride. *)

val attach_markov : Sgxsim.Enclave.t -> table_pages:int -> degree:int -> t
(** First-order correlation prefetcher (towards the "machine learning
    based schemes" the paper points at in §4.1): remember, per faulted
    page, the pages that faulted right after it on previous occasions,
    and preload the [degree] most recent successors on a repeat fault.
    The table holds [table_pages] predecessor entries (LRU). *)

val name : t -> string
