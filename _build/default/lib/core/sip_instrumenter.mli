(** The SIP instrumentation decision (§4.4, §5.2).

    Given a profile, select the memory-instruction sites to instrument
    with a preloading notification: every site whose share of Class 3
    (irregular) accesses exceeds the threshold.  The paper sweeps this
    threshold on deepsjeng (Fig. 9) and settles on 5%.

    Class 1-dominant sites are skipped (the page is almost always in
    EPC — a check would be pure overhead) and Class 2-dominant sites are
    left to DFP when the schemes are combined. *)

type decision = {
  site : int;
  counts : Sip_profiler.site_counts;
  ratio : float;  (** Class 3 share of the site's profiled accesses. *)
  instrument : bool;
}

type plan = {
  workload : string;
  threshold : float;
  decisions : decision list;  (** Sorted by site id. *)
}

val default_threshold : float
(** The paper's 5%. *)

val plan_of_profile : ?threshold:float -> Sip_profiler.t -> plan

val instrumented_sites : plan -> int list
(** Sites that get a notification, ascending. *)

val instrumentation_points : plan -> int
(** Number of instrumented sites — the Table 2 statistic. *)

val is_instrumented : plan -> int -> bool
(** Membership by list scan; fine for occasional queries. *)

val site_predicate : plan -> int -> bool
(** Build an O(1) membership test (hash-backed); build it once per run
    and call it per access. *)

val empty_plan : workload:string -> plan
(** No instrumentation at all (what SIP produces when profiling finds
    only regular accesses, e.g. lbm / SIFT / the microbenchmark). *)

val pp : Format.formatter -> plan -> unit
