(* Classic lazy-deletion LRU: a FIFO of (page, stamp) plus a table with
   each page's freshest stamp; stale FIFO entries are skipped at eviction
   time. *)

type t = {
  capacity : int;
  stamps : (int, int) Hashtbl.t;
  queue : (int * int) Queue.t;
  mutable clock : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Page_lru.create: capacity must be positive";
  { capacity; stamps = Hashtbl.create (2 * capacity); queue = Queue.create (); clock = 0 }

let capacity t = t.capacity

let mem t page = Hashtbl.mem t.stamps page

let evict_one t =
  let rec pop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (page, stamp) -> (
      match Hashtbl.find_opt t.stamps page with
      | Some fresh when fresh = stamp -> Hashtbl.remove t.stamps page
      | Some _ | None -> pop () (* stale entry *))
  in
  pop ()

let touch t page =
  let was_in = Hashtbl.mem t.stamps page in
  t.clock <- t.clock + 1;
  Hashtbl.replace t.stamps page t.clock;
  Queue.add (page, t.clock) t.queue;
  if not was_in then
    while Hashtbl.length t.stamps > t.capacity do
      evict_one t
    done;
  (* Bound the queue against pathological re-touch storms. *)
  if Queue.length t.queue > 8 * t.capacity then begin
    let entries = Queue.to_seq t.queue |> List.of_seq in
    Queue.clear t.queue;
    List.iter
      (fun (p, s) ->
        match Hashtbl.find_opt t.stamps p with
        | Some fresh when fresh = s -> Queue.add (p, s) t.queue
        | Some _ | None -> ())
      entries
  end;
  was_in

let size t = Hashtbl.length t.stamps

let clear t =
  Hashtbl.reset t.stamps;
  Queue.clear t.queue;
  t.clock <- 0
