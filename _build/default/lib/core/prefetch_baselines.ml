module Enclave = Sgxsim.Enclave

type t = { name : string }

let attach_next_line enclave ~degree =
  if degree <= 0 then invalid_arg "attach_next_line: degree must be positive";
  Enclave.set_on_fault enclave (fun enc (ctx : Enclave.fault_ctx) ->
      let now = ctx.handled_at in
      for i = 1 to degree do
        ignore (Enclave.request_preload enc ~now (ctx.fault_vpage + i))
      done);
  { name = Printf.sprintf "next-line(%d)" degree }

let attach_stride enclave ~degree =
  if degree <= 0 then invalid_arg "attach_stride: degree must be positive";
  let last_page = ref None in
  let last_delta = ref None in
  Enclave.set_on_fault enclave (fun enc (ctx : Enclave.fault_ctx) ->
      let now = ctx.handled_at in
      let page = ctx.fault_vpage in
      (match (!last_page, !last_delta) with
      | Some prev, Some delta when page - prev = delta && delta <> 0 ->
        for i = 1 to degree do
          let target = page + (delta * i) in
          if target >= 0 && target < Enclave.elrange_pages enc then
            ignore (Enclave.request_preload enc ~now target)
        done
      | _ -> ());
      (match !last_page with
      | Some prev -> last_delta := Some (page - prev)
      | None -> ());
      last_page := Some page);
  { name = Printf.sprintf "stride(%d)" degree }

let attach_markov enclave ~table_pages ~degree =
  if degree <= 0 then invalid_arg "attach_markov: degree must be positive";
  if table_pages <= 0 then invalid_arg "attach_markov: table_pages must be positive";
  (* page -> most-recent-first successor list (bounded by [degree]);
     entries tracked in an LRU so the table stays bounded. *)
  let successors : (int, int list) Hashtbl.t = Hashtbl.create (2 * table_pages) in
  let recency = Page_lru.create ~capacity:table_pages in
  let last_fault = ref None in
  Enclave.set_on_fault enclave (fun enc (ctx : Enclave.fault_ctx) ->
      let now = ctx.handled_at in
      let page = ctx.fault_vpage in
      (* Learn: the previous fault is followed by this one. *)
      (match !last_fault with
      | Some prev ->
        let olds = Option.value ~default:[] (Hashtbl.find_opt successors prev) in
        let news = page :: List.filter (fun p -> p <> page) olds in
        let news = List.filteri (fun i _ -> i < degree) news in
        ignore (Page_lru.touch recency prev);
        Hashtbl.replace successors prev news;
        (* Entries evicted from the recency set keep their successor
           lists until this amortised prune; the table stays O(size). *)
        if Hashtbl.length successors > 2 * table_pages then begin
          let dead =
            Hashtbl.fold
              (fun key _ acc ->
                if Page_lru.mem recency key then acc else key :: acc)
              successors []
          in
          List.iter (Hashtbl.remove successors) dead
        end
      | None -> ());
      last_fault := Some page;
      (* Predict: replay this page's remembered successors. *)
      match Hashtbl.find_opt successors page with
      | Some known ->
        List.iter (fun p -> ignore (Enclave.request_preload enc ~now p)) known
      | None -> ());
  { name = Printf.sprintf "markov(%d,%d)" table_pages degree }

let name t = t.name
