(** The preloading schemes under evaluation.

    [Baseline] is the paper's un-optimized enclave execution; [Native] the
    same program outside SGX (only the §1 slowdown experiment uses it);
    [Dfp]/[Sip]/[Hybrid] are the paper's contributions; the two prefetcher
    variants are ablation baselines. *)

type t =
  | Baseline
  | Native
  | Dfp of Dfp.config
  | Sip of Sip_instrumenter.plan
  | Hybrid of Dfp.config * Sip_instrumenter.plan
  | Next_line of int  (** degree *)
  | Stride of int  (** degree *)
  | Markov of int * int  (** (table size in predecessor entries, degree) *)

val name : t -> string

val dfp_default : t
(** DFP with the paper's defaults (no stop valve). *)

val dfp_stop : t
(** DFP with the §4.2 safety valve — the Fig. 8 "DFP-stop" series. *)

val uses_sip : t -> bool
(** Whether the scheme consults an instrumentation plan at run time. *)

val sip_plan : t -> Sip_instrumenter.plan option
