let scale input n =
  max 1 (int_of_float (Input.size_factor input *. float_of_int n))

let frac epc r = max 1 (int_of_float (float_of_int epc *. r))

let mt_scan ~threads ~epc_pages ~input =
  if threads <= 0 then invalid_arg "Parallel_apps.mt_scan: threads must be positive";
  let region = frac epc_pages 0.75 in
  let noise_base = threads * region in
  let noise_pages = 3 * epc_pages in
  let worker i =
    let scan =
      Pattern.sequential ~site:(2 * i) ~base:(i * region) ~pages:region
        ~events_per_page:4 ~compute:22_000 ~jitter:0.15
    in
    (* Irregular probes into the shared pool: each one opens a dead-end
       stream entry.  With [threads] workers each interleaving two probes
       per scan event, more new streams arrive between two faults of any
       one scan than a 30-entry shared list can hold — only per-thread
       lists keep the scans alive. *)
    let probes =
      Pattern.uniform_random ~site:(2 * i + 1) ~base:noise_base
        ~pages:noise_pages ~events:(scale input (region * 8)) ~compute:9_000
        ~jitter:0.3
    in
    (i, Pattern.weighted_interleave [ (1, scan); (2, probes) ])
  in
  let pattern = Pattern.parallel (List.init threads worker) in
  let sites =
    List.concat_map
      (fun i ->
        [
          (2 * i, Printf.sprintf "t%d_scan" i);
          ((2 * i) + 1, Printf.sprintf "t%d_probe" i);
        ])
      (List.init threads Fun.id)
  in
  Trace.make
    ~name:(Printf.sprintf "mt-scan(%d)" threads)
    ~elrange_pages:(noise_base + noise_pages)
    ~footprint_pages:(noise_base + noise_pages)
    ~seed:(Input.seed_of input ~base:301)
    ~sites pattern

let mt_zipf ~threads ~epc_pages ~input =
  if threads <= 0 then invalid_arg "Parallel_apps.mt_zipf: threads must be positive";
  let hot = frac epc_pages 0.5 in
  let scratch = frac epc_pages 0.4 in
  let worker i =
    let shared =
      Pattern.zipf ~site:(2 * i) ~base:0 ~pages:hot
        ~events:(scale input 6_000) ~s:1.2 ~compute:15_000 ~jitter:0.3
    in
    let private_scan =
      Pattern.sequential ~site:(2 * i + 1) ~base:(hot + (i * scratch))
        ~pages:scratch ~events_per_page:4 ~compute:18_000 ~jitter:0.2
    in
    (i, Pattern.weighted_interleave [ (2, shared); (1, private_scan) ])
  in
  let pattern = Pattern.parallel (List.init threads worker) in
  let sites =
    List.concat_map
      (fun i ->
        [
          (2 * i, Printf.sprintf "t%d_shared" i);
          ((2 * i) + 1, Printf.sprintf "t%d_scratch" i);
        ])
      (List.init threads Fun.id)
  in
  Trace.make
    ~name:(Printf.sprintf "mt-zipf(%d)" threads)
    ~elrange_pages:(hot + (threads * scratch))
    ~footprint_pages:(hot + (threads * scratch))
    ~seed:(Input.seed_of input ~base:302)
    ~sites pattern

let all = [ ("mt-scan", mt_scan ~threads:8); ("mt-zipf", mt_zipf ~threads:8) ]

let by_name name =
  List.find_map (fun (n, m) -> if n = name then Some m else None) all
