(** Synthetic page-level models of the paper's benchmark programs.

    Table 1 of the paper classifies its SPEC CPU2017 selection (plus
    mcf from SPEC CPU2006 and a 1 GB-scan microbenchmark) into three
    classes: small working set; large working set with irregular access;
    large working set with regular access.  Each model below reproduces
    the corresponding page-level behaviour — the only thing the paper's
    schemes can observe — with working-set sizes expressed as multiples of
    the EPC so the fault pressure scales with the simulated EPC size.

    Site structure (how many distinct memory instructions exhibit which
    behaviour) is modelled explicitly because SIP instruments per site;
    the per-benchmark site counts are chosen so the Table 2
    instrumentation-point counts come out in the right neighbourhood. *)

type category = Small_working_set | Large_irregular | Large_regular

val category_name : category -> string

type model = epc_pages:int -> input:Input.t -> Trace.t

(** {1 Microbenchmark and SPEC CPU2017 models} *)

val microbenchmark : model
(** §1/§5: sequential scan of a region ~8x the EPC (stand-in for the 1 GB
    loop against a 96 MB EPC). *)

val bwaves : model
(** Fortran CFD; several concurrently advancing sequential streams
    (Fig. 3a). *)

val lbm : model
(** Lattice-Boltzmann; alternating whole-array sweeps (Fig. 3c). *)

val wrf : model
(** Weather model; phased sweeps over many arrays, one of them strided. *)

val roms : model
(** Ocean model; short sequential bursts at scattered positions — opens
    streams that die immediately, DFP's worst case (Fig. 8). *)

val mcf : model
(** CPU2017 route planning; many sites mixing hot (Class 1) and irregular
    (Class 3) accesses with few Class 2 — the SIP "wash" of §5.2. *)

val mcf_2006 : model
(** CPU2006 variant: the irregular accesses are concentrated in separable
    sites, so SIP instrumentation pays off (+4.9% in the paper). *)

val deepsjeng : model
(** Chess; transposition-table probes — scattered accesses from a
    moderate number of distinct sites (Fig. 3b). *)

val omnetpp : model
(** Discrete-event simulation; heap pointer chasing.  Excluded from SIP
    experiments (the paper's instrumentation tool could not support it). *)

val xz : model
(** Compression; a sequential input scan interleaved with random match
    probes inside a dictionary window. *)

val cactuBSSN : model
val imagick : model
val leela : model
val nab : model
val exchange2 : model

(** {1 Registry} *)

val all : (string * category * model) list
(** Every model above, keyed by the paper's benchmark name. *)

val by_name : string -> model option

val category_of : string -> category option

val large_working_set : string list
(** The benchmarks the paper's Fig. 7/Fig. 8 sweeps cover (working set
    exceeding the EPC). *)

val sip_supported : string -> bool
(** Whether the benchmark appears in the paper's SIP experiments: C/C++
    only (bwaves, roms, wrf are Fortran) and omnetpp is excluded by a tool
    limitation (§5.2). *)
