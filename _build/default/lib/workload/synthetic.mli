(** Purpose-built synthetic workloads outside the paper's benchmark list.

    - {!oram}: §3.1 points out that memory-protection layers like ORAM
      randomise the page-access sequence, so "the same program" has a
      different pattern every run — the adversarial case for any
      history-based predictor.  The model issues uniformly random page
      accesses whose sequence differs per input while keeping footprint
      and volume fixed.
    - {!adversarial_streams}: the theoretical worst case for Algorithm 1 —
      every fault pair looks sequential, no third page ever follows.
    - {!best_case}: one infinite stream with ample compute, the
      theoretical best case (DFP converges to 1 fault per
      [LOADLENGTH]+1 pages). *)

val oram : Spec.model
val adversarial_streams : Spec.model
val best_case : Spec.model

val all : (string * Spec.model) list
val by_name : string -> Spec.model option
