let scale input n =
  max 1 (int_of_float (Input.size_factor input *. float_of_int n))

let oram ~epc_pages ~input =
  (* Every access goes to a uniformly random page of a 3x-EPC pool: the
     page-level view of an ORAM-protected application.  Different inputs
     (seeds) give entirely different sequences, as §3.1 warns. *)
  let pool = 3 * epc_pages in
  Trace.make ~name:"oram" ~elrange_pages:pool ~footprint_pages:pool
    ~seed:(Input.seed_of input ~base:401)
    ~sites:[ (0, "oram_access") ]
    (Pattern.uniform_random ~site:0 ~base:0 ~pages:pool
       ~events:(scale input 60_000) ~compute:8_000 ~jitter:0.2)

let adversarial_streams ~epc_pages ~input =
  (* Pairs of adjacent pages at random positions, never a third: every
     pair opens a stream whose predictions are all wasted. *)
  let pool = 3 * epc_pages in
  Trace.make ~name:"adversarial-streams" ~elrange_pages:pool
    ~footprint_pages:pool
    ~seed:(Input.seed_of input ~base:402)
    ~sites:[ (0, "pair_walk") ]
    (Pattern.bursty ~site:0 ~base:0 ~pages:pool ~events:(scale input 50_000)
       ~run_min:2 ~run_max:2 ~events_per_page:1 ~compute:2_000 ~jitter:0.1)

let best_case ~epc_pages ~input =
  (* One long scan with compute gaps larger than the load time: DFP's
     steady state of 1 fault per LOADLENGTH+1 pages. *)
  let pages = 6 * epc_pages in
  Trace.make ~name:"best-case" ~elrange_pages:pages ~footprint_pages:pages
    ~seed:(Input.seed_of input ~base:403)
    ~sites:[ (0, "long_scan") ]
    (Pattern.sequential ~site:0 ~base:0 ~pages
       ~events_per_page:(max 1 (scale input 2))
       ~compute:50_000 ~jitter:0.0)

let all =
  [
    ("oram", oram);
    ("adversarial-streams", adversarial_streams);
    ("best-case", best_case);
  ]

let by_name name =
  List.find_map (fun (n, m) -> if n = name then Some m else None) all
