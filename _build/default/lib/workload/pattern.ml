module Prng = Repro_util.Prng

type t = Prng.t -> Access.t Seq.t

let run t prng = t prng

let draw_compute prng ~compute ~jitter =
  if jitter <= 0.0 || compute = 0 then compute
  else begin
    let spread = int_of_float (float_of_int compute *. jitter) in
    if spread = 0 then compute
    else max 0 (Prng.int_in prng (compute - spread) (compute + spread))
  end

let event prng ~site ~vpage ~compute ~jitter =
  Access.make ~site ~vpage ~compute:(draw_compute prng ~compute ~jitter) ()

let sequential ~site ~base ~pages ~events_per_page ~compute ~jitter =
  if pages < 0 || events_per_page <= 0 then
    invalid_arg "Pattern.sequential: bad sizes";
  fun prng ->
    Seq.unfold
      (fun (p, k) ->
        if p >= pages then None
        else begin
          let acc = event prng ~site ~vpage:(base + p) ~compute ~jitter in
          let next = if k + 1 >= events_per_page then (p + 1, 0) else (p, k + 1) in
          Some (acc, next)
        end)
      (0, 0)

let sequential_desc ~site ~base ~pages ~events_per_page ~compute ~jitter =
  if pages < 0 || events_per_page <= 0 then
    invalid_arg "Pattern.sequential_desc: bad sizes";
  fun prng ->
    Seq.unfold
      (fun (p, k) ->
        if p < 0 then None
        else begin
          let acc = event prng ~site ~vpage:(base + p) ~compute ~jitter in
          let next = if k + 1 >= events_per_page then (p - 1, 0) else (p, k + 1) in
          Some (acc, next)
        end)
      (pages - 1, 0)

let strided ~site ~base ~pages ~stride ~events_per_page ~compute ~jitter =
  if pages < 0 || stride <= 0 || events_per_page <= 0 then
    invalid_arg "Pattern.strided: bad sizes";
  fun prng ->
    (* Visit base+start, base+start+stride, ... for start = 0..stride-1:
       every page exactly once, consecutive accesses [stride] apart. *)
    Seq.unfold
      (fun (start, p, k) ->
        if start >= stride then None
        else begin
          let acc = event prng ~site ~vpage:(base + p) ~compute ~jitter in
          let next =
            if k + 1 < events_per_page then (start, p, k + 1)
            else if p + stride < pages then (start, p + stride, 0)
            else (start + 1, start + 1, 0)
          in
          (* Skip empty sub-sweeps at the tail. *)
          let rec settle (start, p, k) =
            if start < stride && p >= pages then settle (start + 1, start + 1, 0)
            else (start, p, k)
          in
          Some (acc, settle next)
        end)
      (0, 0, 0)

let multi_stream ~site ~streams ~events_per_page ~compute ~jitter =
  if streams = [] then invalid_arg "Pattern.multi_stream: no streams";
  if events_per_page <= 0 then invalid_arg "Pattern.multi_stream: bad events_per_page";
  fun prng ->
    (* Mutable cursors; the stream is single-consumption by contract. *)
    let cursors =
      Array.of_list
        (List.map (fun (base, pages) -> ref (base, base + pages, 0)) streams)
    in
    let alive () =
      Array.to_list cursors
      |> List.filteri (fun _ c ->
             let pos, limit, _ = !c in
             pos < limit)
      |> List.length
    in
    let rec next () =
      if alive () = 0 then Seq.Nil
      else begin
        let i = Prng.int prng (Array.length cursors) in
        let pos, limit, k = !(cursors.(i)) in
        if pos >= limit then next ()
        else begin
          let acc = event prng ~site ~vpage:pos ~compute ~jitter in
          cursors.(i) :=
            (if k + 1 >= events_per_page then (pos + 1, limit, 0)
             else (pos, limit, k + 1));
          Seq.Cons (acc, next)
        end
      end
    in
    next

let uniform_random ~site ~base ~pages ~events ~compute ~jitter =
  if pages <= 0 || events < 0 then invalid_arg "Pattern.uniform_random: bad sizes";
  fun prng ->
    Seq.unfold
      (fun n ->
        if n >= events then None
        else begin
          let vpage = base + Prng.int prng pages in
          Some (event prng ~site ~vpage ~compute ~jitter, n + 1)
        end)
      0

let zipf ~site ~base ~pages ~events ~s ~compute ~jitter =
  if pages <= 0 || events < 0 then invalid_arg "Pattern.zipf: bad sizes";
  fun prng ->
    Seq.unfold
      (fun n ->
        if n >= events then None
        else begin
          let vpage = base + Prng.zipf prng ~n:pages ~s in
          Some (event prng ~site ~vpage ~compute ~jitter, n + 1)
        end)
      0

let pointer_chase ~site ~base ~pages ~events ~locality ~compute ~jitter =
  if pages <= 0 || events < 0 then invalid_arg "Pattern.pointer_chase: bad sizes";
  fun prng ->
    Seq.unfold
      (fun (current, n) ->
        if n >= events then None
        else begin
          let vpage =
            if Prng.chance prng locality then begin
              let step = Prng.int_in prng (-2) 2 in
              let p = current + step in
              if p < 0 then 0 else if p >= pages then pages - 1 else p
            end
            else Prng.int prng pages
          in
          Some (event prng ~site ~vpage:(base + vpage) ~compute ~jitter, (vpage, n + 1))
        end)
      (Prng.int prng pages, 0)

let bursty ~site ~base ~pages ~events ~run_min ~run_max ~events_per_page ~compute
    ~jitter =
  if pages <= 0 || events < 0 then invalid_arg "Pattern.bursty: bad sizes";
  if run_min <= 0 || run_max < run_min then invalid_arg "Pattern.bursty: bad runs";
  if events_per_page <= 0 then invalid_arg "Pattern.bursty: bad events_per_page";
  fun prng ->
    (* State: (start, run_len, offset_in_run, touches_on_page, emitted). *)
    let fresh_run () =
      let run = Prng.int_in prng run_min run_max in
      let start = Prng.int prng (max 1 (pages - run)) in
      (start, run)
    in
    Seq.unfold
      (fun (start, run, off, k, n) ->
        if n >= events then None
        else begin
          let acc = event prng ~site ~vpage:(base + start + off) ~compute ~jitter in
          let state =
            if k + 1 < events_per_page then (start, run, off, k + 1, n + 1)
            else if off + 1 < run then (start, run, off + 1, 0, n + 1)
            else begin
              let start', run' = fresh_run () in
              (start', run', 0, 0, n + 1)
            end
          in
          Some (acc, state)
        end)
      (let start, run = fresh_run () in
       (start, run, 0, 0, 0))

let mixed_site ~site ~hot_base ~hot_pages ~cold_base ~cold_pages ~events
    ~irregular_ratio ~compute ~jitter =
  if hot_pages <= 0 || cold_pages <= 0 || events < 0 then
    invalid_arg "Pattern.mixed_site: bad sizes";
  fun prng ->
    Seq.unfold
      (fun n ->
        if n >= events then None
        else begin
          let vpage =
            if Prng.chance prng irregular_ratio then cold_base + Prng.int prng cold_pages
            else hot_base + Prng.zipf prng ~n:hot_pages ~s:1.1
          in
          Some (event prng ~site ~vpage ~compute ~jitter, n + 1)
        end)
      0

let of_events events : t = fun _prng -> List.to_seq events

let empty : t = fun _ -> Seq.empty

let seq_list ts : t =
 fun prng ->
  let rec chain = function
    | [] -> Seq.empty
    | t :: rest -> Seq.append (t prng) (fun () -> chain rest ())
  in
  chain ts

let weighted_interleave weighted : t =
  if weighted = [] then empty
  else fun prng ->
    let dispensers =
      Array.of_list
        (List.map (fun (w, t) -> (max 1 w, Seq.to_dispenser (t prng))) weighted)
    in
    let alive = Array.make (Array.length dispensers) true in
    let total_weight () =
      let sum = ref 0 in
      Array.iteri (fun i (w, _) -> if alive.(i) then sum := !sum + w) dispensers;
      !sum
    in
    let pick () =
      let total = total_weight () in
      if total = 0 then None
      else begin
        let target = Prng.int prng total in
        let chosen = ref (-1) in
        let acc = ref 0 in
        Array.iteri
          (fun i (w, _) ->
            if alive.(i) && !chosen = -1 then begin
              acc := !acc + w;
              if target < !acc then chosen := i
            end)
          dispensers;
        Some !chosen
      end
    in
    let rec next () =
      match pick () with
      | None -> Seq.Nil
      | Some i -> (
        let _, dispenser = dispensers.(i) in
        match dispenser () with
        | Some acc -> Seq.Cons (acc, next)
        | None ->
          alive.(i) <- false;
          next ())
    in
    next

let interleave ts = weighted_interleave (List.map (fun t -> (1, t)) ts)

let repeat n t : t =
  if n < 0 then invalid_arg "Pattern.repeat: negative count";
  seq_list (List.init n (fun _ -> t))

let take n t : t =
 fun prng -> Seq.take n (t prng)

let on_thread thread t : t =
  if thread < 0 then invalid_arg "Pattern.on_thread: negative thread";
  fun prng -> Seq.map (fun (a : Access.t) -> { a with thread }) (t prng)

let parallel threads =
  interleave (List.map (fun (thread, t) -> on_thread thread t) threads)
