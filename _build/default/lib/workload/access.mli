(** One page-granular memory event of a simulated application.

    The paper's schemes observe nothing finer than a page number (SGX
    clears the low 12 bits of faulting addresses) plus, for SIP, the
    identity of the source construct that issued the access — so this is
    the entire information content of a workload event. *)

type t = {
  site : int;
      (** Identifier of the memory instruction / source line issuing the
          access.  SIP classifies and instruments at site granularity
          (§4.4); DFP never sees it. *)
  vpage : int;  (** Virtual page touched. *)
  compute : int;
      (** Application compute cycles preceding this access — the time DFP
          can hide a preload behind. *)
  thread : int;
      (** Issuing thread.  Algorithm 1 keeps one stream list per faulting
          thread ([find_stream_list(ID)]); single-threaded workloads use
          thread 0. *)
}

val make : site:int -> vpage:int -> compute:int -> ?thread:int -> unit -> t
(** @raise Invalid_argument on a negative page, compute, or thread. *)

val pp : Format.formatter -> t -> unit
