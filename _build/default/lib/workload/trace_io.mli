(** Trace serialization.

    The paper's PGO flow is artifact-based: a profiling run writes traces
    and the compiler reads them back (§3.2).  This module provides the
    same round trip for workload traces — a recorded trace can be saved
    to a file and replayed without regenerating it, and inspected with
    ordinary text tools.  (Instrumentation plans have their own round
    trip in the core library's [Plan_io].)

    The format is line-oriented text:

    {v
    # sgx-preload trace v1
    name <string>
    elrange <pages>
    footprint <pages>
    site <id> <label>          (zero or more)
    a <site> <vpage> <compute> <thread>   (one access per line)
    v} *)

val save_trace : Trace.t -> path:string -> unit
(** Materialise the trace's events into [path].  The file replays the
    exact event stream (the generator is not stored). *)

val load_trace : path:string -> Trace.t
(** Read a trace saved by {!save_trace}.  The returned trace replays the
    recorded events verbatim (its stored seed is irrelevant).
    @raise Failure on a malformed file. *)
