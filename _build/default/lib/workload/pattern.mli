(** Composable page-access pattern generators.

    Every synthetic benchmark model is assembled from these blueprints.
    A pattern, once given a PRNG, yields a lazy stream of {!Access.t}
    events; the stream draws from the PRNG as it is consumed, so a stream
    must be consumed at most once (build a fresh one from the same seed to
    replay — {!Trace} does exactly that).

    The leaf constructors mirror the memory behaviours the paper observes
    at page level (Fig. 3 and §4.4): sequential and strided sweeps,
    interleaved multi-stream scans, uniform/zipf randomness, pointer
    chasing, and the "same instruction mixes Class 1 and Class 3
    accesses" behaviour that makes mcf a wash for SIP (§5.2). *)

type t

val run : t -> Repro_util.Prng.t -> Access.t Seq.t
(** Instantiate the pattern.  Single-consumption stream. *)

(** {1 Leaves}

    All leaves take [site] (the issuing instruction's identity), a mean
    [compute] cycle count preceding each access, and a relative [jitter]
    ([0.] = constant, [0.3] = ±30% uniform). *)

val sequential :
  site:int -> base:int -> pages:int -> events_per_page:int -> compute:int ->
  jitter:float -> t
(** Ascending page-by-page sweep of [\[base, base+pages)], touching each
    page [events_per_page] times before moving on. *)

val sequential_desc :
  site:int -> base:int -> pages:int -> events_per_page:int -> compute:int ->
  jitter:float -> t
(** Descending sweep from [base+pages-1] down to [base]; exercises the
    predictor's backward-stream detection. *)

val strided :
  site:int -> base:int -> pages:int -> stride:int -> events_per_page:int ->
  compute:int -> jitter:float -> t
(** Column-major sweep: consecutive accesses are [stride] pages apart
    ([stride >= 2] defeats next-page stream detection — the roms/wrf
    trap for DFP). *)

val multi_stream :
  site:int -> streams:(int * int) list -> events_per_page:int -> compute:int ->
  jitter:float -> t
(** Several concurrent ascending sweeps ([(base, pages)] each), randomly
    interleaved page-by-page — the bwaves shape; exercises the
    multiple-stream predictor's LRU list. *)

val uniform_random :
  site:int -> base:int -> pages:int -> events:int -> compute:int ->
  jitter:float -> t

val zipf :
  site:int -> base:int -> pages:int -> events:int -> s:float -> compute:int ->
  jitter:float -> t
(** Skewed random accesses; larger [s] concentrates on a hot head. *)

val pointer_chase :
  site:int -> base:int -> pages:int -> events:int -> locality:float ->
  compute:int -> jitter:float -> t
(** Random walk: with probability [locality] the next access stays within
    ±2 pages of the current one, otherwise it jumps uniformly — the
    deepsjeng/omnetpp shape. *)

val bursty :
  site:int -> base:int -> pages:int -> events:int -> run_min:int -> run_max:int ->
  events_per_page:int -> compute:int -> jitter:float -> t
(** Short sequential runs ([run_min..run_max] consecutive pages) starting
    at uniformly random positions.  Each adjacent-page fault pair looks
    like the start of a stream, so DFP keeps opening streams that die
    immediately — the misprediction generator behind the roms/deepsjeng
    pathology of Fig. 8. *)

val mixed_site :
  site:int -> hot_base:int -> hot_pages:int -> cold_base:int -> cold_pages:int ->
  events:int -> irregular_ratio:float -> compute:int -> jitter:float -> t
(** A single site that issues mostly hot-set (Class 1) accesses but with
    probability [irregular_ratio] touches a cold page (Class 3) — the mcf
    dilemma of §5.2. *)

(** {1 Combinators} *)

val seq_list : t list -> t
(** Run the patterns one after another (program phases). *)

val interleave : t list -> t
(** Random merge: each step draws the next event from a uniformly chosen
    still-alive sub-pattern. *)

val weighted_interleave : (int * t) list -> t
(** Random merge with relative weights. *)

val repeat : int -> t -> t
(** The same blueprint [n] times in sequence (fresh draws each round). *)

val take : int -> t -> t
(** At most the first [n] events. *)

val on_thread : int -> t -> t
(** Stamp every event of the sub-pattern with a thread id (leaves emit
    thread 0 by default). *)

val parallel : (int * t) list -> t
(** [(thread, pattern)] pairs randomly merged — a multi-threaded enclave
    whose threads each run their own pattern.  Equivalent to
    [interleave] of [on_thread]-stamped sub-patterns. *)

val of_events : Access.t list -> t
(** A pattern that replays a fixed event list (used when loading recorded
    traces); draws nothing from the PRNG. *)

val empty : t
