type t = Train | Ref of int

let seed_of t ~base =
  match t with
  | Train -> (base * 31) + 17
  | Ref i -> (base * 131) + (1009 * (i + 1))

let size_factor = function
  | Train -> 0.45
  | Ref i -> 1.0 +. (0.06 *. float_of_int (i mod 3))

let to_string = function
  | Train -> "train"
  | Ref i -> Printf.sprintf "ref%d" i

let equal a b =
  match (a, b) with
  | Train, Train -> true
  | Ref i, Ref j -> i = j
  | Train, Ref _ | Ref _, Train -> false
