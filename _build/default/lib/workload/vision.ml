let scale input n =
  max 1 (int_of_float (Input.size_factor input *. float_of_int n))

let frac epc r = max 1 (int_of_float (float_of_int epc *. r))

let sift ~epc_pages ~input =
  (* Feature extraction: load the image, then build and sweep a Gaussian
     pyramid — level after level of sequential passes with heavy
     per-page convolution compute.  Everything is regular, so SIP finds
     nothing to instrument and DFP streams run long. *)
  let image = 2 * epc_pages in
  let load =
    Pattern.sequential ~site:0 ~base:0 ~pages:image ~events_per_page:5
      ~compute:40_000 ~jitter:0.1
  in
  let levels = [ (1.0, 1); (0.5, 2); (0.25, 3); (0.125, 4) ] in
  let base_of_level l = image + (image * 2 * (l - 1) / 8) in
  let pyramid =
    List.map
      (fun (ratio, site) ->
        Pattern.sequential ~site ~base:(base_of_level site)
          ~pages:(max 1 (int_of_float (float_of_int image *. ratio /. 2.)))
          ~events_per_page:8 ~compute:74_000 ~jitter:0.2)
      levels
  in
  let keypoints =
    Pattern.zipf ~site:5 ~base:0 ~pages:(frac epc_pages 0.3)
      ~events:(scale input 15_000) ~s:1.2 ~compute:20_000 ~jitter:0.3
  in
  let pattern = Pattern.seq_list ((load :: pyramid) @ [ keypoints ]) in
  let footprint = base_of_level 4 + (image / 16) + 1 in
  Trace.make ~name:"SIFT" ~elrange_pages:footprint ~footprint_pages:footprint
    ~seed:(Input.seed_of input ~base:201)
    ~sites:
      [
        (0, "image_load"); (1, "pyramid_l1"); (2, "pyramid_l2");
        (3, "pyramid_l3"); (4, "pyramid_l4"); (5, "keypoint_refine");
      ]
    (Pattern.repeat (max 1 (scale input 1)) pattern)

let mser ~epc_pages ~input =
  (* Blob detection: a short image pass, then union-find component
     merging — pointer chasing over pixels and component records from
     many distinct source sites. *)
  let image = frac epc_pages 1.5 in
  let comp_base = image in
  let comp_pages = frac epc_pages 1.2 in
  let load =
    Pattern.sequential ~site:0 ~base:0 ~pages:image ~events_per_page:3
      ~compute:12_000 ~jitter:0.1
  in
  let n_union = 54 in
  let union_sites =
    List.init n_union (fun i ->
        ( 2,
          Pattern.uniform_random ~site:(1 + i) ~base:comp_base ~pages:comp_pages
            ~events:(scale input 1_000) ~compute:60_000 ~jitter:0.3 ))
  in
  let roots =
    List.init 6 (fun i ->
        ( 2,
          Pattern.zipf ~site:(1 + n_union + i) ~base:comp_base
            ~pages:(frac epc_pages 0.1) ~events:(scale input 2_500) ~s:1.3
            ~compute:20_000 ~jitter:0.3 ))
  in
  let pattern =
    Pattern.seq_list
      [ load; Pattern.weighted_interleave (union_sites @ roots) ]
  in
  let sites =
    ((0, "image_load")
    :: List.init n_union (fun i -> (1 + i, Printf.sprintf "union_find%d" i)))
    @ List.init 6 (fun i -> (1 + n_union + i, Printf.sprintf "root_cache%d" i))
  in
  Trace.make ~name:"MSER"
    ~elrange_pages:(comp_base + comp_pages)
    ~footprint_pages:(comp_base + comp_pages)
    ~seed:(Input.seed_of input ~base:202)
    ~sites pattern

let mixed_blood ~epc_pages ~input =
  (* §5.4: sequentially scan an image, then run MSER on it — roughly
     equal shares of Class 2 and Class 3 accesses, so DFP and SIP each
     improve their half and the hybrid beats both. *)
  let image = frac epc_pages 2.5 in
  let comp_base = image in
  let comp_pages = frac epc_pages 1.5 in
  let scan =
    Pattern.sequential ~site:0 ~base:0 ~pages:image ~events_per_page:7
      ~compute:40_000 ~jitter:0.15
  in
  let n_union = 30 in
  let union_sites =
    List.init n_union (fun i ->
        ( 2,
          Pattern.uniform_random ~site:(1 + i) ~base:comp_base ~pages:comp_pages
            ~events:(scale input 700) ~compute:80_000 ~jitter:0.3 ))
  in
  let roots =
    List.init 4 (fun i ->
        ( 2,
          Pattern.zipf ~site:(1 + n_union + i) ~base:comp_base
            ~pages:(frac epc_pages 0.08) ~events:(scale input 2_000) ~s:1.3
            ~compute:20_000 ~jitter:0.3 ))
  in
  let pattern =
    Pattern.seq_list
      [ scan; Pattern.weighted_interleave (union_sites @ roots) ]
  in
  let sites =
    ((0, "image_scan")
    :: List.init n_union (fun i -> (1 + i, Printf.sprintf "blob_union%d" i)))
    @ List.init 4 (fun i -> (1 + n_union + i, Printf.sprintf "blob_root%d" i))
  in
  Trace.make ~name:"mixed-blood"
    ~elrange_pages:(comp_base + comp_pages)
    ~footprint_pages:(comp_base + comp_pages)
    ~seed:(Input.seed_of input ~base:203)
    ~sites pattern

let all = [ ("SIFT", sift); ("MSER", mser); ("mixed-blood", mixed_blood) ]

let by_name name =
  List.find_map (fun (n, m) -> if n = name then Some m else None) all
