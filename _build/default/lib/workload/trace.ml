module Prng = Repro_util.Prng

type t = {
  name : string;
  elrange_pages : int;
  footprint_pages : int;
  seed : int;
  pattern : Pattern.t;
  sites : (int * string) list;
}

let make ~name ~elrange_pages ~footprint_pages ~seed ~sites pattern =
  if elrange_pages <= 0 then invalid_arg "Trace.make: elrange must be positive";
  { name; elrange_pages; footprint_pages; seed; pattern; sites }

let events t = Pattern.run t.pattern (Prng.create t.seed)

let site_name t site =
  match List.assoc_opt site t.sites with
  | Some name -> name
  | None -> Printf.sprintf "site%d" site

let length t = Seq.fold_left (fun n _ -> n + 1) 0 (events t)

let count_distinct_pages t =
  let seen = Hashtbl.create 1024 in
  Seq.iter
    (fun (a : Access.t) ->
      if not (Hashtbl.mem seen a.vpage) then Hashtbl.add seen a.vpage ())
    (events t);
  Hashtbl.length seen
