(** A named, replayable workload: a pattern plus its seed and address-space
    size.

    Replays are the backbone of the PGO flow — the profiling run and the
    measured run both call {!events} and receive streams rebuilt from the
    trace's seed, so "run the same binary again" is exact. *)

type t = {
  name : string;
  elrange_pages : int;  (** Virtual address-space size (ELRANGE), pages. *)
  footprint_pages : int;  (** Distinct pages the workload touches. *)
  seed : int;
  pattern : Pattern.t;
  sites : (int * string) list;  (** Site id -> human label, for reports. *)
}

val make :
  name:string -> elrange_pages:int -> footprint_pages:int -> seed:int ->
  sites:(int * string) list -> Pattern.t -> t

val events : t -> Access.t Seq.t
(** A fresh single-consumption stream built from the stored seed.
    Successive calls yield identical streams. *)

val site_name : t -> int -> string
(** Label of a site (falls back to ["site<i>"]). *)

val length : t -> int
(** Number of events (forces one full replay; O(trace)). *)

val count_distinct_pages : t -> int
(** Distinct pages touched (forces one full replay). *)
